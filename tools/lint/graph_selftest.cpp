// Self-tests for splap-graph (graph_core.hpp): the model builder (overload
// resolution, interface fan-out, cycle termination) on inline sources, and
// the three rule families on fixture mini-trees under fixtures/graph/ —
// including the suspend-under-handler regression fixture that proves the
// analyzer catches the bug class it was built for.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph_core.hpp"

namespace splap::graph {
namespace {

namespace fs = std::filesystem;

/// Load a fixture scenario directory: every file below it becomes a
/// SourceFile whose path is relative to the scenario root (so the fixture's
/// src/... layout drives the path-scoped rules exactly like the real tree).
std::vector<SourceFile> scenario(const std::string& name) {
  const fs::path root = fs::path(SPLAP_GRAPH_FIXTURE_DIR) / name;
  std::vector<SourceFile> out;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path());
    std::ostringstream ss;
    ss << in.rdbuf();
    out.push_back(SourceFile{
        entry.path().lexically_relative(root).generic_string(), ss.str()});
  }
  std::sort(out.begin(), out.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return out;
}

std::multiset<std::pair<std::string, std::string>> fired(
    const std::vector<Violation>& v) {
  std::multiset<std::pair<std::string, std::string>> out;
  for (const auto& x : v) out.insert({x.rule, x.file});
  return out;
}

// ---------------------------------------------------------------------------
// Model builder units (inline sources)
// ---------------------------------------------------------------------------

TEST(GraphModel, QualifiedNameResolvesToTheNamedClassOnly) {
  const std::vector<SourceFile> files = {{"src/lapi/a.cpp", R"(
namespace splap {
struct Alpha { void fire() { } };
struct Beta  { void fire() { } };
void drive(Alpha& a) { a.fire(); }
}  // namespace splap
)"}};
  const Model m = build_model(files);
  const std::vector<int> alpha = m.resolve("Alpha::fire");
  ASSERT_EQ(alpha.size(), 1u);
  EXPECT_EQ(m.fns[static_cast<std::size_t>(alpha[0])].qual,
            "splap::Alpha::fire");
  // A bare name deliberately fans out to every candidate.
  EXPECT_EQ(m.resolve("fire").size(), 2u);
}

TEST(GraphModel, ArityFilterSeparatesOverloadsAndForeignCalls) {
  const std::vector<SourceFile> files = {{"src/lapi/a.cpp", R"(
namespace splap {
struct Array {
  int get(int rank, const char* from, char* to, long len) { return rank; }
};
struct Ptr { char* get() { return nullptr; } };
void drive(Array& arr, Ptr& p, char* buf) {
  (void)p.get();
  (void)arr.get(1, buf, buf, 8);
}
}  // namespace splap
)"}};
  const Model m = build_model(files);
  // Zero-argument call: only the zero-parameter overload survives.
  const std::vector<int> zero = m.resolve("get", 0);
  ASSERT_EQ(zero.size(), 1u);
  EXPECT_EQ(m.fns[static_cast<std::size_t>(zero[0])].qual,
            "splap::Ptr::get");
  const std::vector<int> four = m.resolve("get", 4);
  ASSERT_EQ(four.size(), 1u);
  EXPECT_EQ(m.fns[static_cast<std::size_t>(four[0])].qual,
            "splap::Array::get");
  // A count no overload accepts resolves to nothing (the call goes to code
  // outside the index, e.g. std::unique_ptr::get).
  EXPECT_TRUE(m.resolve("get", 2).empty());
  // Unknown count keeps the full fan-out.
  EXPECT_EQ(m.resolve("get", -1).size(), 2u);
}

TEST(GraphModel, DefaultArgumentsOnDeclarationsWidenTheCallableRange) {
  const std::vector<SourceFile> files = {{"src/lapi/a.cpp", R"(
namespace splap {
class Sender {
 public:
  int send(int dst, int tag = 0, int flags = 0);
};
int Sender::send(int dst, int tag, int flags) { return dst + tag + flags; }
}  // namespace splap
)"}};
  const Model m = build_model(files);
  // The out-of-class definition does not repeat the defaults; the in-class
  // declaration must make one- and two-argument calls resolve anyway.
  for (const int n : {1, 2, 3}) {
    EXPECT_EQ(m.resolve("send", n).size(), 1u) << n << " args";
  }
  EXPECT_TRUE(m.resolve("send", 0).empty());
  EXPECT_TRUE(m.resolve("send", 4).empty());
}

TEST(GraphModel, CallsThroughInterfaceFanOutToEveryImplementation) {
  const std::vector<SourceFile> files = {{"src/lapi/a.cpp", R"(
namespace splap {
struct Sink { virtual void deliver(int pkt) = 0; };
struct LapiSink : Sink { void deliver(int pkt) override { } };
struct MplSink : Sink { void deliver(int pkt) override { } };
void pump(Sink& s) { s.deliver(7); }
}  // namespace splap
)"}};
  const Model m = build_model(files);
  // The virtual call is a bare member name: resolution reaches both
  // overriders (the conservative fan-out the blocking proof relies on).
  EXPECT_EQ(m.resolve("deliver", 1).size(), 2u);
  const auto it = m.classes.find("splap::Sink");
  ASSERT_NE(it, m.classes.end());
  EXPECT_EQ(it->second.pure_virtuals, (std::set<std::string>{"deliver"}));
  ASSERT_NE(m.classes.find("splap::LapiSink"), m.classes.end());
  EXPECT_EQ(m.classes.at("splap::LapiSink").bases,
            (std::vector<std::string>{"Sink"}));
}

TEST(GraphBlocking, CallGraphCyclesTerminate) {
  // ping <-> pong recursion plus a suspension below the cycle: the fixed
  // point and the chain search must both terminate and still find the root.
  const std::vector<SourceFile> files = {
      {"src/sim/engine.hpp", R"(
namespace splap::sim {
class Actor { public: void suspend(const char* why) { (void)why; } };
class Engine {
 public:
  template <class F> void schedule_after(long d, F f) { (void)d; f(); }
};
}  // namespace splap::sim
)"},
      {"src/lapi/cycle.cpp", R"(
#include "sim/engine.hpp"
namespace splap::lapi {
void pong(sim::Actor* a, int n);
void ping(sim::Actor* a, int n) {
  if (n > 0) pong(a, n - 1);
  a->suspend("deep");
}
void pong(sim::Actor* a, int n) { ping(a, n); }
void arm(sim::Engine& eng, sim::Actor* a) {
  eng.schedule_after(1, [a] { pong(a, 3); });
}
}  // namespace splap::lapi
)"}};
  const std::vector<Violation> v = check_blocking(build_model(files));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "blocking-reachability");
  EXPECT_NE(v[0].message.find("pong"), std::string::npos);
  EXPECT_NE(v[0].message.find("Actor::suspend"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule families on the fixture mini-trees
// ---------------------------------------------------------------------------

TEST(GraphBlocking, SuspendUnderHandlerFailsWithTheFullChain) {
  const std::vector<Violation> v = analyze(scenario("suspend_under_handler"));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "blocking-reachability");
  EXPECT_EQ(v[0].file, "src/lapi/pump.cpp");
  // The diagnostic names every hop: handler entry, both helpers, and the
  // suspension primitive the path bottoms out in.
  for (const char* part :
       {"callback passed to schedule_after", "helper_send", "do_send",
        "suspension primitive Actor::compute",
        "splap-graph: allow(blocking-reachability)"}) {
    EXPECT_NE(v[0].message.find(part), std::string::npos)
        << "diagnostic lost `" << part << "`:\n" << v[0].message;
  }
}

TEST(GraphBlocking, ActorBodiesGuardedEdgesAndCleanStacklessPass) {
  const std::vector<Violation> v = analyze(scenario("blocking_good"));
  EXPECT_TRUE(v.empty()) << v[0].file << ":" << v[0].line << " ["
                         << v[0].rule << "] " << v[0].message;
}

TEST(GraphBlocking, UnguardedRegCachePinChargeFailsUnderTheHandler) {
  // The zero-copy registration pin: charged on a cache miss inside
  // submit(), which handler context reaches via the Get-reply path. An
  // unconditional Actor::compute there is exactly the suspend-under-handler
  // bug class, surfaced statically instead of on the first cold-cache Get.
  const std::vector<Violation> v = analyze(scenario("regcache_pin_bad"));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "blocking-reachability");
  EXPECT_EQ(v[0].file, "src/lapi/regcache.cpp");
  for (const char* part :
       {"callback passed to schedule_after", "submit", "charge_pin",
        "suspension primitive Actor::compute"}) {
    EXPECT_NE(v[0].message.find(part), std::string::npos)
        << "diagnostic lost `" << part << "`:\n" << v[0].message;
  }
}

TEST(GraphBlocking, GuardedRegCachePinChargePasses) {
  const std::vector<Violation> v = analyze(scenario("regcache_pin_good"));
  EXPECT_TRUE(v.empty()) << v[0].file << ":" << v[0].line << " ["
                         << v[0].rule << "] " << v[0].message;
}

TEST(GraphLayering, TransitiveClosureCatchesIndirectLeaks) {
  const std::vector<Violation> v = analyze(scenario("layering_bad"));
  EXPECT_EQ(fired(v),
            (std::multiset<std::pair<std::string, std::string>>{
                {"layering-net", "src/net/detail.hpp"},
                {"layering-net", "src/net/fabric.hpp"},
                {"layering-context", "src/mpl/comm.hpp"},
                {"layering-context", "src/mpl/internal.hpp"}}));
  // The indirect chain is spelled out hop by hop.
  for (const auto& x : v) {
    if (x.file == "src/net/fabric.hpp") {
      EXPECT_NE(x.message.find("src/net/detail.hpp"), std::string::npos);
      EXPECT_NE(x.message.find("src/lapi/context.hpp"), std::string::npos);
    }
  }
}

TEST(GraphLayering, DownwardIncludesAreClean) {
  EXPECT_TRUE(analyze(scenario("layering_good")).empty());
}

TEST(GraphStatus, DiscardFiresOnceAndRespectsVoidAllowAndMixedOverloads) {
  const std::vector<Violation> v = analyze(scenario("status_discard"));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "status-discard");
  EXPECT_EQ(v[0].file, "src/lapi/api.cpp");
  EXPECT_NE(v[0].message.find("`op`"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Allow-annotation contract
// ---------------------------------------------------------------------------

TEST(GraphAllow, UnknownRuleAndMissingJustificationAreViolations) {
  const std::vector<SourceFile> files = {{"src/lapi/a.cpp", R"(
// splap-graph: allow(not-a-rule): whatever
// splap-graph: allow(blocking-reachability)
int x;
)"}};
  const std::vector<Violation> v = analyze(files);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].rule, "bad-allow");
  EXPECT_NE(v[0].message.find("not-a-rule"), std::string::npos);
  EXPECT_EQ(v[1].rule, "bad-allow");
  EXPECT_NE(v[1].message.find("justification"), std::string::npos);
}

TEST(GraphCatalogue, ListsEveryRule) {
  std::set<std::string> ids;
  for (const auto& r : rules()) ids.insert(r.id);
  EXPECT_EQ(ids, (std::set<std::string>{
                     "blocking-reachability", "layering-net",
                     "layering-context", "status-discard", "bad-allow"}));
}

}  // namespace
}  // namespace splap::graph
