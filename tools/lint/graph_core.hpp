// splap-graph: call-graph / include-graph static analysis for the splap tree.
//
// splap-lint (lint_core.hpp) proves per-line facts: a banned token cannot
// appear on a simulated path. This tool proves per-PATH facts that no regex
// can see:
//
//   blocking-reachability  no call chain from a handler-context entry point
//                          (stackless actor body, run_inline callback, SvcPool
//                          completion job, progress-pump lambda, or a
//                          Sender/Env/Sink callback-interface implementation)
//                          may reach a suspension primitive. This turns the
//                          engine's runtime REQUIRE ("stackless actors never
//                          block") into a compile-time proof with the full
//                          call chain as the diagnostic.
//   layering-net           src/net must not reach lapi/, mpl/ or ga/ headers
//   layering-context       transport layers (mpl/, lapi/{reliable,assembly,
//                          progress}) must not reach lapi/context.hpp —
//                          both computed over the TRANSITIVE include closure,
//                          so a leak through an intermediate header is caught
//                          (the per-line rules these replace only saw direct
//                          includes).
//   status-discard         a call site in src/{lapi,mpl,ga,net} that drops a
//                          Status-returning result on the floor.
//
// Like splap-lint it is deliberately zero-dependency: a token-level symbol
// table over the comment/string-stripped source (lexer.hpp), not libclang.
// The model is a conservative over-approximation — an unqualified call
// resolves to EVERY function with that simple name, and virtual calls fan
// out to every override — so "no path exists" is a real proof, at the cost
// of occasional false paths. The escape hatch mirrors splap-lint:
//
//   // splap-graph: allow(<rule-id>): <why this path cannot fire>
//
// on the offending line (for blocking-reachability: the call edge to cut;
// for layering: the include line; for status-discard: the call site). An
// annotation without a justification, or naming an unknown rule, is itself
// a violation.
#pragma once

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint_core.hpp"

namespace splap::graph {

using lint::RuleInfo;
using lint::Violation;

/// One translation unit handed to the model builder. `path` is repo-relative
/// with '/' separators (e.g. "src/lapi/context.cpp") — the include resolver
/// and the path-scoped rules key off it.
struct SourceFile {
  std::string path;
  std::string content;
};

/// A call site inside a function body (or constructor initializer list).
struct CallSite {
  std::string callee;     // as written, '::'-joined, no template args
  int line = 0;           // 1-based
  int args = -1;          // top-level argument count (-1: unknown)
  bool member = false;    // written as obj.f(...) or p->f(...)
  bool discarded = false; // full-expression statement, result unused
  bool voided = false;    // explicitly cast to void
};

/// How a function body gets control — decides entry-point status for
/// blocking-reachability.
enum class Role {
  kPlain,      // ordinary function, or a lambda that escapes through a
               // variable/field (unknown invocation context)
  kHandler,    // lambda passed to an event/handler-context sink
               // (schedule_*, defer, submit, run_inline, set_deliver, ...)
  kActorBody,  // lambda passed to spawn/spawn_on/run_spmd/restart_node —
               // runs as a thread-backed actor body, may suspend freely
  kStackless,  // lambda passed to spawn_stackless — must never suspend
};

struct Function {
  std::string qual;  // fully qualified: namespaces + classes + name
  std::string name;  // last component; lambdas get "<lambda:LINE>"
  std::string file;
  int line = 0;
  bool is_lambda = false;
  bool returns_status = false;  // declared return type spelled ...Status
  Role role = Role::kPlain;
  std::string sink;  // lambdas: simple name of the call they were passed to
  // Arity of the definition's parameter list: [min_params, max_params]
  // callable range (defaults shrink min; a pack makes max unbounded).
  int min_params = 0;
  int max_params = 0;
  bool variadic = false;
  std::vector<CallSite> calls;
};

struct ClassInfo {
  std::string qual;
  std::string file;
  std::vector<std::string> bases;          // base-class names as written
  std::set<std::string> pure_virtuals;     // simple names of `= 0` methods
  std::set<std::string> override_methods;  // simple names of `override` decls
  // Callable arity range per method name, merged over all in-class
  // declarations (which is where default arguments live — out-of-class
  // definitions do not repeat them).
  std::map<std::string, std::pair<int, int>> method_arity;
};

struct IncludeEdge {
  std::string target;  // resolved repo-relative path (only in-tree targets)
  int line = 0;
};

struct Model {
  std::vector<Function> fns;
  std::map<std::string, std::vector<int>, std::less<>> by_simple_name;
  std::map<std::string, ClassInfo> classes;  // keyed by qualified name
  std::map<std::string, std::vector<IncludeEdge>> includes;  // per file
  std::set<std::string> files;  // every path handed to the builder
  // (file, line) -> rule ids muted there by splap-graph annotations.
  std::map<std::string, std::map<int, std::set<std::string>>> allows;
  std::vector<Violation> annotation_errors;  // bad-allow findings

  bool allowed(const std::string& file, int line,
               std::string_view rule) const;

  /// Resolve a callee as written to candidate definition indices.
  /// Qualified names suffix-match at a '::' boundary; bare names match every
  /// function with that simple name (the deliberate over-approximation that
  /// makes virtual calls through Sender/Env/Sink fan out to all overrides).
  /// With `args >= 0`, candidates whose callable arity range (definition
  /// merged with in-class declarations) cannot accept that many arguments
  /// are dropped — this is what keeps `ptr.get()` from resolving to a
  /// four-parameter GlobalArray::get.
  std::vector<int> resolve(std::string_view callee, int args = -1) const;
};

/// Build the symbol table + call graph + include graph.
Model build_model(const std::vector<SourceFile>& files);

/// The three rule families. Each returns violations sorted by (file, line).
std::vector<Violation> check_blocking(const Model& m);
std::vector<Violation> check_layering(const Model& m);
std::vector<Violation> check_status_discard(const Model& m);

/// Rule catalogue (stable ids; DESIGN.md §7 documents each).
const std::vector<RuleInfo>& rules();

/// Run everything over a set of sources (annotation errors included).
std::vector<Violation> analyze(const std::vector<SourceFile>& files);

/// Load every C++ source under root/src (repo-relative paths).
std::vector<SourceFile> load_tree(const std::filesystem::path& root);

}  // namespace splap::graph
