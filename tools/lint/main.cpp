// splap_lint CLI: determinism lint over the project tree (see lint_core.hpp
// for the rule rationale). Exit 0 = clean, 1 = violations, 2 = usage error.
//
//   splap_lint --root <repo-root>          # lint src/ and tests/
//   splap_lint --root <repo-root> FILE...  # lint specific files
//   splap_lint --list-rules
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "lint_core.hpp"

int main(int argc, char** argv) {
  std::filesystem::path root = ".";
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const auto& r : splap::lint::rules()) {
        std::printf("%-20s %s\n", r.id, r.summary);
      }
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "splap_lint: unknown flag %s\n", argv[i]);
      return 2;
    } else {
      files.emplace_back(argv[i]);
    }
  }
  std::error_code ec;
  root = std::filesystem::canonical(root, ec);
  if (ec) {
    std::fprintf(stderr, "splap_lint: bad --root: %s\n", ec.message().c_str());
    return 2;
  }

  std::vector<splap::lint::Violation> violations;
  if (files.empty()) {
    violations = splap::lint::scan_tree(root);
  } else {
    for (const auto& f : files) {
      auto v = splap::lint::scan_file(root, std::filesystem::absolute(f));
      violations.insert(violations.end(), v.begin(), v.end());
    }
  }
  for (const auto& v : violations) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "splap-lint: %zu violation%s\n", violations.size(),
                 violations.size() == 1 ? "" : "s");
    return 1;
  }
  std::printf("splap-lint: clean\n");
  return 0;
}
