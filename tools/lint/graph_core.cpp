#include "graph_core.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>

#include "lexer.hpp"

namespace splap::graph {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer: the lexer's blanked code text -> a flat token stream with
// bracket matching. Preprocessor directives (and their backslash
// continuations) are dropped entirely, so multi-line macro definitions like
// SPLAP_REQUIRE never confuse the scope parser; #include directives are
// harvested separately from the raw text.
// ---------------------------------------------------------------------------

struct Tok {
  enum Kind { kIdent, kPunct, kLit };
  Kind kind = kPunct;
  std::string text;
  int line = 0;
  int match = -1;  // partner index for ( ) [ ] { }
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<Tok> tokenize(const std::vector<lint::Line>& lines) {
  std::vector<Tok> toks;
  bool in_pp = false;  // previous line was a directive ending in '\'
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const lint::Line& ln = lines[li];
    const int lineno = static_cast<int>(li) + 1;
    const std::string& raw = ln.raw;
    if (in_pp) {
      in_pp = !raw.empty() && raw.back() == '\\';
      continue;
    }
    std::size_t first = ln.code.find_first_not_of(" \t");
    if (first != std::string::npos && ln.code[first] == '#') {
      in_pp = !raw.empty() && raw.back() == '\\';
      continue;
    }
    const std::string& s = ln.code;
    for (std::size_t i = 0; i < s.size();) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (ident_start(c)) {
        std::size_t j = i + 1;
        while (j < s.size() && ident_char(s[j])) ++j;
        toks.push_back(Tok{Tok::kIdent, s.substr(i, j - i), lineno, -1});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t j = i + 1;
        while (j < s.size() &&
               (ident_char(s[j]) || s[j] == '.' || s[j] == '\'')) {
          ++j;
        }
        toks.push_back(Tok{Tok::kLit, s.substr(i, j - i), lineno, -1});
        i = j;
        continue;
      }
      if (c == '"' || c == '\'') {
        // The lexer blanked literal contents, leaving bare delimiter pairs.
        std::size_t j = i + 1;
        if (j < s.size() && s[j] == c) ++j;
        toks.push_back(Tok{Tok::kLit, s.substr(i, j - i), lineno, -1});
        i = j;
        continue;
      }
      const char n = i + 1 < s.size() ? s[i + 1] : '\0';
      if ((c == ':' && n == ':') || (c == '-' && n == '>')) {
        toks.push_back(Tok{Tok::kPunct, std::string{c, n}, lineno, -1});
        i += 2;
        continue;
      }
      toks.push_back(Tok{Tok::kPunct, std::string(1, c), lineno, -1});
      ++i;
    }
  }
  // Bracket matching (resilient: a stray closer is ignored).
  std::vector<int> stack;
  for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
    const std::string& t = toks[static_cast<std::size_t>(i)].text;
    if (t == "(" || t == "[" || t == "{") {
      stack.push_back(i);
    } else if (t == ")" || t == "]" || t == "}") {
      const char want = t == ")" ? '(' : t == "]" ? '[' : '{';
      while (!stack.empty()) {
        const int open = stack.back();
        stack.pop_back();
        if (toks[static_cast<std::size_t>(open)].text[0] == want) {
          toks[static_cast<std::size_t>(open)].match = i;
          toks[static_cast<std::size_t>(i)].match = open;
          break;
        }
      }
    }
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Parser: a scope-tracking forward scan that records function definitions
// (qualified by the namespace/class scopes they sit in), the call sites and
// lambda literals inside each body, class bases and virtual-method shapes.
// Deliberately approximate — see the header for the soundness argument.
// ---------------------------------------------------------------------------

const std::set<std::string>& call_keywords() {
  static const std::set<std::string> k = {
      "if",           "for",        "while",    "switch",    "return",
      "sizeof",       "alignof",    "alignas",  "decltype",  "noexcept",
      "static_cast",  "dynamic_cast", "reinterpret_cast", "const_cast",
      "catch",        "new",        "delete",   "throw",     "typeid",
      "co_await",     "co_return",  "co_yield", "requires",  "assert",
  };
  return k;
}

// Lambdas handed to these run in event/handler context (the dispatcher or a
// stackless pump): they become blocking-reachability entry points.
const std::set<std::string>& handler_sinks() {
  static const std::set<std::string> k = {
      "schedule_at",   "schedule_after",     "schedule_at_on",
      "schedule_thunk", "schedule_thunk_on", "defer",
      "run_inline",    "submit",             "submit_completion",
      "lock_async",    "register_handler",   "set_deliver",
      "set_overflow",
  };
  return k;
}

// Lambdas handed to these run as thread-backed actor bodies: suspension is
// their whole point, so they are neither entries nor locally-invoked.
const std::set<std::string>& actor_sinks() {
  static const std::set<std::string> k = {
      "spawn", "spawn_on", "run_spmd", "restart_node",
  };
  return k;
}

const std::string kStacklessSink = "spawn_stackless";

// "Unbounded" upper arity for variadic parameter lists.
constexpr int kUnboundedArity = 1 << 20;

struct OpenCall {
  std::string callee;  // "" for a paren group that is not a call
};

class Parser {
 public:
  Parser(std::string file, const std::vector<lint::Line>& lines, Model* m)
      : file_(std::move(file)), toks_(tokenize(lines)), model_(m) {}

  void run() { parse_decls(0, toks_.size(), "", nullptr); }

 private:
  const Tok& at(std::size_t i) const { return toks_[i]; }
  bool is(std::size_t i, std::string_view t) const {
    return i < toks_.size() && toks_[i].text == t;
  }
  bool is_ident(std::size_t i) const {
    return i < toks_.size() && toks_[i].kind == Tok::kIdent;
  }
  /// Past a matched bracket group, or +1 when unmatched (resilience).
  std::size_t past_group(std::size_t i) const {
    const int m = toks_[i].match;
    return m > static_cast<int>(i) ? static_cast<std::size_t>(m) + 1 : i + 1;
  }

  /// i at '<': skip balanced angles if this plausibly opens template
  /// arguments; returns the index past '>' or `i` if it does not close.
  std::size_t skip_angles(std::size_t i, std::size_t e) const {
    int depth = 0;
    std::size_t steps = 0;
    for (std::size_t j = i; j < e && steps < 120; ++j, ++steps) {
      const std::string& t = toks_[j].text;
      if (t == "<") {
        ++depth;
      } else if (t == ">") {
        if (--depth == 0) return j + 1;
      } else if (t == ";" || t == "{" || t == "}") {
        return i;  // statement boundary: it was a comparison
      } else if (t == "(" || t == "[") {
        j = past_group(j) - 1;
      }
    }
    return i;
  }

  /// Forward to the next ';' at this nesting level (bracket groups jumped).
  std::size_t skip_to_semi(std::size_t i, std::size_t e) const {
    while (i < e) {
      const std::string& t = toks_[i].text;
      if (t == ";") return i + 1;
      if (t == "(" || t == "[" || t == "{") {
        i = past_group(i);
        continue;
      }
      if (t == "}") return i;  // enclosing scope ended first
      ++i;
    }
    return e;
  }

  /// Read an identifier chain starting at i: ident ("::" ident)* with
  /// optional '~' components. Returns (text, one-past-end); empty if none.
  std::pair<std::string, std::size_t> read_chain(std::size_t i,
                                                 std::size_t e) const {
    std::string out;
    std::size_t j = i;
    while (j < e) {
      if (is(j, "~") && is_ident(j + 1)) {
        out += "~";
        ++j;
        continue;
      }
      if (!is_ident(j)) break;
      out += toks_[j].text;
      ++j;
      if (is(j, "::") && (is_ident(j + 1) || is(j + 1, "~"))) {
        out += "::";
        ++j;
        continue;
      }
      break;
    }
    if (out.empty() || out.back() == ':') return {"", i};
    return {out, j};
  }

  std::string join_scope(const std::string& scope,
                         const std::string& name) const {
    if (scope.empty()) return name;
    return scope + "::" + name;
  }

  struct Arity {
    int params = 0;
    int min = 0;
    bool variadic = false;
  };

  /// Count a parenthesized list at `popen`: top-level commas give the
  /// count, top-level '=' marks a defaulted parameter, "..." a pack.
  /// Template arguments inside parameter types are angle-skipped so their
  /// commas do not count.
  Arity count_arity(std::size_t popen) const {
    Arity a;
    const int mi = toks_[popen].match;
    if (mi < 0) return a;
    const std::size_t close = static_cast<std::size_t>(mi);
    if (popen + 1 == close) return a;
    a.params = 1;
    int defaults = 0;
    for (std::size_t j = popen + 1; j < close;) {
      const std::string& t = at(j).text;
      if (t == "(" || t == "[" || t == "{") {
        j = past_group(j);
      } else if (t == "<") {
        const std::size_t p = skip_angles(j, close);
        j = p == j ? j + 1 : p;
      } else if (t == ",") {
        ++a.params;
        ++j;
      } else if (t == "=") {
        ++defaults;
        ++j;
      } else if (t == "." && is(j + 1, ".") && is(j + 2, ".")) {
        a.variadic = true;
        j += 3;
      } else {
        ++j;
      }
    }
    a.min = a.params - defaults - (a.variadic ? 1 : 0);
    if (a.min < 0) a.min = 0;
    return a;
  }

  void parse_decls(std::size_t b, std::size_t e, const std::string& scope,
                   ClassInfo* cls);
  std::size_t parse_declaration(std::size_t i, std::size_t e,
                                const std::string& scope, ClassInfo* cls);
  std::size_t parse_stmt_region(std::size_t b, std::size_t e, Function* fn,
                                std::vector<OpenCall>& call_stack);
  Role lambda_role(const std::vector<OpenCall>& call_stack,
                   std::string* sink) const;

  std::string file_;
  std::vector<Tok> toks_;
  Model* model_;
  int lambda_seq_ = 0;
};

void Parser::parse_decls(std::size_t b, std::size_t e,
                         const std::string& scope, ClassInfo* cls) {
  std::size_t i = b;
  while (i < e) {
    const std::string& t = at(i).text;
    if (t == ";") {
      ++i;
    } else if (t == "template") {
      i = is(i + 1, "<") ? std::max(skip_angles(i + 1, e), i + 2) : i + 1;
    } else if (t == "namespace") {
      auto [name, j] = read_chain(i + 1, e);
      if (is(j, "{")) {
        const std::size_t close = past_group(j);
        parse_decls(j + 1, close - 1,
                    name.empty() ? scope : join_scope(scope, name), nullptr);
        i = close;
      } else {
        i = skip_to_semi(j, e);  // namespace alias
      }
    } else if (t == "class" || t == "struct" || t == "union") {
      std::size_t j = i + 1;
      while (is(j, "[") && is(j + 1, "[")) j = past_group(j);  // attributes
      auto [name, k] = read_chain(j, e);
      j = k;
      if (is(j, "final")) ++j;
      if (is(j, ";")) {  // forward declaration
        i = j + 1;
        continue;
      }
      ClassInfo info;
      info.qual = name.empty() ? scope : join_scope(scope, name);
      info.file = file_;
      if (is(j, ":")) {  // base list
        ++j;
        while (j < e && !is(j, "{")) {
          const std::string& bt = at(j).text;
          if (bt == "public" || bt == "protected" || bt == "private" ||
              bt == "virtual" || bt == ",") {
            ++j;
            continue;
          }
          auto [base, nj] = read_chain(j, e);
          if (base.empty()) {
            ++j;
            continue;
          }
          info.bases.push_back(base);
          j = is(nj, "<") ? std::max(skip_angles(nj, e), nj + 1) : nj;
        }
      }
      if (!is(j, "{")) {  // something odd (e.g. variable of elaborated type)
        i = skip_to_semi(j, e);
        continue;
      }
      const std::size_t close = past_group(j);
      ClassInfo* slot = nullptr;
      if (!name.empty()) {
        slot = &model_->classes[info.qual];
        slot->qual = info.qual;
        slot->file = info.file;
        for (auto& bname : info.bases) slot->bases.push_back(bname);
      }
      parse_decls(j + 1, close - 1, info.qual, slot);
      i = skip_to_semi(close, e);  // trailing variable declarators
    } else if (t == "enum") {
      std::size_t j = i + 1;
      while (j < e && !is(j, "{") && !is(j, ";")) ++j;
      i = is(j, "{") ? skip_to_semi(past_group(j), e) : j + 1;
    } else if (t == "using" || t == "typedef" || t == "friend" ||
               t == "static_assert") {
      i = skip_to_semi(i, e);
    } else if ((t == "public" || t == "protected" || t == "private") &&
               is(i + 1, ":")) {
      i += 2;
    } else if (t == "extern" && at(i + 1).kind == Tok::kLit && is(i + 2, "{")) {
      const std::size_t close = past_group(i + 2);
      parse_decls(i + 3, close - 1, scope, cls);
      i = close;
    } else {
      i = parse_declaration(i, e, scope, cls);
    }
  }
}

std::size_t Parser::parse_declaration(std::size_t i, std::size_t e,
                                      const std::string& scope,
                                      ClassInfo* cls) {
  // Find the parameter-list '(' whose preceding identifier chain names a
  // function; bail to skip_to_semi for anything that does not fit.
  std::size_t j = i;
  std::string name;
  std::size_t name_begin = 0;
  std::size_t popen = 0;
  while (j < e) {
    const std::string& t = at(j).text;
    if (t == ";") return j + 1;
    if (t == "=") return skip_to_semi(j, e);  // variable initializer
    if (t == "{") return skip_to_semi(past_group(j), e);  // brace init/odd
    if (t == "}") return j;
    if (t == "[") {  // attribute or array declarator: jump it
      j = past_group(j);
      continue;
    }
    if (t == "operator") {
      // operator<, operator==, operator(), operator[] ...
      std::string op = "operator";
      std::size_t k = j + 1;
      if (is(k, "(") && toks_[k].match == static_cast<int>(k) + 1) {
        op += "()";
        k += 2;
      } else if (is(k, "[") && toks_[k].match == static_cast<int>(k) + 1) {
        op += "[]";
        k += 2;
      } else {
        while (k < e && at(k).kind == Tok::kPunct && !is(k, "(")) {
          op += at(k).text;
          ++k;
        }
      }
      if (is(k, "(")) {
        name = op;
        name_begin = j;
        popen = k;
        break;
      }
      j = k;
      continue;
    }
    if (t == "(") {
      // A '(' directly after an identifier chain is a parameter list (the
      // chain walked back from here is the function name); anything else —
      // decltype(...), noexcept(...), a parenthesized declarator — is
      // jumped.
      std::size_t back = j;
      std::string chain;
      while (back > i) {
        const std::size_t p = back - 1;
        if (is_ident(p) && call_keywords().count(at(p).text) == 0 &&
            at(p).text != "decltype" && at(p).text != "alignas") {
          chain.insert(0, at(p).text);
          back = p;
          if (back > i && is(back - 1, "~")) {
            chain.insert(0, "~");
            --back;
          }
          if (back > i && is(back - 1, "::")) {
            chain.insert(0, "::");
            --back;
            continue;
          }
        }
        break;
      }
      if (!chain.empty() && chain.find("::") != 0) {
        name = chain;
        name_begin = back;
        popen = j;
        break;
      }
      j = past_group(j);
      continue;
    }
    if (t == "<") {
      j = std::max(skip_angles(j, e), j + 1);
      continue;
    }
    ++j;
  }
  if (name.empty()) return skip_to_semi(j, e);

  const std::size_t pclose_i = past_group(popen) - 1;
  if (toks_[popen].match < 0) return skip_to_semi(popen, e);
  const Arity ar = count_arity(popen);

  // Declared return type: the identifier chain ending immediately before the
  // name chain (pointers/references stripped). Constructors have none.
  bool returns_status = false;
  {
    std::size_t back = name_begin;
    while (back > i && (is(back - 1, "*") || is(back - 1, "&") ||
                        is(back - 1, "&&") || is(back - 1, "const"))) {
      --back;
    }
    if (back > i && is_ident(back - 1)) {
      returns_status = at(back - 1).text == "Status";
    }
  }

  // Specifier tail after the parameter list.
  std::size_t k = pclose_i + 1;
  bool saw_override = false;
  while (k < e) {
    const std::string& t = at(k).text;
    if (t == "const" || t == "final" || t == "mutable" || t == "&" ||
        t == "&&" || t == "volatile" || t == "constexpr" || t == "inline") {
      ++k;
    } else if (t == "override") {
      saw_override = true;
      ++k;
    } else if (t == "noexcept" || t == "throw" || t == "requires") {
      ++k;
      if (is(k, "(")) k = past_group(k);
    } else if (t == "[") {
      k = past_group(k);
    } else if (t == "->") {  // trailing return type
      ++k;
      while (k < e && (is_ident(k) || is(k, "::") || is(k, "*") ||
                       is(k, "&") || is(k, "const"))) {
        if (is_ident(k) && at(k).text == "Status") returns_status = true;
        ++k;
      }
      if (is(k, "<")) k = std::max(skip_angles(k, e), k + 1);
    } else {
      break;
    }
  }

  const std::string simple =
      name.rfind("::") == std::string::npos
          ? name
          : name.substr(name.rfind("::") + 2);

  // Default arguments live on in-class declarations; merge every sighting
  // into the class's callable range so out-of-class definitions (which do
  // not repeat defaults) still resolve calls that lean on them.
  const int ar_max = ar.variadic ? kUnboundedArity : ar.params;
  const auto merge_arity = [&](ClassInfo* c) {
    if (c == nullptr) return;
    auto [it, fresh] = c->method_arity.emplace(simple,
                                               std::make_pair(ar.min, ar_max));
    if (!fresh) {
      it->second.first = std::min(it->second.first, ar.min);
      it->second.second = std::max(it->second.second, ar_max);
    }
  };

  if (is(k, ";")) {  // pure declaration
    if (cls != nullptr) {
      if (saw_override) cls->override_methods.insert(simple);
      merge_arity(cls);
    }
    return k + 1;
  }
  if (is(k, "=")) {
    if (cls != nullptr && at(k + 1).text == "0") {
      cls->pure_virtuals.insert(simple);
    } else if (cls != nullptr && saw_override) {
      cls->override_methods.insert(simple);
    }
    merge_arity(cls);
    return skip_to_semi(k, e);
  }
  if (!is(k, "{") && !is(k, ":")) return skip_to_semi(k, e);

  // Definition.
  if (cls != nullptr && saw_override) cls->override_methods.insert(simple);
  merge_arity(cls);  // in-class definitions carry their own defaults
  Function fn;
  fn.qual = join_scope(scope, name);
  fn.name = simple;
  fn.file = file_;
  fn.line = at(name_begin).line;
  fn.returns_status = returns_status;
  fn.min_params = ar.min;
  fn.max_params = ar.params;
  fn.variadic = ar.variadic;
  const int idx = static_cast<int>(model_->fns.size());
  model_->fns.push_back(std::move(fn));
  Function* self = &model_->fns[static_cast<std::size_t>(idx)];

  std::vector<OpenCall> call_stack;
  if (is(k, ":")) {
    // Constructor initializer list: scan it with the statement scanner so
    // calls and lambda arguments inside initializers are captured, stopping
    // at the body '{' (an item's own brace-init groups are jumped).
    std::size_t j2 = k + 1;
    while (j2 < e && !is(j2, "{")) {
      auto [nm, nj] = read_chain(j2, e);
      if (!nm.empty() && (is(nj, "(") || is(nj, "{"))) {
        const std::size_t close = past_group(nj);
        // Note: model_->fns may reallocate while parsing nested lambdas, so
        // re-resolve `self` after every region parse.
        parse_stmt_region(nj + 1, close - 1,
                          &model_->fns[static_cast<std::size_t>(idx)],
                          call_stack);
        j2 = close;
        if (is(j2, ",")) ++j2;
        continue;
      }
      ++j2;
    }
    k = j2;
  }
  if (!is(k, "{")) return skip_to_semi(k, e);
  const std::size_t close = past_group(k);
  call_stack.clear();
  parse_stmt_region(k + 1, close - 1,
                    &model_->fns[static_cast<std::size_t>(idx)], call_stack);
  self = &model_->fns[static_cast<std::size_t>(idx)];
  if (!self->name.empty() && self->name[0] != '<' && self->name[0] != '~') {
    model_->by_simple_name[self->name].push_back(idx);
  }
  return close;
}

Role Parser::lambda_role(const std::vector<OpenCall>& call_stack,
                         std::string* sink) const {
  for (auto it = call_stack.rbegin(); it != call_stack.rend(); ++it) {
    if (it->callee.empty()) continue;
    std::string simple = it->callee;
    if (const auto pos = simple.rfind("::"); pos != std::string::npos) {
      simple = simple.substr(pos + 2);
    }
    *sink = simple;
    if (actor_sinks().count(simple) != 0) return Role::kActorBody;
    if (simple == kStacklessSink) return Role::kStackless;
    if (handler_sinks().count(simple) != 0) return Role::kHandler;
    // Any other call the literal is handed to — push_back into a handler
    // table, a wrapper — is treated as handler context too: the
    // conservative default for a stored callback.
    return Role::kHandler;
  }
  sink->clear();
  return Role::kPlain;  // escapes via assignment/return: context unknown
}

std::size_t Parser::parse_stmt_region(std::size_t b, std::size_t e,
                                      Function* fn,
                                      std::vector<OpenCall>& call_stack) {
  const int fn_idx = static_cast<int>(fn - model_->fns.data());
  const std::size_t base_depth = call_stack.size();
  std::size_t i = b;
  std::string pending_tag;  // callee for the '(' we are about to push
  while (i < e) {
    Function& cur = model_->fns[static_cast<std::size_t>(fn_idx)];
    const std::string& t = at(i).text;
    if (t == "(") {
      call_stack.push_back(OpenCall{pending_tag});
      pending_tag.clear();
      ++i;
      continue;
    }
    if (t == ")") {
      if (call_stack.size() > base_depth) call_stack.pop_back();
      ++i;
      continue;
    }
    if (t == "[") {
      // Lambda-introducer unless this is a subscript (previous token is a
      // value) or an attribute (handled by the not-a-lambda fallthrough).
      const bool subscript =
          i > b && (is_ident(i - 1) || at(i - 1).kind == Tok::kLit ||
                    is(i - 1, ")") || is(i - 1, "]"));
      if (subscript || toks_[i].match < 0) {
        i = toks_[i].match < 0 ? i + 1 : i;  // enter group normally
        ++i;
        continue;
      }
      const std::size_t cap_close = static_cast<std::size_t>(toks_[i].match);
      // Capture initializers evaluate at creation: attribute their calls to
      // the enclosing function.
      parse_stmt_region(i + 1, cap_close, fn, call_stack);
      std::size_t j = cap_close + 1;
      if (is(j, "<")) j = std::max(skip_angles(j, e), j + 1);
      std::size_t params_open = 0;
      if (is(j, "(")) {
        params_open = j;
        j = past_group(j);
      }
      while (j < e) {
        const std::string& st = at(j).text;
        if (st == "mutable" || st == "constexpr" || st == "static") {
          ++j;
        } else if (st == "noexcept") {
          ++j;
          if (is(j, "(")) j = past_group(j);
        } else if (st == "->") {
          ++j;
          while (j < e && (is_ident(j) || is(j, "::") || is(j, "*") ||
                           is(j, "&") || is(j, "const"))) {
            ++j;
          }
          if (is(j, "<")) j = std::max(skip_angles(j, e), j + 1);
        } else {
          break;
        }
      }
      if (!is(j, "{")) {  // not a lambda after all (e.g. [[fallthrough]])
        i = cap_close + 1;
        continue;
      }
      (void)params_open;
      const std::size_t body_close = past_group(j) - 1;
      Function lam;
      lam.qual = model_->fns[static_cast<std::size_t>(fn_idx)].qual +
                 "::<lambda:" + std::to_string(at(i).line) + "." +
                 std::to_string(++lambda_seq_) + ">";
      lam.name = "<lambda:" + std::to_string(at(i).line) + ">";
      lam.file = file_;
      lam.line = at(i).line;
      lam.is_lambda = true;
      lam.role = lambda_role(call_stack, &lam.sink);
      const int lam_idx = static_cast<int>(model_->fns.size());
      model_->fns.push_back(std::move(lam));
      parse_stmt_region(j + 1, body_close,
                        &model_->fns[static_cast<std::size_t>(lam_idx)],
                        call_stack);
      i = body_close + 1;
      continue;
    }
    if (is_ident(i)) {
      auto [chain, j] = read_chain(i, e);
      if (chain.empty()) {
        ++i;
        continue;
      }
      std::size_t after = j;
      if (is(after, "<")) {
        const std::size_t past = skip_angles(after, e);
        if (past != after && is(past, "(")) after = past;
      }
      std::string last = chain;
      if (const auto pos = last.rfind("::"); pos != std::string::npos) {
        last = last.substr(pos + 2);
      }
      // `Type name(args)` is a declaration, not a call: when the chain is
      // directly preceded by an identifier (that is not a statement
      // keyword) or a template '>', the chain is the declared NAME.
      bool is_decl = false;
      if (i > b) {
        static const std::set<std::string> stmt_kw = {
            "return", "else", "do", "throw", "case", "goto",
            "new",    "delete", "co_return", "co_yield", "co_await",
        };
        if (is(i - 1, ">")) {
          is_decl = true;
        } else if (is_ident(i - 1) && stmt_kw.count(at(i - 1).text) == 0) {
          is_decl = true;
        }
      }
      if (!is_decl && is(after, "(") && call_keywords().count(last) == 0 &&
          call_keywords().count(chain) == 0) {
        CallSite site;
        site.callee = chain;
        site.line = at(i).line;
        site.member = i > b && (is(i - 1, ".") || is(i - 1, "->"));
        // Argument count for arity-filtered resolution. A pack expansion
        // (`f(args...)`) makes the real count unknowable here — leave -1.
        const Arity call_ar = count_arity(after);
        site.args = call_ar.variadic ? -1 : call_ar.params;
        // Discard analysis: the call's value is dropped when the matching
        // ')' is followed by ';' and the full postfix expression opens the
        // statement.
        const int m = toks_[after].match;
        if (m > 0 && is(static_cast<std::size_t>(m) + 1, ";")) {
          std::size_t start = i;
          while (start > b && (is(start - 1, ".") || is(start - 1, "->"))) {
            std::size_t p = start - 1;  // at the access operator
            if (p == b) break;
            const std::size_t recv = p - 1;
            if (is_ident(recv)) {
              std::size_t r = recv;
              while (r > b && is(r - 1, "::") && r >= 2 && is_ident(r - 2)) {
                r -= 2;
              }
              start = r;
            } else if ((is(recv, ")") || is(recv, "]")) &&
                       toks_[recv].match >= 0) {
              // Jump the group, then keep absorbing its own postfix head.
              std::size_t open = static_cast<std::size_t>(toks_[recv].match);
              while (open > b && (is_ident(open - 1) || is(open - 1, "::"))) {
                --open;
              }
              start = open;
            } else {
              break;
            }
          }
          bool voided = false;
          bool at_stmt_start = start == b;
          if (!at_stmt_start) {
            const std::size_t p = start - 1;
            const std::string& pt = at(p).text;
            if (pt == ";" || pt == "{" || pt == "}" || pt == "else" ||
                pt == "do") {
              at_stmt_start = true;
            } else if (pt == ")" && toks_[p].match >= 0 &&
                       static_cast<std::size_t>(toks_[p].match) + 2 == p &&
                       is(p - 1, "void")) {
              // (void)expr; — explicit discard.
              voided = true;
              const std::size_t q = static_cast<std::size_t>(toks_[p].match);
              const std::string& qt = q == b ? ";" : at(q - 1).text;
              at_stmt_start =
                  q == b || qt == ";" || qt == "{" || qt == "}";
            }
          }
          if (at_stmt_start) {
            site.discarded = true;
            site.voided = voided;
          }
        }
        model_->fns[static_cast<std::size_t>(fn_idx)].calls.push_back(site);
        (void)cur;
        pending_tag = chain;
        i = after;  // next iteration pushes the '(' with the tag
        continue;
      }
      i = j;
      continue;
    }
    if (t == "{" || t == "}" || t == "]") {
      ++i;
      continue;
    }
    ++i;
  }
  // Unwind any unbalanced opens from this region.
  while (call_stack.size() > base_depth) call_stack.pop_back();
  return e;
}

// ---------------------------------------------------------------------------
// Allow annotations and the include graph (line-oriented passes over the
// lexer output, mirroring splap-lint's annotation semantics).
// ---------------------------------------------------------------------------

constexpr const char* kBadAllow = "bad-allow";

const std::set<std::string>& known_rules() {
  static const std::set<std::string> k = {
      "blocking-reachability", "layering-net", "layering-context",
      "status-discard",
  };
  return k;
}

void collect_annotations(const std::string& file,
                         const std::vector<lint::Line>& lines, Model* m) {
  static const std::regex allow_re(
      R"(splap-graph:\s*allow\(([^)\s]*)\)\s*(:?)\s*(.*))");
  std::set<std::string> pending;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const lint::Line& ln = lines[i];
    const int lineno = static_cast<int>(i) + 1;
    if (ln.comment.find("splap-graph:") != std::string::npos) {
      std::smatch mm;
      const std::string c = ln.comment;
      if (std::regex_search(c, mm, allow_re)) {
        const std::string rule_id = mm[1];
        const bool has_colon = mm[2].length() > 0;
        const std::string just = mm[3];
        if (known_rules().count(rule_id) == 0) {
          m->annotation_errors.push_back(Violation{
              file, lineno, kBadAllow,
              "allow-annotation names unknown rule '" + rule_id + "'"});
        } else if (!has_colon || lint::blank(just)) {
          m->annotation_errors.push_back(Violation{
              file, lineno, kBadAllow,
              "allow(" + rule_id +
                  ") without a justification (write `// splap-graph: "
                  "allow(" + rule_id + "): <why this path cannot fire>`)"});
        } else if (lint::blank(ln.code)) {
          pending.insert(rule_id);
        } else {
          m->allows[file][lineno].insert(rule_id);
        }
      } else {
        m->annotation_errors.push_back(
            Violation{file, lineno, kBadAllow,
                      "malformed splap-graph annotation (expected "
                      "`splap-graph: allow(<rule>): <justification>`)"});
      }
    }
    if (!lint::blank(ln.code) && !pending.empty()) {
      auto& slot = m->allows[file][lineno];
      slot.insert(pending.begin(), pending.end());
      pending.clear();
    }
  }
}

void collect_includes(const std::string& file,
                      const std::vector<lint::Line>& lines, Model* m) {
  static const std::regex inc_re(R"(^\s*#\s*include\s*"([^"]+)\")");
  auto& edges = m->includes[file];
  for (std::size_t i = 0; i < lines.size(); ++i) {
    // Commented-out includes must not count: require the directive to be
    // code, which the lexer confirms by leaving the '#' in the code text.
    const std::string& code = lines[i].code;
    const std::size_t first = code.find_first_not_of(" \t");
    if (first == std::string::npos || code[first] != '#') continue;
    std::smatch mm;
    const std::string raw = lines[i].raw;
    if (!std::regex_search(raw, mm, inc_re)) continue;
    const std::string target = "src/" + std::string(mm[1]);
    if (m->files.count(target) != 0) {
      edges.push_back(IncludeEdge{target, static_cast<int>(i) + 1});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

bool Model::allowed(const std::string& file, int line,
                    std::string_view rule) const {
  const auto fit = allows.find(file);
  if (fit == allows.end()) return false;
  const auto lit = fit->second.find(line);
  if (lit == fit->second.end()) return false;
  return lit->second.count(std::string(rule)) != 0;
}

namespace {

/// The candidate's callable arity range: its definition's parameter list,
/// widened by every in-class declaration of the same method name (where the
/// default arguments live).
std::pair<int, int> callable_range(const Model& m, const Function& f) {
  int lo = f.min_params;
  int hi = f.variadic ? kUnboundedArity : f.max_params;
  const auto pos = f.qual.rfind("::");
  if (pos != std::string::npos) {
    const auto cit = m.classes.find(f.qual.substr(0, pos));
    if (cit != m.classes.end()) {
      const auto mit = cit->second.method_arity.find(f.name);
      if (mit != cit->second.method_arity.end()) {
        lo = std::min(lo, mit->second.first);
        hi = std::max(hi, mit->second.second);
      }
    }
  }
  return {lo, hi};
}

}  // namespace

std::vector<int> Model::resolve(std::string_view callee, int args) const {
  std::vector<int> out;
  if (callee.find("::") != std::string_view::npos) {
    const std::string pat(callee);
    for (std::size_t i = 0; i < fns.size(); ++i) {
      const Function& f = fns[i];
      if (f.is_lambda) continue;
      if (f.qual == pat ||
          (f.qual.size() > pat.size() + 2 &&
           f.qual.compare(f.qual.size() - pat.size(), pat.size(), pat) == 0 &&
           f.qual.compare(f.qual.size() - pat.size() - 2, 2, "::") == 0)) {
        out.push_back(static_cast<int>(i));
      }
    }
  } else if (const auto it = by_simple_name.find(std::string(callee));
             it != by_simple_name.end()) {
    out = it->second;
  }
  if (args < 0 || out.empty()) return out;
  // Arity filter: drop candidates that cannot accept this argument count.
  // Free functions declared-with-defaults in one file and defined in another
  // are not widened (we only merge in-class declarations) — a documented
  // approximation; member arity is the case that matters for precision.
  // An empty result after filtering is the point: `ptr.get()` sharing a
  // simple name with a four-argument GlobalArray::get means the call goes
  // to something outside the index, so the edge should not exist.
  std::vector<int> kept;
  for (const int i : out) {
    const auto [lo, hi] =
        callable_range(*this, fns[static_cast<std::size_t>(i)]);
    if (args >= lo && args <= hi) kept.push_back(i);
  }
  return kept;
}

Model build_model(const std::vector<SourceFile>& files) {
  Model m;
  for (const SourceFile& f : files) m.files.insert(f.path);
  for (const SourceFile& f : files) {
    const std::vector<lint::Line> lines = lint::lex_lines(f.content);
    collect_annotations(f.path, lines, &m);
    collect_includes(f.path, lines, &m);
    Parser p(f.path, lines, &m);
    p.run();
  }
  return m;
}

// ---------------------------------------------------------------------------
// Catalogue and drivers
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> infos = {
      {"blocking-reachability",
       "no call path from a handler-context entry point may reach a "
       "suspension primitive (suspend/wait/compute/SimMutex::lock/barrier)"},
      {"layering-net",
       "src/net must not reach lapi/, mpl/ or ga/ headers through its "
       "transitive include closure"},
      {"layering-context",
       "transport layers (mpl/, lapi/{reliable,assembly,progress}) must not "
       "reach lapi/context.hpp through their transitive include closure"},
      {"status-discard",
       "call sites in src/{lapi,mpl,ga,net} must not drop a Status-returning "
       "result on the floor"},
      {kBadAllow,
       "allow-annotation must name a known rule and carry a non-empty "
       "justification"},
  };
  return infos;
}

std::vector<Violation> analyze(const std::vector<SourceFile>& files) {
  const Model m = build_model(files);
  std::vector<Violation> out = m.annotation_errors;
  for (auto&& v : check_blocking(m)) out.push_back(std::move(v));
  for (auto&& v : check_layering(m)) out.push_back(std::move(v));
  for (auto&& v : check_status_discard(m)) out.push_back(std::move(v));
  std::stable_sort(out.begin(), out.end(),
                   [](const Violation& a, const Violation& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return out;
}

std::vector<SourceFile> load_tree(const std::filesystem::path& root) {
  std::vector<std::filesystem::path> paths;
  const std::filesystem::path base = root / "src";
  if (std::filesystem::exists(base)) {
    for (const auto& e :
         std::filesystem::recursive_directory_iterator(base)) {
      if (!e.is_regular_file()) continue;
      const std::string ext = e.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h" ||
          ext == ".inl") {
        paths.push_back(e.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());  // deterministic model order
  std::vector<SourceFile> out;
  for (const auto& p : paths) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    out.push_back(SourceFile{
        std::filesystem::relative(p, root).generic_string(), ss.str()});
  }
  return out;
}

}  // namespace splap::graph
