// splap-lint: project-specific determinism lint for the splap tree.
//
// Every performance claim this repro makes rests on one invariant: same seed
// => bit-identical event trace. The constructs that silently break it are
// always the same few — wall-clock time sources, randomness that bypasses
// base/rng.hpp, iteration over hash containers on trace-affecting paths,
// pointer-valued keys in ordered containers (ASLR makes their order differ
// run to run) — so instead of rediscovering each violation as a corrupted
// golden trace, this lint bans them mechanically.
//
// The linter is deliberately textual (comment/string-stripped regex over
// lines, not a C++ parser): the rules target tokens that are unambiguous at
// the lexical level, and a zero-dependency tool can run in every build. The
// escape hatch is an annotation carrying a mandatory justification:
//
//   // splap-lint: allow(<rule-id>): <why this is trace-neutral>
//
// placed on the offending line or on its own line directly above it. An
// annotation without a justification (or naming an unknown rule) is itself
// a violation, so the escape hatch cannot rot into a blanket mute.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace splap::lint {

struct Violation {
  std::string file;  // path as given (repo-relative for tree scans)
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The rule catalogue (stable ids; DESIGN.md section 7 documents each).
const std::vector<RuleInfo>& rules();

/// Lint one translation unit. `repo_rel` is the path relative to the repo
/// root with '/' separators — the path-scoped rules (unordered-container)
/// key off it. Violations come back in line order.
std::vector<Violation> scan_source(std::string_view repo_rel,
                                   std::string_view contents);

/// Lint a file on disk; `file` must live under `root`.
std::vector<Violation> scan_file(const std::filesystem::path& root,
                                 const std::filesystem::path& file);

/// Lint every C++ source under root/src and root/tests.
std::vector<Violation> scan_tree(const std::filesystem::path& root);

}  // namespace splap::lint
