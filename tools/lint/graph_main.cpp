// splap_graph CLI: call-graph / include-graph contract proofs over src/
// (see graph_core.hpp for the rule rationale). Exit 0 = clean, 1 =
// violations, 2 = usage error.
//
//   splap_graph --root <repo-root>   # analyze everything under src/
//   splap_graph --list-rules
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "graph_core.hpp"

int main(int argc, char** argv) {
  std::filesystem::path root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const auto& r : splap::graph::rules()) {
        std::printf("%-24s %s\n", r.id, r.summary);
      }
      return 0;
    } else {
      std::fprintf(stderr, "splap_graph: unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  std::error_code ec;
  root = std::filesystem::canonical(root, ec);
  if (ec) {
    std::fprintf(stderr, "splap_graph: bad --root: %s\n",
                 ec.message().c_str());
    return 2;
  }

  const auto sources = splap::graph::load_tree(root);
  if (sources.empty()) {
    std::fprintf(stderr, "splap_graph: no sources under %s/src\n",
                 root.string().c_str());
    return 2;
  }
  const auto violations = splap::graph::analyze(sources);
  for (const auto& v : violations) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "splap-graph: %zu violation%s\n", violations.size(),
                 violations.size() == 1 ? "" : "s");
    return 1;
  }
  std::printf("splap-graph: clean (%zu files)\n", sources.size());
  return 0;
}
