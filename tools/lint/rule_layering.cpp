// Include-closure layering: the per-line `layering-net`/`layering-context`
// rules that used to live in splap-lint only saw DIRECT includes, so a leak
// laundered through an intermediate header (net/foo.hpp -> net/util.hpp ->
// lapi/context.hpp) passed silently. Here the rules run over the transitive
// include closure and print the offending chain.
//
// Allow semantics are edge-level: annotating the include line that performs
// the leak cuts that edge out of the closure for every root that reaches it,
// so one justified annotation at the actual boundary crossing silences all
// downstream reports.
#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "graph_core.hpp"

namespace splap::graph {
namespace {

bool starts_with(std::string_view s, std::string_view p) {
  return s.substr(0, p.size()) == p;
}

bool in_net(std::string_view f) { return starts_with(f, "src/net/"); }

bool protocol_layer(std::string_view f) {
  return starts_with(f, "src/lapi/") || starts_with(f, "src/mpl/") ||
         starts_with(f, "src/ga/");
}

/// The files below the Context facade: the shared reliable core, the
/// assembly engine, the progress engine, and the whole MPL communicator
/// (a sibling client of the same transport machinery).
bool transport_layer(std::string_view f) {
  return starts_with(f, "src/mpl/") ||
         starts_with(f, "src/lapi/reliable.") ||
         starts_with(f, "src/lapi/assembly.") ||
         starts_with(f, "src/lapi/progress.");
}

struct LayerRule {
  const char* id;
  bool (*root_scope)(std::string_view);
  bool (*bad_target)(std::string_view);
  const char* what;
};

const std::vector<LayerRule>& layer_rules() {
  static const std::vector<LayerRule> r = {
      {"layering-net", &in_net, &protocol_layer,
       "src/net sits below the protocol libraries and must not reach lapi/, "
       "mpl/ or ga/ headers (dependency arrows point downward; DESIGN.md §5)"},
      {"layering-context", &transport_layer,
       [](std::string_view f) { return f == std::string_view("src/lapi/context.hpp"); },
       "reliable/assembly/progress and the MPL communicator sit below the "
       "Context facade and reach it only through their callback interfaces "
       "(Sender/Env/Sink)"},
  };
  return r;
}

}  // namespace

std::vector<Violation> check_layering(const Model& m) {
  std::vector<Violation> out;
  for (const LayerRule& rule : layer_rules()) {
    for (const std::string& root : m.files) {
      if (!rule.root_scope(root)) continue;
      // BFS over include edges, skipping edges allow-annotated for this
      // rule; the parent map reconstructs the shortest offending chain.
      struct Hop {
        std::string file;
        int parent = -1;
        int via_line = 0;  // include line in the parent
      };
      std::vector<Hop> order;
      std::map<std::string, int> seen;
      std::deque<int> queue;
      order.push_back(Hop{root, -1, 0});
      seen[root] = 0;
      queue.push_back(0);
      std::string chain;
      int report_line = 0;
      while (!queue.empty() && chain.empty()) {
        const int oi = queue.front();
        queue.pop_front();
        const std::string cur = order[static_cast<std::size_t>(oi)].file;
        const auto it = m.includes.find(cur);
        if (it == m.includes.end()) continue;
        for (const IncludeEdge& edge : it->second) {
          if (m.allowed(cur, edge.line, rule.id)) continue;
          if (rule.bad_target(edge.target)) {
            // Reconstruct root -> ... -> cur -> target.
            std::vector<std::string> hops;
            hops.push_back(edge.target);
            hops.push_back(cur + ":" + std::to_string(edge.line));
            int walk = oi;
            while (order[static_cast<std::size_t>(walk)].parent >= 0) {
              const Hop& h = order[static_cast<std::size_t>(walk)];
              const std::string& pf =
                  order[static_cast<std::size_t>(h.parent)].file;
              hops.push_back(pf + ":" + std::to_string(h.via_line));
              walk = h.parent;
            }
            std::ostringstream os;
            os << "include closure reaches a forbidden layer: ";
            for (auto hit = hops.rbegin(); hit != hops.rend(); ++hit) {
              if (hit != hops.rbegin()) os << " -> ";
              os << *hit;
            }
            os << " (" << rule.what << ")";
            chain = os.str();
            report_line = hops.size() > 1
                              ? [&] {
                                  // Line of the FIRST hop out of the root.
                                  int w = oi;
                                  int line = edge.line;
                                  while (order[static_cast<std::size_t>(w)]
                                             .parent >= 0) {
                                    line = order[static_cast<std::size_t>(w)]
                                               .via_line;
                                    w = order[static_cast<std::size_t>(w)]
                                            .parent;
                                  }
                                  return line;
                                }()
                              : edge.line;
            break;
          }
          if (seen.count(edge.target) != 0) continue;
          seen[edge.target] = static_cast<int>(order.size());
          order.push_back(Hop{edge.target, oi, edge.line});
          queue.push_back(seen[edge.target]);
        }
      }
      if (!chain.empty()) {
        out.push_back(Violation{root, report_line, rule.id, chain});
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Violation& a, const Violation& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return out;
}

}  // namespace splap::graph
