// status-discard: a call whose every resolution candidate returns Status,
// used as a full-expression statement with the result dropped, in the
// protocol layers (src/{lapi,mpl,ga,net}). The compiler's [[nodiscard]] on
// splap::Status catches most of these too, but only for translation units
// that actually build in the current configuration; this rule sees every
// file, headers included, and composes with the same allow-annotation
// discipline as the other splap-graph rules.
//
// Mixed-overload callees (some candidates return Status, some do not) are
// skipped — a bare-name resolution cannot tell which overload a site binds
// to, and a false positive here would train people to sprinkle (void).
// An explicit `(void)call()` is an intentional discard and never flagged.
#include <algorithm>
#include <string>
#include <vector>

#include "graph_core.hpp"

namespace splap::graph {
namespace {

constexpr const char* kRule = "status-discard";

bool in_scope(std::string_view f) {
  return f.rfind("src/lapi/", 0) == 0 || f.rfind("src/mpl/", 0) == 0 ||
         f.rfind("src/ga/", 0) == 0 || f.rfind("src/net/", 0) == 0;
}

}  // namespace

std::vector<Violation> check_status_discard(const Model& m) {
  std::vector<Violation> out;
  for (const Function& f : m.fns) {
    if (!in_scope(f.file)) continue;
    for (const CallSite& c : f.calls) {
      if (!c.discarded || c.voided) continue;
      if (m.allowed(f.file, c.line, kRule)) continue;
      const std::vector<int> targets = m.resolve(c.callee, c.args);
      if (targets.empty()) continue;
      bool all_status = true;
      for (const int t : targets) {
        if (!m.fns[static_cast<std::size_t>(t)].returns_status) {
          all_status = false;
          break;
        }
      }
      if (!all_status) continue;
      out.push_back(Violation{
          f.file, c.line, kRule,
          "result of `" + c.callee + "` (returns Status) is discarded in " +
              f.qual +
              "; check it, or write `(void)" + c.callee +
              "(...)` / annotate with `// splap-graph: allow(status-discard):"
              " <why>` if dropping it is deliberate"});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Violation& a, const Violation& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return out;
}

}  // namespace splap::graph
