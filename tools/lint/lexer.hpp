// Shared lexical pass for the splap static-analysis tools (splap-lint and
// splap-graph): split a C++ translation unit into per-line (code, comment,
// raw) triples with string/char-literal contents blanked out of the code
// text. Newlines are preserved so diagnostics stay line-accurate.
//
// This is deliberately NOT a C++ parser — it is the minimal pass that makes
// token-level analysis sound: rules and the graph builder never see comment
// or literal text, so `// rand() in a comment` and `"Actor::suspend"` in a
// log string can never fire anything.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace splap::lint {

struct Line {
  std::string code;     // comments and literal contents replaced by spaces
  std::string comment;  // concatenated comment text on this line
  std::string raw;      // the line verbatim (for include-directive rules,
                        // whose quoted paths the string pass blanks out)
};

/// Lex one translation unit into per-line triples. Index 0 is line 1.
std::vector<Line> lex_lines(std::string_view src);

/// True when `s` contains no non-whitespace character.
bool blank(const std::string& s);

}  // namespace splap::lint
