// Fixture: nothing here may raise `raw-rng`.
#include <cstdint>

// The project Rng is the only sanctioned randomness source.
struct Rng {
  explicit Rng(std::uint64_t seed) : s_(seed) {}
  std::uint64_t next_u64() { return s_ *= 6364136223846793005ULL; }
  std::uint64_t s_;
};

std::uint64_t ok0() { Rng r(42); return r.next_u64(); }
// Identifiers merely containing the banned substrings are fine:
int operand(int x) { return x; }     // contains "rand" mid-word
int mirand = 0;                      // ditto
// Comments mentioning rand(), srand(), std::mt19937 are fine.
const char* s = "std::random_device inside a string";
