// Fixture: transport layers may include their siblings and the layers
// below them — just not the facade.

#include "lapi/protocol.hpp"
#include "lapi/reliable.hpp"
#include "net/delivery.hpp"
