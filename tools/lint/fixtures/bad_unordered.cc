// Fixture: scanned under a pretend src/sim/ path, every line marked BAD
// must raise `unordered-container`.
#include <unordered_map>
#include <unordered_set>

struct S {
  std::unordered_map<int, int> m;       // BAD
  std::unordered_set<long> s;           // BAD
  std::unordered_multimap<int, int> mm; // BAD
};
