// Fixture: upward includes from the network layer (scanned under a pretend
// src/net/ path); every protocol-library include line must fire.

#include "lapi/context.hpp"
#include "mpl/comm.hpp"
#include "ga/array.hpp"
