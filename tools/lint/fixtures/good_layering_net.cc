// Fixture: system headers and downward/sibling includes are fine in
// src/net, and protocol names inside comments or strings are not includes.

#include <vector>

#include "base/time.hpp"
#include "net/packet.hpp"
#include "sim/engine.hpp"

// #include "lapi/context.hpp" — commented out, must not fire
const char* doc = "#include \"mpl/comm.hpp\"";
