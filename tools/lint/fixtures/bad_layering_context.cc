// Fixture: a transport layer reaching up to the Context facade (scanned
// under pretend src/mpl/ and src/lapi/{reliable,assembly,progress} paths).

#include "lapi/context.hpp"
