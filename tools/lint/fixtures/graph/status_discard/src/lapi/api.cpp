// status-discard shapes: a dropped Status fires; (void), an allow
// annotation, a checked result, and mixed-overload callees stay quiet.

namespace splap {

enum class Status { kOk, kBad };

namespace lapi {

Status op() { return Status::kOk; }

// Mixed overload set under one simple name at the SAME arity: a bare-name
// call site cannot tell which overload it binds, so the rule must skip it.
Status mixed(int a) { return a != 0 ? Status::kOk : Status::kBad; }
int mixed(double a) { return a > 0 ? 1 : 0; }

void driver() {
  op();  // BAD: result dropped on the floor
  (void)op();  // explicit discard: fine
  // splap-graph: allow(status-discard): teardown path, failure is benign
  op();
  const Status s = op();  // checked: fine
  (void)s;
  mixed(1);  // mixed overloads: skipped
}

}  // namespace lapi
}  // namespace splap
