// Out of scope for status-discard: the rule covers the protocol layers
// (src/{lapi,mpl,ga,net}), not the engine.

namespace splap::sim {

enum class Status { kOk };

Status tick() { return Status::kOk; }

void pump() {
  tick();  // dropped, but src/sim is not in scope
}

}  // namespace splap::sim
