// Regression fixture (the bug class splap-graph exists to catch): an event
// handler reaches Actor::compute through two layers of helpers. The runtime
// would only catch this when the path actually fires; the analyzer must
// fail the gate and print the full chain.
#include "sim/engine.hpp"

namespace splap::lapi {

void do_send(sim::Actor* a) {
  a->compute(5);  // suspension primitive, two hops below the handler
}

void helper_send(sim::Actor* a) {
  do_send(a);
}

void arm(sim::Engine& eng, sim::Actor* a) {
  eng.schedule_after(10, [a] {
    helper_send(a);
  });
}

}  // namespace splap::lapi
