// The legal shapes: an actor body may suspend freely; a handler may reach a
// guarded dual-mode call when the guarded edge carries an allow annotation;
// a stackless body that never suspends is fine.
#include "sim/engine.hpp"

namespace splap::lapi {

void charge(sim::Actor* a, Time t) {
  if (sim::Actor* cur = sim::Actor::current()) {
    // splap-graph: allow(blocking-reachability): guarded by Actor::current()
    // — handler-context callers fall through to the else branch.
    cur->compute(t);
  }
  (void)a;
}

void run(sim::Engine& eng, sim::Actor* a) {
  eng.spawn("worker", [a] {
    a->compute(100);  // actor bodies block freely
  });
  eng.schedule_after(10, [a] {
    charge(a, 5);  // reaches compute only through the annotated guard
  });
  eng.spawn_stackless("poller", [a] {
    (void)a;  // no suspension here: stays clean
  });
}

}  // namespace splap::lapi
