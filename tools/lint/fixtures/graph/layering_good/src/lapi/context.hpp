// Fixture facade header.
#pragma once

#include "net/fabric.hpp"

namespace splap::lapi {
class Context {};
}  // namespace splap::lapi
