// Leaf header: nothing upward here.
#pragma once
