// Downward-only includes are legal in every direction the rules look:
// the facade may include net/, net/ may include its own headers.
#pragma once

#include "net/detail.hpp"
