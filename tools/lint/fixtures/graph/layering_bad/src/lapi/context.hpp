// Fixture facade header: the thing the lower layers must not reach.
#pragma once

namespace splap::lapi {
class Context {};
}  // namespace splap::lapi
