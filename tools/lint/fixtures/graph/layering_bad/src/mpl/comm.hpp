// layering-context violation: a transport layer reaches the LAPI facade
// header through one level of indirection.
#pragma once

#include "mpl/internal.hpp"
