// Intermediate hop for the layering-context case.
#pragma once

#include "lapi/context.hpp"
