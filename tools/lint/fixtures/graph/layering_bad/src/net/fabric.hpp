// layering-net violation, but only transitively: fabric.hpp includes a
// sibling net/ header which reaches up into lapi/.
#pragma once

#include "net/detail.hpp"
