// The intermediate hop: a raw-line rule looking at fabric.hpp alone would
// never see the leak routed through this header.
#pragma once

#include "lapi/context.hpp"
