// Fixture engine (see suspend_under_handler/src/sim/engine.hpp).
#pragma once

using Time = long long;

namespace splap::sim {

class Actor {
 public:
  void suspend(const char* why) { (void)why; }
  void compute(Time d) { (void)d; }
  static Actor* current() { return nullptr; }
};

class Engine {
 public:
  template <class F>
  void schedule_after(Time d, F f) { (void)d; f(); }
  template <class F>
  void spawn(const char* name, F f) { (void)name; (void)f; }
  template <class F>
  void spawn_stackless(const char* name, F f) { (void)name; (void)f; }
};

}  // namespace splap::sim
