// The registration-cache miss path, done right: a cache miss charges the
// pin cost, and submit() is reachable from handler context (a Get reply is
// submitted from the assembly dispatch), so the charge must branch on
// Actor::current() — actor callers block for the pin, handler callers fold
// it into busy time. The guard carries the allow annotation, so the proof
// passes.
#include "sim/engine.hpp"

namespace splap::lapi {

struct RegCache {
  bool pin(long addr) { return addr == last_; }
  long last_ = 0;
};

void charge_pin(Time pin, Time* busy_until) {
  if (sim::Actor* cur = sim::Actor::current()) {
    // splap-graph: allow(blocking-reachability): guarded by Actor::current()
    // — handler-context callers (Get-reply submits) take the else branch
    // and accrue the pin into busy time instead of suspending.
    cur->compute(pin);
  } else {
    *busy_until += pin;
  }
}

void submit(RegCache& cache, long addr, Time* busy_until) {
  if (!cache.pin(addr)) {
    charge_pin(41, busy_until);  // miss: the adapter pins the region
  }
}

void serve(sim::Engine& eng, RegCache& cache, Time* busy_until) {
  eng.schedule_after(10, [&cache, busy_until] {
    submit(cache, 0x1000, busy_until);  // the Get-reply path: handler context
  });
}

}  // namespace splap::lapi
