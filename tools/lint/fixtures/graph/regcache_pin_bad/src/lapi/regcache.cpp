// The bug class the rdma blocking proof exists to catch: the registration
// pin charge calls Actor::compute unconditionally, and submit() is
// reachable from handler context (the assembly dispatch submits Get
// replies). The analyzer must fail the gate with the full chain — the
// runtime would only catch this once a cold-cache Get actually fired
// under a handler.
#include "sim/engine.hpp"

namespace splap::lapi {

struct RegCache {
  bool pin(long addr) { return addr == last_; }
  long last_ = 0;
};

void charge_pin(sim::Actor* a, Time pin) {
  a->compute(pin);  // suspends: illegal under a handler
}

void submit(RegCache& cache, sim::Actor* a, long addr) {
  if (!cache.pin(addr)) {
    charge_pin(a, 41);  // miss: the adapter pins the region
  }
}

void serve(sim::Engine& eng, RegCache& cache, sim::Actor* a) {
  eng.schedule_after(10, [&cache, a] {
    submit(cache, a, 0x1000);  // the Get-reply path: handler context
  });
}

}  // namespace splap::lapi
