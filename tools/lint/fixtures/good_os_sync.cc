// Fixture: nothing here may raise `os-sync` — concurrency above the engine
// is virtual (actors suspend, events order effects), and the one legitimate
// OS-sync use (out-of-band bootstrap state) carries a justified allow.
struct Actor {};
void block_on(Actor& a);
void handler(Actor& a) { block_on(a); }  // virtual blocking: fine
// splap-lint: allow(os-sync): out-of-band bootstrap registry, not simulated state
std::mutex boot_mu;
int plain_cache = 0;
