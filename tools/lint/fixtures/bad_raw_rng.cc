// Fixture: every line marked BAD must raise `raw-rng`.
int r0() { return rand(); }                          // BAD
void r1(unsigned s) { srand(s); }                    // BAD
int r2() { std::random_device rd; return rd(); }     // BAD
int r3() { std::mt19937 g(1); return (int)g(); }     // BAD
int r4() { std::mt19937_64 g(1); return (int)g(); }  // BAD
int r5() { std::minstd_rand g; return (int)g(); }    // BAD
int r6() { std::default_random_engine g; return 0; } // BAD
int r7() { std::uniform_int_distribution<int> d; return 0; }   // BAD
int r8() { std::uniform_real_distribution<float> d; return 0; } // BAD
int r9() { std::bernoulli_distribution d; return 0; }           // BAD
