// Fixture: every line marked BAD must raise `banned-include` (and the
// <random>/<chrono> lines additionally carry no other code, so no second
// rule fires on them).
#include <random>      // BAD
#include <chrono>      // BAD
#include <ctime>       // BAD
#include <sys/time.h>  // BAD
#include <time.h>      // BAD
