// Fixture: nothing here may raise `pointer-key` — pointers as VALUES are
// fine (never part of the comparison order), as are value keys.
#include <cstdint>
#include <map>
#include <set>
#include <vector>

struct Actor {};

std::map<std::int64_t, Actor*> by_id;       // pointer value, id key: fine
std::map<int, std::vector<Actor*>> lists;   // pointer in value type: fine
std::set<std::uint64_t> seen;               // value key
std::vector<Actor*> order;                  // vector is not ordered-assoc
std::map<std::pair<int, int>, int> pairs;   // compound value key
