// Fixture: an allow naming an unknown rule is a violation (bad-allow) and
// mutes nothing.
long t() { return time(nullptr); }  // splap-lint: allow(wibble): no such rule
