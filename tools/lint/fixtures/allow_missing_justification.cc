// Fixture: an allow without a justification is itself a violation
// (bad-allow) and does NOT mute the underlying rule.
#include <unordered_map>  // splap-lint: allow(unordered-container)

// splap-lint: allow(wall-clock):
long t() { return time(nullptr); }
