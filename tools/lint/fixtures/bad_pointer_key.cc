// Fixture: every line marked BAD must raise `pointer-key`.
#include <map>
#include <set>

struct Actor {};
struct Rec {};

std::map<Actor*, int> owners;              // BAD
std::set<Rec*> live;                       // BAD
std::set<const Actor*> watchers;           // BAD
std::map<Actor*, std::set<int>> waiting;   // BAD
std::multiset<Rec*> multi;                 // BAD
