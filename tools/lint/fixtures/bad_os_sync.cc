// Fixture: every line marked BAD must raise `os-sync`.
#include <atomic>
#include <mutex>

std::mutex mu;                                 // BAD
std::recursive_mutex rmu;                      // BAD
std::condition_variable cv;                    // BAD
std::thread worker;                            // BAD
std::atomic<int> flag;                         // BAD
thread_local int cache = 0;                    // BAD
int e = pthread_mutex_lock(nullptr);           // BAD
