// Fixture: every line marked BAD must raise `wall-clock`.
#include <cstdint>

std::int64_t t0() { return std::chrono::duration_cast<int>(0); }  // BAD
void t1() { auto x = std::chrono::system_clock::now(); (void)x; }  // BAD
long t2() { return time(nullptr); }                                // BAD
long t3() { return time(0); }                                      // BAD
long t4() { return clock(); }                                      // BAD
int t5() { struct timeval tv; return gettimeofday(&tv, 0); }       // BAD
int t6() { return clock_gettime(0, nullptr); }                     // BAD
