// Fixture: nothing here may raise `banned-include`.
#include <cstdint>
#include <ratio>     // not banned (no clock in it)
#include <string>
// #include <chrono> in a comment is fine.
const char* s = "#include <random>";  // string literal, not an include
