// Fixture: the same hash containers are legal OUTSIDE the trace-affecting
// dirs (this file is scanned under a pretend src/base/ path) — shadow state
// and tooling may hash freely as long as the trace never observes it.
#include <map>
#include <unordered_map>

struct S {
  std::unordered_map<int, int> shadow;  // fine under src/base/
  std::map<int, int> ordered;           // ordered+value key: always fine
};
