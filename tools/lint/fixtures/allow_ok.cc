// Fixture: properly justified annotations mute their rule — scanned under a
// pretend src/sim/ path, this file must come back clean.
#include <unordered_map>  // splap-lint: allow(unordered-container): fixture: include for shadow state below

struct S {
  // splap-lint: allow(unordered-container): shadow index for O(1) membership, never iterated
  std::unordered_map<int, int> shadow;
  std::unordered_map<int, int> shadow2;  // splap-lint: allow(unordered-container): same as above; trace-neutral
};

long t() { return time(nullptr); }  // splap-lint: allow(wall-clock): fixture demonstrating a trailing allow
