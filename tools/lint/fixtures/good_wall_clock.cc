// Fixture: nothing here may raise `wall-clock` — these are the look-alikes
// the rule must not trip on.
#include <cstdint>

using Time = std::int64_t;

// Virtual-time helpers named *time* are fine (wire_time, transfer_time).
Time wire_time(std::int64_t bytes) { return bytes * 8; }
Time transfer_time(std::int64_t b) { return wire_time(b); }
// A comment mentioning system_clock or time(nullptr) is not a violation.
Time runtime(Time t) { return t; }   // identifier containing "time"
Time daytime_offset = 0;             // ditto
const char* s = "std::chrono::system_clock";  // string literal, not code
