#include "lexer.hpp"

#include <algorithm>
#include <cctype>

namespace splap::lint {

std::vector<Line> lex_lines(std::string_view src) {
  std::vector<Line> lines(1);
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State st = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  auto* cur = &lines.back();
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = src[i];
    const char next = i + 1 < n ? src[i + 1] : '\0';
    if (c == '\n') {
      if (st == State::kLineComment) st = State::kCode;
      lines.emplace_back();
      cur = &lines.back();
      continue;
    }
    cur->raw.push_back(c);
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          st = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (cur->code.empty() ||
                    (!std::isalnum(static_cast<unsigned char>(
                         cur->code.back())) &&
                     cur->code.back() != '_'))) {
          // Raw string literal: R"delim( ... )delim"
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < n && src[j] != '(' && src[j] != '\n') {
            raw_delim.push_back(src[j]);
            ++j;
          }
          if (j < n && src[j] == '(') {
            cur->code += "R\"\"";
            i = j;  // consume through the '('
            st = State::kRawString;
          } else {
            cur->code.push_back(c);  // not actually a raw string
          }
        } else if (c == '"') {
          cur->code.push_back('"');
          st = State::kString;
        } else if (c == '\'') {
          cur->code.push_back('\'');
          st = State::kChar;
        } else {
          cur->code.push_back(c);
        }
        break;
      case State::kLineComment:
        cur->comment.push_back(c);
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          st = State::kCode;
          ++i;
        } else {
          cur->comment.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          ++i;
        } else if (c == '"') {
          cur->code.push_back('"');
          st = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          ++i;
        } else if (c == '\'') {
          cur->code.push_back('\'');
          st = State::kCode;
        }
        break;
      case State::kRawString: {
        // Look for )delim"
        if (c == ')' && n - i > raw_delim.size() + 1 &&
            src.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            src[i + 1 + raw_delim.size()] == '"') {
          i += raw_delim.size() + 1;
          st = State::kCode;
        }
        break;
      }
    }
  }
  return lines;
}

bool blank(const std::string& s) {
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
}

}  // namespace splap::lint
