// Self-test for splap-lint: every rule must both FIRE on its bad fixture
// and STAY QUIET on the matching good fixture, and the allow-annotation
// contract (justified = muted, unjustified/unknown = bad-allow) must hold.
// Fixture files live under SPLAP_LINT_FIXTURE_DIR (set by CMake); the
// path-scoped rules are exercised by scanning fixture CONTENT under pretend
// repo-relative paths.
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint_core.hpp"

namespace splap::lint {
namespace {

std::string fixture(const std::string& name) {
  const std::string path = std::string(SPLAP_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Rules that fired, with their line numbers.
std::multiset<std::pair<std::string, int>> fired(
    const std::vector<Violation>& vs) {
  std::multiset<std::pair<std::string, int>> out;
  for (const auto& v : vs) out.insert({v.rule, v.line});
  return out;
}

std::multiset<std::string> fired_rules(const std::vector<Violation>& vs) {
  std::multiset<std::string> out;
  for (const auto& v : vs) out.insert(v.rule);
  return out;
}

std::multiset<std::string> n_of(int n, const char* rule) {
  std::multiset<std::string> out;
  for (int i = 0; i < n; ++i) out.insert(rule);
  return out;
}

TEST(LintRules, WallClockFiresOnEachBadLine) {
  const auto v = scan_source("src/sim/x.cc", fixture("bad_wall_clock.cc"));
  EXPECT_EQ(fired(v), (std::multiset<std::pair<std::string, int>>{
                          {"wall-clock", 4},
                          {"wall-clock", 5},
                          {"wall-clock", 6},
                          {"wall-clock", 7},
                          {"wall-clock", 8},
                          {"wall-clock", 9},
                          {"wall-clock", 10}}));
}

TEST(LintRules, WallClockQuietOnLookalikes) {
  const auto v = scan_source("src/sim/x.cc", fixture("good_wall_clock.cc"));
  EXPECT_TRUE(v.empty()) << v.front().line << ": " << v.front().message;
}

TEST(LintRules, RawRngFiresOnEachBadLine) {
  const auto v = scan_source("tests/x.cc", fixture("bad_raw_rng.cc"));
  EXPECT_EQ(fired_rules(v), n_of(10, "raw-rng"));
}

TEST(LintRules, RawRngQuietOnLookalikes) {
  const auto v = scan_source("tests/x.cc", fixture("good_raw_rng.cc"));
  EXPECT_TRUE(v.empty()) << v.front().line << ": " << v.front().message;
}

TEST(LintRules, BannedIncludeFiresOnEachBadLine) {
  const auto v = scan_source("src/base/x.cc", fixture("bad_banned_include.cc"));
  EXPECT_EQ(fired(v), (std::multiset<std::pair<std::string, int>>{
                          {"banned-include", 4},
                          {"banned-include", 5},
                          {"banned-include", 6},
                          {"banned-include", 7},
                          {"banned-include", 8}}));
}

TEST(LintRules, BannedIncludeQuietOnLookalikes) {
  const auto v = scan_source("src/base/x.cc", fixture("good_banned_include.cc"));
  EXPECT_TRUE(v.empty()) << v.front().line << ": " << v.front().message;
}

TEST(LintRules, UnorderedContainerFiresInTraceDirs) {
  const std::string content = fixture("bad_unordered.cc");
  for (const char* dir : {"src/sim/x.cc", "src/net/x.cc", "src/lapi/x.cc",
                          "src/mpl/x.cc"}) {
    const auto v = scan_source(dir, content);
    // Two includes + three members.
    EXPECT_EQ(fired_rules(v), n_of(5, "unordered-container"))
        << "under " << dir;
  }
}

TEST(LintRules, UnorderedContainerQuietOutsideTraceDirs) {
  const std::string content = fixture("good_unordered.cc");
  for (const char* dir : {"src/base/x.cc", "src/ga/x.cc", "tests/x.cc"}) {
    EXPECT_TRUE(scan_source(dir, content).empty()) << "under " << dir;
  }
  // And the bad fixture itself is legal outside the trace dirs.
  EXPECT_TRUE(scan_source("src/base/x.cc", fixture("bad_unordered.cc")).empty());
}

TEST(LintRules, PointerKeyFiresOnEachBadLine) {
  const auto v = scan_source("src/mpl/x.cc", fixture("bad_pointer_key.cc"));
  EXPECT_EQ(fired(v), (std::multiset<std::pair<std::string, int>>{
                          {"pointer-key", 8},
                          {"pointer-key", 9},
                          {"pointer-key", 10},
                          {"pointer-key", 11},
                          {"pointer-key", 12}}));
}

TEST(LintRules, PointerKeyQuietOnPointerValues) {
  const auto v = scan_source("src/mpl/x.cc", fixture("good_pointer_key.cc"));
  EXPECT_TRUE(v.empty()) << v.front().line << ": " << v.front().message;
}

TEST(LintRules, OsSyncFiresOnEachBadLine) {
  const auto v = scan_source("src/lapi/x.cc", fixture("bad_os_sync.cc"));
  EXPECT_EQ(fired(v), (std::multiset<std::pair<std::string, int>>{
                          {"os-sync", 5},
                          {"os-sync", 6},
                          {"os-sync", 7},
                          {"os-sync", 8},
                          {"os-sync", 9},
                          {"os-sync", 10},
                          {"os-sync", 11}}));
}

TEST(LintRules, OsSyncQuietOnVirtualCodeAndBelowProtocolLayers) {
  EXPECT_TRUE(
      scan_source("src/lapi/x.cc", fixture("good_os_sync.cc")).empty());
  // The engine layer owns the real threads (worker lanes, actor handoff):
  // the same primitives are legal under src/sim and src/base.
  EXPECT_TRUE(
      scan_source("src/sim/x.cc", fixture("bad_os_sync.cc")).empty());
  EXPECT_TRUE(
      scan_source("src/base/x.cc", fixture("bad_os_sync.cc")).empty());
}

// The layering-net / layering-context rules moved to splap-graph
// (graph_selftest.cpp), which checks them over the transitive include
// closure instead of raw #include lines.

TEST(LintAllow, JustifiedAllowMutesTheRule) {
  const auto v = scan_source("src/sim/x.cc", fixture("allow_ok.cc"));
  EXPECT_TRUE(v.empty()) << v.front().line << ": [" << v.front().rule << "] "
                         << v.front().message;
}

TEST(LintAllow, MissingJustificationIsAViolationAndMutesNothing) {
  const auto v = scan_source("src/sim/x.cc",
                             fixture("allow_missing_justification.cc"));
  // Line 3: bad-allow + the un-muted unordered-container.
  // Line 5: bad-allow (empty justification after the colon).
  // Line 6: the un-muted wall-clock.
  EXPECT_EQ(fired(v), (std::multiset<std::pair<std::string, int>>{
                          {"bad-allow", 3},
                          {"unordered-container", 3},
                          {"bad-allow", 5},
                          {"wall-clock", 6}}));
}

TEST(LintAllow, UnknownRuleIsAViolationAndMutesNothing) {
  const auto v = scan_source("src/sim/x.cc", fixture("allow_unknown_rule.cc"));
  EXPECT_EQ(fired(v), (std::multiset<std::pair<std::string, int>>{
                          {"bad-allow", 3},
                          {"wall-clock", 3}}));
}

TEST(LintLexer, CommentsStringsAndRawStringsAreNotCode) {
  const char* src =
      "const char* a = \"rand()\";\n"
      "// rand() in a line comment\n"
      "/* std::mt19937 in a block\n"
      "   comment spanning lines */\n"
      "const char* b = R\"(std::random_device)\";\n"
      "char c = '\\'';  int ok = 1;\n";
  EXPECT_TRUE(scan_source("src/sim/x.cc", src).empty());
}

TEST(LintLexer, CodeAfterBlockCommentStillScanned) {
  const char* src = "/* c */ int x = rand();\n";
  const auto v = scan_source("tests/x.cc", src);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "raw-rng");
  EXPECT_EQ(v[0].line, 1);
}

TEST(LintCatalogue, ListsEveryRule) {
  std::set<std::string> ids;
  for (const auto& r : rules()) ids.insert(r.id);
  EXPECT_EQ(ids, (std::set<std::string>{"wall-clock", "raw-rng",
                                        "banned-include",
                                        "unordered-container", "pointer-key",
                                        "os-sync", "bad-allow"}));
}

}  // namespace
}  // namespace splap::lint
