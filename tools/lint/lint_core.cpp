#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "lexer.hpp"

namespace splap::lint {
namespace {

// ---------------------------------------------------------------------------
// Rules (the lexical pass lives in lexer.hpp, shared with splap-graph)
// ---------------------------------------------------------------------------

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool in_trace_dirs(std::string_view rel) {
  return starts_with(rel, "src/sim/") || starts_with(rel, "src/net/") ||
         starts_with(rel, "src/lapi/") || starts_with(rel, "src/mpl/");
}

/// The layers above the engine: all concurrency there is virtual (actors
/// suspend, events order effects). Only src/sim and src/base may own real
/// threads, locks or atomics — the engine's worker lanes and actor handoff
/// are the single place OS concurrency is allowed to live.
bool in_protocol_layers(std::string_view rel) {
  return starts_with(rel, "src/net/") || starts_with(rel, "src/lapi/") ||
         starts_with(rel, "src/mpl/") || starts_with(rel, "src/ga/");
}

struct Rule {
  const char* id;
  const char* summary;
  const char* message;
  std::regex pattern;
  bool (*in_scope)(std::string_view rel);
  /// Match against the verbatim line instead of the blanked code text
  /// (needed for `#include "..."` rules: the quoted path is a string
  /// literal, which the lexical pass blanks). Comment-only lines are still
  /// skipped, so commented-out includes never fire.
  bool raw = false;
};

bool scope_all(std::string_view) { return true; }

const std::vector<Rule>& rule_table() {
  static const std::vector<Rule> rules = [] {
    std::vector<Rule> r;
    const auto f = std::regex::ECMAScript | std::regex::optimize;
    r.push_back(Rule{
        "wall-clock",
        "no wall-clock time sources; all time is virtual (base/time.hpp)",
        "wall-clock time source on a simulated path (virtual time only; "
        "see base/time.hpp)",
        std::regex(R"(std::chrono|\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b|\bgettimeofday\b|\bclock_gettime\b|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)|\bclock\s*\(\s*\))",
                   f),
        &scope_all});
    r.push_back(Rule{
        "raw-rng",
        "all randomness must flow through base/rng.hpp seeding discipline",
        "randomness source bypassing base/rng.hpp (unseedable or "
        "wall-clock-seeded; breaks same-seed reproduction)",
        std::regex(R"(\brand\s*\(|\bsrand\s*\(|\brandom_device\b|\bmt19937(?:_64)?\b|\bminstd_rand0?\b|\branlux(?:24|48)(?:_base)?\b|\bdefault_random_engine\b|\bknuth_b\b|\buniform_(?:int|real)_distribution\b|\bbernoulli_distribution\b|\bnormal_distribution\b)",
                   f),
        &scope_all});
    r.push_back(Rule{
        "banned-include",
        "headers that exist only to provide banned constructs",
        "banned include: this header's facilities are nondeterministic on "
        "simulated paths (<random>/<chrono>/<ctime>)",
        std::regex(R"(^\s*#\s*include\s*<(?:random|chrono|ctime|time\.h|sys/time\.h)>)",
                   f),
        &scope_all});
    r.push_back(Rule{
        "unordered-container",
        "no unordered_{map,set} on trace-affecting paths "
        "(src/sim, src/net, src/lapi)",
        "hash container on a trace-affecting path: iteration order is "
        "implementation- and address-dependent; use an ordered container "
        "with a value key, or annotate why it is never iterated",
        std::regex(R"(\bunordered_(?:map|set|multimap|multiset)\b)", f),
        &in_trace_dirs});
    r.push_back(Rule{
        "pointer-key",
        "no pointer-valued keys in ordered containers",
        "pointer-valued key in an ordered container: comparison order "
        "follows the allocator/ASLR, not the program; key by a stable id "
        "instead",
        std::regex(R"(std::(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[A-Za-z_][A-Za-z0-9_:<>\s]*?\*\s*[,>])",
                   f),
        &scope_all});
    r.push_back(Rule{
        "os-sync",
        "no OS threads/locks/atomics above the engine "
        "(virtual concurrency only)",
        "OS concurrency primitive in a protocol layer: code above the "
        "engine runs on virtual time and synchronizes through actors and "
        "events (the parallel worker lanes order cross-node effects "
        "deterministically); real locks or atomics here would hide "
        "nondeterminism from the trace gate",
        std::regex(R"(\bstd::(?:recursive_|timed_|shared_)?mutex\b|\bstd::condition_variable(?:_any)?\b|\bstd::(?:jthread|thread)\b|\bstd::atomic\b|\bstd::atomic_\w+|\bthread_local\b|\bpthread_\w+)",
                   f),
        &in_protocol_layers});
    // Layering is no longer enforced here: the raw-line `layering-net` and
    // `layering-context` rules moved to splap-graph, whose include-closure
    // pass also catches indirect leaks through intermediate headers.
    return r;
  }();
  return rules;
}

// The annotation rule is not in the table: it fires from the annotation
// parser, not from a pattern.
constexpr const char* kBadAllow = "bad-allow";

struct Annotation {
  std::set<std::string> allowed;  // rules muted on the target line
};

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> infos = [] {
    std::vector<RuleInfo> v;
    for (const Rule& r : rule_table()) v.push_back(RuleInfo{r.id, r.summary});
    v.push_back(RuleInfo{kBadAllow,
                         "allow-annotation must name a known rule and carry "
                         "a non-empty justification"});
    return v;
  }();
  return infos;
}

std::vector<Violation> scan_source(std::string_view repo_rel,
                                   std::string_view contents) {
  std::vector<Violation> out;
  const std::vector<Line> lines = lex_lines(contents);
  const std::string file(repo_rel);

  // Pass 1: collect allow-annotations. An annotation on a comment-only line
  // applies to the next line with code (chaining through further comment
  // lines); a trailing annotation applies to its own line.
  std::vector<Annotation> per_line(lines.size() + 1);
  static const std::regex allow_re(
      R"(splap-lint:\s*allow\(([^)\s]*)\)\s*(:?)\s*(.*))");
  std::set<std::string> known;
  for (const Rule& r : rule_table()) known.insert(r.id);
  Annotation pending;  // from comment-only lines, waiting for code
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const Line& ln = lines[i];
    const int lineno = static_cast<int>(i) + 1;
    if (ln.comment.find("splap-lint:") != std::string::npos) {
      std::smatch m;
      std::string c = ln.comment;
      if (std::regex_search(c, m, allow_re)) {
        const std::string rule_id = m[1];
        const bool has_colon = m[2].length() > 0;
        const std::string just = m[3];
        if (known.count(rule_id) == 0) {
          out.push_back(Violation{
              file, lineno, kBadAllow,
              "allow-annotation names unknown rule '" + rule_id + "'"});
        } else if (!has_colon || blank(just)) {
          out.push_back(Violation{
              file, lineno, kBadAllow,
              "allow(" + rule_id +
                  ") without a justification (write `// splap-lint: "
                  "allow(" + rule_id + "): <why this is trace-neutral>`)"});
        } else if (blank(ln.code)) {
          pending.allowed.insert(rule_id);
        } else {
          per_line[i].allowed.insert(rule_id);
        }
      } else {
        out.push_back(Violation{file, lineno, kBadAllow,
                               "malformed splap-lint annotation (expected "
                               "`splap-lint: allow(<rule>): <justification>`)"});
      }
    }
    if (!blank(ln.code) && !pending.allowed.empty()) {
      per_line[i].allowed.insert(pending.allowed.begin(),
                                 pending.allowed.end());
      pending.allowed.clear();
    }
  }

  // Pass 2: pattern rules over the code text.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const Line& ln = lines[i];
    if (blank(ln.code)) continue;
    const int lineno = static_cast<int>(i) + 1;
    for (const Rule& r : rule_table()) {
      if (!r.in_scope(repo_rel)) continue;
      if (!std::regex_search(r.raw ? ln.raw : ln.code, r.pattern)) continue;
      if (per_line[i].allowed.count(r.id) != 0) continue;
      out.push_back(Violation{file, lineno, r.id, r.message});
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Violation& a, const Violation& b) {
                     return a.line < b.line;
                   });
  return out;
}

std::vector<Violation> scan_file(const std::filesystem::path& root,
                                 const std::filesystem::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    return {Violation{file.string(), 0, "io-error", "cannot read file"}};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string rel =
      std::filesystem::relative(file, root).generic_string();
  return scan_source(rel, ss.str());
}

std::vector<Violation> scan_tree(const std::filesystem::path& root) {
  std::vector<Violation> out;
  std::vector<std::filesystem::path> files;
  for (const char* dir : {"src", "tests"}) {
    const std::filesystem::path base = root / dir;
    if (!std::filesystem::exists(base)) continue;
    for (const auto& e :
         std::filesystem::recursive_directory_iterator(base)) {
      if (!e.is_regular_file()) continue;
      const std::string ext = e.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h" ||
          ext == ".inl") {
        files.push_back(e.path());
      }
    }
  }
  std::sort(files.begin(), files.end());  // deterministic report order
  for (const auto& f : files) {
    std::vector<Violation> v = scan_file(root, f);
    out.insert(out.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  }
  return out;
}

}  // namespace splap::lint
