// blocking-reachability: prove that no handler-context entry point can reach
// a suspension primitive, turning the engine's runtime REQUIRE ("stackless
// actors never block", "run_inline bodies never suspend") into a
// compile-time property with the full call chain as the diagnostic.
//
// Entry points (collected outside src/sim — the engine itself is the trusted
// base that IMPLEMENTS suspension and the grant/park handoff):
//   - lambdas passed to handler-context sinks (schedule_*, defer, submit,
//     submit_completion, run_inline, lock_async, register_handler,
//     set_deliver/set_overflow, or any other stored-callback registration)
//   - lambdas passed to spawn_stackless
//   - implementations of the narrow callback interfaces the transport uses
//     to call upward: ProgressEngine::Sink, ReliableChannel::Sender,
//     AssemblyEngine::Env
//   - the demux/pump entry points the progress engine drives directly
//
// Suspension roots: Actor::suspend, Actor::wait, Actor::compute,
// SimMutex::lock, SimBarrier::arrive_and_wait. The may-suspend bit
// propagates backward through the call graph to a fixed point; an
// allow-annotated line cuts both the root match and every call edge on it
// (the annotation for the dual-mode `if (Actor::current())` pattern).
#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "graph_core.hpp"

namespace splap::graph {
namespace {

constexpr const char* kRule = "blocking-reachability";

const std::vector<std::string>& suspend_roots() {
  static const std::vector<std::string> r = {
      "Actor::suspend",
      "Actor::wait",
      "Actor::compute",
      "SimMutex::lock",
      "SimBarrier::arrive_and_wait",
  };
  return r;
}

const std::vector<std::string>& entry_interfaces() {
  static const std::vector<std::string> r = {
      "ProgressEngine::Sink",
      "ReliableChannel::Sender",
      "AssemblyEngine::Env",
  };
  return r;
}

const std::vector<std::string>& explicit_entries() {
  static const std::vector<std::string> r = {
      "ProgressEngine::pump",
      "AssemblyEngine::process",
      "AssemblyEngine::on_overflow",
      "SendEngine::on_ack",
      "SendEngine::on_nack",
      "SendEngine::on_credit",
      "SendEngine::on_rmw_resp",
      "SendEngine::on_probe",
  };
  return r;
}

std::vector<std::string> split_qual(std::string_view q) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= q.size()) {
    const std::size_t next = q.find("::", pos);
    if (next == std::string_view::npos) {
      out.emplace_back(q.substr(pos));
      break;
    }
    out.emplace_back(q.substr(pos, next - pos));
    pos = next + 2;
  }
  return out;
}

/// `qual` ends with the component sequence of `pattern` at a '::' boundary.
bool qual_suffix(std::string_view qual, std::string_view pattern) {
  const std::vector<std::string> a = split_qual(qual);
  const std::vector<std::string> b = split_qual(pattern);
  if (b.size() > a.size()) return false;
  return std::equal(b.rbegin(), b.rend(), a.rbegin());
}

/// A written callee matches a root when their overlapping component
/// sequences agree: bare `compute` matches `Actor::compute`; qualified
/// `Other::compute` does not.
bool callee_matches_root(std::string_view callee, std::string_view root) {
  const std::vector<std::string> a = split_qual(callee);
  const std::vector<std::string> b = split_qual(root);
  const std::size_t n = std::min(a.size(), b.size());
  return n > 0 && std::equal(a.rbegin(), a.rbegin() + static_cast<long>(n),
                             b.rbegin());
}

bool in_sim(const Function& f) { return f.file.rfind("src/sim/", 0) == 0; }

struct Graph {
  std::vector<char> is_root_call_fn;  // unused slot kept for clarity
  std::vector<char> may_suspend;
  // Per function: calls that terminal-match a root (index into fn.calls),
  // and resolved outgoing edges (call index -> target fns).
  std::vector<std::vector<int>> root_calls;
  std::vector<std::vector<std::pair<int, std::vector<int>>>> edges;
};

bool call_is_root(const Model& m, const CallSite& c, std::string* which) {
  // Textual matching is reserved for qualified spellings (`a->wait(...)` on
  // an Actor*, spelled `Actor::wait`, is a template the index never holds a
  // definition for). Bare names go through resolution, where the arity
  // filter separates `mu_.lock()` from `std::lock_guard` noise.
  if (c.callee.find("::") != std::string::npos) {
    for (const std::string& r : suspend_roots()) {
      if (callee_matches_root(c.callee, r)) {
        *which = r;
        return true;
      }
    }
  }
  for (const int t : m.resolve(c.callee, c.args)) {
    const Function& f = m.fns[static_cast<std::size_t>(t)];
    for (const std::string& r : suspend_roots()) {
      if (qual_suffix(f.qual, r)) {
        *which = r;
        return true;
      }
    }
  }
  return false;
}

Graph build_graph(const Model& m) {
  Graph g;
  const std::size_t n = m.fns.size();
  g.may_suspend.assign(n, 0);
  g.root_calls.resize(n);
  g.edges.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Function& f = m.fns[i];
    // Engine internals are the trusted base: their bodies IMPLEMENT
    // suspension (grant/park handoff, audit mutexes — OS-level waits below
    // the virtual-time abstraction), and every suspension API the engine
    // exports to the layers above is already in suspend_roots(). Treat them
    // as opaque leaves so callers are judged by the roots they hit, not by
    // how the engine implements them.
    if (in_sim(f)) continue;
    for (std::size_t c = 0; c < f.calls.size(); ++c) {
      const CallSite& site = f.calls[c];
      if (m.allowed(f.file, site.line, kRule)) continue;
      std::string which;
      if (call_is_root(m, site, &which)) {
        g.root_calls[i].push_back(static_cast<int>(c));
        g.may_suspend[i] = 1;
        continue;
      }
      std::vector<int> targets = m.resolve(site.callee, site.args);
      if (!targets.empty()) {
        g.edges[i].emplace_back(static_cast<int>(c), std::move(targets));
      }
    }
  }
  // Fixed point: may_suspend flows backward over call edges.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (g.may_suspend[i] != 0) continue;
      for (const auto& [c, targets] : g.edges[i]) {
        for (const int t : targets) {
          if (g.may_suspend[static_cast<std::size_t>(t)] != 0) {
            g.may_suspend[i] = 1;
            changed = true;
            break;
          }
        }
        if (g.may_suspend[i] != 0) break;
      }
    }
  }
  return g;
}

std::vector<int> collect_entries(const Model& m) {
  std::set<int> entries;
  for (std::size_t i = 0; i < m.fns.size(); ++i) {
    const Function& f = m.fns[i];
    if (in_sim(f)) continue;
    if (f.is_lambda &&
        (f.role == Role::kHandler || f.role == Role::kStackless)) {
      entries.insert(static_cast<int>(i));
    }
    if (!f.is_lambda) {
      for (const std::string& q : explicit_entries()) {
        if (qual_suffix(f.qual, q)) entries.insert(static_cast<int>(i));
      }
    }
  }
  // Callback-interface implementations: for each class whose base list names
  // one of the entry interfaces, the interface's pure-virtual methods (as
  // implemented by that class) are entry points.
  for (const auto& [qual, cls] : m.classes) {
    for (const std::string& base : cls.bases) {
      for (const std::string& iface : entry_interfaces()) {
        if (!qual_suffix(base, iface) && !qual_suffix(iface, base)) continue;
        // The interface's own ClassInfo carries the pure-virtual set.
        const ClassInfo* idecl = nullptr;
        for (const auto& [q2, c2] : m.classes) {
          if (qual_suffix(q2, iface)) idecl = &c2;
        }
        if (idecl == nullptr) continue;
        for (const std::string& method : idecl->pure_virtuals) {
          const std::string want = qual + "::" + method;
          for (std::size_t i = 0; i < m.fns.size(); ++i) {
            if (!m.fns[i].is_lambda && m.fns[i].qual == want &&
                !in_sim(m.fns[i])) {
              entries.insert(static_cast<int>(i));
            }
          }
        }
      }
    }
  }
  return {entries.begin(), entries.end()};
}

std::string entry_label(const Function& f) {
  if (!f.is_lambda) return f.qual;
  if (f.role == Role::kStackless) return "stackless actor body " + f.qual;
  if (f.sink.empty()) return f.qual;
  return f.qual + " (callback passed to " + f.sink + ")";
}

/// Shortest offending chain from `entry`, or "" when none reachable.
std::string find_chain(const Model& m, const Graph& g, int entry) {
  struct Step {
    int fn;
    int parent = -1;      // index into the BFS order
    int via_call = -1;    // call index in parent's fn
  };
  std::vector<Step> order;
  std::map<int, int> seen;  // fn -> index in order
  std::deque<int> queue;
  order.push_back(Step{entry, -1, -1});
  seen[entry] = 0;
  queue.push_back(0);
  while (!queue.empty()) {
    const int oi = queue.front();
    queue.pop_front();
    const int fi = order[static_cast<std::size_t>(oi)].fn;
    const Function& f = m.fns[static_cast<std::size_t>(fi)];
    if (!g.root_calls[static_cast<std::size_t>(fi)].empty()) {
      // Terminal: reconstruct entry -> ... -> root call.
      const int rc = g.root_calls[static_cast<std::size_t>(fi)].front();
      const CallSite& root_site = f.calls[static_cast<std::size_t>(rc)];
      std::string which;
      call_is_root(m, root_site, &which);
      std::vector<std::string> hops;
      hops.push_back("  " + f.file + ":" + std::to_string(root_site.line) +
                     "  " + f.qual + " calls `" + root_site.callee +
                     "` -> suspension primitive " + which);
      int cur = oi;
      while (order[static_cast<std::size_t>(cur)].parent >= 0) {
        const Step& s = order[static_cast<std::size_t>(cur)];
        const int pfn = order[static_cast<std::size_t>(s.parent)].fn;
        const Function& pf = m.fns[static_cast<std::size_t>(pfn)];
        const CallSite& site =
            pf.calls[static_cast<std::size_t>(s.via_call)];
        hops.push_back("  " + pf.file + ":" + std::to_string(site.line) +
                       "  " + pf.qual + " calls `" + site.callee + "`");
        cur = s.parent;
      }
      std::ostringstream os;
      os << "handler-context path reaches a suspension primitive:\n";
      os << "  entry: " << entry_label(m.fns[static_cast<std::size_t>(entry)])
         << "\n";
      for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
        os << *it << "\n";
      }
      os << "  annotate the guarded edge with `// splap-graph: "
            "allow(blocking-reachability): <why>` if this path cannot fire";
      return os.str();
    }
    for (const auto& [c, targets] : g.edges[static_cast<std::size_t>(fi)]) {
      for (const int t : targets) {
        if (g.may_suspend[static_cast<std::size_t>(t)] == 0) continue;
        if (seen.count(t) != 0) continue;
        seen[t] = static_cast<int>(order.size());
        order.push_back(Step{t, oi, c});
        queue.push_back(seen[t]);
      }
    }
  }
  return "";
}

}  // namespace

std::vector<Violation> check_blocking(const Model& m) {
  std::vector<Violation> out;
  const Graph g = build_graph(m);
  std::vector<int> entries = collect_entries(m);
  std::sort(entries.begin(), entries.end(), [&](int a, int b) {
    const Function& fa = m.fns[static_cast<std::size_t>(a)];
    const Function& fb = m.fns[static_cast<std::size_t>(b)];
    if (fa.file != fb.file) return fa.file < fb.file;
    if (fa.line != fb.line) return fa.line < fb.line;
    return fa.qual < fb.qual;
  });
  for (const int e : entries) {
    const Function& f = m.fns[static_cast<std::size_t>(e)];
    if (g.may_suspend[static_cast<std::size_t>(e)] == 0) continue;
    if (m.allowed(f.file, f.line, kRule)) continue;
    const std::string chain = find_chain(m, g, e);
    if (chain.empty()) continue;  // taint came only through allowed edges
    out.push_back(Violation{f.file, f.line, kRule, chain});
  }
  return out;
}

}  // namespace splap::graph
