#include "net/machine.hpp"

#include <string>

namespace splap::net {

sim::Engine& Node::engine() const { return machine_.engine(); }
const CostModel& Node::cost() const { return machine_.cost(); }

Machine::Machine(Config config)
    : fabric_(engine_, config.tasks, config.fabric),
      incarnations_(static_cast<std::size_t>(config.tasks), 0) {
  SPLAP_REQUIRE(config.tasks > 0, "machine needs at least one task");
  crash_planned_ = !config.fabric.fault.node_faults.empty();
  nodes_.reserve(static_cast<std::size_t>(config.tasks));
  for (int i = 0; i < config.tasks; ++i) {
    nodes_.push_back(std::make_unique<Node>(*this, i));
    // Raw registration: delivery is one indirect call straight into the
    // adapter, not a std::function hop per packet.
    fabric_.set_deliver(
        i,
        [](void* node, Packet&& pkt) {
          static_cast<Node*>(node)->adapter().deliver(std::move(pkt));
        },
        nodes_.back().get());
    fabric_.set_overflow(
        i,
        [](void* node, const Packet& pkt) {
          static_cast<Node*>(node)->adapter().overflow(pkt);
        },
        nodes_.back().get());
  }
}

Status Machine::run_spmd(const std::function<void(Node&)>& body) {
  for (auto& node : nodes_) {
    Node* n = node.get();
    // Pinned to the node's shard so the parallel executor may resume the
    // task from that node's worker lane.
    try {
      n->task_ = &engine_.spawn_on(n->id(), "task" + std::to_string(n->id()),
                                   [n, body](sim::Actor&) { body(*n); });
    } catch (const sim::SpawnError& e) {
      // Thread exhaustion at high node counts is an environment limit, not a
      // bug: quiesce the tasks already spawned and report it as recoverable.
      SPLAP_WARN(engine_.now(), "run_spmd: %s", e.what());
      engine_.shutdown();
      for (auto& nd : nodes_) nd->task_ = nullptr;
      return Status::kResourceExhausted;
    }
  }
  const Status st = engine_.run();
  for (auto& node : nodes_) node->task_ = nullptr;
  if (st == Status::kOk && !crash_planned_ && !allow_dead_letters_) {
    for (auto& node : nodes_) {
      SPLAP_REQUIRE(node->adapter().dead_letters() == 0,
                    "dead letters in a healthy run: a packet arrived for a "
                    "client that already shut down (protocol teardown raced "
                    "live peers)");
    }
  }
  return st;
}

void Machine::kill_node(int node, Time t) {
  SPLAP_REQUIRE(node >= 0 && node < tasks(), "bad node id");
  SPLAP_REQUIRE(t >= engine_.now(), "cannot crash a node in the virtual past");
  crash_planned_ = true;
  fabric_.add_node_fault(NodeFault{node, t, kNoTime});
  // Crash windows are global mutable state the worker lanes cannot
  // partition, and the kill event grants actors across the shard boundary.
  engine_.mark_parallel_unsafe("crash-stop node fault window");
  engine_.schedule_at_on(t, sim::Engine::kNoShard,
                         [this, node] { engine_.kill_shard(node); });
}

void Machine::restart_node(int node, Time t, std::function<void(Node&)> body) {
  SPLAP_REQUIRE(node >= 0 && node < tasks(), "bad node id");
  fabric_.set_node_restart(node, t);
  engine_.schedule_at_on(
      t, sim::Engine::kNoShard, [this, node, body = std::move(body)] {
        const std::int64_t life =
            ++incarnations_[static_cast<std::size_t>(node)];
        fabric_.reset_node(node);
        Node* n = nodes_[static_cast<std::size_t>(node)].get();
        n->task_ = &engine_.spawn_on(
            node,
            "task" + std::to_string(node) + ".r" + std::to_string(life),
            [n, body](sim::Actor&) { body(*n); });
      });
}

}  // namespace splap::net
