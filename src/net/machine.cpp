#include "net/machine.hpp"

#include <string>

namespace splap::net {

sim::Engine& Node::engine() const { return machine_.engine(); }
const CostModel& Node::cost() const { return machine_.cost(); }

Machine::Machine(Config config)
    : fabric_(engine_, config.tasks, config.fabric) {
  SPLAP_REQUIRE(config.tasks > 0, "machine needs at least one task");
  nodes_.reserve(static_cast<std::size_t>(config.tasks));
  for (int i = 0; i < config.tasks; ++i) {
    nodes_.push_back(std::make_unique<Node>(*this, i));
    // Raw registration: delivery is one indirect call straight into the
    // adapter, not a std::function hop per packet.
    fabric_.set_deliver(
        i,
        [](void* node, Packet&& pkt) {
          static_cast<Node*>(node)->adapter().deliver(std::move(pkt));
        },
        nodes_.back().get());
    fabric_.set_overflow(
        i,
        [](void* node, const Packet& pkt) {
          static_cast<Node*>(node)->adapter().overflow(pkt);
        },
        nodes_.back().get());
  }
}

Status Machine::run_spmd(const std::function<void(Node&)>& body) {
  for (auto& node : nodes_) {
    Node* n = node.get();
    // Pinned to the node's shard so the parallel executor may resume the
    // task from that node's worker lane.
    try {
      n->task_ = &engine_.spawn_on(n->id(), "task" + std::to_string(n->id()),
                                   [n, body](sim::Actor&) { body(*n); });
    } catch (const sim::SpawnError& e) {
      // Thread exhaustion at high node counts is an environment limit, not a
      // bug: quiesce the tasks already spawned and report it as recoverable.
      SPLAP_WARN(engine_.now(), "run_spmd: %s", e.what());
      engine_.shutdown();
      for (auto& nd : nodes_) nd->task_ = nullptr;
      return Status::kResourceExhausted;
    }
  }
  const Status st = engine_.run();
  for (auto& node : nodes_) node->task_ = nullptr;
  return st;
}

}  // namespace splap::net
