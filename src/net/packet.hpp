// The unit of transport on the simulated SP switch.
//
// A packet carries real bytes (so protocol reassembly is exercised with
// actual data, not byte counts) plus an opaque protocol descriptor. The
// on-wire cost of a packet is header_bytes + data.size(): LAPI pays its
// 48-byte header on every packet, MPI/MPL its 16-byte header (Section 4 of
// the paper explains the asymmetry — the one-sided origin must ship all
// target-side parameters).
//
// Payload bytes live in recyclable buffers: a packet minted by
// Fabric::make_packet draws its buffer from the fabric's SlabBufferPool and
// the buffer rides ownership moves (staging, reassembly, retransmit capture)
// until the last holder destroys the Payload, which returns it to the pool.
// A default-constructed Packet falls back to heap bytes so tests and tools
// can build packets without a fabric.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <span>

#include "base/pool.hpp"
#include "base/status.hpp"

namespace splap::net {

/// Adapter demultiplexing key: which protocol library owns the packet.
enum class Client : int { kLapi = 0, kMpl = 1, kCount = 2 };

/// Move-only byte buffer with vector-ish surface, optionally backed by a
/// SlabBufferPool. Pool-backed payloads have fixed capacity (the wire MTU);
/// anything larger migrates transparently to the heap, which never happens
/// for MTU-checked packets.
class Payload {
 public:
  Payload() = default;
  explicit Payload(SlabBufferPool* pool) : pool_(pool) {}
  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;

  Payload(Payload&& o) noexcept
      : data_(o.data_),
        size_(o.size_),
        cap_(o.cap_),
        zeroed_(o.zeroed_),
        pool_(o.pool_) {
    o.data_ = nullptr;
    o.size_ = 0;
    o.cap_ = 0;
    o.zeroed_ = 0;
  }
  Payload& operator=(Payload&& o) noexcept {
    if (this != &o) {
      reset();
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      zeroed_ = o.zeroed_;
      pool_ = o.pool_;
      o.data_ = nullptr;
      o.size_ = 0;
      o.cap_ = 0;
      o.zeroed_ = 0;
    }
    return *this;
  }

  ~Payload() { reset(); }

  // Mutable access may scribble anywhere, so it forfeits the zeroed-prefix
  // guarantee this payload could otherwise hand back to the buffer pool
  // (see resize). Read-only access keeps it.
  std::byte* data() {
    zeroed_ = 0;
    return data_;
  }
  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::byte* begin() {
    zeroed_ = 0;
    return data_;
  }
  std::byte* end() { return data_ + size_; }
  const std::byte* begin() const { return data_; }
  const std::byte* end() const { return data_ + size_; }
  std::byte& operator[](std::size_t i) {
    zeroed_ = 0;
    return data_[i];
  }
  const std::byte& operator[](std::size_t i) const { return data_[i]; }

  operator std::span<const std::byte>() const { return {data_, size_}; }
  operator std::span<std::byte>() {
    zeroed_ = 0;
    return {data_, size_};
  }

  void resize(std::size_t n, std::byte fill = std::byte{0}) {
    reserve(n);
    if (n > size_) {
      // Bytes [size_, min(zeroed_, n)) are already zero from a previous
      // life of this pooled buffer; growing a payload with the default zero
      // fill (the dominant packet pattern) then costs nothing on reuse.
      std::size_t from = size_;
      if (fill == std::byte{0}) {
        from = std::max(from, std::min<std::size_t>(zeroed_, n));
        if (zeroed_ >= size_ && n > zeroed_) zeroed_ = n;
      } else if (zeroed_ > size_) {
        zeroed_ = size_;
      }
      if (n > from) std::fill(data_ + from, data_ + n, fill);
    }
    size_ = n;
  }

  template <class It>
  void assign(It first, It last) {
    const auto n = static_cast<std::size_t>(std::distance(first, last));
    reserve(n);
    std::copy(first, last, data_);
    size_ = n;
    zeroed_ = 0;
  }
  void assign(std::span<const std::byte> s) { assign(s.begin(), s.end()); }

  /// Return the buffer to its pool (or the heap) and become empty. The pool
  /// is told how much of the buffer is still all-zero, so the next packet
  /// minted from it can skip that much of its zero fill.
  void reset() {
    if (data_ != nullptr) {
      if (pool_ != nullptr && cap_ == pool_->buffer_bytes()) {
        pool_->release(data_, static_cast<std::uint32_t>(
                                  std::min(zeroed_, cap_)));
      } else {
        delete[] data_;
      }
      data_ = nullptr;
      size_ = 0;
      cap_ = 0;
      zeroed_ = 0;
    }
  }

 private:
  void reserve(std::size_t n) {
    if (n <= cap_) return;
    std::byte* fresh;
    std::size_t fresh_cap;
    if (pool_ != nullptr && n <= pool_->buffer_bytes() && data_ == nullptr) {
      const SlabBufferPool::Buffer b = pool_->acquire();
      fresh = b.data;
      fresh_cap = pool_->buffer_bytes();
      zeroed_ = b.zeroed;
    } else {
      fresh_cap = n;
      fresh = new std::byte[fresh_cap];
      // A migrated buffer only carries the copied prefix; anything the old
      // buffer guaranteed beyond size_ is garbage in the new one.
      zeroed_ = std::min(zeroed_, size_);
    }
    if (size_ > 0) std::copy(data_, data_ + size_, fresh);
    std::byte* old = data_;
    const std::size_t old_cap = cap_;
    data_ = fresh;
    cap_ = fresh_cap;
    if (old != nullptr) {
      if (pool_ != nullptr && old_cap == pool_->buffer_bytes()) {
        pool_->release(old);
      } else {
        delete[] old;
      }
    }
  }

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
  // Zero guarantee: bytes [0, zeroed_) of the buffer hold value zero. Kept
  // across pool recycling so the default zero fill in resize() is free for
  // buffers nobody wrote into (delivered-and-discarded packet payloads).
  std::size_t zeroed_ = 0;
  SlabBufferPool* pool_ = nullptr;
};

struct Packet {
  int src = -1;
  int dst = -1;
  Client client = Client::kLapi;
  std::int64_t header_bytes = 0;
  Payload data;
  /// Protocol-specific descriptor (message ids, sequence numbers, handler
  /// parameters). Shared because retransmission keeps a reference.
  std::shared_ptr<const void> meta;

  std::int64_t wire_bytes() const {
    return header_bytes + static_cast<std::int64_t>(data.size());
  }

  template <class T>
  const T& meta_as() const {
    SPLAP_REQUIRE(meta != nullptr, "packet carries no descriptor");
    return *static_cast<const T*>(meta.get());
  }
};

}  // namespace splap::net
