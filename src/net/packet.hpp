// The unit of transport on the simulated SP switch.
//
// A packet carries real bytes (so protocol reassembly is exercised with
// actual data, not byte counts) plus an opaque protocol descriptor. The
// on-wire cost of a packet is header_bytes + data.size(): LAPI pays its
// 48-byte header on every packet, MPI/MPL its 16-byte header (Section 4 of
// the paper explains the asymmetry — the one-sided origin must ship all
// target-side parameters).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/status.hpp"

namespace splap::net {

/// Adapter demultiplexing key: which protocol library owns the packet.
enum class Client : int { kLapi = 0, kMpl = 1, kCount = 2 };

struct Packet {
  int src = -1;
  int dst = -1;
  Client client = Client::kLapi;
  std::int64_t header_bytes = 0;
  std::vector<std::byte> data;
  /// Protocol-specific descriptor (message ids, sequence numbers, handler
  /// parameters). Shared because retransmission keeps a reference.
  std::shared_ptr<const void> meta;

  std::int64_t wire_bytes() const {
    return header_bytes + static_cast<std::int64_t>(data.size());
  }

  template <class T>
  const T& meta_as() const {
    SPLAP_REQUIRE(meta != nullptr, "packet carries no descriptor");
    return *static_cast<const T*>(meta.get());
  }
};

}  // namespace splap::net
