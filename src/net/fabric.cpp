#include "net/fabric.hpp"

#include <algorithm>
#include <utility>

#include "base/log.hpp"

namespace splap::net {

Fabric::Fabric(sim::Engine& engine, int nodes, FabricConfig config)
    : engine_(engine),
      config_(config),
      link_free_(static_cast<std::size_t>(nodes), 0),
      rx_free_(static_cast<std::size_t>(nodes), 0),
      next_route_(static_cast<std::size_t>(nodes), 0),
      deliver_(static_cast<std::size_t>(nodes)),
      rng_(config.seed) {
  SPLAP_REQUIRE(nodes > 0, "fabric needs at least one node");
}

void Fabric::set_deliver(int dst, DeliverFn fn) {
  SPLAP_REQUIRE(dst >= 0 && dst < nodes(), "bad node id");
  deliver_[static_cast<std::size_t>(dst)] = std::move(fn);
}

void Fabric::transmit(Packet&& pkt) {
  const auto src = static_cast<std::size_t>(pkt.src);
  const auto dst = static_cast<std::size_t>(pkt.dst);
  SPLAP_REQUIRE(pkt.src >= 0 && pkt.src < nodes(), "bad src");
  SPLAP_REQUIRE(pkt.dst >= 0 && pkt.dst < nodes(), "bad dst");
  SPLAP_REQUIRE(pkt.wire_bytes() <= config_.cost.packet_bytes,
                "packet exceeds the wire MTU");
  const CostModel& cm = config_.cost;
  ++packets_sent_;
  bytes_on_wire_ += pkt.wire_bytes();

  Time arrival;
  if (pkt.src == pkt.dst) {
    // Loopback: the adapter short-circuits the switch.
    arrival = engine_.now() + cm.adapter_tx + cm.adapter_rx;
  } else {
    const Time depart =
        std::max(engine_.now() + cm.adapter_tx, link_free_[src]);
    const Time occupy = cm.wire_time(pkt.header_bytes,
                                     static_cast<std::int64_t>(pkt.data.size()));
    link_free_[src] = depart + occupy;

    const int route = next_route_[src];
    next_route_[src] = (route + 1) % cm.routes_per_pair;
    Time route_delay = cm.route_latency + route * cm.route_skew;
    if (config_.contention_jitter > 0) {
      route_delay += static_cast<Time>(rng_.next_below(
          static_cast<std::uint64_t>(config_.contention_jitter)));
    }
    arrival = depart + occupy + route_delay;

    if (config_.drop_rate > 0 && rng_.next_bool(config_.drop_rate)) {
      ++packets_dropped_;
      engine_.counters().bump("fabric.drops");
      SPLAP_DEBUG(engine_.now(), "fabric: dropped packet %d->%d (%lld B)",
                  pkt.src, pkt.dst,
                  static_cast<long long>(pkt.wire_bytes()));
      return;
    }
  }

  // The drain DMA serializes packets in ARRIVAL order, so the rx_free
  // bookkeeping must run when the packet reaches the adapter, not when it
  // was sent — otherwise a late-sent packet that took a faster route could
  // never overtake (and the fabric would be spuriously in-order).
  engine_.schedule_at(
      arrival,
      [this, dst, p = std::make_shared<Packet>(std::move(pkt))]() mutable {
        const Time deliver_at =
            std::max(engine_.now(), rx_free_[dst]) + config_.cost.adapter_rx;
        rx_free_[dst] = deliver_at;
        engine_.schedule_at(deliver_at, [this, dst, p]() mutable {
          SPLAP_REQUIRE(deliver_[dst] != nullptr,
                        "packet for a node with no adapter handler");
          deliver_[dst](std::move(*p));
        });
      });
}

}  // namespace splap::net
