#include "net/fabric.hpp"

#include <algorithm>
#include <utility>

#include "base/audit.hpp"
#include "base/log.hpp"

namespace splap::net {

Fabric::Fabric(sim::Engine& engine, int nodes, FabricConfig config)
    : engine_(engine),
      config_(std::move(config)),
      link_free_(static_cast<std::size_t>(nodes), 0),
      rx_free_(static_cast<std::size_t>(nodes), 0),
      next_route_(static_cast<std::size_t>(nodes), 0),
      deliver_(static_cast<std::size_t>(nodes)),
      overflow_(static_cast<std::size_t>(nodes)),
      rx_count_(static_cast<std::size_t>(nodes), 0),
      rx_hwm_(static_cast<std::size_t>(nodes), 0),
      deliver_fns_(static_cast<std::size_t>(nodes)),
      // config_ (declared before rng_/payload_pool_) is already moved-into
      // here, so these must read config_, not the moved-from parameter.
      rng_(config_.seed),
      payload_pool_(static_cast<std::size_t>(config_.cost.packet_bytes), 256),
      sent_(static_cast<std::size_t>(nodes), 0),
      bytes_on_wire_(static_cast<std::size_t>(nodes), 0),
      rx_overflows_(static_cast<std::size_t>(nodes), 0),
      rx_overflow_bytes_(static_cast<std::size_t>(nodes), 0),
      wire_memo_bytes_(static_cast<std::size_t>(nodes), -1),
      wire_memo_time_(static_cast<std::size_t>(nodes), 0),
      ctr_rx_overflow_(engine.counters().handle("fabric.rx_overflow")) {
  SPLAP_REQUIRE(nodes > 0, "fabric needs at least one node");
  if (config_.fault.any()) {
    for (const RouteFault& f : config_.fault.route_faults) {
      SPLAP_REQUIRE(f.route >= 0 && f.route < config_.cost.routes_per_pair,
                    "route fault names a route the pair does not have");
    }
    for (const Straggler& s : config_.fault.stragglers) {
      SPLAP_REQUIRE(s.node >= 0 && s.node < nodes,
                    "straggler names a node the machine does not have");
      SPLAP_REQUIRE(s.multiplier >= 1.0,
                    "straggler multiplier must be >= 1 (it slows, never speeds)");
    }
    faults_ = std::make_unique<FaultInjector>(config_.fault);
    for (const NodeFault& f : config_.fault.node_faults) {
      SPLAP_REQUIRE(f.node >= 0 && f.node < nodes,
                    "node fault names a node the machine does not have");
      node_faults_.push_back(f);
    }
  }
  // The minimum cross-node latency any transmit can produce: departure pays
  // adapter_tx before the wire, and every route adds at least route_latency
  // (skew, jitter and fault penalties only ever add). This is the engine's
  // conservative lookahead for parallel window formation.
  engine_.offer_lookahead(config_.cost.adapter_tx + config_.cost.route_latency);
  // Drop/jitter/fault draws come from one global RNG whose consumption order
  // IS the behavior; lanes cannot partition that, so such configurations run
  // serially (which also lets their tallies stay scalar).
  if (config_.drop_rate > 0 || config_.contention_jitter > 0 ||
      config_.fault.any()) {
    engine_.mark_parallel_unsafe(
        "fabric drop/jitter/fault model draws from a global RNG");
  }
  if (engine_.exec_threads() > 1) {
    // Lanes acquire payload buffers (make_packet on src) and release them on
    // another lane (delivery on dst); same for in-flight records.
    payload_pool_.set_locked(true);
    inflight_pool_.set_locked(true);
  }
}

Fabric::~Fabric() {
#ifdef SPLAP_AUDIT
  if (engine_.queued_events() == 0 && inflight_pool_.in_use() != 0) {
    audit::fail("in-flight record leak at fabric teardown (queue drained but "
                "records were never delivered or released)",
                "Fabric::~Fabric", nullptr);
  }
#endif
}

void Fabric::set_deliver(int dst, DeliverFn fn) {
  SPLAP_REQUIRE(dst >= 0 && dst < nodes(), "bad node id");
  // One holder slot per node: re-registering replaces the old function
  // instead of leaking it for the fabric's lifetime.
  auto& holder = deliver_fns_[static_cast<std::size_t>(dst)];
  holder = std::make_unique<DeliverFn>(std::move(fn));
  set_deliver(dst,
              [](void* ctx, Packet&& pkt) {
                (*static_cast<DeliverFn*>(ctx))(std::move(pkt));
              },
              holder.get());
}

void Fabric::set_deliver(int dst, DeliverThunk fn, void* ctx) {
  SPLAP_REQUIRE(dst >= 0 && dst < nodes(), "bad node id");
  deliver_[static_cast<std::size_t>(dst)] = DeliverSlot{fn, ctx};
}

void Fabric::set_overflow(int dst, OverflowThunk fn, void* ctx) {
  SPLAP_REQUIRE(dst >= 0 && dst < nodes(), "bad node id");
  overflow_[static_cast<std::size_t>(dst)] = OverflowSlot{fn, ctx};
}

void Fabric::add_node_fault(const NodeFault& f) {
  SPLAP_REQUIRE(f.node >= 0 && f.node < nodes(),
                "node fault names a node the machine does not have");
  node_faults_.push_back(f);
}

void Fabric::set_node_restart(int node, Time t) {
  // Close the newest open window for the node: kill/restart pairs nest in
  // call order, and a restart before any crash is a caller bug.
  for (auto it = node_faults_.rbegin(); it != node_faults_.rend(); ++it) {
    if (it->node == node && it->until == kNoTime) {
      SPLAP_REQUIRE(t > it->from, "restart must come after the crash");
      it->until = t;
      return;
    }
  }
  SPLAP_REQUIRE(false, "restart_node without a preceding kill_node");
}

bool Fabric::node_up_slow(int node, Time t) const {
  for (const NodeFault& f : node_faults_) {
    if (f.node == node && f.active(t)) return false;
  }
  return true;
}

void Fabric::reset_node(int node) {
  const auto n = static_cast<std::size_t>(node);
  link_free_[n] = 0;
  rx_free_[n] = 0;
  next_route_[n] = 0;
  // rx_count_ is deliberately NOT reset: flushes keep it self-consistent
  // (stage_rx never admits a packet for a down node, and finish_delivery
  // decrements before its own flush check), and zeroing it while old-epoch
  // deliveries are still draining would drive the occupancy negative.
}

void Fabric::transmit(Packet&& pkt) {
  const auto src = static_cast<std::size_t>(pkt.src);
  const std::int64_t wire_bytes = pkt.wire_bytes();
  SPLAP_REQUIRE(pkt.src >= 0 && pkt.src < nodes(), "bad src");
  SPLAP_REQUIRE(pkt.dst >= 0 && pkt.dst < nodes(), "bad dst");
  SPLAP_REQUIRE(wire_bytes <= config_.cost.packet_bytes,
                "packet exceeds the wire MTU");
  const CostModel& cm = config_.cost;
  ++sent_[src];

  if (!node_faults_.empty()) [[unlikely]] {
    // Crash-stop: a dead endpoint loses the packet at the wire, whichever
    // side is down (a dying node's still-queued injections go nowhere, and
    // nothing reaches a dead receiver). The reliability layers see silence.
    if (!node_up(pkt.src, engine_.now()) || !node_up(pkt.dst, engine_.now())) {
      ++fault_dropped_;
      fault_bytes_dropped_ += wire_bytes;
      engine_.counters().bump("fabric.node_down");
      SPLAP_DEBUG(engine_.now(), "fabric: node down, dropped packet %d->%d",
                  pkt.src, pkt.dst);
      return;
    }
  }

  // Gray failure: a straggling adapter serves every packet slower without
  // being down. Pure time-window lookup — no RNG draw, so straggler configs
  // leave the jitter/fault streams byte-identical.
  Time adapter_tx = cm.adapter_tx;
  if (faults_ != nullptr && faults_->has_stragglers()) [[unlikely]] {
    const double factor = faults_->straggler_factor(pkt.src, engine_.now());
    if (factor > 1.0) {
      adapter_tx = static_cast<Time>(static_cast<double>(adapter_tx) * factor);
    }
  }

  Time arrival;
  if (pkt.src == pkt.dst) {
    // Loopback: the adapter short-circuits the switch.
    arrival = engine_.now() + adapter_tx + cm.adapter_rx;
  } else {
    if (faults_ != nullptr && faults_->has_partitions() &&
        faults_->partitioned(pkt.src, pkt.dst, engine_.now())) [[unlikely]] {
      // The switch plane between src and dst is cut in this direction; the
      // reverse direction may well still deliver (asymmetric partition).
      // The reliability layers above see one-way silence.
      ++fault_dropped_;
      fault_bytes_dropped_ += wire_bytes;
      engine_.counters().bump("fabric.partitioned");
      SPLAP_DEBUG(engine_.now(), "fabric: partitioned, dropped packet %d->%d",
                  pkt.src, pkt.dst);
      return;
    }
    const Time depart =
        std::max(engine_.now() + adapter_tx, link_free_[src]);
    // wire_time only depends on the total byte count; a one-entry memo
    // skips the floating divide for the dominant full-MTU packet stream.
    if (wire_bytes != wire_memo_bytes_[src]) {
      wire_memo_bytes_[src] = wire_bytes;
      wire_memo_time_[src] = cm.wire_time(wire_bytes, 0);
    }
    const Time occupy = wire_memo_time_[src];
    link_free_[src] = depart + occupy;

    int route = next_route_[src];
    // Round-robin without the integer divide (routes_per_pair is a runtime
    // value, so % would cost a real div on every packet).
    next_route_[src] = route + 1 == cm.routes_per_pair ? 0 : route + 1;
    Time route_penalty = 0;
    if (faults_ != nullptr && faults_->has_route_faults()) {
      // Spray failover: if the round-robin route is down, walk forward to
      // the next live route. All routes down means the pair is partitioned
      // and the packet is lost (the reliability layers retry; by then a
      // route may be back up).
      int tried = 0;
      while (tried < cm.routes_per_pair &&
             !faults_->route_up(route, engine_.now())) {
        route = route + 1 == cm.routes_per_pair ? 0 : route + 1;
        ++tried;
      }
      if (tried == cm.routes_per_pair) {
        ++fault_dropped_;
        fault_bytes_dropped_ += wire_bytes;
        engine_.counters().bump("fabric.no_route");
        SPLAP_DEBUG(engine_.now(), "fabric: no live route %d->%d", pkt.src,
                    pkt.dst);
        return;
      }
      if (tried > 0) {
        ++route_failovers_;
        engine_.counters().bump("fabric.route_failover");
      }
      route_penalty = faults_->route_penalty(route, engine_.now());
    }
    Time route_delay = cm.route_latency + route * cm.route_skew + route_penalty;
    if (config_.contention_jitter > 0) {
      route_delay += static_cast<Time>(rng_.next_below(
          static_cast<std::uint64_t>(config_.contention_jitter)));
    }
    arrival = depart + occupy + route_delay;

    bool dropped =
        config_.drop_rate > 0 && rng_.next_bool(config_.drop_rate);
    if (faults_ != nullptr) {
      // Always advance the loss model so the Gilbert–Elliott channel state
      // evolves per packet, even when the legacy uniform draw already lost
      // this one.
      dropped |= faults_->drop_packet();
      if (!dropped && pkt.data.empty() && faults_->corrupt_packet()) {
        // A corrupted header-only packet has no payload byte to flip; the
        // switch CRC discards it, which the protocol sees as a loss.
        ++packets_corrupted_;
        engine_.counters().bump("fabric.corrupted");
        dropped = true;
      }
    }
    if (dropped) {
      ++fault_dropped_;
      fault_bytes_dropped_ += wire_bytes;
      engine_.counters().bump("fabric.drops");
      SPLAP_DEBUG(engine_.now(), "fabric: dropped packet %d->%d (%lld B)",
                  pkt.src, pkt.dst,
                  static_cast<long long>(pkt.wire_bytes()));
      return;  // pkt's payload buffer returns to the pool here
    }
    if (faults_ != nullptr) {
      if (faults_->duplicate_packet()) {
        // Switch-internal duplication: a second copy of the packet arrives
        // over a skewed path. It shares the descriptor (receivers treat it
        // as const) but carries its own payload buffer.
        ++packets_duplicated_;
        engine_.counters().bump("fabric.duplicated");
        bytes_on_wire_[src] += wire_bytes;
        Packet dup;
        dup.src = pkt.src;
        dup.dst = pkt.dst;
        dup.client = pkt.client;
        dup.header_bytes = pkt.header_bytes;
        dup.meta = pkt.meta;
        dup.data = Payload(&payload_pool_);
        dup.data.assign(pkt.data.begin(), pkt.data.end());
        const Time dup_arrival =
            arrival + cm.route_skew +
            faults_->duplicate_skew(cm.route_skew * cm.routes_per_pair + 1);
        InFlight* drec = inflight_pool_.acquire();
        drec->owner = this;
        drec->pkt = std::move(dup);
#ifdef SPLAP_AUDIT
        engine_.audit_object_begin(drec);
        engine_.audit_object_touch(drec, "Fabric::transmit duplicate");
#endif
        engine_.schedule_thunk_on(
            dup_arrival, drec->pkt.dst,
            [](void* p) {
              InFlight* r = static_cast<InFlight*>(p);
              r->owner->stage_rx(r);
            },
            drec);
      }
      if (!pkt.data.empty() && faults_->corrupt_packet()) {
        ++packets_corrupted_;
        engine_.counters().bump("fabric.corrupted");
        pkt.data[faults_->corrupt_byte(pkt.data.size())] ^= std::byte{0x40};
      }
    }
  }
  bytes_on_wire_[src] += wire_bytes;

  // The drain DMA serializes packets in ARRIVAL order, so the rx_free
  // bookkeeping must run when the packet reaches the adapter, not when it
  // was sent — otherwise a late-sent packet that took a faster route could
  // never overtake (and the fabric would be spuriously in-order).
  // Pinned to the destination shard: from stage_rx onward everything touches
  // dst-side state (rx queue, drain DMA, the node's handlers), which is what
  // lets the parallel executor run receive processing on the dst's lane.
  InFlight* rec = inflight_pool_.acquire();
  rec->owner = this;
  rec->pkt = std::move(pkt);
#ifdef SPLAP_AUDIT
  engine_.audit_object_begin(rec);
  engine_.audit_object_touch(rec, "Fabric::transmit");
#endif
  engine_.schedule_thunk_on(
      arrival, rec->pkt.dst,
      [](void* p) {
        InFlight* r = static_cast<InFlight*>(p);
        r->owner->stage_rx(r);
      },
      rec);
}

void Fabric::release_record(InFlight* rec) {
  rec->pkt.data.reset();
  rec->pkt.meta.reset();
#ifdef SPLAP_AUDIT
  engine_.audit_object_end(rec);
#endif
  inflight_pool_.release(rec);
}

void Fabric::stage_rx(InFlight* rec) {
#ifdef SPLAP_AUDIT
  // The record is the scheduled event's raw context: if it was recycled out
  // from under the event, this dereference is the corruption point.
  inflight_pool_.audit_expect_live(rec, "Fabric::stage_rx");
  engine_.audit_object_touch(rec, "Fabric::stage_rx");
#endif
  const auto dst = static_cast<std::size_t>(rec->pkt.dst);
  if (!node_faults_.empty() &&
      !node_up(rec->pkt.dst, engine_.now())) [[unlikely]] {
    // The destination crashed while this packet was in the switch: the
    // adapter that would queue it no longer exists. Flushed, not delivered.
    engine_.counters().bump("fabric.node_down_flushed");
    release_record(rec);
    return;
  }
  if (config_.rx_queue_depth > 0) {
    // Bounded adapter RX: a packet occupies a queue slot from arrival until
    // the drain DMA hands it to the node. A full queue drops the arrival
    // deterministically — the transport above recovers (NACK/retransmit).
    if (rx_count_[dst] >= config_.rx_queue_depth) {
      ++rx_overflows_[dst];
      rx_overflow_bytes_[dst] += rec->pkt.wire_bytes();
      ctr_rx_overflow_.bump();
      SPLAP_DEBUG(engine_.now(), "fabric: RX overflow at node %d (%d queued)",
                  rec->pkt.dst, rx_count_[dst]);
      const OverflowSlot hook = overflow_[dst];
      if (hook.fn != nullptr) hook.fn(hook.ctx, rec->pkt);
      release_record(rec);
      return;
    }
    ++rx_count_[dst];
    rx_hwm_[dst] = std::max(rx_hwm_[dst], rx_count_[dst]);
  }
  Time adapter_rx = config_.cost.adapter_rx;
  if (faults_ != nullptr && faults_->has_stragglers()) [[unlikely]] {
    // Straggling receiver: the drain DMA serves this node's queue slower,
    // which is what backs up its RX occupancy and stretches its replies.
    const double factor =
        faults_->straggler_factor(rec->pkt.dst, engine_.now());
    if (factor > 1.0) {
      adapter_rx = static_cast<Time>(static_cast<double>(adapter_rx) * factor);
    }
  }
  const Time deliver_at = std::max(engine_.now(), rx_free_[dst]) + adapter_rx;
  rx_free_[dst] = deliver_at;
  // Same-shard hop (adapter_rx < lookahead, so it stays inside the window
  // and runs on this very lane in (time, seq) order).
  engine_.schedule_thunk_on(
      deliver_at, rec->pkt.dst,
      [](void* p) {
        InFlight* r = static_cast<InFlight*>(p);
        r->owner->finish_delivery(r);
      },
      rec);
}

void Fabric::finish_delivery(InFlight* rec) {
#ifdef SPLAP_AUDIT
  inflight_pool_.audit_expect_live(rec, "Fabric::finish_delivery");
  engine_.audit_object_touch(rec, "Fabric::finish_delivery");
#endif
  const auto dst = static_cast<std::size_t>(rec->pkt.dst);
  if (config_.rx_queue_depth > 0) --rx_count_[dst];
  if (!node_faults_.empty() &&
      !node_up(rec->pkt.dst, engine_.now())) [[unlikely]] {
    // Crashed between RX staging and drain-DMA completion: the queued packet
    // dies with the adapter (occupancy already released above).
    engine_.counters().bump("fabric.node_down_flushed");
    release_record(rec);
    return;
  }
  const DeliverSlot slot = deliver_[dst];
  SPLAP_REQUIRE(slot.fn != nullptr,
                "packet for a node with no adapter handler");
  // Whatever the handler does not take with it (payload buffer, descriptor
  // reference) goes back to the pools before the record is recycled — on the
  // throw path too, or a throwing handler would strand the record (and its
  // buffer) for the fabric's lifetime.
  struct Reap {
    Fabric* f;
    InFlight* rec;
    ~Reap() { f->release_record(rec); }
  } reap{this, rec};
  slot.fn(slot.ctx, std::move(rec->pkt));
}

}  // namespace splap::net
