// Pluggable fault model for the simulated SP switch.
//
// The seed fabric knew one fault: uniform i.i.d. packet loss. Real SP-class
// switches misbehave in richer ways — loss arrives in bursts (a flaky link
// CRC-failing everything for a stretch), whole routes go down or degrade
// while the spray logic keeps the pair connected over the survivors, and
// packets are occasionally duplicated or delivered with corrupted payloads.
// This header models all of those as an opt-in FaultConfig attached to the
// FabricConfig; with no faults configured the fabric's per-packet path is a
// single null-pointer check.
//
// Determinism: every injector owns its own Rng seeded from FaultConfig::seed,
// so fault sequences are reproducible bit-for-bit per seed and independent of
// the fabric's contention-jitter RNG (whose consumption order is pinned by
// the golden-trace determinism test). Route fault windows are pure functions
// of virtual time — no wall clock anywhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "base/time.hpp"

namespace splap::net {

/// How packet loss is generated.
enum class LossModel : std::uint8_t {
  /// Independent per-packet drop with probability `loss_rate`.
  kUniform,
  /// Gilbert–Elliott two-state channel: a "good" state with loss_good and a
  /// "bad" (burst) state with loss_bad; per-packet transition probabilities
  /// ge_enter_bad / ge_exit_bad. Models the bursty loss of a degrading link.
  kGilbertElliott,
  /// Deterministically drop every Nth packet (loss_every_n); no randomness,
  /// useful for pinning exact retransmission schedules in tests.
  kEveryNth,
};

/// One scheduled fault window on a switch route. Applies to route index
/// `route` on every node pair (the SP routes a pair over the same four
/// switch paths; a broken intermediate link takes the path down for all
/// pairs crossing it).
struct RouteFault {
  int route = 0;
  Time from = 0;            // window start, inclusive
  Time until = kNoTime;     // window end, exclusive; kNoTime = never ends
  /// true: the route is unusable and the spray logic must fail over.
  /// false: the route stays up but degraded, adding extra_latency.
  bool down = true;
  Time extra_latency = 0;

  bool active(Time t) const {
    return t >= from && (until == kNoTime || t < until);
  }
};

/// One crash-stop window for a whole node: while active, the node is down —
/// every packet to or from it is lost, its adapter RX queue and in-flight
/// deliveries are flushed, and (above this layer) its actors are dead. A
/// window with until == kNoTime is a crash with no restart; Machine::
/// restart_node closes the window and resets the node's adapter state.
struct NodeFault {
  int node = 0;
  Time from = 0;         // crash instant, inclusive
  Time until = kNoTime;  // restart instant, exclusive; kNoTime = stays down

  bool active(Time t) const {
    return t >= from && (until == kNoTime || t < until);
  }
};

/// One directional partition window: while active, packets from `src` to
/// `dst` are lost on the wire while the reverse direction is untouched —
/// the asymmetric (gray) partition a misprogrammed switch port produces.
/// Either endpoint may be -1 as a wildcard ("any node"), so {src=2, dst=-1}
/// blackholes everything node 2 transmits while it still hears the world.
struct PartitionFault {
  int src = -1;          // transmitting node, -1 = any
  int dst = -1;          // receiving node, -1 = any
  Time from = 0;         // window start, inclusive
  Time until = kNoTime;  // window end, exclusive; kNoTime = never heals

  bool active(Time t) const {
    return t >= from && (until == kNoTime || t < until);
  }
  bool matches(int s, int d) const {
    return (src < 0 || src == s) && (dst < 0 || dst == d);
  }
};

/// A named symmetric partition: the fabric splits into the listed sides and
/// every route between nodes on *different* sides is cut for the window (both
/// directions). Nodes not listed on any side are unaffected — they keep full
/// connectivity to everyone, modeling a split that only severs one switch
/// plane. Heals when the window closes.
struct PartitionGroup {
  std::string name;                    // for traces/diagnostics only
  std::vector<std::vector<int>> sides;
  Time from = 0;
  Time until = kNoTime;

  bool active(Time t) const {
    return t >= from && (until == kNoTime || t < until);
  }
  /// True when a and b sit on distinct explicit sides.
  bool severs(int a, int b) const {
    int sa = -1;
    int sb = -1;
    for (std::size_t i = 0; i < sides.size(); ++i) {
      for (int n : sides[i]) {
        if (n == a) sa = static_cast<int>(i);
        if (n == b) sb = static_cast<int>(i);
      }
    }
    return sa >= 0 && sb >= 0 && sa != sb;
  }
};

/// A gray-failing node: alive and reachable, but its adapter serves packets
/// `multiplier`x slower for the window (scales adapter_tx on transmit and
/// adapter_rx on delivery). This is the classic straggler a fixed keepalive
/// mistakes for a crash.
struct Straggler {
  int node = 0;
  double multiplier = 1.0;  // >= 1; 1.0 = no effect
  Time from = 0;
  Time until = kNoTime;

  bool active(Time t) const {
    return t >= from && (until == kNoTime || t < until);
  }
};

struct FaultConfig {
  LossModel loss = LossModel::kUniform;
  /// kUniform: per-packet drop probability.
  double loss_rate = 0.0;
  // Gilbert–Elliott parameters (kGilbertElliott).
  double ge_enter_bad = 0.0;  // P(good -> bad) evaluated per packet
  double ge_exit_bad = 0.1;   // P(bad -> good) evaluated per packet
  double loss_good = 0.0;     // drop probability in the good state
  double loss_bad = 0.5;      // drop probability in the bad (burst) state
  /// kEveryNth: drop packets number N, 2N, 3N, ... (0 disables).
  std::int64_t loss_every_n = 0;

  /// Probability a delivered packet is additionally delivered a second time
  /// (switch-internal duplication; the dup takes a skewed path).
  double duplicate_rate = 0.0;
  /// Probability a delivered packet's payload has a byte flipped in flight.
  /// Header-only packets cannot carry a flipped payload byte; for them a
  /// corruption event means the switch CRC discards the packet (a drop).
  double corrupt_rate = 0.0;

  std::vector<RouteFault> route_faults;

  /// Crash-stop node windows known up front. Machine::kill_node /
  /// restart_node append/close windows dynamically; this config vector
  /// exists so harnesses can also declare crashes declaratively.
  std::vector<NodeFault> node_faults;

  /// Directional src->dst blackhole windows (asymmetric partitions).
  std::vector<PartitionFault> partitions;
  /// Named multi-side symmetric partitions cut at a virtual time.
  std::vector<PartitionGroup> partition_groups;
  /// Per-node adapter slowdown windows (gray failures).
  std::vector<Straggler> stragglers;

  std::uint64_t seed = 0xfa017;

  bool injects_loss() const {
    switch (loss) {
      case LossModel::kUniform: return loss_rate > 0;
      case LossModel::kGilbertElliott:
        return loss_good > 0 || loss_bad > 0;
      case LossModel::kEveryNth: return loss_every_n > 0;
    }
    return false;
  }
  /// Anything configured at all? When false the fabric skips the injector
  /// entirely (the zero-cost default path).
  bool any() const {
    return injects_loss() || duplicate_rate > 0 || corrupt_rate > 0 ||
           !route_faults.empty() || !node_faults.empty() ||
           !partitions.empty() || !partition_groups.empty() ||
           !stragglers.empty();
  }
};

/// Per-fabric fault state machine. One drop_packet() call per transmitted
/// packet advances the loss model (the Gilbert–Elliott channel state evolves
/// even for packets that survive); duplication/corruption draws happen only
/// when their rates are nonzero, so configs that disable them consume no
/// randomness for them.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  /// Advance the loss model one packet; true = this packet is lost.
  bool drop_packet();
  bool duplicate_packet();
  bool corrupt_packet();
  /// Which payload byte to flip for a corrupted packet of `len` bytes.
  std::size_t corrupt_byte(std::size_t len);
  /// Deterministic extra path delay for a duplicate, in [0, span).
  Time duplicate_skew(Time span);

  bool route_up(int route, Time t) const;
  /// Extra latency from degraded-but-up windows covering (route, t).
  Time route_penalty(int route, Time t) const;
  bool has_route_faults() const { return !config_.route_faults.empty(); }

  /// True when any directional window or partition group severs src->dst at
  /// t. Pure function of virtual time: consumes no randomness, so enabling
  /// partitions leaves every RNG stream (and the golden traces) untouched.
  bool partitioned(int src, int dst, Time t) const;
  /// Adapter service-time multiplier for `node` at t (stacked stragglers
  /// multiply; 1.0 when none active).
  double straggler_factor(int node, Time t) const;
  bool has_partitions() const {
    return !config_.partitions.empty() || !config_.partition_groups.empty();
  }
  bool has_stragglers() const { return !config_.stragglers.empty(); }

  /// Gilbert–Elliott channel currently in the burst state (test hook).
  bool in_burst() const { return bad_state_; }

 private:
  FaultConfig config_;
  Rng rng_;
  bool bad_state_ = false;      // Gilbert–Elliott channel state
  std::int64_t pkt_index_ = 0;  // kEveryNth position
};

}  // namespace splap::net
