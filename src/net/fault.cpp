#include "net/fault.hpp"

#include <utility>

namespace splap::net {

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

bool FaultInjector::drop_packet() {
  switch (config_.loss) {
    case LossModel::kUniform:
      return config_.loss_rate > 0 && rng_.next_bool(config_.loss_rate);
    case LossModel::kGilbertElliott: {
      // Transition first, then draw the loss for the new state: a link that
      // just failed starts losing immediately (burst onset is abrupt).
      if (bad_state_) {
        if (config_.ge_exit_bad > 0 && rng_.next_bool(config_.ge_exit_bad)) {
          bad_state_ = false;
        }
      } else {
        if (config_.ge_enter_bad > 0 && rng_.next_bool(config_.ge_enter_bad)) {
          bad_state_ = true;
        }
      }
      const double p = bad_state_ ? config_.loss_bad : config_.loss_good;
      return p > 0 && rng_.next_bool(p);
    }
    case LossModel::kEveryNth: {
      if (config_.loss_every_n <= 0) return false;
      ++pkt_index_;
      if (pkt_index_ == config_.loss_every_n) {
        pkt_index_ = 0;
        return true;
      }
      return false;
    }
  }
  return false;
}

bool FaultInjector::duplicate_packet() {
  return config_.duplicate_rate > 0 && rng_.next_bool(config_.duplicate_rate);
}

bool FaultInjector::corrupt_packet() {
  return config_.corrupt_rate > 0 && rng_.next_bool(config_.corrupt_rate);
}

std::size_t FaultInjector::corrupt_byte(std::size_t len) {
  SPLAP_REQUIRE(len > 0, "corrupting an empty payload");
  return static_cast<std::size_t>(rng_.next_below(len));
}

Time FaultInjector::duplicate_skew(Time span) {
  if (span <= 0) return 0;
  return static_cast<Time>(
      rng_.next_below(static_cast<std::uint64_t>(span)));
}

bool FaultInjector::route_up(int route, Time t) const {
  for (const RouteFault& f : config_.route_faults) {
    if (f.route == route && f.down && f.active(t)) return false;
  }
  return true;
}

bool FaultInjector::partitioned(int src, int dst, Time t) const {
  for (const PartitionFault& p : config_.partitions) {
    if (p.active(t) && p.matches(src, dst)) return true;
  }
  for (const PartitionGroup& g : config_.partition_groups) {
    if (g.active(t) && g.severs(src, dst)) return true;
  }
  return false;
}

double FaultInjector::straggler_factor(int node, Time t) const {
  double factor = 1.0;
  for (const Straggler& s : config_.stragglers) {
    if (s.node == node && s.multiplier > 1.0 && s.active(t)) {
      factor *= s.multiplier;
    }
  }
  return factor;
}

Time FaultInjector::route_penalty(int route, Time t) const {
  Time extra = 0;
  for (const RouteFault& f : config_.route_faults) {
    if (f.route == route && !f.down && f.active(t)) extra += f.extra_latency;
  }
  return extra;
}

}  // namespace splap::net
