// The narrow injection-side interface protocol transports consume.
//
// LAPI's and MPL's transmit paths need exactly three things from the
// network: a pooled packet to fill in, a way to hand it to the source-side
// injection link, and the time at which that link will next be free (for
// backlog-aware retransmit timers). Handing the layers this interface —
// instead of letting them reach through node.machine().fabric() — keeps the
// dependency arrow pointing downward (transport -> net) and lets tests drive
// the transport stack against a scripted fake wire with loss, reordering,
// duplication and corruption, without standing up a whole Machine.
//
// Receive-side delivery is NOT part of this interface: the fabric calls the
// node's Adapter at each packet's delivery time, and the protocol's
// registered client handler decides what an "arrival" means (interrupt vs
// poll). See net/machine.hpp.
#pragma once

#include "base/time.hpp"
#include "net/packet.hpp"

namespace splap::net {

class Delivery {
 public:
  /// Mint a packet whose payload buffer comes from the wire's recycling
  /// pool (a default-constructed Packet falls back to the heap).
  virtual Packet make_packet() = 0;

  /// Hand a packet to the src-side injection link at the current virtual
  /// time. The caller has already paid any CPU cost; transport is DMA.
  virtual void transmit(Packet&& pkt) = 0;

  /// When the packet last handed to transmit() will have cleared the
  /// injection link (for senders that model TX queue backpressure).
  virtual Time link_free(int src) const = 0;

 protected:
  ~Delivery() = default;
};

}  // namespace splap::net
