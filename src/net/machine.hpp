// A simulated RS/6000 SP: N nodes, each with an adapter onto the shared
// switch fabric, plus the SPMD harness that runs one task per node.
//
// Protocol libraries (LAPI, MPL) attach to a node by registering a client
// handler with its Adapter; the fabric invokes that handler at each packet's
// virtual delivery time. Whether delivery causes an "interrupt" or waits for
// a poll is the client's policy, not the adapter's — exactly the split on
// the real machine, where the CSS adapter raises an interrupt only if the
// protocol armed it.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "base/cost_model.hpp"
#include "net/fabric.hpp"
#include "net/packet.hpp"
#include "sim/engine.hpp"

namespace splap::net {

class Machine;

class Adapter {
 public:
  using ClientHandler = std::function<void(Packet&&)>;

  /// Register the protocol library that owns `client` packets on this node.
  void register_client(Client client, ClientHandler handler) {
    auto& slot = handlers_[static_cast<std::size_t>(client)];
    SPLAP_REQUIRE(slot == nullptr, "client already registered on this node");
    slot = std::move(handler);
  }

  void unregister_client(Client client) {
    handlers_[static_cast<std::size_t>(client)] = nullptr;
    overflow_handlers_[static_cast<std::size_t>(client)] = nullptr;
  }

  /// Orderly protocol shutdown: the slot keeps absorbing straggler packets
  /// (duplicate acks elicited by the last pre-settle retransmissions, which
  /// may still be in flight when term returns) the way a real NIC keeps
  /// receiving after the library detaches. Absorbed packets are counted but
  /// are NOT dead letters — those remain the signature of a client that
  /// vanished without shutdown (a crash) or never initialised at all.
  void retire_client(Client client) {
    handlers_[static_cast<std::size_t>(client)] = [this](Packet&&) {
      ++absorbed_;
    };
    overflow_handlers_[static_cast<std::size_t>(client)] = nullptr;
  }

  /// Straggler packets absorbed by retired client slots.
  std::int64_t absorbed() const { return absorbed_; }

  /// Optional per-client RX-overflow notification: invoked with each packet
  /// the bounded adapter RX queue discarded for `client` (the packet is
  /// about to be destroyed — inspect, don't keep). Lets a transport NACK
  /// the origin instead of waiting out its retransmission timeout.
  using OverflowHandler = std::function<void(const Packet&)>;
  void register_overflow(Client client, OverflowHandler handler) {
    overflow_handlers_[static_cast<std::size_t>(client)] = std::move(handler);
  }

  void overflow(const Packet& pkt) {
    auto& h = overflow_handlers_[static_cast<std::size_t>(pkt.client)];
    if (h != nullptr) h(pkt);
  }

  void deliver(Packet&& pkt) {
    auto& h = handlers_[static_cast<std::size_t>(pkt.client)];
    if (h == nullptr) {
      // Packet for a protocol that already shut down on this node (e.g. a
      // straggler retransmission after LAPI_Term). Dropped, but counted so
      // tests can assert it never happens in healthy runs.
      ++dead_letters_;
      return;
    }
    h(std::move(pkt));
  }

  /// Packets that arrived for an unregistered client.
  std::int64_t dead_letters() const { return dead_letters_; }

 private:
  std::array<ClientHandler, static_cast<std::size_t>(Client::kCount)>
      handlers_{};
  std::array<OverflowHandler, static_cast<std::size_t>(Client::kCount)>
      overflow_handlers_{};
  std::int64_t dead_letters_ = 0;
  std::int64_t absorbed_ = 0;
};

class Node {
 public:
  Node(Machine& machine, int id) : machine_(machine), id_(id) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int id() const { return id_; }
  Machine& machine() const { return machine_; }
  Adapter& adapter() { return adapter_; }
  sim::Engine& engine() const;
  const CostModel& cost() const;

  /// The node's application task (valid during run_spmd).
  sim::Actor& task() const {
    SPLAP_REQUIRE(task_ != nullptr, "node task not running");
    return *task_;
  }

 private:
  friend class Machine;
  Machine& machine_;
  int id_;
  Adapter adapter_;
  sim::Actor* task_ = nullptr;
};

class Machine {
 public:
  struct Config {
    int tasks = 2;
    FabricConfig fabric;
  };

  explicit Machine(Config config);
  /// Actors blocked at teardown unwind through protocol contexts that
  /// reference the nodes; the engine must therefore quiesce before the
  /// nodes are destroyed.
  ~Machine() { engine_.shutdown(); }

  int tasks() const { return static_cast<int>(nodes_.size()); }
  sim::Engine& engine() { return engine_; }
  Fabric& fabric() { return fabric_; }
  const CostModel& cost() const { return fabric_.cost(); }
  Node& node(int i) {
    SPLAP_REQUIRE(i >= 0 && i < tasks(), "bad node id");
    return *nodes_[static_cast<std::size_t>(i)];
  }

  /// Run `body` as one task per node (SPMD) to completion of all tasks and
  /// all in-flight events. May be called repeatedly for phased workloads;
  /// virtual time carries across phases.
  ///
  /// Healthy-run invariant: a clean run (kOk, no crash scheduled, opt-out not
  /// taken) must deliver every packet to a registered client — a nonzero
  /// dead-letter count then means a protocol tore down while peers still
  /// addressed it, which is a bug, not weather. Crash/restart runs are the
  /// one legitimate source of dead letters (stale retransmissions arriving
  /// between a node's reboot and its LAPI_Init), so they skip the check.
  Status run_spmd(const std::function<void(Node&)>& body);

  // --- crash-stop fault domain -------------------------------------------

  /// Crash node `node` at virtual time `t` (>= now): at t the fabric stops
  /// carrying its traffic, in-flight deliveries to it are flushed, and every
  /// actor pinned to its shard is torn down (stacks unwind; RAII runs with
  /// Actor::poisoned() set). Deterministic and repeatable per seed. Marks
  /// the engine parallel-unsafe (crash windows are global mutable state).
  void kill_node(int node, Time t);

  /// Restart `node` at time `t` (> its crash): closes the fabric crash
  /// window, resets the node's adapter-side fabric state, bumps the node's
  /// incarnation epoch, and respawns `body` as a fresh task on the node's
  /// shard. The new life starts with clean protocol state; survivors of the
  /// old life reject its stale packets by epoch.
  void restart_node(int node, Time t, std::function<void(Node&)> body);

  /// The node's current incarnation epoch: 0 for the first life, +1 per
  /// restart. Stamped into every LAPI/MPL packet header a task sends.
  std::int64_t incarnation(int node) const {
    return incarnations_[static_cast<std::size_t>(node)];
  }

  /// Any crash scheduled on this machine so far (disables the healthy-run
  /// dead-letter assertion).
  bool crash_planned() const { return crash_planned_; }

  /// Opt out of the healthy-run dead-letter assertion for tests that
  /// deliberately leave a client unregistered (e.g. a target task that never
  /// calls LAPI_Init while peers retransmit at it).
  void allow_dead_letters() { allow_dead_letters_ = true; }

 private:
  sim::Engine engine_;
  Fabric fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::int64_t> incarnations_;
  bool crash_planned_ = false;
  bool allow_dead_letters_ = false;
};

}  // namespace splap::net
