// The SP switch fabric: a packet-switched multistage network connecting the
// node adapters.
//
// Model (per packet):
//   depart   = max(now, link_free[src])            -- injection link FIFO
//   occupy   = wire_time(header + payload)          -- serialization at 110 MB/s
//   route    = round-robin over routes_per_pair paths; path r adds
//              route_latency + r*route_skew (+ contention jitter)
//   arrival  = depart + occupy + route delay
//   deliver  = max(arrival, rx_free[dst]) + adapter_rx  -- drain DMA FIFO
//
// Because consecutive packets are sprayed over distinct routes (as on the
// real SP switch) and cross-traffic contention adds jitter, delivery is NOT
// ordered — the property LAPI is architected around and MPI/MPL must mask.
//
// Fault injection: each packet is dropped with probability drop_rate
// (deterministically, from the machine seed), exercising the reliability
// layers above.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "base/cost_model.hpp"
#include "base/rng.hpp"
#include "base/stats.hpp"
#include "net/packet.hpp"
#include "sim/engine.hpp"

namespace splap::net {

struct FabricConfig {
  CostModel cost;
  /// Probability that any given packet is lost in the network.
  double drop_rate = 0.0;
  /// Upper bound of uniform extra delay per packet modelling contention with
  /// cross traffic inside the multistage switch (0 = unloaded machine, the
  /// calibration configuration).
  Time contention_jitter = 0;
  std::uint64_t seed = 0x5eed;
};

class Fabric {
 public:
  using DeliverFn = std::function<void(Packet&&)>;

  Fabric(sim::Engine& engine, int nodes, FabricConfig config);

  /// Register the receive-side entry point of node `dst` (the adapter).
  void set_deliver(int dst, DeliverFn fn);

  /// Hand a packet to the src-side injection link at the current virtual
  /// time. The caller has already paid any CPU cost; transport is DMA.
  void transmit(Packet&& pkt);

  /// When the packet last handed to transmit() will have cleared the
  /// injection link (for senders that want to model TX queue backpressure).
  Time link_free(int src) const { return link_free_[static_cast<size_t>(src)]; }

  const CostModel& cost() const { return config_.cost; }
  int nodes() const { return static_cast<int>(link_free_.size()); }

  // Instrumentation.
  std::int64_t packets_sent() const { return packets_sent_; }
  std::int64_t packets_dropped() const { return packets_dropped_; }
  std::int64_t bytes_on_wire() const { return bytes_on_wire_; }

 private:
  sim::Engine& engine_;
  FabricConfig config_;
  std::vector<Time> link_free_;  // per-src injection link
  std::vector<Time> rx_free_;    // per-dst drain DMA
  std::vector<int> next_route_;  // per-src round-robin route pointer
  std::vector<DeliverFn> deliver_;
  Rng rng_;
  std::int64_t packets_sent_ = 0;
  std::int64_t packets_dropped_ = 0;
  std::int64_t bytes_on_wire_ = 0;
};

}  // namespace splap::net
