// The SP switch fabric: a packet-switched multistage network connecting the
// node adapters.
//
// Model (per packet):
//   depart   = max(now, link_free[src])            -- injection link FIFO
//   occupy   = wire_time(header + payload)          -- serialization at 110 MB/s
//   route    = round-robin over routes_per_pair paths; path r adds
//              route_latency + r*route_skew (+ contention jitter)
//   arrival  = depart + occupy + route delay
//   deliver  = max(arrival, rx_free[dst]) + adapter_rx  -- drain DMA FIFO
//
// Because consecutive packets are sprayed over distinct routes (as on the
// real SP switch) and cross-traffic contention adds jitter, delivery is NOT
// ordered — the property LAPI is architected around and MPI/MPL must mask.
//
// Fault injection: the legacy drop_rate drops each packet with uniform
// probability (deterministically, from the machine seed). The richer
// FaultConfig (net/fault.hpp) layers bursty loss, deterministic per-N loss,
// per-route down/degrade windows with spray failover, duplication and
// payload corruption on top — all opt-in, so the default path stays a null
// check.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "base/cost_model.hpp"
#include "base/rng.hpp"
#include "base/stats.hpp"
#include "net/delivery.hpp"
#include "net/fault.hpp"
#include "net/packet.hpp"
#include "sim/engine.hpp"

namespace splap::net {

struct FabricConfig {
  CostModel cost;
  /// Probability that any given packet is lost in the network (the legacy
  /// uniform model; kept distinct from FaultConfig so the golden determinism
  /// traces' RNG consumption order is preserved bit-for-bit).
  double drop_rate = 0.0;
  /// Upper bound of uniform extra delay per packet modelling contention with
  /// cross traffic inside the multistage switch (0 = unloaded machine, the
  /// calibration configuration).
  Time contention_jitter = 0;
  std::uint64_t seed = 0x5eed;
  /// Extended fault model: bursty/per-N loss, route down/degrade windows,
  /// duplication, payload corruption. Inert unless fault.any().
  FaultConfig fault;
  /// Adapter RX queue depth per node: packets queued between arrival at the
  /// adapter and drain-DMA completion. When the queue is full, further
  /// arrivals are deterministically dropped (counted in rx_overflows and the
  /// `fabric.rx_overflow` counter, reported to the node's overflow hook so a
  /// transport can NACK). 0 = unbounded (the default; golden traces
  /// unchanged).
  int rx_queue_depth = 0;
};

class Fabric : public Delivery {
 public:
  using DeliverFn = std::function<void(Packet&&)>;
  /// Raw delivery target: one indirect call, no std::function machinery on
  /// the per-packet path. `ctx` must outlive the fabric registration.
  using DeliverThunk = void (*)(void* ctx, Packet&&);

  Fabric(sim::Engine& engine, int nodes, FabricConfig config);

  /// Audit builds verify the in-flight record ledger drained: when the
  /// engine's queue is empty (the simulation ran to completion) every record
  /// must have been released by finish_delivery. Records still out while
  /// events remain queued are a legitimate mid-flight teardown, not a leak.
  ~Fabric();

  /// Register the receive-side entry point of node `dst` (the adapter).
  void set_deliver(int dst, DeliverFn fn);
  void set_deliver(int dst, DeliverThunk fn, void* ctx);

  /// Overflow notification for node `dst`: invoked (at the drop instant)
  /// with the packet an RX-overflow discarded, before its buffers return to
  /// the pools. The fabric knows nothing about what the hook does with it —
  /// credits/NACKs are transport state above this layer. Only fires when
  /// rx_queue_depth > 0.
  using OverflowThunk = void (*)(void* ctx, const Packet& pkt);
  void set_overflow(int dst, OverflowThunk fn, void* ctx);

  /// Mint a packet whose payload buffer comes from this fabric's recycling
  /// pool (returned automatically when the last holder drops it). Senders on
  /// the hot path should build packets through this instead of `Packet{}` so
  /// steady-state traffic does not touch the allocator.
  Packet make_packet() override {
    Packet p;
    p.data = Payload(&payload_pool_);
    return p;
  }

  /// Hand a packet to the src-side injection link at the current virtual
  /// time. The caller has already paid any CPU cost; transport is DMA.
  void transmit(Packet&& pkt) override;

  /// When the packet last handed to transmit() will have cleared the
  /// injection link (for senders that want to model TX queue backpressure).
  Time link_free(int src) const override {
    return link_free_[static_cast<size_t>(src)];
  }

  const CostModel& cost() const { return config_.cost; }
  int nodes() const { return static_cast<int>(link_free_.size()); }

  // Instrumentation. packets_sent counts every transmit (drops included —
  // the sender did inject them); bytes_on_wire only bytes that reached the
  // destination adapter, with dropped bytes tallied separately so loss does
  // not inflate delivered-traffic accounting.
  //
  // Send-side tallies live per source and RX-overflow tallies per
  // destination, because under the parallel window executor transmit() runs
  // on the src node's lane and stage_rx() on the dst node's; the accessors
  // sum (reads happen on the engine thread, after the window join).
  // Fault-model tallies stay scalar: any fault configuration marks the
  // engine parallel-unsafe, so those paths only ever run serially.
  std::int64_t packets_sent() const { return sum(sent_); }
  std::int64_t packets_dropped() const {
    return fault_dropped_ + sum(rx_overflows_);
  }
  std::int64_t bytes_on_wire() const { return sum(bytes_on_wire_); }
  std::int64_t bytes_dropped() const {
    return fault_bytes_dropped_ + sum(rx_overflow_bytes_);
  }
  /// Extra copies the fault model injected (each also counted in
  /// packets_sent-independent bytes_on_wire once it reaches the adapter).
  std::int64_t packets_duplicated() const { return packets_duplicated_; }
  /// Delivered packets whose payload was corrupted in flight (header-only
  /// packets hit by corruption are CRC-discarded by the switch and counted
  /// under packets_dropped instead).
  std::int64_t packets_corrupted() const { return packets_corrupted_; }
  /// Packets whose round-robin route was down and were re-sprayed onto a
  /// surviving route.
  std::int64_t route_failovers() const { return route_failovers_; }
  /// Packets discarded because a node's bounded adapter RX queue was full
  /// (also counted in packets_dropped).
  std::int64_t rx_overflows() const { return sum(rx_overflows_); }
  /// Peak adapter RX queue occupancy observed at `node` (0 when
  /// rx_queue_depth is 0: unbounded queues are not tracked).
  int rx_high_water(int node) const {
    return rx_hwm_[static_cast<std::size_t>(node)];
  }
  /// Current adapter RX queue occupancy at `node`.
  int rx_occupancy(int node) const {
    return rx_count_[static_cast<std::size_t>(node)];
  }

  /// Corruption injection armed (protocol layers use this to decide whether
  /// to stamp/verify end-to-end payload checksums).
  bool corruption_enabled() const { return config_.fault.corrupt_rate > 0; }

  // --- crash-stop node windows -------------------------------------------
  // While a node window is active the node is dead on the wire: transmit
  // drops every packet to or from it (fabric.node_down) and packets already
  // in flight toward it are flushed at the adapter (fabric.node_down_flushed)
  // so crash timing cannot leak stale deliveries into a restarted node.

  /// Open a crash window (Machine::kill_node appends one with until=kNoTime;
  /// declarative windows arrive via FaultConfig::node_faults).
  void add_node_fault(const NodeFault& f);

  /// Close the newest open window for `node` at time `t` (its restart).
  void set_node_restart(int node, Time t);

  /// Is `node` alive on the wire at time `t`? O(1) when no node faults are
  /// configured — the healthy-path cost is one empty() check.
  bool node_up(int node, Time t) const {
    if (node_faults_.empty()) return true;
    return node_up_slow(node, t);
  }

  /// Restart hygiene: a rebooted adapter starts with clean link/DMA clocks
  /// and a fresh route pointer, as if freshly constructed.
  void reset_node(int node);

  /// Payload buffers allocated so far (steady state: constant — the pool
  /// recycles). Exposed for the allocation-regression tests.
  std::size_t payload_buffers_allocated() const {
    return payload_pool_.capacity();
  }

 private:
  /// One packet in flight between injection and delivery. The record is
  /// pool-recycled and referenced by at most one scheduled event at a time:
  /// first at `arrival` (drain-DMA bookkeeping, which must happen in arrival
  /// order), then at the delivery instant. The record itself is the event
  /// context (schedule_thunk), so neither hop constructs a capture; `owner`
  /// routes the static trampolines back to this fabric.
  struct InFlight {
    Fabric* owner = nullptr;
    Packet pkt;
  };

  void stage_rx(InFlight* rec);
  void finish_delivery(InFlight* rec);

  struct DeliverSlot {
    DeliverThunk fn = nullptr;
    void* ctx = nullptr;
  };

  struct OverflowSlot {
    OverflowThunk fn = nullptr;
    void* ctx = nullptr;
  };

  void release_record(InFlight* rec);

  bool node_up_slow(int node, Time t) const;

  static std::int64_t sum(const std::vector<std::int64_t>& v) {
    std::int64_t s = 0;
    for (std::int64_t x : v) s += x;
    return s;
  }

  sim::Engine& engine_;
  FabricConfig config_;
  std::vector<Time> link_free_;  // per-src injection link
  std::vector<Time> rx_free_;    // per-dst drain DMA
  std::vector<int> next_route_;  // per-src round-robin route pointer
  std::vector<DeliverSlot> deliver_;
  std::vector<OverflowSlot> overflow_;
  std::vector<int> rx_count_;  // per-dst adapter RX queue occupancy
  std::vector<int> rx_hwm_;    // per-dst occupancy high-water mark
  // Stable homes for std::function registrations (tests, tools), one slot
  // per node so re-registration replaces rather than accumulates; the hot
  // slot then points at a trampoline that calls through the function.
  std::vector<std::unique_ptr<DeliverFn>> deliver_fns_;
  Rng rng_;
  /// Non-null only when the extended fault model is configured; the hot
  /// path's whole fault-model cost in the default configuration is this
  /// null check.
  std::unique_ptr<FaultInjector> faults_;
  /// Crash-stop windows (config + dynamically appended). Empty in every
  /// healthy configuration, so node_up() costs one empty() check.
  std::vector<NodeFault> node_faults_;
  // payload_pool_ must outlive inflight_pool_: destroying an InFlight
  // record releases its packet's payload buffer back into the payload pool.
  SlabBufferPool payload_pool_;
  ObjectPool<InFlight> inflight_pool_{256};
  std::vector<std::int64_t> sent_;           // per-src
  std::vector<std::int64_t> bytes_on_wire_;  // per-src
  std::vector<std::int64_t> rx_overflows_;       // per-dst
  std::vector<std::int64_t> rx_overflow_bytes_;  // per-dst
  // Fault-path tallies (drops, corruption, failover): scalar — faults force
  // serial execution, see the ctor.
  std::int64_t fault_dropped_ = 0;
  std::int64_t fault_bytes_dropped_ = 0;
  std::int64_t packets_duplicated_ = 0;
  std::int64_t packets_corrupted_ = 0;
  std::int64_t route_failovers_ = 0;
  // Per-src one-entry memo of wire_time(bytes): identical result, no
  // per-packet floating divide for the dominant fixed-size packet stream.
  std::vector<std::int64_t> wire_memo_bytes_;
  std::vector<Time> wire_memo_time_;
  CounterSet::Handle ctr_rx_overflow_;  // resolved once: stage_rx is hot
};

}  // namespace splap::net
