// The LAPI target side: message assembly and delivery.
//
// Owns everything that happens when a data-bearing packet reaches its
// destination (Section 2.1, steps 2-4 of Figure 1):
//   - per-(origin, msg_id) assembly records with out-of-order staging (data
//     packets that beat their header wait for the header handler to supply
//     the landing buffer), fragment dedup, and the strided scatter path for
//     Putv;
//   - end-to-end CRC verification (corrupted packets are treated as loss and
//     recovered by the origin's retransmission);
//   - Get/Rmw serving, where the reply is handed back up to the facade as an
//     internal Put / direct response packet;
//   - the two-level DATA/DONE ack emission, including re-acks for
//     retransmitted traffic into completed assemblies (duplicate
//     suppression — the user may already have reused the buffer).
//
// Invariant owned here: user-visible delivery happens exactly once per
// message — duplicates of any packet of a completed message are answered
// with acks only, and a fragment ingests at most once (the seen map).
//
// What it does NOT know: handler tables, completion-service threads, or the
// Context type — those stay behind the Env callback interface, so this layer
// is unit-testable against a scripted fake wire.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "base/cost_model.hpp"
#include "base/status.hpp"
#include "lapi/progress.hpp"
#include "lapi/protocol.hpp"
#include "lapi/types.hpp"
#include "net/delivery.hpp"

namespace splap::lapi {

class Context;

class AssemblyEngine {
 public:
  /// The services above this layer: handler dispatch, completion-thread
  /// submission, and the facade's validated send path for Get replies.
  class Env {
   public:
    virtual AmReply run_handler(AmHandlerId id, const AmDelivery& d) = 0;
    virtual void run_completion(
        const std::function<void(Context&, sim::Actor&)>& fn,
        sim::Actor& svc_actor) = 0;
    virtual void submit_completion(std::function<void(sim::Actor&)> fn) = 0;
    virtual Status send_get_reply(
        int origin, std::shared_ptr<WireMeta> hdr,
        std::shared_ptr<std::vector<std::byte>> data) = 0;
    /// A get reply finished landing: retire the origin's outstanding-get.
    virtual void note_get_reply() = 0;

   protected:
    ~Env() = default;
  };

  AssemblyEngine(net::Delivery& wire, ProgressEngine& progress, Env& env,
                 int task_id, const Config& config, bool verify_checksums)
      : wire_(wire),
        progress_(progress),
        env_(env),
        task_id_(task_id),
        config_(config),
        checksums_(verify_checksums) {}

  /// Process one received data-path packet (every kind except the
  /// origin-side kAck/kRmwResp/kNack/kCredit); returns the dispatcher
  /// processing cost.
  Time process(net::Packet& pkt);

  /// The adapter's bounded RX queue dropped `pkt` before delivery: NACK the
  /// origin of a request/data packet so it recovers at fast-retransmit speed
  /// instead of RTO speed. Dropped control packets (acks, credits) need no
  /// NACK — they heal through probes and cumulative grants.
  void on_overflow(const net::Packet& pkt);

  /// Partial (incomplete) assemblies currently held. Completed-message
  /// duplicate-suppression markers are not partials.
  std::size_t live_partials() const { return live_partials_; }

  /// Incarnation epoch of the owning context; stamped into every reply this
  /// layer emits (acks, NACKs, credits, RMW responses).
  void set_epoch(std::int64_t e) { epoch_ = e; }

  /// The peer `origin` restarted with a new incarnation: drop every trace of
  /// its previous life. Partials from it can never complete, completed
  /// markers would collide with the new life's restarted msg-id sequence
  /// (suppressing real deliveries), and the RMW dedup cache would swallow
  /// the new life's first RMWs.
  void forget_origin(int origin);

  /// The peer was declared dead but no restart has been seen: reclaim its
  /// incomplete partials now (they can never complete). Completed markers
  /// stay — the verdict may be congestion misjudged as death, and
  /// exactly-once delivery must survive the reconnect.
  void reclaim_peer_partials(int origin);

 private:
  // Assembly state at the target side of a message.
  struct Assembly {
    PktKind kind = PktKind::kPutHdr;
    bool has_header = false;
    bool completed = false;
    bool completion_ran = false;
    std::int64_t total = -1;
    std::int64_t received = 0;
    std::byte* buffer = nullptr;
    std::shared_ptr<const WireMeta> hdr;  // counters/flags for acks
    std::function<void(Context&, sim::Actor&)> completion;
    /// Data packets that arrived before the header packet (out-of-order
    /// delivery): staged until the header handler supplies the buffer.
    std::vector<net::Packet> staged;
    std::map<std::int64_t, std::int64_t> seen;  // offset -> len (dedup)
    /// Distinct wire packets of this message ingested so far (header packet
    /// counted once). This is the cumulative credit grant (ack_pkts) echoed
    /// on acks and kCredit updates; it survives completion shedding so
    /// re-acks still release the origin's full lease.
    std::int64_t pkts_ingested = 0;
    /// pkts_ingested value at the last standalone kCredit emission.
    std::int64_t last_credit_sent = 0;
    /// Last packet activity (the partial-TTL sweep's staleness clock).
    Time last_update = 0;
  };

  using AssemblyMap = std::map<std::pair<int, std::int64_t>, Assembly>;

  /// `origin_epoch` is the acked message's origin incarnation (its life the
  /// reply is addressed to — a restarted origin rejects replies stamped for
  /// its previous life).
  void send_ack(int target, std::int64_t msg_id, bool data, bool done,
                Counter* org_cntr, Counter* cmpl_cntr, std::int64_t pkts,
                std::int64_t origin_epoch, Time when);
  void finish_assembly(int origin, std::int64_t msg_id);
  /// NACK `origin` about msg_id, at most once until that message shows
  /// forward progress (an accepted packet clears the suppression).
  void send_nack(int origin, std::int64_t msg_id, std::int64_t origin_epoch);
  /// Emit a standalone kCredit update when enough new packets of a
  /// still-incomplete message have been ingested since the last one.
  void maybe_emit_credit(int origin, std::int64_t msg_id, Assembly& as,
                         std::int64_t origin_epoch);
  /// May a packet open a new partial right now? Runs the TTL sweep first,
  /// then applies the max_partials cap.
  bool admit_partial(Time now);
  /// Drop a partial: counter, live count, NACK suppression state.
  AssemblyMap::iterator reclaim_partial(AssemblyMap::iterator it);
  void gc_partials(Time now);

  net::Delivery& wire_;
  ProgressEngine& progress_;
  Env& env_;
  const int task_id_;
  const Config config_;
  /// Verify end-to-end payload CRCs (armed when the fabric injects
  /// corruption; off otherwise so the clean path does no checksum work).
  const bool checksums_;

  AssemblyMap assemblies_;
  std::map<std::pair<int, std::int64_t>, std::int64_t> rmw_cache_;
  /// Messages already NACKed with no forward progress since (suppresses
  /// NACK storms when a burst of one message's packets all overflow).
  std::set<std::pair<int, std::int64_t>> nacked_;
  std::size_t live_partials_ = 0;
  std::int64_t epoch_ = 0;
};

}  // namespace splap::lapi
