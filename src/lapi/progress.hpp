// The LAPI progress engine: everything that decides WHEN protocol work runs
// on a node, independent of what that work is.
//
// Owns the dispatcher timeline of Section 2.1 / 5.3.1:
//   - packet admission (on_delivery): interrupt mode pumps on arrival,
//     charged the interrupt cost only when the dispatcher was idle and its
//     post-drain polling window has expired; polling mode parks packets in a
//     backlog until the task re-enters the library;
//   - the pump loop, which serializes packet processing on the dispatcher's
//     busy_until_ timeline and hands each packet to the Sink (the protocol
//     demultiplexer above);
//   - library entry/exit bookkeeping (polling progress + the warm-call cost
//     model);
//   - deferred protocol effects (counter bumps, ack emission, assembly
//     completion) that are counted so term() can drain them, and guarded by
//     the context-lifetime token so teardown cancels them;
//   - the wait set that blocking calls (waitcntr/fence/term) park on.
//
// Invariant owned here: a deferred effect either runs before the owning
// context invalidates the alive token, or never — there is no window where
// an effect touches freed protocol state.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "base/cost_model.hpp"
#include "lapi/types.hpp"
#include "net/packet.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace splap::lapi {

class ProgressEngine {
 public:
  /// The protocol demultiplexer above the dispatcher: the pump hands each
  /// admitted packet here and charges the returned processing cost on the
  /// dispatcher timeline.
  class Sink {
   public:
    virtual Time process_packet(net::Packet& pkt) = 0;

   protected:
    ~Sink() = default;
  };

  ProgressEngine(sim::Engine& engine, const CostModel& cost, Sink& sink,
                 bool interrupt_mode)
      : engine_(engine), cost_(cost), sink_(sink),
        interrupt_mode_(interrupt_mode),
        ctr_pkts_rx_(engine.counters().handle("lapi.pkts_rx")),
        ctr_backlogged_(engine.counters().handle("lapi.backlogged")),
        ctr_interrupts_(engine.counters().handle("lapi.interrupts")) {}

  // --- packet admission / pump ---------------------------------------------
  void on_delivery(net::Packet&& pkt);
  void schedule_pump(bool charge_interrupt);
  bool progress_allowed() const { return interrupt_mode_ || in_library_ > 0; }

  bool interrupt_mode() const { return interrupt_mode_; }
  /// LAPI_Senv(kInterruptSet): arming interrupts releases any backlog parked
  /// while the task was polling-without-polls.
  void set_interrupt_mode(bool on);

  // --- library entry/exit (polling progress + warm-call model) -------------
  void enter_library();
  void exit_library();
  Time call_entry_cost() const;
  int in_library() const { return in_library_; }

  // --- deferred protocol effects -------------------------------------------
  /// Schedule a near-future protocol effect (counter bump, ack emission,
  /// assembly completion). Unlike raw engine events these are counted, and
  /// term() drains them before detaching — cancelling one could strand a
  /// peer (e.g. an unsent ack leaves its retransmit loop spinning).
  void defer(Time at, std::function<void()> fn);
  int pending_effects() const { return pending_effects_; }

  // --- waiters / counters --------------------------------------------------
  void notify() { waiters_.wake_all(engine_); }
  sim::WaitSet& waiters() { return waiters_; }
  void bump(Counter* c, std::int64_t by = 1);
  /// A completion that carries a failure: advances the counter so waiters
  /// unblock, and records the failure for waitcntr to surface.
  void bump_failed(Counter* c);
  /// A failure caused by a declared-dead peer: like bump_failed, but also
  /// marks the counter so waitcntr reports kPeerFailed instead of the
  /// generic kResourceExhausted.
  void bump_peer_failed(Counter* c);

  // --- dispatcher timeline (shared with the transport layers) --------------
  Time busy_until() const { return busy_until_; }
  void set_busy_until(Time t) { busy_until_ = t; }
  bool pipelined() const { return pipelined_; }

  // --- lifetime ------------------------------------------------------------
  /// Guard token for events that may outlive the owning context (timeouts,
  /// delayed bumps). The context invalidates it at term.
  std::weak_ptr<char> alive() const { return alive_; }
  void invalidate() { alive_.reset(); }

  sim::Engine& engine() const { return engine_; }
  const CostModel& cost() const { return cost_; }

 private:
  void pump();

  sim::Engine& engine_;
  const CostModel& cost_;
  Sink& sink_;
  bool interrupt_mode_;
  // Per-packet counters, resolved once (on_delivery runs for every packet).
  CounterSet::Handle ctr_pkts_rx_;
  CounterSet::Handle ctr_backlogged_;
  CounterSet::Handle ctr_interrupts_;

  std::deque<net::Packet> rx_q_;     // admitted, awaiting processing
  std::deque<net::Packet> backlog_;  // polling mode, task outside library
  bool pump_scheduled_ = false;
  bool pipelined_ = false;  // current packet arrived back-to-back
  Time busy_until_ = 0;
  Time linger_until_ = 0;  // post-drain polling window (interrupt absorption)
  int in_library_ = 0;
  Time last_lib_exit_ = kNoTime;
  int pending_effects_ = 0;  // deferred protocol effects not yet applied

  sim::WaitSet waiters_;
  std::shared_ptr<char> alive_ = std::make_shared<char>();
};

}  // namespace splap::lapi
