// The LAPI context: one per task, the whole of Table 1.
//
// Construction is LAPI_Init (registers the context with the node's adapter
// and starts the completion-handler service threads); term() / destruction
// is LAPI_Term. All communication calls are non-blocking: they return as
// soon as the message is queued at the network (the paper's "unordered
// pipelining"), and completion is signalled through user counters
// (Section 2.3). Blocking behaviour is built by the caller with waitcntr —
// exactly the simple extension the paper describes.
//
// The Context itself is a facade over the layered transport stack:
//
//   ProgressEngine (progress.hpp)  WHEN protocol work runs: interrupt/poll
//     |                            scheduling, the dispatcher pump, deferred
//     |                            effects, waiters, the lifetime token.
//   SendEngine     (reliable.hpp)  the origin side: send records, packetizing,
//     |                            retransmission (via ReliableChannel), acks
//     |                            received, failure completion.
//   AssemblyEngine (assembly.hpp)  the target side: reassembly, dedup, CRC
//     |                            verification, handler/completion delivery,
//     |                            Get/Rmw serving, ack emission.
//   net::Delivery  (net/)          the wire.
//
// What stays here: API validation and call-time semantics (Table 1), the
// handler table, counters/fences/collectives, the completion-thread pool,
// and the Universe address-exchange registry. The Context demultiplexes
// received packets to the origin or target side (ProgressEngine::Sink) and
// provides the upcall services the assembly layer needs (AssemblyEngine::Env).
//
// Progress rules (Section 2.1): in interrupt mode the dispatcher runs on
// packet arrival, charged the interrupt cost when it was idle (back-to-back
// packets are absorbed without new interrupts, Section 5.3.1). In polling
// mode packets make progress only while the task is inside a LAPI call;
// with no polling, "performance may substantially degrade or may even
// result in deadlock" — reproduced faithfully, see the polling tests.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "base/cost_model.hpp"
#include "base/status.hpp"
#include "base/strided.hpp"
#include "lapi/assembly.hpp"
#include "lapi/progress.hpp"
#include "lapi/protocol.hpp"
#include "lapi/reliable.hpp"
#include "lapi/svc_pool.hpp"
#include "lapi/types.hpp"
#include "net/machine.hpp"
#include "sim/sync.hpp"

namespace splap::lapi {

class Context : private ProgressEngine::Sink, private AssemblyEngine::Env {
 public:
  /// LAPI_Init. Must be constructed in the task's actor context.
  explicit Context(net::Node& node, Config config = {});
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// LAPI_Term: quiesces completion threads and detaches from the adapter.
  /// Idempotent; called by the destructor if the user did not.
  void term();

  int task_id() const { return node_.id(); }
  int num_tasks() const { return node_.machine().tasks(); }

  // --- environment ------------------------------------------------------
  std::int64_t qenv(Query q) const;  // LAPI_Qenv
  void senv(Setting s, std::int64_t v);  // LAPI_Senv

  /// Register an active-message header handler. SPMD programs must register
  /// handlers in the same order on every task so ids agree (the real LAPI
  /// ships raw function addresses, valid for identical executables).
  AmHandlerId register_handler(HeaderHandler handler);

  // --- data transfer (Section 2.2) ---------------------------------------
  /// LAPI_Put: one-sided copy of `src` into `tgt_addr` in task `target`'s
  /// address space. org_cntr: src reusable; tgt_cntr: data arrived (target
  /// side); cmpl_cntr: completion confirmed back at the origin.
  Status put(int target, std::span<const std::byte> src, std::byte* tgt_addr,
             Counter* tgt_cntr, Counter* org_cntr, Counter* cmpl_cntr);

  /// LAPI_Get: one-sided pull of `len` bytes from `tgt_addr` in task
  /// `target` into local `org_addr`. org_cntr: data arrived locally;
  /// tgt_cntr: data copied out of the target buffer. (No cmpl_cntr — see
  /// Figure 1.)
  Status get(int target, std::int64_t len, const std::byte* tgt_addr,
             std::byte* org_addr, Counter* tgt_cntr, Counter* org_cntr);

  /// LAPI_Putv / LAPI_Getv — the non-contiguous remote-memory-copy interface
  /// the paper proposes as future work (Section 6, item 1): one message
  /// moves a whole column-major strided region, "removing the overhead
  /// associated with multiple requests or the copy overhead in the AM-based
  /// implementations". `src` describes local memory; `dst` describes the
  /// region in `target`'s address space (its `base` is the remote address).
  /// Shapes (row_bytes, cols) must match. Counter semantics as put/get; the
  /// source is gathered at the call, so org_cntr fires at injection.
  Status putv(int target, const StridedRegion& src, const StridedRegion& dst,
              Counter* tgt_cntr, Counter* org_cntr, Counter* cmpl_cntr);
  /// Pull `src` (a region in `target`'s address space) into local `dst`.
  Status getv(int target, const StridedRegion& src, const StridedRegion& dst,
              Counter* tgt_cntr, Counter* org_cntr);

  /// LAPI_Amsend (Section 2.1, Figure 1): uhdr/udata shipped to `target`,
  /// where the registered header handler picks the landing buffer and an
  /// optional completion handler.
  Status amsend(int target, AmHandlerId handler, std::span<const std::byte> uhdr,
                std::span<const std::byte> udata, Counter* tgt_cntr,
                Counter* org_cntr, Counter* cmpl_cntr);

  // --- mutual exclusion (Section 2.4 / 3) ---------------------------------
  /// LAPI_Rmw: atomic read-modify-write of the 8-byte variable `tgt_var` in
  /// task `target`'s address space. in1 is the operand (comparand for CAS);
  /// in2 is the CAS swap value. `prev_out` (optional) receives the previous
  /// value when org_cntr fires.
  Status rmw(RmwOp op, int target, std::int64_t* tgt_var, std::int64_t in1,
             std::int64_t in2, std::int64_t* prev_out, Counter* org_cntr);

  /// Blocking convenience: rmw + waitcntr. Returns the previous value.
  std::int64_t rmw_sync(RmwOp op, int target, std::int64_t* tgt_var,
                        std::int64_t in1, std::int64_t in2 = 0);

  // --- counters (Section 2.3) ---------------------------------------------
  void setcntr(Counter& c, std::int64_t v);  // LAPI_Setcntr
  /// LAPI_Getcntr: non-blocking read; also drives progress in polling mode.
  std::int64_t getcntr(Counter& c);
  /// LAPI_Waitcntr: block until the counter reaches `val`, then decrement it
  /// by `val` (the paper's auto-decrement semantics). Drives progress.
  /// Returns kOk normally; kResourceExhausted when any of the completions
  /// consumed by this wait was a retry-exhaustion failure (the op's data is
  /// not guaranteed delivered — the surfaced failure path, never a hang).
  Status waitcntr(Counter& c, std::int64_t val);

  // --- ordering (Section 2.5) ---------------------------------------------
  /// LAPI_Fence: block until every data transfer this task originated has
  /// deposited its data at its target ("data copied out of the network to
  /// the remote user buffers" — completion handlers NOT included, 5.3.2).
  void fence();
  /// LAPI_Gfence: collective fence — fence + dissemination barrier built on
  /// LAPI active messages. Returns kOk normally; kPeerFailed when a barrier
  /// partner died mid-collective (the barrier terminates instead of hanging,
  /// but this task cannot claim global quiescence); kPeerSuspected when no
  /// partner died but at least one sat in the suspected (quarantined) state
  /// when its pulse was due — degraded progress that may yet heal.
  Status gfence();

  // --- address exchange ----------------------------------------------------
  /// LAPI_Address_init: collective all-gather of one address per task.
  /// `table` must have num_tasks() entries.
  void address_init(void* mine, std::span<void*> table);

  net::Node& node() const { return node_; }
  const CostModel& cost() const { return node_.cost(); }
  sim::Engine& engine() const { return node_.engine(); }

  /// Outstanding un-acked data messages (fence would block while > 0).
  int outstanding() const {
    return send_.outstanding_data() + send_.outstanding_gets();
  }

  // --- introspection (tests / chaos harness) ------------------------------
  /// Origin-side in-flight send records not yet reclaimed. Zero after a
  /// fence + completed DONE acks: the leak check of the chaos harness.
  std::size_t pending_sends() const { return send_.pending_sends(); }
  /// Current smoothed RTT estimate (0 until the first ack sample).
  Time srtt() const { return send_.srtt(); }
  /// Incomplete reassembly partials currently held at this target.
  std::size_t partials() const { return assembly_.live_partials(); }
  /// Flow-control credits currently available toward `peer` (the full
  /// window when credits are off or nothing is outstanding).
  std::int64_t credits_available(int peer) const {
    return send_.credits_available(peer);
  }
  /// Has this context declared `peer` dead (retry exhaustion, keepalive
  /// misses, or gossip) with no newer incarnation heard since?
  bool peer_failed(int peer) const { return send_.peer_failed(peer); }
  /// Is `peer` currently in the suspected (quarantined, not dead) state?
  bool peer_suspected(int peer) const { return send_.peer_suspected(peer); }
  /// Sends currently quarantined behind suspected peers.
  std::size_t suspect_queued() const { return send_.suspect_queued(); }
  /// This context's incarnation epoch (the restart count of its node at
  /// LAPI_Init, stamped into every packet it originates).
  std::int64_t epoch() const { return epoch_; }

 private:
  struct Universe;  // per-machine registry (address exchange bootstrap)

  /// ProgressEngine::Sink: demultiplex one received packet to the origin
  /// side (acks, RMW responses) or the target side (everything else).
  Time process_packet(net::Packet& pkt) override;

  // AssemblyEngine::Env: the services the target side calls back up for.
  AmReply run_handler(AmHandlerId id, const AmDelivery& d) override;
  void run_completion(const std::function<void(Context&, sim::Actor&)>& fn,
                      sim::Actor& svc_actor) override;
  void submit_completion(std::function<void(sim::Actor&)> fn) override;
  Status send_get_reply(int origin, std::shared_ptr<WireMeta> hdr,
                        std::shared_ptr<std::vector<std::byte>> data) override;
  void note_get_reply() override { send_.note_get_reply(); }

  /// Validate and inject (every data-transfer call lands here).
  Status send_message(PktKind kind, int target,
                      std::shared_ptr<WireMeta> hdr,
                      std::shared_ptr<std::vector<std::byte>> data,
                      Time extra_call_cost);

  // Shorthands into the progress engine for the blocking-call bodies.
  void enter_library() { progress_.enter_library(); }
  void exit_library() { progress_.exit_library(); }
  Time call_entry_cost() const { return progress_.call_entry_cost(); }
  void notify() { progress_.notify(); }

  Universe& universe();
  // Barrier-handler registration + Universe attach/detach (collectives.cpp).
  void init_collectives();
  void detach_universe();

  // --- crash-stop failure handling ---------------------------------------
  /// SendEngine's peer-failure hook: this context itself detected `peer`
  /// dead. Reclaims target-side state, delivers the registered error
  /// handler, and gossips the verdict along with its evidence class —
  /// `direct` for first-hand proof (retry exhaustion, fixed-miss
  /// keepalive), false for an accrual-only suspicion verdict.
  void on_peer_failed(int peer, bool direct);
  /// Death notice from a sibling context's detector (the group-services
  /// membership channel). A direct verdict latches immediately; an
  /// accrual-only verdict is only corroboration — it latches once distinct
  /// observers (reporters plus this task's own suspicion) reach
  /// Config::suspicion_quorum, so one partitioned observer cannot
  /// split-brain a healthy task.
  void note_peer_death(int peer, bool direct, int reporter);
  /// Fan a death verdict out to every attached context on the machine
  /// (collectives.cpp — rides the Universe registry).
  void broadcast_peer_death(int peer, bool direct);

  net::Node& node_;
  Config config_;
  bool terminated_ = false;
  /// Incarnation epoch of this context (node restart count at LAPI_Init)
  /// and the last-adopted incarnation of every peer. Packets stamped for a
  /// different pairing are rejected at process_packet (stale-epoch gate).
  std::int64_t epoch_ = 0;
  std::vector<std::int64_t> peer_epochs_;
  // Per-operation counters, resolved once at init (put/get run per message).
  CounterSet::Handle ctr_put_;
  CounterSet::Handle ctr_get_;

  std::vector<HeaderHandler> handlers_;
  std::unique_ptr<SvcPool> svc_;

  // The transport stack (construction order matters: progress_ first, the
  // two protocol sides on top of it).
  ProgressEngine progress_;
  SendEngine send_;
  AssemblyEngine assembly_;

  // Collective state.
  std::int64_t barrier_seq_ = 0;
  std::map<std::pair<std::int64_t, int>, int> barrier_got_;
  std::int64_t xchg_seq_ = 0;

  /// Accrual-only death gossip awaiting corroboration: peer -> the distinct
  /// tasks that reported it dead on suspicion alone. Cleared when the peer
  /// is heard from (the reports were describing a partition, not a death).
  std::map<int, std::set<int>> death_reports_;
};

}  // namespace splap::lapi
