#include "lapi/context.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>

#include "base/checksum.hpp"
#include "base/log.hpp"

// The poisoned-teardown path below leaks its service pool on purpose (see the
// comment in term()); tell LeakSanitizer so sanitized CI stays green.
#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer)
#include <sanitizer/lsan_interface.h>
#define SPLAP_LSAN_IGNORE(p) __lsan_ignore_object(p)
#else
#define SPLAP_LSAN_IGNORE(p) (static_cast<void>(p))
#endif

namespace splap::lapi {

namespace {

/// Payload of the internal dissemination-barrier pulse (handler id 0).
struct BarrierPulse {
  std::int64_t seq;
  int round;
};

constexpr std::int64_t kMaxDataSz = std::int64_t{1} << 30;

/// Wire sizes of the control descriptors beyond the 48-byte LAPI header.
constexpr std::int64_t kGetReqDescBytes = 32;
constexpr std::int64_t kRmwReqDescBytes = 24;
constexpr std::int64_t kRmwRespDescBytes = 8;
constexpr std::int64_t kAckDescBytes = 12;

}  // namespace

// ---------------------------------------------------------------------------
// Universe: per-machine context registry (the out-of-band bootstrap channel
// the PSSP job-start infrastructure provides on the real SP).
// ---------------------------------------------------------------------------

struct Context::Universe {
  net::Machine* machine = nullptr;
  std::vector<Context*> ctxs;
  int attached = 0;

  struct Slot {
    std::vector<void*> addrs;
    int count = 0;
    bool done = false;
  };
  std::vector<Slot> slots;

  static std::mutex& mu() {
    static std::mutex m;
    return m;
  }
  // splap-lint: allow(pointer-key): lookup/erase-only registry under mu()
  static std::map<net::Machine*, std::unique_ptr<Universe>>& all() {
    // splap-lint: allow(pointer-key): never iterated; key order unobservable
    static std::map<net::Machine*, std::unique_ptr<Universe>> m;
    return m;
  }

  static Universe& of(net::Machine& machine) {
    std::lock_guard<std::mutex> lock(mu());
    auto& u = all()[&machine];
    if (!u) {
      u = std::make_unique<Universe>();
      u->machine = &machine;
      u->ctxs.resize(static_cast<std::size_t>(machine.tasks()), nullptr);
    }
    return *u;
  }

  void attach(Context* c) {
    auto& slot = ctxs[static_cast<std::size_t>(c->task_id())];
    SPLAP_REQUIRE(slot == nullptr, "duplicate LAPI_Init on a task");
    slot = c;
    ++attached;
  }

  void detach(Context* c) {
    ctxs[static_cast<std::size_t>(c->task_id())] = nullptr;
    if (--attached == 0) {
      std::lock_guard<std::mutex> lock(mu());
      all().erase(machine);  // self-destructs; do not touch *this after
    }
  }
};

Context::Universe& Context::universe() { return Universe::of(node_.machine()); }

// ---------------------------------------------------------------------------
// Init / Term
// ---------------------------------------------------------------------------

Context::Context(net::Node& node, Config config)
    : node_(node),
      config_(config),
      interrupt_mode_(config.interrupt_mode),
      retry_rng_(config.jitter_seed ^
                 (static_cast<std::uint64_t>(node.id()) * 0x9e3779b9ULL)),
      checksums_(node.machine().fabric().corruption_enabled()) {
  SPLAP_REQUIRE(sim::Actor::current() != nullptr,
                "LAPI_Init must run in a task (actor) context");
  node_.adapter().register_client(
      net::Client::kLapi, [this](net::Packet&& p) { on_delivery(std::move(p)); });
  svc_ = std::make_unique<SvcPool>(
      engine(), "lapi" + std::to_string(task_id()), config.completion_threads);

  // Handler id 0 is reserved for the internal gfence barrier pulse.
  handlers_.push_back([](Context& ctx, const AmDelivery& d) -> AmReply {
    SPLAP_REQUIRE(d.uhdr.size() == sizeof(BarrierPulse),
                  "malformed barrier pulse");
    BarrierPulse p;
    std::memcpy(&p, d.uhdr.data(), sizeof p);
    ++ctx.barrier_got_[{p.seq, p.round}];
    ctx.notify();
    AmReply r;
    r.header_cost = nanoseconds(300);
    return r;
  });

  universe().attach(this);
}

Context::~Context() { term(); }

void Context::term() {
  if (terminated_) return;
  sim::Actor* a = sim::Actor::current();
  SPLAP_REQUIRE(a != nullptr, "LAPI_Term must run in a task context");
  if (a->poisoned()) {
    // Engine teardown is unwinding this actor: blocking is impossible, so
    // detach best-effort and let the engine reap the service threads. The
    // pool must outlive those threads (the engine poisons them after us),
    // so its ownership is intentionally released here — a bounded leak on
    // an already-failed run.
    SPLAP_LSAN_IGNORE(svc_.get());
    svc_.release();  // NOLINT(bugprone-unused-return-value)
    node_.adapter().unregister_client(net::Client::kLapi);
    universe().detach(this);
    terminated_ = true;
    alive_.reset();
    return;
  }
  // Quiesce: drain our own in-flight messages (e.g. the last gfence's
  // barrier pulses, which are sent after its fence) so tearing down this
  // context cannot strand a peer waiting on a message whose retransmission
  // we would otherwise cancel. If the fabric lost a message for good (peer
  // already gone), the retransmit layer gives up and we proceed.
  enter_library();
  while (outstanding_data_ > 0 || outstanding_gets_ > 0 ||
         pending_effects_ > 0) {
    bool gave_up = true;
    for (const auto& [id, rec] : sends_) {
      if (rec.retries < config_.max_retries) gave_up = false;
    }
    if (gave_up && outstanding_gets_ == 0 && pending_effects_ == 0) break;
    waiters_.add(*a);
    a->suspend("lapi-term-quiesce");
  }
  exit_library();
  svc_->stop(*a);
  node_.adapter().unregister_client(net::Client::kLapi);
  universe().detach(this);
  terminated_ = true;
  alive_.reset();  // cancels pending timeouts / deferred bumps
}

// ---------------------------------------------------------------------------
// Environment
// ---------------------------------------------------------------------------

std::int64_t Context::qenv(Query q) const {
  const CostModel& cm = cost();
  switch (q) {
    case Query::kTaskId: return task_id();
    case Query::kNumTasks: return num_tasks();
    case Query::kMaxUhdrSz: return cm.lapi_payload();
    case Query::kMaxDataSz: return kMaxDataSz;
    case Query::kPktPayload: return cm.lapi_payload();
    case Query::kInterruptSet: return interrupt_mode_ ? 1 : 0;
    case Query::kCmplThreads: return config_.completion_threads;
  }
  SPLAP_REQUIRE(false, "unknown LAPI_Qenv key");
  return -1;
}

void Context::senv(Setting s, std::int64_t v) {
  switch (s) {
    case Setting::kInterruptSet: {
      const bool was = interrupt_mode_;
      interrupt_mode_ = (v != 0);
      if (!was && interrupt_mode_ && !backlog_.empty()) {
        // Packets parked while polling-without-polls: the first interrupt
        // after arming delivers them.
        while (!backlog_.empty()) {
          rx_q_.push_back(std::move(backlog_.front()));
          backlog_.pop_front();
        }
        schedule_pump(/*charge_interrupt=*/true);
      }
      return;
    }
  }
  SPLAP_REQUIRE(false, "unknown LAPI_Senv key");
}

AmHandlerId Context::register_handler(HeaderHandler handler) {
  SPLAP_REQUIRE(!terminated_, "register_handler after LAPI_Term");
  SPLAP_REQUIRE(handler != nullptr, "null header handler");
  handlers_.push_back(std::move(handler));
  return static_cast<AmHandlerId>(handlers_.size() - 1);
}

// ---------------------------------------------------------------------------
// Library entry/exit: polling progress + warm-call model
// ---------------------------------------------------------------------------

void Context::enter_library() {
  if (sim::Actor::current() == nullptr) return;  // handler context
  ++in_library_;
  if (!interrupt_mode_ && !backlog_.empty()) {
    while (!backlog_.empty()) {
      rx_q_.push_back(std::move(backlog_.front()));
      backlog_.pop_front();
    }
    schedule_pump(/*charge_interrupt=*/false);
  }
}

void Context::exit_library() {
  if (sim::Actor::current() == nullptr) return;
  --in_library_;
  last_lib_exit_ = engine().now();
}

Time Context::call_entry_cost() const {
  const CostModel& cm = cost();
  return engine().now() == last_lib_exit_ ? cm.lapi_call_warm : cm.lapi_call;
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

void Context::defer(Time at, std::function<void()> fn) {
  ++pending_effects_;
  engine().schedule_at(
      at, [this, w = std::weak_ptr<char>(alive_), fn = std::move(fn)] {
        if (w.expired()) return;
        --pending_effects_;
        fn();
        notify();
      });
}

void Context::bump(Counter* c, std::int64_t by) {
  if (c == nullptr) return;
  c->value_ += by;
  notify();
}

void Context::bump_failed(Counter* c) {
  if (c == nullptr) return;
  c->value_ += 1;
  c->failed_ += 1;
  notify();
}

void Context::setcntr(Counter& c, std::int64_t v) {
  c.value_ = v;
  notify();
}

std::int64_t Context::getcntr(Counter& c) {
  enter_library();
  if (sim::Actor* a = sim::Actor::current()) a->compute(cost().lapi_call_warm);
  const std::int64_t v = c.value_;
  exit_library();
  return v;
}

Status Context::waitcntr(Counter& c, std::int64_t val) {
  sim::Actor* a = sim::Actor::current();
  SPLAP_REQUIRE(a != nullptr, "LAPI_Waitcntr must run in a task context");
  SPLAP_REQUIRE(val >= 0, "negative wait value");
  enter_library();
  a->compute(call_entry_cost());
  while (c.value_ < val) {
    waiters_.add(*a);
    a->suspend("lapi-waitcntr");
  }
  c.value_ -= val;  // Waitcntr auto-decrements (Section 2.3)
  // Failure completions (retry exhaustion) unblocked this wait like any
  // other bump; surface them instead of pretending the data arrived. Each
  // wait consumes at most `val` recorded failures, mirroring the decrement.
  Status st = Status::kOk;
  if (c.failed_ > 0) {
    st = Status::kResourceExhausted;
    c.failed_ -= std::min(c.failed_, val);
  }
  exit_library();
  return st;
}

// ---------------------------------------------------------------------------
// Ordering
// ---------------------------------------------------------------------------

void Context::fence() {
  sim::Actor* a = sim::Actor::current();
  SPLAP_REQUIRE(a != nullptr, "LAPI_Fence must run in a task context");
  enter_library();
  a->compute(call_entry_cost());
  while (outstanding_data_ > 0 || outstanding_gets_ > 0) {
    waiters_.add(*a);
    a->suspend("lapi-fence");
  }
  exit_library();
}

void Context::gfence() {
  sim::Actor* a = sim::Actor::current();
  SPLAP_REQUIRE(a != nullptr, "LAPI_Gfence must run in a task context");
  fence();
  const int n = num_tasks();
  const std::int64_t seq = barrier_seq_++;
  if (n == 1) return;
  int round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    const int to = (task_id() + dist) % n;
    BarrierPulse p{seq, round};
    std::span<const std::byte> uhdr(reinterpret_cast<const std::byte*>(&p),
                                    sizeof p);
    const Status st = amsend(to, 0, uhdr, {}, nullptr, nullptr, nullptr);
    SPLAP_REQUIRE(st == Status::kOk, "barrier pulse send failed");
    enter_library();
    const auto key = std::pair<std::int64_t, int>{seq, round};
    while (barrier_got_[key] < 1) {
      waiters_.add(*a);
      a->suspend("lapi-gfence");
    }
    exit_library();
  }
  // GC this generation's pulses.
  barrier_got_.erase(barrier_got_.lower_bound({seq, 0}),
                     barrier_got_.upper_bound({seq, round}));
}

void Context::address_init(void* mine, std::span<void*> table) {
  sim::Actor* a = sim::Actor::current();
  SPLAP_REQUIRE(a != nullptr, "LAPI_Address_init must run in a task context");
  SPLAP_REQUIRE(static_cast<int>(table.size()) == num_tasks(),
                "address table size must equal the task count");
  enter_library();
  a->compute(call_entry_cost());
  Universe& u = universe();
  const auto k = static_cast<std::size_t>(xchg_seq_++);
  if (u.slots.size() <= k) u.slots.resize(k + 1);
  auto& slot = u.slots[k];
  if (slot.addrs.empty()) slot.addrs.resize(static_cast<std::size_t>(num_tasks()));
  slot.addrs[static_cast<std::size_t>(task_id())] = mine;
  if (++slot.count == num_tasks()) {
    slot.done = true;
    for (Context* c : u.ctxs) {
      if (c != nullptr) c->notify();
    }
  } else {
    while (!slot.done) {
      waiters_.add(*a);
      a->suspend("lapi-address-init");
    }
  }
  std::copy(slot.addrs.begin(), slot.addrs.end(), table.begin());
  exit_library();
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

Status Context::send_message(PktKind kind, int target,
                             std::shared_ptr<WireMeta> hdr,
                             std::shared_ptr<std::vector<std::byte>> data,
                             Time extra_call_cost) {
  if (terminated_) return Status::kBadHandle;
  if (target < 0 || target >= num_tasks()) return Status::kBadParameter;
  const CostModel& cm = cost();
  hdr->kind = kind;
  hdr->msg_id = msg_seq_++;
  const std::int64_t len =
      data ? static_cast<std::int64_t>(data->size()) : 0;
  const bool small = len <= cm.lapi_bcopy_limit;
  const Time copy_in_call = small ? cm.copy_time(len) : 0;

  Time inject_at;
  if (sim::Actor* a = sim::Actor::current()) {
    enter_library();
    a->compute(call_entry_cost() + extra_call_cost + cm.lapi_pkt_tx +
               copy_in_call);
    inject_at = engine().now();
    exit_library();
  } else {
    // Handler/dispatcher context: the send is part of the dispatcher's
    // current work and queues behind it.
    inject_at = std::max(engine().now(), busy_until_) + cm.lapi_pkt_tx +
                copy_in_call;
    busy_until_ = inject_at;
  }

  SendRecord rec;
  rec.target = target;
  rec.kind = kind;
  rec.hdr_meta = hdr;
  rec.data = data;
  rec.needs_done = (kind == PktKind::kPutHdr || kind == PktKind::kAmHdr) &&
                   hdr->cmpl_cntr != nullptr;
  rec.sent_at = inject_at;
  const std::int64_t id = hdr->msg_id;
  sends_.emplace(id, std::move(rec));
  ++outstanding_data_;

  // Origin counter: user buffer reusable. Small messages were copied into
  // the retransmit buffer during the call; large ones complete the copy into
  // the adapter DMA region asynchronously (Section 5.3.1 / Section 6).
  // For a get reply this "origin counter" is the Get's tgt_cntr: it fires
  // at the serving side once the data has been copied out of the target
  // buffer (Section 2.3's completion notion for Get).
  //
  // Small messages were bcopied into the retransmit buffer during the call,
  // so the user buffer is reusable immediately. Large messages go zero-copy
  // from the pinned user buffer: it is only reusable once the data ack
  // returns (handled in the kAck path via org_pending).
  if ((kind == PktKind::kPutHdr || kind == PktKind::kAmHdr) &&
      hdr->org_cntr != nullptr) {
    // Strided sends gathered their source during the call, so the user
    // buffer is free at injection regardless of size.
    if (small || hdr->strided) {
      defer(inject_at, [this, c = hdr->org_cntr] { bump(c); });
    } else {
      sends_.at(id).org_pending = true;
    }
  }

  if (inject_at <= engine().now()) {
    transmit_packets(sends_.at(id));
  } else {
    defer(inject_at, [this, id] {
      auto it = sends_.find(id);
      if (it == sends_.end()) return;
      transmit_packets(it->second);
    });
  }
  // Scale the first timeout with the expected wire time AND the injection
  // link's current backlog: a burst of pipelined messages (e.g. 512 GA
  // column transfers) queues for many milliseconds before the last one even
  // departs, and none of that time means loss.
  const Time backlog = std::max<Time>(
      0, node_.machine().fabric().link_free(task_id()) - engine().now());
  arm_timeout(id, initial_rto() + 2 * backlog +
                      2 * transfer_time(len, cm.wire_mb_s));
  return Status::kOk;
}

void Context::transmit_packets(const SendRecord& rec) {
  const CostModel& cm = cost();
  const WireMeta& hdr = *rec.hdr_meta;
  const std::int64_t len =
      rec.data ? static_cast<std::int64_t>(rec.data->size()) : 0;

  net::Packet first = node_.machine().fabric().make_packet();
  first.src = task_id();
  first.dst = rec.target;
  first.client = net::Client::kLapi;
  first.meta = rec.hdr_meta;
  first.header_bytes = cm.lapi_header_bytes;
  switch (rec.kind) {
    case PktKind::kGetReq: first.header_bytes += kGetReqDescBytes; break;
    case PktKind::kRmwReq: first.header_bytes += kRmwReqDescBytes; break;
    case PktKind::kAmHdr:
      first.header_bytes += static_cast<std::int64_t>(hdr.uhdr.size());
      break;
    default: break;
  }
  const std::int64_t cap0 =
      std::max<std::int64_t>(0, cm.packet_bytes - first.header_bytes);
  const std::int64_t chunk0 = std::min(len, cap0);
  if (chunk0 > 0) {
    first.data.assign(rec.data->begin(), rec.data->begin() + chunk0);
    // End-to-end checksum, armed only when the fabric injects corruption.
    // No virtual-time charge: models the adapter's hardware CRC engine.
    if (checksums_) {
      rec.hdr_meta->data_crc = crc32_nz(rec.data->data(),
                                        static_cast<std::size_t>(chunk0));
    }
  }
  node_.machine().fabric().transmit(std::move(first));

  std::int64_t offset = chunk0;
  while (offset < len) {
    const std::int64_t chunk = std::min(len - offset, cm.lapi_payload());
    net::Packet p = node_.machine().fabric().make_packet();
    p.src = task_id();
    p.dst = rec.target;
    p.client = net::Client::kLapi;
    p.header_bytes = cm.lapi_header_bytes;
    auto m = std::make_shared<WireMeta>();
    m->kind = PktKind::kData;
    m->msg_id = hdr.msg_id;
    m->offset = offset;
    if (checksums_) {
      m->data_crc = crc32_nz(rec.data->data() + offset,
                             static_cast<std::size_t>(chunk));
    }
    p.meta = std::move(m);
    p.data.assign(rec.data->begin() + offset,
                  rec.data->begin() + offset + chunk);
    node_.machine().fabric().transmit(std::move(p));
    offset += chunk;
  }
}

void Context::transmit_probe(const SendRecord& rec) {
  const CostModel& cm = cost();
  net::Packet p = node_.machine().fabric().make_packet();
  p.src = task_id();
  p.dst = rec.target;
  p.client = net::Client::kLapi;
  p.meta = rec.hdr_meta;
  p.header_bytes = cm.lapi_header_bytes;
  if (rec.kind == PktKind::kAmHdr) {
    p.header_bytes += static_cast<std::int64_t>(rec.hdr_meta->uhdr.size());
  }
  node_.machine().fabric().transmit(std::move(p));
}

void Context::arm_timeout(std::int64_t msg_id, Time delay) {
  auto it = sends_.find(msg_id);
  if (it == sends_.end()) return;
  const std::uint64_t gen = ++it->second.timeout_gen;
  engine().schedule_after(
      delay, [this, w = std::weak_ptr<char>(alive_), msg_id, gen, delay] {
        if (w.expired()) return;
        auto jt = sends_.find(msg_id);
        if (jt == sends_.end()) {
          // Record reclaimed (acked or failed) before this timer fired.
          engine().counters().bump("lapi.stale_timeouts");
          return;
        }
        SendRecord& rec = jt->second;
        if (gen != rec.timeout_gen) {
          // A newer timer owns this record; this one was invalidated by an
          // ack-triggered (or later) re-arm and must never retransmit.
          engine().counters().bump("lapi.stale_timeouts");
          return;
        }
        if (rec.data_acked && (!rec.needs_done || rec.done_acked)) return;
        if (rec.retries >= config_.max_retries) {
          engine().counters().bump("lapi.retransmit_giveup");
          SPLAP_WARN(engine().now(),
                     "lapi task %d: giving up on msg %lld to %d after %d retries",
                     task_id(), static_cast<long long>(msg_id), rec.target,
                     rec.retries);
          fail_send(msg_id);
          return;
        }
        ++rec.retries;
        engine().counters().bump("lapi.retransmits");
        SPLAP_DEBUG(engine().now(),
                    "lapi task %d: retransmit msg %lld kind %d to %d (retry %d)",
                    task_id(), static_cast<long long>(msg_id),
                    static_cast<int>(rec.kind), rec.target, rec.retries);
        if (!rec.data_acked) {
          transmit_packets(rec);
        } else {
          // Data acked but the DONE ack was lost: the payload is gone, so
          // probe with a bare duplicate header — the target sees a completed
          // assembly and re-acks with the done flag.
          transmit_probe(rec);
        }
        // Exponential backoff; the adaptive policy caps the doubling at
        // rto_max and adds deterministic jitter so tasks whose losses were
        // synchronized (e.g. a route going down) retry unsynchronized.
        Time next = delay * 2;
        if (config_.adaptive_timeout) {
          next = std::min(next, config_.rto_max);
          const auto spread =
              static_cast<std::uint64_t>(next * config_.backoff_jitter);
          if (spread > 0) {
            next += static_cast<Time>(retry_rng_.next_below(spread));
          }
        }
        arm_timeout(msg_id, next);
      });
}

Time Context::initial_rto() const {
  if (!config_.adaptive_timeout || !have_rtt_) {
    return config_.retransmit_timeout;
  }
  return std::clamp(srtt_ + 4 * rttvar_, config_.rto_min, config_.rto_max);
}

void Context::sample_rtt(Time sample) {
  if (sample < 0) return;
  if (!have_rtt_) {
    have_rtt_ = true;
    srtt_ = sample;
    rttvar_ = sample / 2;
    return;
  }
  // Jacobson '88 with the classic 1/8 and 1/4 gains, in integer ns.
  const Time err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
  rttvar_ = (3 * rttvar_ + err) / 4;
  srtt_ = (7 * srtt_ + sample) / 8;
}

void Context::fail_send(std::int64_t msg_id) {
  auto it = sends_.find(msg_id);
  if (it == sends_.end()) return;
  SendRecord& rec = it->second;
  const WireMeta& hdr = *rec.hdr_meta;
  if (!rec.data_acked) --outstanding_data_;
  if (rec.kind == PktKind::kGetReq) --outstanding_gets_;
  // Complete every counter the operation still owes, marked failed: waiters
  // unblock (never a hang) and waitcntr reports kResourceExhausted.
  if (rec.org_pending ||
      ((rec.kind == PktKind::kGetReq || rec.kind == PktKind::kRmwReq) &&
       hdr.org_cntr != nullptr && !rec.data_acked)) {
    bump_failed(hdr.org_cntr);
  }
  if (rec.needs_done && !rec.done_acked) bump_failed(hdr.cmpl_cntr);
  engine().counters().bump("lapi.failed_ops");
  sends_.erase(it);
  notify();  // fence/term waiters re-evaluate with the record reclaimed
}

void Context::send_ack(int target, std::int64_t msg_id, bool data, bool done,
                       Counter* org_cntr, Counter* cmpl_cntr, Time when) {
  when += cost().lapi_ack_delay;  // delayed-ack coalescing timer
  auto m = std::make_shared<WireMeta>();
  m->kind = PktKind::kAck;
  m->acked_msg = msg_id;
  m->ack_data = data;
  m->ack_done = done;
  m->org_cntr = org_cntr;
  m->cmpl_cntr = cmpl_cntr;
  net::Packet p = node_.machine().fabric().make_packet();
  p.src = task_id();
  p.dst = target;
  p.client = net::Client::kLapi;
  p.header_bytes = cost().lapi_header_bytes + kAckDescBytes;
  p.meta = std::move(m);
  SPLAP_DEBUG(engine().now(), "lapi task %d: ack msg %lld to %d data=%d done=%d at %.3f",
              task_id(), static_cast<long long>(msg_id), target, data, done,
              to_us(when));
  if (when <= engine().now()) {
    node_.machine().fabric().transmit(std::move(p));
  } else {
    defer(when, [this, sp = std::make_shared<net::Packet>(std::move(p))] {
      node_.machine().fabric().transmit(std::move(*sp));
    });
  }
}

// ---------------------------------------------------------------------------
// Public operations
// ---------------------------------------------------------------------------

Status Context::put(int target, std::span<const std::byte> src,
                    std::byte* tgt_addr, Counter* tgt_cntr, Counter* org_cntr,
                    Counter* cmpl_cntr) {
  if (!src.empty() && (src.data() == nullptr || tgt_addr == nullptr)) {
    return Status::kBadParameter;
  }
  if (static_cast<std::int64_t>(src.size()) > kMaxDataSz) {
    return Status::kBadParameter;
  }
  engine().counters().bump("lapi.put");
  auto hdr = std::make_shared<WireMeta>();
  hdr->tgt_addr = tgt_addr;
  hdr->total_len = static_cast<std::int64_t>(src.size());
  hdr->tgt_cntr = tgt_cntr;
  hdr->org_cntr = org_cntr;
  hdr->cmpl_cntr = cmpl_cntr;
  auto data = std::make_shared<std::vector<std::byte>>(src.begin(), src.end());
  return send_message(PktKind::kPutHdr, target, std::move(hdr),
                      std::move(data), 0);
}

Status Context::get(int target, std::int64_t len, const std::byte* tgt_addr,
                    std::byte* org_addr, Counter* tgt_cntr, Counter* org_cntr) {
  if (len < 0 || len > kMaxDataSz) return Status::kBadParameter;
  if (len > 0 && (tgt_addr == nullptr || org_addr == nullptr)) {
    return Status::kBadParameter;
  }
  engine().counters().bump("lapi.get");
  auto hdr = std::make_shared<WireMeta>();
  hdr->src_addr = tgt_addr;
  hdr->dst_addr = org_addr;
  hdr->total_len = len;
  hdr->tgt_cntr = tgt_cntr;
  hdr->org_cntr = org_cntr;
  ++outstanding_gets_;
  const Status st = send_message(PktKind::kGetReq, target, std::move(hdr),
                                 nullptr, cost().lapi_get_extra);
  if (st != Status::kOk) --outstanding_gets_;
  return st;
}

Status Context::putv(int target, const StridedRegion& src,
                     const StridedRegion& dst, Counter* tgt_cntr,
                     Counter* org_cntr, Counter* cmpl_cntr) {
  if (src.row_bytes != dst.row_bytes || src.cols != dst.cols) {
    return Status::kBadParameter;
  }
  const std::int64_t len = src.total_bytes();
  if (len < 0 || len > kMaxDataSz) return Status::kBadParameter;
  if (len > 0 && (src.base == nullptr || dst.base == nullptr)) {
    return Status::kBadParameter;
  }
  engine().counters().bump("lapi.putv");
  auto hdr = std::make_shared<WireMeta>();
  hdr->tgt_addr = dst.base;
  hdr->total_len = len;
  hdr->strided = true;
  hdr->s_row_bytes = dst.row_bytes;
  hdr->s_cols = dst.cols;
  hdr->s_ld = dst.ld_bytes;
  hdr->tgt_cntr = tgt_cntr;
  hdr->org_cntr = org_cntr;
  hdr->cmpl_cntr = cmpl_cntr;
  // Gather the source into the message (charged as call-time copy work):
  // the user buffer is reusable at injection.
  auto data = std::make_shared<std::vector<std::byte>>(
      static_cast<std::size_t>(len));
  copy_strided_to_contig(src, data->data());
  // Small messages are charged their bcopy inside send_message already.
  const Time gather_cost =
      len > cost().lapi_bcopy_limit ? cost().copy_time(len) : 0;
  return send_message(PktKind::kPutHdr, target, std::move(hdr),
                      std::move(data), gather_cost);
}

Status Context::getv(int target, const StridedRegion& src,
                     const StridedRegion& dst, Counter* tgt_cntr,
                     Counter* org_cntr) {
  if (src.row_bytes != dst.row_bytes || src.cols != dst.cols) {
    return Status::kBadParameter;
  }
  const std::int64_t len = src.total_bytes();
  if (len < 0 || len > kMaxDataSz) return Status::kBadParameter;
  if (len > 0 && (src.base == nullptr || dst.base == nullptr)) {
    return Status::kBadParameter;
  }
  engine().counters().bump("lapi.getv");
  auto hdr = std::make_shared<WireMeta>();
  hdr->src_addr = src.base;
  hdr->dst_addr = dst.base;
  hdr->total_len = len;
  hdr->strided = true;
  hdr->g_row_bytes = src.row_bytes;
  hdr->g_cols = src.cols;
  hdr->g_ld = src.ld_bytes;
  hdr->s_row_bytes = dst.row_bytes;
  hdr->s_cols = dst.cols;
  hdr->s_ld = dst.ld_bytes;
  hdr->tgt_cntr = tgt_cntr;
  hdr->org_cntr = org_cntr;
  ++outstanding_gets_;
  const Status st = send_message(PktKind::kGetReq, target, std::move(hdr),
                                 nullptr, cost().lapi_get_extra);
  if (st != Status::kOk) --outstanding_gets_;
  return st;
}

Status Context::amsend(int target, AmHandlerId handler,
                       std::span<const std::byte> uhdr,
                       std::span<const std::byte> udata, Counter* tgt_cntr,
                       Counter* org_cntr, Counter* cmpl_cntr) {
  if (handler < 0 || handler >= static_cast<AmHandlerId>(handlers_.size())) {
    return Status::kBadParameter;
  }
  if (static_cast<std::int64_t>(uhdr.size()) > qenv(Query::kMaxUhdrSz)) {
    return Status::kBadParameter;
  }
  if (static_cast<std::int64_t>(udata.size()) > kMaxDataSz) {
    return Status::kBadParameter;
  }
  engine().counters().bump("lapi.amsend");
  auto hdr = std::make_shared<WireMeta>();
  hdr->handler_id = handler;
  hdr->uhdr.assign(uhdr.begin(), uhdr.end());
  hdr->total_len = static_cast<std::int64_t>(udata.size());
  hdr->tgt_cntr = tgt_cntr;
  hdr->org_cntr = org_cntr;
  hdr->cmpl_cntr = cmpl_cntr;
  auto data =
      std::make_shared<std::vector<std::byte>>(udata.begin(), udata.end());
  return send_message(PktKind::kAmHdr, target, std::move(hdr), std::move(data),
                      0);
}

Status Context::rmw(RmwOp op, int target, std::int64_t* tgt_var,
                    std::int64_t in1, std::int64_t in2, std::int64_t* prev_out,
                    Counter* org_cntr) {
  if (tgt_var == nullptr) return Status::kBadParameter;
  engine().counters().bump("lapi.rmw");
  auto hdr = std::make_shared<WireMeta>();
  hdr->rmw_op = op;
  hdr->rmw_var = tgt_var;
  hdr->rmw_in1 = in1;
  hdr->rmw_in2 = in2;
  hdr->rmw_prev_out = prev_out;
  hdr->org_cntr = org_cntr;
  return send_message(PktKind::kRmwReq, target, std::move(hdr), nullptr, 0);
}

std::int64_t Context::rmw_sync(RmwOp op, int target, std::int64_t* tgt_var,
                               std::int64_t in1, std::int64_t in2) {
  Counter done;
  std::int64_t prev = 0;
  const Status st = rmw(op, target, tgt_var, in1, in2, &prev, &done);
  SPLAP_REQUIRE(st == Status::kOk, "rmw_sync: bad parameters");
  waitcntr(done, 1);
  return prev;
}

// ---------------------------------------------------------------------------
// Receive path: dispatcher
// ---------------------------------------------------------------------------

void Context::on_delivery(net::Packet&& pkt) {
  engine().counters().bump("lapi.pkts_rx");
  if (!progress_allowed()) {
    // Polling mode, task outside the library: no progress (Section 2.1).
    backlog_.push_back(std::move(pkt));
    engine().counters().bump("lapi.backlogged");
    return;
  }
  rx_q_.push_back(std::move(pkt));
  // A task blocked inside a LAPI call polls the adapter even in interrupt
  // mode; the interrupt is only taken when the CPU is off running user code.
  schedule_pump(/*charge_interrupt=*/interrupt_mode_ && in_library_ == 0);
}

void Context::schedule_pump(bool charge_interrupt) {
  if (pump_scheduled_) return;
  const Time now = engine().now();
  Time start = std::max(now, busy_until_);
  if (charge_interrupt && busy_until_ <= now && now >= linger_until_) {
    // Dispatcher was idle AND its post-drain polling window has expired: a
    // fresh interrupt is taken. Packets landing while it is busy or still
    // lingering are absorbed without one (Section 5.3.1).
    start += cost().interrupt_cost;
    engine().counters().bump("lapi.interrupts");
  }
  pump_scheduled_ = true;
  defer(start, [this] {
    pump_scheduled_ = false;
    pump();
  });
}

void Context::pump() {
  if (rx_q_.empty()) return;
  if (engine().now() < busy_until_) {
    schedule_pump(false);
    return;
  }
  net::Packet pkt = std::move(rx_q_.front());
  rx_q_.pop_front();
  // A packet handled while the dispatcher is already hot (back-to-back with
  // earlier traffic) skips the full demultiplex entry (Section 5.3.1).
  pipelined_ = engine().now() <= linger_until_;
  const Time cost_of_pkt = process(pkt);
  busy_until_ = engine().now() + cost_of_pkt;
  linger_until_ = busy_until_ + cost().dispatch_linger;
  if (!rx_q_.empty()) schedule_pump(false);
}

Time Context::process(net::Packet& pkt) {
  const CostModel& cm = cost();
  const WireMeta& m = pkt.meta_as<WireMeta>();
  const Time now = engine().now();

  // End-to-end integrity check (armed with corruption injection): a payload
  // whose CRC mismatches is discarded here, exactly as if the fabric had
  // dropped it — the origin's retransmission recovers it, and corrupted
  // bytes never reach user buffers or the assembly dedup state.
  if (checksums_ && m.data_crc != 0 && !pkt.data.empty() &&
      crc32_nz(pkt.data.data(), pkt.data.size()) != m.data_crc) {
    engine().counters().bump("lapi.corrupt_drops");
    SPLAP_DEBUG(now, "lapi task %d: CRC mismatch on msg %lld from %d, dropped",
                task_id(), static_cast<long long>(m.msg_id), pkt.src);
    return cm.lapi_pkt_rx;
  }

  // Copies incoming fragment bytes into the assembly buffer; returns the
  // copy charge. Duplicate fragments (retransmits) are ignored.
  auto ingest = [&](Assembly& as, std::int64_t offset,
                    std::span<const std::byte> bytes) -> Time {
    const auto len = static_cast<std::int64_t>(bytes.size());
    if (len == 0) return 0;
    if (as.seen.count(offset) != 0) return 0;
    as.seen[offset] = len;
    SPLAP_REQUIRE(as.buffer != nullptr, "assembly without a buffer");
    SPLAP_REQUIRE(offset + len <= as.total, "fragment beyond message length");
    if (as.hdr != nullptr && as.hdr->strided &&
        as.kind == PktKind::kPutHdr) {
      // Putv: the packed wire stream scatters straight into the strided
      // destination region (the future-work zero-intermediate-copy path).
      const WireMeta& h = *as.hdr;
      std::int64_t off = offset;
      const std::byte* s = bytes.data();
      std::int64_t left = len;
      while (left > 0) {
        const std::int64_t col = off / h.s_row_bytes;
        const std::int64_t in_col = off % h.s_row_bytes;
        const std::int64_t chunk = std::min(left, h.s_row_bytes - in_col);
        std::memcpy(as.buffer + col * h.s_ld + in_col, s,
                    static_cast<std::size_t>(chunk));
        off += chunk;
        s += chunk;
        left -= chunk;
      }
    } else {
      std::memcpy(as.buffer + offset, bytes.data(),
                  static_cast<std::size_t>(len));
    }
    as.received += len;
    return cm.copy_time(len);
  };

  switch (m.kind) {
    case PktKind::kPutHdr:
    case PktKind::kAmHdr: {
      const auto key = std::pair<int, std::int64_t>{pkt.src, m.msg_id};
      Assembly& as = assemblies_[key];
      if (as.completed) {
        // Retransmitted header of a finished message: re-ack, do not
        // re-deliver (the user may already have reused the buffer).
        const bool done_ok = !as.completion || as.completion_ran;
        send_ack(pkt.src, m.msg_id, true,
                 done_ok && as.hdr->cmpl_cntr != nullptr, as.hdr->org_cntr,
                 as.hdr->cmpl_cntr, now + cm.lapi_ack);
        return cm.lapi_ack;
      }
      if (as.has_header) return cm.lapi_pkt_rx;  // duplicate, still assembling
      as.has_header = true;
      as.kind = m.kind;
      as.total = m.total_len;
      as.hdr = std::static_pointer_cast<const WireMeta>(pkt.meta);
      Time c = pipelined_ ? cm.lapi_dispatch_pipelined : cm.lapi_dispatch;
      if (m.kind == PktKind::kAmHdr) {
        SPLAP_REQUIRE(m.handler_id >= 0 &&
                          m.handler_id < static_cast<AmHandlerId>(handlers_.size()),
                      "active message names an unregistered handler");
        // The header handler executes after the demultiplex work; anything
        // it sends queues behind that charge on the dispatcher timeline.
        busy_until_ = std::max(busy_until_, now + c);
        AmDelivery d{pkt.src, std::span<const std::byte>(m.uhdr), m.total_len};
        AmReply r = handlers_[static_cast<std::size_t>(m.handler_id)](*this, d);
        SPLAP_REQUIRE(r.buffer != nullptr || m.total_len == 0,
                      "header handler returned no buffer for a data message");
        as.buffer = r.buffer;
        as.completion = std::move(r.completion);
        c += r.header_cost + cm.lapi_deliver;
      } else {
        as.buffer = m.tgt_addr;
        c += cm.lapi_deliver;
      }
      c += ingest(as, 0, pkt.data);
      for (auto& staged : as.staged) {
        const WireMeta& sm = staged.meta_as<WireMeta>();
        c += ingest(as, sm.offset, staged.data);
      }
      as.staged.clear();
      if (as.received == as.total) {
        as.completed = true;
        defer(now + c, [this, key] { finish_assembly(key.first, key.second); });
      }
      return c;
    }

    case PktKind::kData: {
      const auto key = std::pair<int, std::int64_t>{pkt.src, m.msg_id};
      Assembly& as = assemblies_[key];
      if (as.completed) {
        const bool done_ok = !as.completion || as.completion_ran;
        send_ack(pkt.src, m.msg_id, true,
                 done_ok && as.hdr && as.hdr->cmpl_cntr != nullptr,
                 as.hdr ? as.hdr->org_cntr : nullptr,
                 as.hdr ? as.hdr->cmpl_cntr : nullptr, now + cm.lapi_ack);
        return cm.lapi_ack;
      }
      if (!as.has_header) {
        // Out-of-order: data beat the header packet. Stage until the header
        // handler supplies the landing buffer (Section 2.1).
        engine().counters().bump("lapi.staged");
        as.staged.push_back(std::move(pkt));
        return cm.lapi_pkt_rx;
      }
      Time c = cm.lapi_pkt_rx + ingest(as, m.offset, pkt.data);
      if (as.received == as.total) {
        as.completed = true;
        defer(now + c, [this, key] { finish_assembly(key.first, key.second); });
      }
      return c;
    }

    case PktKind::kGetReq: {
      const auto key = std::pair<int, std::int64_t>{pkt.src, m.msg_id};
      Assembly& as = assemblies_[key];
      if (as.completed) {
        send_ack(pkt.src, m.msg_id, true, false, nullptr, nullptr,
                 now + cm.lapi_ack);
        return cm.lapi_ack;
      }
      as.completed = true;
      as.has_header = true;
      as.hdr = std::static_pointer_cast<const WireMeta>(pkt.meta);
      const Time c = cm.lapi_dispatch + cm.lapi_deliver;
      defer(
          now + c, [this, origin = pkt.src, meta = as.hdr] {
            // Ack the request (the origin's retransmit timer covers it).
            send_ack(origin, meta->msg_id, true, false, nullptr, nullptr,
                     engine().now());
            // Serve: the reply is an internal Put back to the origin whose
            // counter roles realize the Get semantics (Figure 1): the
            // reply's target counter is the get's org_cntr, the reply's
            // origin counter is the get's tgt_cntr.
            auto hdr = std::make_shared<WireMeta>();
            hdr->tgt_addr = meta->dst_addr;
            hdr->total_len = meta->total_len;
            hdr->tgt_cntr = meta->org_cntr;
            hdr->org_cntr = meta->tgt_cntr;
            hdr->get_reply = true;
            std::shared_ptr<std::vector<std::byte>> data;
            if (meta->strided) {
              // Getv: gather the strided source (charged to the dispatcher)
              // and ship it with the origin's strided landing descriptor.
              hdr->strided = true;
              hdr->s_row_bytes = meta->s_row_bytes;
              hdr->s_cols = meta->s_cols;
              hdr->s_ld = meta->s_ld;
              data = std::make_shared<std::vector<std::byte>>(
                  static_cast<std::size_t>(meta->total_len));
              StridedRegion src;
              src.base = const_cast<std::byte*>(meta->src_addr);
              src.row_bytes = meta->g_row_bytes;
              src.cols = meta->g_cols;
              src.ld_bytes = meta->g_ld;
              copy_strided_to_contig(src, data->data());
              busy_until_ = std::max(engine().now(), busy_until_) +
                            cost().copy_time(meta->total_len);
            } else {
              data = std::make_shared<std::vector<std::byte>>(
                  meta->src_addr, meta->src_addr + meta->total_len);
            }
            const Status st = send_message(PktKind::kPutHdr, origin,
                                           std::move(hdr), std::move(data), 0);
            SPLAP_REQUIRE(st == Status::kOk, "get reply send failed");
          });
      return c;
    }

    case PktKind::kRmwReq: {
      const auto key = std::pair<int, std::int64_t>{pkt.src, m.msg_id};
      const Time c = cm.lapi_dispatch;
      defer(
          now + c, [this, key,
                    meta = std::static_pointer_cast<const WireMeta>(pkt.meta),
                    origin = pkt.src] {
            std::int64_t prev;
            auto it = rmw_cache_.find(key);
            if (it != rmw_cache_.end()) {
              prev = it->second;  // duplicate request: do NOT re-execute
            } else {
              prev = *meta->rmw_var;
              switch (meta->rmw_op) {
                case RmwOp::kSwap: *meta->rmw_var = meta->rmw_in1; break;
                case RmwOp::kCompareAndSwap:
                  if (*meta->rmw_var == meta->rmw_in1) {
                    *meta->rmw_var = meta->rmw_in2;
                  }
                  break;
                case RmwOp::kFetchAndAdd: *meta->rmw_var += meta->rmw_in1; break;
                case RmwOp::kFetchAndOr: *meta->rmw_var |= meta->rmw_in1; break;
              }
              rmw_cache_[key] = prev;
            }
            auto resp = std::make_shared<WireMeta>();
            resp->kind = PktKind::kRmwResp;
            resp->acked_msg = meta->msg_id;
            resp->rmw_prev = prev;
            resp->rmw_prev_out = meta->rmw_prev_out;
            resp->org_cntr = meta->org_cntr;
            net::Packet p = node_.machine().fabric().make_packet();
            p.src = task_id();
            p.dst = origin;
            p.client = net::Client::kLapi;
            p.header_bytes = cost().lapi_header_bytes + kRmwRespDescBytes;
            p.meta = std::move(resp);
            node_.machine().fabric().transmit(std::move(p));
          });
      return c;
    }

    case PktKind::kRmwResp: {
      const Time c = cm.lapi_ack;
      defer(
          now + c, [this,
                    meta = std::static_pointer_cast<const WireMeta>(pkt.meta)] {
            auto it = sends_.find(meta->acked_msg);
            if (it == sends_.end()) return;  // duplicate response
            sends_.erase(it);
            --outstanding_data_;
            if (meta->rmw_prev_out != nullptr) {
              *meta->rmw_prev_out = meta->rmw_prev;
            }
            bump(meta->org_cntr);
            notify();
          });
      return c;
    }

    case PktKind::kAck: {
      const Time c = cm.lapi_ack;
      defer(
          now + c, [this,
                    meta = std::static_pointer_cast<const WireMeta>(pkt.meta)] {
            auto it = sends_.find(meta->acked_msg);
            if (it == sends_.end()) return;  // stale/duplicate ack
            SendRecord& rec = it->second;
            if (meta->ack_data && !rec.data_acked) {
              // Karn's rule: only never-retransmitted messages contribute
              // RTT samples (a retransmit's ack is ambiguous).
              if (config_.adaptive_timeout && rec.retries == 0) {
                sample_rtt(engine().now() - rec.sent_at);
              }
              rec.data_acked = true;
              --outstanding_data_;
              rec.data.reset();  // retransmit buffer released
              if (rec.org_pending) {
                rec.org_pending = false;
                bump(rec.hdr_meta->org_cntr);  // user buffer unpinned
              }
              notify();
            }
            if (meta->ack_done && rec.needs_done && !rec.done_acked) {
              rec.done_acked = true;
              bump(meta->cmpl_cntr);
            }
            if (rec.data_acked && (!rec.needs_done || rec.done_acked)) {
              sends_.erase(it);
            }
          });
      return c;
    }
  }
  SPLAP_REQUIRE(false, "unknown packet kind");
  return 0;
}

void Context::finish_assembly(int origin, std::int64_t msg_id) {
  const auto key = std::pair<int, std::int64_t>{origin, msg_id};
  auto it = assemblies_.find(key);
  SPLAP_REQUIRE(it != assemblies_.end(), "finishing unknown assembly");
  Assembly& as = it->second;
  const WireMeta& h = *as.hdr;
  const bool want_done = h.cmpl_cntr != nullptr;

  if (h.get_reply) {
    --outstanding_gets_;
  }

  if (!as.completion) {
    as.completion_ran = true;
    bump(h.tgt_cntr);
    send_ack(origin, msg_id, /*data=*/true, /*done=*/want_done, h.org_cntr,
             h.cmpl_cntr, engine().now());
    notify();
  } else {
    // Data is in place: ack it now (fence semantics, Section 5.3.2), then
    // run the completion handler on a service thread; only after it returns
    // do the target counter and the DONE ack fire (Figure 1, Step 4).
    send_ack(origin, msg_id, /*data=*/true, /*done=*/false, h.org_cntr,
             h.cmpl_cntr, engine().now());
    svc_->submit([this, key](sim::Actor& svc_actor) {
      auto jt = assemblies_.find(key);
      SPLAP_REQUIRE(jt != assemblies_.end(), "assembly vanished before completion");
      Assembly& a2 = jt->second;
      const WireMeta& h2 = *a2.hdr;
      auto completion = std::move(a2.completion);
      a2.completion = nullptr;
      completion(*this, svc_actor);
      a2.completion_ran = true;
      bump(h2.tgt_cntr);
      if (h2.cmpl_cntr != nullptr) {
        send_ack(key.first, key.second, /*data=*/false, /*done=*/true,
                 h2.org_cntr, h2.cmpl_cntr, engine().now());
      }
      notify();
    });
  }
  // Shed assembly bulk; keep the completed marker for duplicate suppression.
  as.staged.clear();
  as.staged.shrink_to_fit();
  as.seen.clear();
}

}  // namespace splap::lapi
