#include "lapi/context.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>

#include "base/log.hpp"

// The poisoned-teardown path below leaks its service pool on purpose (see the
// comment in term()); tell LeakSanitizer so sanitized CI stays green.
#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer)
#include <sanitizer/lsan_interface.h>
#define SPLAP_LSAN_IGNORE(p) __lsan_ignore_object(p)
#else
#define SPLAP_LSAN_IGNORE(p) (static_cast<void>(p))
#endif

namespace splap::lapi {

namespace {

constexpr std::int64_t kMaxDataSz = std::int64_t{1} << 30;

}  // namespace

// ---------------------------------------------------------------------------
// Init / Term
// ---------------------------------------------------------------------------

Context::Context(net::Node& node, Config config)
    : node_(node),
      config_(config),
      progress_(node.engine(), node.cost(), *this, config.interrupt_mode),
      send_(node.machine().fabric(), progress_, node.id(), config,
            node.machine().fabric().corruption_enabled()),
      assembly_(node.machine().fabric(), progress_, *this, node.id(), config,
                node.machine().fabric().corruption_enabled()) {
  SPLAP_REQUIRE(sim::Actor::current() != nullptr,
                "LAPI_Init must run in a task (actor) context");
  ctr_put_ = engine().counters().handle("lapi.put");
  ctr_get_ = engine().counters().handle("lapi.get");
  // Incarnation epochs: our own restart count, and the last incarnation of
  // each peer we know about. The initial peer table comes from the machine
  // (the PSSP job-start infrastructure knows which nodes restarted before
  // this task initialised); later bumps are learned from packet stamps.
  epoch_ = node_.machine().incarnation(task_id());
  peer_epochs_.resize(static_cast<std::size_t>(num_tasks()));
  for (int t = 0; t < num_tasks(); ++t) {
    peer_epochs_[static_cast<std::size_t>(t)] = node_.machine().incarnation(t);
  }
  send_.set_epoch(epoch_);
  assembly_.set_epoch(epoch_);
  send_.set_peer_failure_hook(
      [this](int peer, bool direct) { on_peer_failed(peer, direct); });
  node_.adapter().register_client(
      net::Client::kLapi,
      [this](net::Packet&& p) { progress_.on_delivery(std::move(p)); });
  // Bounded-RX drops of LAPI packets come back as overflow notifications
  // (the adapter's "exception interrupt"): NACK the origin for fast
  // recovery instead of waiting out its retransmission timeout.
  node_.adapter().register_overflow(
      net::Client::kLapi,
      [this](const net::Packet& p) { assembly_.on_overflow(p); });
  svc_ = std::make_unique<SvcPool>(
      engine(), "lapi" + std::to_string(task_id()), config.completion_threads,
      config.stackless_completions, node_.id());

  // Registers the reserved barrier-pulse handler (id 0) and joins the
  // per-machine Universe registry; defined in collectives.cpp.
  init_collectives();
}

Context::~Context() { term(); }

void Context::term() {
  if (terminated_) return;
  sim::Actor* a = sim::Actor::current();
  SPLAP_REQUIRE(a != nullptr, "LAPI_Term must run in a task context");
  if (!a->poisoned()) {
    try {
      // Quiesce: drain our own in-flight messages (e.g. the last gfence's
      // barrier pulses, which are sent after its fence) so tearing down this
      // context cannot strand a peer waiting on a message whose
      // retransmission we would otherwise cancel. If the fabric lost a
      // message for good (peer already gone), the retransmit layer gives up
      // and we proceed.
      enter_library();
      while (send_.outstanding_data() > 0 || send_.outstanding_gets() > 0 ||
             progress_.pending_effects() > 0) {
        if (send_.all_exhausted() && send_.outstanding_gets() == 0 &&
            progress_.pending_effects() == 0) {
          break;
        }
        progress_.waiters().add(*a);
        a->suspend("lapi-term-quiesce");
      }
      exit_library();
      svc_->stop(*a);
      // Retire (not unregister): a duplicate ack elicited by our last
      // pre-settle retransmission may still be in flight and must be
      // absorbed, not counted as a dead letter — those are reserved for
      // crashed/never-inited clients.
      node_.adapter().retire_client(net::Client::kLapi);
      detach_universe();
      terminated_ = true;
      progress_.invalidate();  // cancels pending timeouts / deferred bumps
      return;
    } catch (...) {
      if (!a->poisoned()) throw;
      // The crash landed while term was quiescing. ~Context is noexcept, so
      // the engine's kill exception must be absorbed here; fall through to
      // the crash teardown below. The actor's next suspension rethrows it.
    }
  }
  // Engine teardown is unwinding this actor: blocking is impossible, so
  // detach best-effort and let the engine reap the service threads. The
  // pool must outlive those threads (the engine poisons them after us),
  // so its ownership is intentionally released here — a bounded leak on
  // an already-failed run.
  SPLAP_LSAN_IGNORE(svc_.get());
  svc_.release();  // NOLINT(bugprone-unused-return-value)
  // This incarnation died mid-flight: its unsettled send/credit ledger
  // entries are the crash's legitimate residue, not leaks.
  send_.forgive_crash_teardown();
  node_.adapter().unregister_client(net::Client::kLapi);
  detach_universe();
  terminated_ = true;
  progress_.invalidate();
}

// ---------------------------------------------------------------------------
// Environment
// ---------------------------------------------------------------------------

std::int64_t Context::qenv(Query q) const {
  const CostModel& cm = cost();
  switch (q) {
    case Query::kTaskId: return task_id();
    case Query::kNumTasks: return num_tasks();
    case Query::kMaxUhdrSz: return cm.lapi_payload();
    case Query::kMaxDataSz: return kMaxDataSz;
    case Query::kPktPayload: return cm.lapi_payload();
    case Query::kInterruptSet: return progress_.interrupt_mode() ? 1 : 0;
    case Query::kCmplThreads: return config_.completion_threads;
  }
  SPLAP_REQUIRE(false, "unknown LAPI_Qenv key");
  return -1;
}

void Context::senv(Setting s, std::int64_t v) {
  switch (s) {
    case Setting::kInterruptSet:
      progress_.set_interrupt_mode(v != 0);
      return;
  }
  SPLAP_REQUIRE(false, "unknown LAPI_Senv key");
}

AmHandlerId Context::register_handler(HeaderHandler handler) {
  SPLAP_REQUIRE(!terminated_, "register_handler after LAPI_Term");
  SPLAP_REQUIRE(handler != nullptr, "null header handler");
  handlers_.push_back(std::move(handler));
  return static_cast<AmHandlerId>(handlers_.size() - 1);
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

void Context::setcntr(Counter& c, std::int64_t v) {
  c.value_ = v;
  notify();
}

std::int64_t Context::getcntr(Counter& c) {
  enter_library();
  if (sim::Actor* a = sim::Actor::current()) a->compute(cost().lapi_call_warm);
  const std::int64_t v = c.value_;
  exit_library();
  return v;
}

Status Context::waitcntr(Counter& c, std::int64_t val) {
  sim::Actor* a = sim::Actor::current();
  SPLAP_REQUIRE(a != nullptr, "LAPI_Waitcntr must run in a task context");
  SPLAP_REQUIRE(val >= 0, "negative wait value");
  enter_library();
  a->compute(call_entry_cost());
  while (c.value_ < val) {
    progress_.waiters().add(*a);
    a->suspend("lapi-waitcntr");
  }
  c.value_ -= val;  // Waitcntr auto-decrements (Section 2.3)
  // Failure completions (retry exhaustion) unblocked this wait like any
  // other bump; surface them instead of pretending the data arrived. Each
  // wait consumes at most `val` recorded failures, mirroring the decrement.
  Status st = Status::kOk;
  if (c.failed_ > 0) {
    const std::int64_t consume = std::min(c.failed_, val);
    // Peer death outranks plain resource exhaustion: the caller must learn
    // the partner is gone, not merely that a retry budget ran out.
    st = c.peer_failed_ > 0 ? Status::kPeerFailed : Status::kResourceExhausted;
    c.failed_ -= consume;
    c.peer_failed_ -= std::min(c.peer_failed_, consume);
  }
  exit_library();
  return st;
}

// ---------------------------------------------------------------------------
// Send path: validate here, inject via the send engine
// ---------------------------------------------------------------------------

Status Context::send_message(PktKind kind, int target,
                             std::shared_ptr<WireMeta> hdr,
                             std::shared_ptr<std::vector<std::byte>> data,
                             Time extra_call_cost) {
  if (terminated_) return Status::kBadHandle;
  if (target < 0 || target >= num_tasks()) return Status::kBadParameter;
  // Stamp the op with both incarnations it was issued against. dst_epoch is
  // fixed here, at submit: if the target restarts mid-op, our retransmits
  // still carry the old stamp and the new life rejects them — the remote
  // addresses in this header belong to the incarnation that died.
  hdr->epoch = epoch_;
  hdr->dst_epoch = node_.machine().incarnation(target);
  send_.submit(kind, target, std::move(hdr), std::move(data), extra_call_cost);
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// Public operations
// ---------------------------------------------------------------------------

Status Context::put(int target, std::span<const std::byte> src,
                    std::byte* tgt_addr, Counter* tgt_cntr, Counter* org_cntr,
                    Counter* cmpl_cntr) {
  if (!src.empty() && (src.data() == nullptr || tgt_addr == nullptr)) {
    return Status::kBadParameter;
  }
  if (static_cast<std::int64_t>(src.size()) > kMaxDataSz) {
    return Status::kBadParameter;
  }
  ctr_put_.bump();
  auto hdr = std::make_shared<WireMeta>();
  hdr->tgt_addr = tgt_addr;
  hdr->total_len = static_cast<std::int64_t>(src.size());
  hdr->org_addr = src.data();  // registration key of the source region
  hdr->tgt_cntr = tgt_cntr;
  hdr->org_cntr = org_cntr;
  hdr->cmpl_cntr = cmpl_cntr;
  auto data = std::make_shared<std::vector<std::byte>>(src.begin(), src.end());
  return send_message(PktKind::kPutHdr, target, std::move(hdr),
                      std::move(data), 0);
}

Status Context::get(int target, std::int64_t len, const std::byte* tgt_addr,
                    std::byte* org_addr, Counter* tgt_cntr, Counter* org_cntr) {
  if (len < 0 || len > kMaxDataSz) return Status::kBadParameter;
  if (len > 0 && (tgt_addr == nullptr || org_addr == nullptr)) {
    return Status::kBadParameter;
  }
  ctr_get_.bump();
  auto hdr = std::make_shared<WireMeta>();
  hdr->src_addr = tgt_addr;
  hdr->dst_addr = org_addr;
  hdr->total_len = len;
  hdr->tgt_cntr = tgt_cntr;
  hdr->org_cntr = org_cntr;
  return send_message(PktKind::kGetReq, target, std::move(hdr), nullptr,
                      cost().lapi_get_extra);
}

Status Context::putv(int target, const StridedRegion& src,
                     const StridedRegion& dst, Counter* tgt_cntr,
                     Counter* org_cntr, Counter* cmpl_cntr) {
  if (src.row_bytes != dst.row_bytes || src.cols != dst.cols) {
    return Status::kBadParameter;
  }
  const std::int64_t len = src.total_bytes();
  if (len < 0 || len > kMaxDataSz) return Status::kBadParameter;
  if (len > 0 && (src.base == nullptr || dst.base == nullptr)) {
    return Status::kBadParameter;
  }
  engine().counters().bump("lapi.putv");
  auto hdr = std::make_shared<WireMeta>();
  hdr->tgt_addr = dst.base;
  hdr->total_len = len;
  hdr->strided = true;
  hdr->s_row_bytes = dst.row_bytes;
  hdr->s_cols = dst.cols;
  hdr->s_ld = dst.ld_bytes;
  hdr->org_addr = src.base;  // registration key of the source region
  hdr->tgt_cntr = tgt_cntr;
  hdr->org_cntr = org_cntr;
  hdr->cmpl_cntr = cmpl_cntr;
  // Gather the source into the message (charged as call-time copy work):
  // the user buffer is reusable at injection.
  auto data = std::make_shared<std::vector<std::byte>>(
      static_cast<std::size_t>(len));
  copy_strided_to_contig(src, data->data());
  // Small messages are charged their bcopy inside the send path already,
  // and a zero-copy send gathers nothing at the call (the adapter
  // scatter/gather engine streams straight from the user region), so the
  // gather charge belongs to the rendezvous path only.
  Time gather_cost = 0;
  if (len > cost().lapi_bcopy_limit &&
      send_.selector().classify(PktKind::kPutHdr, *hdr, len, target,
                                cost()) != XferProtocol::kZeroCopy) {
    gather_cost = cost().copy_time(len);
  }
  return send_message(PktKind::kPutHdr, target, std::move(hdr),
                      std::move(data), gather_cost);
}

Status Context::getv(int target, const StridedRegion& src,
                     const StridedRegion& dst, Counter* tgt_cntr,
                     Counter* org_cntr) {
  if (src.row_bytes != dst.row_bytes || src.cols != dst.cols) {
    return Status::kBadParameter;
  }
  const std::int64_t len = src.total_bytes();
  if (len < 0 || len > kMaxDataSz) return Status::kBadParameter;
  if (len > 0 && (src.base == nullptr || dst.base == nullptr)) {
    return Status::kBadParameter;
  }
  engine().counters().bump("lapi.getv");
  auto hdr = std::make_shared<WireMeta>();
  hdr->src_addr = src.base;
  hdr->dst_addr = dst.base;
  hdr->total_len = len;
  hdr->strided = true;
  hdr->g_row_bytes = src.row_bytes;
  hdr->g_cols = src.cols;
  hdr->g_ld = src.ld_bytes;
  hdr->s_row_bytes = dst.row_bytes;
  hdr->s_cols = dst.cols;
  hdr->s_ld = dst.ld_bytes;
  hdr->tgt_cntr = tgt_cntr;
  hdr->org_cntr = org_cntr;
  return send_message(PktKind::kGetReq, target, std::move(hdr), nullptr,
                      cost().lapi_get_extra);
}

Status Context::amsend(int target, AmHandlerId handler,
                       std::span<const std::byte> uhdr,
                       std::span<const std::byte> udata, Counter* tgt_cntr,
                       Counter* org_cntr, Counter* cmpl_cntr) {
  if (handler < 0 || handler >= static_cast<AmHandlerId>(handlers_.size())) {
    return Status::kBadParameter;
  }
  if (static_cast<std::int64_t>(uhdr.size()) > qenv(Query::kMaxUhdrSz)) {
    return Status::kBadParameter;
  }
  if (static_cast<std::int64_t>(udata.size()) > kMaxDataSz) {
    return Status::kBadParameter;
  }
  engine().counters().bump("lapi.amsend");
  auto hdr = std::make_shared<WireMeta>();
  hdr->handler_id = handler;
  hdr->uhdr.assign(uhdr.begin(), uhdr.end());
  hdr->total_len = static_cast<std::int64_t>(udata.size());
  hdr->tgt_cntr = tgt_cntr;
  hdr->org_cntr = org_cntr;
  hdr->cmpl_cntr = cmpl_cntr;
  auto data =
      std::make_shared<std::vector<std::byte>>(udata.begin(), udata.end());
  return send_message(PktKind::kAmHdr, target, std::move(hdr), std::move(data),
                      0);
}

Status Context::rmw(RmwOp op, int target, std::int64_t* tgt_var,
                    std::int64_t in1, std::int64_t in2, std::int64_t* prev_out,
                    Counter* org_cntr) {
  if (tgt_var == nullptr) return Status::kBadParameter;
  engine().counters().bump("lapi.rmw");
  auto hdr = std::make_shared<WireMeta>();
  hdr->rmw_op = op;
  hdr->rmw_var = tgt_var;
  hdr->rmw_in1 = in1;
  hdr->rmw_in2 = in2;
  hdr->rmw_prev_out = prev_out;
  hdr->org_cntr = org_cntr;
  return send_message(PktKind::kRmwReq, target, std::move(hdr), nullptr, 0);
}

std::int64_t Context::rmw_sync(RmwOp op, int target, std::int64_t* tgt_var,
                               std::int64_t in1, std::int64_t in2) {
  Counter done;
  std::int64_t prev = 0;
  const Status st = rmw(op, target, tgt_var, in1, in2, &prev, &done);
  SPLAP_REQUIRE(st == Status::kOk, "rmw_sync: bad parameters");
  const Status w = waitcntr(done, 1);
  SPLAP_REQUIRE(w == Status::kOk, "rmw_sync: wait failed");
  return prev;
}

// ---------------------------------------------------------------------------
// Receive path: demultiplex to the origin or target side
// ---------------------------------------------------------------------------

Time Context::process_packet(net::Packet& pkt) {
  const WireMeta& m = pkt.meta_as<WireMeta>();
  if (m.epoch < 0 || m.dst_epoch < 0) [[unlikely]] {
    // Incarnation epochs are monotone counters from zero; a negative stamp
    // is not a stale life, it is a mangled header. Drop at the door.
    engine().counters().bump("lapi.malformed_drop");
    return cost().lapi_pkt_rx;
  }
  if (m.dst_epoch != epoch_ || m.epoch != peer_epochs_[static_cast<std::size_t>(pkt.src)]) [[unlikely]] {
    if (m.dst_epoch < epoch_ ||
        m.epoch < peer_epochs_[static_cast<std::size_t>(pkt.src)]) {
      // A packet from or for a dead incarnation: its header fields name
      // buffers of a life that no longer exists. Reject at the door.
      engine().counters().bump("lapi.stale_epoch");
      return cost().lapi_pkt_rx;
    }
    // The peer restarted (its stamp outran what we knew): adopt the new
    // incarnation and wipe every trace of the old one before admitting.
    peer_epochs_[static_cast<std::size_t>(pkt.src)] = m.epoch;
    assembly_.forget_origin(pkt.src);
    send_.on_peer_reborn(pkt.src, m.epoch);
  }
  send_.note_heard(pkt.src);
  if (!death_reports_.empty()) {
    // Any authenticated contact from the peer refutes the accrual gossip
    // collected against it so far: restart the corroboration count rather
    // than let ancient suspicions combine with fresh ones into a verdict.
    death_reports_.erase(pkt.src);
  }
  switch (m.kind) {
    case PktKind::kAck: return send_.on_ack(pkt);
    case PktKind::kRmwResp: return send_.on_rmw_resp(pkt);
    case PktKind::kNack: return send_.on_nack(pkt);
    case PktKind::kCredit: return send_.on_credit(pkt);
    case PktKind::kProbe: return send_.on_probe(pkt);
    case PktKind::kProbeAck: return cost().lapi_pkt_rx;
    default: return assembly_.process(pkt);
  }
}

// ---------------------------------------------------------------------------
// AssemblyEngine::Env upcalls
// ---------------------------------------------------------------------------

AmReply Context::run_handler(AmHandlerId id, const AmDelivery& d) {
  SPLAP_REQUIRE(id >= 0 && id < static_cast<AmHandlerId>(handlers_.size()),
                "active message names an unregistered handler");
  return handlers_[static_cast<std::size_t>(id)](*this, d);
}

void Context::run_completion(
    const std::function<void(Context&, sim::Actor&)>& fn,
    sim::Actor& svc_actor) {
  fn(*this, svc_actor);
}

void Context::submit_completion(std::function<void(sim::Actor&)> fn) {
  svc_->submit(std::move(fn));
}

Status Context::send_get_reply(int origin, std::shared_ptr<WireMeta> hdr,
                               std::shared_ptr<std::vector<std::byte>> data) {
  return send_message(PktKind::kPutHdr, origin, std::move(hdr),
                      std::move(data), 0);
}

// ---------------------------------------------------------------------------
// Crash-stop failure handling
// ---------------------------------------------------------------------------

void Context::on_peer_failed(int peer, bool direct) {
  // First-hand detection (retry exhaustion or keepalive misses in the send
  // engine). The send side already failed every record toward the peer;
  // clean up our target side — its incomplete partials can never finish.
  // Completed-message dedup markers stay: the verdict may be congestion
  // misjudged as death, and exactly-once delivery must survive a reconnect.
  assembly_.reclaim_peer_partials(peer);
  death_reports_.erase(peer);
  // Deliver the LAPI_Init-registered error handler on the completion-thread
  // pool, exactly once per failure latch, like any completion handler would
  // run (never inline under the dispatcher).
  if (config_.error_handler) {
    svc_->submit([this, peer](sim::Actor&) {
      config_.error_handler(*this, peer, Status::kPeerFailed);
    });
  }
  // Gossip the verdict to the sibling contexts (the group-services
  // membership channel): barrier partners that never address the dead node
  // would otherwise wait on it forever. The evidence class rides along:
  // receivers latch direct verdicts unconditionally but demand quorum for
  // accrual-only ones.
  broadcast_peer_death(peer, direct);
}

void Context::note_peer_death(int peer, bool direct, int reporter) {
  if (terminated_ || peer == task_id()) return;
  if (direct) {
    // Hard evidence (retry exhaustion, or the warmup/legacy keepalive rule,
    // which only fires against peers with no traffic history). fail_peer's
    // fresh-latch guard makes the gossip converge: a second-hand notice of
    // an already-latched failure re-invokes nothing.
    send_.fail_peer(peer);
    return;
  }
  // Circumstantial evidence (accrual escalation somewhere else). A single
  // partitioned observer must not be able to split-brain the membership:
  // require suspicion_quorum distinct observers, counting our own live
  // suspicion of the peer as one vote, before the verdict latches here.
  auto& reps = death_reports_[peer];
  reps.insert(reporter);
  const int votes = static_cast<int>(reps.size()) +
                    (send_.peer_suspected(peer) ? 1 : 0);
  if (votes >= config_.suspicion_quorum) {
    death_reports_.erase(peer);
    send_.fail_peer(peer, /*direct=*/false);
  }
}

}  // namespace splap::lapi
