// Internal wire protocol of the LAPI implementation.
//
// Every LAPI operation maps onto packets of these kinds. Data-bearing
// messages (Put, Amsend, Get replies) are split into a header packet plus
// data packets; the fabric may deliver them in any order, and the assembly
// logic at the target is built for that (Section 2.1). A two-level ack
// scheme mirrors the paper's completion semantics: the DATA ack fires the
// fence/origin bookkeeping ("data has been copied out from the network to
// the remote user buffers"), the DONE ack fires the origin completion
// counter only after the completion handler has run (Section 5.3.2).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/time.hpp"
#include "lapi/types.hpp"

namespace splap::lapi {

class Counter;

/// Wire sizes of the control descriptors beyond the 48-byte LAPI header.
inline constexpr std::int64_t kGetReqDescBytes = 32;
inline constexpr std::int64_t kRmwReqDescBytes = 24;
inline constexpr std::int64_t kRmwRespDescBytes = 8;
inline constexpr std::int64_t kAckDescBytes = 12;
inline constexpr std::int64_t kNackDescBytes = 12;
inline constexpr std::int64_t kCreditDescBytes = 12;
inline constexpr std::int64_t kCancelDescBytes = 12;
inline constexpr std::int64_t kProbeDescBytes = 8;

enum class PktKind : std::uint8_t {
  kPutHdr,   // first packet of a Put: target address + total length
  kAmHdr,    // first packet of an Amsend: handler id + uhdr
  kData,     // continuation packet of any data-bearing message
  kGetReq,   // Get request descriptor (header-only)
  kRmwReq,   // read-modify-write request
  kRmwResp,  // previous value back to the origin
  kAck,      // data-complete and/or handler-done acknowledgement
  kNack,     // target->origin: a packet of acked_msg was dropped at the
             // target adapter (RX overflow / partial-table shed); the origin
             // fast-retransmits without waiting for the RTO
  kCredit,   // target->origin: standalone credit update carrying the
             // cumulative ingested-packet count for acked_msg
  kCancel,   // origin->target: origin abandoned acked_msg (retry
             // exhaustion); the target reclaims any partial assembly
  kProbe,    // keepalive: origin asks "are you alive?" while it has sends
             // pending toward a silent peer (Config::keepalive_interval)
  kProbeAck, // keepalive reply (header-only; any traffic also counts)
};

/// Descriptor attached to every LAPI packet. A real implementation packs a
/// 48-byte header on the wire; the simulator charges those bytes via
/// Packet::header_bytes and keeps the logical fields here.
struct WireMeta {
  PktKind kind = PktKind::kData;
  /// Crash-stop incarnation epochs (Machine::incarnation). `epoch` is the
  /// sender's incarnation when it built the packet; `dst_epoch` is the
  /// destination incarnation the operation was issued against. Receivers
  /// reject packets from a peer's previous life (epoch stale) and packets
  /// addressed to their own previous life (dst_epoch stale) — the latter is
  /// what keeps a survivor's pre-crash retransmissions, whose target
  /// addresses died with the old task, out of a restarted node's memory.
  /// Both stay 0 while no node has ever crashed, so the healthy wire format
  /// and golden traces are unchanged.
  std::int64_t epoch = 0;
  std::int64_t dst_epoch = 0;
  /// Message id, unique per origin context. Keyed (origin, msg_id) at the
  /// target for assembly and duplicate suppression.
  std::int64_t msg_id = 0;
  std::int64_t offset = 0;     // kData: byte offset of this fragment
  std::int64_t total_len = 0;  // header packets: full udata length
  /// End-to-end CRC of this packet's payload bytes, stamped by the origin
  /// when the fabric has corruption injection armed; 0 = not carried. The
  /// target discards mismatching packets (treated as loss, recovered by
  /// retransmission) so corrupted bytes never land in user buffers.
  std::uint32_t data_crc = 0;

  // kPutHdr: where the data lands.
  std::byte* tgt_addr = nullptr;
  /// Strided extension (the paper's Section 6 future-work item 1,
  /// implemented here): when set, the packed wire stream scatters into a
  /// column-major region at tgt_addr instead of a flat buffer.
  bool strided = false;
  std::int64_t s_row_bytes = 0;
  std::int64_t s_cols = 0;
  std::int64_t s_ld = 0;
  // kGetReq with strided = true additionally describes the remote SOURCE
  // region to gather from (src_addr + these dims).
  std::int64_t g_row_bytes = 0;
  std::int64_t g_cols = 0;
  std::int64_t g_ld = 0;

  /// Registered-memory zero-copy transfer (Config::rdma_enabled): data
  /// packets carry a steering tag instead of the full parameter block
  /// (CostModel::rdma_header_bytes on the wire) and the adapter lands the
  /// payload straight into the registered target region — assembly charges
  /// rdma_pkt_rx per packet and no copy. Chosen by ProtocolSelector; rides
  /// the same ReliableChannel (acks/credits/NACKs unchanged).
  bool zero_copy = false;
  /// Origin user-buffer base of the transfer, for registration-cache keying
  /// (the origin pins the region it sends from). Null when the payload has
  /// no stable user-region identity (AM chunks, internal copies).
  const std::byte* org_addr = nullptr;

  // kAmHdr: which handler, and the user header bytes (counted on the wire).
  AmHandlerId handler_id = -1;
  std::vector<std::byte> uhdr;

  // kGetReq: pull total_len bytes from src_addr into dst_addr at the origin.
  const std::byte* src_addr = nullptr;
  std::byte* dst_addr = nullptr;
  /// Set on the data message a target emits to serve a Get: the origin uses
  /// it to retire the outstanding-get bookkeeping its fence relies on.
  bool get_reply = false;

  // kRmwReq / kRmwResp.
  RmwOp rmw_op = RmwOp::kSwap;
  std::int64_t* rmw_var = nullptr;
  std::int64_t rmw_in1 = 0;
  std::int64_t rmw_in2 = 0;       // kCompareAndSwap swap value
  std::int64_t rmw_prev = 0;      // kRmwResp payload
  std::int64_t* rmw_prev_out = nullptr;

  // kAck / kNack / kCredit / kCancel.
  std::int64_t acked_msg = 0;
  bool ack_data = false;  // all bytes landed in the target buffer
  bool ack_done = false;  // completion handler finished
  /// Cumulative count of distinct wire packets of acked_msg the target has
  /// ingested so far, carried on kAck (piggybacked) and kCredit (standalone)
  /// packets. Cumulative so duplicates are idempotent and a lost update is
  /// healed by the next one; the origin releases credit leases against it.
  std::int64_t ack_pkts = 0;

  // Counters at the message's origin, echoed back by acks. Raw pointers are
  // valid across "address spaces" because the simulation shares one process
  // image — the same reason the real LAPI can ship function addresses.
  Counter* org_cntr = nullptr;
  Counter* cmpl_cntr = nullptr;
  // Counter at the target (Put/Amsend) or at the serving side for Get.
  Counter* tgt_cntr = nullptr;
};

}  // namespace splap::lapi
