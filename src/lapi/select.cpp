#include "lapi/select.hpp"

#include <algorithm>

namespace splap::lapi {

// ---------------------------------------------------------------------------
// RegistrationCache
// ---------------------------------------------------------------------------

bool RegistrationCache::pin(int peer, std::uintptr_t addr, std::int64_t len,
                            std::int64_t epoch) {
  if (capacity_ <= 0) {
    // Caching disabled: every transfer repins (the "cold" configuration
    // benchmarks use to expose the raw pin cost).
    ++stats_.misses;
    return false;
  }
  const Key key{peer, addr, len};
  if (auto it = map_.find(key); it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    if (it->second.epoch == epoch) {
      ++stats_.hits;
      return true;
    }
    // The peer restarted since this region was pinned: the registration
    // belongs to the dead incarnation and its adapter state is gone.
    // Re-pin under the new epoch (a miss, so the caller charges pin_time).
    ++stats_.epoch_invalidations;
    ++stats_.misses;
    it->second.epoch = epoch;
    return false;
  }
  ++stats_.misses;
  if (static_cast<std::int64_t>(map_.size()) >= capacity_) {
    ++stats_.evictions;
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{epoch, lru_.begin()});
  return false;
}

void RegistrationCache::invalidate_peer(int peer) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (std::get<0>(it->first) == peer) {
      ++stats_.peer_invalidations;
      lru_.erase(it->second.pos);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

void RegistrationCache::clear() {
  map_.clear();
  lru_.clear();
}

// ---------------------------------------------------------------------------
// ProtocolSelector
// ---------------------------------------------------------------------------

XferProtocol ProtocolSelector::classify(PktKind kind, const WireMeta& hdr,
                                        std::int64_t len, int target,
                                        const CostModel& cm) const {
  if (len <= cm.lapi_bcopy_limit) return XferProtocol::kEager;
  // Zero-copy needs a target region the origin can register ahead of time:
  // Puts (including Get replies, which are Put-shaped) name it in the
  // request, but an Amsend's landing buffer only exists once the header
  // handler runs at the target, so AMs stay on the rendezvous path.
  // Loopback transfers never touch the adapter and gain nothing.
  if (config_.rdma_enabled && kind == PktKind::kPutHdr &&
      hdr.tgt_addr != nullptr && target != self_ &&
      len >= config_.rdma_threshold) {
    return XferProtocol::kZeroCopy;
  }
  return XferProtocol::kRendezvous;
}

XferDecision ProtocolSelector::decide(PktKind kind, WireMeta& hdr,
                                      std::int64_t len, int target,
                                      std::int64_t self_epoch,
                                      const CostModel& cm) {
  XferDecision d;
  d.protocol = classify(kind, hdr, len, target, cm);
  switch (d.protocol) {
    case XferProtocol::kEager:
      // Bcopied into the retransmit buffer during the call; the user
      // buffer is free (origin counter) at injection.
      d.call_copy = cm.copy_time(len);
      d.org_at_injection = true;
      break;
    case XferProtocol::kRendezvous:
      // Streams zero-copy from the pinned user buffer: reusable only at
      // the data ack — except a strided source, which was gathered into a
      // packed buffer during the call and is free immediately.
      d.org_at_injection = hdr.strided;
      break;
    case XferProtocol::kZeroCopy: {
      hdr.zero_copy = true;
      // The adapter gathers straight from the user region (strided or
      // not), so the buffer stays pinned until the data ack.
      d.org_at_injection = false;
      if (hdr.org_addr != nullptr &&
          !cache_.pin(self_, reinterpret_cast<std::uintptr_t>(hdr.org_addr),
                      len, self_epoch)) {
        d.pin_cost += cm.pin_time(len);
      }
      // A strided landing registers the whole spanned region, not just the
      // payload bytes.
      const std::int64_t span =
          hdr.strided ? hdr.s_ld * (hdr.s_cols - 1) + hdr.s_row_bytes : len;
      if (!cache_.pin(target, reinterpret_cast<std::uintptr_t>(hdr.tgt_addr),
                      span, hdr.dst_epoch)) {
        d.pin_cost += cm.pin_time(span);
      }
      break;
    }
  }
  return d;
}

// ---------------------------------------------------------------------------
// FragPlan
// ---------------------------------------------------------------------------

FragPlan frag_plan(PktKind kind, const WireMeta& hdr, std::int64_t len,
                   const CostModel& cm) {
  FragPlan p;
  p.header_bytes = cm.lapi_header_bytes;
  switch (kind) {
    case PktKind::kGetReq: p.header_bytes += kGetReqDescBytes; break;
    case PktKind::kRmwReq: p.header_bytes += kRmwReqDescBytes; break;
    case PktKind::kAmHdr:
      p.header_bytes += static_cast<std::int64_t>(hdr.uhdr.size());
      break;
    default: break;
  }
  p.chunk0 = std::min(
      len, std::max<std::int64_t>(0, cm.packet_bytes - p.header_bytes));
  // The header packet always carries the full LAPI parameter block (it is
  // what sets up the target-side steering); only the continuation packets
  // shrink to the rdma steering-tag header on the zero-copy path.
  p.data_header_bytes =
      hdr.zero_copy ? cm.rdma_header_bytes : cm.lapi_header_bytes;
  p.per = std::max<std::int64_t>(1, cm.packet_bytes - p.data_header_bytes);
  p.packets = 1 + (len - p.chunk0 + p.per - 1) / p.per;
  return p;
}

}  // namespace splap::lapi
