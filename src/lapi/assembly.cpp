#include "lapi/assembly.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <span>
#include <utility>

#include "base/checksum.hpp"
#include "base/log.hpp"
#include "base/strided.hpp"

namespace splap::lapi {

void AssemblyEngine::send_ack(int target, std::int64_t msg_id, bool data,
                              bool done, Counter* org_cntr, Counter* cmpl_cntr,
                              std::int64_t pkts, std::int64_t origin_epoch,
                              Time when) {
  when += progress_.cost().lapi_ack_delay;  // delayed-ack coalescing timer
  auto m = std::make_shared<WireMeta>();
  m->kind = PktKind::kAck;
  m->epoch = epoch_;
  m->dst_epoch = origin_epoch;
  m->acked_msg = msg_id;
  m->ack_data = data;
  m->ack_done = done;
  m->ack_pkts = pkts;  // piggybacked credit grant (cumulative)
  m->org_cntr = org_cntr;
  m->cmpl_cntr = cmpl_cntr;
  net::Packet p = wire_.make_packet();
  p.src = task_id_;
  p.dst = target;
  p.client = net::Client::kLapi;
  p.header_bytes = progress_.cost().lapi_header_bytes + kAckDescBytes;
  p.meta = std::move(m);
  SPLAP_DEBUG(progress_.engine().now(),
              "lapi task %d: ack msg %lld to %d data=%d done=%d at %.3f",
              task_id_, static_cast<long long>(msg_id), target, data, done,
              to_us(when));
  if (when <= progress_.engine().now()) {
    wire_.transmit(std::move(p));
  } else {
    progress_.defer(when,
                    [this, sp = std::make_shared<net::Packet>(std::move(p))] {
                      wire_.transmit(std::move(*sp));
                    });
  }
}

void AssemblyEngine::send_nack(int origin, std::int64_t msg_id,
                               std::int64_t origin_epoch) {
  // One NACK per message until forward progress: a full adapter dropping a
  // six-packet burst must trigger one recovery, not six. The suppression
  // clears when a packet of the message is accepted (or it is reclaimed).
  if (!nacked_.insert({origin, msg_id}).second) return;
  progress_.engine().counters().bump("lapi.nack_sent");
  auto m = std::make_shared<WireMeta>();
  m->kind = PktKind::kNack;
  m->epoch = epoch_;
  m->dst_epoch = origin_epoch;
  m->acked_msg = msg_id;
  net::Packet p = wire_.make_packet();
  p.src = task_id_;
  p.dst = origin;
  p.client = net::Client::kLapi;
  p.header_bytes = progress_.cost().lapi_header_bytes + kNackDescBytes;
  p.meta = std::move(m);
  // Emitted by the adapter itself at the drop instant (exception-interrupt
  // path): no dispatcher charge, no delayed-ack coalescing — speed is the
  // whole point of the NACK.
  wire_.transmit(std::move(p));
}

void AssemblyEngine::on_overflow(const net::Packet& pkt) {
  const WireMeta& m = pkt.meta_as<WireMeta>();
  switch (m.kind) {
    case PktKind::kPutHdr:
    case PktKind::kAmHdr:
    case PktKind::kData:
    case PktKind::kGetReq:
    case PktKind::kRmwReq:
      send_nack(pkt.src, m.msg_id, m.epoch);
      break;
    default:
      // Lost acks/credits/nacks/cancels heal by other means (probe
      // retransmissions, cumulative grants, the TTL sweep).
      break;
  }
}

void AssemblyEngine::maybe_emit_credit(int origin, std::int64_t msg_id,
                                       Assembly& as,
                                       std::int64_t origin_epoch) {
  if (config_.credit_update_interval <= 0 || as.completed) return;
  if (as.pkts_ingested - as.last_credit_sent < config_.credit_update_interval) {
    return;
  }
  as.last_credit_sent = as.pkts_ingested;
  progress_.engine().counters().bump("lapi.credit_updates");
  auto m = std::make_shared<WireMeta>();
  m->kind = PktKind::kCredit;
  m->epoch = epoch_;
  m->dst_epoch = origin_epoch;
  m->acked_msg = msg_id;
  m->ack_pkts = as.pkts_ingested;
  net::Packet p = wire_.make_packet();
  p.src = task_id_;
  p.dst = origin;
  p.client = net::Client::kLapi;
  p.header_bytes = progress_.cost().lapi_header_bytes + kCreditDescBytes;
  p.meta = std::move(m);
  wire_.transmit(std::move(p));
}

bool AssemblyEngine::admit_partial(Time now) {
  if (config_.partial_ttl > 0) gc_partials(now);
  return config_.max_partials <= 0 ||
         live_partials_ < static_cast<std::size_t>(config_.max_partials);
}

AssemblyEngine::AssemblyMap::iterator AssemblyEngine::reclaim_partial(
    AssemblyMap::iterator it) {
  progress_.engine().counters().bump("lapi.partials_reclaimed");
  nacked_.erase(it->first);
  --live_partials_;
  return assemblies_.erase(it);
}

void AssemblyEngine::gc_partials(Time now) {
  for (auto it = assemblies_.begin(); it != assemblies_.end();) {
    const Assembly& as = it->second;
    if (!as.completed && now - as.last_update > config_.partial_ttl) {
      SPLAP_DEBUG(now, "lapi task %d: TTL-reclaiming stale partial from %d",
                  task_id_, it->first.first);
      it = reclaim_partial(it);
    } else {
      ++it;
    }
  }
}

Time AssemblyEngine::process(net::Packet& pkt) {
  const CostModel& cm = progress_.cost();
  const WireMeta& m = pkt.meta_as<WireMeta>();
  const Time now = progress_.engine().now();

  // End-to-end integrity check (armed with corruption injection): a payload
  // whose CRC mismatches is discarded here, exactly as if the fabric had
  // dropped it — the origin's retransmission recovers it, and corrupted
  // bytes never reach user buffers or the assembly dedup state.
  if (checksums_ && m.data_crc != 0 && !pkt.data.empty() &&
      crc32_nz(pkt.data.data(), pkt.data.size()) != m.data_crc) {
    progress_.engine().counters().bump("lapi.corrupt_drops");
    SPLAP_DEBUG(now, "lapi task %d: CRC mismatch on msg %lld from %d, dropped",
                task_id_, static_cast<long long>(m.msg_id), pkt.src);
    return cm.lapi_pkt_rx;
  }

  // Copies incoming fragment bytes into the assembly buffer; returns the
  // copy charge. Duplicate fragments (retransmits) are ignored.
  auto ingest = [&](Assembly& as, std::int64_t offset,
                    std::span<const std::byte> bytes) -> Time {
    const auto len = static_cast<std::int64_t>(bytes.size());
    if (len == 0) return 0;
    // Bounds-validate the header fields before any dedup/credit state
    // mutates: a mangled offset must not scribble past the landing buffer,
    // and must not be remembered as ingested (the origin's retransmit of
    // the true fragment would then dedup against garbage). Dropped packets
    // recover through the normal retransmission path.
    if (offset < 0 || offset + len < offset || offset + len > as.total)
        [[unlikely]] {
      progress_.engine().counters().bump("lapi.malformed_drop");
      SPLAP_DEBUG(now,
                  "lapi task %d: malformed fragment from %d "
                  "(offset=%lld len=%lld total=%lld), dropped",
                  task_id_, pkt.src, static_cast<long long>(offset),
                  static_cast<long long>(len),
                  static_cast<long long>(as.total));
      return 0;
    }
    if (as.seen.count(offset) != 0) return 0;
    as.seen[offset] = len;
    ++as.pkts_ingested;  // one distinct wire packet landed (credit grant)
    SPLAP_REQUIRE(as.buffer != nullptr, "assembly without a buffer");
    if (as.hdr != nullptr && as.hdr->strided &&
        as.kind == PktKind::kPutHdr) {
      // Putv: the packed wire stream scatters straight into the strided
      // destination region (the future-work zero-intermediate-copy path).
      const WireMeta& h = *as.hdr;
      std::int64_t off = offset;
      const std::byte* s = bytes.data();
      std::int64_t left = len;
      while (left > 0) {
        const std::int64_t col = off / h.s_row_bytes;
        const std::int64_t in_col = off % h.s_row_bytes;
        const std::int64_t chunk = std::min(left, h.s_row_bytes - in_col);
        std::memcpy(as.buffer + col * h.s_ld + in_col, s,
                    static_cast<std::size_t>(chunk));
        off += chunk;
        s += chunk;
        left -= chunk;
      }
    } else {
      std::memcpy(as.buffer + offset, bytes.data(),
                  static_cast<std::size_t>(len));
    }
    as.received += len;
    // Scatter-direct (zero-copy protocol): the adapter landed the payload
    // straight into the registered target region, so the dispatcher never
    // copies it out of the adapter buffers — no copy charge on this end.
    if (as.hdr != nullptr && as.hdr->zero_copy) return 0;
    return cm.copy_time(len);
  };

  switch (m.kind) {
    case PktKind::kPutHdr:
    case PktKind::kAmHdr: {
      if (m.total_len < 0) [[unlikely]] {
        // A negative message length is a mangled header, not a real
        // transfer: admitting it would open a partial that can never
        // complete (received counts up from zero, total is negative).
        progress_.engine().counters().bump("lapi.malformed_drop");
        return cm.lapi_pkt_rx;
      }
      const auto key = std::pair<int, std::int64_t>{pkt.src, m.msg_id};
      auto at = assemblies_.find(key);
      if (at == assemblies_.end()) {
        if (!admit_partial(now)) {
          // Partial table full: shed the whole message (graceful
          // degradation, not abort) and tell the origin to retry soon.
          progress_.engine().counters().bump("lapi.partials_shed");
          send_nack(pkt.src, m.msg_id, m.epoch);
          return cm.lapi_pkt_rx;
        }
        at = assemblies_.emplace(key, Assembly{}).first;
        ++live_partials_;
      }
      Assembly& as = at->second;
      if (as.completed) {
        // Retransmitted header of a finished message: re-ack, do not
        // re-deliver (the user may already have reused the buffer).
        const bool done_ok = !as.completion || as.completion_ran;
        send_ack(pkt.src, m.msg_id, true,
                 done_ok && as.hdr->cmpl_cntr != nullptr, as.hdr->org_cntr,
                 as.hdr->cmpl_cntr, as.pkts_ingested, m.epoch,
                 now + cm.lapi_ack);
        return cm.lapi_ack;
      }
      as.last_update = now;
      if (as.has_header) return cm.lapi_pkt_rx;  // duplicate, still assembling
      nacked_.erase(key);  // fresh progress: re-arm NACK for this message
      as.has_header = true;
      if (pkt.data.empty()) ++as.pkts_ingested;  // payload-less header packet
      as.kind = m.kind;
      as.total = m.total_len;
      as.hdr = std::static_pointer_cast<const WireMeta>(pkt.meta);
      if (m.zero_copy) {
        progress_.engine().counters().bump("lapi.scatter_direct");
      }
      Time c = progress_.pipelined() ? cm.lapi_dispatch_pipelined
                                     : cm.lapi_dispatch;
      if (m.kind == PktKind::kAmHdr) {
        // The header handler executes after the demultiplex work; anything
        // it sends queues behind that charge on the dispatcher timeline.
        progress_.set_busy_until(std::max(progress_.busy_until(), now + c));
        AmDelivery d{pkt.src, std::span<const std::byte>(m.uhdr), m.total_len};
        AmReply r = env_.run_handler(m.handler_id, d);
        SPLAP_REQUIRE(r.buffer != nullptr || m.total_len == 0,
                      "header handler returned no buffer for a data message");
        as.buffer = r.buffer;
        as.completion = std::move(r.completion);
        c += r.header_cost + cm.lapi_deliver;
      } else {
        as.buffer = m.tgt_addr;
        c += cm.lapi_deliver;
      }
      c += ingest(as, 0, pkt.data);
      for (auto& staged : as.staged) {
        const WireMeta& sm = staged.meta_as<WireMeta>();
        c += ingest(as, sm.offset, staged.data);
      }
      as.staged.clear();
      if (as.received == as.total) {
        as.completed = true;
        --live_partials_;
        progress_.defer(now + c, [this, key] {
          finish_assembly(key.first, key.second);
        });
      } else {
        maybe_emit_credit(pkt.src, m.msg_id, as, m.epoch);
      }
      return c;
    }

    case PktKind::kData: {
      const auto key = std::pair<int, std::int64_t>{pkt.src, m.msg_id};
      auto at = assemblies_.find(key);
      if (at == assemblies_.end()) {
        if (!admit_partial(now)) {
          progress_.engine().counters().bump("lapi.partials_shed");
          send_nack(pkt.src, m.msg_id, m.epoch);
          return cm.lapi_pkt_rx;
        }
        at = assemblies_.emplace(key, Assembly{}).first;
        ++live_partials_;
      }
      Assembly& as = at->second;
      if (as.completed) {
        const bool done_ok = !as.completion || as.completion_ran;
        send_ack(pkt.src, m.msg_id, true,
                 done_ok && as.hdr && as.hdr->cmpl_cntr != nullptr,
                 as.hdr ? as.hdr->org_cntr : nullptr,
                 as.hdr ? as.hdr->cmpl_cntr : nullptr, as.pkts_ingested,
                 m.epoch, now + cm.lapi_ack);
        return cm.lapi_ack;
      }
      as.last_update = now;
      if (!as.has_header) {
        // Out-of-order: data beat the header packet. Stage until the header
        // handler supplies the landing buffer (Section 2.1). Staged packets
        // do not count toward pkts_ingested until they actually land — the
        // grant must never exceed what ingest has deduplicated.
        progress_.engine().counters().bump("lapi.staged");
        as.staged.push_back(std::move(pkt));
        return m.zero_copy ? cm.rdma_pkt_rx : cm.lapi_pkt_rx;
      }
      const std::int64_t before = as.pkts_ingested;
      // Zero-copy fragments retire a steering descriptor instead of paying
      // the dispatcher's per-packet receive path.
      Time c = (m.zero_copy ? cm.rdma_pkt_rx : cm.lapi_pkt_rx) +
               ingest(as, m.offset, pkt.data);
      if (as.pkts_ingested > before) {
        nacked_.erase(key);  // fresh progress: re-arm NACK for this message
      }
      if (as.received == as.total) {
        as.completed = true;
        --live_partials_;
        progress_.defer(now + c, [this, key] {
          finish_assembly(key.first, key.second);
        });
      } else {
        maybe_emit_credit(pkt.src, m.msg_id, as, m.epoch);
      }
      return c;
    }

    case PktKind::kGetReq: {
      const auto key = std::pair<int, std::int64_t>{pkt.src, m.msg_id};
      Assembly& as = assemblies_[key];
      if (as.completed) {
        send_ack(pkt.src, m.msg_id, true, false, nullptr, nullptr,
                 as.pkts_ingested, m.epoch, now + cm.lapi_ack);
        return cm.lapi_ack;
      }
      nacked_.erase(key);
      as.completed = true;  // instant: a request, never a partial
      as.has_header = true;
      as.pkts_ingested = 1;
      as.hdr = std::static_pointer_cast<const WireMeta>(pkt.meta);
      const Time c = cm.lapi_dispatch + cm.lapi_deliver;
      progress_.defer(
          now + c, [this, origin = pkt.src, meta = as.hdr] {
            // Ack the request (the origin's retransmit timer covers it).
            send_ack(origin, meta->msg_id, true, false, nullptr, nullptr,
                     /*pkts=*/1, meta->epoch, progress_.engine().now());
            // Serve: the reply is an internal Put back to the origin whose
            // counter roles realize the Get semantics (Figure 1): the
            // reply's target counter is the get's org_cntr, the reply's
            // origin counter is the get's tgt_cntr.
            auto hdr = std::make_shared<WireMeta>();
            hdr->tgt_addr = meta->dst_addr;
            hdr->total_len = meta->total_len;
            hdr->tgt_cntr = meta->org_cntr;
            hdr->org_cntr = meta->tgt_cntr;
            hdr->get_reply = true;
            hdr->org_addr = meta->src_addr;  // registration key of the source
            std::shared_ptr<std::vector<std::byte>> data;
            if (meta->strided) {
              // Getv: ship the source with the origin's strided landing
              // descriptor.
              hdr->strided = true;
              hdr->s_row_bytes = meta->s_row_bytes;
              hdr->s_cols = meta->s_cols;
              hdr->s_ld = meta->s_ld;
              data = std::make_shared<std::vector<std::byte>>(
                  static_cast<std::size_t>(meta->total_len));
              StridedRegion src;
              src.base = const_cast<std::byte*>(meta->src_addr);
              src.row_bytes = meta->g_row_bytes;
              src.cols = meta->g_cols;
              src.ld_bytes = meta->g_ld;
              copy_strided_to_contig(src, data->data());
              // Gather-direct: when every gather run lines up exactly with
              // the reply's per-packet payload, or the source region is one
              // contiguous run, the adapter's scatter/gather engine streams
              // the runs straight from the source region — the packed
              // staging buffer (and its copy charge) disappears. Zero-copy
              // replies stream from the registered region unconditionally.
              const CostModel& scm = progress_.cost();
              const bool run_aligned =
                  meta->g_row_bytes == meta->g_ld ||
                  meta->g_row_bytes == scm.lapi_payload();
              const bool rdma_reply =
                  config_.rdma_enabled &&
                  meta->total_len >= config_.rdma_threshold;
              if (run_aligned || rdma_reply) {
                progress_.engine().counters().bump("lapi.gather_direct");
              } else {
                progress_.engine().counters().bump("lapi.gather_staged");
                progress_.set_busy_until(
                    std::max(progress_.engine().now(),
                             progress_.busy_until()) +
                    scm.copy_time(meta->total_len));
              }
            } else {
              data = std::make_shared<std::vector<std::byte>>(
                  meta->src_addr, meta->src_addr + meta->total_len);
            }
            const Status st =
                env_.send_get_reply(origin, std::move(hdr), std::move(data));
            SPLAP_REQUIRE(st == Status::kOk, "get reply send failed");
          });
      return c;
    }

    case PktKind::kRmwReq: {
      const auto key = std::pair<int, std::int64_t>{pkt.src, m.msg_id};
      nacked_.erase(key);
      const Time c = cm.lapi_dispatch;
      progress_.defer(
          now + c, [this, key,
                    meta = std::static_pointer_cast<const WireMeta>(pkt.meta),
                    origin = pkt.src] {
            std::int64_t prev;
            auto it = rmw_cache_.find(key);
            if (it != rmw_cache_.end()) {
              prev = it->second;  // duplicate request: do NOT re-execute
            } else {
              prev = *meta->rmw_var;
              switch (meta->rmw_op) {
                case RmwOp::kSwap: *meta->rmw_var = meta->rmw_in1; break;
                case RmwOp::kCompareAndSwap:
                  if (*meta->rmw_var == meta->rmw_in1) {
                    *meta->rmw_var = meta->rmw_in2;
                  }
                  break;
                case RmwOp::kFetchAndAdd: *meta->rmw_var += meta->rmw_in1; break;
                case RmwOp::kFetchAndOr: *meta->rmw_var |= meta->rmw_in1; break;
              }
              rmw_cache_[key] = prev;
            }
            auto resp = std::make_shared<WireMeta>();
            resp->kind = PktKind::kRmwResp;
            resp->epoch = epoch_;
            resp->dst_epoch = meta->epoch;
            resp->acked_msg = meta->msg_id;
            resp->rmw_prev = prev;
            resp->rmw_prev_out = meta->rmw_prev_out;
            resp->org_cntr = meta->org_cntr;
            net::Packet p = wire_.make_packet();
            p.src = task_id_;
            p.dst = origin;
            p.client = net::Client::kLapi;
            p.header_bytes =
                progress_.cost().lapi_header_bytes + kRmwRespDescBytes;
            p.meta = std::move(resp);
            wire_.transmit(std::move(p));
          });
      return c;
    }

    case PktKind::kCancel: {
      // The origin abandoned this message (gave up retransmitting): free the
      // incomplete partial now instead of waiting for the TTL sweep.
      const auto key = std::pair<int, std::int64_t>{pkt.src, m.acked_msg};
      auto at = assemblies_.find(key);
      if (at != assemblies_.end() && !at->second.completed) {
        SPLAP_DEBUG(now, "lapi task %d: cancel from %d reclaims partial %lld",
                    task_id_, pkt.src, static_cast<long long>(m.acked_msg));
        reclaim_partial(at);
      }
      nacked_.erase(key);
      return cm.lapi_pkt_rx;
    }

    // Origin-side packets are demultiplexed to the send engine before this
    // layer (keepalive probes too); they never reach the assembly path.
    case PktKind::kRmwResp:
    case PktKind::kAck:
    case PktKind::kNack:
    case PktKind::kCredit:
    case PktKind::kProbe:
    case PktKind::kProbeAck:
      break;
  }
  SPLAP_REQUIRE(false, "unknown packet kind");
  return 0;
}

void AssemblyEngine::finish_assembly(int origin, std::int64_t msg_id) {
  const auto key = std::pair<int, std::int64_t>{origin, msg_id};
  auto it = assemblies_.find(key);
  SPLAP_REQUIRE(it != assemblies_.end(), "finishing unknown assembly");
  Assembly& as = it->second;
  const WireMeta& h = *as.hdr;
  const bool want_done = h.cmpl_cntr != nullptr;

  if (h.get_reply) {
    env_.note_get_reply();
  }

  if (!as.completion) {
    as.completion_ran = true;
    progress_.bump(h.tgt_cntr);
    send_ack(origin, msg_id, /*data=*/true, /*done=*/want_done, h.org_cntr,
             h.cmpl_cntr, as.pkts_ingested, h.epoch,
             progress_.engine().now());
    progress_.notify();
  } else {
    // Data is in place: ack it now (fence semantics, Section 5.3.2), then
    // run the completion handler on a service thread; only after it returns
    // do the target counter and the DONE ack fire (Figure 1, Step 4).
    send_ack(origin, msg_id, /*data=*/true, /*done=*/false, h.org_cntr,
             h.cmpl_cntr, as.pkts_ingested, h.epoch,
             progress_.engine().now());
    env_.submit_completion([this, key](sim::Actor& svc_actor) {
      auto jt = assemblies_.find(key);
      SPLAP_REQUIRE(jt != assemblies_.end(),
                    "assembly vanished before completion");
      Assembly& a2 = jt->second;
      const WireMeta& h2 = *a2.hdr;
      auto completion = std::move(a2.completion);
      a2.completion = nullptr;
      env_.run_completion(completion, svc_actor);
      a2.completion_ran = true;
      progress_.bump(h2.tgt_cntr);
      if (h2.cmpl_cntr != nullptr) {
        send_ack(key.first, key.second, /*data=*/false, /*done=*/true,
                 h2.org_cntr, h2.cmpl_cntr, a2.pkts_ingested, h2.epoch,
                 progress_.engine().now());
      }
      progress_.notify();
    });
  }
  // Shed assembly bulk; keep the completed marker for duplicate suppression.
  as.staged.clear();
  as.staged.shrink_to_fit();
  as.seen.clear();
}

void AssemblyEngine::forget_origin(int origin) {
  const auto lo = std::pair<int, std::int64_t>{
      origin, std::numeric_limits<std::int64_t>::min()};
  for (auto it = assemblies_.lower_bound(lo);
       it != assemblies_.end() && it->first.first == origin;) {
    Assembly& as = it->second;
    if (as.completed && as.completion && !as.completion_ran) {
      // Completion job still queued on the service pool: let it finish
      // against this record. Its msg id stays burned for the new life; a
      // collision there would need the new life to issue that many ops
      // within one completion-pool latency of its first packet, which
      // virtual restart delays make impossible.
      ++it;
      continue;
    }
    if (!as.completed) {
      it = reclaim_partial(it);
    } else {
      nacked_.erase(it->first);
      it = assemblies_.erase(it);
    }
  }
  for (auto it = rmw_cache_.lower_bound(lo);
       it != rmw_cache_.end() && it->first.first == origin;) {
    it = rmw_cache_.erase(it);
  }
}

void AssemblyEngine::reclaim_peer_partials(int origin) {
  const auto lo = std::pair<int, std::int64_t>{
      origin, std::numeric_limits<std::int64_t>::min()};
  for (auto it = assemblies_.lower_bound(lo);
       it != assemblies_.end() && it->first.first == origin;) {
    if (!it->second.completed) {
      it = reclaim_partial(it);
    } else {
      ++it;
    }
  }
}

}  // namespace splap::lapi
