// Reliable-delivery core, shared by every protocol library in the tree.
//
// Two pieces live here:
//
//   ReliableChannel  the generation-numbered retransmit timer machinery —
//                    exponential backoff with an optional rto_max clamp and
//                    deterministic seeded jitter, Jacobson SRTT/RTTVAR
//                    estimation with Karn's rule, and the stale-timer
//                    suppression that keeps a re-armed record from being
//                    retransmitted by an invalidated timeout. Protocol-
//                    agnostic: what "retransmit" or "give up" means is the
//                    owning Sender's business. LAPI and MPL both layer on
//                    this one implementation (the paper's Section 5 layering:
//                    MPI as a sibling client of the same reliable transport).
//
//   SendEngine       LAPI's origin side: msg-id allocation, in-flight send
//                    records (the retransmission source — the real library's
//                    copy into the adapter DMA buffers, Section 6 item 3),
//                    packetization into header + data packets with end-to-end
//                    CRC stamping, the two-level DATA/DONE ack protocol, and
//                    retry-exhaustion failure completion.
//
// Invariant owned here: a send record is reclaimed exactly once — by the
// final ack, an RMW response, or retry exhaustion — and no timer fires into
// a reclaimed record (generation check; audited by the record ledger in
// SPLAP_AUDIT builds).
#pragma once

#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/audit.hpp"
#include "base/cost_model.hpp"
#include "base/rng.hpp"
#include "lapi/progress.hpp"
#include "lapi/protocol.hpp"
#include "lapi/select.hpp"
#include "net/delivery.hpp"

namespace splap::lapi {

/// Per-record retry bookkeeping embedded in the owner's send record.
struct RetryState {
  int retries = 0;
  std::uint64_t timeout_gen = 0;  // invalidates stale timeout events
};

/// Retransmission policy of one channel. LAPI maps its Config here (the
/// adaptive fields gated on adaptive_timeout); MPL uses the fixed timeout
/// with the backoff clamp armed.
struct RetryPolicy {
  Time base_rto = milliseconds(4.0);
  int max_retries = 12;
  /// Jacobson initial-RTO estimation + deterministic backoff jitter.
  bool adaptive = false;
  /// Cap the doubled retry delay at rto_max (without it a dozen doublings
  /// of a multi-ms base reach minutes of virtual time).
  bool clamp_backoff = false;
  Time rto_min = 0;
  Time rto_max = 0;
  double backoff_jitter = 0.0;
};

class ReliableChannel {
 public:
  /// The owner of the send records this channel times. retry_state returns
  /// nullptr once a record has been reclaimed; the remaining hooks are only
  /// invoked for live records.
  class Sender {
   public:
    virtual RetryState* retry_state(std::int64_t id) = 0;
    /// Fully acknowledged (no retransmission needed, record merely awaiting
    /// reclamation); a settled record's timer expires silently.
    virtual bool settled(std::int64_t id) = 0;
    virtual void retransmit(std::int64_t id) = 0;
    virtual void give_up(std::int64_t id) = 0;

   protected:
    ~Sender() = default;
  };

  /// `scope` prefixes the instrumentation counters ("<scope>.retransmits",
  /// "<scope>.stale_timeouts", "<scope>.retransmit_giveup"). `alive` guards
  /// timer events against outliving the owning protocol context.
  ReliableChannel(sim::Engine& engine, Sender& sender, RetryPolicy policy,
                  const std::string& scope, std::uint64_t jitter_seed,
                  std::weak_ptr<char> alive);

  /// (Re-)arm the retransmit timer of record `id`. Bumps the record's
  /// timeout generation, invalidating every previously scheduled timer.
  void arm(std::int64_t id, Time delay);

  /// First retransmit timeout for a fresh message: adaptive SRTT/RTTVAR
  /// estimate when armed (and a sample exists), else the fixed base RTO.
  Time initial_rto() const;

  /// Feed an ack round-trip into the Jacobson estimator. Callers enforce
  /// Karn's rule (only never-retransmitted messages sample).
  void on_rtt_sample(Time sample);

  /// Current smoothed RTT estimate (0 until the first sample).
  Time srtt() const { return srtt_; }
  int max_retries() const { return policy_.max_retries; }

 private:
  void on_timer(std::int64_t id, std::uint64_t gen, Time delay);

  sim::Engine& engine_;
  Sender& sender_;
  RetryPolicy policy_;
  // Resolved once at construction: timer paths fire per retransmission and
  // must not pay a counter-name scan each time.
  CounterSet::Handle ctr_retransmits_;
  CounterSet::Handle ctr_stale_;
  CounterSet::Handle ctr_giveup_;
  Rng jitter_rng_;  // deterministic backoff jitter (seeded per task)
  std::weak_ptr<char> alive_;

  // Jacobson SRTT/RTTVAR state (Karn's rule keeps retransmitted messages
  // out of the sample stream; callers enforce it).
  bool have_rtt_ = false;
  Time srtt_ = 0;
  Time rttvar_ = 0;
};

/// Phi-accrual-style suspicion estimator over one peer's packet inter-arrival
/// rhythm (phi-accrual lineage; same adaptive spirit as the Jacobson RTO).
/// Each admitted packet contributes one inter-arrival gap to a sliding
/// window; suspicion is the current silence measured against the smoothed
/// expectation (mean + 2*stddev). Steady traffic collapses the variance, so
/// a peer with a tight rhythm is suspected quickly when it goes quiet, while
/// a peer with naturally bursty traffic earns a wide tolerance — which is
/// exactly what separates a straggler from a corpse. Pure virtual-time
/// arithmetic: no randomness, no wall clock.
class AccrualEstimator {
 public:
  /// Inter-arrival samples required before suspicion() means anything; below
  /// this the detector falls back to the legacy fixed-miss rule.
  static constexpr int kWarmupSamples = 3;

  explicit AccrualEstimator(int window = 16)
      : window_(window < 2 ? 2 : window),
        gaps_(static_cast<std::size_t>(window_), 0.0) {}

  /// Record an arrival at virtual time `now`.
  void observe(Time now) {
    if (last_ != kNoTime && now >= last_) {
      const double gap = static_cast<double>(now - last_);
      if (count_ == window_) {
        const double old = gaps_[static_cast<std::size_t>(head_)];
        sum_ -= old;
        sumsq_ -= old * old;
      } else {
        ++count_;
      }
      gaps_[static_cast<std::size_t>(head_)] = gap;
      head_ = head_ + 1 == window_ ? 0 : head_ + 1;
      sum_ += gap;
      sumsq_ += gap * gap;
    }
    last_ = now;
  }

  /// Silence since the last arrival over the smoothed gap expectation.
  /// 0 while warming up or when an arrival just landed; grows monotonically
  /// with silence. The +1 floor keeps a fully collapsed variance (perfectly
  /// periodic traffic) from dividing by zero.
  double suspicion(Time now) const {
    if (!warmed_up() || last_ == kNoTime || now <= last_) return 0.0;
    const double silence = static_cast<double>(now - last_);
    return silence / (mean() + 2.0 * stddev() + 1.0);
  }

  bool warmed_up() const { return count_ >= kWarmupSamples; }
  int samples() const { return count_; }
  Time last_heard() const { return last_; }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
  double stddev() const {
    if (count_ == 0) return 0.0;
    const double m = mean();
    const double var = sumsq_ / count_ - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;  // round-off can dip negative
  }
  /// Forget everything (peer incarnation change): the new life has its own
  /// rhythm.
  void reset() {
    head_ = 0;
    count_ = 0;
    last_ = kNoTime;
    sum_ = 0.0;
    sumsq_ = 0.0;
  }

 private:
  int window_;
  std::vector<double> gaps_;  // ring buffer of inter-arrival gaps
  int head_ = 0;
  int count_ = 0;
  Time last_ = kNoTime;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
};

/// Per-peer packet-credit pool, origin side (the real LAPI's token scheme
/// over the TB3 adapter's finite buffering). A message leases one credit per
/// wire packet before its first transmission; leases return incrementally as
/// the target reports ingested packets (cumulative ack_pkts on acks/kCredit)
/// and in full when the send record is reclaimed. A message larger than the
/// whole window may start only when the peer's pool is completely idle,
/// taking the balance negative — so a below-window pool always implies a
/// live record whose reclamation will release credits, which is the
/// deadlock-freedom argument (see DESIGN.md §6): credit restoration rides
/// the record-reclamation invariant, never on any single packet surviving.
class CreditGate {
 public:
  explicit CreditGate(std::int64_t window) : window_(window) {}
  bool enabled() const { return window_ > 0; }
  std::int64_t window() const { return window_; }
  std::int64_t available(int peer) const {
    auto it = credits_.find(peer);
    return it == credits_.end() ? window_ : it->second;
  }
  bool can_send(int peer, std::int64_t pkts) const {
    const std::int64_t avail = available(peer);
    return avail >= pkts || avail == window_;
  }
  void consume(int peer, std::int64_t pkts) {
    credits_.try_emplace(peer, window_).first->second -= pkts;
  }
  void release(int peer, std::int64_t pkts) { credits_.at(peer) += pkts; }

 private:
  std::int64_t window_;
  std::map<int, std::int64_t> credits_;
};

/// Origin-side record of an in-flight data-bearing LAPI message, kept until
/// the data ack arrives.
struct SendRecord {
  int target = -1;
  PktKind kind = PktKind::kPutHdr;
  std::shared_ptr<WireMeta> hdr_meta;
  std::shared_ptr<std::vector<std::byte>> data;  // full message payload
  bool data_acked = false;
  bool done_acked = false;  // only tracked when a DONE ack was requested
  bool needs_done = false;
  /// Large (zero-copy) send: the origin counter fires at the data ack, when
  /// the pinned user buffer becomes reusable.
  bool org_pending = false;
  RetryState retry;
  /// Injection time of the (first) transmission; the data ack of a message
  /// that was never retransmitted yields an RTT sample (Karn's rule).
  Time sent_at = 0;

  // --- flow control (inert unless Config::credit_window > 0) --------------
  /// Wire packets this message occupies (header + data fragments). Credit
  /// unit: retransmissions ride the original lease.
  std::int64_t pkts = 1;
  /// Credits still leased from the per-peer gate.
  std::int64_t credits_held = 0;
  /// Cumulative target-ingest count already credited back (grants are
  /// cumulative, so duplicated/reordered updates are idempotent).
  std::int64_t credits_granted = 0;
  /// Parked in the per-peer credit wait queue; not yet transmitted.
  bool queued = false;
  /// One NACK-driven fast retransmit per recovery round (reset by grant
  /// progress or an RTO retransmit, so overflow storms cannot multiply).
  bool nack_rtx = false;
};

class SendEngine final : public ReliableChannel::Sender {
 public:
  SendEngine(net::Delivery& wire, ProgressEngine& progress, int task_id,
             const Config& config, bool checksums);

  /// Inject a validated message: allocates the msg id, charges the call (or
  /// queues behind the dispatcher in handler context), records the send for
  /// retransmission and arms its timer. The facade has already validated
  /// the target and the library state.
  void submit(PktKind kind, int target, std::shared_ptr<WireMeta> hdr,
              std::shared_ptr<std::vector<std::byte>> data,
              Time extra_call_cost);

  /// Dispatcher demux entry points (return the packet processing cost).
  Time on_ack(const net::Packet& pkt);
  Time on_rmw_resp(const net::Packet& pkt);
  /// The target's adapter dropped a packet of one of our messages (RX
  /// overflow) or shed it at the partial table: fast retransmit without
  /// waiting out the RTO.
  Time on_nack(const net::Packet& pkt);
  /// Standalone credit update: cumulative ingested-packet count for a
  /// still-incomplete message, releasing part of its lease mid-stream.
  Time on_credit(const net::Packet& pkt);

  /// A get reply finished landing at the origin (assembly side calls this;
  /// the caller is responsible for any notify that follows).
  void note_get_reply() { --outstanding_gets_; }

  int outstanding_data() const { return outstanding_data_; }
  int outstanding_gets() const { return outstanding_gets_; }
  std::size_t pending_sends() const { return sends_.size(); }
  Time srtt() const { return channel_.srtt(); }
  bool checksums() const { return checksums_; }
  /// The protocol-decision layer (and its registration cache). The facade
  /// consults classify() to plan strided gather charges; tests and GA read
  /// the cache statistics.
  ProtocolSelector& selector() { return selector_; }
  const ProtocolSelector& selector() const { return selector_; }
  /// Flow-control introspection (tests): credits available toward `peer`
  /// and sends parked awaiting credits.
  std::int64_t credits_available(int peer) const {
    return credits_.available(peer);
  }
  std::size_t credit_queued() const {
    std::size_t n = 0;
    for (const auto& [peer, q] : credit_waitq_) n += q.size();
    return n;
  }
  /// True when every remaining record has exhausted its retries (term's
  /// quiesce loop stops waiting on such records).
  bool all_exhausted() const;

  // --- crash-stop peer failure (tentpole of the recovery subsystem) --------

  /// Incarnation epoch of the owning context; stamped into every packet this
  /// engine originates itself (data fragments copy the facade-stamped
  /// header). Defaults to 0, the only epoch of a never-crashed run.
  void set_epoch(std::int64_t e) { epoch_ = e; }

  /// A keepalive probe arrived: reply immediately (header-only, dispatcher
  /// cost only — same class of traffic as a NACK).
  Time on_probe(const net::Packet& pkt);

  /// Any packet from `src` was admitted: the peer is demonstrably alive.
  /// Feeds the accrual estimator, clears the keepalive miss count, heals a
  /// *suspected* peer (un-quarantining its parked sends) and un-latches a
  /// dead verdict (the peer reconnected, or congestion was misjudged).
  void note_heard(int src);

  /// Is `peer` currently latched dead?
  bool peer_failed(int peer) const { return failed_peers_.count(peer) != 0; }

  /// Is `peer` in the suspected (quarantined, not dead) state?
  bool peer_suspected(int peer) const {
    return suspected_.count(peer) != 0;
  }

  /// Sends currently quarantined behind suspected peers (introspection).
  std::size_t suspect_queued() const {
    std::size_t n = 0;
    for (const auto& [peer, q] : suspectq_) n += q.size();
    return n;
  }

  /// Declare `peer` dead (retry exhaustion, keepalive timeout, or gossip
  /// from another task's detection): fail over every queued and pending
  /// record toward it at once with kPeerFailed, reclaim their credit
  /// leases, and fire the peer-failure hook once per latch transition.
  /// `direct` records the evidence class for the hook: true for first-hand
  /// proof (retry exhaustion, fixed-miss keepalive), false for an
  /// accrual-only verdict — gossip of the latter needs corroboration.
  void fail_peer(int peer, bool direct = true);

  /// The peer restarted with incarnation `new_epoch`. Records addressed to
  /// an older incarnation can never complete (the new life rejects their
  /// dst_epoch), so fail them over now; records already addressed to the
  /// new life ride through untouched — the very packet that triggered the
  /// adoption may be their ack. Clears the dead latch: the new life is
  /// reachable. Deliberately does NOT fire the peer-failure hook: rebirth
  /// is not a death declaration, and the stale records' own kPeerFailed
  /// completions carry the news to their waiters.
  void on_peer_reborn(int peer, std::int64_t new_epoch);

  /// Invoked in dispatcher context on each fresh dead-peer latch (the
  /// facade wires the LAPI_Init error handler and failure gossip here).
  /// The bool is fail_peer's `direct` evidence class.
  void set_peer_failure_hook(std::function<void(int, bool)> hook) {
    peer_failure_hook_ = std::move(hook);
  }

  /// Crash teardown only (Context::term on a poisoned actor): the records
  /// and leases still live belong to the epoch that just died — drop them
  /// from the audit ledgers so the crash itself doesn't read as a leak.
  /// Healthy teardown never calls this; its ledgers must drain naturally.
  void forgive_crash_teardown();

 private:
  // ReliableChannel::Sender hooks.
  RetryState* retry_state(std::int64_t id) override;
  bool settled(std::int64_t id) override;
  void retransmit(std::int64_t id) override;
  void give_up(std::int64_t id) override;

  /// Inject the message's wire packets (header + data fragments), optionally
  /// skipping the first `skip_first` — the NACK fast path skips the packets
  /// the target's cumulative grant already covers, so a recovery burst into
  /// a still-tight adapter carries fresh packets instead of duplicates. The
  /// skip is a heuristic (grants count ingested packets, which is the wire
  /// prefix only under in-order arrival); the RTO path always resends
  /// everything, so a wrong guess costs time, never correctness.
  void transmit_packets(const SendRecord& rec, std::int64_t skip_first = 0);
  void transmit_probe(const SendRecord& rec);
  /// Abandon one record: complete the op with `reason` (kPeerFailed for a
  /// dead peer, kResourceExhausted otherwise) — unblock every counter that
  /// has not fired yet (marked failed), release the outstanding bookkeeping
  /// and reclaim the record. Never hangs a waiter. Also emits a best-effort
  /// kCancel so the target reclaims any partial assembly the abandoned
  /// message left behind.
  void fail_send(std::int64_t msg_id, Status reason);
  /// Keepalive: (re-)arm the probe tick while records are pending.
  void arm_keepalive();
  void keepalive_tick();
  /// healthy -> suspected: quarantine every record toward `peer` (freeze its
  /// RTO by bumping the timeout generation, return its credit lease, park it
  /// in the suspect queue) instead of failing it. Fresh transitions bump
  /// lapi.peer_suspected.
  void suspect_peer(int peer);
  /// suspected -> healthy (any contact): restart the quarantined records —
  /// re-lease credits, retransmit (not charged against the retry budget) and
  /// re-arm their timers. Bumps lapi.peer_healed.
  void heal_peer(int peer);

  /// Wire packets a message of this shape occupies (the credit unit).
  /// Both this and transmit_packets read the same frag_plan, so the lease
  /// and the transmission can never disagree.
  std::int64_t packet_count(PktKind kind, const WireMeta& hdr,
                            std::int64_t len) const;
  /// Arm the first RTO of `id`, scaled by the injection backlog + wire time.
  void arm_initial(std::int64_t id, std::int64_t len);
  void lease_credits(SendRecord& rec);
  /// Return up to `n` leased credits to the peer pool, drain its wait queue
  /// and wake parked senders. No-op on unleased records.
  void credit_return(SendRecord& rec, std::int64_t n);
  /// Apply a cumulative ingest report (ack_pkts) to a record's lease.
  void apply_grant(SendRecord& rec, std::int64_t granted);
  void release_credits(SendRecord& rec) { credit_return(rec, rec.credits_held); }
  /// Start queued sends toward `peer` while credits allow, FIFO.
  void drain_credit_waitq(int peer);

  net::Delivery& wire_;
  ProgressEngine& progress_;
  const int task_id_;
  const Config config_;
  /// Stamp/verify end-to-end payload CRCs (armed when the fabric injects
  /// corruption; off otherwise so the clean path does no checksum work).
  const bool checksums_;

  /// Protocol decision layer; owns this context's registration cache.
  ProtocolSelector selector_;

  std::int64_t msg_seq_ = 0;
  std::map<std::int64_t, SendRecord> sends_;
  int outstanding_data_ = 0;
  int outstanding_gets_ = 0;
  CreditGate credits_;
  /// Handler-context sends that could not lease credits, FIFO per peer;
  /// drained as grants/reclamations return credits.
  std::map<int, std::deque<std::int64_t>> credit_waitq_;
  ReliableChannel channel_;

  // --- crash-stop peer failure state ---------------------------------------
  std::int64_t epoch_ = 0;
  /// Peers latched dead; cleared by note_heard when the peer reconnects.
  std::set<int> failed_peers_;
  std::function<void(int, bool)> peer_failure_hook_;
  /// Keepalive observation window per probed peer: `heard` is set by any
  /// admitted packet from the peer and consumed (reset) each tick.
  struct PeerHealth {
    bool heard = false;
    int misses = 0;
  };
  std::map<int, PeerHealth> health_;
  bool keepalive_armed_ = false;

  // --- gray-failure detection (accrual keepalive) ---------------------------
  /// Accrual detector active: keepalive configured and not forced legacy.
  /// Resolved once — note_heard sits on the per-packet admit path and must
  /// stay a cheap early-out when the detector is off (the default).
  const bool accrual_enabled_;
  /// Inter-arrival estimator per heard peer (accrual mode only).
  std::map<int, AccrualEstimator> accrual_;
  /// Peers in the suspected (quarantined) state: not failed, sends parked.
  std::set<int> suspected_;
  /// Records quarantined behind a suspected peer, FIFO. Separate from
  /// credit_waitq_ so mid-quarantine credit returns cannot restart them;
  /// only heal_peer (or fail_peer) drains this queue.
  std::map<int, std::deque<std::int64_t>> suspectq_;
#ifdef SPLAP_AUDIT
  /// Shadow ledger of live send records: double-reclaim or a timer/ack
  /// touching a reclaimed record aborts at the corrupting operation.
  audit::LiveSet send_ledger_{"lapi send record"};
  /// Shadow ledger of live credit leases: a record releasing more credits
  /// than it holds, or releasing after its lease fully returned, aborts at
  /// the corrupting operation (conservation of the per-peer window).
  audit::LiveSet credit_ledger_{"lapi credit lease"};
#endif
};

}  // namespace splap::lapi
