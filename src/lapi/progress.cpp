#include "lapi/progress.hpp"

#include <algorithm>
#include <utility>

namespace splap::lapi {

// ---------------------------------------------------------------------------
// Library entry/exit: polling progress + warm-call model
// ---------------------------------------------------------------------------

void ProgressEngine::enter_library() {
  if (sim::Actor::current() == nullptr) return;  // handler context
  ++in_library_;
  if (!interrupt_mode_ && !backlog_.empty()) {
    while (!backlog_.empty()) {
      rx_q_.push_back(std::move(backlog_.front()));
      backlog_.pop_front();
    }
    schedule_pump(/*charge_interrupt=*/false);
  }
}

void ProgressEngine::exit_library() {
  if (sim::Actor::current() == nullptr) return;
  --in_library_;
  last_lib_exit_ = engine_.now();
}

Time ProgressEngine::call_entry_cost() const {
  return engine_.now() == last_lib_exit_ ? cost_.lapi_call_warm
                                         : cost_.lapi_call;
}

void ProgressEngine::set_interrupt_mode(bool on) {
  const bool was = interrupt_mode_;
  interrupt_mode_ = on;
  if (!was && interrupt_mode_ && !backlog_.empty()) {
    // Packets parked while polling-without-polls: the first interrupt after
    // arming delivers them.
    while (!backlog_.empty()) {
      rx_q_.push_back(std::move(backlog_.front()));
      backlog_.pop_front();
    }
    schedule_pump(/*charge_interrupt=*/true);
  }
}

// ---------------------------------------------------------------------------
// Deferred effects / counters
// ---------------------------------------------------------------------------

void ProgressEngine::defer(Time at, std::function<void()> fn) {
  ++pending_effects_;
  engine_.schedule_at(
      at, [this, w = std::weak_ptr<char>(alive_), fn = std::move(fn)] {
        if (w.expired()) return;
        --pending_effects_;
        fn();
        notify();
      });
}

void ProgressEngine::bump(Counter* c, std::int64_t by) {
  if (c == nullptr) return;
  c->value_ += by;
  notify();
}

void ProgressEngine::bump_failed(Counter* c) {
  if (c == nullptr) return;
  c->value_ += 1;
  c->failed_ += 1;
  notify();
}

void ProgressEngine::bump_peer_failed(Counter* c) {
  if (c == nullptr) return;
  c->value_ += 1;
  c->failed_ += 1;
  c->peer_failed_ += 1;
  notify();
}

// ---------------------------------------------------------------------------
// Dispatcher pump
// ---------------------------------------------------------------------------

void ProgressEngine::on_delivery(net::Packet&& pkt) {
  ctr_pkts_rx_.bump();
  if (!progress_allowed()) {
    // Polling mode, task outside the library: no progress (Section 2.1).
    backlog_.push_back(std::move(pkt));
    ctr_backlogged_.bump();
    return;
  }
  rx_q_.push_back(std::move(pkt));
  // A task blocked inside a LAPI call polls the adapter even in interrupt
  // mode; the interrupt is only taken when the CPU is off running user code.
  schedule_pump(/*charge_interrupt=*/interrupt_mode_ && in_library_ == 0);
}

void ProgressEngine::schedule_pump(bool charge_interrupt) {
  if (pump_scheduled_) return;
  const Time now = engine_.now();
  Time start = std::max(now, busy_until_);
  if (charge_interrupt && busy_until_ <= now && now >= linger_until_) {
    // Dispatcher was idle AND its post-drain polling window has expired: a
    // fresh interrupt is taken. Packets landing while it is busy or still
    // lingering are absorbed without one (Section 5.3.1).
    start += cost_.interrupt_cost;
    ctr_interrupts_.bump();
  }
  pump_scheduled_ = true;
  defer(start, [this] {
    pump_scheduled_ = false;
    pump();
  });
}

void ProgressEngine::pump() {
  if (rx_q_.empty()) return;
  if (engine_.now() < busy_until_) {
    schedule_pump(false);
    return;
  }
  net::Packet pkt = std::move(rx_q_.front());
  rx_q_.pop_front();
  // A packet handled while the dispatcher is already hot (back-to-back with
  // earlier traffic) skips the full demultiplex entry (Section 5.3.1).
  pipelined_ = engine_.now() <= linger_until_;
  const Time cost_of_pkt = sink_.process_packet(pkt);
  busy_until_ = engine_.now() + cost_of_pkt;
  linger_until_ = busy_until_ + cost_.dispatch_linger;
  if (!rx_q_.empty()) schedule_pump(false);
}

}  // namespace splap::lapi
