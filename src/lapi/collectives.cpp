// Ordering and bootstrap collectives of the Context facade: LAPI_Fence,
// LAPI_Gfence (dissemination barrier over handler id 0), LAPI_Address_init,
// and the per-machine Universe registry that stands in for the out-of-band
// PSSP job-start infrastructure of the real SP.
#include "lapi/context.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "base/log.hpp"

namespace splap::lapi {

namespace {

/// Payload of the internal dissemination-barrier pulse (handler id 0).
struct BarrierPulse {
  std::int64_t seq;
  int round;
};

}  // namespace

// ---------------------------------------------------------------------------
// Universe: per-machine context registry (the out-of-band bootstrap channel
// the PSSP job-start infrastructure provides on the real SP).
// ---------------------------------------------------------------------------

struct Context::Universe {
  net::Machine* machine = nullptr;
  std::vector<Context*> ctxs;
  int attached = 0;

  struct Slot {
    std::vector<void*> addrs;
    int count = 0;
    bool done = false;
  };
  std::vector<Slot> slots;

  // splap-lint: allow(os-sync): guards the out-of-band bootstrap registry
  static std::mutex& mu() {
    // splap-lint: allow(os-sync): PSSP job-start stand-in, not simulated state
    static std::mutex m;
    return m;
  }
  // splap-lint: allow(pointer-key): lookup/erase-only registry under mu()
  static std::map<net::Machine*, std::unique_ptr<Universe>>& all() {
    // splap-lint: allow(pointer-key): never iterated; key order unobservable
    static std::map<net::Machine*, std::unique_ptr<Universe>> m;
    return m;
  }

  static Universe& of(net::Machine& machine) {
    // splap-lint: allow(os-sync): bootstrap registry access, trace-neutral
    std::lock_guard<std::mutex> lock(mu());
    auto& u = all()[&machine];
    if (!u) {
      u = std::make_unique<Universe>();
      u->machine = &machine;
      u->ctxs.resize(static_cast<std::size_t>(machine.tasks()), nullptr);
    }
    return *u;
  }

  // attach/detach run on task threads that may execute concurrently under
  // the worker lanes, so the shared registry state (the attached count and
  // the ctxs slots) is guarded by the same out-of-band bootstrap mutex.
  void attach(Context* c) {
    // splap-lint: allow(os-sync): bootstrap registry access, trace-neutral
    std::lock_guard<std::mutex> lock(mu());
    auto& slot = ctxs[static_cast<std::size_t>(c->task_id())];
    SPLAP_REQUIRE(slot == nullptr, "duplicate LAPI_Init on a task");
    slot = c;
    ++attached;
  }

  void detach(Context* c) {
    // splap-lint: allow(os-sync): bootstrap registry access, trace-neutral
    std::lock_guard<std::mutex> lock(mu());
    ctxs[static_cast<std::size_t>(c->task_id())] = nullptr;
    if (--attached == 0) {
      all().erase(machine);  // self-destructs; do not touch *this after
    }
  }
};

Context::Universe& Context::universe() { return Universe::of(node_.machine()); }

void Context::init_collectives() {
  // Handler id 0 is reserved for the internal gfence barrier pulse.
  handlers_.push_back([](Context& ctx, const AmDelivery& d) -> AmReply {
    SPLAP_REQUIRE(d.uhdr.size() == sizeof(BarrierPulse),
                  "malformed barrier pulse");
    BarrierPulse p;
    std::memcpy(&p, d.uhdr.data(), sizeof p);
    ++ctx.barrier_got_[{p.seq, p.round}];
    ctx.notify();
    AmReply r;
    r.header_cost = nanoseconds(300);
    return r;
  });

  universe().attach(this);
}

void Context::detach_universe() { universe().detach(this); }

// ---------------------------------------------------------------------------
// Ordering
// ---------------------------------------------------------------------------

void Context::fence() {
  sim::Actor* a = sim::Actor::current();
  SPLAP_REQUIRE(a != nullptr, "LAPI_Fence must run in a task context");
  enter_library();
  a->compute(call_entry_cost());
  while (send_.outstanding_data() > 0 || send_.outstanding_gets() > 0) {
    progress_.waiters().add(*a);
    a->suspend("lapi-fence");
  }
  exit_library();
}

Status Context::gfence() {
  sim::Actor* a = sim::Actor::current();
  SPLAP_REQUIRE(a != nullptr, "LAPI_Gfence must run in a task context");
  fence();
  const int n = num_tasks();
  const std::int64_t seq = barrier_seq_++;
  if (n == 1) return Status::kOk;
  // Degraded termination: when a barrier partner is (or becomes) a latched
  // failure, its round is skipped instead of waited on, and the barrier
  // returns kPeerFailed. Later rounds still pulse live partners so the
  // survivors' own waits unblock — the dissemination pattern keeps every
  // live task's exit bounded once the gossip latch lands everywhere.
  // A *suspected* partner (gray failure) is a softer tier: the barrier still
  // completes — the pulse toward the suspect parks in quarantine and either
  // drains on heal or fails over on escalation — but the caller learns that
  // progress degraded via kPeerSuspected. A latched death outranks it.
  bool degraded = false;
  bool degraded_suspected = false;
  int round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    const int to = (task_id() + dist) % n;
    if (send_.peer_suspected(to)) degraded_suspected = true;
    if (send_.peer_failed(to)) {
      degraded = true;
    } else {
      BarrierPulse p{seq, round};
      std::span<const std::byte> uhdr(reinterpret_cast<const std::byte*>(&p),
                                      sizeof p);
      const Status st = amsend(to, 0, uhdr, {}, nullptr, nullptr, nullptr);
      SPLAP_REQUIRE(st == Status::kOk, "barrier pulse send failed");
    }
    const int from = (task_id() - dist + n) % n;
    enter_library();
    const auto key = std::pair<std::int64_t, int>{seq, round};
    while (barrier_got_[key] < 1) {
      if (send_.peer_failed(from)) {
        degraded = true;
        break;
      }
      if (send_.peer_suspected(from)) degraded_suspected = true;
      progress_.waiters().add(*a);
      a->suspend("lapi-gfence");
    }
    exit_library();
  }
  // GC this generation's pulses.
  barrier_got_.erase(barrier_got_.lower_bound({seq, 0}),
                     barrier_got_.upper_bound({seq, round}));
  if (degraded) return Status::kPeerFailed;
  return degraded_suspected ? Status::kPeerSuspected : Status::kOk;
}

void Context::broadcast_peer_death(int peer, bool direct) {
  // The out-of-band membership channel (PSSP group services on the real SP):
  // a detected node death is announced to every attached context directly
  // through the Universe registry, not over the wire — exactly how the SP's
  // switch fault daemon fanned out membership changes. Like address_init,
  // this mutates sibling contexts across node shards, which the
  // lookahead-parallel lanes cannot order.
  engine().mark_parallel_unsafe("peer-death gossip crosses node shards");
  Universe& u = universe();
  for (Context* c : u.ctxs) {
    if (c != nullptr && c != this) c->note_peer_death(peer, direct, task_id());
  }
}

void Context::address_init(void* mine, std::span<void*> table) {
  sim::Actor* a = sim::Actor::current();
  SPLAP_REQUIRE(a != nullptr, "LAPI_Address_init must run in a task context");
  SPLAP_REQUIRE(static_cast<int>(table.size()) == num_tasks(),
                "address table size must equal the task count");
  enter_library();
  a->compute(call_entry_cost());
  // The Universe slot is out-of-band shared memory (the PSSP job-start
  // channel, not simulated traffic): the last arriver mutates every peer's
  // wait set directly, across shards, which the lookahead-parallel lanes
  // cannot order. Drop to serial execution for the rest of the run.
  engine().mark_parallel_unsafe(
      "LAPI_Address_init out-of-band rendezvous crosses node shards");
  Universe& u = universe();
  const auto k = static_cast<std::size_t>(xchg_seq_++);
  if (u.slots.size() <= k) u.slots.resize(k + 1);
  auto& slot = u.slots[k];
  if (slot.addrs.empty()) slot.addrs.resize(static_cast<std::size_t>(num_tasks()));
  slot.addrs[static_cast<std::size_t>(task_id())] = mine;
  if (++slot.count == num_tasks()) {
    slot.done = true;
    for (Context* c : u.ctxs) {
      if (c != nullptr) c->notify();
    }
  } else {
    while (!slot.done) {
      progress_.waiters().add(*a);
      a->suspend("lapi-address-init");
    }
  }
  std::copy(slot.addrs.begin(), slot.addrs.end(), table.begin());
  exit_library();
}

}  // namespace splap::lapi
