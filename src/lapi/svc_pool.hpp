// Completion-handler service threads.
//
// Completion handlers run in their own execution context so they can block
// (e.g. on the GA accumulate mutex, Section 5.3.3) without stalling the
// dispatcher. The 1998 implementation ran one such thread; "providing
// multiple completion handler threads" is the paper's future-work item 2 and
// is available here via Config::completion_threads (ablation bench A2).
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace splap::lapi {

class SvcPool {
 public:
  using Job = std::function<void(sim::Actor&)>;

  SvcPool(sim::Engine& engine, const std::string& tag, int threads)
      : engine_(engine) {
    SPLAP_REQUIRE(threads >= 1, "need at least one completion thread");
    for (int i = 0; i < threads; ++i) {
      engine_.spawn(tag + ".svc" + std::to_string(i), [this](sim::Actor& self) {
        service_loop(self);
      });
      ++alive_;
    }
  }

  /// Enqueue a completion job. Any context (dispatcher events included).
  void submit(Job job) {
    SPLAP_REQUIRE(!stopping_, "submit after SvcPool::stop");
    queue_.push_back(std::move(job));
    waiters_.wake_all(engine_);
  }

  /// Drain the queue and terminate the service threads. Must be called from
  /// an actor context (LAPI_Term); returns when every thread has exited.
  void stop(sim::Actor& self) {
    stopping_ = true;
    waiters_.wake_all(engine_);
    while (alive_ != 0) {
      done_waiters_.add(self);
      self.suspend("lapi-term-svc-drain");
    }
  }

  int queued() const { return static_cast<int>(queue_.size()); }
  int busy() const { return busy_; }
  bool idle() const { return queue_.empty() && busy_ == 0; }

 private:
  void service_loop(sim::Actor& self) {
    for (;;) {
      while (queue_.empty() && !stopping_) {
        waiters_.add(self);
        self.suspend("lapi-svc-idle");
      }
      if (queue_.empty() && stopping_) break;
      Job job = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
      job(self);
      --busy_;
      done_waiters_.wake_all(engine_);
    }
    --alive_;
    done_waiters_.wake_all(engine_);
  }

  sim::Engine& engine_;
  std::deque<Job> queue_;
  sim::WaitSet waiters_;       // idle service threads
  sim::WaitSet done_waiters_;  // stop()/drain observers
  int busy_ = 0;
  int alive_ = 0;
  bool stopping_ = false;
};

}  // namespace splap::lapi
