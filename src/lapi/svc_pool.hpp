// Completion-handler service threads.
//
// Completion handlers run in their own execution context so they can block
// (e.g. on the GA accumulate mutex, Section 5.3.3) without stalling the
// dispatcher. The 1998 implementation ran one such thread; "providing
// multiple completion handler threads" is the paper's future-work item 2 and
// is available here via Config::completion_threads (ablation bench A2).
//
// Stackless mode (Config::stackless_completions): the pool owns a single
// stackless identity actor instead of OS threads, and jobs run inline on a
// pump event scheduled on the owning node's shard. This saves one OS thread
// per context — the difference between 2048 and 1024 threads on a 1024-node
// run — at the price of the stackless contract: a job must return without
// suspending (no compute()/waitcntr/mutex waits), which holds for the
// library's own completion jobs but not for user handlers that block.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace splap::lapi {

class SvcPool {
 public:
  using Job = std::function<void(sim::Actor&)>;

  SvcPool(sim::Engine& engine, const std::string& tag, int threads,
          bool stackless = false, int shard = sim::Engine::kNoShard)
      : engine_(engine), stackless_(stackless), shard_(shard) {
    SPLAP_REQUIRE(threads >= 1, "need at least one completion thread");
    if (stackless_) {
      // One identity actor is enough: jobs execute inline on the
      // dispatching thread, so extra "threads" would only add names.
      svc0_ = &engine_.spawn_stackless(shard, tag + ".svc0", nullptr);
      return;
    }
    for (int i = 0; i < threads; ++i) {
      engine_.spawn(tag + ".svc" + std::to_string(i), [this](sim::Actor& self) {
        service_loop(self);
      });
      ++alive_;
    }
  }

  /// Enqueue a completion job. Any context (dispatcher events included).
  void submit(Job job) {
    SPLAP_REQUIRE(!stopping_, "submit after SvcPool::stop");
    queue_.push_back(std::move(job));
    if (stackless_) {
      schedule_pump();
      return;
    }
    waiters_.wake_all(engine_);
  }

  /// Drain the queue and terminate the service threads. Must be called from
  /// an actor context (LAPI_Term); returns when every thread has exited.
  void stop(sim::Actor& self) {
    stopping_ = true;
    if (stackless_) {
      while (pump_scheduled_ || !queue_.empty()) {
        done_waiters_.add(self);
        self.suspend("lapi-term-svc-drain");
      }
      return;
    }
    waiters_.wake_all(engine_);
    while (alive_ != 0) {
      done_waiters_.add(self);
      self.suspend("lapi-term-svc-drain");
    }
  }

  int queued() const { return static_cast<int>(queue_.size()); }
  int busy() const { return busy_; }
  bool idle() const { return queue_.empty() && busy_ == 0; }
  bool stackless() const { return stackless_; }

 private:
  void schedule_pump() {
    if (pump_scheduled_) return;
    pump_scheduled_ = true;
    // Pin to the owning node's shard so parallel-window runs keep
    // completion effects on the same lane as the rest of the node's
    // protocol work. `this` is safe: stop() drains the pump before the
    // owning context tears the pool down, and an engine shutdown sweeps
    // unrun events without invoking them.
    engine_.schedule_at_on(engine_.now(), shard_, [this] {
      pump_scheduled_ = false;
      svc0_->run_inline([this](sim::Actor& self) {
        while (!queue_.empty()) {
          Job job = std::move(queue_.front());
          queue_.pop_front();
          ++busy_;
          job(self);
          --busy_;
        }
      });
      done_waiters_.wake_all(engine_);
    });
  }

  void service_loop(sim::Actor& self) {
    for (;;) {
      while (queue_.empty() && !stopping_) {
        waiters_.add(self);
        self.suspend("lapi-svc-idle");
      }
      if (queue_.empty() && stopping_) break;
      Job job = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
      job(self);
      --busy_;
      done_waiters_.wake_all(engine_);
    }
    --alive_;
    done_waiters_.wake_all(engine_);
  }

  sim::Engine& engine_;
  const bool stackless_;
  const int shard_;
  sim::Actor* svc0_ = nullptr;  // stackless mode: the identity actor
  std::deque<Job> queue_;
  sim::WaitSet waiters_;       // idle service threads
  sim::WaitSet done_waiters_;  // stop()/drain observers
  bool pump_scheduled_ = false;
  int busy_ = 0;
  int alive_ = 0;
  bool stopping_ = false;
};

}  // namespace splap::lapi
