// Transfer-protocol selection for the LAPI origin path.
//
// Every data-bearing LAPI message rides one of three protocols:
//
//   eager        len <= CostModel::lapi_bcopy_limit. The library bcopies the
//                payload into its retransmit buffer during the call and the
//                origin counter fires at injection (Section 5.3.1).
//   rendezvous   larger messages stream zero-copy from the pinned user
//                buffer through the store-and-forward packet path; the
//                buffer is reusable (origin counter) only at the data ack,
//                and the target dispatcher copies every packet out of the
//                adapter (copy_time per fragment).
//   zero-copy    Config::rdma_enabled and len >= Config::rdma_threshold:
//                the origin registers (pins) the source and target regions
//                with the adapter, data packets shrink to a steering-tag
//                header (CostModel::rdma_header_bytes), and the target
//                adapter scatters payloads straight into the registered
//                region — no staging buffer, no dispatcher copy on either
//                end. Registrations are cached per context (LRU): a hit is
//                free, a miss pays CostModel::pin_time, and entries die
//                with the peer incarnation they were pinned against.
//
// This module is the single decision point: SendEngine::submit asks it what
// protocol a message rides and what the call-time charges are, and the
// facade consults classify() to plan strided gather charges. With
// rdma_enabled off the decisions reproduce the historical eager/rendezvous
// split bit-for-bit (golden traces unchanged).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <tuple>

#include "base/cost_model.hpp"
#include "lapi/protocol.hpp"
#include "lapi/types.hpp"

namespace splap::lapi {

enum class XferProtocol : std::uint8_t { kEager, kRendezvous, kZeroCopy };

/// What SendEngine::submit needs to know about the chosen protocol.
struct XferDecision {
  XferProtocol protocol = XferProtocol::kEager;
  /// Copy work charged inside the call (the eager bcopy into the
  /// retransmit buffer); 0 for the zero-copy-from-user-buffer protocols.
  Time call_copy = 0;
  /// Registration charges for this transfer's regions (0 on cache hits and
  /// for the non-registered protocols). Charged in-call like call_copy.
  Time pin_cost = 0;
  /// True when the user buffer is reusable at injection (eager bcopy, or a
  /// strided source gathered during the call): the origin counter fires
  /// then. False = it fires at the data ack (SendRecord::org_pending).
  bool org_at_injection = true;
};

/// LRU cache of adapter memory registrations, keyed by (peer, region base,
/// region length). Entries carry the peer incarnation epoch they were
/// pinned against: a lookup under a newer epoch misses (the registration
/// died with the old incarnation — restart_node soundness), and peer-death
/// or rebirth drops the peer's entries outright. The address component of
/// the key is the pointer *value* (uintptr): lookups are pure equality and
/// eviction order comes from the LRU list, so no behavior depends on
/// pointer ordering.
class RegistrationCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::int64_t epoch_invalidations = 0;
    std::int64_t peer_invalidations = 0;
  };

  explicit RegistrationCache(std::int64_t capacity) : capacity_(capacity) {}

  /// Look up / install the registration of [addr, addr+len) toward `peer`
  /// at incarnation `epoch`. Returns true on a hit (registration reusable,
  /// no charge); false on a miss — the entry is (re-)installed as MRU and
  /// the caller charges CostModel::pin_time. Capacity 0 disables caching:
  /// every call is a miss and nothing is stored.
  bool pin(int peer, std::uintptr_t addr, std::int64_t len,
           std::int64_t epoch);

  /// Drop every registration toward `peer` (peer declared dead or reborn:
  /// the remote adapter state backing those registrations is gone).
  void invalidate_peer(int peer);

  void clear();

  std::size_t size() const { return map_.size(); }
  std::int64_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }

 private:
  using Key = std::tuple<int, std::uintptr_t, std::int64_t>;
  struct Entry {
    std::int64_t epoch = 0;
    std::list<Key>::iterator pos;  // position in lru_ (front = MRU)
  };

  std::int64_t capacity_;
  std::list<Key> lru_;
  std::map<Key, Entry> map_;
  Stats stats_;
};

/// The pluggable protocol-decision layer. One per SendEngine (it owns the
/// context's registration cache); stateless apart from that cache.
class ProtocolSelector {
 public:
  ProtocolSelector(const Config& config, int self)
      : config_(config), self_(self), cache_(config.reg_cache_entries) {}

  /// Pure classification — which protocol does a message of this shape
  /// ride? No cache side effects; the facade uses this to plan gather
  /// charges before submit.
  XferProtocol classify(PktKind kind, const WireMeta& hdr, std::int64_t len,
                        int target, const CostModel& cm) const;

  /// Full decision at submit time: classify, mark the header zero_copy if
  /// chosen, run the registration-cache lookups (accruing pin charges on
  /// misses) and report the call-time charges + origin-counter timing.
  /// `self_epoch` is this context's own incarnation (keys local-region
  /// registrations); the target incarnation rides hdr.dst_epoch.
  XferDecision decide(PktKind kind, WireMeta& hdr, std::int64_t len,
                      int target, std::int64_t self_epoch,
                      const CostModel& cm);

  RegistrationCache& cache() { return cache_; }
  const RegistrationCache& cache() const { return cache_; }

 private:
  const Config config_;
  const int self_;
  RegistrationCache cache_;
};

/// Fragmentation plan of one message: how SendEngine splits it into wire
/// packets. Shared by the credit accounting (packet_count) and the actual
/// transmission so the two can never disagree — credits are leased per
/// wire packet, and a mismatch would corrupt the per-peer window.
struct FragPlan {
  std::int64_t header_bytes = 0;       // header-packet protocol bytes
  std::int64_t chunk0 = 0;             // payload riding the header packet
  std::int64_t data_header_bytes = 0;  // continuation-packet header
  std::int64_t per = 1;                // payload per continuation packet
  std::int64_t packets = 1;            // total wire packets
};

FragPlan frag_plan(PktKind kind, const WireMeta& hdr, std::int64_t len,
                   const CostModel& cm);

}  // namespace splap::lapi
