#include "lapi/reliable.hpp"

#include <algorithm>

#include "base/checksum.hpp"
#include "base/log.hpp"

namespace splap::lapi {

// ---------------------------------------------------------------------------
// ReliableChannel: retransmit timers, backoff, RTT estimation
// ---------------------------------------------------------------------------

ReliableChannel::ReliableChannel(sim::Engine& engine, Sender& sender,
                                 RetryPolicy policy, const std::string& scope,
                                 std::uint64_t jitter_seed,
                                 std::weak_ptr<char> alive)
    : engine_(engine),
      sender_(sender),
      policy_(policy),
      ctr_retransmits_(engine.counters().handle(scope + ".retransmits")),
      ctr_stale_(engine.counters().handle(scope + ".stale_timeouts")),
      ctr_giveup_(engine.counters().handle(scope + ".retransmit_giveup")),
      jitter_rng_(jitter_seed),
      alive_(std::move(alive)) {}

void ReliableChannel::arm(std::int64_t id, Time delay) {
  RetryState* st = sender_.retry_state(id);
  if (st == nullptr) return;
  const std::uint64_t gen = ++st->timeout_gen;
  engine_.schedule_after(delay, [this, w = alive_, id, gen, delay] {
    if (w.expired()) return;
    on_timer(id, gen, delay);
  });
}

void ReliableChannel::on_timer(std::int64_t id, std::uint64_t gen, Time delay) {
  RetryState* st = sender_.retry_state(id);
  if (st == nullptr) {
    // Record reclaimed (acked or failed) before this timer fired.
    ctr_stale_.bump();
    return;
  }
  if (gen != st->timeout_gen) {
    // A newer timer owns this record; this one was invalidated by an
    // ack-triggered (or later) re-arm and must never retransmit.
    ctr_stale_.bump();
    return;
  }
  if (sender_.settled(id)) return;
  if (st->retries >= policy_.max_retries) {
    ctr_giveup_.bump();
    sender_.give_up(id);
    return;
  }
  ++st->retries;
  ctr_retransmits_.bump();
  sender_.retransmit(id);
  // Exponential backoff; the clamp caps the doubling at rto_max, and the
  // adaptive policy adds deterministic jitter so tasks whose losses were
  // synchronized (e.g. a route going down) retry unsynchronized.
  Time next = delay * 2;
  if (policy_.clamp_backoff) next = std::min(next, policy_.rto_max);
  if (policy_.adaptive) {
    const auto spread =
        static_cast<std::uint64_t>(next * policy_.backoff_jitter);
    if (spread > 0) {
      next += static_cast<Time>(jitter_rng_.next_below(spread));
    }
  }
  arm(id, next);
}

Time ReliableChannel::initial_rto() const {
  if (!policy_.adaptive || !have_rtt_) return policy_.base_rto;
  return std::clamp(srtt_ + 4 * rttvar_, policy_.rto_min, policy_.rto_max);
}

void ReliableChannel::on_rtt_sample(Time sample) {
  if (sample < 0) return;
  if (!have_rtt_) {
    have_rtt_ = true;
    srtt_ = sample;
    rttvar_ = sample / 2;
    return;
  }
  // Jacobson '88 with the classic 1/8 and 1/4 gains, in integer ns.
  const Time err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
  rttvar_ = (3 * rttvar_ + err) / 4;
  srtt_ = (7 * srtt_ + sample) / 8;
}

// ---------------------------------------------------------------------------
// SendEngine: LAPI origin side
// ---------------------------------------------------------------------------

SendEngine::SendEngine(net::Delivery& wire, ProgressEngine& progress,
                       int task_id, const Config& config, bool checksums)
    : wire_(wire),
      progress_(progress),
      task_id_(task_id),
      config_(config),
      checksums_(checksums),
      selector_(config, task_id),
      credits_(config.credit_window),
      channel_(progress.engine(), *this,
               RetryPolicy{config.retransmit_timeout, config.max_retries,
                           config.adaptive_timeout, config.adaptive_timeout,
                           config.rto_min, config.rto_max,
                           config.backoff_jitter},
               "lapi",
               config.jitter_seed ^
                   (static_cast<std::uint64_t>(task_id) * 0x9e3779b9ULL),
               progress.alive()),
      accrual_enabled_(config.keepalive_interval > 0 &&
                       !config.keepalive_legacy) {}

void SendEngine::submit(PktKind kind, int target,
                        std::shared_ptr<WireMeta> hdr,
                        std::shared_ptr<std::vector<std::byte>> data,
                        Time extra_call_cost) {
  // Get requests are counted outstanding from the call itself: the fence
  // must cover a Get whose request packet is still being injected.
  if (kind == PktKind::kGetReq) ++outstanding_gets_;
  sim::Engine& engine = progress_.engine();
  const CostModel& cm = progress_.cost();
  hdr->kind = kind;
  hdr->msg_id = msg_seq_++;
  const std::int64_t len =
      data ? static_cast<std::int64_t>(data->size()) : 0;
  // Protocol decision: eager / rendezvous / zero-copy, plus the call-side
  // charges of the choice (the eager bcopy, registration pins on cache
  // misses). With rdma off this reproduces the historical bcopy-limit
  // split exactly.
  const auto cache_before = selector_.cache().stats();
  const XferDecision xfer =
      selector_.decide(kind, *hdr, len, target, epoch_, cm);
  if (xfer.protocol == XferProtocol::kZeroCopy) {
    auto& ctrs = engine.counters();
    ctrs.bump("lapi.zero_copy_sends");
    const auto& cs = selector_.cache().stats();
    if (cs.hits > cache_before.hits) {
      ctrs.bump("lapi.reg_cache_hits", cs.hits - cache_before.hits);
    }
    if (cs.misses > cache_before.misses) {
      ctrs.bump("lapi.reg_cache_misses", cs.misses - cache_before.misses);
    }
  }
  const Time copy_in_call = xfer.call_copy + xfer.pin_cost;
  // Loopback traffic never competes for a peer's adapter buffering, so the
  // credit gate only governs remote targets.
  const bool flow = credits_.enabled() && target != task_id_;
  const std::int64_t pkts = flow ? packet_count(kind, *hdr, len) : 1;

  Time inject_at;
  bool park_for_credits = false;
  if (sim::Actor* a = sim::Actor::current()) {
    if (config_.max_injection_backlog > 0) {
      // Sender-side pacing: instead of over-injecting into a saturated TX
      // link, the call blocks until the backlog drains to the limit.
      const Time backlog = wire_.link_free(task_id_) - engine.now();
      if (backlog > config_.max_injection_backlog) {
        engine.counters().bump("lapi.tx_backpressure");
        // splap-graph: allow(blocking-reachability): guarded by
        // Actor::current() — handler-context callers take the else branch
        // below, which charges busy_until_ instead of suspending.
        a->compute(backlog - config_.max_injection_backlog);
      }
    }
    if (flow && suspected_.count(target) == 0 &&
        !(credits_.can_send(target, pkts) && credit_waitq_.count(target) == 0)) {
      // Backpressure: the call parks until the peer's credit pool can admit
      // this message (and no earlier handler-context send is queued ahead).
      // Credits released by any record reclamation notify() the waiters.
      // A peer that becomes suspected mid-wait releases the waiter too: the
      // send then quarantines below instead of leasing credits.
      engine.counters().bump("lapi.credit_stalls");
      // splap-graph: allow(blocking-reachability): inside the
      // Actor::current() branch — handler-context sends park in
      // credit_waitq_ (park_for_credits below) instead of blocking.
      a->wait(
          [this, a, target, pkts] {
            if (suspected_.count(target) != 0) return true;  // quarantine
            if (credits_.can_send(target, pkts) &&
                credit_waitq_.count(target) == 0) {
              return true;
            }
            progress_.waiters().add(*a);
            return false;
          },
          "lapi-credit-park");
    }
    progress_.enter_library();
    // splap-graph: allow(blocking-reachability): inside the Actor::current()
    // branch — handler-context callers charge busy_until_ in the else arm.
    a->compute(progress_.call_entry_cost() + extra_call_cost + cm.lapi_pkt_tx +
               copy_in_call);
    inject_at = engine.now();
    progress_.exit_library();
  } else {
    // Handler/dispatcher context: the send is part of the dispatcher's
    // current work and queues behind it.
    inject_at = std::max(engine.now(), progress_.busy_until()) +
                cm.lapi_pkt_tx + copy_in_call;
    progress_.set_busy_until(inject_at);
    // A handler must not block: an over-window send is queued per peer and
    // started by drain_credit_waitq when credits return.
    park_for_credits =
        flow && !(credits_.can_send(target, pkts) &&
                  credit_waitq_.count(target) == 0);
  }

  SendRecord rec;
  rec.target = target;
  rec.kind = kind;
  rec.hdr_meta = hdr;
  rec.data = data;
  rec.needs_done = (kind == PktKind::kPutHdr || kind == PktKind::kAmHdr) &&
                   hdr->cmpl_cntr != nullptr;
  rec.sent_at = inject_at;
  rec.pkts = pkts;
  const std::int64_t id = hdr->msg_id;
  sends_.emplace(id, std::move(rec));
  ++outstanding_data_;
#ifdef SPLAP_AUDIT
  send_ledger_.insert(&sends_.at(id), "SendEngine::submit");
#endif
  if (config_.keepalive_interval > 0 && target != task_id_) arm_keepalive();

  // Origin counter: user buffer reusable. Small messages were copied into
  // the retransmit buffer during the call; large ones complete the copy into
  // the adapter DMA region asynchronously (Section 5.3.1 / Section 6).
  // For a get reply this "origin counter" is the Get's tgt_cntr: it fires
  // at the serving side once the data has been copied out of the target
  // buffer (Section 2.3's completion notion for Get).
  //
  // Small messages were bcopied into the retransmit buffer during the call,
  // so the user buffer is reusable immediately. Large messages go zero-copy
  // from the pinned user buffer: it is only reusable once the data ack
  // returns (handled in the kAck path via org_pending).
  if ((kind == PktKind::kPutHdr || kind == PktKind::kAmHdr) &&
      hdr->org_cntr != nullptr) {
    // The selector decided when the user buffer is reusable: at injection
    // (eager bcopy, or a strided source gathered during the call) or only
    // at the data ack (rendezvous/zero-copy from the pinned user region).
    if (xfer.org_at_injection) {
      progress_.defer(inject_at,
                      [this, c = hdr->org_cntr] { progress_.bump(c); });
    } else {
      sends_.at(id).org_pending = true;
    }
  }

  if (target != task_id_ && suspected_.count(target) != 0) {
    // Suspected peer: quarantine instead of transmitting — no credit lease,
    // no timer, so neither the retry budget nor the credit window is spent
    // on a peer that may be behind a partition. heal_peer restarts the
    // record on any contact; fail_peer fails it over with kPeerFailed.
    sends_.at(id).queued = true;
    engine.counters().bump("lapi.quarantined");
    suspectq_[target].push_back(id);
    return;
  }
  if (park_for_credits) {
    // No transmission and no timer yet: the record is parked until credits
    // return. Deadlock-free: a peer pool below its window implies live
    // leased records, each of which releases on reclamation and drains this
    // queue; a full pool admits any message (including over-window ones).
    sends_.at(id).queued = true;
    engine.counters().bump("lapi.credit_queued");
    credit_waitq_[target].push_back(id);
    return;
  }
  if (flow) lease_credits(sends_.at(id));

  if (inject_at <= engine.now()) {
    transmit_packets(sends_.at(id));
  } else {
    progress_.defer(inject_at, [this, id] {
      auto it = sends_.find(id);
      if (it == sends_.end()) return;
      transmit_packets(it->second);
    });
  }
  arm_initial(id, len);
}

void SendEngine::arm_initial(std::int64_t id, std::int64_t len) {
  // Scale the first timeout with the expected wire time AND the injection
  // link's current backlog: a burst of pipelined messages (e.g. 512 GA
  // column transfers) queues for many milliseconds before the last one even
  // departs, and none of that time means loss.
  const CostModel& cm = progress_.cost();
  const Time backlog = std::max<Time>(
      0, wire_.link_free(task_id_) - progress_.engine().now());
  channel_.arm(id, channel_.initial_rto() + 2 * backlog +
                       2 * transfer_time(len, cm.wire_mb_s));
}

// --- credit accounting ------------------------------------------------------

std::int64_t SendEngine::packet_count(PktKind kind, const WireMeta& hdr,
                                      std::int64_t len) const {
  return frag_plan(kind, hdr, len, progress_.cost()).packets;
}

void SendEngine::lease_credits(SendRecord& rec) {
  credits_.consume(rec.target, rec.pkts);
  rec.credits_held = rec.pkts;
  rec.credits_granted = 0;
#ifdef SPLAP_AUDIT
  credit_ledger_.insert(&rec, "SendEngine::lease_credits");
#endif
}

void SendEngine::credit_return(SendRecord& rec, std::int64_t n) {
  if (n <= 0 || rec.credits_held <= 0) return;
#ifdef SPLAP_AUDIT
  credit_ledger_.expect(&rec, "SendEngine::credit_return");
#endif
  n = std::min(n, rec.credits_held);
  rec.credits_held -= n;
  credits_.release(rec.target, n);
#ifdef SPLAP_AUDIT
  if (rec.credits_held == 0) {
    credit_ledger_.remove(&rec, "SendEngine::credit_return");
  }
  if (credits_.available(rec.target) > credits_.window()) {
    audit::fail("credit pool above its window (over-release)",
                "SendEngine::credit_return", &rec);
  }
#endif
  drain_credit_waitq(rec.target);
  progress_.notify();  // parked actor-context senders re-evaluate
}

void SendEngine::apply_grant(SendRecord& rec, std::int64_t granted) {
  if (rec.credits_held <= 0) return;
  granted = std::min(granted, rec.pkts);
  if (granted <= rec.credits_granted) return;  // duplicate / stale update
  const std::int64_t fresh = granted - rec.credits_granted;
  rec.credits_granted = granted;
  // Grant progress means the target is ingesting again: a later overflow
  // may fast-retransmit anew.
  rec.nack_rtx = false;
  credit_return(rec, fresh);
}

void SendEngine::drain_credit_waitq(int peer) {
  // A suspected peer's parked sends stay parked — credits returning must not
  // restart traffic into a quarantine; heal_peer drains this queue instead.
  if (suspected_.count(peer) != 0) return;
  auto qit = credit_waitq_.find(peer);
  if (qit == credit_waitq_.end()) return;
  sim::Engine& engine = progress_.engine();
  const CostModel& cm = progress_.cost();
  auto& q = qit->second;
  while (!q.empty()) {
    auto it = sends_.find(q.front());
    if (it == sends_.end()) {  // reclaimed while parked
      q.pop_front();
      continue;
    }
    SendRecord& rec = it->second;
    if (!credits_.can_send(peer, rec.pkts)) break;
    q.pop_front();
    rec.queued = false;
    lease_credits(rec);
    // Start it as any handler-context send: behind the dispatcher's
    // current work.
    const std::int64_t id = it->first;
    const std::int64_t len =
        rec.data ? static_cast<std::int64_t>(rec.data->size()) : 0;
    const Time inject_at =
        std::max(engine.now(), progress_.busy_until()) + cm.lapi_pkt_tx;
    progress_.set_busy_until(inject_at);
    rec.sent_at = inject_at;
    if (inject_at <= engine.now()) {
      transmit_packets(rec);
    } else {
      progress_.defer(inject_at, [this, id] {
        auto it2 = sends_.find(id);
        if (it2 == sends_.end()) return;
        transmit_packets(it2->second);
      });
    }
    arm_initial(id, len);
  }
  if (q.empty()) credit_waitq_.erase(qit);
}

void SendEngine::transmit_packets(const SendRecord& rec,
                                  std::int64_t skip_first) {
  const CostModel& cm = progress_.cost();
  const WireMeta& hdr = *rec.hdr_meta;
  const std::int64_t len =
      rec.data ? static_cast<std::int64_t>(rec.data->size()) : 0;

  const FragPlan plan = frag_plan(rec.kind, hdr, len, cm);
  if (skip_first > 0) {
    --skip_first;  // the header packet is already at the target
  } else {
    net::Packet first = wire_.make_packet();
    first.src = task_id_;
    first.dst = rec.target;
    first.client = net::Client::kLapi;
    first.meta = rec.hdr_meta;
    first.header_bytes = plan.header_bytes;
    if (plan.chunk0 > 0) {
      first.data.assign(rec.data->begin(), rec.data->begin() + plan.chunk0);
      // End-to-end checksum, armed only when the fabric injects corruption.
      // No virtual-time charge: models the adapter's hardware CRC engine.
      if (checksums_) {
        rec.hdr_meta->data_crc = crc32_nz(
            rec.data->data(), static_cast<std::size_t>(plan.chunk0));
      }
    }
    wire_.transmit(std::move(first));
  }

  std::int64_t offset = plan.chunk0;
  while (offset < len) {
    const std::int64_t chunk = std::min(len - offset, plan.per);
    if (skip_first > 0) {
      --skip_first;
      offset += chunk;
      continue;
    }
    net::Packet p = wire_.make_packet();
    p.src = task_id_;
    p.dst = rec.target;
    p.client = net::Client::kLapi;
    p.header_bytes = plan.data_header_bytes;
    auto m = std::make_shared<WireMeta>();
    m->kind = PktKind::kData;
    m->epoch = hdr.epoch;
    m->dst_epoch = hdr.dst_epoch;
    m->msg_id = hdr.msg_id;
    m->offset = offset;
    m->zero_copy = hdr.zero_copy;
    if (checksums_) {
      m->data_crc = crc32_nz(rec.data->data() + offset,
                             static_cast<std::size_t>(chunk));
    }
    p.meta = std::move(m);
    p.data.assign(rec.data->begin() + offset,
                  rec.data->begin() + offset + chunk);
    wire_.transmit(std::move(p));
    offset += chunk;
  }
}

void SendEngine::transmit_probe(const SendRecord& rec) {
  const CostModel& cm = progress_.cost();
  net::Packet p = wire_.make_packet();
  p.src = task_id_;
  p.dst = rec.target;
  p.client = net::Client::kLapi;
  p.meta = rec.hdr_meta;
  p.header_bytes = cm.lapi_header_bytes;
  if (rec.kind == PktKind::kAmHdr) {
    p.header_bytes += static_cast<std::int64_t>(rec.hdr_meta->uhdr.size());
  }
  wire_.transmit(std::move(p));
}

// --- ReliableChannel::Sender hooks -----------------------------------------

RetryState* SendEngine::retry_state(std::int64_t id) {
  auto it = sends_.find(id);
  return it == sends_.end() ? nullptr : &it->second.retry;
}

bool SendEngine::settled(std::int64_t id) {
  const SendRecord& rec = sends_.at(id);
  return rec.data_acked && (!rec.needs_done || rec.done_acked);
}

void SendEngine::retransmit(std::int64_t id) {
  SendRecord& rec = sends_.at(id);
#ifdef SPLAP_AUDIT
  send_ledger_.expect(&rec, "SendEngine::retransmit");
#endif
  SPLAP_DEBUG(progress_.engine().now(),
              "lapi task %d: retransmit msg %lld kind %d to %d (retry %d)",
              task_id_, static_cast<long long>(id),
              static_cast<int>(rec.kind), rec.target, rec.retry.retries);
  rec.nack_rtx = false;  // a fresh RTO round may fast-retransmit again
  if (!rec.data_acked) {
    transmit_packets(rec);
  } else {
    // Data acked but the DONE ack was lost: the payload is gone, so probe
    // with a bare duplicate header — the target sees a completed assembly
    // and re-acks with the done flag.
    transmit_probe(rec);
  }
}

void SendEngine::give_up(std::int64_t id) {
  const SendRecord& rec = sends_.at(id);
  SPLAP_WARN(progress_.engine().now(),
             "lapi task %d: giving up on msg %lld to %d after %d retries",
             task_id_, static_cast<long long>(id), rec.target,
             rec.retry.retries);
  // Retry exhaustion IS peer death under the crash-stop model: if this
  // record could not get through after a full backoff ladder, none of its
  // siblings toward the same peer will either. Fail the whole per-peer
  // queue at once instead of letting each record burn its own ladder.
  fail_peer(rec.target);
}

void SendEngine::fail_peer(int peer, bool direct) {
  const bool fresh = failed_peers_.insert(peer).second;
  // Drop the parked queues first: failing a leased record returns credits,
  // and the credit drain must not restart parked sends toward a dead peer.
  // A suspected peer escalating to dead leaves the quarantine for good (its
  // parked records are failed over with everything else below).
  credit_waitq_.erase(peer);
  suspectq_.erase(peer);
  suspected_.erase(peer);
  accrual_.erase(peer);  // a future incarnation has its own rhythm
  std::vector<std::int64_t> ids;
  for (const auto& [id, rec] : sends_) {
    if (rec.target == peer) ids.push_back(id);
  }
  if (fresh) {
    progress_.engine().counters().bump("lapi.peer_failed");
    SPLAP_WARN(progress_.engine().now(),
               "lapi task %d: peer %d declared dead, failing over %zu records",
               task_id_, peer, ids.size());
  }
  for (const std::int64_t id : ids) fail_send(id, Status::kPeerFailed);
  // Registrations toward a dead peer are gone with its adapter state.
  selector_.cache().invalidate_peer(peer);
  health_.erase(peer);
  if (fresh && peer_failure_hook_) peer_failure_hook_(peer, direct);
  progress_.notify();
}

void SendEngine::on_peer_reborn(int peer, std::int64_t new_epoch) {
  // Only the records addressed to a dead incarnation fail over; sends the
  // origin already stamped with the new epoch stay live (the adoption was
  // very likely triggered by one of their acks).
  std::vector<std::int64_t> stale;
  for (const auto& [id, rec] : sends_) {
    if (rec.target == peer && rec.hdr_meta->dst_epoch < new_epoch) {
      stale.push_back(id);
    }
  }
  if (auto qit = credit_waitq_.find(peer); qit != credit_waitq_.end()) {
    std::erase_if(qit->second, [&](std::int64_t id) {
      auto it = sends_.find(id);
      return it == sends_.end() || it->second.hdr_meta->dst_epoch < new_epoch;
    });
    if (qit->second.empty()) credit_waitq_.erase(qit);
  }
  if (auto sit = suspectq_.find(peer); sit != suspectq_.end()) {
    // Quarantined records addressed to the dead incarnation fail over below
    // (fail_send skips ids no longer queued here); new-epoch records stay
    // parked — the note_heard that follows this adoption heals the peer and
    // restarts them.
    std::erase_if(sit->second, [&](std::int64_t id) {
      auto it = sends_.find(id);
      return it == sends_.end() || it->second.hdr_meta->dst_epoch < new_epoch;
    });
    if (sit->second.empty()) suspectq_.erase(sit);
  }
  if (!stale.empty()) {
    SPLAP_WARN(progress_.engine().now(),
               "lapi task %d: peer %d reborn as epoch %lld, failing %zu "
               "stale-addressed records",
               task_id_, peer, static_cast<long long>(new_epoch),
               stale.size());
  }
  for (const std::int64_t id : stale) fail_send(id, Status::kPeerFailed);
  // The old incarnation's registrations are dead memory in the new life
  // (the epoch stamp would miss anyway; dropping them also frees capacity).
  selector_.cache().invalidate_peer(peer);
  failed_peers_.erase(peer);  // the restarted life is reachable
  health_.erase(peer);
  accrual_.erase(peer);  // the new life's rhythm starts from scratch
  progress_.notify();
}

void SendEngine::note_heard(int src) {
  if (accrual_enabled_ && src != task_id_) {
    accrual_.try_emplace(src, config_.accrual_window)
        .first->second.observe(progress_.engine().now());
  }
  if (failed_peers_.empty() && health_.empty() && suspected_.empty()) {
    return;  // healthy fast path
  }
  failed_peers_.erase(src);
  if (!suspected_.empty()) heal_peer(src);
  auto it = health_.find(src);
  if (it != health_.end()) {
    it->second.heard = true;
    it->second.misses = 0;
  }
}

void SendEngine::forgive_crash_teardown() {
#ifdef SPLAP_AUDIT
  send_ledger_.clear();
  credit_ledger_.clear();
#endif
}

void SendEngine::fail_send(std::int64_t msg_id, Status reason) {
  auto it = sends_.find(msg_id);
  if (it == sends_.end()) return;
  SendRecord& rec = it->second;
  const WireMeta& hdr = *rec.hdr_meta;
  if (!rec.data_acked) --outstanding_data_;
  if (rec.kind == PktKind::kGetReq) --outstanding_gets_;
  release_credits(rec);
  if ((rec.kind == PktKind::kPutHdr || rec.kind == PktKind::kAmHdr) &&
      !rec.data_acked) {
    // Best-effort cancel (header-only, never retransmitted) so the target
    // reclaims the partial assembly this abandoned message left behind; the
    // partial-TTL sweep is the backstop if it is lost.
    const CostModel& cm = progress_.cost();
    net::Packet cancel = wire_.make_packet();
    cancel.src = task_id_;
    cancel.dst = rec.target;
    cancel.client = net::Client::kLapi;
    auto m = std::make_shared<WireMeta>();
    m->kind = PktKind::kCancel;
    m->epoch = hdr.epoch;
    m->dst_epoch = hdr.dst_epoch;
    m->acked_msg = msg_id;
    cancel.meta = std::move(m);
    cancel.header_bytes = cm.lapi_header_bytes + kCancelDescBytes;
    wire_.transmit(std::move(cancel));
  }
  // Complete every counter the operation still owes, marked failed: waiters
  // unblock (never a hang) and waitcntr reports the failure Status —
  // kPeerFailed when the peer was declared dead, kResourceExhausted for
  // plain resource exhaustion.
  const bool peer_death = reason == Status::kPeerFailed;
  if (rec.org_pending ||
      ((rec.kind == PktKind::kGetReq || rec.kind == PktKind::kRmwReq) &&
       hdr.org_cntr != nullptr && !rec.data_acked)) {
    peer_death ? progress_.bump_peer_failed(hdr.org_cntr)
               : progress_.bump_failed(hdr.org_cntr);
  }
  if (rec.needs_done && !rec.done_acked) {
    peer_death ? progress_.bump_peer_failed(hdr.cmpl_cntr)
               : progress_.bump_failed(hdr.cmpl_cntr);
  }
  progress_.engine().counters().bump("lapi.failed_ops");
#ifdef SPLAP_AUDIT
  send_ledger_.remove(&rec, "SendEngine::fail_send");
#endif
  sends_.erase(it);
  progress_.notify();  // fence/term waiters re-evaluate, record reclaimed
}

// --- keepalive (Config::keepalive_interval > 0) ----------------------------

namespace {
/// Silent observation windows before a probed peer is declared dead.
constexpr int kKeepaliveMisses = 3;
}  // namespace

void SendEngine::arm_keepalive() {
  if (keepalive_armed_) return;
  keepalive_armed_ = true;
  // Raw engine event guarded by the context-lifetime token — deliberately
  // NOT a counted deferred effect: a counted tick would hold term()'s
  // quiesce loop open, and the tick stops re-arming once sends_ drains, so
  // the engine queue still empties at quiescence.
  progress_.engine().schedule_after(config_.keepalive_interval,
                                    [this, w = progress_.alive()] {
                                      if (w.expired()) return;
                                      keepalive_armed_ = false;
                                      keepalive_tick();
                                    });
}

void SendEngine::keepalive_tick() {
  // Only peers with a pending record are probed: only they can strand a
  // waiter. In accrual mode quarantined (suspected-peer) records count too —
  // probing a suspected peer is how its heal signal (the probe ack) gets
  // generated. The map keeps probe order deterministic; the first record
  // supplies the dst_epoch the probe is addressed to.
  std::map<int, const SendRecord*> targets;
  for (const auto& [id, rec] : sends_) {
    if (rec.target == task_id_) continue;
    if (rec.queued &&
        !(accrual_enabled_ && suspected_.count(rec.target) != 0)) {
      continue;
    }
    targets.try_emplace(rec.target, &rec);
  }
  const Time now = progress_.engine().now();
  std::vector<int> suspects;
  std::vector<int> dead_direct;   // fixed-miss verdicts (legacy or warmup)
  std::vector<int> dead_accrual;  // sustained-suspicion verdicts
  for (const auto& [peer, rec] : targets) {
    if (failed_peers_.count(peer) != 0) continue;
    PeerHealth& h = health_[peer];
    const AccrualEstimator* est = nullptr;
    if (accrual_enabled_) {
      auto eit = accrual_.find(peer);
      if (eit != accrual_.end() && eit->second.warmed_up()) est = &eit->second;
    }
    if (est != nullptr) {
      // Adaptive path: judge the silence against the peer's own recent
      // rhythm instead of a fixed miss count. A straggler whose replies
      // stretched the observed gaps earns a proportionally wider tolerance.
      const double s = est->suspicion(now);
      if (s >= config_.fail_threshold) {
        dead_accrual.push_back(peer);
        continue;
      }
      if (s >= config_.suspect_threshold && suspected_.count(peer) == 0) {
        suspects.push_back(peer);
      }
      if (h.heard) {
        h.heard = false;  // active traffic this interval: no probe needed
        h.misses = 0;
        continue;
      }
    } else {
      // Legacy fixed-miss rule — also the accrual detector's warmup
      // fallback, so a peer that was dead from the start (it never produced
      // a rhythm to judge silence against) is declared exactly as the
      // legacy detector would declare it: direct evidence.
      if (h.heard) {
        h.heard = false;
        h.misses = 0;
        continue;
      }
      if (++h.misses >= kKeepaliveMisses) {
        dead_direct.push_back(peer);
        continue;
      }
    }
    progress_.engine().counters().bump("lapi.keepalive_probes");
    net::Packet p = wire_.make_packet();
    p.src = task_id_;
    p.dst = peer;
    p.client = net::Client::kLapi;
    auto m = std::make_shared<WireMeta>();
    m->kind = PktKind::kProbe;
    m->epoch = epoch_;
    m->dst_epoch = rec->hdr_meta->dst_epoch;
    p.meta = std::move(m);
    p.header_bytes = progress_.cost().lapi_header_bytes + kProbeDescBytes;
    wire_.transmit(std::move(p));
  }
  for (const int peer : suspects) suspect_peer(peer);
  for (const int peer : dead_direct) {
    progress_.engine().counters().bump("lapi.keepalive_failed");
    SPLAP_WARN(progress_.engine().now(),
               "lapi task %d: keepalive declared peer %d dead after %d silent "
               "intervals",
               task_id_, peer, kKeepaliveMisses);
    fail_peer(peer);
  }
  for (const int peer : dead_accrual) {
    progress_.engine().counters().bump("lapi.accrual_failed");
    SPLAP_WARN(progress_.engine().now(),
               "lapi task %d: sustained accrual declared peer %d dead "
               "(suspicion past %g)",
               task_id_, peer, config_.fail_threshold);
    // Circumstantial evidence: the gossip layer requires corroboration
    // before other tasks latch this verdict.
    fail_peer(peer, /*direct=*/false);
  }
  if (!sends_.empty()) arm_keepalive();
}

void SendEngine::suspect_peer(int peer) {
  if (peer == task_id_ || failed_peers_.count(peer) != 0) return;
  if (!suspected_.insert(peer).second) return;
  progress_.engine().counters().bump("lapi.peer_suspected");
  SPLAP_WARN(progress_.engine().now(),
             "lapi task %d: peer %d suspected (gray failure), quarantining "
             "its sends",
             task_id_, peer);
  // Quarantine every started record: freeze the RTO (bumping the timeout
  // generation invalidates the pending timer without scheduling another, so
  // no retry — and crucially no retry-exhaustion death verdict — can fire
  // against a peer that may merely be behind a partition), return the
  // credit lease and park the record. Records already parked in
  // credit_waitq_ stay there; the suspected guard in drain_credit_waitq
  // keeps them parked until heal.
  auto& q = suspectq_[peer];
  for (auto& [id, rec] : sends_) {
    if (rec.target != peer || rec.queued) continue;
    ++rec.retry.timeout_gen;  // the pending timer dies stale: RTO frozen
    rec.queued = true;
    q.push_back(id);
    credit_return(rec, rec.credits_held);
  }
  progress_.notify();
}

void SendEngine::heal_peer(int peer) {
  if (suspected_.erase(peer) == 0) return;
  sim::Engine& engine = progress_.engine();
  engine.counters().bump("lapi.peer_healed");
  SPLAP_WARN(engine.now(),
             "lapi task %d: suspected peer %d heard from again, healing",
             task_id_, peer);
  const CostModel& cm = progress_.cost();
  auto qit = suspectq_.find(peer);
  if (qit != suspectq_.end()) {
    std::deque<std::int64_t> q = std::move(qit->second);
    suspectq_.erase(qit);
    for (const std::int64_t id : q) {
      auto it = sends_.find(id);
      if (it == sends_.end()) continue;  // reclaimed while parked
      SendRecord& rec = it->second;
      if (!rec.queued) continue;
      // A record whose payload still needs the wire must re-lease credits;
      // an over-subscribed pool routes it to the ordinary credit queue
      // instead (started by drain_credit_waitq as credits return).
      const bool flow =
          credits_.enabled() && peer != task_id_ && !rec.data_acked;
      if (flow && !(credits_.can_send(peer, rec.pkts) &&
                    credit_waitq_.count(peer) == 0)) {
        engine.counters().bump("lapi.credit_queued");
        credit_waitq_[peer].push_back(id);
        continue;  // stays queued
      }
      rec.queued = false;
      if (flow) lease_credits(rec);
      // Restart as any handler-context send: behind the dispatcher's
      // current work. Deliberately NOT charged against the retry budget —
      // the quarantine was the detector's choice, not the wire's failure.
      const Time inject_at =
          std::max(engine.now(), progress_.busy_until()) + cm.lapi_pkt_tx;
      progress_.set_busy_until(inject_at);
      rec.sent_at = inject_at;
      if (inject_at <= engine.now()) {
        if (!rec.data_acked) {
          transmit_packets(rec);
        } else {
          transmit_probe(rec);
        }
      } else {
        progress_.defer(inject_at, [this, id] {
          auto it2 = sends_.find(id);
          if (it2 == sends_.end()) return;
          if (!it2->second.data_acked) {
            transmit_packets(it2->second);
          } else {
            transmit_probe(it2->second);
          }
        });
      }
      arm_initial(id,
                  rec.data ? static_cast<std::int64_t>(rec.data->size()) : 0);
    }
  }
  drain_credit_waitq(peer);
  progress_.notify();
}

Time SendEngine::on_probe(const net::Packet& pkt) {
  const CostModel& cm = progress_.cost();
  const auto& m = *std::static_pointer_cast<const WireMeta>(pkt.meta);
  net::Packet ack = wire_.make_packet();
  ack.src = task_id_;
  ack.dst = pkt.src;
  ack.client = net::Client::kLapi;
  auto rm = std::make_shared<WireMeta>();
  rm->kind = PktKind::kProbeAck;
  rm->epoch = epoch_;
  rm->dst_epoch = m.epoch;  // addressed to the life that asked
  ack.meta = std::move(rm);
  ack.header_bytes = cm.lapi_header_bytes + kProbeDescBytes;
  wire_.transmit(std::move(ack));
  return cm.lapi_ack;
}

// --- ack / response demux ---------------------------------------------------

Time SendEngine::on_ack(const net::Packet& pkt) {
  const Time c = progress_.cost().lapi_ack;
  const Time now = progress_.engine().now();
  progress_.defer(
      now + c,
      [this, meta = std::static_pointer_cast<const WireMeta>(pkt.meta)] {
        auto it = sends_.find(meta->acked_msg);
        if (it == sends_.end()) return;  // stale/duplicate ack
        SendRecord& rec = it->second;
#ifdef SPLAP_AUDIT
        send_ledger_.expect(&rec, "SendEngine::on_ack");
#endif
        apply_grant(rec, meta->ack_pkts);
        if (meta->ack_data && !rec.data_acked) {
          // Karn's rule: only never-retransmitted messages contribute RTT
          // samples (a retransmit's ack is ambiguous).
          if (config_.adaptive_timeout && rec.retry.retries == 0) {
            channel_.on_rtt_sample(progress_.engine().now() - rec.sent_at);
          }
          rec.data_acked = true;
          --outstanding_data_;
          rec.data.reset();  // retransmit buffer released
          if (rec.org_pending) {
            rec.org_pending = false;
            progress_.bump(rec.hdr_meta->org_cntr);  // user buffer unpinned
          }
          progress_.notify();
        }
        if (meta->ack_done && rec.needs_done && !rec.done_acked) {
          rec.done_acked = true;
          progress_.bump(meta->cmpl_cntr);
        }
        if (rec.data_acked && (!rec.needs_done || rec.done_acked)) {
          release_credits(rec);
#ifdef SPLAP_AUDIT
          send_ledger_.remove(&rec, "SendEngine::on_ack");
#endif
          sends_.erase(it);
        }
      });
  return c;
}

Time SendEngine::on_rmw_resp(const net::Packet& pkt) {
  const Time c = progress_.cost().lapi_ack;
  const Time now = progress_.engine().now();
  progress_.defer(
      now + c,
      [this, meta = std::static_pointer_cast<const WireMeta>(pkt.meta)] {
        auto it = sends_.find(meta->acked_msg);
        if (it == sends_.end()) return;  // duplicate response
        release_credits(it->second);
#ifdef SPLAP_AUDIT
        send_ledger_.remove(&it->second, "SendEngine::on_rmw_resp");
#endif
        sends_.erase(it);
        --outstanding_data_;
        if (meta->rmw_prev_out != nullptr) {
          *meta->rmw_prev_out = meta->rmw_prev;
        }
        progress_.bump(meta->org_cntr);
        progress_.notify();
      });
  return c;
}

Time SendEngine::on_nack(const net::Packet& pkt) {
  const Time c = progress_.cost().lapi_ack;
  const Time now = progress_.engine().now();
  progress_.defer(
      now + c,
      [this, meta = std::static_pointer_cast<const WireMeta>(pkt.meta)] {
        auto it = sends_.find(meta->acked_msg);
        if (it == sends_.end()) return;  // already settled or failed
        SendRecord& rec = it->second;
#ifdef SPLAP_AUDIT
        send_ledger_.expect(&rec, "SendEngine::on_nack");
#endif
        // One fast retransmit per recovery round: repeated NACKs from a
        // still-full adapter must not multiply into a retransmit storm (the
        // guard resets on grant progress or an RTO retransmit).
        if (rec.queued || rec.nack_rtx) return;
        if (rec.data_acked && (!rec.needs_done || rec.done_acked)) return;
        rec.nack_rtx = true;
        progress_.engine().counters().bump("lapi.nack_fast_rtx");
        SPLAP_DEBUG(progress_.engine().now(),
                    "lapi task %d: NACK fast retransmit msg %lld to %d",
                    task_id_, static_cast<long long>(meta->acked_msg),
                    rec.target);
        if (!rec.data_acked) {
          // Skip the prefix the target's cumulative grant already covers:
          // recovery into a still-tight adapter must carry fresh packets,
          // not duplicates that re-win the same queue slots.
          transmit_packets(rec, std::max<std::int64_t>(0, rec.credits_granted));
        } else {
          transmit_probe(rec);
        }
        // Re-arm so the RTO measures from the recovery transmission (the
        // retry budget is untouched: overflow is congestion, not loss of
        // connectivity).
        arm_initial(it->first,
                    rec.data ? static_cast<std::int64_t>(rec.data->size()) : 0);
      });
  return c;
}

Time SendEngine::on_credit(const net::Packet& pkt) {
  const Time c = progress_.cost().lapi_ack;
  const Time now = progress_.engine().now();
  progress_.defer(
      now + c,
      [this, meta = std::static_pointer_cast<const WireMeta>(pkt.meta)] {
        auto it = sends_.find(meta->acked_msg);
        if (it == sends_.end()) return;  // stale update, lease long returned
        apply_grant(it->second, meta->ack_pkts);
      });
  return c;
}

bool SendEngine::all_exhausted() const {
  for (const auto& [id, rec] : sends_) {
    if (rec.retry.retries < config_.max_retries) return false;
  }
  return true;
}

}  // namespace splap::lapi
