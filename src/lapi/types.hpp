// Public types of the LAPI interface (Table 1 of the paper).
//
// The C++ API mirrors the real library's semantics one-for-one:
//   LAPI_Init/Term        -> Context construction / Context::term()
//   LAPI_Amsend           -> Context::amsend
//   LAPI_Put / LAPI_Get   -> Context::put / Context::get
//   LAPI_Rmw              -> Context::rmw (4 atomic primitives)
//   LAPI_Setcntr/Getcntr/
//   LAPI_Waitcntr         -> Context::setcntr/getcntr/waitcntr
//   LAPI_Fence/Gfence     -> Context::fence / Context::gfence
//   LAPI_Address_init     -> Context::address_init
//   LAPI_Qenv/Senv        -> Context::qenv / Context::senv
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "base/time.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace splap::lapi {

class Context;

/// Completion-signalling counter (Section 2.3). Opaque to the user: LAPI
/// updates it from the dispatcher, the user accesses it only through
/// setcntr/getcntr/waitcntr. One counter may be shared by many operations to
/// wait on them as a group.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class Context;
  friend class ProgressEngine;  // counter bumps run on the dispatcher
  std::int64_t value_ = 0;
  /// Completions that reported a failure (retry exhaustion). Such bumps
  /// still advance value_ so waiters unblock; waitcntr surfaces the error
  /// as its Status instead of hanging the waiter forever.
  std::int64_t failed_ = 0;
  /// Subset of failed_ caused by a declared-dead peer (crash-stop failover).
  /// waitcntr reports these as kPeerFailed, which takes precedence over the
  /// generic kResourceExhausted so callers can tell "the peer died" from
  /// "the network gave up".
  std::int64_t peer_failed_ = 0;
};

/// The four atomic read-modify-write primitives (Section 3).
enum class RmwOp : std::uint8_t {
  kSwap,
  kCompareAndSwap,  // swaps in_val2 iff *tgt_var == in_val1
  kFetchAndAdd,
  kFetchAndOr,
};

/// Handed to a header handler when the first packet of an active message
/// arrives at the target (Section 2.1, Step 2 in Figure 1).
struct AmDelivery {
  int origin = -1;
  std::span<const std::byte> uhdr;
  std::int64_t udata_len = 0;
};

/// What the header handler returns to the dispatcher (Step 3 in Figure 1):
/// where to copy the arriving data and which completion handler (if any) to
/// run once the whole message has been received.
struct AmReply {
  /// Target buffer for udata; must be non-null when udata_len > 0. The
  /// header handler owns buffer management (Section 5.3.1) — LAPI never
  /// allocates on the receive path.
  std::byte* buffer = nullptr;
  /// Optional completion handler, run on a completion service thread after
  /// the last byte lands. Runs in actor context: it may compute() and may
  /// block on simulated mutexes (Section 5.3.3). nullptr = none.
  std::function<void(Context&, sim::Actor&)> completion;
  /// Virtual CPU the header handler itself consumed. While it runs, no
  /// progress is made on this context's dispatcher (Section 2.1).
  Time header_cost = 0;
};

/// Header handlers execute in dispatcher (event) context and must not block.
using HeaderHandler = std::function<AmReply(Context&, const AmDelivery&)>;

/// Identifies a registered header handler. Handler tables must be built
/// identically on all tasks (the real LAPI ships a function pointer, valid
/// because every task runs the same executable image).
using AmHandlerId = int;

/// LAPI_Qenv query keys (the subset the paper exercises).
enum class Query {
  kTaskId,
  kNumTasks,
  kMaxUhdrSz,     // max user header bytes in an active message
  kMaxDataSz,     // max message length
  kPktPayload,    // user bytes that fit in one AM header packet (~900, 5.3.1)
  kInterruptSet,  // 1 = interrupt mode, 0 = polling
  kCmplThreads,   // completion-handler service threads
};

/// LAPI_Senv settable keys.
enum class Setting {
  kInterruptSet,  // toggle interrupt vs polling mode at runtime
};

/// LAPI_Init-registered error handler: invoked (once per failed peer, on
/// this context's completion-handler pool, so it runs in actor context and
/// may block) when the library declares a peer task dead — by retry
/// exhaustion or by keepalive probe timeout. `status` is kPeerFailed.
using ErrorHandler = std::function<void(Context&, int failed_task,
                                        Status status)>;

struct Config {
  /// Interrupt (true) or polling (false) mode at init; LAPI_Senv can change
  /// it later. "The typical mode of operation is expected to be interrupt
  /// mode" (Section 2.1).
  bool interrupt_mode = true;
  /// Completion-handler service threads (1 on the 1998 implementation;
  /// multiple threads are the paper's future-work item for SMP nodes).
  int completion_threads = 1;
  /// Run completion handlers on stackless service actors: jobs execute
  /// inline on the engine thread instead of parking a dedicated OS thread
  /// per context. Saves one thread per node at scale (1024-node runs halve
  /// their thread count) but requires every completion handler to finish
  /// without suspending — handlers that block (the GA accumulate mutex)
  /// need the threaded default. Contract details: DESIGN.md engine
  /// internals, "stackless actors".
  bool stackless_completions = false;
  /// Retransmission: first timeout; doubles per retry. Generous by default:
  /// a busy dispatcher (e.g. a GA header handler streaming reply chunks)
  /// can legitimately delay acks by more than a millisecond. With
  /// adaptive_timeout set this is only the pre-estimate timeout used until
  /// the first ack RTT sample arrives.
  Time retransmit_timeout = milliseconds(4.0);
  /// Retries before the operation is abandoned and completed with
  /// Status::kResourceExhausted (surfaced through waitcntr on the origin
  /// and completion counters; the in-flight record is fully reclaimed).
  int max_retries = 12;

  // --- adaptive retransmission (Jacobson/Karn) ---------------------------
  /// Derive the retransmit timeout from smoothed ack round-trip times
  /// (SRTT + 4*RTTVAR, Jacobson), with exponential backoff plus
  /// deterministic seeded jitter per retry and Karn's rule (retransmitted
  /// messages contribute no RTT samples). Off by default: the fixed
  /// timeout is deliberately generous (a busy target dispatcher delays
  /// acks far beyond the smoothed estimate of quiet-time ops, and a
  /// spurious retransmit perturbs calibrated timings), so the adaptive
  /// policy is opt-in for lossy/faulted environments where fast loss
  /// recovery matters more than undisturbed clean-path timing.
  bool adaptive_timeout = false;
  /// Clamp for the adaptive estimate (the fixed-timeout path ignores both).
  Time rto_min = microseconds(150);
  Time rto_max = milliseconds(250);
  /// Each backed-off retry delay adds a uniform draw in
  /// [0, delay * backoff_jitter) so synchronized losers unsynchronize
  /// without any wall-clock randomness (the Rng is seeded from jitter_seed
  /// and the task id).
  double backoff_jitter = 0.25;
  std::uint64_t jitter_seed = 0x7e57a11;

  // --- end-to-end flow control (all default off: golden traces unchanged) --
  /// Per-peer packet-credit window (the real LAPI's token scheme over the
  /// TB3 adapter's finite buffering). A message leases one credit per wire
  /// packet before it may start toward a peer; credits return as the target
  /// reports ingested packets (piggybacked on acks, or via standalone
  /// kCredit updates) and are fully restored when the send record settles or
  /// is abandoned. 0 = no flow control.
  std::int64_t credit_window = 0;
  /// Target side: emit a standalone kCredit update after this many newly
  /// ingested packets of a still-incomplete message, so large streams return
  /// credits before the final ack. 0 = piggybacked grants only.
  std::int64_t credit_update_interval = 0;
  /// Cap on concurrently open partial (incomplete) reassembly entries per
  /// task. When full, packets that would open a new partial are shed (the
  /// origin recovers by NACK/retransmission, surfacing kResourceExhausted
  /// only if retries exhaust). 0 = unbounded.
  std::int64_t max_partials = 0;
  /// Reclaim partial assemblies idle longer than this (lazy sweep on new
  /// partial creation), covering origins that died without a kCancel.
  /// 0 = no TTL sweep; the explicit giveup/kCancel reclaim is always on.
  Time partial_ttl = 0;
  /// Sender-side link pacing: an actor-context call whose TX link backlog
  /// exceeds this parks (blocks computing) until the backlog drains to the
  /// limit, instead of over-injecting. 0 = no pacing.
  Time max_injection_backlog = 0;

  // --- registered-memory zero-copy (default off: golden traces unchanged) --
  /// Enable the zero-copy protocol: contiguous/strided Puts (and Get
  /// replies) at or above rdma_threshold ride registered-memory packets
  /// that the adapter scatters straight into the target region — no
  /// staging buffer, no receive-side copy charge. Reliability, credits and
  /// NACK recovery are unchanged underneath (the packets still flow through
  /// ReliableChannel); only the per-packet format and the copy accounting
  /// differ.
  bool rdma_enabled = false;
  /// Minimum message length (bytes) for the zero-copy protocol. Below this
  /// the eager/rendezvous split at CostModel::lapi_bcopy_limit applies
  /// unchanged. The default sits near the cold-cache break-even point of
  /// the modeled pin cost; with a warm registration cache the effective
  /// crossover is far lower, so benchmarks probing the cache lower it.
  std::int64_t rdma_threshold = 128 * 1024;
  /// Capacity of the per-context registration (pin) cache, in regions.
  /// A zero-copy transfer pins its source and target regions: a cache hit
  /// is free, a miss pays CostModel::pin_time. Entries are evicted LRU and
  /// invalidated when the peer's epoch bumps (restart_node) or the peer is
  /// declared dead. 0 = no caching: every transfer repins (always cold).
  std::int64_t reg_cache_entries = 64;

  // --- crash-stop failure detection (default off: golden traces unchanged) --
  /// Keepalive probe period. While this context has sends pending toward a
  /// peer, it probes peers that stayed silent for a full period; three
  /// silent periods declare the peer dead and fail over every queued and
  /// pending record to it at once (Status::kPeerFailed). 0 = keepalive off;
  /// retry exhaustion then remains the only death detector.
  Time keepalive_interval = 0;

  // --- gray-failure detection (inert unless keepalive_interval > 0) --------
  /// Force the legacy fixed-miss keepalive (three silent periods -> dead)
  /// instead of the adaptive accrual detector. Kept for comparison: the
  /// legacy detector declares a slow-but-alive peer dead, which is exactly
  /// the gray-failure false positive the accrual detector avoids.
  bool keepalive_legacy = false;
  /// Accrual suspicion level (silence over the smoothed inter-arrival
  /// expectation) at which a peer becomes *suspected*: its sends are
  /// quarantined (credits returned, RTO frozen) instead of failed, and it
  /// heals on any contact. Roughly "the peer has been silent N times longer
  /// than its recent traffic predicts".
  double suspect_threshold = 2.0;
  /// Suspicion level at which sustained accrual escalates a suspected peer
  /// to the full fail_peer cascade. This verdict is circumstantial (no
  /// retry exhaustion), so its gossip needs corroboration — see
  /// suspicion_quorum.
  double fail_threshold = 8.0;
  /// Inter-arrival samples the per-peer accrual estimator remembers. Until
  /// it has observed AccrualEstimator::kWarmupSamples gaps the detector
  /// falls back to the legacy fixed-miss rule (a peer that was never heard
  /// from has no rhythm to judge silence against).
  int accrual_window = 16;
  /// Distinct observers (gossip reporters plus this task's own suspicion)
  /// required before an accrual-only death verdict received via gossip
  /// latches locally. Direct evidence (retry exhaustion, warmup-fallback
  /// keepalive) always latches immediately. Prevents one partitioned
  /// observer from split-braining a healthy task.
  int suspicion_quorum = 2;

  /// Error handler registered at LAPI_Init. nullptr = none; peer failure is
  /// then observable only through kPeerFailed completions and gfence.
  ErrorHandler error_handler;
};

}  // namespace splap::lapi
