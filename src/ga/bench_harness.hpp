// Measurement harness reproducing the paper's synthetic GA benchmark
// (Section 5.4): four nodes; node 0 times a series of get/put operations on
// remote array sections, round-robin over the other nodes, referencing a
// different patch each time to avoid caching effects; the series length
// decreases as the request size increases. Both square 2-D and 1-D sections
// are measured. Also provides the raw LAPI/MPI microbenchmarks behind
// Table 2 and Figure 2 so every bench binary and the calibration tests share
// one implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "ga/runtime.hpp"

namespace splap::ga::bench {

enum class OpKind { kPut, kGet };
enum class Shape { k1D, k2D };

struct BwPoint {
  std::int64_t bytes;
  double mb_s;
};

/// Series length for a request size (decreasing, as in the paper).
int series_length(std::int64_t bytes);

/// GA put/get bandwidth at one request size on a 4-node machine.
double ga_bandwidth_mb_s(Transport transport, OpKind op, Shape shape,
                         std::int64_t bytes);

/// Sweep over sizes.
std::vector<BwPoint> ga_bandwidth_sweep(Transport transport, OpKind op,
                                        Shape shape,
                                        const std::vector<std::int64_t>& sizes);

/// Single-element (8-byte) GA operation latency in microseconds
/// (Section 5.4: 94.2us get / 49.6us put under LAPI; 221 / 54.6 under MPL).
struct GaLatency {
  double put_us;
  double get_us;
};
GaLatency ga_latency_us(Transport transport);

/// Raw LAPI_Put one-way bandwidth (put + completion wait), for the
/// "GA put within 6% of LAPI_Put" comparison and Figure 2.
double raw_lapi_put_mb_s(std::int64_t bytes, bool interrupt_mode = false);

/// Protocol-forced variant of the raw put series, for the three-protocol
/// sweep behind BENCH_rdma.json: the lapi::Config carries the rdma knobs
/// (and cache sizing), and bcopy_limit_override forces the eager protocol
/// curve when set to a value above the sweep sizes (< 0 keeps the model's
/// default split). The same put+waitcntr series as raw_lapi_put_mb_s, so
/// the curves are directly comparable.
struct RawPutOpts {
  lapi::Config lapi;
  std::int64_t bcopy_limit_override = -1;
};
double raw_lapi_put_mb_s(std::int64_t bytes, const RawPutOpts& opts);

/// Raw MPI send/recv one-way bandwidth with a completion echo (Figure 2).
double raw_mpi_mb_s(std::int64_t bytes, std::int64_t eager_limit);

}  // namespace splap::ga::bench
