// The LAPI transport of Global Arrays (Section 5.3): hybrid protocols that
// switch between direct remote memory copy and pipelined ~900-byte active
// messages, generalized per-target counters, the preallocated AM buffer
// pool, and mutex-protected atomic accumulate.
#include <algorithm>
#include <cstring>
#include <map>

#include "base/log.hpp"
#include "ga/runtime.hpp"
#include "ga/wire.hpp"

namespace splap::ga {

using wire::Hdr;
using wire::Op;

namespace {

/// Build an AM user header [Hdr | packed data from `src`].
std::vector<std::byte> pack_chunk(const Hdr& h, const StridedRegion& src) {
  auto msg = wire::make_msg(h, src.total_bytes());
  copy_strided_to_contig(src, wire::payload_mut(msg));
  return msg;
}

}  // namespace

void Runtime::lapi_init() {
  ctx_ = std::make_unique<lapi::Context>(node_, config_.lapi);
  ga_handler_ = ctx_->register_handler(
      [this](lapi::Context& c, const lapi::AmDelivery& d) {
        return lapi_handle_am(c, d);
      });
  // Exchange the atomic-cell bases once, so read_inc/lock can address any
  // task's cells directly with LAPI_Rmw.
  std::vector<void*> table(static_cast<std::size_t>(nprocs()));
  ctx_->address_init(cells_.data(), table);
  for (std::size_t t = 0; t < table.size(); ++t) {
    cell_bases_[t] = static_cast<std::int64_t*>(table[t]);
  }
}

// ---------------------------------------------------------------------------
// put / accumulate
// ---------------------------------------------------------------------------

void Runtime::lapi_put_acc(int id, const Patch& p, const double* buf,
                           std::int64_t ld, bool acc, double alpha) {
  node_.task().compute(cost().ga_op_overhead);
  ArrayState& st = state(id);
  lapi::Counter org;
  int org_waits = 0;
  // Scratch buffers for packed sends must outlive the zero-copy window
  // (until the final org wait below).
  std::vector<std::vector<double>> scratch;

  for (const auto& [owner, piece] : st.dist.decompose(p)) {
    const double* pbuf = buf + (piece.lo2 - p.lo2) * ld + (piece.lo1 - p.lo1);
    const StridedRegion src = user_region(piece, pbuf, ld);
    const std::int64_t bytes = piece.elems() * 8;

    if (owner == me()) {
      // Local piece: plain copy / mutex-protected daxpy (Section 5.3.3: the
      // application thread contends with the handler threads).
      StridedRegion dst = region_of(st, me(), piece, st.local.data());
      if (acc) {
        acc_mutex_->lock();
        node_.task().compute(2 * cost().copy_time(bytes));
        daxpy_strided(alpha, src, dst);
        acc_mutex_->unlock();
      } else {
        node_.task().compute(cost().copy_time(bytes));
        copy_strided(src, dst);
      }
      continue;
    }

    GenCntr& g = gen_[static_cast<std::size_t>(owner)];
    const Patch blk = st.dist.block(owner);

    if (!acc && config_.lapi.rdma_enabled &&
        bytes >= config_.big_request_bytes &&
        !contiguous_in_block(piece, blk)) {
      // Zero-copy path: one registered-memory Putv moves the whole strided
      // piece — the adapter scatter/gather engine replaces the per-column
      // RMC fan-out (and its per-column request overhead) and lands the
      // data without a receive-side copy.
      engine().counters().bump("ga.lapi.rdma_putv");
      StridedRegion dst = region_of(st, owner, piece,
                                    st.bases[static_cast<std::size_t>(owner)]);
      const Status s = ctx_->putv(owner, src, dst, nullptr, &org, &g.cntr);
      SPLAP_REQUIRE(s == Status::kOk, "GA rdma putv failed");
      ++org_waits;
      ++g.outstanding;
      g.last_op = static_cast<std::uint8_t>(Op::kPutChunk);
      continue;
    }

    if (!acc && bytes >= config_.big_request_bytes &&
        !contiguous_in_block(piece, blk)) {
      // Very large strided request: switch to one direct LAPI_Put per
      // column (Section 5.4: "GA switches to LAPI_Put protocol to send
      // individual columns of a 2-D patch").
      engine().counters().bump("ga.lapi.rmc_columns");
      for (std::int64_t c = piece.lo2; c <= piece.hi2; ++c) {
        Patch col = piece;
        col.lo2 = col.hi2 = c;
        StridedRegion dst = region_of(st, owner, col,
                                      st.bases[static_cast<std::size_t>(owner)]);
        const double* cbuf = pbuf + (c - piece.lo2) * ld;
        const Status s = ctx_->put(
            owner,
            std::span<const std::byte>(
                reinterpret_cast<const std::byte*>(cbuf),
                static_cast<std::size_t>(col.rows() * 8)),
            dst.base, nullptr, &org, &g.cntr);
        SPLAP_REQUIRE(s == Status::kOk, "GA put column failed");
        ++org_waits;
        ++g.outstanding;
      }
      g.last_op = static_cast<std::uint8_t>(Op::kPutChunk);
      continue;
    }

    if (!acc && contiguous_in_block(piece, blk)) {
      // 1-D / contiguous request: direct remote memory copy, no copies at
      // either end (the paper's best case for GA put, Section 5.4).
      engine().counters().bump("ga.lapi.rmc_direct");
      StridedRegion dst = region_of(st, owner, piece,
                                    st.bases[static_cast<std::size_t>(owner)]);
      std::span<const std::byte> data;
      if (src.contiguous()) {
        data = std::span<const std::byte>(src.base,
                                          static_cast<std::size_t>(bytes));
      } else {
        // User side strided: pack once (charged) and send from scratch.
        scratch.emplace_back(static_cast<std::size_t>(piece.elems()));
        node_.task().compute(cost().copy_time(bytes));
        copy_strided_to_contig(src,
                               reinterpret_cast<std::byte*>(scratch.back().data()));
        data = std::span<const std::byte>(
            reinterpret_cast<const std::byte*>(scratch.back().data()),
            static_cast<std::size_t>(bytes));
      }
      const Status s = ctx_->put(owner, data, dst.base, nullptr, &org, &g.cntr);
      SPLAP_REQUIRE(s == Status::kOk, "GA put failed");
      ++org_waits;
      ++g.outstanding;
      g.last_op = static_cast<std::uint8_t>(Op::kPutChunk);
      continue;
    }

    if (!acc && config_.use_strided_rmc) {
      // Section 6 extension: one LAPI_Putv moves the whole strided piece —
      // no per-chunk requests, no handler-side copies.
      engine().counters().bump("ga.lapi.putv");
      StridedRegion dst = region_of(st, owner, piece,
                                    st.bases[static_cast<std::size_t>(owner)]);
      const Status s = ctx_->putv(owner, src, dst, nullptr, &org, &g.cntr);
      SPLAP_REQUIRE(s == Status::kOk, "GA putv failed");
      ++org_waits;
      ++g.outstanding;
      g.last_op = static_cast<std::uint8_t>(Op::kPutChunk);
      continue;
    }

    // Strided small/medium request (or any accumulate): the AM protocol —
    // the data travels in ~900-byte user headers, pipelined (Section 5.3.1).
    engine().counters().bump(acc ? "ga.lapi.am_acc" : "ga.lapi.am_put");
    for (const Patch& chunk : chunk_patch(piece)) {
      const double* cbuf =
          buf + (chunk.lo2 - p.lo2) * ld + (chunk.lo1 - p.lo1);
      Hdr h;
      h.op = acc ? Op::kAccChunk : Op::kPutChunk;
      h.array_id = id;
      h.origin = me();
      h.piece = chunk;
      h.alpha = alpha;
      const auto msg = pack_chunk(h, user_region(chunk, cbuf, ld));
      node_.task().compute(
          cost().copy_time(static_cast<std::int64_t>(msg.size())));
      const Status s = ctx_->amsend(owner, ga_handler_, msg, {}, nullptr,
                                    nullptr, &g.cntr);
      SPLAP_REQUIRE(s == Status::kOk, "GA AM chunk failed");
      ++g.outstanding;
    }
    g.last_op = static_cast<std::uint8_t>(acc ? Op::kAccChunk : Op::kPutChunk);
  }

  // put/acc return once the source buffer is reusable.
  if (org_waits > 0) note(ctx_->waitcntr(org, org_waits));
}

// ---------------------------------------------------------------------------
// get
// ---------------------------------------------------------------------------

void Runtime::lapi_get(int id, const Patch& p, double* buf, std::int64_t ld) {
  node_.task().compute(cost().ga_op_overhead);
  ArrayState& st = state(id);
  lapi::Counter done;
  std::int64_t expected = 0;

  for (const auto& [owner, piece] : st.dist.decompose(p)) {
    double* pbuf = buf + (piece.lo2 - p.lo2) * ld + (piece.lo1 - p.lo1);
    const StridedRegion dst_user = user_region(piece, pbuf, ld);
    const std::int64_t bytes = piece.elems() * 8;

    if (owner == me()) {
      StridedRegion src = region_of(st, me(), piece, st.local.data());
      node_.task().compute(cost().copy_time(bytes));
      copy_strided(src, dst_user);
      continue;
    }

    const Patch blk = st.dist.block(owner);
    const bool src_contig = contiguous_in_block(piece, blk);

    if (src_contig && dst_user.contiguous()) {
      // 1-D: direct LAPI_Get, zero intermediate copies (Section 5.4).
      engine().counters().bump("ga.lapi.rmc_direct");
      StridedRegion src = region_of(st, owner, piece,
                                    st.bases[static_cast<std::size_t>(owner)]);
      const Status s = ctx_->get(owner, bytes, src.base, dst_user.base,
                                 nullptr, &done);
      SPLAP_REQUIRE(s == Status::kOk, "GA get failed");
      ++expected;
      continue;
    }

    if (config_.lapi.rdma_enabled && bytes >= config_.big_request_bytes &&
        !src_contig) {
      // Zero-copy path: one registered-memory Getv pulls the whole strided
      // piece; the serving side gather-streams from its registered region
      // and the reply scatters straight into the user destination.
      engine().counters().bump("ga.lapi.rdma_getv");
      StridedRegion src = region_of(st, owner, piece,
                                    st.bases[static_cast<std::size_t>(owner)]);
      const Status s = ctx_->getv(owner, src, dst_user, nullptr, &done);
      SPLAP_REQUIRE(s == Status::kOk, "GA rdma getv failed");
      ++expected;
      continue;
    }

    if (bytes >= config_.big_request_bytes || src_contig) {
      // Large 2-D (or contiguous source into a strided destination): one
      // direct LAPI_Get per column, each contiguous at both ends.
      engine().counters().bump("ga.lapi.rmc_columns");
      for (std::int64_t c = piece.lo2; c <= piece.hi2; ++c) {
        Patch col = piece;
        col.lo2 = col.hi2 = c;
        StridedRegion src = region_of(st, owner, col,
                                      st.bases[static_cast<std::size_t>(owner)]);
        double* cbuf = pbuf + (c - piece.lo2) * ld;
        const Status s =
            ctx_->get(owner, col.rows() * 8, src.base,
                      reinterpret_cast<std::byte*>(cbuf), nullptr, &done);
        SPLAP_REQUIRE(s == Status::kOk, "GA get column failed");
        ++expected;
      }
      continue;
    }

    if (config_.use_strided_rmc) {
      // Section 6 extension: one LAPI_Getv pulls the whole strided piece.
      engine().counters().bump("ga.lapi.getv");
      StridedRegion src = region_of(st, owner, piece,
                                    st.bases[static_cast<std::size_t>(owner)]);
      const Status s = ctx_->getv(owner, src, dst_user, nullptr, &done);
      SPLAP_REQUIRE(s == Status::kOk, "GA getv failed");
      ++expected;
      continue;
    }

    // Strided small/medium: AM request; the target streams the data back in
    // ~900-byte reply messages, each bumping `done` on arrival.
    engine().counters().bump("ga.lapi.am_get");
    Hdr h;
    h.op = Op::kGetReq;
    h.array_id = id;
    h.origin = me();
    h.piece = piece;
    h.reply_buf = buf;
    h.reply_ld = ld;
    h.reply_lo1 = p.lo1;
    h.reply_lo2 = p.lo2;
    h.reply_cntr = &done;
    const auto msg = wire::make_msg(h, 0);
    const Status s =
        ctx_->amsend(owner, ga_handler_, msg, {}, nullptr, nullptr, nullptr);
    SPLAP_REQUIRE(s == Status::kOk, "GA get request failed");
    expected += static_cast<std::int64_t>(chunk_patch(piece).size());
  }

  // GA get is blocking (Section 5.4).
  if (expected > 0) note(ctx_->waitcntr(done, expected));
}

// ---------------------------------------------------------------------------
// scatter / gather
// ---------------------------------------------------------------------------

void Runtime::lapi_scatter(int id, std::span<const double> v,
                           std::span<const std::int64_t> si,
                           std::span<const std::int64_t> sj) {
  node_.task().compute(cost().ga_op_overhead);
  ArrayState& st = state(id);
  std::map<int, std::vector<std::size_t>> by_owner;
  for (std::size_t k = 0; k < v.size(); ++k) {
    by_owner[st.dist.owner(si[k], sj[k])].push_back(k);
  }
  const std::int64_t per_msg =
      (am_payload_doubles() * 8) / static_cast<std::int64_t>(sizeof(wire::Elem));
  for (const auto& [owner, idxs] : by_owner) {
    if (owner == me()) {
      const Patch blk = st.dist.block(me());
      node_.task().compute(
          cost().copy_time(static_cast<std::int64_t>(idxs.size()) * 24));
      for (const std::size_t k : idxs) {
        st.local[static_cast<std::size_t>((sj[k] - blk.lo2) * blk.rows() +
                                          (si[k] - blk.lo1))] = v[k];
      }
      continue;
    }
    GenCntr& g = gen_[static_cast<std::size_t>(owner)];
    for (std::size_t base = 0; base < idxs.size();
         base += static_cast<std::size_t>(per_msg)) {
      const auto n = std::min(static_cast<std::size_t>(per_msg),
                              idxs.size() - base);
      Hdr h;
      h.op = Op::kScatterChunk;
      h.array_id = id;
      h.origin = me();
      h.nelems = static_cast<std::int64_t>(n);
      auto msg =
          wire::make_msg(h, static_cast<std::int64_t>(n * sizeof(wire::Elem)));
      auto* elems = reinterpret_cast<wire::Elem*>(wire::payload_mut(msg));
      for (std::size_t x = 0; x < n; ++x) {
        const std::size_t k = idxs[base + x];
        elems[x] = wire::Elem{si[k], sj[k], v[k]};
      }
      node_.task().compute(
          cost().copy_time(static_cast<std::int64_t>(msg.size())));
      const Status s = ctx_->amsend(owner, ga_handler_, msg, {}, nullptr,
                                    nullptr, &g.cntr);
      SPLAP_REQUIRE(s == Status::kOk, "GA scatter chunk failed");
      ++g.outstanding;
    }
    g.last_op = static_cast<std::uint8_t>(Op::kScatterChunk);
  }
}

void Runtime::lapi_gather(int id, std::span<double> v,
                          std::span<const std::int64_t> si,
                          std::span<const std::int64_t> sj) {
  node_.task().compute(cost().ga_op_overhead);
  ArrayState& st = state(id);
  std::map<int, std::vector<std::size_t>> by_owner;
  for (std::size_t k = 0; k < v.size(); ++k) {
    by_owner[st.dist.owner(si[k], sj[k])].push_back(k);
  }
  lapi::Counter done;
  std::int64_t expected = 0;
  // Size request chunks so each reply also fits one message (request
  // entries are larger than reply entries).
  const std::int64_t per_msg =
      (am_payload_doubles() * 8) /
      static_cast<std::int64_t>(sizeof(wire::GatherReqElem));
  for (const auto& [owner, idxs] : by_owner) {
    if (owner == me()) {
      const Patch blk = st.dist.block(me());
      node_.task().compute(
          cost().copy_time(static_cast<std::int64_t>(idxs.size()) * 16));
      for (const std::size_t k : idxs) {
        v[k] = st.local[static_cast<std::size_t>(
            (sj[k] - blk.lo2) * blk.rows() + (si[k] - blk.lo1))];
      }
      continue;
    }
    for (std::size_t base = 0; base < idxs.size();
         base += static_cast<std::size_t>(per_msg)) {
      const auto n = std::min(static_cast<std::size_t>(per_msg),
                              idxs.size() - base);
      Hdr h;
      h.op = Op::kGatherReq;
      h.array_id = id;
      h.origin = me();
      h.nelems = static_cast<std::int64_t>(n);
      h.gather_dest = v.data();
      h.reply_cntr = &done;
      auto msg = wire::make_msg(
          h, static_cast<std::int64_t>(n * sizeof(wire::GatherReqElem)));
      auto* elems =
          reinterpret_cast<wire::GatherReqElem*>(wire::payload_mut(msg));
      for (std::size_t x = 0; x < n; ++x) {
        const std::size_t k = idxs[base + x];
        elems[x] = wire::GatherReqElem{static_cast<std::int64_t>(k), si[k],
                                       sj[k]};
      }
      node_.task().compute(
          cost().copy_time(static_cast<std::int64_t>(msg.size())));
      const Status s = ctx_->amsend(owner, ga_handler_, msg, {}, nullptr,
                                    nullptr, nullptr);
      SPLAP_REQUIRE(s == Status::kOk, "GA gather request failed");
      ++expected;  // one reply message per request chunk
    }
  }
  if (expected > 0) note(ctx_->waitcntr(done, expected));
}

// ---------------------------------------------------------------------------
// The GA active-message header handler (runs in the LAPI dispatcher).
// ---------------------------------------------------------------------------

lapi::AmReply Runtime::lapi_handle_am(lapi::Context& c,
                                      const lapi::AmDelivery& d) {
  const Hdr& h = wire::hdr_of(d.uhdr);
  const auto payload = wire::payload_of(d.uhdr);
  const CostModel& cm = cost();
  lapi::AmReply reply;
  reply.header_cost = cm.ga_deliver;

  switch (h.op) {
    case Op::kPutChunk: {
      ArrayState& st = state(h.array_id);
      StridedRegion dst = region_of(st, me(), h.piece, st.local.data());
      copy_contig_to_strided(payload.data(), dst);
      reply.header_cost +=
          cm.copy_time(static_cast<std::int64_t>(payload.size()));
      return reply;
    }

    case Op::kAccChunk: {
      ArrayState& st = state(h.array_id);
      StridedRegion dst = region_of(st, me(), h.piece, st.local.data());
      const auto bytes = static_cast<std::int64_t>(payload.size());
      if (acc_mutex_->try_lock()) {
        // Fast path: apply in the header handler. The paper's Section 5.3.3
        // warns against BLOCKING here — try_lock is the non-blocking probe.
        daxpy_contig_to_strided(h.alpha, payload.data(), dst);
        acc_mutex_->unlock();
        reply.header_cost += 2 * cm.copy_time(bytes);
        engine().counters().bump("ga.acc_in_header");
        return reply;
      }
      // Contended: stage the data in a preallocated AM buffer and let a
      // completion handler apply it under the mutex (Section 5.3.1/5.3.3).
      std::byte* stagebuf = nullptr;
      std::shared_ptr<std::vector<std::byte>> overflow;
      if (payload.size() <= am_pool_->buffer_bytes()) {
        stagebuf = am_pool_->try_acquire();
      }
      if (stagebuf == nullptr) {
        // Pool exhausted (or oversized chunk): emergency heap buffer,
        // counted — dynamic allocation is what Section 5.3.1 avoids, so the
        // pool is sized to make this rare.
        overflow = std::make_shared<std::vector<std::byte>>(payload.size());
        stagebuf = overflow->data();
        ++pool_overflows_;
        engine().counters().bump("ga.pool_overflow");
      }
      std::memcpy(stagebuf, payload.data(), payload.size());
      reply.header_cost += cm.copy_time(bytes);  // staging copy
      engine().counters().bump("ga.acc_in_completion");
      reply.completion = [this, stagebuf, overflow, dst, alpha = h.alpha,
                          bytes](lapi::Context&, sim::Actor& svc) {
        acc_mutex_->lock();  // may block: we are on a service thread
        svc.compute(2 * cost().copy_time(bytes));
        daxpy_contig_to_strided(alpha, stagebuf, dst);
        acc_mutex_->unlock();
        if (!overflow) am_pool_->release(stagebuf);
      };
      return reply;
    }

    case Op::kGetReq: {
      ArrayState& st = state(h.array_id);
      // Serve: stream the piece back as pipelined reply chunks; each reply
      // bumps the requester's counter on arrival (its tgt_cntr).
      for (const Patch& chunk : chunk_patch(h.piece)) {
        StridedRegion src = region_of(st, me(), chunk, st.local.data());
        Hdr rh;
        rh.op = Op::kGetReply;
        rh.array_id = h.array_id;
        rh.origin = me();
        rh.piece = chunk;
        rh.reply_buf = h.reply_buf;
        rh.reply_ld = h.reply_ld;
        rh.reply_lo1 = h.reply_lo1;
        rh.reply_lo2 = h.reply_lo2;
        const auto msg = pack_chunk(rh, src);
        reply.header_cost +=
            cm.copy_time(static_cast<std::int64_t>(msg.size()));
        const Status s = c.amsend(h.origin, ga_handler_, msg, {},
                                  h.reply_cntr, nullptr, nullptr);
        SPLAP_REQUIRE(s == Status::kOk, "GA get reply failed");
      }
      return reply;
    }

    case Op::kGetReply: {
      double* base = h.reply_buf + (h.piece.lo2 - h.reply_lo2) * h.reply_ld +
                     (h.piece.lo1 - h.reply_lo1);
      StridedRegion dst = user_region(h.piece, base, h.reply_ld);
      copy_contig_to_strided(payload.data(), dst);
      reply.header_cost +=
          cm.copy_time(static_cast<std::int64_t>(payload.size()));
      return reply;
    }

    case Op::kScatterChunk: {
      ArrayState& st = state(h.array_id);
      const Patch blk = st.dist.block(me());
      const auto* elems =
          reinterpret_cast<const wire::Elem*>(payload.data());
      for (std::int64_t k = 0; k < h.nelems; ++k) {
        st.local[static_cast<std::size_t>(
            (elems[k].j - blk.lo2) * blk.rows() + (elems[k].i - blk.lo1))] =
            elems[k].v;
      }
      reply.header_cost +=
          cm.copy_time(static_cast<std::int64_t>(payload.size()));
      return reply;
    }

    case Op::kGatherReq: {
      ArrayState& st = state(h.array_id);
      const Patch blk = st.dist.block(me());
      const auto* req =
          reinterpret_cast<const wire::GatherReqElem*>(payload.data());
      Hdr rh;
      rh.op = Op::kGatherReply;
      rh.array_id = h.array_id;
      rh.origin = me();
      rh.nelems = h.nelems;
      rh.gather_dest = h.gather_dest;
      auto msg = wire::make_msg(
          rh, h.nelems * static_cast<std::int64_t>(sizeof(wire::GatherReplyElem)));
      auto* out =
          reinterpret_cast<wire::GatherReplyElem*>(wire::payload_mut(msg));
      for (std::int64_t k = 0; k < h.nelems; ++k) {
        out[k].slot = req[k].slot;
        out[k].v = st.local[static_cast<std::size_t>(
            (req[k].j - blk.lo2) * blk.rows() + (req[k].i - blk.lo1))];
      }
      reply.header_cost +=
          cm.copy_time(static_cast<std::int64_t>(msg.size()));
      const Status s = c.amsend(h.origin, ga_handler_, msg, {}, h.reply_cntr,
                                nullptr, nullptr);
      SPLAP_REQUIRE(s == Status::kOk, "GA gather reply failed");
      return reply;
    }

    case Op::kGatherReply: {
      const auto* in =
          reinterpret_cast<const wire::GatherReplyElem*>(payload.data());
      for (std::int64_t k = 0; k < h.nelems; ++k) {
        h.gather_dest[in[k].slot] = in[k].v;
      }
      reply.header_cost +=
          cm.copy_time(static_cast<std::int64_t>(payload.size()));
      return reply;
    }

    default:
      SPLAP_REQUIRE(false, "MPL opcode on the LAPI transport");
  }
  return reply;
}

void Runtime::op_scatter(int id, std::span<const double> v,
                         std::span<const std::int64_t> i,
                         std::span<const std::int64_t> j) {
  SPLAP_REQUIRE(v.size() == i.size() && v.size() == j.size(),
                "scatter subscript arrays must match the value count");
  engine().counters().bump("ga.scatter");
  if (config_.transport == Transport::kLapi) {
    lapi_scatter(id, v, i, j);
  } else {
    mpl_scatter(id, v, i, j);
  }
}

void Runtime::op_gather(int id, std::span<double> v,
                        std::span<const std::int64_t> i,
                        std::span<const std::int64_t> j) {
  SPLAP_REQUIRE(v.size() == i.size() && v.size() == j.size(),
                "gather subscript arrays must match the value count");
  engine().counters().bump("ga.gather");
  if (config_.transport == Transport::kLapi) {
    lapi_gather(id, v, i, j);
  } else {
    mpl_gather(id, v, i, j);
  }
}

}  // namespace splap::ga
