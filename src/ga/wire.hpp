// Internal wire format of the GA protocols — shared by the LAPI transport
// (carried in the active-message user header, Section 5.3) and the MPL
// transport (the front of each combined header+data request message,
// Section 5.2). Not part of the public API.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "ga/distribution.hpp"
#include "lapi/types.hpp"

namespace splap::ga::wire {

enum class Op : std::uint8_t {
  // LAPI active-message protocol (Section 5.3).
  kPutChunk,
  kAccChunk,
  kGetReq,
  kGetReply,
  kScatterChunk,
  kGatherReq,
  kGatherReply,
  // MPL request protocol (Section 5.2).
  kMplPut,
  kMplAcc,
  kMplGet,
  kMplScatter,
  kMplGather,
  kFlush,
  kReadInc,
  kLock,
  kUnlock,
};

/// POD header. Raw pointers are valid across tasks because the simulation
/// shares one process image (see lapi/protocol.hpp).
struct Hdr {
  Op op = Op::kPutChunk;
  int array_id = -1;
  int origin = -1;
  Patch piece;
  double alpha = 1.0;
  // Reply routing for get/gather.
  double* reply_buf = nullptr;
  std::int64_t reply_ld = 0;
  std::int64_t reply_lo1 = 0;
  std::int64_t reply_lo2 = 0;
  lapi::Counter* reply_cntr = nullptr;
  double* gather_dest = nullptr;
  std::int64_t nelems = 0;
  // MPL extras.
  std::int64_t reply_tag = 0;
  int cell = 0;
  std::int64_t inc = 0;
};

/// Scatter payload entry; gather requests carry {slot, i, j} and replies
/// carry {slot, v} pairs.
struct Elem {
  std::int64_t i;
  std::int64_t j;
  double v;
};
struct GatherReqElem {
  std::int64_t slot;
  std::int64_t i;
  std::int64_t j;
};
struct GatherReplyElem {
  std::int64_t slot;
  double v;
};

inline constexpr int kReqTag = 9000;
inline constexpr int kReplyTagBase = 9100;
inline constexpr int kReplyTagRange = 4096;

inline std::vector<std::byte> make_msg(const Hdr& hdr,
                                       std::int64_t payload_bytes) {
  std::vector<std::byte> msg(sizeof(Hdr) +
                             static_cast<std::size_t>(payload_bytes));
  std::memcpy(msg.data(), &hdr, sizeof hdr);
  return msg;
}

inline std::byte* payload_mut(std::vector<std::byte>& msg) {
  return msg.data() + sizeof(Hdr);
}

inline const Hdr& hdr_of(std::span<const std::byte> msg) {
  SPLAP_REQUIRE(msg.size() >= sizeof(Hdr), "short GA message");
  return *reinterpret_cast<const Hdr*>(msg.data());
}

inline std::span<const std::byte> payload_of(std::span<const std::byte> msg) {
  return msg.subspan(sizeof(Hdr));
}

}  // namespace splap::ga::wire
