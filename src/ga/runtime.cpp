#include "ga/runtime.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "base/log.hpp"
#include "ga/wire.hpp"

namespace splap::ga {

using wire::Hdr;
using wire::Op;

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Runtime::Runtime(net::Node& node, Config config)
    : node_(node),
      config_(config),
      // Counters are immovable; the vector is built at its final size.
      gen_(static_cast<std::size_t>(node.machine().tasks())) {
  cells_.assign(kAtomicCells, 0);
  cell_bases_.resize(static_cast<std::size_t>(nprocs()));
  mpl_touched_.assign(static_cast<std::size_t>(nprocs()), false);
  am_pool_ = std::make_unique<BufferPool>(
      static_cast<std::size_t>(config_.am_buffer_bytes),
      static_cast<std::size_t>(config_.am_buffers));
  acc_mutex_ = std::make_unique<sim::SimMutex>(engine());
  if (config_.transport == Transport::kLapi) {
    lapi_init();
  } else {
    mpl_init();
  }
}

Runtime::~Runtime() = default;

Runtime::ArrayState& Runtime::state(int id) {
  SPLAP_REQUIRE(id >= 0 && id < static_cast<int>(arrays_.size()),
                "bad array handle");
  ArrayState& st = arrays_[static_cast<std::size_t>(id)];
  SPLAP_REQUIRE(st.alive, "operation on a destroyed array");
  return st;
}

GlobalArray Runtime::create(std::int64_t dim1, std::int64_t dim2) {
  const int id = static_cast<int>(arrays_.size());
  arrays_.emplace_back();
  ArrayState& st = arrays_.back();
  st.alive = true;
  st.dist = Distribution(dim1, dim2, nprocs());
  st.local.assign(static_cast<std::size_t>(st.dist.local_elems(me())), 0.0);
  if (config_.transport == Transport::kLapi) {
    // Collective base-pointer exchange (LAPI_Address_init): after this any
    // task can address any block directly — the essence of one-sidedness.
    std::vector<void*> table(static_cast<std::size_t>(nprocs()));
    ctx_->address_init(st.local.data(), table);
    st.bases.resize(table.size());
    for (std::size_t t = 0; t < table.size(); ++t) {
      st.bases[t] = static_cast<double*>(table[t]);
    }
  } else {
    comm_->barrier();  // agree on the array id
  }
  return GlobalArray(this, id);
}

void Runtime::destroy(GlobalArray& a) {
  SPLAP_REQUIRE(a.valid(), "destroying an invalid handle");
  sync();  // no in-flight operation may touch the storage afterwards
  ArrayState& st = state(a.id());
  st.alive = false;
  st.local.clear();
  st.local.shrink_to_fit();
  st.bases.clear();
  a = GlobalArray();
}

// ---------------------------------------------------------------------------
// Region helpers
// ---------------------------------------------------------------------------

StridedRegion Runtime::region_of(ArrayState& st, int task, const Patch& piece,
                                 double* base) const {
  const Patch blk = st.dist.block(task);
  SPLAP_REQUIRE(!blk.empty() && blk.contains(piece.lo1, piece.lo2) &&
                    blk.contains(piece.hi1, piece.hi2),
                "piece not owned by task");
  const std::int64_t ld = blk.rows();
  double* origin = base + (piece.lo2 - blk.lo2) * ld + (piece.lo1 - blk.lo1);
  StridedRegion r;
  r.base = reinterpret_cast<std::byte*>(origin);
  r.row_bytes = piece.rows() * static_cast<std::int64_t>(sizeof(double));
  r.cols = piece.cols();
  r.ld_bytes = ld * static_cast<std::int64_t>(sizeof(double));
  return r;
}

StridedRegion Runtime::user_region(const Patch& piece, const double* buf,
                                   std::int64_t ld) const {
  SPLAP_REQUIRE(ld >= piece.rows(), "user leading dimension too small");
  StridedRegion r;
  r.base = reinterpret_cast<std::byte*>(const_cast<double*>(buf));
  r.row_bytes = piece.rows() * static_cast<std::int64_t>(sizeof(double));
  r.cols = piece.cols();
  r.ld_bytes = ld * static_cast<std::int64_t>(sizeof(double));
  return r;
}

std::int64_t Runtime::am_payload_doubles() const {
  const std::int64_t payload_bytes =
      (config_.transport == Transport::kLapi
           ? ctx_->qenv(lapi::Query::kMaxUhdrSz)
           : cost().packet_bytes) -
      static_cast<std::int64_t>(sizeof(Hdr));
  SPLAP_REQUIRE(payload_bytes >= 64, "AM payload too small for GA chunks");
  return payload_bytes / static_cast<std::int64_t>(sizeof(double));
}

std::vector<Patch> Runtime::chunk_patch(const Patch& piece) const {
  // Split a (possibly strided) piece into sub-patches that each fit one
  // ~900-byte active message (Section 5.3.1). Whole columns are grouped
  // when short; tall columns are split into row segments.
  const std::int64_t maxd = am_payload_doubles();
  std::vector<Patch> chunks;
  const std::int64_t rows = piece.rows();
  if (rows <= maxd) {
    const std::int64_t cols_per = std::max<std::int64_t>(1, maxd / rows);
    for (std::int64_t c = piece.lo2; c <= piece.hi2; c += cols_per) {
      Patch ch = piece;
      ch.lo2 = c;
      ch.hi2 = std::min(piece.hi2, c + cols_per - 1);
      chunks.push_back(ch);
    }
  } else {
    for (std::int64_t c = piece.lo2; c <= piece.hi2; ++c) {
      for (std::int64_t r = piece.lo1; r <= piece.hi1; r += maxd) {
        Patch ch;
        ch.lo1 = r;
        ch.hi1 = std::min(piece.hi1, r + maxd - 1);
        ch.lo2 = c;
        ch.hi2 = c;
        chunks.push_back(ch);
      }
    }
  }
  return chunks;
}

// ---------------------------------------------------------------------------
// Public operations (transport dispatch)
// ---------------------------------------------------------------------------

void Runtime::op_put(int id, const Patch& p, const double* buf,
                     std::int64_t ld) {
  engine().counters().bump("ga.put");
  if (config_.transport == Transport::kLapi) {
    lapi_put_acc(id, p, buf, ld, /*acc=*/false, 1.0);
  } else {
    mpl_put_acc(id, p, buf, ld, /*acc=*/false, 1.0);
  }
}

void Runtime::op_acc(int id, const Patch& p, const double* buf,
                     std::int64_t ld, double alpha) {
  engine().counters().bump("ga.acc");
  if (config_.transport == Transport::kLapi) {
    lapi_put_acc(id, p, buf, ld, /*acc=*/true, alpha);
  } else {
    mpl_put_acc(id, p, buf, ld, /*acc=*/true, alpha);
  }
}

void Runtime::op_get(int id, const Patch& p, double* buf, std::int64_t ld) {
  engine().counters().bump("ga.get");
  if (config_.transport == Transport::kLapi) {
    lapi_get(id, p, buf, ld);
  } else {
    mpl_get(id, p, buf, ld);
  }
}

void Runtime::fence() {
  if (config_.transport == Transport::kLapi) {
    // Wait on the generalized counters: one completion count per target
    // (Section 5.3.2).
    for (int t = 0; t < nprocs(); ++t) {
      GenCntr& g = gen_[static_cast<std::size_t>(t)];
      if (g.outstanding > 0) {
        note(ctx_->waitcntr(g.cntr, g.outstanding));
        g.outstanding = 0;
        g.last_op = 0;
      }
    }
  } else {
    // MPL in-order delivery: a flush round trip to each touched target
    // proves every earlier request was processed.
    for (int t = 0; t < nprocs(); ++t) {
      if (!mpl_touched_[static_cast<std::size_t>(t)]) continue;
      mpl_touched_[static_cast<std::size_t>(t)] = false;
      Hdr h;
      h.op = Op::kFlush;
      h.origin = me();
      h.reply_tag = next_reply_tag();
      std::byte ack{};
      const mpl::Request r =
          comm_->irecv(t, static_cast<int>(h.reply_tag),
                       std::span<std::byte>(&ack, 1));
      mpl_request(t, wire::make_msg(h, 0));
      comm_->wait(r);
    }
  }
}

void Runtime::sync() {
  fence();
  if (config_.transport == Transport::kLapi) {
    note(ctx_->gfence());
  } else {
    comm_->barrier();
    note(comm_->comm_status());
  }
}

// ---------------------------------------------------------------------------
// Atomic cells: read_inc / lock / unlock
// ---------------------------------------------------------------------------

std::int64_t Runtime::read_inc(int counter_id, std::int64_t inc) {
  SPLAP_REQUIRE(counter_id >= 0 && counter_id < kAtomicCells,
                "bad shared counter id");
  const int owner = counter_id % nprocs();
  if (config_.transport == Transport::kLapi) {
    std::int64_t* cell = cell_bases_[static_cast<std::size_t>(owner)] +
                         counter_id;
    return ctx_->rmw_sync(lapi::RmwOp::kFetchAndAdd, owner, cell, inc);
  }
  Hdr h;
  h.op = Op::kReadInc;
  h.origin = me();
  h.cell = counter_id;
  h.inc = inc;
  h.reply_tag = next_reply_tag();
  std::int64_t prev = 0;
  const mpl::Request r =
      comm_->irecv(owner, static_cast<int>(h.reply_tag),
                   std::span<std::byte>(reinterpret_cast<std::byte*>(&prev),
                                        sizeof prev));
  mpl_request(owner, wire::make_msg(h, 0));
  comm_->wait(r);
  return prev;
}

void Runtime::lock(int mutex_id) {
  SPLAP_REQUIRE(mutex_id >= 0 && mutex_id < kAtomicCells, "bad mutex id");
  const int owner = mutex_id % nprocs();
  if (config_.transport == Transport::kLapi) {
    std::int64_t* cell =
        cell_bases_[static_cast<std::size_t>(owner)] + mutex_id;
    Time backoff = microseconds(5);
    while (ctx_->rmw_sync(lapi::RmwOp::kCompareAndSwap, owner, cell, 0, 1) !=
           0) {
      node_.task().compute(backoff);
      backoff = std::min<Time>(backoff * 2, microseconds(200));
    }
    return;
  }
  Time backoff = microseconds(5);
  for (;;) {
    Hdr h;
    h.op = Op::kLock;
    h.origin = me();
    h.cell = mutex_id;
    h.reply_tag = next_reply_tag();
    std::byte granted{};
    const mpl::Request r =
        comm_->irecv(owner, static_cast<int>(h.reply_tag),
                     std::span<std::byte>(&granted, 1));
    mpl_request(owner, wire::make_msg(h, 0));
    comm_->wait(r);
    if (granted == std::byte{1}) return;
    node_.task().compute(backoff);
    backoff = std::min<Time>(backoff * 2, microseconds(200));
  }
}

void Runtime::unlock(int mutex_id) {
  SPLAP_REQUIRE(mutex_id >= 0 && mutex_id < kAtomicCells, "bad mutex id");
  const int owner = mutex_id % nprocs();
  if (config_.transport == Transport::kLapi) {
    std::int64_t* cell =
        cell_bases_[static_cast<std::size_t>(owner)] + mutex_id;
    const std::int64_t prev =
        ctx_->rmw_sync(lapi::RmwOp::kSwap, owner, cell, 0);
    SPLAP_REQUIRE(prev == 1, "unlock of a mutex not held");
    return;
  }
  Hdr h;
  h.op = Op::kUnlock;
  h.origin = me();
  h.cell = mutex_id;
  h.reply_tag = next_reply_tag();
  std::byte ack{};
  const mpl::Request r = comm_->irecv(owner, static_cast<int>(h.reply_tag),
                                      std::span<std::byte>(&ack, 1));
  mpl_request(owner, wire::make_msg(h, 0));
  comm_->wait(r);
}

// ---------------------------------------------------------------------------
// Small collectives for applications
// ---------------------------------------------------------------------------

void Runtime::brdcst(std::span<double> data, int root) {
  if (nprocs() == 1) return;
  if (config_.transport == Transport::kMpl) {
    comm_->bcast(std::span<std::byte>(reinterpret_cast<std::byte*>(data.data()),
                                      data.size_bytes()),
                 root);
    return;
  }
  // LAPI transport: exchange destination addresses, root puts, gfence.
  std::vector<void*> table(static_cast<std::size_t>(nprocs()));
  ctx_->address_init(data.data(), table);
  if (me() == root) {
    lapi::Counter org;
    int sent = 0;
    for (int t = 0; t < nprocs(); ++t) {
      if (t == root) continue;
      const Status st = ctx_->put(
          t,
          std::span<const std::byte>(
              reinterpret_cast<const std::byte*>(data.data()),
              data.size_bytes()),
          static_cast<std::byte*>(table[static_cast<std::size_t>(t)]), nullptr,
          &org, nullptr);
      SPLAP_REQUIRE(st == Status::kOk, "brdcst put failed");
      ++sent;
    }
    note(ctx_->waitcntr(org, sent));
  }
  note(ctx_->gfence());  // root's puts fenced + everyone synchronized
}

void Runtime::gop_sum(std::span<double> data) {
  if (nprocs() == 1) return;
  if (config_.transport == Transport::kMpl) {
    comm_->allreduce_sum(data);
    return;
  }
  std::vector<void*> table(static_cast<std::size_t>(nprocs()));
  ctx_->address_init(data.data(), table);
  note(ctx_->gfence());  // contributions stable before task 0 reads them
  if (me() == 0) {
    std::vector<double> scratch(data.size());
    for (int t = 1; t < nprocs(); ++t) {
      lapi::Counter org;
      const Status st = ctx_->get(
          t, static_cast<std::int64_t>(data.size_bytes()),
          static_cast<const std::byte*>(table[static_cast<std::size_t>(t)]),
          reinterpret_cast<std::byte*>(scratch.data()), nullptr, &org);
      SPLAP_REQUIRE(st == Status::kOk, "gop_sum get failed");
      note(ctx_->waitcntr(org, 1));
      node_.task().compute(cost().copy_time(
          static_cast<std::int64_t>(data.size_bytes())));
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += scratch[i];
    }
  }
  note(ctx_->gfence());  // sum finished before it is broadcast back
  brdcst(data, 0);
}

// ---------------------------------------------------------------------------
// GlobalArray facade
// ---------------------------------------------------------------------------

std::int64_t GlobalArray::dim1() const { return rt_->state(id_).dist.dim1(); }
std::int64_t GlobalArray::dim2() const { return rt_->state(id_).dist.dim2(); }

void GlobalArray::put(const Patch& p, const double* buf, std::int64_t ld) {
  rt_->op_put(id_, p, buf, ld);
}
void GlobalArray::get(const Patch& p, double* buf, std::int64_t ld) {
  rt_->op_get(id_, p, buf, ld);
}
void GlobalArray::acc(const Patch& p, const double* buf, std::int64_t ld,
                      double alpha) {
  rt_->op_acc(id_, p, buf, ld, alpha);
}
void GlobalArray::scatter(std::span<const double> v,
                          std::span<const std::int64_t> i,
                          std::span<const std::int64_t> j) {
  rt_->op_scatter(id_, v, i, j);
}
void GlobalArray::gather(std::span<double> v, std::span<const std::int64_t> i,
                         std::span<const std::int64_t> j) {
  rt_->op_gather(id_, v, i, j);
}
int GlobalArray::owner(std::int64_t i, std::int64_t j) const {
  return rt_->state(id_).dist.owner(i, j);
}
Patch GlobalArray::my_block() const {
  return rt_->state(id_).dist.block(rt_->me());
}
Patch GlobalArray::block_of(int task) const {
  return rt_->state(id_).dist.block(task);
}
const Distribution& GlobalArray::distribution() const {
  return rt_->state(id_).dist;
}
double* GlobalArray::access() { return rt_->state(id_).local.data(); }

}  // namespace splap::ga
