// The MPL transport of Global Arrays — a faithful re-creation of the
// previous implementation (Section 5.2): every operation is a combined
// header+data request message (MPL's in-order progress rule prevents
// separating them), delivered to the target's rcvncall interrupt handler,
// with message-buffer copies on both sides.
#include <algorithm>
#include <cstring>
#include <map>

#include "base/log.hpp"
#include "ga/runtime.hpp"
#include "ga/wire.hpp"

namespace splap::ga {

using wire::Hdr;
using wire::Op;

void Runtime::mpl_init() {
  mpl::Config mc;
  mc.eager_limit = config_.mpl_eager_limit;
  comm_ = std::make_unique<mpl::Comm>(node_, mc);
  comm_->rcvncall(wire::kReqTag,
                  [this](mpl::Comm& c, const mpl::RcvncallDelivery& d) {
                    mpl_handle(c, d);
                  });
  comm_->barrier();
}

void Runtime::mpl_request(int target, std::span<const std::byte> msg) {
  const Status s = comm_->send(target, wire::kReqTag, msg);
  SPLAP_REQUIRE(s == Status::kOk, "GA request send failed");
}

std::int64_t Runtime::next_reply_tag() {
  return wire::kReplyTagBase +
         (reply_seq_++ % wire::kReplyTagRange);
}

// ---------------------------------------------------------------------------
// put / accumulate
// ---------------------------------------------------------------------------

void Runtime::mpl_put_acc(int id, const Patch& p, const double* buf,
                          std::int64_t ld, bool acc, double alpha) {
  node_.task().compute(cost().ga_op_overhead);
  ArrayState& st = state(id);
  for (const auto& [owner, piece] : st.dist.decompose(p)) {
    const double* pbuf = buf + (piece.lo2 - p.lo2) * ld + (piece.lo1 - p.lo1);
    const StridedRegion src = user_region(piece, pbuf, ld);
    const std::int64_t bytes = piece.elems() * 8;

    if (owner == me()) {
      StridedRegion dst = region_of(st, me(), piece, st.local.data());
      if (acc) {
        // lockrnc: hold off interrupt handlers while the application thread
        // updates the array (the old GA's atomicity device, Section 5.2).
        comm_->lock_interrupts();
        node_.task().compute(2 * cost().copy_time(bytes));
        daxpy_strided(alpha, src, dst);
        comm_->unlock_interrupts();
      } else {
        node_.task().compute(cost().copy_time(bytes));
        copy_strided(src, dst);
      }
      continue;
    }

    // One combined header+data message per owner piece: the extra
    // sender-side copy the paper's Section 5.4 calls out ("the extra memory
    // copy on the sender side cannot be avoided even for 1-D requests").
    Hdr h;
    h.op = acc ? Op::kMplAcc : Op::kMplPut;
    h.array_id = id;
    h.origin = me();
    h.piece = piece;
    h.alpha = alpha;
    auto msg = wire::make_msg(h, bytes);
    copy_strided_to_contig(src, wire::payload_mut(msg));
    node_.task().compute(cost().ga_mpl_marshal + cost().copy_time(bytes));
    mpl_request(owner, msg);
    mpl_touched_[static_cast<std::size_t>(owner)] = true;
  }
}

// ---------------------------------------------------------------------------
// get
// ---------------------------------------------------------------------------

void Runtime::mpl_get(int id, const Patch& p, double* buf, std::int64_t ld) {
  node_.task().compute(cost().ga_op_overhead);
  ArrayState& st = state(id);
  for (const auto& [owner, piece] : st.dist.decompose(p)) {
    double* pbuf = buf + (piece.lo2 - p.lo2) * ld + (piece.lo1 - p.lo1);
    const StridedRegion dst_user = user_region(piece, pbuf, ld);
    const std::int64_t bytes = piece.elems() * 8;

    if (owner == me()) {
      StridedRegion src = region_of(st, me(), piece, st.local.data());
      node_.task().compute(cost().copy_time(bytes));
      copy_strided(src, dst_user);
      continue;
    }

    Hdr h;
    h.op = Op::kMplGet;
    h.array_id = id;
    h.origin = me();
    h.piece = piece;
    h.reply_tag = next_reply_tag();
    node_.task().compute(cost().ga_mpl_marshal);

    // The old implementation's copy count depends on the REQUEST shape: a
    // 1-D (contiguous-in-array) request can land straight in the user
    // buffer ("the MPL implementation is able to avoid one memory copy",
    // Section 5.4); a 2-D request always goes through the message buffer.
    const bool one_d =
        contiguous_in_block(piece, st.dist.block(owner)) &&
        dst_user.contiguous();
    if (one_d) {
      const mpl::Request r = comm_->irecv(
          owner, static_cast<int>(h.reply_tag),
          std::span<std::byte>(dst_user.base, static_cast<std::size_t>(bytes)));
      mpl_request(owner, wire::make_msg(h, 0));
      comm_->wait(r);
    } else {
      // Strided destination: receive into a scratch buffer, then unpack
      // (the second copy of the old implementation).
      std::vector<std::byte> scratch(static_cast<std::size_t>(bytes));
      const mpl::Request r = comm_->irecv(
          owner, static_cast<int>(h.reply_tag),
          std::span<std::byte>(scratch.data(), scratch.size()));
      mpl_request(owner, wire::make_msg(h, 0));
      comm_->wait(r);
      node_.task().compute(cost().copy_time(bytes));
      copy_contig_to_strided(scratch.data(), dst_user);
    }
  }
}

// ---------------------------------------------------------------------------
// scatter / gather
// ---------------------------------------------------------------------------

void Runtime::mpl_scatter(int id, std::span<const double> v,
                          std::span<const std::int64_t> si,
                          std::span<const std::int64_t> sj) {
  node_.task().compute(cost().ga_op_overhead);
  ArrayState& st = state(id);
  std::map<int, std::vector<std::size_t>> by_owner;
  for (std::size_t k = 0; k < v.size(); ++k) {
    by_owner[st.dist.owner(si[k], sj[k])].push_back(k);
  }
  for (const auto& [owner, idxs] : by_owner) {
    if (owner == me()) {
      const Patch blk = st.dist.block(me());
      node_.task().compute(
          cost().copy_time(static_cast<std::int64_t>(idxs.size()) * 24));
      for (const std::size_t k : idxs) {
        st.local[static_cast<std::size_t>((sj[k] - blk.lo2) * blk.rows() +
                                          (si[k] - blk.lo1))] = v[k];
      }
      continue;
    }
    Hdr h;
    h.op = Op::kMplScatter;
    h.array_id = id;
    h.origin = me();
    h.nelems = static_cast<std::int64_t>(idxs.size());
    auto msg = wire::make_msg(
        h, static_cast<std::int64_t>(idxs.size() * sizeof(wire::Elem)));
    auto* elems = reinterpret_cast<wire::Elem*>(wire::payload_mut(msg));
    for (std::size_t x = 0; x < idxs.size(); ++x) {
      const std::size_t k = idxs[x];
      elems[x] = wire::Elem{si[k], sj[k], v[k]};
    }
    node_.task().compute(cost().ga_mpl_marshal +
                         cost().copy_time(static_cast<std::int64_t>(msg.size())));
    mpl_request(owner, msg);
    mpl_touched_[static_cast<std::size_t>(owner)] = true;
  }
}

void Runtime::mpl_gather(int id, std::span<double> v,
                         std::span<const std::int64_t> si,
                         std::span<const std::int64_t> sj) {
  node_.task().compute(cost().ga_op_overhead);
  ArrayState& st = state(id);
  std::map<int, std::vector<std::size_t>> by_owner;
  for (std::size_t k = 0; k < v.size(); ++k) {
    by_owner[st.dist.owner(si[k], sj[k])].push_back(k);
  }
  for (const auto& [owner, idxs] : by_owner) {
    if (owner == me()) {
      const Patch blk = st.dist.block(me());
      node_.task().compute(
          cost().copy_time(static_cast<std::int64_t>(idxs.size()) * 16));
      for (const std::size_t k : idxs) {
        v[k] = st.local[static_cast<std::size_t>(
            (sj[k] - blk.lo2) * blk.rows() + (si[k] - blk.lo1))];
      }
      continue;
    }
    // Request the values; the reply carries them in request order.
    Hdr h;
    h.op = Op::kMplGather;
    h.array_id = id;
    h.origin = me();
    h.nelems = static_cast<std::int64_t>(idxs.size());
    h.reply_tag = next_reply_tag();
    auto msg = wire::make_msg(
        h, static_cast<std::int64_t>(idxs.size() * 2 * sizeof(std::int64_t)));
    auto* subs = reinterpret_cast<std::int64_t*>(wire::payload_mut(msg));
    for (std::size_t x = 0; x < idxs.size(); ++x) {
      subs[2 * x] = si[idxs[x]];
      subs[2 * x + 1] = sj[idxs[x]];
    }
    node_.task().compute(cost().ga_mpl_marshal +
                         cost().copy_time(static_cast<std::int64_t>(msg.size())));
    std::vector<double> values(idxs.size());
    const mpl::Request r = comm_->irecv(
        owner, static_cast<int>(h.reply_tag),
        std::span<std::byte>(reinterpret_cast<std::byte*>(values.data()),
                             values.size() * sizeof(double)));
    mpl_request(owner, msg);
    comm_->wait(r);
    node_.task().compute(
        cost().copy_time(static_cast<std::int64_t>(idxs.size()) * 8));
    for (std::size_t x = 0; x < idxs.size(); ++x) v[idxs[x]] = values[x];
  }
}

// ---------------------------------------------------------------------------
// The rcvncall request handler (runs at interrupt level on the target).
// ---------------------------------------------------------------------------

void Runtime::mpl_handle(mpl::Comm& comm, const mpl::RcvncallDelivery& d) {
  const Hdr& h = wire::hdr_of(d.data);
  const auto payload = wire::payload_of(d.data);
  const CostModel& cm = cost();
  comm.handler_charge(cm.ga_mpl_serve);

  switch (h.op) {
    case Op::kMplPut: {
      ArrayState& st = state(h.array_id);
      StridedRegion dst = region_of(st, me(), h.piece, st.local.data());
      // Copy out of the message buffer into the array — the target-side
      // extra copy of the old implementation.
      copy_contig_to_strided(payload.data(), dst);
      comm.handler_charge(
          cm.copy_time(static_cast<std::int64_t>(payload.size())));
      return;
    }

    case Op::kMplAcc: {
      ArrayState& st = state(h.array_id);
      StridedRegion dst = region_of(st, me(), h.piece, st.local.data());
      // Handler execution is single-threaded (and lockrnc blocks it while
      // the application thread updates), so the update is atomic.
      daxpy_contig_to_strided(h.alpha, payload.data(), dst);
      comm.handler_charge(
          2 * cm.copy_time(static_cast<std::int64_t>(payload.size())));
      return;
    }

    case Op::kMplGet: {
      ArrayState& st = state(h.array_id);
      StridedRegion src = region_of(st, me(), h.piece, st.local.data());
      // Pack into a reply message buffer (the target-side copy), send back.
      std::vector<std::byte> out(static_cast<std::size_t>(src.total_bytes()));
      copy_strided_to_contig(src, out.data());
      comm.handler_charge(cm.copy_time(src.total_bytes()));
      (void)comm.isend(h.origin, static_cast<int>(h.reply_tag), out);
      return;
    }

    case Op::kMplScatter: {
      ArrayState& st = state(h.array_id);
      const Patch blk = st.dist.block(me());
      const auto* elems = reinterpret_cast<const wire::Elem*>(payload.data());
      for (std::int64_t k = 0; k < h.nelems; ++k) {
        st.local[static_cast<std::size_t>(
            (elems[k].j - blk.lo2) * blk.rows() + (elems[k].i - blk.lo1))] =
            elems[k].v;
      }
      comm.handler_charge(
          cm.copy_time(static_cast<std::int64_t>(payload.size())));
      return;
    }

    case Op::kMplGather: {
      ArrayState& st = state(h.array_id);
      const Patch blk = st.dist.block(me());
      const auto* subs =
          reinterpret_cast<const std::int64_t*>(payload.data());
      std::vector<double> values(static_cast<std::size_t>(h.nelems));
      for (std::int64_t k = 0; k < h.nelems; ++k) {
        values[static_cast<std::size_t>(k)] = st.local[static_cast<std::size_t>(
            (subs[2 * k + 1] - blk.lo2) * blk.rows() +
            (subs[2 * k] - blk.lo1))];
      }
      comm.handler_charge(cm.copy_time(h.nelems * 8));
      (void)comm.isend(
          h.origin, static_cast<int>(h.reply_tag),
          std::span<const std::byte>(
              reinterpret_cast<const std::byte*>(values.data()),
              values.size() * sizeof(double)));
      return;
    }

    case Op::kFlush: {
      const std::byte ack{1};
      (void)comm.isend(h.origin, static_cast<int>(h.reply_tag),
                       std::span<const std::byte>(&ack, 1));
      return;
    }

    case Op::kReadInc: {
      const std::int64_t prev = cells_[static_cast<std::size_t>(h.cell)];
      cells_[static_cast<std::size_t>(h.cell)] += h.inc;
      (void)comm.isend(h.origin, static_cast<int>(h.reply_tag),
                       std::span<const std::byte>(
                           reinterpret_cast<const std::byte*>(&prev),
                           sizeof prev));
      return;
    }

    case Op::kLock: {
      std::byte granted{0};
      if (cells_[static_cast<std::size_t>(h.cell)] == 0) {
        cells_[static_cast<std::size_t>(h.cell)] = 1;
        granted = std::byte{1};
      }
      (void)comm.isend(h.origin, static_cast<int>(h.reply_tag),
                       std::span<const std::byte>(&granted, 1));
      return;
    }

    case Op::kUnlock: {
      SPLAP_REQUIRE(cells_[static_cast<std::size_t>(h.cell)] == 1,
                    "unlock of a free GA mutex");
      cells_[static_cast<std::size_t>(h.cell)] = 0;
      const std::byte ack{1};
      (void)comm.isend(h.origin, static_cast<int>(h.reply_tag),
                       std::span<const std::byte>(&ack, 1));
      return;
    }

    default:
      SPLAP_REQUIRE(false, "LAPI opcode on the MPL transport");
  }
}

}  // namespace splap::ga
