// Global Arrays: portable shared-memory-style access to dense distributed
// 2-D double-precision arrays (Section 5 of the paper; the GA toolkit of
// Nieplocha, Harrison & Littlefield).
//
// Two interchangeable transports implement the one-sided operations:
//
//   Backend::kLapi — the paper's new implementation (Section 5.3): hybrid
//     protocols that switch between direct remote memory copy (contiguous
//     or very large requests) and pipelined ~900-byte active messages
//     (strided small/medium requests), generalized per-target counters for
//     fence/sync, a preallocated AM buffer pool, and a mutex-protected
//     atomic accumulate that may run in the header handler (try-lock) or a
//     completion handler.
//
//   Backend::kMpl — the previous implementation (Section 5.2): every
//     operation is a combined header+data message (MPL's in-order progress
//     rule prevents separating them), delivered through the rcvncall
//     interrupt handler, with message-buffer copies on both sides and
//     lockrnc-based atomicity.
//
// All operations are unilateral: progress never requires the target task to
// make GA calls. Out-of-order completion is permitted except for
// overlapping patches (callers order those with fence, Section 5.1).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "base/pool.hpp"
#include "base/strided.hpp"
#include "ga/distribution.hpp"
#include "lapi/context.hpp"
#include "mpl/comm.hpp"
#include "net/machine.hpp"
#include "sim/sync.hpp"

namespace splap::ga {

enum class Transport { kLapi, kMpl };

struct Config {
  Transport transport = Transport::kLapi;
  /// LAPI context configuration (kLapi transport).
  lapi::Config lapi;
  /// MPL send buffering (kMpl transport): the old SP MPL buffered
  /// considerably more than MPI's default 4 KB eager limit — this is what
  /// lets GA-MPL put return sooner in the 1–20 KB range (Figure 3).
  std::int64_t mpl_eager_limit = 20 * 1024;
  /// Requests at or above this size switch from the AM protocol to direct
  /// per-column remote memory copies ("approx. 0.5 MB", Section 5.4).
  std::int64_t big_request_bytes = 512 * 1024;
  /// Preallocated active-message buffer pool (Section 5.3.1).
  int am_buffers = 64;
  std::int64_t am_buffer_bytes = 2048;
  /// Use the LAPI_Putv/Getv non-contiguous interface (the paper's
  /// Section 6 future-work item 1) for strided put/get instead of the
  /// 1998 AM-chunk protocol. Off by default to reproduce the paper's
  /// figures; bench_ablation_strided quantifies the win.
  bool use_strided_rmc = false;
};

/// Shared atomic cells: GA exposes a fixed set of counters (read_inc) and
/// mutexes (lock/unlock), distributed round-robin over the tasks.
inline constexpr int kAtomicCells = 64;

class Runtime;

/// Value handle to a global array (copyable; the Runtime owns the state).
class GlobalArray {
 public:
  GlobalArray() = default;

  std::int64_t dim1() const;
  std::int64_t dim2() const;

  /// One-sided block transfers; `ld` is the leading dimension (in doubles)
  /// of the caller's column-major local buffer. put/acc return once `buf`
  /// is reusable; get is blocking (Section 5.4).
  void put(const Patch& p, const double* buf, std::int64_t ld);
  void get(const Patch& p, double* buf, std::int64_t ld);
  /// Atomic A(p) += alpha * buf.
  void acc(const Patch& p, const double* buf, std::int64_t ld, double alpha);

  /// Element-wise transfers (subscript arrays).
  void scatter(std::span<const double> v, std::span<const std::int64_t> i,
               std::span<const std::int64_t> j);
  void gather(std::span<double> v, std::span<const std::int64_t> i,
              std::span<const std::int64_t> j);

  // Locality information and control (the memory-hierarchy awareness GA is
  // built around, Section 5.1).
  int owner(std::int64_t i, std::int64_t j) const;
  Patch my_block() const;
  Patch block_of(int task) const;
  const Distribution& distribution() const;
  /// Direct access to the local block (owner-computes); ld via my_block().
  double* access();

  bool valid() const { return rt_ != nullptr; }
  int id() const { return id_; }

 private:
  friend class Runtime;
  GlobalArray(Runtime* rt, int id) : rt_(rt), id_(id) {}
  Runtime* rt_ = nullptr;
  int id_ = -1;
};

class Runtime {
 public:
  /// Collective (SPMD): every task constructs its Runtime.
  Runtime(net::Node& node, Config config = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int me() const { return node_.id(); }
  int nprocs() const { return node_.machine().tasks(); }
  Transport transport() const { return config_.transport; }
  net::Node& node() const { return node_; }
  sim::Engine& engine() const { return node_.engine(); }
  const CostModel& cost() const { return node_.cost(); }

  /// Collective: create / destroy a dim1 x dim2 array of doubles.
  GlobalArray create(std::int64_t dim1, std::int64_t dim2);
  void destroy(GlobalArray& a);

  /// Complete all operations this task initiated (ga_fence).
  void fence();
  /// Collective barrier + completion of all outstanding operations
  /// (ga_sync).
  void sync();

  /// Atomic fetch-and-add on shared cell `counter_id` (read_inc).
  std::int64_t read_inc(int counter_id, std::int64_t inc);
  /// Mutual exclusion on shared mutex cells.
  void lock(int mutex_id);
  void unlock(int mutex_id);

  /// Small collectives for applications (broadcast, global sum).
  void brdcst(std::span<double> data, int root);
  void gop_sum(std::span<double> data);

  /// Sticky transport health: the first non-kOk status any GA wait or sync
  /// observed — a retry-exhausted transfer (kResourceExhausted) or a dead
  /// participant (kPeerFailed, from the transport's crash detector)
  /// surfaces here instead of silently delivering stale data or hanging a
  /// collective. kOk on a healthy run; never reset.
  Status comm_status() const { return comm_status_; }

  // Internal API used by GlobalArray (public for the handler plumbing).
  struct ArrayState {
    bool alive = false;
    Distribution dist;
    std::vector<double> local;          // my block, column-major
    std::vector<double*> bases;         // per-task base pointers (kLapi)
  };

  ArrayState& state(int id);
  void op_put(int id, const Patch& p, const double* buf, std::int64_t ld);
  void op_get(int id, const Patch& p, double* buf, std::int64_t ld);
  void op_acc(int id, const Patch& p, const double* buf, std::int64_t ld,
              double alpha);
  void op_scatter(int id, std::span<const double> v,
                  std::span<const std::int64_t> i,
                  std::span<const std::int64_t> j);
  void op_gather(int id, std::span<double> v,
                 std::span<const std::int64_t> i,
                 std::span<const std::int64_t> j);

 private:
  struct Piece {
    int owner;
    Patch patch;
  };

  /// StridedRegion over task `t`'s block storage for `piece` (kLapi uses
  /// exchanged base pointers; the target-side handlers use their own).
  StridedRegion region_of(ArrayState& st, int task, const Patch& piece,
                          double* base) const;
  StridedRegion user_region(const Patch& piece, const double* buf,
                            std::int64_t ld) const;

  // ---- LAPI transport (Section 5.3) ----
  void lapi_init();
  void lapi_put_acc(int id, const Patch& p, const double* buf,
                    std::int64_t ld, bool acc, double alpha);
  void lapi_get(int id, const Patch& p, double* buf, std::int64_t ld);
  void lapi_rmc_put(ArrayState& st, int owner, const Patch& piece,
                    const double* buf, std::int64_t ld, lapi::Counter& org);
  void lapi_rmc_get(ArrayState& st, int owner, const Patch& piece,
                    double* buf, std::int64_t ld, lapi::Counter& org,
                    int& expected);
  void lapi_scatter(int id, std::span<const double> v,
                    std::span<const std::int64_t> i,
                    std::span<const std::int64_t> j);
  void lapi_gather(int id, std::span<double> v,
                   std::span<const std::int64_t> i,
                   std::span<const std::int64_t> j);
  lapi::AmReply lapi_handle_am(lapi::Context& c, const lapi::AmDelivery& d);
  /// Chunk a strided piece into AM-payload-sized sub-patches (~900 B each,
  /// Section 5.3.1).
  std::vector<Patch> chunk_patch(const Patch& piece) const;
  std::int64_t am_payload_doubles() const;

  // ---- MPL transport (Section 5.2) ----
  void mpl_init();
  void mpl_request(int target, std::span<const std::byte> msg);
  void mpl_put_acc(int id, const Patch& p, const double* buf, std::int64_t ld,
                   bool acc, double alpha);
  void mpl_get(int id, const Patch& p, double* buf, std::int64_t ld);
  void mpl_scatter(int id, std::span<const double> v,
                   std::span<const std::int64_t> i,
                   std::span<const std::int64_t> j);
  void mpl_gather(int id, std::span<double> v,
                  std::span<const std::int64_t> i,
                  std::span<const std::int64_t> j);
  void mpl_handle(mpl::Comm& comm, const mpl::RcvncallDelivery& d);
  std::int64_t next_reply_tag();

  // ---- generalized counters (Section 5.3.2) ----
  struct GenCntr {
    lapi::Counter cntr;
    std::int64_t outstanding = 0;
    std::uint8_t last_op = 0;
  };

  /// Latch the first communication failure (see comm_status()). Precedence:
  /// kPeerFailed is the strongest verdict and upgrades a softer
  /// kPeerSuspected latch (a gray-failing peer that later dies); any other
  /// first failure sticks. kPeerSuspected records that some collective ran
  /// degraded even if the suspect later healed.
  void note(Status st) {
    if (st == Status::kOk) return;
    if (comm_status_ == Status::kOk ||
        (st == Status::kPeerFailed &&
         comm_status_ == Status::kPeerSuspected)) {
      comm_status_ = st;
    }
  }

  net::Node& node_;
  Config config_;
  Status comm_status_ = Status::kOk;

  std::unique_ptr<lapi::Context> ctx_;  // kLapi
  std::unique_ptr<mpl::Comm> comm_;     // kMpl
  lapi::AmHandlerId ga_handler_ = -1;

  std::vector<ArrayState> arrays_;
  std::vector<GenCntr> gen_;  // per target task

  // Atomic cells hosted by this task (cell c lives on task c % nprocs).
  std::vector<std::int64_t> cells_;
  std::vector<std::int64_t*> cell_bases_;  // per-task cell array base (kLapi)

  // AM receive buffering (Section 5.3.1) and accumulate atomicity (5.3.3).
  std::unique_ptr<BufferPool> am_pool_;
  std::unique_ptr<sim::SimMutex> acc_mutex_;
  std::int64_t pool_overflows_ = 0;

  // MPL bookkeeping.
  std::int64_t reply_seq_ = 0;
  std::vector<bool> mpl_touched_;  // targets with outstanding requests

  friend struct GaAmCodec;
};

}  // namespace splap::ga
