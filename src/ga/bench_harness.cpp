#include "ga/bench_harness.hpp"

#include <algorithm>
#include <cmath>

#include "lapi/context.hpp"
#include "mpl/comm.hpp"

namespace splap::ga::bench {

namespace {

constexpr int kNodes = 4;  // the paper's synthetic benchmark configuration

net::Machine::Config machine_config(int tasks) {
  net::Machine::Config c;
  c.tasks = tasks;
  return c;
}

Config ga_config(Transport t) {
  Config c;
  c.transport = t;
  return c;
}

}  // namespace

int series_length(std::int64_t bytes) {
  return static_cast<int>(
      std::clamp<std::int64_t>((std::int64_t{1} << 22) / std::max<std::int64_t>(bytes, 1),
                               3, 40));
}

double ga_bandwidth_mb_s(Transport transport, OpKind op, Shape shape,
                         std::int64_t bytes) {
  const std::int64_t elems = std::max<std::int64_t>(1, bytes / 8);
  const int reps = series_length(bytes);
  Time elapsed = 0;

  net::Machine m(machine_config(kNodes));
  const Status status = m.run_spmd([&](net::Node& n) {
    Runtime rt(n, ga_config(transport));
    GlobalArray a = [&] {
      if (shape == Shape::k1D) {
        // Tall array whose row blocks are exactly `elems` long: a request
        // is one owner's full column segment — contiguous and fully remote.
        return rt.create(2 * elems, 2 * kNodes);
      }
      // Square sections: the patch sits strictly inside one owner's block,
      // so the leading dimension never matches the patch (strided access,
      // as the paper notes).
      const auto s = std::max<std::int64_t>(
          2, static_cast<std::int64_t>(std::floor(std::sqrt(
                 static_cast<double>(elems)))));
      return rt.create(3 * s, 3 * s);
    }();
    rt.sync();
    if (rt.me() == 0) {
      std::vector<double> buf(static_cast<std::size_t>(elems), 1.5);
      const Time t0 = rt.engine().now();
      for (int r = 0; r < reps; ++r) {
        const int target = 1 + r % (kNodes - 1);  // round-robin (Section 5.4)
        Patch p;
        std::int64_t ld;
        if (shape == Shape::k1D) {
          // The target's full row range of one of its columns — a single
          // contiguous remote segment; a different column each time
          // (anti-caching).
          const Patch blk = a.block_of(target);
          p = Patch{blk.lo1, blk.hi1, 0, 0};
          p.lo2 = p.hi2 = blk.lo2 + (r / (kNodes - 1)) % 2;
          ld = p.rows();
        } else {
          // floor: the s x s square must fit inside the elems-sized buffer.
          const auto s = static_cast<std::int64_t>(
              std::floor(std::sqrt(static_cast<double>(elems))));
          const Patch blk = a.block_of(target);
          const std::int64_t off = (r / (kNodes - 1)) % 2;  // anti-caching
          p = Patch{blk.lo1 + off, blk.lo1 + off + s - 1, blk.lo2 + off,
                    blk.lo2 + off + s - 1};
          p.hi1 = std::min(p.hi1, blk.hi1);
          p.hi2 = std::min(p.hi2, blk.hi2);
          ld = p.rows();
        }
        if (op == OpKind::kPut) {
          a.put(p, buf.data(), ld);
        } else {
          a.get(p, buf.data(), ld);
        }
      }
      rt.fence();  // the series is complete when the data is
      elapsed = rt.engine().now() - t0;
    }
    rt.sync();
    rt.destroy(a);
  });
  SPLAP_REQUIRE(status == Status::kOk, "GA bandwidth run failed");
  // 1-D pieces are exactly `elems` long (one block column); 2-D pieces are
  // s x s squares.
  const std::int64_t moved = [&] {
    if (shape == Shape::k1D) return elems * 8 * reps;
    const auto s = static_cast<std::int64_t>(
        std::floor(std::sqrt(static_cast<double>(elems))));
    return s * s * 8 * reps;
  }();
  return mb_per_s(moved, elapsed);
}

std::vector<BwPoint> ga_bandwidth_sweep(Transport transport, OpKind op,
                                        Shape shape,
                                        const std::vector<std::int64_t>& sizes) {
  std::vector<BwPoint> out;
  out.reserve(sizes.size());
  for (const auto b : sizes) {
    out.push_back({b, ga_bandwidth_mb_s(transport, op, shape, b)});
  }
  return out;
}

GaLatency ga_latency_us(Transport transport) {
  // Single-element transfers, node 0 accessing the other nodes round-robin,
  // different element each time (Section 5.4).
  constexpr int kReps = 30;
  Time put_total = 0, get_total = 0;
  net::Machine m(machine_config(kNodes));
  const Status status = m.run_spmd([&](net::Node& n) {
    Runtime rt(n, ga_config(transport));
    GlobalArray a = rt.create(64, 64);
    rt.sync();
    if (rt.me() == 0) {
      double v = 3.25;
      Time t0 = rt.engine().now();
      for (int r = 0; r < kReps; ++r) {
        const int target = 1 + r % (kNodes - 1);
        const Patch blk = a.block_of(target);
        const std::int64_t i = blk.lo1 + r % blk.rows();
        const std::int64_t j = blk.lo2 + (r / 3) % blk.cols();
        a.put(Patch{i, i, j, j}, &v, 1);
      }
      // Put is non-blocking at the GA level: its latency is the issue cost
      // (the 49.6us / 54.6us of Section 5.4); the fence is not part of it.
      put_total = rt.engine().now() - t0;
      rt.fence();
      t0 = rt.engine().now();
      for (int r = 0; r < kReps; ++r) {
        const int target = 1 + r % (kNodes - 1);
        const Patch blk = a.block_of(target);
        const std::int64_t i = blk.lo1 + r % blk.rows();
        const std::int64_t j = blk.lo2 + (r / 3) % blk.cols();
        a.get(Patch{i, i, j, j}, &v, 1);
      }
      get_total = rt.engine().now() - t0;
    }
    rt.sync();
    rt.destroy(a);
  });
  SPLAP_REQUIRE(status == Status::kOk, "GA latency run failed");
  return GaLatency{to_us(put_total) / kReps, to_us(get_total) / kReps};
}

double raw_lapi_put_mb_s(std::int64_t bytes, bool interrupt_mode) {
  const int reps = series_length(bytes);
  net::Machine m(machine_config(2));
  lapi::Config cfg;
  cfg.interrupt_mode = interrupt_mode;
  std::vector<std::byte> tgt(static_cast<std::size_t>(bytes));
  Time elapsed = 0;
  const Status status = m.run_spmd([&](net::Node& n) {
    lapi::Context ctx(n, cfg);
    if (ctx.task_id() == 0) {
      std::vector<std::byte> src(static_cast<std::size_t>(bytes),
                                 std::byte{1});
      lapi::Counter cmpl;
      const Time t0 = ctx.engine().now();
      for (int i = 0; i < reps; ++i) {
        const Status s =
            ctx.put(1, src, tgt.data(), nullptr, nullptr, &cmpl);
        SPLAP_REQUIRE(s == Status::kOk, "raw put failed");
        const Status w = ctx.waitcntr(cmpl, 1);
        SPLAP_REQUIRE(w == Status::kOk, "raw put waitcntr failed");
      }
      elapsed = ctx.engine().now() - t0;
    }
    const Status f = ctx.gfence();
    SPLAP_REQUIRE(f == Status::kOk, "raw put gfence failed");
  });
  SPLAP_REQUIRE(status == Status::kOk, "raw LAPI bandwidth run failed");
  return mb_per_s(bytes * reps, elapsed);
}

double raw_lapi_put_mb_s(std::int64_t bytes, const RawPutOpts& opts) {
  const int reps = series_length(bytes);
  net::Machine::Config mc = machine_config(2);
  if (opts.bcopy_limit_override >= 0) {
    mc.fabric.cost.lapi_bcopy_limit = opts.bcopy_limit_override;
  }
  net::Machine m(mc);
  lapi::Config cfg = opts.lapi;
  cfg.interrupt_mode = false;
  std::vector<std::byte> tgt(static_cast<std::size_t>(bytes));
  Time elapsed = 0;
  const Status status = m.run_spmd([&](net::Node& n) {
    lapi::Context ctx(n, cfg);
    if (ctx.task_id() == 0) {
      std::vector<std::byte> src(static_cast<std::size_t>(bytes),
                                 std::byte{1});
      lapi::Counter cmpl;
      const Time t0 = ctx.engine().now();
      for (int i = 0; i < reps; ++i) {
        const Status s =
            ctx.put(1, src, tgt.data(), nullptr, nullptr, &cmpl);
        SPLAP_REQUIRE(s == Status::kOk, "raw put failed");
        const Status w = ctx.waitcntr(cmpl, 1);
        SPLAP_REQUIRE(w == Status::kOk, "raw put waitcntr failed");
      }
      elapsed = ctx.engine().now() - t0;
    }
    const Status f = ctx.gfence();
    SPLAP_REQUIRE(f == Status::kOk, "raw put gfence failed");
  });
  SPLAP_REQUIRE(status == Status::kOk, "raw LAPI bandwidth run failed");
  return mb_per_s(bytes * reps, elapsed);
}

double raw_mpi_mb_s(std::int64_t bytes, std::int64_t eager_limit) {
  const int reps = series_length(bytes);
  net::Machine m(machine_config(2));
  mpl::Config cfg;
  cfg.eager_limit = eager_limit;
  Time elapsed = 0;
  const Status status = m.run_spmd([&](net::Node& n) {
    mpl::Comm comm(n, cfg);
    std::vector<std::byte> buf(static_cast<std::size_t>(bytes), std::byte{1});
    std::byte token{};
    comm.barrier();
    if (comm.rank() == 0) {
      const Time t0 = comm.engine().now();
      for (int i = 0; i < reps; ++i) {
        SPLAP_REQUIRE(comm.send(1, 1, buf) == Status::kOk, "send failed");
        SPLAP_REQUIRE(comm.recv(1, 2, std::span<std::byte>(&token, 1)) ==
                          Status::kOk,
                      "echo failed");
      }
      elapsed = comm.engine().now() - t0;
    } else {
      for (int i = 0; i < reps; ++i) {
        SPLAP_REQUIRE(comm.recv(0, 1, buf) == Status::kOk, "recv failed");
        SPLAP_REQUIRE(comm.send(0, 2,
                                std::span<const std::byte>(&token, 1)) ==
                          Status::kOk,
                      "echo send failed");
      }
    }
    comm.barrier();
  });
  SPLAP_REQUIRE(status == Status::kOk, "raw MPI bandwidth run failed");
  return mb_per_s(bytes * reps, elapsed);
}

}  // namespace splap::ga::bench
