// Block distribution of a dense 2-D global array over a process grid.
//
// GA's default layout: the task set is factored into a near-square pr x pc
// grid; each dimension is divided into equal blocks (the last block takes
// the remainder). Arrays are column-major (Fortran heritage). Indices are
// 0-based and patch bounds are INCLUSIVE [lo, hi], matching the C Global
// Arrays interface.
#pragma once

#include <cstdint>
#include <vector>

#include "base/status.hpp"

namespace splap::ga {

/// An inclusive 2-D index patch.
struct Patch {
  std::int64_t lo1 = 0, hi1 = -1;  // rows
  std::int64_t lo2 = 0, hi2 = -1;  // columns

  bool empty() const { return hi1 < lo1 || hi2 < lo2; }
  std::int64_t rows() const { return empty() ? 0 : hi1 - lo1 + 1; }
  std::int64_t cols() const { return empty() ? 0 : hi2 - lo2 + 1; }
  std::int64_t elems() const { return rows() * cols(); }

  bool operator==(const Patch&) const = default;

  Patch intersect(const Patch& o) const {
    Patch r;
    r.lo1 = lo1 > o.lo1 ? lo1 : o.lo1;
    r.hi1 = hi1 < o.hi1 ? hi1 : o.hi1;
    r.lo2 = lo2 > o.lo2 ? lo2 : o.lo2;
    r.hi2 = hi2 < o.hi2 ? hi2 : o.hi2;
    return r;
  }

  bool contains(std::int64_t i, std::int64_t j) const {
    return i >= lo1 && i <= hi1 && j >= lo2 && j <= hi2;
  }
};

class Distribution {
 public:
  Distribution() = default;
  Distribution(std::int64_t dim1, std::int64_t dim2, int nprocs)
      : dim1_(dim1), dim2_(dim2) {
    SPLAP_REQUIRE(dim1 > 0 && dim2 > 0, "array dimensions must be positive");
    SPLAP_REQUIRE(nprocs > 0, "need at least one process");
    // Near-square grid: the largest divisor of nprocs not exceeding sqrt.
    pr_ = 1;
    for (int d = 1; static_cast<std::int64_t>(d) * d <= nprocs; ++d) {
      if (nprocs % d == 0) pr_ = d;
    }
    pc_ = nprocs / pr_;
    // Prefer more row blocks when the array is taller than wide.
    if (dim1 >= dim2 && pr_ < pc_) {
      const int t = pr_;
      pr_ = pc_;
      pc_ = t;
    }
    b1_ = (dim1 + pr_ - 1) / pr_;
    b2_ = (dim2 + pc_ - 1) / pc_;
  }

  std::int64_t dim1() const { return dim1_; }
  std::int64_t dim2() const { return dim2_; }
  int grid_rows() const { return pr_; }
  int grid_cols() const { return pc_; }
  int nprocs() const { return pr_ * pc_; }

  /// The task owning element (i, j).
  int owner(std::int64_t i, std::int64_t j) const {
    SPLAP_REQUIRE(i >= 0 && i < dim1_ && j >= 0 && j < dim2_,
                  "index out of array bounds");
    const auto gr = static_cast<int>(i / b1_);
    const auto gc = static_cast<int>(j / b2_);
    return gr + gc * pr_;
  }

  /// The block of indices task `p` owns (may be empty on overhang tasks).
  Patch block(int p) const {
    SPLAP_REQUIRE(p >= 0 && p < nprocs(), "bad task id");
    const int gr = p % pr_;
    const int gc = p / pr_;
    Patch b;
    b.lo1 = gr * b1_;
    b.hi1 = std::min<std::int64_t>(dim1_ - 1, b.lo1 + b1_ - 1);
    b.lo2 = gc * b2_;
    b.hi2 = std::min<std::int64_t>(dim2_ - 1, b.lo2 + b2_ - 1);
    if (b.lo1 >= dim1_ || b.lo2 >= dim2_) b = Patch{};  // overhang: empty
    return b;
  }

  /// Local leading dimension (rows of the local block) for task `p`.
  std::int64_t local_ld(int p) const { return block(p).rows(); }
  std::int64_t local_elems(int p) const { return block(p).elems(); }

  /// Decompose `patch` into per-owner pieces (global coordinates).
  std::vector<std::pair<int, Patch>> decompose(const Patch& patch) const {
    std::vector<std::pair<int, Patch>> out;
    if (patch.empty()) return out;
    SPLAP_REQUIRE(patch.lo1 >= 0 && patch.hi1 < dim1_ && patch.lo2 >= 0 &&
                      patch.hi2 < dim2_,
                  "patch out of array bounds");
    const auto g1_lo = static_cast<int>(patch.lo1 / b1_);
    const auto g1_hi = static_cast<int>(patch.hi1 / b1_);
    const auto g2_lo = static_cast<int>(patch.lo2 / b2_);
    const auto g2_hi = static_cast<int>(patch.hi2 / b2_);
    for (int gc = g2_lo; gc <= g2_hi; ++gc) {
      for (int gr = g1_lo; gr <= g1_hi; ++gr) {
        const int p = gr + gc * pr_;
        const Patch piece = patch.intersect(block(p));
        if (!piece.empty()) out.emplace_back(p, piece);
      }
    }
    return out;
  }

 private:
  std::int64_t dim1_ = 0, dim2_ = 0;
  int pr_ = 1, pc_ = 1;
  std::int64_t b1_ = 1, b2_ = 1;
};

/// True when `piece` occupies contiguous storage inside an owner block of
/// shape `block` (single column, or full column span of the block) — the
/// "1-D request" of the paper's Section 5.4.
inline bool contiguous_in_block(const Patch& piece, const Patch& block) {
  return piece.cols() == 1 || piece.rows() == block.rows();
}

}  // namespace splap::ga
