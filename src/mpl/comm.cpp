#include "mpl/comm.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "base/log.hpp"

namespace splap::mpl {

namespace {
constexpr std::int64_t kRtsDescBytes = 16;
constexpr std::int64_t kCtlDescBytes = 8;
}  // namespace

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

Comm::Comm(net::Node& node, Config config)
    : node_(node), config_(config), wire_(node.machine().fabric()) {
  SPLAP_REQUIRE(sim::Actor::current() != nullptr,
                "Comm must be constructed in a task context");
  SPLAP_REQUIRE(config_.eager_limit >= 0 && config_.eager_limit <= 65536,
                "MP_EAGER_LIMIT out of range (max 64K, Section 4)");
  next_send_seq_.assign(static_cast<std::size_t>(size()), 0);
  next_admit_.assign(static_cast<std::size_t>(size()), 0);
  // Incarnation epochs, as in the LAPI stack: our node's restart count and
  // the last-known incarnation of each peer (both 0 in healthy runs).
  epoch_ = node_.machine().incarnation(rank());
  peer_epochs_.resize(static_cast<std::size_t>(size()));
  for (int t = 0; t < size(); ++t) {
    peer_epochs_[static_cast<std::size_t>(t)] = node_.machine().incarnation(t);
  }
  // The shared reliable-delivery core, configured like the fixed-timeout
  // LAPI policy but with the backoff clamp armed: MPL has no adaptive
  // estimation, so without the clamp the per-retry doubling was unbounded.
  lapi::RetryPolicy policy;
  policy.base_rto = config_.retransmit_timeout;
  policy.max_retries = config_.max_retries;
  policy.clamp_backoff = true;
  policy.rto_max = config_.rto_max;
  channel_ = std::make_unique<lapi::ReliableChannel>(
      engine(), static_cast<lapi::ReliableChannel::Sender&>(*this), policy,
      "mpl", /*jitter_seed=*/0, std::weak_ptr<char>(alive_));
  ctr_sends_ = engine().counters().handle("mpl.sends");
  ctr_pkts_rx_ = engine().counters().handle("mpl.pkts_rx");
  node_.adapter().register_client(
      net::Client::kMpl, [this](net::Packet&& p) { on_delivery(std::move(p)); });
}

Comm::~Comm() { term(); }

void Comm::term() {
  if (terminated_) return;
  sim::Actor* a = sim::Actor::current();
  SPLAP_REQUIRE(a != nullptr, "Comm::term must run in a task context");
  if (!a->poisoned()) {
    try {
      while (!sends_.empty() || pending_effects_ > 0) {
        bool gave_up = true;
        for (const auto& [id, req] : sends_) {
          if (req.retry.retries < config_.max_retries) gave_up = false;
        }
        if (gave_up && pending_effects_ == 0) break;
        waiters_.add(*a);
        a->suspend("mpl-term-quiesce");
      }
    } catch (...) {
      if (!a->poisoned()) throw;
      // The crash landed mid-quiesce: ~Comm is noexcept, so the engine's
      // kill exception is absorbed here and teardown takes the crash path
      // below. The actor's next suspension rethrows it.
    }
  }
  if (a->poisoned()) {
    // Crash teardown: the slot really is gone; late packets dead-letter.
    node_.adapter().unregister_client(net::Client::kMpl);
  } else {
    // Orderly shutdown keeps absorbing straggler duplicate acks (see
    // Adapter::retire_client).
    node_.adapter().retire_client(net::Client::kMpl);
  }
  terminated_ = true;
  alive_.reset();
}

void Comm::defer(Time at, std::function<void()> fn) {
  ++pending_effects_;
  engine().schedule_at(
      at, [this, w = std::weak_ptr<char>(alive_), fn = std::move(fn)] {
        if (w.expired()) return;
        --pending_effects_;
        fn();
        notify();
      });
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

Request Comm::start_send(int dst, int tag, std::span<const std::byte> data) {
  SPLAP_REQUIRE(!terminated_, "send after Comm::term");
  SPLAP_REQUIRE(dst >= 0 && dst < size(), "bad destination rank");
  const CostModel& cm = cost();
  const auto len = static_cast<std::int64_t>(data.size());
  const bool eager = len <= config_.eager_limit;

  const Request id = next_req_++;
  SendReq req;
  req.dst = dst;
  req.tag = tag;
  req.seq = next_send_seq_[static_cast<std::size_t>(dst)]++;
  req.dst_epoch = node_.machine().incarnation(dst);
  req.state = eager ? SState::kEagerDone : SState::kWaitCts;
  // Eager: the buffering copy that lets the send return immediately — the
  // "extra copy in MPI" of Section 4, charged at memory-copy bandwidth.
  // Rendezvous: the copy records the bytes for retransmission but the real
  // library sends from the pinned user buffer, so it is not charged.
  req.data = std::make_shared<std::vector<std::byte>>(data.begin(), data.end());

  Time inject_at;
  if (sim::Actor* a = sim::Actor::current()) {
    // splap-graph: allow(blocking-reachability): guarded by Actor::current()
    // — handler-context callers take the else branch, which charges
    // busy_until_ instead of suspending.
    a->compute(cm.mpi_send + (eager ? cm.copy_time(len) : 0));
    inject_at = engine().now();
  } else {
    // Handler context: the send queues behind whatever the protocol thread
    // is already doing (e.g. the pack copy an rcvncall handler charged).
    inject_at = std::max(engine().now(), busy_until_) + cm.mpi_send +
                (eager ? cm.copy_time(len) : 0);
    busy_until_ = inject_at;
  }

  seq_to_send_[{dst, req.seq}] = id;
  sends_.emplace(id, std::move(req));
#ifdef SPLAP_AUDIT
  send_ledger_.insert(&sends_.at(id), "Comm::start_send");
#endif
  if (inject_at <= engine().now()) {
    transmit_send(sends_.at(id), id);
  } else {
    defer(inject_at, [this, id] {
      auto it = sends_.find(id);
      if (it != sends_.end()) transmit_send(it->second, id);
    });
  }
  const Time backlog =
      std::max<Time>(0, wire_.link_free(rank()) - engine().now());
  channel_->arm(id, channel_->initial_rto() + 2 * backlog +
                        2 * transfer_time(len, cm.wire_mb_s));
  ctr_sends_.bump();
  return id;
}

void Comm::transmit_send(const SendReq& req, std::int64_t /*id*/) {
  const CostModel& cm = cost();
  if (req.state == SState::kWaitCts) {
    // Rendezvous: request to send only.
    net::Packet p = wire_.make_packet();
    p.src = rank();
    p.dst = req.dst;
    p.client = net::Client::kMpl;
    p.header_bytes = cm.mpi_header_bytes + kRtsDescBytes;
    auto m = std::make_shared<MplMeta>();
    m->kind = MplKind::kRts;
    m->seq = req.seq;
    m->tag = req.tag;
    m->total_len = static_cast<std::int64_t>(req.data->size());
    m->epoch = epoch_;
    m->dst_epoch = req.dst_epoch;
    p.meta = std::move(m);
    wire_.transmit(std::move(p));
    return;
  }
  // Eager: envelope packet with the first chunk, then data packets.
  const std::int64_t len = static_cast<std::int64_t>(req.data->size());
  net::Packet first = wire_.make_packet();
  first.src = rank();
  first.dst = req.dst;
  first.client = net::Client::kMpl;
  first.header_bytes = cm.mpi_header_bytes;
  auto m = std::make_shared<MplMeta>();
  m->kind = MplKind::kEager;
  m->seq = req.seq;
  m->tag = req.tag;
  m->total_len = len;
  m->epoch = epoch_;
  m->dst_epoch = req.dst_epoch;
  first.meta = std::move(m);
  const std::int64_t chunk0 = std::min(len, cm.mpi_payload());
  if (chunk0 > 0) {
    first.data.assign(req.data->begin(), req.data->begin() + chunk0);
  }
  wire_.transmit(std::move(first));
  transmit_data(req);
}

void Comm::transmit_data(const SendReq& req) {
  const CostModel& cm = cost();
  const std::int64_t len = static_cast<std::int64_t>(req.data->size());
  // Eager carried its first chunk in the envelope; rendezvous streams all.
  std::int64_t offset =
      req.state == SState::kEagerDone ? std::min(len, cm.mpi_payload()) : 0;
  while (offset < len) {
    const std::int64_t chunk = std::min(len - offset, cm.mpi_payload());
    net::Packet p = wire_.make_packet();
    p.src = rank();
    p.dst = req.dst;
    p.client = net::Client::kMpl;
    p.header_bytes = cm.mpi_header_bytes;
    auto m = std::make_shared<MplMeta>();
    m->kind = MplKind::kData;
    m->seq = req.seq;
    m->offset = offset;
    m->epoch = epoch_;
    m->dst_epoch = req.dst_epoch;
    p.meta = std::move(m);
    p.data.assign(req.data->begin() + offset, req.data->begin() + offset + chunk);
    wire_.transmit(std::move(p));
    offset += chunk;
  }
}

lapi::RetryState* Comm::retry_state(std::int64_t id) {
  auto it = sends_.find(id);
  return it == sends_.end() ? nullptr : &it->second.retry;
}

bool Comm::settled(std::int64_t id) { return sends_.at(id).acked; }

void Comm::retransmit(std::int64_t id) {
  SendReq& req = sends_.at(id);
#ifdef SPLAP_AUDIT
  send_ledger_.expect(&req, "Comm::retransmit");
#endif
  if (req.state == SState::kWaitCts) {
    transmit_send(req, id);  // re-RTS
  } else if (req.state == SState::kEagerDone) {
    transmit_send(req, id);  // envelope + data
  } else {
    transmit_data(req);  // streaming: data only, envelope was the RTS
  }
}

void Comm::give_up(std::int64_t id) {
  // Distinguish the two exhaustion causes: when the destination's node is
  // actually down on the wire, this is a crash-stop peer failure and every
  // send toward it is hopeless at once; otherwise it is the legacy overload
  // verdict (shed at the receiver, congestion), where the record stays and
  // term's quiesce loop observes the exhausted retry budget.
  auto it = sends_.find(id);
  if (it != sends_.end() &&
      !node_.machine().fabric().node_up(it->second.dst, engine().now())) {
    fail_peer(it->second.dst);
    return;
  }
  // The stronger verdict wins (comm.hpp): a retry-budget exhaustion against
  // one peer must not downgrade an already-latched death of another.
  if (comm_status_ != Status::kPeerFailed) {
    comm_status_ = Status::kResourceExhausted;
  }
  notify();
}

void Comm::fail_peer(int peer) {
  if (failed_peers_.insert(peer).second) {
    engine().counters().bump("mpl.peer_failed");
    SPLAP_WARN(engine().now(), "mpl rank %d: peer %d declared failed (node down)",
               rank(), peer);
  }
  // Reclaim every in-flight send toward the peer (the retransmit timers die
  // as stale once the records are gone), so term's quiesce loop and blocked
  // senders exit instead of burning the full retry budget per message.
  for (auto it = sends_.begin(); it != sends_.end();) {
    if (it->second.dst == peer) {
#ifdef SPLAP_AUDIT
      send_ledger_.remove(&it->second, "Comm::fail_peer");
#endif
      seq_to_send_.erase({peer, it->second.seq});
      it = sends_.erase(it);
    } else {
      ++it;
    }
  }
  // Receives that can only be satisfied by the dead peer can never
  // complete: fail matched postings bound to it and unmatched postings that
  // name it explicitly. (kAnySource postings stay — see Posting::failed.)
  for (auto& [pid, p] : postings_) {
    if (p.done || p.failed) continue;
    if ((p.matched && p.m_src == peer) || (!p.matched && p.src == peer)) {
      p.failed = true;
    }
  }
  comm_status_ = Status::kPeerFailed;
  notify();
}

void Comm::on_peer_reborn(int peer, std::int64_t new_epoch) {
  // The previous life's verdicts and receive-side state are void: its
  // sequence space restarts at zero with the new incarnation. Only sends
  // addressed to a dead incarnation fail over — a send already stamped with
  // the new epoch is live traffic of the new conversation (possibly the
  // very one whose packet triggered this adoption).
  bool failed_any = false;
  for (auto it = sends_.begin(); it != sends_.end();) {
    if (it->second.dst == peer && it->second.dst_epoch < new_epoch) {
#ifdef SPLAP_AUDIT
      send_ledger_.remove(&it->second, "Comm::on_peer_reborn");
#endif
      seq_to_send_.erase({peer, it->second.seq});
      it = sends_.erase(it);
      failed_any = true;
    } else {
      ++it;
    }
  }
  // Matched postings were bound to old-life messages (wiped below) and can
  // never complete; unmatched postings naming the peer stay — the new life
  // may still satisfy them.
  for (auto& [pid, p] : postings_) {
    if (p.done || p.failed) continue;
    if (p.matched && p.m_src == peer) {
      p.failed = true;
      failed_any = true;
    }
  }
  if (failed_any && comm_status_ == Status::kOk) {
    comm_status_ = Status::kPeerFailed;
  }
  failed_peers_.erase(peer);
  for (auto it = in_.begin(); it != in_.end();) {
    if (it->first.first == peer) {
      it = in_.erase(it);
    } else {
      ++it;
    }
  }
  std::erase_if(unexpected_,
                [peer](const auto& key) { return key.first == peer; });
  std::erase_if(handler_q_,
                [peer](const auto& key) { return key.first == peer; });
  next_admit_[static_cast<std::size_t>(peer)] = 0;
  notify();
}

void Comm::send_ctl(int dst, MplKind kind, std::int64_t seq, Time when) {
  net::Packet p = wire_.make_packet();
  p.src = rank();
  p.dst = dst;
  p.client = net::Client::kMpl;
  p.header_bytes = cost().mpi_header_bytes + kCtlDescBytes;
  auto m = std::make_shared<MplMeta>();
  m->kind = kind;
  m->seq = seq;
  // Control replies address the peer incarnation currently admitted (which
  // the gate in process() keeps equal to the incoming packet's stamp).
  m->epoch = epoch_;
  m->dst_epoch = peer_epochs_[static_cast<std::size_t>(dst)];
  p.meta = std::move(m);
  if (when <= engine().now()) {
    wire_.transmit(std::move(p));
  } else {
    defer(when, [this, sp = std::make_shared<net::Packet>(std::move(p))] {
      wire_.transmit(std::move(*sp));
    });
  }
}

// ---------------------------------------------------------------------------
// Public point-to-point
// ---------------------------------------------------------------------------

Status Comm::send(int dst, int tag, std::span<const std::byte> data) {
  if (dst < 0 || dst >= size()) return Status::kBadParameter;
  const Request r = start_send(dst, tag, data);
  wait(r);
  return Status::kOk;
}

Request Comm::isend(int dst, int tag, std::span<const std::byte> data) {
  SPLAP_REQUIRE(dst >= 0 && dst < size(), "bad destination rank");
  return start_send(dst, tag, data);
}

Request Comm::irecv(int src, int tag, std::span<std::byte> buf,
                    RecvStatus* st) {
  SPLAP_REQUIRE(!terminated_, "irecv after Comm::term");
  SPLAP_REQUIRE(src == kAnySource || (src >= 0 && src < size()), "bad source");
  sim::Actor* a = sim::Actor::current();
  const Request id = next_req_++;
  Posting p;
  p.id = id;
  p.src = src;
  p.tag = tag;
  p.buf = buf;
  p.status = st;
  // Naming an already-declared-dead peer fails the receive immediately
  // (there is nothing to wait for; fail_peer only scans existing postings).
  if (src != kAnySource && failed_peers_.count(src) != 0) p.failed = true;
  postings_.emplace(id, p);
  posting_order_.push_back(id);
  Time charge = cost().mpi_post + match_scan();
  if (a != nullptr) {
    // splap-graph: allow(blocking-reachability): `a` is Actor::current() —
    // handler-context posts charge busy_until_ in the else arm instead.
    a->compute(charge);
  } else {
    busy_until_ = std::max(busy_until_, engine().now()) + charge;
  }
  return id;
}

Status Comm::recv(int src, int tag, std::span<std::byte> buf, RecvStatus* st) {
  if (src != kAnySource && (src < 0 || src >= size())) {
    return Status::kBadParameter;
  }
  const Request r = irecv(src, tag, buf, st);
  wait(r);
  auto it = postings_.find(r);
  const bool truncated = it != postings_.end() && it->second.truncated;
  const bool failed =
      it != postings_.end() && it->second.failed && !it->second.done;
  postings_.erase(r);
  if (failed) return Status::kPeerFailed;
  return truncated ? Status::kTruncated : Status::kOk;
}

void Comm::wait(Request r) {
  sim::Actor* a = sim::Actor::current();
  SPLAP_REQUIRE(a != nullptr, "wait must run in a task context");
  a->wait(
      [&] {
        if (auto it = postings_.find(r); it != postings_.end()) {
          if (!it->second.done && !it->second.failed) {
            waiters_.add(*a);
            return false;
          }
          return true;
        }
        if (auto it = sends_.find(r); it != sends_.end()) {
          if (it->second.state == SState::kWaitCts) {
            waiters_.add(*a);
            return false;
          }
          return true;  // buffered / streaming: user buffer is reusable
        }
        return true;  // already retired
      },
      "mpl-wait");
}

bool Comm::test(Request r) {
  if (auto it = postings_.find(r); it != postings_.end()) {
    return it->second.done || it->second.failed;
  }
  if (auto it = sends_.find(r); it != sends_.end()) {
    return it->second.state != SState::kWaitCts;
  }
  return true;
}

// ---------------------------------------------------------------------------
// rcvncall / lockrnc
// ---------------------------------------------------------------------------

void Comm::rcvncall(int tag, RcvncallHandler handler) {
  SPLAP_REQUIRE(handler != nullptr, "null rcvncall handler");
  registrations_.push_back(Registration{tag, std::move(handler)});
}

void Comm::lock_interrupts() { ++intr_lock_depth_; }

void Comm::unlock_interrupts() {
  SPLAP_REQUIRE(intr_lock_depth_ > 0, "unlockrnc without lockrnc");
  if (--intr_lock_depth_ == 0) schedule_handler_pump();
}

void Comm::handler_charge(Time d) {
  busy_until_ = std::max(busy_until_, engine().now()) + d;
}

void Comm::deliver_rcvncall(int src, std::int64_t seq, const Registration&) {
  // Handlers run single-threaded on the protocol thread, strictly FIFO
  // (messages were already admitted in order; the handler queue must not
  // reorder them). The interrupt + AIX handler-context creation is charged
  // per delivery (Section 5.2's latency story).
  const CostModel& cm = cost();
  busy_until_ = std::max(engine().now(), busy_until_) + cm.interrupt_cost +
                cm.rcvncall_context;
  engine().counters().bump("mpl.rcvncalls");
  handler_q_.emplace_back(src, seq);
  schedule_handler_pump();
}

void Comm::schedule_handler_pump() {
  if (handler_pump_scheduled_ || handler_q_.empty()) return;
  handler_pump_scheduled_ = true;
  defer(std::max(engine().now(), busy_until_), [this] {
    handler_pump_scheduled_ = false;
    pump_handlers();
  });
}

void Comm::pump_handlers() {
  if (handler_q_.empty()) return;
  if (intr_lock_depth_ > 0) return;  // lockrnc: unlock re-schedules
  if (engine().now() < busy_until_) {
    schedule_handler_pump();  // earlier work charged after we were scheduled
    return;
  }
  const auto key = handler_q_.front();
  handler_q_.pop_front();
  auto it = in_.find(key);
  SPLAP_REQUIRE(it != in_.end(), "rcvncall message vanished");
  InMsg& msg = it->second;
  const Registration& reg =
      registrations_[static_cast<std::size_t>(msg.reg_index)];
  RcvncallDelivery d{key.first, msg.tag,
                     std::span<const std::byte>(msg.stage.data(),
                                                msg.stage.size())};
  reg.handler(*this, d);
  msg.stage.clear();
  msg.stage.shrink_to_fit();
  schedule_handler_pump();
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void Comm::on_delivery(net::Packet&& pkt) {
  ctr_pkts_rx_.bump();
  rx_q_.push_back(std::move(pkt));
  schedule_pump();
}

void Comm::schedule_pump() {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  defer(std::max(engine().now(), busy_until_), [this] {
    pump_scheduled_ = false;
    pump();
  });
}

void Comm::pump() {
  if (rx_q_.empty()) return;
  if (engine().now() < busy_until_) {
    schedule_pump();
    return;
  }
  net::Packet pkt = std::move(rx_q_.front());
  rx_q_.pop_front();
  const Time c = process(pkt);
  busy_until_ = engine().now() + c;
  if (!rx_q_.empty()) schedule_pump();
}

Time Comm::ingest(InMsg& msg, std::int64_t offset,
                  std::span<const std::byte> bytes) {
  const auto len = static_cast<std::int64_t>(bytes.size());
  if (len == 0) return 0;
  if (msg.seen.count(offset) != 0) return 0;
  msg.seen[offset] = len;
  if (msg.matched && !msg.to_rcvncall && msg.user_buf != nullptr) {
    const std::int64_t fit =
        std::max<std::int64_t>(0, std::min(len, msg.user_cap - offset));
    if (fit > 0) {
      std::memcpy(msg.user_buf + offset, bytes.data(),
                  static_cast<std::size_t>(fit));
    }
  } else {
    if (static_cast<std::int64_t>(msg.stage.size()) < msg.total) {
      msg.stage.resize(static_cast<std::size_t>(msg.total));
    }
    std::memcpy(msg.stage.data() + offset, bytes.data(),
                static_cast<std::size_t>(len));
  }
  msg.received += len;
  return cost().copy_time(len);
}

Time Comm::process(net::Packet& pkt) {
  const CostModel& cm = cost();
  const MplMeta& m = pkt.meta_as<MplMeta>();
  const int src = pkt.src;
  // Incarnation gate (no-op in healthy runs: everything is epoch 0). A
  // packet from or for a dead incarnation is rejected; a stamp newer than
  // the admitted one means the peer restarted — adopt it and wipe the old
  // life's state first.
  if (m.dst_epoch != epoch_ ||
      m.epoch != peer_epochs_[static_cast<std::size_t>(src)]) [[unlikely]] {
    if (m.dst_epoch < epoch_ ||
        m.epoch < peer_epochs_[static_cast<std::size_t>(src)]) {
      engine().counters().bump("mpl.stale_epoch");
      return cm.mpi_pkt_rx;
    }
    peer_epochs_[static_cast<std::size_t>(src)] = m.epoch;
    on_peer_reborn(src, m.epoch);
  }
  const auto key = std::pair<int, std::int64_t>{src, m.seq};

  // Completion effects (posting done / handler dispatch) land at the END of
  // this packet's processing cost — the receive-side matching and copy time
  // are part of the observed latency (Table 2's 43us include them).
  auto check_assembled = [&](InMsg& msg, Time cost_so_far) {
    if (!msg.have_envelope || msg.assembled || msg.received != msg.total) {
      return;
    }
    msg.assembled = true;
    send_ctl(src, MplKind::kAck, m.seq, engine().now() + cost_so_far);
    if (msg.matched && !msg.delivered) {
      msg.delivered = true;
      defer(engine().now() + cost_so_far,
            [this, src, seq = m.seq] { complete_message(src, seq); });
    }
  };

  switch (m.kind) {
    case MplKind::kEager:
    case MplKind::kRts: {
      InMsg& msg = in_[key];
      Time c = cm.mpi_pkt_rx;
      if (msg.shed) return c;  // tombstone: no buffering, no ack
      if (msg.assembled) {
        send_ctl(src, MplKind::kAck, m.seq, engine().now() + c);
        return c;
      }
      if (msg.have_envelope) {
        if (m.kind == MplKind::kRts && msg.matched && !msg.assembled) {
          // Duplicate RTS: the CTS was probably lost — resend it.
          send_ctl(src, MplKind::kCts, m.seq, engine().now() + c);
        }
        if (m.kind == MplKind::kEager) c += ingest(msg, 0, pkt.data);
        check_assembled(msg, c);
        return c;
      }
      msg.have_envelope = true;
      msg.is_rndv = (m.kind == MplKind::kRts);
      msg.tag = m.tag;
      msg.total = m.total_len;
      c += match_scan();  // admission in per-source order + matching
      if (msg.shed) return c;  // admission capped the queue: drop the payload
      if (m.kind == MplKind::kEager) {
        c += ingest(msg, 0, pkt.data);
      }
      for (auto& [off, bytes] : msg.early) {
        c += ingest(msg, off, bytes);
      }
      msg.early.clear();
      check_assembled(msg, c);
      return c;
    }

    case MplKind::kData: {
      InMsg& msg = in_[key];
      Time c = cm.mpi_pkt_rx;
      if (msg.shed) return c;  // tombstone: no buffering, no ack
      if (msg.assembled) {
        send_ctl(src, MplKind::kAck, m.seq, engine().now() + c);
        return c;
      }
      if (!msg.have_envelope) {
        msg.early.emplace_back(m.offset, std::move(pkt.data));
        return c;
      }
      c += ingest(msg, m.offset, pkt.data);
      check_assembled(msg, c);
      return c;
    }

    case MplKind::kCts: {
      const Time c = cm.mpi_ctl;
      auto it = seq_to_send_.find({src, m.seq});
      if (it == seq_to_send_.end()) return c;  // stale duplicate
      const Request rid = it->second;
      defer(engine().now() + c + cm.mpi_rndv_restart, [this, rid] {
        auto jt = sends_.find(rid);
        if (jt == sends_.end()) return;
        SendReq& req = jt->second;
        if (req.state != SState::kWaitCts) return;  // duplicate CTS
        req.state = SState::kStreaming;
        transmit_data(req);
        channel_->arm(rid, channel_->initial_rto() +
                               2 * transfer_time(static_cast<std::int64_t>(
                                                     req.data->size()),
                                                 cost().wire_mb_s));
      });
      return c;
    }

    case MplKind::kAck: {
      const Time c = cm.mpi_pkt_rx;
      defer(engine().now() + c, [this, src, seq = m.seq] {
        auto it = seq_to_send_.find({src, seq});
        if (it == seq_to_send_.end()) return;
        const Request rid = it->second;
        auto jt = sends_.find(rid);
        if (jt != sends_.end()) {
          jt->second.acked = true;
          jt->second.state = SState::kDone;
#ifdef SPLAP_AUDIT
          send_ledger_.remove(&jt->second, "Comm::process/kAck");
#endif
          sends_.erase(jt);
        }
        seq_to_send_.erase(it);
      });
      return c;
    }
  }
  SPLAP_REQUIRE(false, "unknown MPL packet kind");
  return 0;
}

Time Comm::match_scan() {
  const CostModel& cm = cost();
  Time charged = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    // Admit envelopes strictly in per-source sequence order ("in-order
    // message delivery", the MPL progress rule).
    for (auto& [key, msg] : in_) {
      if (msg.admitted || !msg.have_envelope) continue;
      if (key.second !=
          next_admit_[static_cast<std::size_t>(key.first)]) {
        continue;
      }
      msg.admitted = true;
      ++next_admit_[static_cast<std::size_t>(key.first)];
      progress = true;
      // Try the posted queue in post order.
      bool bound = false;
      for (const Request pid : posting_order_) {
        auto pit = postings_.find(pid);
        if (pit == postings_.end() || pit->second.matched) continue;
        Posting& p = pit->second;
        if ((p.src == kAnySource || p.src == key.first) &&
            (p.tag == kAnyTag || p.tag == msg.tag)) {
          charged += bind(p, key.first, key.second, msg);
          bound = true;
          break;
        }
      }
      if (bound) continue;
      // Then rcvncall registrations.
      for (std::size_t ri = 0; ri < registrations_.size(); ++ri) {
        if (registrations_[ri].tag == msg.tag) {
          msg.matched = true;
          msg.to_rcvncall = true;
          msg.reg_index = static_cast<int>(ri);
          charged += cm.mpi_match;
          if (msg.is_rndv) {
            msg.stage.resize(static_cast<std::size_t>(msg.total));
            charged += cm.mpi_ctl;
            send_ctl(key.first, MplKind::kCts, key.second,
                     engine().now() + charged);
          }
          if (msg.assembled && !msg.delivered) {
            msg.delivered = true;
            complete_message(key.first, key.second);
          }
          bound = true;
          break;
        }
      }
      if (!bound) {
        if (config_.max_unexpected > 0 && !msg.is_rndv &&
            static_cast<std::int64_t>(unexpected_.size()) >=
                config_.max_unexpected) {
          // Unexpected queue full: shed this eager message instead of
          // buffering without bound. The tombstone keeps the in-order
          // cursor honest; no ack ever goes back, so the sender's retry
          // budget exhausts and surfaces the loss on its side too.
          msg.shed = true;
          msg.stage.clear();
          msg.stage.shrink_to_fit();
          msg.early.clear();
          msg.seen.clear();
          msg.received = 0;
          engine().counters().bump("mpl.unexpected_shed");
          if (comm_status_ != Status::kPeerFailed) {
            comm_status_ = Status::kResourceExhausted;
          }
        } else {
          unexpected_.push_back(key);
        }
      }
    }
    // New postings may match queued unexpected messages.
    for (auto uit = unexpected_.begin(); uit != unexpected_.end();) {
      InMsg& msg = in_.at(*uit);
      bool bound = false;
      for (const Request pid : posting_order_) {
        auto pit = postings_.find(pid);
        if (pit == postings_.end() || pit->second.matched) continue;
        Posting& p = pit->second;
        if ((p.src == kAnySource || p.src == uit->first) &&
            (p.tag == kAnyTag || p.tag == msg.tag)) {
          charged += bind(p, uit->first, uit->second, msg);
          bound = true;
          break;
        }
      }
      if (bound) {
        uit = unexpected_.erase(uit);
        progress = true;
      } else {
        ++uit;
      }
    }
  }
  return charged;
}

Time Comm::bind(Posting& p, int src, std::int64_t seq, InMsg& msg) {
  const CostModel& cm = cost();
  Time charged = cm.mpi_match;
  p.matched = true;
  p.m_src = src;
  p.m_seq = seq;
  msg.matched = true;
  msg.user_buf = p.buf.data();
  msg.user_cap = static_cast<std::int64_t>(p.buf.size());
  if (msg.total > msg.user_cap) p.truncated = true;
  if (p.status != nullptr) {
    p.status->source = src;
    p.status->tag = msg.tag;
    p.status->len = msg.total;
  }
  if (msg.is_rndv) {
    charged += cm.mpi_ctl;
    send_ctl(src, MplKind::kCts, seq, engine().now() + charged);
  } else if (msg.received > 0) {
    // Late match: the unexpected-queue copy into the user buffer — the
    // second copy of the eager path.
    const std::int64_t fit = std::min(msg.received, msg.user_cap);
    if (fit > 0 && !msg.stage.empty()) {
      std::memcpy(msg.user_buf, msg.stage.data(),
                  static_cast<std::size_t>(fit));
    }
    charged += cm.copy_time(msg.received);
    engine().counters().bump("mpl.unexpected_copies");
  }
  if (msg.assembled && !msg.delivered) {
    // Matched an already-complete unexpected message (the posting arrived
    // late): deliver right away — the caller charges the copy time.
    msg.delivered = true;
    complete_message(src, seq);
  }
  return charged;
}

void Comm::complete_message(int src, std::int64_t seq) {
  const auto key = std::pair<int, std::int64_t>{src, seq};
  InMsg& msg = in_.at(key);
  SPLAP_REQUIRE(msg.assembled && msg.matched && msg.delivered,
                "completing an unready message");
  if (msg.to_rcvncall) {
    deliver_rcvncall(src, seq, registrations_[static_cast<std::size_t>(
                                   msg.reg_index)]);
    return;
  }
  // Find the posting bound to this message and mark it done.
  for (const Request pid : posting_order_) {
    auto pit = postings_.find(pid);
    if (pit == postings_.end()) continue;
    Posting& p = pit->second;
    if (p.matched && p.m_src == src && p.m_seq == seq && !p.done) {
      p.done = true;
      msg.stage.clear();
      msg.stage.shrink_to_fit();
      notify();
      return;
    }
  }
  SPLAP_REQUIRE(false, "matched message has no posting");
}

// ---------------------------------------------------------------------------
// Collectives (built on the tagged point-to-point layer; internal tags)
// ---------------------------------------------------------------------------

void Comm::barrier() {
  const int n = size();
  std::byte token{1};
  int round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    const int to = (rank() + dist) % n;
    const int from = (rank() - dist % n + n) % n;
    const int tag = kInternalTagBase + round;
    const Request s = isend(to, tag, std::span<const std::byte>(&token, 1));
    std::byte in{};
    const Status st = recv(from, tag, std::span<std::byte>(&in, 1));
    if (st == Status::kPeerFailed) return;  // degraded: comm_status_ latched
    SPLAP_REQUIRE(st == Status::kOk, "barrier exchange failed");
    wait(s);
  }
}

void Comm::bcast(std::span<std::byte> data, int root) {
  const int n = size();
  if (n == 1) return;
  const int tag = kInternalTagBase + 64;
  // Binomial tree rooted at `root` (ranks relative to the root).
  const int vrank = (rank() - root + n) % n;
  if (vrank != 0) {
    // Receive from the parent.
    int mask = 1;
    while ((vrank & mask) == 0) mask <<= 1;
    const int parent = ((vrank & ~mask) + root) % n;
    const Status st = recv(parent, tag, data);
    if (st == Status::kPeerFailed) return;  // degraded: comm_status_ latched
    SPLAP_REQUIRE(st == Status::kOk, "bcast receive failed");
  }
  // Forward to children.
  int mask = 1;
  while (mask < n && (vrank & (mask - 1)) == 0) {
    if ((vrank & mask) == 0) {
      const int child = vrank | mask;
      if (child < n) {
        const Status st = send((child + root) % n, tag, data);
        SPLAP_REQUIRE(st == Status::kOk, "bcast send failed");
      }
    }
    mask <<= 1;
  }
}

void Comm::allreduce_sum(std::span<double> data) {
  const int n = size();
  if (n == 1) return;
  std::vector<double> incoming(data.size());
  auto bytes_of = [](std::span<double> d) {
    return std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(d.data()), d.size_bytes());
  };
  // Recursive-doubling when n is a power of two; otherwise a simple
  // gather-to-0 + bcast fallback keeps correctness for any task count.
  if ((n & (n - 1)) == 0) {
    int round = 0;
    for (int dist = 1; dist < n; dist <<= 1, ++round) {
      const int peer = rank() ^ dist;
      const int tag = kInternalTagBase + 128 + round;
      const Request s = isend(peer, tag, bytes_of(data));
      const Status st =
          recv(peer, tag,
               std::span<std::byte>(reinterpret_cast<std::byte*>(incoming.data()),
                                    incoming.size() * sizeof(double)));
      if (st == Status::kPeerFailed) return;  // degraded: result undefined
      SPLAP_REQUIRE(st == Status::kOk, "allreduce exchange failed");
      wait(s);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += incoming[i];
    }
    return;
  }
  const int tag = kInternalTagBase + 256;
  if (rank() == 0) {
    for (int r = 1; r < n; ++r) {
      const Status st =
          recv(r, tag,
               std::span<std::byte>(reinterpret_cast<std::byte*>(incoming.data()),
                                    incoming.size() * sizeof(double)));
      if (st == Status::kPeerFailed) continue;  // dead rank: skip its term
      SPLAP_REQUIRE(st == Status::kOk, "allreduce gather failed");
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += incoming[i];
    }
  } else {
    const Status st = send(0, tag, bytes_of(data));
    SPLAP_REQUIRE(st == Status::kOk, "allreduce send failed");
  }
  bcast(std::span<std::byte>(reinterpret_cast<std::byte*>(data.data()),
                             data.size_bytes()),
        0);
}

}  // namespace splap::mpl
