// The MPI/MPL baseline communicator: one per task.
//
// Protocol summary (calibrated against Table 2 and Figure 2 of the paper):
//
//   eager (len <= eager_limit):
//     send() charges mpi_send + a buffering copy at copy_mb_s — the "extra
//     copy in MPI" of Section 4 — then injects and returns (buffered
//     semantics). At the receiver, packets land in the posted buffer, or in
//     an unexpected-queue staging buffer (the second copy) if no receive
//     matches yet.
//
//   rendezvous (len > eager_limit):
//     send() emits an RTS and blocks (isend: pends) until the receiver has
//     matched a posting and returned a CTS; data then flows zero-copy from
//     the user buffer. The RTS/CTS round trip plus the sender-side restart
//     penalty is what flattens the default-MPI bandwidth curve above the
//     4 KB eager limit (Figure 2).
//
//   ordering: strict per-source in-order admission — the MPL progress rule
//     (Section 5.4) that forces the old GA implementation to combine request
//     header and data into one message.
//
//   rcvncall: MPL's interrupt-driven receive-and-call. Matched messages are
//     assembled in a library buffer and the handler runs at interrupt level,
//     charged interrupt_cost + rcvncall_context (the AIX handler-context
//     creation the paper blames for >300us old-GA get latency). lockrnc
//     (interrupt disable) defers handler execution for atomic sections.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "base/audit.hpp"
#include "base/cost_model.hpp"
#include "base/status.hpp"
#include "lapi/reliable.hpp"
#include "mpl/types.hpp"
#include "net/delivery.hpp"
#include "net/machine.hpp"
#include "sim/sync.hpp"

namespace splap::mpl {

/// Internal wire descriptor.
enum class MplKind : std::uint8_t { kEager, kData, kRts, kCts, kAck };

struct MplMeta {
  MplKind kind = MplKind::kEager;
  std::int64_t seq = 0;  // per-sender message sequence (ordering + dedup)
  int tag = 0;
  std::int64_t total_len = 0;
  std::int64_t offset = 0;
  /// Incarnation epochs (see lapi::WireMeta): the sender's restart count and
  /// the destination incarnation this packet was addressed to. Both stay 0
  /// in every healthy run, so the wire image is unchanged. A restarted peer
  /// restarts its seq space at 0 — without the stamp its old life's
  /// retransmissions would collide with the new life's sequence cursor.
  std::int64_t epoch = 0;
  std::int64_t dst_epoch = 0;
};

/// The communicator shares LAPI's reliable-delivery core: retransmit timers,
/// exponential backoff (clamped at Config::rto_max) and stale-timer
/// suppression come from lapi::ReliableChannel — MPL is a sibling client of
/// the same transport machinery, not a second implementation of it.
class Comm : private lapi::ReliableChannel::Sender {
 public:
  explicit Comm(net::Node& node, Config config = {});
  ~Comm();
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  void term();

  int rank() const { return node_.id(); }
  int size() const { return node_.machine().tasks(); }
  std::int64_t eager_limit() const { return config_.eager_limit; }

  // --- point to point ----------------------------------------------------
  /// Blocking send (eager: returns after the buffering copy; rendezvous:
  /// returns once the data has been handed to the wire).
  Status send(int dst, int tag, std::span<const std::byte> data);
  /// Blocking receive into `buf`; fails with kTruncated if the matched
  /// message is longer than the buffer.
  Status recv(int src, int tag, std::span<std::byte> buf,
              RecvStatus* st = nullptr);

  Request isend(int dst, int tag, std::span<const std::byte> data);
  Request irecv(int src, int tag, std::span<std::byte> buf,
                RecvStatus* st = nullptr);
  /// Block until the request completes. Requests are single-use.
  void wait(Request r);
  /// Nonblocking completion probe.
  bool test(Request r);

  // --- rcvncall / lockrnc (MPL) -------------------------------------------
  /// Register an interrupt-level handler for messages with tag `tag` that
  /// have no posted receive. One registration serves unlimited messages
  /// (GA's server loop).
  void rcvncall(int tag, RcvncallHandler handler);
  /// lockrnc: disable/enable interrupt-level handler execution (the old
  /// GA's atomicity device, Section 5.2). Nestable.
  void lock_interrupts();
  void unlock_interrupts();

  /// Charge CPU work performed inside an rcvncall handler (which runs at
  /// interrupt level on the dispatcher timeline and cannot compute()).
  void handler_charge(Time d);

  // --- collectives ---------------------------------------------------------
  void barrier();
  void bcast(std::span<std::byte> data, int root);
  /// In-place sum-allreduce over doubles.
  void allreduce_sum(std::span<double> data);

  net::Node& node() const { return node_; }
  const CostModel& cost() const { return node_.cost(); }
  sim::Engine& engine() const { return node_.engine(); }

  /// Sticky health status: kOk until this communicator sheds an unexpected
  /// message (max_unexpected) or exhausts a send's retry budget
  /// (kResourceExhausted), or a retry budget exhausts against a peer whose
  /// node is actually down (kPeerFailed — the stronger verdict wins).
  /// Overload and peer death are surfaced here, never as an abort.
  Status comm_status() const { return comm_status_; }
  /// Has this communicator declared `peer`'s node dead?
  bool peer_failed(int peer) const { return failed_peers_.count(peer) != 0; }

 private:
  // --- origin-side state ---------------------------------------------------
  enum class SState {
    kEagerDone,   // eager: complete once buffered & injected
    kWaitCts,     // rendezvous: RTS out, waiting for CTS
    kStreaming,   // rendezvous: data injected, waiting for delivery ack
    kDone,
  };
  struct SendReq {
    int dst = -1;
    int tag = 0;
    SState state = SState::kEagerDone;
    std::shared_ptr<std::vector<std::byte>> data;  // retransmit source
    std::int64_t seq = 0;
    /// Destination incarnation this send was issued against, fixed at
    /// start_send: retransmissions into a restarted peer are rejected
    /// rather than admitted into its fresh sequence space.
    std::int64_t dst_epoch = 0;
    bool acked = false;
    lapi::RetryState retry;
  };

  // --- target-side state -----------------------------------------------------
  struct InMsg {
    bool is_rndv = false;
    bool have_envelope = false;
    bool admitted = false;    // passed the in-order cursor
    bool matched = false;
    bool assembled = false;   // all bytes in `stage` or user buffer
    bool delivered = false;   // handed to a posting / rcvncall handler
    bool acked = false;
    /// Shed by the unexpected-queue cap: a tombstone that refuses further
    /// buffering and never acks (the sender's retries exhaust cleanly).
    bool shed = false;
    int tag = 0;
    std::int64_t total = -1;
    std::int64_t received = 0;
    std::vector<std::byte> stage;   // unexpected landing area (extra copy)
    std::byte* user_buf = nullptr;  // direct landing once matched
    std::int64_t user_cap = 0;      // bytes that fit (truncation guard)
    bool to_rcvncall = false;       // matched to a registration, not a posting
    int reg_index = -1;
    std::map<std::int64_t, std::int64_t> seen;  // offset dedup
    /// Data packets that arrived before the envelope (out-of-order fabric).
    /// Payloads keep their pooled buffers until ingested.
    std::vector<std::pair<std::int64_t, net::Payload>> early;
  };

  struct Posting {
    Request id = kNullRequest;
    int src = kAnySource;
    int tag = kAnyTag;
    std::span<std::byte> buf;
    RecvStatus* status = nullptr;
    bool matched = false;
    bool truncated = false;
    /// The peer this posting names (or was matched to) died: the receive
    /// can never complete normally. wait() unblocks and recv() surfaces
    /// kPeerFailed. kAnySource postings with no match are NOT failed —
    /// another sender may still satisfy them (documented limitation: an
    /// any-source receive whose only possible sender died will hang).
    bool failed = false;
    // Once matched:
    int m_src = -1;
    std::int64_t m_seq = -1;
    bool done = false;
  };

  struct Registration {
    int tag;
    RcvncallHandler handler;
  };

  // Send path.
  Request start_send(int dst, int tag, std::span<const std::byte> data);
  void transmit_send(const SendReq& req, std::int64_t id);
  void transmit_data(const SendReq& req);
  void send_ctl(int dst, MplKind kind, std::int64_t seq, Time when);

  // lapi::ReliableChannel::Sender hooks (the shared retransmit machinery
  // calls back here for the protocol-specific resend/give-up actions).
  lapi::RetryState* retry_state(std::int64_t id) override;
  bool settled(std::int64_t id) override;
  void retransmit(std::int64_t id) override;
  void give_up(std::int64_t id) override;

  /// The peer's node is down: fail every in-flight send toward it, fail the
  /// postings that name it, and latch comm_status_ to kPeerFailed.
  void fail_peer(int peer);
  /// The peer restarted as incarnation `new_epoch`: wipe its previous
  /// life's receive-side state (its sequence space restarts at zero) and
  /// fail the sends addressed to dead incarnations; sends already stamped
  /// with the new epoch stay live.
  void on_peer_reborn(int peer, std::int64_t new_epoch);

  // Receive path.
  void on_delivery(net::Packet&& pkt);
  void schedule_pump();
  void pump();
  Time process(net::Packet& pkt);
  Time ingest(InMsg& msg, std::int64_t offset,
              std::span<const std::byte> bytes);
  /// Advance the per-source in-order cursors, match admitted messages
  /// against postings and rcvncall registrations. Returns extra CPU charged.
  Time match_scan();
  /// Bind a message to a posting (CTS for rendezvous, stage copy for
  /// late-matched eager). Returns the CPU charged.
  Time bind(Posting& p, int src, std::int64_t seq, InMsg& msg);
  void complete_message(int src, std::int64_t seq);
  void deliver_rcvncall(int src, std::int64_t seq, const Registration& reg);
  void schedule_handler_pump();
  void pump_handlers();

  void notify() { waiters_.wake_all(engine()); }

  net::Node& node_;
  Config config_;
  /// Narrow injection interface into the fabric (the transmit side only;
  /// receives arrive through the adapter registration).
  net::Delivery& wire_;
  bool terminated_ = false;

  void defer(Time at, std::function<void()> fn);

  std::int64_t next_req_ = 1;
  std::map<Request, SendReq> sends_;          // in-flight sends by request id
  std::map<std::pair<int, std::int64_t>, Request> seq_to_send_;  // (dst,seq)
  std::vector<std::int64_t> next_send_seq_;   // per destination

  std::vector<std::int64_t> next_admit_;      // per source in-order cursor
  std::map<std::pair<int, std::int64_t>, InMsg> in_;
  std::deque<std::pair<int, std::int64_t>> unexpected_;  // admission order
  std::map<Request, Posting> postings_;
  std::deque<Request> posting_order_;
  std::vector<Registration> registrations_;

  int intr_lock_depth_ = 0;
  std::deque<std::pair<int, std::int64_t>> handler_q_;  // FIFO, interrupt level
  bool handler_pump_scheduled_ = false;

  // Dispatcher timeline.
  std::deque<net::Packet> rx_q_;
  bool pump_scheduled_ = false;
  Time busy_until_ = 0;
  int pending_effects_ = 0;

  Status comm_status_ = Status::kOk;

  /// Incarnation epochs (crash-stop recovery; all zero in healthy runs).
  std::int64_t epoch_ = 0;
  std::vector<std::int64_t> peer_epochs_;
  std::set<int> failed_peers_;

  sim::WaitSet waiters_;
  std::shared_ptr<char> alive_ = std::make_shared<char>();
  // Per-send/per-packet counters, resolved once in the ctor.
  CounterSet::Handle ctr_sends_;
  CounterSet::Handle ctr_pkts_rx_;
  /// Shared retransmit core (constructed after alive_, which guards its
  /// timer events against a torn-down communicator).
  std::unique_ptr<lapi::ReliableChannel> channel_;
#ifdef SPLAP_AUDIT
  /// Shadow ledger of live send records: a timer or ack touching a record
  /// after reclamation aborts at the corrupting operation.
  audit::LiveSet send_ledger_{"mpl send record"};
#endif
};

}  // namespace splap::mpl
