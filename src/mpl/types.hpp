// Public types of the MPI/MPL-style message-passing baseline.
//
// This is the comparator library of the paper's Section 4 and the substrate
// of the old Global Arrays implementation (Section 5.2): two-sided
// send/receive with envelope matching, an eager protocol below
// MP_EAGER_LIMIT (with the sender-side buffering copy the paper attributes
// the MPI bandwidth gap to), a rendezvous (RTS/CTS) protocol above it, strict
// per-source in-order delivery ("MPL progress rules (in-order message
// delivery)", Section 5.4), and the MPL rcvncall interrupt-receive used by
// GA's original implementation.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "base/time.hpp"

namespace splap::mpl {

class Comm;

/// Wildcards for receive matching.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Tags >= kInternalTagBase are reserved for the library's collectives.
inline constexpr int kInternalTagBase = 1 << 20;

struct Config {
  /// MP_EAGER_LIMIT: messages at or below this many bytes use the eager
  /// protocol (sender-side copy, immediate injection); larger messages use
  /// rendezvous. Paper: default 4096, maximum 65536.
  std::int64_t eager_limit = 4096;
  /// Retransmission parameters of the internal reliability layer.
  Time retransmit_timeout = milliseconds(4.0);
  int max_retries = 12;
  /// Backoff clamp: the per-retry doubling of the retransmit delay stops at
  /// this ceiling (uncapped, a dozen doublings of the 4 ms base would reach
  /// minutes of virtual time between the last retries — far beyond any
  /// plausible recovery, so a transiently-partitioned peer looked hung).
  Time rto_max = milliseconds(250);
  /// Cap on the unexpected-message queue (eager messages buffered with no
  /// matching receive — the receiver-side memory a never-receiving rank can
  /// grow without bound). 0 = unbounded. Over the cap, a newly admitted
  /// unmatched eager message is shed: its staging memory is dropped, it is
  /// never acked (the sender's retry budget exhausts), and comm_status()
  /// latches kResourceExhausted — degradation, never an abort. Rendezvous
  /// messages are exempt: an RTS buffers no payload, and shedding one would
  /// strand the blocked sender.
  std::int64_t max_unexpected = 0;
};

/// Completion information for a receive.
struct RecvStatus {
  int source = -1;
  int tag = -1;
  std::int64_t len = 0;
};

/// Opaque nonblocking-request handle.
using Request = std::int64_t;
inline constexpr Request kNullRequest = -1;

/// Context handed to an MPL rcvncall handler: the matched message, fully
/// assembled in a library buffer. The handler runs at interrupt level
/// (charged the interrupt + AIX handler-context creation costs, the source
/// of the old GA's >300us get latency, Section 5.2). It may issue sends but
/// must not block.
struct RcvncallDelivery {
  int source = -1;
  int tag = -1;
  std::span<const std::byte> data;
};

using RcvncallHandler = std::function<void(Comm&, const RcvncallDelivery&)>;

}  // namespace splap::mpl
