// Deterministic discrete-event engine with cooperative actors.
//
// A simulated SP task is an Actor: user code runs on a dedicated OS thread so
// it can block naturally (LAPI_Waitcntr really blocks), but the engine admits
// exactly ONE runnable entity at any instant — either one actor or one event
// callback — via a mutex/condvar handoff. Execution is therefore sequential,
// race-free and bit-reproducible while the public API looks like a normal
// blocking communication library.
//
// Virtual time only advances when the engine pops an event; actors charge
// CPU work explicitly through Actor::compute(). Ties in the event queue break
// by insertion order, which pins down determinism.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "base/log.hpp"
#include "base/stats.hpp"
#include "base/status.hpp"
#include "base/time.hpp"

namespace splap::sim {

class Engine;

/// A simulated task (or internal service thread). Create via Engine::spawn.
class Actor {
 public:
  ~Actor();
  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  const std::string& name() const { return name_; }
  int id() const { return id_; }
  Engine& engine() const { return engine_; }

  /// Current virtual time (engine clock).
  Time now() const;

  /// Charge `d` of virtual CPU time to this actor (it is descheduled and
  /// resumes at now()+d). Models computation between communication calls.
  void compute(Time d);

  /// Deschedule until another entity wakes this actor via Engine::wake.
  /// Callers must use a predicate re-check loop: wakeups can be stale.
  void suspend(const char* why);

  /// Convenience: suspend until `pred()` holds, registering in nothing —
  /// the waker is responsible for calling Engine::wake on this actor.
  template <class Pred>
  void wait(Pred pred, const char* why) {
    while (!pred()) suspend(why);
  }

  /// The actor currently executing on this thread, or nullptr when the
  /// caller is an event callback (handler context). LAPI uses this to
  /// enforce "header handlers must not block".
  static Actor* current();

  bool finished() const { return finished_; }
  const char* block_reason() const { return block_reason_; }

  /// True while the engine is tearing this actor down (its stack is
  /// unwinding). Destructors running on the actor thread must not block
  /// (suspend would rethrow); libraries use this to degrade to best-effort
  /// cleanup.
  bool poisoned() const;

 private:
  friend class Engine;
  Actor(Engine& engine, int id, std::string name,
        std::function<void(Actor&)> body);

  void thread_main(std::function<void(Actor&)> body);
  // Called from the engine thread: hand execution to the actor, return when
  // it suspends or finishes.
  void grant();
  // Called from the actor thread: hand execution back to the engine.
  void yield_to_engine();

  Engine& engine_;
  const int id_;
  const std::string name_;
  const char* block_reason_ = "not started";

  std::mutex mu_;
  std::condition_variable cv_;
  bool run_granted_ = false;
  bool yielded_ = true;  // actor starts descheduled
  bool finished_ = false;
  bool wake_pending_ = false;  // coalesces redundant wakeups
  bool poisoned_ = false;      // engine teardown: unwind on next suspend
  std::exception_ptr failure_;
  std::thread thread_;
};

class Engine {
 public:
  using EventFn = std::function<void()>;

  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (>= now).
  void schedule_at(Time t, EventFn fn);
  void schedule_after(Time d, EventFn fn) { schedule_at(now_ + d, fn); }

  /// Create an actor whose body starts executing at the current time.
  Actor& spawn(std::string name, std::function<void(Actor&)> body);

  /// Make `a` runnable again at the current time. Safe to call when the
  /// actor is running or already woken (coalesced into one resume).
  void wake(Actor& a);

  /// Run until the event queue drains. Returns kOk, or kDeadlock if actors
  /// remain blocked with no event that could ever wake them. Rethrows the
  /// first exception escaping an actor body or event callback.
  Status run();

  /// Poison and unwind every unfinished actor. Idempotent; invoked by the
  /// destructor. Owners of objects that actors reference (nodes, adapters)
  /// must call this BEFORE destroying those objects.
  void shutdown();

  /// Instrumentation counters shared machine-wide.
  CounterSet& counters() { return counters_; }

  /// Actors spawned so far (stable order).
  const std::vector<std::unique_ptr<Actor>>& actors() const { return actors_; }

 private:
  friend class Actor;

  struct Event {
    Time t;
    std::uint64_t seq;
    EventFn fn;
    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::vector<std::unique_ptr<Actor>> actors_;
  CounterSet counters_;
  bool running_ = false;
};

}  // namespace splap::sim
