// Deterministic discrete-event engine with cooperative actors.
//
// A simulated SP task is an Actor: user code runs on a dedicated OS thread so
// it can block naturally (LAPI_Waitcntr really blocks), but the engine admits
// exactly ONE runnable entity at any instant — either one actor or one event
// callback — via a single-word park/unpark handoff. Execution is therefore
// sequential, race-free and bit-reproducible while the public API looks like
// a normal blocking communication library.
//
// Virtual time only advances when the engine pops an event; actors charge
// CPU work explicitly through Actor::compute(). Ties in the event queue break
// by insertion order, which pins down determinism.
//
// Hot-path design (see DESIGN.md "Engine internals"): events live in pooled
// nodes with inline small-buffer callback storage. Ordering uses a two-list
// queue: pushes whose time is >= the newest queued time append to a sorted
// FIFO tail in O(1) (the overwhelmingly common DES pattern — schedule_after
// from a monotone clock), everything else falls back to a binary min-heap of
// 24-byte (time, seq, node) slots. Pop takes whichever front is smaller
// under the same (time, seq) key, so the drain order is bit-identical to a
// single priority queue — and steady state never touches the allocator.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/audit.hpp"
#include "base/log.hpp"
#include "base/pool.hpp"
#include "base/stats.hpp"
#include "base/status.hpp"
#include "base/time.hpp"

namespace splap::sim {

class Engine;
struct ExecLane;   // one worker lane of the parallel window executor
struct ExecState;  // worker threads + window rendezvous (engine.cpp)

/// Thread-creation exhaustion surfaced from Engine::spawn: at high node
/// counts pthread_create legitimately fails (address space for stacks,
/// RLIMIT constraints) and callers need a recoverable error, not an uncaught
/// std::system_error. Harness layers translate this into
/// Status::kResourceExhausted.
class SpawnError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A simulated task (or internal service thread). Create via Engine::spawn.
class Actor {
 public:
  ~Actor();
  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  const std::string& name() const { return name_; }
  int id() const { return id_; }
  Engine& engine() const { return engine_; }

  /// The node shard this actor belongs to (kNoShard when unsharded). Events
  /// the actor schedules inherit it; the parallel window executor uses it to
  /// decide which worker lane may resume the actor.
  int shard() const { return shard_; }

  /// Stackless (handler-mode) actors run inline on the dispatching thread
  /// and must never block: suspend/wait/compute abort with a contract
  /// message. See DESIGN.md "Stackless actors".
  bool stackless() const { return stackless_; }

  /// Run `fn(*this)` inline under this actor's identity (Actor::current()
  /// points here for the duration). Only valid on a stackless actor, from
  /// event/handler context — this is how callback-style endpoints (service
  /// pools, bench drivers) execute work attributed to the actor without an
  /// OS-thread handoff.
  void run_inline(const std::function<void(Actor&)>& fn);

  /// Current virtual time (engine clock).
  Time now() const;

  /// Charge `d` of virtual CPU time to this actor (it is descheduled and
  /// resumes at now()+d). Models computation between communication calls.
  void compute(Time d);

  /// Deschedule until another entity wakes this actor via Engine::wake.
  /// Callers must use a predicate re-check loop: wakeups can be stale.
  void suspend(const char* why);

  /// Convenience: suspend until `pred()` holds, registering in nothing —
  /// the waker is responsible for calling Engine::wake on this actor.
  template <class Pred>
  void wait(Pred pred, const char* why) {
    while (!pred()) suspend(why);
  }

  /// The actor currently executing on this thread, or nullptr when the
  /// caller is an event callback (handler context). LAPI uses this to
  /// enforce "header handlers must not block".
  static Actor* current();

  bool finished() const { return finished_; }
  const char* block_reason() const { return block_reason_; }

  /// True while the engine is tearing this actor down (its stack is
  /// unwinding). Destructors running on the actor thread must not block
  /// (suspend would rethrow); libraries use this to degrade to best-effort
  /// cleanup.
  bool poisoned() const;

 private:
  friend class Engine;
  Actor(Engine& engine, int id, int shard, std::string name,
        std::function<void(Actor&)> body);
  struct StacklessTag {};
  Actor(Engine& engine, int id, int shard, std::string name,
        std::function<void(Actor&)> body, StacklessTag);

  void thread_main(std::function<void(Actor&)> body);
  // Called from the dispatching thread (engine run loop or a worker lane):
  // hand execution to the actor, return when it suspends or finishes.
  // Stackless actors run their body inline here instead of unparking a
  // thread.
  void grant();
  // Block the calling thread until the owner half of `turn_` equals `want`.
  // Three phases: an adaptive bounded spin (useful only with >1 hardware
  // thread), a short yield loop (lets the partner's timeslice run on a
  // loaded or single-CPU machine without a futex round trip), then a futex
  // park. The parked bit tells the handing-over side whether a wake syscall
  // is needed at all.
  void park_until(std::uint32_t want);
  // Release the control token to `next` (kEngineHasControl or
  // kActorHasControl) and wake the partner only if it actually parked.
  void hand_to(std::uint32_t next);

  // Ownership token for the single-runnable-entity invariant. Exactly one
  // side (dispatcher or actor thread) holds control at any instant; all
  // other Actor fields are only touched by the side that holds it, so the
  // release-store/acquire-load pair on this word is the only synchronization
  // the handoff needs. Bit 1 is set by a waiter that is about to park on the
  // futex; the handoff exchange clears it and elides the notify syscall when
  // it was never set (the partner is spinning or yielding).
  static constexpr std::uint32_t kEngineHasControl = 0;
  static constexpr std::uint32_t kActorHasControl = 1;
  static constexpr std::uint32_t kOwnerMask = 1;
  static constexpr std::uint32_t kParkedBit = 2;

  Engine& engine_;
  const int id_;
  const int shard_;
  const bool stackless_;
  const std::string name_;
  const char* block_reason_ = "not started";

  std::atomic<std::uint32_t> turn_{kEngineHasControl};
  bool finished_ = false;
  bool wake_pending_ = false;  // coalesces redundant wakeups
  bool poisoned_ = false;      // engine teardown: unwind on next suspend
  // Adaptive handoff spin bounds (-1: unset), indexed by the awaited owner
  // value. Two slots because the two sides' park_until calls can overlap for
  // an instant at the handoff boundary (the waker is still inside its own
  // park_until epilogue when the woken side parks again), and each side only
  // ever waits for its own distinct owner value.
  int spin_budget_[2] = {-1, -1};
  ExecLane* lane_ctx_ = nullptr;  // worker lane that granted us, else null
  std::exception_ptr failure_;
  std::function<void(Actor&)> stackless_body_;  // stackless actors only
  std::thread thread_;
};

class Engine {
 public:
  /// Compatibility alias; schedule_at accepts any callable directly and
  /// stores small ones inline, so wrapping in std::function is unnecessary.
  using EventFn = std::function<void()>;

  /// Captures up to this many bytes live inside the pooled event node; only
  /// oversized callables fall back to a heap allocation. 64 covers every
  /// steady-state capture in the tree (fabric: two pointers; LAPI/MPL defer:
  /// this + weak_ptr + std::function = 56 bytes).
  static constexpr std::size_t kInlineCallbackBytes = 64;

  /// Events not pinned to any node shard; they serialize against everything
  /// (the parallel window executor treats them as barriers).
  static constexpr int kNoShard = -1;

  // Out of line: members include unique_ptr<ExecState> (incomplete here),
  // so construction/destruction must live where ExecState is defined.
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const {
    if (exec_enabled_) [[unlikely]] return now_slow();
    return now_;
  }

  /// Schedule `fn` at absolute virtual time `t` (>= now; scheduling into the
  /// virtual past would silently corrupt the clock, so it aborts). The event
  /// inherits the scheduling context's node shard.
  template <class F>
  void schedule_at(Time t, F&& fn) {
    EventNode* n = acquire_node();
    n->bind(std::forward<F>(fn));
    commit(t, kInheritShard, n);
  }
  template <class F>
  void schedule_after(Time d, F&& fn) {
    schedule_at(now() + d, std::forward<F>(fn));
  }

  /// schedule_at pinned to node shard `shard` (kNoShard = serialize against
  /// everything). Layers that hop work between nodes (the fabric) tag the
  /// destination explicitly; everything else inherits.
  template <class F>
  void schedule_at_on(Time t, int shard, F&& fn) {
    EventNode* n = acquire_node();
    n->bind(std::forward<F>(fn));
    commit(t, shard, n);
  }

  /// Raw-thunk fast path for pinned callbacks (fabric packet staging and the
  /// like): the event carries only a function pointer and a context word, so
  /// scheduling constructs no capture and running destroys nothing. `ctx`
  /// must outlive the event.
  void schedule_thunk(Time t, void (*fn)(void*), void* ctx) {
    EventNode* n = acquire_node();
    n->invoke = fn;
    n->destroy = nullptr;  // nothing owned; teardown clear() is a no-op
    n->obj = ctx;
    commit(t, kInheritShard, n);
  }

  /// schedule_thunk pinned to node shard `shard`.
  void schedule_thunk_on(Time t, int shard, void (*fn)(void*), void* ctx) {
    EventNode* n = acquire_node();
    n->invoke = fn;
    n->destroy = nullptr;
    n->obj = ctx;
    commit(t, shard, n);
  }

  /// Create a thread-backed actor whose body starts executing at the current
  /// time. The actor inherits the scheduling context's shard. Throws
  /// SpawnError when the OS refuses another thread.
  Actor& spawn(std::string name, std::function<void(Actor&)> body);

  /// spawn pinned to node shard `shard` (the SPMD harness pins each task to
  /// its node so the parallel executor may resume it from that node's lane).
  Actor& spawn_on(int shard, std::string name,
                  std::function<void(Actor&)> body);

  /// Create a stackless (handler-mode) actor: no OS thread, no stack — the
  /// body runs inline on the dispatching thread at the current virtual time
  /// and must never block (suspend aborts). With a null body the actor is a
  /// persistent identity for run_inline callbacks (service endpoints). This
  /// is what lets one process hold 10^5..10^6 protocol endpoints.
  Actor& spawn_stackless(int shard, std::string name,
                         std::function<void(Actor&)> body);

  /// Make `a` runnable again at the current time. Safe to call when the
  /// actor is running or already woken (coalesced into one resume).
  void wake(Actor& a);

  // --- parallel window executor (opt-in; see DESIGN.md) -------------------

  /// Worker lanes for lookahead-parallel event execution. 1 = serial (the
  /// default). Read from SPLAP_EXEC_THREADS at construction; capped at
  /// CounterSet::kStripes - 1. Traces are bit-identical to serial mode.
  void set_exec_threads(int n);
  int exec_threads() const { return exec_threads_; }

  /// A transport layer guarantees that any event it schedules across shards
  /// lands at least `d` after the scheduling event. The executor's window
  /// width is the minimum offered lookahead; without one, no windows form.
  void offer_lookahead(Time d) {
    if (d > 0 && (lookahead_ == 0 || d < lookahead_)) lookahead_ = d;
  }
  Time lookahead() const { return lookahead_; }

  /// Configurations whose event behavior depends on shared mutable state the
  /// lanes cannot partition (global RNG draws: drops, jitter, faults) call
  /// this once; the engine then never forms parallel windows.
  void mark_parallel_unsafe(const char* why);

  /// Total events dispatched (serial and in-window). Throughput observable
  /// for the scale benchmarks.
  std::uint64_t events_executed() const { return events_executed_; }

  /// Run until the event queue drains. Returns kOk, or kDeadlock if actors
  /// remain blocked with no event that could ever wake them. Rethrows the
  /// first exception escaping an actor body or event callback.
  Status run();

  /// Poison and unwind every unfinished actor. Idempotent; invoked by the
  /// destructor. Owners of objects that actors reference (nodes, adapters)
  /// must call this BEFORE destroying those objects.
  void shutdown();

  /// Crash-stop one node: poison and unwind every unfinished actor pinned to
  /// node shard `shard`, at the current virtual time. Threaded actors unwind
  /// on their next resume (RAII runs, so libraries see poisoned() and take
  /// their best-effort teardown path); stackless actors are marked finished
  /// in place. Actors spawned on the shard afterwards (a restart) start with
  /// a clean slate. Must be called from event context mid-run — every actor
  /// is parked then — or between runs. Idempotent per actor.
  void kill_shard(int shard);

  /// Instrumentation counters shared machine-wide.
  CounterSet& counters() { return counters_; }

  /// Actors spawned so far (stable order).
  const std::vector<std::unique_ptr<Actor>>& actors() const { return actors_; }

  /// Event nodes allocated so far (steady state: constant — the pool
  /// recycles). Exposed for the allocation-regression tests.
  std::size_t event_nodes_allocated() const { return event_pool_.capacity(); }

  /// Events currently queued (all three lists). Owners use this at teardown
  /// to distinguish "simulation drained" from "torn down mid-flight".
  std::size_t queued_events() const {
    return tail_size_ + heap_.size() + (box_full_ ? 1u : 0u);
  }

#ifdef SPLAP_AUDIT
  // --- Audit hooks (SPLAP_AUDIT builds only) ----------------------------
  // Owners of recycled records register each live generation with the
  // virtual-time race tracker; touches are attributed to the current
  // dispatch step and, when called from actor context, the acting actor.

  void audit_object_begin(const void* obj);
  void audit_object_end(const void* obj);
  void audit_object_touch(const void* obj, const char* where);

  /// Test-only: re-introduce the pre-fix full-drain recycle loop that also
  /// re-recycled the dead-prefix blocks already sitting in the spare list
  /// (the aliasing bug the tail-block shadow set exists to catch). Used by
  /// the auditor's regression fixture; never set outside tests.
  void audit_set_legacy_full_drain(bool v) { audit_legacy_full_drain_ = v; }
#endif

 private:
  friend class Actor;
  friend struct ExecLane;
  friend struct ExecState;

  /// Sentinel for commit(): resolve the shard from the scheduling context
  /// (the currently dispatching event / acting actor).
  static constexpr int kInheritShard = -2;

  /// One scheduled event's callable. Nodes are pool-recycled and
  /// pointer-stable, so the bound callable is constructed once in place and
  /// never moved. Ordering metadata lives in HeapSlot, not here: the heap
  /// sift loops then run over a contiguous array of 24-byte slots and never
  /// dereference a node, which is what makes pops cache-friendly at large
  /// queue depths.
  struct EventNode {
    // invoke runs the callable AND destroys it (even if it throws): the run
    // loop then pays one indirect call per event instead of two. destroy
    // exists for nodes that never run (engine teardown with events queued).
    void (*invoke)(void*) = nullptr;
    void (*destroy)(void*) = nullptr;
    void* obj = nullptr;  // == inline_storage, or a heap allocation
    std::int32_t shard = kNoShard;  // node shard this event is pinned to
#ifdef SPLAP_AUDIT
    std::uint64_t audit_cause = 0;  // dispatch step that scheduled this event
#endif
    alignas(std::max_align_t) std::byte inline_storage[kInlineCallbackBytes];

    template <class F>
    void bind(F&& fn) {
      using D = std::decay_t<F>;
      if constexpr (sizeof(D) <= kInlineCallbackBytes &&
                    alignof(D) <= alignof(std::max_align_t)) {
        obj = new (inline_storage) D(std::forward<F>(fn));
        destroy = [](void* o) { static_cast<D*>(o)->~D(); };
        invoke = [](void* o) {
          D* d = static_cast<D*>(o);
          struct Reap {  // destroys on both the normal and the throw path
            D* d;
            ~Reap() { d->~D(); }
          } reap{d};
          (*d)();
        };
      } else {
        obj = new D(std::forward<F>(fn));
        destroy = [](void* o) { delete static_cast<D*>(o); };
        invoke = [](void* o) {
          D* d = static_cast<D*>(o);
          struct Reap {
            D* d;
            ~Reap() { delete d; }
          } reap{d};
          (*d)();
        };
      }
    }

    /// Destroy the bound callable; idempotent so teardown can clear nodes
    /// that are mid-flight in the queue. There is deliberately no destructor:
    /// every pooled node is cleared either after it runs or by ~Engine's
    /// queue sweep, and a trivially-destructible node keeps slab teardown
    /// from touching every node's memory again.
    void clear() {
      if (destroy != nullptr) {
        destroy(obj);
        destroy = nullptr;
        invoke = nullptr;
        obj = nullptr;
      }
    }
  };
  static_assert(std::is_trivially_destructible_v<EventNode>);

  /// Queue entry: sort key (t, then insertion seq — identical tie-breaking to
  /// the original std::priority_queue formulation, so pop order and every
  /// simulated timestamp stay bit-identical) plus the owning node.
  struct HeapSlot {
    Time t;
    std::uint64_t seq;
    EventNode* node;
    bool before(const HeapSlot& o) const {
      return t != o.t ? t < o.t : seq < o.seq;
    }
  };

  // --- Two-list event queue --------------------------------------------
  // The sorted FIFO tail holds every push whose time is >= the tail's
  // newest time (seq is always larger, so the order key stays strictly
  // increasing) — the overwhelmingly common DES pattern. Out-of-order
  // pushes go to the binary min-heap heap_. The global minimum is
  // therefore min(front of tail, top of heap), which queue_pop selects
  // with the same before() predicate — pop order is provably identical to
  // one priority queue over all pushed slots.
  //
  // The tail stores slots in fixed-size blocks rather than one vector:
  // growth never copies (a vector doubling through the allocator's mmap
  // range costs page faults per event burst), and drained blocks recycle
  // through a spare list, so steady state allocates nothing.

  struct SlotBlock {
    static constexpr std::size_t kSlots = 2048;  // 48 KB per block
    HeapSlot s[kSlots];
  };

  void tail_push(HeapSlot s) {
    if (tail_back_ == SlotBlock::kSlots || tail_blocks_.empty()) {
      if (tail_spare_.empty()) {
        owned_blocks_.push_back(std::make_unique_for_overwrite<SlotBlock>());
        tail_spare_.push_back(owned_blocks_.back().get());
#ifdef SPLAP_AUDIT
        audit_spare_.insert(owned_blocks_.back().get(), "tail_push grow");
#endif
      }
      tail_blocks_.push_back(tail_spare_.back());
      tail_spare_.pop_back();
#ifdef SPLAP_AUDIT
      audit_spare_.remove(tail_blocks_.back(), "tail_push take-from-spare");
#endif
      tail_back_ = 0;
    }
    tail_blocks_.back()->s[tail_back_++] = s;
    tail_back_t_ = s.t;
    ++tail_size_;
  }

  HeapSlot tail_pop() {
    const HeapSlot s = tail_blocks_[tail_head_block_]->s[tail_head_++];
    if (--tail_size_ == 0) {
      // Fully drained: recycle the live suffix and reset to the empty state.
      // Blocks before tail_head_block_ (the dead prefix kept around between
      // prunes) were already handed to tail_spare_ when the head crossed
      // them; recycling those again would alias two active blocks onto the
      // same storage.
#ifdef SPLAP_AUDIT
      const std::size_t recycle_from =
          audit_legacy_full_drain_ ? 0 : tail_head_block_;
#else
      const std::size_t recycle_from = tail_head_block_;
#endif
      for (std::size_t b = recycle_from; b < tail_blocks_.size(); ++b) {
        tail_spare_.push_back(tail_blocks_[b]);
#ifdef SPLAP_AUDIT
        // A block already in the spare list showing up again here is the
        // storage-aliasing double recycle: two future tail blocks would
        // share one allocation and overwrite each other's queued events.
        audit_spare_.insert(tail_blocks_[b], "tail_pop full-drain recycle");
#endif
      }
      tail_blocks_.clear();
      tail_head_block_ = 0;
      tail_head_ = 0;
      tail_back_ = 0;
    } else if (tail_head_ == SlotBlock::kSlots) {
      tail_spare_.push_back(tail_blocks_[tail_head_block_]);
#ifdef SPLAP_AUDIT
      audit_spare_.insert(tail_blocks_[tail_head_block_],
                          "tail_pop block-crossing recycle");
#endif
      ++tail_head_block_;
      tail_head_ = 0;
      if (tail_head_block_ >= 16) {
        // Drop the dead prefix so a run that never fully drains stays O(1)
        // in block-table space.
        tail_blocks_.erase(tail_blocks_.begin(),
                           tail_blocks_.begin() +
                               static_cast<std::ptrdiff_t>(tail_head_block_));
        tail_head_block_ = 0;
      }
    }
    return s;
  }

  const HeapSlot& tail_front() const {
    return tail_blocks_[tail_head_block_]->s[tail_head_];
  }

  void queue_push(HeapSlot s) {
    // tail_back_t_ is a cached copy of the newest tail slot's time:
    // comparing against the member avoids a load of the slot just stored
    // (store-forwarding stall on back-to-back schedules).
    if (tail_size_ == 0 || tail_back_t_ <= s.t) {
      tail_push(s);
      return;
    }
    push_ooo(s);
  }

  /// Out-of-order push (kept out of line so the monotone fast path above
  /// stays small enough to inline everywhere). The dominant such pattern is
  /// an IMMINENT event — e.g. the fabric scheduling a delivery a few hundred
  /// ns out while the tail holds arrivals microseconds away — so a one-slot
  /// box absorbs it without heap traffic. Placement is pure routing:
  /// queue_pop takes the exact minimum of box/tail/heap under before(), so
  /// pop order is identical no matter which list a slot landed in.
  [[gnu::noinline]] void push_ooo(HeapSlot s) {
    if (!box_full_) {
      box_ = s;
      box_full_ = true;
      return;
    }
    if (s.before(box_)) {
      heap_push(box_);
      box_ = s;
    } else {
      heap_push(s);
    }
  }

  HeapSlot queue_pop() {
    if (!box_full_ && heap_.empty() && tail_size_ != 0) [[likely]] {
      return tail_pop();
    }
    return pop_mixed();
  }

  /// Exact three-way minimum when the box or heap is occupied.
  [[gnu::noinline]] HeapSlot pop_mixed() {
    if (box_full_) {
      if ((heap_.empty() || box_.before(heap_.front())) &&
          (tail_size_ == 0 || box_.before(tail_front()))) {
        box_full_ = false;
        return box_;
      }
    }
    if (tail_size_ != 0 &&
        (heap_.empty() || tail_front().before(heap_.front()))) {
      return tail_pop();
    }
    return heap_pop();
  }

  bool queue_empty() const {
    return tail_size_ == 0 && !box_full_ && heap_.empty();
  }

  /// Pointer to the minimum slot across box/tail/heap without popping it
  /// (window formation peeks to decide whether the front is sharded).
  /// Null when the queue is empty; invalidated by any push or pop.
  const HeapSlot* queue_peek() const {
    const HeapSlot* best = box_full_ ? &box_ : nullptr;
    if (tail_size_ != 0 && (best == nullptr || tail_front().before(*best))) {
      best = &tail_front();
    }
    if (!heap_.empty() && (best == nullptr || heap_.front().before(*best))) {
      best = &heap_.front();
    }
    return best;
  }

  void heap_push(HeapSlot s) {
    heap_.push_back(s);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!s.before(heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = s;
  }

  HeapSlot heap_pop() {
    const HeapSlot top = heap_.front();
    const HeapSlot last = heap_.back();
    heap_.pop_back();
    const std::size_t sz = heap_.size();
    if (sz > 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t left = 2 * i + 1;
        if (left >= sz) break;
        std::size_t child = left;
        if (left + 1 < sz && heap_[left + 1].before(heap_[left])) {
          child = left + 1;
        }
        if (!heap_[child].before(last)) break;
        heap_[i] = heap_[child];
        i = child;
      }
      heap_[i] = last;
    }
    return top;
  }

  // --- scheduling fast path ---------------------------------------------
  // With the executor disabled (the default) these compile down to exactly
  // the pre-executor code: pool pop, bind, queue_push. With it enabled they
  // route through the slow paths, which resolve the scheduling context (a
  // worker lane, an actor granted from one, or the serial loop).

  // The pool locks itself when the executor is enabled (set_exec_threads
  // flips it), so lanes and actor threads may allocate nodes concurrently.
  EventNode* acquire_node() { return event_pool_.acquire(); }

  void commit(Time t, int shard, EventNode* n) {
    if (exec_enabled_) [[unlikely]] {
      commit_slow(t, shard, n);
      return;
    }
    SPLAP_REQUIRE(t >= now_, "cannot schedule an event in the virtual past");
    n->shard = shard == kInheritShard ? dispatch_shard_ : shard;
#ifdef SPLAP_AUDIT
    n->audit_cause = audit_step_;
#endif
    queue_push(HeapSlot{t, next_seq_++, n});
  }

  void commit_slow(Time t, int shard, EventNode* n);
  Time now_slow() const;
  void init_exec_from_env();

  /// Shard of the current scheduling context (worker lane, actor granted
  /// from one, or the serially dispatching event). Spawned actors inherit it.
  int context_shard() const;

  Actor& spawn_impl(int shard, std::string name,
                    std::function<void(Actor&)> body, bool stackless);

  /// Dispatch one already-popped event on the serial path (sets now_, runs,
  /// recycles the node; exceptions propagate after the node is released).
  void dispatch_serial(const HeapSlot& s);

  /// Try to form and execute a lookahead window starting from the queue
  /// front. Returns false when the front is unsharded (or the window would
  /// be trivially small), in which case the caller single-steps serially.
  bool try_parallel_window();

  /// Replay-merge after a window join: walks the executed events in serial
  /// (time, seq) order, assigns the exact seqs serial execution would have
  /// given every child, queues the deferred ones, and surfaces the first
  /// in-order exception. Defined with the executor in engine.cpp.
  void merge_window();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  HeapSlot box_{};        // one-slot fast path for imminent out-of-order pushes
  bool box_full_ = false;
  std::vector<HeapSlot> heap_;
  std::vector<SlotBlock*> tail_blocks_;  // active blocks, front to back
  std::vector<SlotBlock*> tail_spare_;   // drained blocks awaiting reuse
  std::vector<std::unique_ptr<SlotBlock>> owned_blocks_;  // heap-grown blocks
  std::size_t tail_head_block_ = 0;  // block holding the tail's front slot
  std::size_t tail_head_ = 0;        // front slot index within that block
  std::size_t tail_back_ = 0;        // one past the last slot in the back block
  std::size_t tail_size_ = 0;        // slots currently queued in the tail
  Time tail_back_t_ = 0;             // time of the most recently appended slot
  // Embedded first block: simulations of up to kSlots in-flight events (the
  // common case) never allocate tail storage at all.
  SlotBlock first_block_;
  ObjectPool<EventNode> event_pool_{512};
  std::vector<std::unique_ptr<Actor>> actors_;
  CounterSet counters_;
  bool running_ = false;

  // --- parallel window executor state -----------------------------------
  bool exec_enabled_ = false;      // exec_threads_ > 1
  int exec_threads_ = 1;
  bool parallel_unsafe_ = false;   // a config opted out (global RNG, faults)
  Time lookahead_ = 0;             // min cross-shard latency offered
  int dispatch_shard_ = kNoShard;  // shard of the serially dispatching event
  std::uint64_t events_executed_ = 0;
  std::unique_ptr<ExecState> exec_;  // lanes + rendezvous (engine.cpp)
  std::mutex spawn_mu_;  // guards actors_/id assignment when lanes spawn
#ifdef SPLAP_AUDIT
  // Shadow state (audit builds only). audit_step_ numbers dispatches from 1;
  // 0 means "scheduled before the run loop started", which happens-before
  // everything. The spare-block shadow set mirrors tail_spare_ exactly.
  // With the executor enabled, worker lanes serialize on audit_mu_ around
  // every tracker operation (shadow state is diagnostic, not hot).
  audit::LiveSet audit_spare_{"tail spare-block"};
  audit::RaceTracker audit_race_;
  std::uint64_t audit_step_ = 0;
  bool audit_legacy_full_drain_ = false;
  std::mutex audit_mu_;
#endif
};

}  // namespace splap::sim
