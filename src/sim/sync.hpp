// Virtual-time synchronization primitives for actors and handler contexts.
//
// SimMutex is the object behind the paper's Section 5.3.3: on one node the
// main application thread, the header-handler thread and the completion-
// handler thread can all contend for the mutex protecting an accumulate
// region. Actor contexts block (FIFO); handler/event contexts either
// try_lock (header handlers — the paper warns against descheduling the LAPI
// dispatcher thread) or queue a continuation (lock_async).
#pragma once

#include <deque>
#include <functional>
#include <variant>

#include "base/status.hpp"
#include "sim/engine.hpp"

namespace splap::sim {

class SimMutex {
 public:
  explicit SimMutex(Engine& engine) : engine_(engine) {}
  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  bool locked() const { return locked_; }

  /// Blocking acquire; actor context only.
  void lock() {
    Actor* a = Actor::current();
    SPLAP_REQUIRE(a != nullptr, "SimMutex::lock requires an actor context");
    if (!locked_) {
      locked_ = true;
      return;
    }
    bool granted = false;
    waiters_.push_back(ActorWaiter{a, &granted});
    a->wait([&] { return granted; }, "sim-mutex");
  }

  /// Non-blocking acquire; any context (this is what a header handler may
  /// use — it must never block the dispatcher).
  bool try_lock() {
    if (locked_) return false;
    locked_ = true;
    return true;
  }

  /// Acquire from an event/handler context: runs `cont` immediately if the
  /// mutex is free, otherwise queues it to run (still in event context) when
  /// ownership becomes available. `cont` runs with the mutex held.
  void lock_async(std::function<void()> cont) {
    if (!locked_) {
      locked_ = true;
      cont();
      return;
    }
    waiters_.push_back(std::move(cont));
  }

  /// Release; ownership passes FIFO to the next waiter if any.
  void unlock() {
    SPLAP_REQUIRE(locked_, "unlock of an unlocked SimMutex");
    if (waiters_.empty()) {
      locked_ = false;
      return;
    }
    auto next = std::move(waiters_.front());
    waiters_.pop_front();
    // Mutex stays locked: ownership transfers.
    if (auto* aw = std::get_if<ActorWaiter>(&next)) {
      *aw->granted = true;
      engine_.wake(*aw->actor);
    } else {
      auto cont = std::move(std::get<std::function<void()>>(next));
      engine_.schedule_at(engine_.now(), std::move(cont));
    }
  }

 private:
  struct ActorWaiter {
    Actor* actor;
    bool* granted;
  };

  Engine& engine_;
  bool locked_ = false;
  std::deque<std::variant<ActorWaiter, std::function<void()>>> waiters_;
};

/// Reusable barrier for a fixed set of actors (used by the collective layer
/// and by tests; the communication libraries implement their *own* barriers
/// with real messages — this one is a zero-cost test utility).
class SimBarrier {
 public:
  SimBarrier(Engine& engine, int parties)
      : engine_(engine), parties_(parties) {
    SPLAP_REQUIRE(parties > 0, "barrier needs at least one party");
  }

  void arrive_and_wait() {
    Actor* a = Actor::current();
    SPLAP_REQUIRE(a != nullptr, "SimBarrier requires an actor context");
    const std::int64_t my_gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      for (Actor* w : waiting_) engine_.wake(*w);
      waiting_.clear();
      return;
    }
    waiting_.push_back(a);
    a->wait([&] { return generation_ != my_gen; }, "sim-barrier");
  }

 private:
  Engine& engine_;
  const int parties_;
  int arrived_ = 0;
  std::int64_t generation_ = 0;
  std::vector<Actor*> waiting_;
};

/// A set of actors blocked on some condition; the state owner wakes them all
/// after mutating the state (waiters re-check their predicates).
class WaitSet {
 public:
  void add(Actor& a) { waiters_.push_back(&a); }

  void wake_all(Engine& engine) {
    for (Actor* a : waiters_) engine.wake(*a);
    waiters_.clear();
  }

  bool empty() const { return waiters_.empty(); }

 private:
  std::vector<Actor*> waiters_;
};

}  // namespace splap::sim
