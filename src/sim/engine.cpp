#include "sim/engine.hpp"

#include <utility>

namespace splap::sim {
namespace {

thread_local Actor* tls_current_actor = nullptr;

/// Thrown into a blocked actor when the engine is torn down, so its thread
/// unwinds cleanly (RAII still runs). Never escapes thread_main.
struct ActorKilled {};

}  // namespace

// ---------------------------------------------------------------------------
// Actor
// ---------------------------------------------------------------------------

Actor::Actor(Engine& engine, int id, std::string name,
             std::function<void(Actor&)> body)
    : engine_(engine), id_(id), name_(std::move(name)) {
  thread_ = std::thread([this, b = std::move(body)]() mutable {
    thread_main(std::move(b));
  });
}

Actor::~Actor() {
  if (thread_.joinable()) thread_.join();
}

Time Actor::now() const { return engine_.now(); }

Actor* Actor::current() { return tls_current_actor; }

void Actor::thread_main(std::function<void(Actor&)> body) {
  {
    // Wait for the first grant; the engine owns the yielded_=false edge.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return run_granted_; });
    run_granted_ = false;
  }
  tls_current_actor = this;
  block_reason_ = "running";
  if (!poisoned()) {
    try {
      body(*this);
    } catch (const ActorKilled&) {
      // Engine teardown: unwind silently.
    } catch (...) {
      failure_ = std::current_exception();
    }
  }
  tls_current_actor = nullptr;
  block_reason_ = "finished";
  std::lock_guard<std::mutex> lock(mu_);
  finished_ = true;
  yielded_ = true;
  cv_.notify_all();
}

bool Actor::poisoned() const { return poisoned_; }

void Actor::grant() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finished_) return;
    SPLAP_REQUIRE(yielded_, "grant() on an actor that is not descheduled");
    yielded_ = false;
    run_granted_ = true;
    cv_.notify_all();
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return yielded_; });
  if (failure_) {
    auto f = failure_;
    failure_ = nullptr;
    std::rethrow_exception(f);
  }
}

void Actor::suspend(const char* why) {
  SPLAP_REQUIRE(current() == this,
                "suspend() may only be called from the actor's own thread "
                "(blocking is forbidden in handler/event context)");
  block_reason_ = why;
  {
    std::unique_lock<std::mutex> lock(mu_);
    yielded_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return run_granted_; });
    run_granted_ = false;
  }
  if (poisoned_) throw ActorKilled{};
  block_reason_ = "running";
}

void Actor::compute(Time d) {
  SPLAP_REQUIRE(d >= 0, "compute() requires a non-negative duration");
  if (d == 0) return;
  bool fired = false;
  engine_.schedule_after(d, [this, &fired] {
    fired = true;
    engine_.wake(*this);
  });
  while (!fired) suspend("compute");
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::~Engine() { shutdown(); }

void Engine::shutdown() {
  // Unwind any actor still blocked (failed run, deadlock, or an exception
  // that aborted the event loop).
  for (auto& a : actors_) {
    if (!a->finished_) {
      a->poisoned_ = true;
      try {
        a->grant();
      } catch (...) {
        // Teardown must not throw; drop late failures.
      }
    }
  }
  // Actor destructors join the threads.
}

void Engine::schedule_at(Time t, EventFn fn) {
  SPLAP_REQUIRE(t >= now_, "cannot schedule an event in the virtual past");
  events_.push(Event{t, next_seq_++, std::move(fn)});
}

Actor& Engine::spawn(std::string name, std::function<void(Actor&)> body) {
  const int id = static_cast<int>(actors_.size());
  actors_.push_back(std::unique_ptr<Actor>(
      new Actor(*this, id, std::move(name), std::move(body))));
  Actor* a = actors_.back().get();
  schedule_at(now_, [a] { a->grant(); });
  return *a;
}

void Engine::wake(Actor& a) {
  if (a.finished_) return;
  if (a.wake_pending_) return;
  a.wake_pending_ = true;
  schedule_at(now_, [&a] {
    a.wake_pending_ = false;
    a.grant();
  });
}

Status Engine::run() {
  SPLAP_REQUIRE(!running_, "Engine::run is not reentrant");
  running_ = true;
  while (!events_.empty()) {
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.t;
    ev.fn();  // may throw: propagates to caller; ~Engine cleans up
  }
  running_ = false;
  bool dead = false;
  for (const auto& a : actors_) {
    if (!a->finished()) {
      dead = true;
      SPLAP_WARN(now_, "deadlock: actor %d (%s) blocked on: %s", a->id(),
                 a->name().c_str(), a->block_reason());
    }
  }
  return dead ? Status::kDeadlock : Status::kOk;
}

}  // namespace splap::sim
