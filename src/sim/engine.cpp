#include "sim/engine.hpp"

#include <utility>

namespace splap::sim {
namespace {

thread_local Actor* tls_current_actor = nullptr;

/// Thrown into a blocked actor when the engine is torn down, so its thread
/// unwinds cleanly (RAII still runs). Never escapes thread_main.
struct ActorKilled {};

/// Handoff spin budget before parking on the futex. On a single hardware
/// thread spinning only delays the partner's timeslice, so the fast path
/// degenerates straight to the park.
int handoff_spins() {
  static const int spins = std::thread::hardware_concurrency() > 1 ? 256 : 0;
  return spins;
}

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

// ---------------------------------------------------------------------------
// Actor
// ---------------------------------------------------------------------------

Actor::Actor(Engine& engine, int id, std::string name,
             std::function<void(Actor&)> body)
    : engine_(engine), id_(id), name_(std::move(name)) {
  thread_ = std::thread([this, b = std::move(body)]() mutable {
    thread_main(std::move(b));
  });
}

Actor::~Actor() {
  if (thread_.joinable()) thread_.join();
}

Time Actor::now() const { return engine_.now(); }

Actor* Actor::current() { return tls_current_actor; }

void Actor::park_until(std::uint32_t want) {
  for (int i = handoff_spins(); i-- > 0;) {
    if (turn_.load(std::memory_order_acquire) == want) return;
    cpu_relax();
  }
  std::uint32_t cur = turn_.load(std::memory_order_acquire);
  while (cur != want) {
    turn_.wait(cur, std::memory_order_acquire);
    cur = turn_.load(std::memory_order_acquire);
  }
}

void Actor::thread_main(std::function<void(Actor&)> body) {
  // Wait for the first grant; the engine owns the control token until then.
  park_until(kActorHasControl);
  tls_current_actor = this;
  block_reason_ = "running";
  if (!poisoned()) {
    try {
      body(*this);
    } catch (const ActorKilled&) {
      // Engine teardown: unwind silently.
    } catch (...) {
      failure_ = std::current_exception();
    }
  }
  tls_current_actor = nullptr;
  block_reason_ = "finished";
  finished_ = true;
  turn_.store(kEngineHasControl, std::memory_order_release);
  turn_.notify_one();
}

bool Actor::poisoned() const { return poisoned_; }

void Actor::grant() {
  if (finished_) return;
  SPLAP_REQUIRE(turn_.load(std::memory_order_relaxed) == kEngineHasControl,
                "grant() on an actor that is not descheduled");
  turn_.store(kActorHasControl, std::memory_order_release);
  turn_.notify_one();
  park_until(kEngineHasControl);
  if (failure_) {
    // Move, don't copy: exception_ptr copies touch an atomic refcount.
    std::exception_ptr f = std::move(failure_);
    failure_ = nullptr;
    std::rethrow_exception(std::move(f));
  }
}

void Actor::suspend(const char* why) {
  SPLAP_REQUIRE(current() == this,
                "suspend() may only be called from the actor's own thread "
                "(blocking is forbidden in handler/event context)");
  block_reason_ = why;
  turn_.store(kEngineHasControl, std::memory_order_release);
  turn_.notify_one();
  park_until(kActorHasControl);
  if (poisoned_) throw ActorKilled{};
  block_reason_ = "running";
}

void Actor::compute(Time d) {
  SPLAP_REQUIRE(d >= 0, "compute() requires a non-negative duration");
  if (d == 0) return;
  bool fired = false;
  engine_.schedule_after(d, [this, &fired] {
    fired = true;
    engine_.wake(*this);
  });
  while (!fired) suspend("compute");
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::~Engine() {
  shutdown();
  // Events still queued (failed run, deadlock) own callables; destroy them
  // before the pool slabs go away. Audit builds also hand the swept nodes
  // back to the pool so acquire/release pairing balances, then verify no
  // node is left acquired: any remainder escaped both the run loop and this
  // sweep, i.e. a queue-bookkeeping leak.
#ifdef SPLAP_AUDIT
#define SPLAP_SWEEP(node) \
  do {                    \
    (node)->clear();      \
    event_pool_.release(node); \
  } while (0)
#else
#define SPLAP_SWEEP(node) (node)->clear()
#endif
  if (box_full_) SPLAP_SWEEP(box_.node);
  for (const HeapSlot& s : heap_) SPLAP_SWEEP(s.node);
  std::size_t idx = tail_head_;
  for (std::size_t b = tail_head_block_; b < tail_blocks_.size(); ++b) {
    const std::size_t end =
        b + 1 == tail_blocks_.size() ? tail_back_ : SlotBlock::kSlots;
    for (std::size_t j = idx; j < end; ++j) SPLAP_SWEEP(tail_blocks_[b]->s[j].node);
    idx = 0;
  }
#undef SPLAP_SWEEP
#ifdef SPLAP_AUDIT
  if (event_pool_.in_use() != 0) {
    audit::fail("event node leak at engine teardown", "Engine::~Engine",
                nullptr);
  }
#endif
}

#ifdef SPLAP_AUDIT
void Engine::audit_object_touch(const void* obj, const char* where) {
  const Actor* a = Actor::current();
  audit_race_.touch(obj, now_, audit_step_, a != nullptr ? a->id() : -1,
                    where);
}
#endif

void Engine::shutdown() {
  // Unwind any actor still blocked (failed run, deadlock, or an exception
  // that aborted the event loop).
  for (auto& a : actors_) {
    if (!a->finished_) {
      a->poisoned_ = true;
      try {
        a->grant();
      } catch (...) {
        // Teardown must not throw; drop late failures.
      }
    }
  }
  // Actor destructors join the threads.
}

Actor& Engine::spawn(std::string name, std::function<void(Actor&)> body) {
  const int id = static_cast<int>(actors_.size());
  actors_.push_back(std::unique_ptr<Actor>(
      new Actor(*this, id, std::move(name), std::move(body))));
  Actor* a = actors_.back().get();
  schedule_at(now_, [a] { a->grant(); });
  return *a;
}

void Engine::wake(Actor& a) {
  if (a.finished_) return;
  if (a.wake_pending_) return;
  a.wake_pending_ = true;
  schedule_at(now_, [&a] {
    a.wake_pending_ = false;
    a.grant();
  });
}

Status Engine::run() {
  SPLAP_REQUIRE(!running_, "Engine::run is not reentrant");
  running_ = true;
  while (!queue_empty()) {
    const HeapSlot s = queue_pop();
    // Touch the NEXT event's node while this one executes: queued nodes
    // cycle through a pool region larger than L1, and the pointer chase is
    // otherwise on the critical path of every dispatch.
    if (tail_size_ != 0) __builtin_prefetch(tail_front().node);
    EventNode* n = s.node;
    now_ = s.t;
#ifdef SPLAP_AUDIT
    audit_race_.on_dispatch(++audit_step_, n->audit_cause);
#endif
    // invoke destroys the callable on both paths, so the node goes straight
    // back to the pool; a free node's stale thunk pointers are never read
    // (bind overwrites them, and ~Engine only sweeps queued nodes).
    try {
      n->invoke(n->obj);  // may throw: propagates to caller; ~Engine cleans up
    } catch (...) {
      event_pool_.release(n);
      running_ = false;
      throw;
    }
    event_pool_.release(n);
  }
  running_ = false;
  bool dead = false;
  for (const auto& a : actors_) {
    if (!a->finished()) {
      dead = true;
      SPLAP_WARN(now_, "deadlock: actor %d (%s) blocked on: %s", a->id(),
                 a->name().c_str(), a->block_reason());
    }
  }
  return dead ? Status::kDeadlock : Status::kOk;
}

}  // namespace splap::sim
