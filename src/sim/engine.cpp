#include "sim/engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <system_error>
#include <utility>

namespace splap::sim {
namespace {

thread_local Actor* tls_current_actor = nullptr;
thread_local ExecLane* tls_lane = nullptr;  // set while a lane runs events

/// Thrown into a blocked actor when the engine is torn down, so its thread
/// unwinds cleanly (RAII still runs). Never escapes thread_main.
struct ActorKilled {};

/// SPLAP_HANDOFF_SPINS pins the handoff spin budget (adaptive when unset).
int env_spin_override() {
  static const int v = [] {
    const char* s = std::getenv("SPLAP_HANDOFF_SPINS");
    if (s == nullptr || *s == '\0') return -1;
    return std::atoi(s);
  }();
  return v;
}

bool multi_hw() {
  static const bool v = std::thread::hardware_concurrency() > 1;
  return v;
}

/// Starting spin budget before yielding/parking. On a single hardware thread
/// spinning only delays the partner's timeslice, so the fast path goes
/// straight to the yield loop.
int initial_spin_budget() {
  const int o = env_spin_override();
  if (o >= 0) return o;
  return multi_hw() ? 256 : 0;
}

constexpr int kSpinMax = 4096;
constexpr int kYieldRounds = 2;

/// Below this many events a window's rendezvous costs more than it saves;
/// the popped prefix runs serially instead (identical order either way).
constexpr std::size_t kMinWindow = 4;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

// ---------------------------------------------------------------------------
// Parallel window executor: lanes and rendezvous
// ---------------------------------------------------------------------------

/// One worker lane of the parallel window executor. A window assigns every
/// event of shard s to lane s % nlanes, so all events touching one node's
/// state run on one thread; the lane executes them in the exact serial
/// (time, seq) order restricted to its shards, plus any same-shard children
/// that land inside the window.
struct ExecLane {
  /// A pending lane-local event with its total order key. `ord` carries the
  /// global seq for window events; children get kChildEpoch | counter, which
  /// is numerically larger than any real seq, so one (t, ord) compare yields
  /// the proof order (time, epoch, per-epoch index).
  struct Slot {
    Time t;
    std::uint64_t ord;
    Engine::EventNode* node;
    std::int32_t child;  // index into children when this is an epoch-1 slot
    bool before(const Slot& o) const {
      return t != o.t ? t < o.t : ord < o.ord;
    }
  };

  /// Every event scheduled during this window, in per-parent program order
  /// (replay-merge re-walks these to assign the exact serial seqs).
  struct Child {
    Time t;
    Engine::EventNode* node;
    std::int32_t rec;  // index into recs when executed in-lane, else -1
  };

  /// One executed event. Window events know their seq up front; children
  /// get theirs during replay-merge, when their parent's record pops.
  struct Rec {
    Time t = 0;
    std::uint64_t seq = 0;
    std::uint32_t cb = 0, ce = 0;  // [cb, ce) into this lane's children
    int lane = 0;
    std::int32_t child = -1;  // which Child this was (-1: window event)
    std::exception_ptr err;
  };

  static constexpr std::uint64_t kChildEpoch = std::uint64_t{1} << 63;

  Engine* eng = nullptr;
  int id = 0;
  int stripe() const { return id + 1; }  // counter stripe (0 is serial)

  std::vector<Slot> batch;  // window events, ascending (t, seq)
  Time w_eff = 0;           // no lane-local execution at or beyond this time
  std::vector<Slot> heap;   // min-heap of in-window same-shard children
  std::vector<Child> children;
  std::vector<Rec> recs;
  Time vnow = 0;            // lane-local virtual clock (Engine::now routes here)
  int cur_shard = Engine::kNoShard;
  std::uint64_t child_ord = 0;
#ifdef SPLAP_AUDIT
  std::uint64_t cur_step = 0;
#endif

  static bool slot_after(const Slot& a, const Slot& b) { return b.before(a); }

  void reset(Time weff) {
    batch.clear();
    heap.clear();
    children.clear();
    recs.clear();
    w_eff = weff;
    vnow = 0;
    cur_shard = Engine::kNoShard;
    child_ord = 0;
  }

  /// Record an event scheduled while this lane is executing. Same-shard
  /// children inside the window run locally (serial would run them inside
  /// the window too); everything else is deferred to replay-merge — which is
  /// only sound when it lands at or beyond w_eff, hence the contract check.
  void record_child(Time t, int shard, Engine::EventNode* n) {
    SPLAP_REQUIRE(t >= vnow, "cannot schedule an event in the virtual past");
    n->shard = shard == Engine::kInheritShard ? cur_shard : shard;
#ifdef SPLAP_AUDIT
    n->audit_cause = cur_step;
#endif
    const std::int32_t ci = static_cast<std::int32_t>(children.size());
    children.push_back(Child{t, n, -1});
    if (t < w_eff) {
      SPLAP_REQUIRE(n->shard == cur_shard,
                    "parallel window contract violated: an event scheduled a "
                    "cross-shard or unsharded event closer than the offered "
                    "lookahead");
      heap.push_back(Slot{t, kChildEpoch | child_ord++, n, ci});
      std::push_heap(heap.begin(), heap.end(), &slot_after);
    }
  }

  /// Drain the window batch merged with in-window children in (t, ord)
  /// order. Event exceptions are captured per record and surfaced by
  /// replay-merge in serial position; this function itself does not throw.
  void run_window() {
    Engine& e = *eng;
    std::size_t bi = 0;
    for (;;) {
      Slot s;
      const bool have_batch = bi < batch.size();
      if (have_batch && (heap.empty() || batch[bi].before(heap.front()))) {
        s = batch[bi++];
      } else if (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), &slot_after);
        s = heap.back();
        heap.pop_back();
      } else if (have_batch) {
        s = batch[bi++];
      } else {
        break;
      }
      vnow = s.t;
      cur_shard = s.node->shard;
      const std::size_t ri = recs.size();
      {
        Rec r;
        r.t = s.t;
        r.seq = (s.ord & kChildEpoch) != 0 ? 0 : s.ord;
        r.cb = r.ce = static_cast<std::uint32_t>(children.size());
        r.lane = id;
        r.child = s.child;
        recs.push_back(std::move(r));
      }
      if (s.child >= 0) {
        children[static_cast<std::size_t>(s.child)].rec =
            static_cast<std::int32_t>(ri);
      }
      Engine::EventNode* n = s.node;
#ifdef SPLAP_AUDIT
      {
        std::lock_guard<std::mutex> lk(e.audit_mu_);
        cur_step = ++e.audit_step_;
        e.audit_race_.on_dispatch(cur_step, n->audit_cause);
      }
#endif
      try {
        n->invoke(n->obj);
      } catch (...) {
        recs[ri].err = std::current_exception();
      }
      e.event_pool_.release(n);
      recs[ri].ce = static_cast<std::uint32_t>(children.size());
    }
  }
};

/// Worker threads plus the per-window rendezvous. Lane 0 is always run
/// inline by the engine thread (on a loaded machine that saves one wake/park
/// round trip per window); lanes 1..n-1 each own a worker thread parked on
/// the generation condvar between windows.
struct ExecState {
  Engine* eng;
  std::vector<ExecLane> lanes;
  std::vector<std::thread> workers;
  std::mutex mu;
  std::condition_variable cv;       // engine -> workers: new window / stop
  std::condition_variable done_cv;  // workers -> engine: all lanes drained
  std::uint64_t gen = 0;
  int running = 0;
  bool stopping = false;
  std::vector<Engine::HeapSlot> window;   // reused window staging buffer
  std::vector<ExecLane::Rec*> replay;     // reused replay-merge heap

  ExecState(Engine* e, int nlanes) : eng(e) {
    lanes.resize(static_cast<std::size_t>(nlanes));
    for (int i = 0; i < nlanes; ++i) {
      lanes[static_cast<std::size_t>(i)].eng = e;
      lanes[static_cast<std::size_t>(i)].id = i;
    }
    workers.reserve(static_cast<std::size_t>(nlanes - 1));
    for (int i = 1; i < nlanes; ++i) {
      workers.emplace_back(
          [this, i] { worker_main(lanes[static_cast<std::size_t>(i)]); });
    }
  }
  ~ExecState() { stop(); }

  void stop() {
    {
      std::lock_guard<std::mutex> lk(mu);
      stopping = true;
    }
    cv.notify_all();
    for (auto& w : workers) {
      if (w.joinable()) w.join();
    }
    workers.clear();
  }

  void worker_main(ExecLane& lane) {
    tls_counter_stripe = lane.stripe();
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return stopping || gen != seen; });
        if (stopping) return;
        seen = gen;
      }
      tls_lane = &lane;
      lane.run_window();
      tls_lane = nullptr;
      bool last;
      {
        std::lock_guard<std::mutex> lk(mu);
        last = --running == 0;
      }
      if (last) done_cv.notify_one();
    }
  }
};

// ---------------------------------------------------------------------------
// Actor
// ---------------------------------------------------------------------------

Actor::Actor(Engine& engine, int id, int shard, std::string name,
             std::function<void(Actor&)> body)
    : engine_(engine),
      id_(id),
      shard_(shard),
      stackless_(false),
      name_(std::move(name)) {
  thread_ = std::thread([this, b = std::move(body)]() mutable {
    thread_main(std::move(b));
  });
}

Actor::Actor(Engine& engine, int id, int shard, std::string name,
             std::function<void(Actor&)> body, StacklessTag)
    : engine_(engine),
      id_(id),
      shard_(shard),
      stackless_(true),
      name_(std::move(name)),
      stackless_body_(std::move(body)) {
  block_reason_ = stackless_body_ ? "not started" : "stackless-idle";
}

Actor::~Actor() {
  if (thread_.joinable()) thread_.join();
}

Time Actor::now() const { return engine_.now(); }

Actor* Actor::current() { return tls_current_actor; }

void Actor::park_until(std::uint32_t want) {
  if ((turn_.load(std::memory_order_acquire) & kOwnerMask) == want) return;
  int& budget = spin_budget_[want & kOwnerMask];
  if (budget < 0) budget = initial_spin_budget();
  const bool adaptive = env_spin_override() < 0;
  for (int i = budget; i-- > 0;) {
    cpu_relax();
    if ((turn_.load(std::memory_order_acquire) & kOwnerMask) == want) return;
  }
  // Yield phase: on a loaded or single-CPU machine the partner needs our
  // timeslice, not our spinning — and a yield that succeeds saves the futex
  // wait AND the partner's wake syscall (it sees no parked bit).
  for (int i = 0; i < kYieldRounds; ++i) {
    std::this_thread::yield();
    if ((turn_.load(std::memory_order_acquire) & kOwnerMask) == want) {
      if (adaptive && multi_hw() && budget < kSpinMax) {
        // Spin missed but yield caught it: a longer spin may dodge even the
        // yield next time.
        budget = std::min(budget * 2 + 16, kSpinMax);
      }
      return;
    }
  }
  if (adaptive) budget /= 2;  // both phases missed: spinning is wasted here
  // Advertise the park so the handing-over side knows a wake is needed. The
  // waiter never writes the owner bit — a post-wake store could clobber the
  // partner's freshly set parked bit and lose its wake; only the handoff
  // exchange in hand_to clears the bit.
  std::uint32_t cur =
      turn_.fetch_or(kParkedBit, std::memory_order_acq_rel) | kParkedBit;
  while ((cur & kOwnerMask) != want) {
    turn_.wait(cur, std::memory_order_acquire);
    cur = turn_.load(std::memory_order_acquire);
  }
}

void Actor::hand_to(std::uint32_t next) {
  const std::uint32_t old = turn_.exchange(next, std::memory_order_acq_rel);
  if ((old & kParkedBit) != 0) turn_.notify_one();
}

void Actor::thread_main(std::function<void(Actor&)> body) {
  // Wait for the first grant; the engine owns the control token until then.
  park_until(kActorHasControl);
  tls_current_actor = this;
  tls_counter_stripe = lane_ctx_ != nullptr ? lane_ctx_->stripe() : 0;
  block_reason_ = "running";
  if (!poisoned()) {
    try {
      body(*this);
    } catch (const ActorKilled&) {
      // Engine teardown: unwind silently.
    } catch (...) {
      failure_ = std::current_exception();
    }
  }
  tls_current_actor = nullptr;
  block_reason_ = "finished";
  finished_ = true;
  hand_to(kEngineHasControl);
}

bool Actor::poisoned() const { return poisoned_; }

void Actor::grant() {
  if (finished_) return;
  // The dispatching context (serial loop or worker lane) stamps itself here
  // before the handoff; the actor thread reads it after the acquire to route
  // Engine::now()/schedule through the right lane and counter stripe.
  lane_ctx_ = tls_lane;
  if (stackless_) {
    Actor* saved = tls_current_actor;
    tls_current_actor = this;
    block_reason_ = "running";
    struct Restore {  // restores on the throw path too
      Actor*& slot;
      Actor* saved;
      Actor* self;
      ~Restore() {
        slot = saved;
        self->block_reason_ = "finished";
        self->finished_ = true;
        self->lane_ctx_ = nullptr;
      }
    } restore{tls_current_actor, saved, this};
    if (stackless_body_) {
      // Move out so captured state is freed as soon as the body returns.
      auto body = std::move(stackless_body_);
      stackless_body_ = nullptr;
      body(*this);
    }
    return;
  }
  SPLAP_REQUIRE(
      (turn_.load(std::memory_order_relaxed) & kOwnerMask) == kEngineHasControl,
      "grant() on an actor that is not descheduled");
  hand_to(kActorHasControl);
  park_until(kEngineHasControl);
  lane_ctx_ = nullptr;
  if (failure_) {
    // Move, don't copy: exception_ptr copies touch an atomic refcount.
    std::exception_ptr f = std::move(failure_);
    failure_ = nullptr;
    std::rethrow_exception(std::move(f));
  }
}

void Actor::run_inline(const std::function<void(Actor&)>& fn) {
  SPLAP_REQUIRE(stackless_,
                "run_inline is only valid on a stackless actor (thread-backed "
                "actors run their own body)");
  SPLAP_REQUIRE(!finished_, "run_inline on a finished actor");
  Actor* saved = tls_current_actor;
  // Inherit the caller's lane so Engine::now()/schedule keep resolving
  // lane-local time even when a granted actor calls into us.
  lane_ctx_ = tls_lane != nullptr        ? tls_lane
              : saved != nullptr         ? saved->lane_ctx_
                                         : nullptr;
  tls_current_actor = this;
  const char* saved_reason = block_reason_;
  block_reason_ = "running";
  struct Restore {
    Actor*& slot;
    Actor* saved;
    Actor* self;
    const char* reason;
    ~Restore() {
      slot = saved;
      self->block_reason_ = reason;
      self->lane_ctx_ = nullptr;
    }
  } restore{tls_current_actor, saved, this, saved_reason};
  fn(*this);
}

void Actor::suspend(const char* why) {
  SPLAP_REQUIRE(!stackless_,
                "stackless (handler-mode) actor attempted to block; stackless "
                "actors must never suspend/wait/compute — use a thread-backed "
                "actor for blocking code");
  SPLAP_REQUIRE(current() == this,
                "suspend() may only be called from the actor's own thread "
                "(blocking is forbidden in handler/event context)");
  block_reason_ = why;
  hand_to(kEngineHasControl);
  park_until(kActorHasControl);
  // Re-read the granting context: we may have been resumed by a different
  // lane (or the serial loop) than the one that suspended us.
  tls_counter_stripe = lane_ctx_ != nullptr ? lane_ctx_->stripe() : 0;
  if (poisoned_) throw ActorKilled{};
  block_reason_ = "running";
}

void Actor::compute(Time d) {
  SPLAP_REQUIRE(d >= 0, "compute() requires a non-negative duration");
  if (d == 0) return;
  bool fired = false;
  engine_.schedule_after(d, [this, &fired] {
    fired = true;
    engine_.wake(*this);
  });
  while (!fired) suspend("compute");
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine() {
  tail_spare_.push_back(&first_block_);
#ifdef SPLAP_AUDIT
  audit_spare_.insert(&first_block_, "Engine ctor");
#endif
  init_exec_from_env();
}

Engine::~Engine() {
  if (exec_ != nullptr) exec_->stop();
  shutdown();
  // Events still queued (failed run, deadlock) own callables; destroy them
  // before the pool slabs go away. Audit builds also hand the swept nodes
  // back to the pool so acquire/release pairing balances, then verify no
  // node is left acquired: any remainder escaped both the run loop and this
  // sweep, i.e. a queue-bookkeeping leak.
#ifdef SPLAP_AUDIT
#define SPLAP_SWEEP(node) \
  do {                    \
    (node)->clear();      \
    event_pool_.release(node); \
  } while (0)
#else
#define SPLAP_SWEEP(node) (node)->clear()
#endif
  if (box_full_) SPLAP_SWEEP(box_.node);
  for (const HeapSlot& s : heap_) SPLAP_SWEEP(s.node);
  std::size_t idx = tail_head_;
  for (std::size_t b = tail_head_block_; b < tail_blocks_.size(); ++b) {
    const std::size_t end =
        b + 1 == tail_blocks_.size() ? tail_back_ : SlotBlock::kSlots;
    for (std::size_t j = idx; j < end; ++j) SPLAP_SWEEP(tail_blocks_[b]->s[j].node);
    idx = 0;
  }
#undef SPLAP_SWEEP
#ifdef SPLAP_AUDIT
  if (event_pool_.in_use() != 0) {
    audit::fail("event node leak at engine teardown", "Engine::~Engine",
                nullptr);
  }
#endif
}

#ifdef SPLAP_AUDIT
void Engine::audit_object_begin(const void* obj) {
  std::unique_lock<std::mutex> lk(audit_mu_, std::defer_lock);
  if (exec_enabled_) lk.lock();
  audit_race_.begin(obj);
}

void Engine::audit_object_end(const void* obj) {
  std::unique_lock<std::mutex> lk(audit_mu_, std::defer_lock);
  if (exec_enabled_) lk.lock();
  audit_race_.end(obj);
}

void Engine::audit_object_touch(const void* obj, const char* where) {
  const Actor* a = Actor::current();
  const int actor_id = a != nullptr ? a->id() : -1;
  if (exec_enabled_) {
    const ExecLane* l = tls_lane;
    if (l == nullptr && a != nullptr) l = a->lane_ctx_;
    std::lock_guard<std::mutex> lk(audit_mu_);
    if (l != nullptr) {
      audit_race_.touch(obj, l->vnow, l->cur_step, actor_id, where);
    } else {
      audit_race_.touch(obj, now_, audit_step_, actor_id, where);
    }
    return;
  }
  audit_race_.touch(obj, now_, audit_step_, actor_id, where);
}
#endif

void Engine::shutdown() {
  // Unwind any actor still blocked (failed run, deadlock, or an exception
  // that aborted the event loop). Stackless actors have no stack to unwind:
  // mark them finished and drop any unstarted body.
  for (auto& a : actors_) {
    if (a->finished_) continue;
    a->poisoned_ = true;
    if (a->stackless_) {
      a->finished_ = true;
      a->block_reason_ = "finished";
      a->stackless_body_ = nullptr;
      continue;
    }
    try {
      a->grant();
    } catch (...) {
      // Teardown must not throw; drop late failures.
    }
  }
  // Actor destructors join the threads.
}

void Engine::kill_shard(int shard) {
  // Same per-actor unwind as shutdown(), restricted to one node's shard.
  // The single-runnable-entity invariant guarantees every actor is parked
  // while an event callback runs, so granting a poisoned actor here hands
  // its thread exactly one resume in which suspend() rethrows the teardown
  // exception and the stack unwinds.
  for (auto& a : actors_) {
    if (a->finished_ || a->shard_ != shard) continue;
    a->poisoned_ = true;
    if (a->stackless_) {
      a->finished_ = true;
      a->block_reason_ = "finished";
      a->stackless_body_ = nullptr;
      continue;
    }
    try {
      a->grant();
    } catch (...) {
      // A crash-stop unwind must not propagate into the dispatcher; late
      // failures from a dying node are dropped like in shutdown().
    }
  }
}

int Engine::context_shard() const {
  if (exec_enabled_) {
    const ExecLane* l = tls_lane;
    if (l != nullptr) return l->cur_shard;
  }
  const Actor* a = tls_current_actor;
  if (a != nullptr) return a->shard();
  return dispatch_shard_;
}

Actor& Engine::spawn_impl(int shard, std::string name,
                          std::function<void(Actor&)> body, bool stackless) {
  const bool has_body = static_cast<bool>(body);
  Actor* p = nullptr;
  {
    // Lanes may spawn concurrently (service pools attached to different
    // nodes); id assignment and the actors_ push must be atomic then.
    std::unique_lock<std::mutex> lk(spawn_mu_, std::defer_lock);
    if (exec_enabled_) lk.lock();
    const int id = static_cast<int>(actors_.size());
    std::unique_ptr<Actor> a;
    if (stackless) {
      a.reset(new Actor(*this, id, shard, std::move(name), std::move(body),
                        Actor::StacklessTag{}));
    } else {
      try {
        a.reset(new Actor(*this, id, shard, std::move(name), std::move(body)));
      } catch (const std::system_error& e) {
        throw SpawnError(std::string("cannot create a thread for actor #") +
                         std::to_string(id) + ": " + e.what() +
                         " — the OS refused another thread; reduce the node "
                         "count or use stackless actors for non-blocking "
                         "endpoints");
      }
    }
    p = a.get();
    actors_.push_back(std::move(a));
  }
  // Stackless identity actors (null body) exist only as run_inline targets;
  // everything else gets its body started at the current time.
  if (!stackless || has_body) {
    schedule_at_on(now(), shard, [p] { p->grant(); });
  }
  return *p;
}

Actor& Engine::spawn(std::string name, std::function<void(Actor&)> body) {
  return spawn_impl(context_shard(), std::move(name), std::move(body), false);
}

Actor& Engine::spawn_on(int shard, std::string name,
                        std::function<void(Actor&)> body) {
  return spawn_impl(shard, std::move(name), std::move(body), false);
}

Actor& Engine::spawn_stackless(int shard, std::string name,
                               std::function<void(Actor&)> body) {
  return spawn_impl(shard, std::move(name), std::move(body), true);
}

void Engine::wake(Actor& a) {
  SPLAP_REQUIRE(!a.stackless_,
                "wake() on a stackless actor (they never block, so there is "
                "nothing to resume)");
  if (a.finished_) return;
  if (a.wake_pending_) return;
  a.wake_pending_ = true;
  // Pinned to the actor's shard: the wake grant must run on the lane that
  // owns the actor's node, and only same-shard context may wake in-window.
  schedule_at_on(now(), a.shard_, [&a] {
    a.wake_pending_ = false;
    a.grant();
  });
}

// --- parallel window executor ---------------------------------------------

void Engine::init_exec_from_env() {
  const char* s = std::getenv("SPLAP_EXEC_THREADS");
  if (s == nullptr || *s == '\0') return;
  const int n = std::atoi(s);
  if (n > 1) set_exec_threads(n);
}

void Engine::set_exec_threads(int n) {
  SPLAP_REQUIRE(!running_, "set_exec_threads may not be called mid-run");
  if (n < 1) n = 1;
  const int cap = CounterSet::kStripes - 1;
  if (n > cap) n = cap;
  if (exec_ != nullptr && n != static_cast<int>(exec_->lanes.size())) {
    exec_->stop();
    exec_.reset();
  }
  exec_threads_ = n;
  exec_enabled_ = n > 1;
  // Lanes and the actor threads they grant allocate event nodes
  // concurrently; the pool serializes itself from here on. Transports lock
  // their own pools at construction by checking exec_threads().
  event_pool_.set_locked(exec_enabled_);
  counters_.set_locked(exec_enabled_);  // name resolution may race otherwise
}

void Engine::mark_parallel_unsafe(const char* why) {
  if (exec_enabled_ && !parallel_unsafe_) {
    SPLAP_WARN(now_, "parallel window execution disabled: %s", why);
  }
  parallel_unsafe_ = true;
}

Time Engine::now_slow() const {
  const ExecLane* l = tls_lane;
  if (l == nullptr) {
    const Actor* a = tls_current_actor;
    if (a != nullptr) l = a->lane_ctx_;
  }
  return l != nullptr ? l->vnow : now_;
}

void Engine::commit_slow(Time t, int shard, EventNode* n) {
  ExecLane* l = tls_lane;
  if (l == nullptr) {
    Actor* a = tls_current_actor;
    if (a != nullptr) l = a->lane_ctx_;
  }
  if (l != nullptr) {
    l->record_child(t, shard, n);
    return;
  }
  SPLAP_REQUIRE(t >= now_, "cannot schedule an event in the virtual past");
  n->shard = shard == kInheritShard ? dispatch_shard_ : shard;
#ifdef SPLAP_AUDIT
  n->audit_cause = audit_step_;
#endif
  queue_push(HeapSlot{t, next_seq_++, n});
}

void Engine::dispatch_serial(const HeapSlot& s) {
  // Touch the NEXT event's node while this one executes: queued nodes
  // cycle through a pool region larger than L1, and the pointer chase is
  // otherwise on the critical path of every dispatch.
  if (tail_size_ != 0) __builtin_prefetch(tail_front().node);
  EventNode* n = s.node;
  now_ = s.t;
  dispatch_shard_ = n->shard;
#ifdef SPLAP_AUDIT
  {
    // Lanes are quiescent whenever the serial path runs, but audit state
    // keeps one lock discipline once the executor exists.
    std::unique_lock<std::mutex> lk(audit_mu_, std::defer_lock);
    if (exec_enabled_) lk.lock();
    audit_race_.on_dispatch(++audit_step_, n->audit_cause);
  }
#endif
  // invoke destroys the callable on both paths, so the node goes straight
  // back to the pool; a free node's stale thunk pointers are never read
  // (bind overwrites them, and ~Engine only sweeps queued nodes).
  try {
    n->invoke(n->obj);  // may throw: propagates to caller; ~Engine cleans up
  } catch (...) {
    event_pool_.release(n);
    ++events_executed_;
    throw;
  }
  event_pool_.release(n);
  ++events_executed_;
}

bool Engine::try_parallel_window() {
  const HeapSlot* front = queue_peek();
  if (front == nullptr || front->node->shard == kNoShard) return false;
  if (exec_ == nullptr) exec_ = std::make_unique<ExecState>(this, exec_threads_);
  ExecState& x = *exec_;
  const Time limit = front->t + lookahead_;
  // Pop the maximal sharded prefix below the lookahead horizon. The first
  // unsharded event acts as a barrier: it caps the effective window so no
  // lane executes past it (its effects may touch any shard).
  x.window.clear();
  Time w_eff = limit;
  while (const HeapSlot* g = queue_peek()) {
    if (g->t >= limit) break;
    if (g->node->shard == kNoShard) {
      w_eff = g->t;
      break;
    }
    x.window.push_back(queue_pop());
  }
  if (x.window.size() < kMinWindow) {
    // Not worth the rendezvous; drain the popped prefix serially, in exactly
    // the order the serial loop would have (it is the queue's min prefix).
    std::size_t i = 0;
    try {
      for (; i < x.window.size(); ++i) dispatch_serial(x.window[i]);
    } catch (...) {
      for (std::size_t j = i + 1; j < x.window.size(); ++j) {
        queue_push(x.window[j]);
      }
      throw;
    }
    return true;
  }
  const std::size_t nlanes = x.lanes.size();
  for (auto& l : x.lanes) l.reset(w_eff);
  for (const HeapSlot& s : x.window) {
    ExecLane& l = x.lanes[static_cast<std::size_t>(s.node->shard) % nlanes];
    l.batch.push_back(ExecLane::Slot{s.t, s.seq, s.node, -1});
  }
  {
    std::lock_guard<std::mutex> lk(x.mu);
    x.running = static_cast<int>(nlanes) - 1;
    ++x.gen;
  }
  x.cv.notify_all();
  // The engine thread runs lane 0 itself instead of parking: one fewer
  // wake/park round trip per window, and on a single CPU the window then
  // costs no context switch at all when the other lanes are empty.
  ExecLane& l0 = x.lanes[0];
  tls_lane = &l0;
  tls_counter_stripe = l0.stripe();
  l0.run_window();
  tls_lane = nullptr;
  tls_counter_stripe = 0;
  if (nlanes > 1) {
    std::unique_lock<std::mutex> lk(x.mu);
    x.done_cv.wait(lk, [&x] { return x.running == 0; });
  }
  merge_window();
  return true;
}

void Engine::merge_window() {
  ExecState& x = *exec_;
  // Replay the executed records in exact serial (t, seq) order and hand out
  // seqs to their children in program order — precisely what the serial loop
  // would have done. Window records seed the heap (their seqs are known); a
  // child's record becomes reachable when its parent pops and names it.
  auto cmp = [](const ExecLane::Rec* a, const ExecLane::Rec* b) {
    return a->t != b->t ? a->t > b->t : a->seq > b->seq;
  };
  auto& h = x.replay;
  h.clear();
  for (auto& l : x.lanes) {
    for (auto& r : l.recs) {
      if (r.child < 0) h.push_back(&r);
    }
  }
  std::make_heap(h.begin(), h.end(), cmp);
  std::exception_ptr first_err;
  std::uint64_t nrec = 0;
  Time last_t = now_;
  while (!h.empty()) {
    std::pop_heap(h.begin(), h.end(), cmp);
    ExecLane::Rec* r = h.back();
    h.pop_back();
    last_t = r->t;  // pops are nondecreasing in (t, seq)
    if (r->err && !first_err) first_err = r->err;
    ExecLane& l = x.lanes[static_cast<std::size_t>(r->lane)];
    for (std::uint32_t i = r->cb; i < r->ce; ++i) {
      ExecLane::Child& c = l.children[i];
      const std::uint64_t seq = next_seq_++;
      if (c.rec >= 0) {
        ExecLane::Rec* cr = &l.recs[static_cast<std::size_t>(c.rec)];
        cr->seq = seq;
        h.push_back(cr);
        std::push_heap(h.begin(), h.end(), cmp);
      } else {
        queue_push(HeapSlot{c.t, seq, c.node});
      }
    }
    ++nrec;
  }
  now_ = last_t;
  events_executed_ += nrec;
  // Failure-path note (DESIGN.md): sibling window events that serial would
  // never have reached did run before the exception surfaces here. Replay
  // still completes first so pool accounting and deferred children are
  // consistent; then the first exception in serial order propagates.
  if (first_err) std::rethrow_exception(first_err);
}

Status Engine::run() {
  SPLAP_REQUIRE(!running_, "Engine::run is not reentrant");
  running_ = true;
  try {
    while (!queue_empty()) {
      if (exec_enabled_ && !parallel_unsafe_ && lookahead_ > 0 &&
          try_parallel_window()) {
        continue;
      }
      dispatch_serial(queue_pop());
    }
  } catch (...) {
    dispatch_shard_ = kNoShard;
    running_ = false;
    throw;
  }
  dispatch_shard_ = kNoShard;
  running_ = false;
  bool dead = false;
  for (const auto& a : actors_) {
    if (a->stackless()) continue;  // no stack, nothing ever blocks
    if (!a->finished()) {
      dead = true;
      SPLAP_WARN(now_, "deadlock: actor %d (%s) blocked on: %s", a->id(),
                 a->name().c_str(), a->block_reason());
    }
  }
  return dead ? Status::kDeadlock : Status::kOk;
}

}  // namespace splap::sim
