// Shadow-state audit instrumentation for the determinism-critical hot paths
// (see DESIGN.md "Determinism invariants and how they are enforced").
//
// The engine, the recycling pools and the fabric all trade safety rails for
// speed: pooled objects come back un-destructed, event nodes are referenced
// from queue slots after their pool slot is notionally free, and tail blocks
// cycle through a spare list by raw pointer. A lifecycle bug in any of them
// (double-recycle, use-after-release, leak) does not crash — it silently
// aliases two live objects onto one allocation and corrupts the event trace
// *downstream*, which is the hardest failure mode to debug in a simulator
// whose whole contract is bit-reproducibility.
//
// SPLAP_AUDIT builds (-DSPLAP_AUDIT=ON) compile in shadow bookkeeping that
// turns those bugs into immediate aborts at the corrupting operation:
//
//   LiveSet      membership shadow for pool free lists and the engine's
//                tail-block spare list: double acquire, double release,
//                foreign release and use-after-release all fail loudly.
//   RaceTracker  virtual-time race detector: every audited object remembers
//                who touched it last (dispatch step + actor). A touch at the
//                SAME virtual time from a different entity with no
//                happens-before path between the two dispatches means the
//                serialization order came from queue tie-breaking, not from
//                the model — exactly the fragility that turns into a trace
//                divergence when event insertion order shifts.
//
// Everything here is compiled out when SPLAP_AUDIT is off: release binaries
// carry no shadow state, no branches, no extra members.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/time.hpp"

namespace splap::audit {

#if defined(SPLAP_AUDIT)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Print a diagnostic prefixed with "splap-audit:" and abort. The prefix is
/// the contract the audit death tests match on.
[[noreturn]] inline void fail(const char* what, const char* where,
                              const void* obj) {
  std::fprintf(stderr, "splap-audit: %s (at %s, object %p)\n", what, where,
               obj);
  std::fflush(stderr);
  std::abort();
}

/// Shadow membership set. Pools mirror their set of live (acquired) objects
/// here; the engine mirrors its tail-block spare list. Both directions of
/// corruption are caught at the corrupting call, not at the later crash:
/// inserting a member twice is a double-acquire/double-recycle, removing a
/// non-member is a double-release or a foreign pointer.
class LiveSet {
 public:
  explicit LiveSet(const char* what) : what_(what) {}

  void insert(const void* p, const char* where) {
    if (!members_.insert(p).second) fail_with("inserted twice into", where, p);
  }
  void remove(const void* p, const char* where) {
    if (members_.erase(p) == 0) fail_with("not a member of", where, p);
  }
  void expect(const void* p, const char* where) const {
    if (members_.count(p) == 0) fail_with("used after leaving", where, p);
  }
  bool contains(const void* p) const { return members_.count(p) != 0; }
  std::size_t size() const { return members_.size(); }
  void clear() { members_.clear(); }

 private:
  [[noreturn]] void fail_with(const char* verb, const char* where,
                              const void* p) const {
    char msg[160];
    std::snprintf(msg, sizeof msg, "object %s the %s shadow set", verb, what_);
    fail(msg, where, p);
  }

  const char* what_;
  std::unordered_set<const void*> members_;
};

/// Virtual-time race detector over the engine's dispatch sequence.
///
/// Model: dispatch step N happens-before step M iff walking M's cause chain
/// (each event remembers the step during which it was scheduled; work an
/// actor does is attributed to the dispatch that granted it the control
/// token) reaches N. Two touches of the same live object at the same
/// virtual time whose steps are NOT so ordered — and which did not come from
/// the same actor, whose slices are program-ordered — were serialized purely
/// by the queue's (time, seq) tie-break. That order is deterministic today,
/// but any change in event insertion order silently flips it; the auditor
/// reports it as a race instead of letting the fragility hide.
///
/// The cause chain lives in a fixed ring (2^20 dispatches ≈ 16 MB); a walk
/// that falls off the ring's history treats the pair as ordered, so very
/// long gaps degrade to fewer reports, never to false ones.
class RaceTracker {
 public:
  /// Record the cause (scheduling step) of the event dispatched at `step`.
  void on_dispatch(std::uint64_t step, std::uint64_t cause) {
    Entry& e = ring_[step & kRingMask];
    e.step = step;
    e.cause = cause;
  }

  /// A fresh live object (just acquired): forget any prior generation that
  /// lived at this address, so recycling never chains unrelated touches.
  void begin(const void* obj) { last_.erase(obj); }

  /// The object left its live generation (released): stop tracking it.
  void end(const void* obj) { last_.erase(obj); }

  void touch(const void* obj, Time now, std::uint64_t step, int actor,
             const char* where) {
    auto [it, fresh] = last_.try_emplace(obj, Touch{now, step, actor});
    if (!fresh) {
      const Touch prev = it->second;
      it->second = Touch{now, step, actor};
      if (prev.t == now && prev.step != step &&
          !(prev.actor >= 0 && prev.actor == actor) &&
          !ordered(prev.step, step)) {
        fail("virtual-time race: two unordered entities touched the object "
             "at the same virtual time (serialization depends on queue "
             "tie-breaking)",
             where, obj);
      }
    }
  }

 private:
  static constexpr std::size_t kRingBits = 20;
  static constexpr std::uint64_t kRingMask = (1u << kRingBits) - 1;

  /// True iff `prev` happens-before `cur` via the cause chain (or the chain
  /// left the ring's history, in which case we assume ordered).
  bool ordered(std::uint64_t prev, std::uint64_t cur) const {
    std::uint64_t s = cur;
    while (s > prev) {
      const Entry& e = ring_[s & kRingMask];
      if (e.step != s) return true;  // evicted from the ring: be conservative
      s = e.cause;
    }
    return s == prev;
  }

  struct Entry {
    std::uint64_t step = ~std::uint64_t{0};
    std::uint64_t cause = 0;
  };
  struct Touch {
    Time t;
    std::uint64_t step;
    int actor;  // -1 when the touch came from event/handler context
  };
  std::vector<Entry> ring_ = std::vector<Entry>(1u << kRingBits);
  std::unordered_map<const void*, Touch> last_;
};

}  // namespace splap::audit
