// CRC-32 (IEEE 802.3 reflected polynomial), table-driven.
//
// Used for the LAPI end-to-end payload integrity check: the origin stamps
// every data-bearing packet's descriptor with the CRC of its payload bytes,
// and the target discards any packet whose delivered bytes no longer match
// (corruption injected by the fault model, see net/fault.hpp) — the
// retransmission layer then recovers it exactly like a loss. CRC-32 is
// linear, so any single-byte flip is guaranteed to change the checksum.
//
// No virtual time is charged for checksumming: it models the adapter's
// hardware CRC engine, not protocol CPU.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace splap {

inline std::uint32_t crc32(const std::byte* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ static_cast<std::uint32_t>(data[i])) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

/// Never-zero variant for wire fields where 0 means "no checksum carried".
inline std::uint32_t crc32_nz(const std::byte* data, std::size_t len) {
  const std::uint32_t c = crc32(data, len);
  return c == 0 ? 1u : c;
}

}  // namespace splap
