// Error codes shared by the LAPI, MPL and GA layers.
//
// The public C-style entry points report failures through these codes (like
// the real LAPI's LAPI_* return values); internal programming errors use
// SPLAP_REQUIRE and terminate loudly, because a simulation that continues
// past a broken invariant produces silently wrong performance numbers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace splap {

// [[nodiscard]] on the type: a dropped Status is a swallowed failure, and
// every silent failure in a simulator shows up later as a wrong number with
// no trail. Intentional discards say so with (void).
enum class [[nodiscard]] Status {
  kOk = 0,
  kBadParameter,     // out-of-range task id, negative length, null pointer
  kBadHandle,        // operation on an uninitialized/terminated context
  kTruncated,        // receive buffer smaller than matched message
  kNoProgress,       // polling-mode wait that can never be satisfied
  kDeadlock,         // engine detected that no actor can ever run again
  kResourceExhausted,// buffer pool / retransmit window exhausted
  kPeerFailed,       // the remote task crashed (crash-stop node failure)
  kPeerSuspected,    // a peer is suspected (gray failure): progress degraded,
                     // sends quarantined, but no death verdict — may heal
  kUnknown,
};

constexpr std::string_view to_string(Status s) {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kBadParameter: return "BAD_PARAMETER";
    case Status::kBadHandle: return "BAD_HANDLE";
    case Status::kTruncated: return "TRUNCATED";
    case Status::kNoProgress: return "NO_PROGRESS";
    case Status::kDeadlock: return "DEADLOCK";
    case Status::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case Status::kPeerFailed: return "PEER_FAILED";
    case Status::kPeerSuspected: return "PEER_SUSPECTED";
    case Status::kUnknown: return "UNKNOWN";
  }
  return "INVALID_STATUS";
}

[[noreturn]] inline void require_failed(const char* cond, const char* file,
                                        int line, const char* msg) {
  std::fprintf(stderr, "splap: requirement failed: %s (%s) at %s:%d\n", msg,
               cond, file, line);
  std::abort();
}

}  // namespace splap

/// Hard precondition/invariant check. Always on: the simulator's value is its
/// trustworthiness, so invariant checks are never compiled out.
#define SPLAP_REQUIRE(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) ::splap::require_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
