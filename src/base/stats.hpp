// Small statistics helpers used by the benchmark harnesses and by internal
// instrumentation counters (packets sent, copies performed, retransmissions).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.hpp"

namespace splap {

/// Welford running mean/variance plus min/max.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

  void reset() { *this = RunningStat{}; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Named monotonically increasing counter set, used to assert protocol-level
/// properties in tests ("exactly one copy on this path", "N retransmits").
class CounterSet {
 public:
  // string_view keys: callers bump with string literals on per-packet paths,
  // and a std::string parameter would allocate a temporary on every call.
  // The string is materialized only when a counter is first created.
  void bump(std::string_view name, std::int64_t by = 1) {
    for (auto& kv : counters_) {
      if (kv.first == name) {
        kv.second += by;
        return;
      }
    }
    counters_.emplace_back(std::string(name), by);
  }

  std::int64_t get(std::string_view name) const {
    for (const auto& kv : counters_) {
      if (kv.first == name) return kv.second;
    }
    return 0;
  }

  const std::vector<std::pair<std::string, std::int64_t>>& all() const {
    return counters_;
  }

  void reset() { counters_.clear(); }

 private:
  std::vector<std::pair<std::string, std::int64_t>> counters_;
};

}  // namespace splap
