// Small statistics helpers used by the benchmark harnesses and by internal
// instrumentation counters (packets sent, copies performed, retransmissions).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.hpp"

namespace splap {

/// Welford running mean/variance plus min/max.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

  void reset() { *this = RunningStat{}; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Which of a counter's per-thread cells this thread bumps into. 0 is the
/// serial engine/actor context (those never run concurrently: the engine's
/// control-token handoff serializes them); the parallel window executor
/// assigns each worker lane its own stripe before running events.
inline thread_local int tls_counter_stripe = 0;

/// Named monotonically increasing counter set, used to assert protocol-level
/// properties in tests ("exactly one copy on this path", "N retransmits").
///
/// Two concerns shape the layout:
///   - per-packet paths must not pay a name lookup per bump, so hot callers
///     resolve a Handle once at construction and bump through it;
///   - worker lanes of the parallel window executor bump concurrently, so
///     each counter holds one cache-line-padded cell per stripe and readers
///     sum the stripes (reads happen on the engine thread after the window
///     join, which supplies the happens-before edge).
class CounterSet {
  struct alignas(64) Cell {
    std::int64_t v = 0;
  };

 public:
  // One stripe for the serial engine/actor context plus one per worker lane
  // (the executor caps its lane count at kStripes - 1).
  static constexpr int kStripes = 9;

 private:
  struct Entry {
    std::string name;
    Cell cells[kStripes];
    std::int64_t sum() const {
      std::int64_t s = 0;
      for (const auto& c : cells) s += c.v;
      return s;
    }
  };

 public:
  /// A resolved counter: bump() is one indexed add, no name lookup. Handles
  /// stay valid for the CounterSet's lifetime (entries live in a deque and
  /// never move); reset() zeroes values but keeps entries, so cached handles
  /// survive it.
  class Handle {
   public:
    Handle() = default;
    void bump(std::int64_t by = 1) const {
      e_->cells[tls_counter_stripe].v += by;
    }

   private:
    friend class CounterSet;
    explicit Handle(Entry* e) : e_(e) {}
    Entry* e_ = nullptr;
  };

  /// Serialize name resolution (handle creation scans and may grow the entry
  /// deque). Flipped on by Engine::set_exec_threads; bumps through cached
  /// Handles stay lock-free either way.
  void set_locked(bool on) { locked_ = on; }

  /// Find-or-create the named counter and return its stable handle.
  Handle handle(std::string_view name) {
    if (locked_) {
      std::lock_guard<std::mutex> lk(mu_);
      return handle_impl(name);
    }
    return handle_impl(name);
  }

  // string_view keys: callers bump with string literals, and a std::string
  // parameter would allocate a temporary on every call. The string is
  // materialized only when a counter is first created. Hot paths should
  // resolve a Handle once instead (no per-bump name scan).
  void bump(std::string_view name, std::int64_t by = 1) {
    handle(name).bump(by);
  }

  std::int64_t get(std::string_view name) const {
    for (const auto& e : entries_) {
      if (e.name == name) return e.sum();
    }
    return 0;
  }

  /// Every counter that currently holds a nonzero value, in creation order.
  /// Zero-valued entries are skipped: reset() zeroes values but keeps the
  /// entries alive so cached Handles stay valid across it.
  std::vector<std::pair<std::string, std::int64_t>> all() const {
    std::vector<std::pair<std::string, std::int64_t>> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) {
      const std::int64_t s = e.sum();
      if (s != 0) out.emplace_back(e.name, s);
    }
    return out;
  }

  void reset() {
    for (auto& e : entries_) {
      for (auto& c : e.cells) c.v = 0;
    }
  }

 private:
  Handle handle_impl(std::string_view name) {
    for (auto& e : entries_) {
      if (e.name == name) return Handle(&e);
    }
    entries_.emplace_back();
    entries_.back().name = std::string(name);
    return Handle(&entries_.back());
  }

  // deque: entry addresses (and therefore Handles) survive growth.
  std::deque<Entry> entries_;
  bool locked_ = false;
  std::mutex mu_;
};

}  // namespace splap
