// Minimal leveled logger for the simulator. Off (kWarn) by default so test
// and benchmark output stays clean; tests that diagnose protocol behaviour
// raise the level locally. Thread-safe: actor threads and the engine thread
// may log concurrently during handoff windows.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <mutex>

#include "base/time.hpp"

namespace splap {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

class Log {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::kWarn;
    return lvl;
  }

  static bool enabled(LogLevel lvl) { return lvl <= level(); }

  // printf-style; `when` is the virtual time of the event being logged
  // (kNoTime when outside the simulation).
  [[gnu::format(printf, 3, 4)]]
  static void write(LogLevel lvl, Time when, const char* fmt, ...) {
    if (!enabled(lvl)) return;
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    if (when == kNoTime) {
      std::fprintf(stderr, "[%s] ", tag(lvl));
    } else {
      std::fprintf(stderr, "[%s %10.3fus] ", tag(lvl), to_us(when));
    }
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
  }

 private:
  static const char* tag(LogLevel lvl) {
    switch (lvl) {
      case LogLevel::kError: return "E";
      case LogLevel::kWarn: return "W";
      case LogLevel::kInfo: return "I";
      case LogLevel::kDebug: return "D";
    }
    return "?";
  }
};

}  // namespace splap

#define SPLAP_LOG(lvl, when, ...)                            \
  do {                                                       \
    if (::splap::Log::enabled(lvl))                          \
      ::splap::Log::write((lvl), (when), __VA_ARGS__);       \
  } while (false)

#define SPLAP_DEBUG(when, ...) \
  SPLAP_LOG(::splap::LogLevel::kDebug, (when), __VA_ARGS__)
#define SPLAP_INFO(when, ...) \
  SPLAP_LOG(::splap::LogLevel::kInfo, (when), __VA_ARGS__)
#define SPLAP_WARN(when, ...) \
  SPLAP_LOG(::splap::LogLevel::kWarn, (when), __VA_ARGS__)
