// Calibrated cost model of the simulated IBM RS/6000 SP (120 MHz P2SC nodes,
// SP switch + TB3-class adapter, AIX user-space protocol).
//
// Every virtual-time charge in the simulator comes from one of these
// constants, so the whole machine is calibrated in one place. The defaults
// are tuned so the measurements in Section 4 of the paper come out of the
// simulation with the right values and — more importantly — the right
// *shape*:
//
//   Table 2: LAPI polling 34us / polling RT 60us / interrupt RT 89us,
//            MPI polling 43us / polling RT 86us, MPL rcvncall intr RT 200us.
//   Sect 4:  Put pipeline latency 16us, Get 19us.
//   Fig 2:   asymptotic 97 MB/s (LAPI) vs 98 MB/s (MPI, larger payload per
//            1 KiB packet: 16 B header vs 48 B), n_1/2 = 8 KB vs 23 KB,
//            rendezvous flattening above the 4 KB default eager limit.
//
// tests/calibration_test.cpp locks the derived measurements into bands around
// the paper's numbers so the calibration cannot silently drift.
#pragma once

#include <cstdint>

#include "base/time.hpp"

namespace splap {

struct CostModel {
  // --- SP switch fabric -----------------------------------------------
  /// Maximum bytes on the wire per packet, protocol header included.
  std::int64_t packet_bytes = 1024;
  /// LAPI packet header: the origin must ship all target-side parameters
  /// (Section 4 of the paper), hence the larger header.
  std::int64_t lapi_header_bytes = 48;
  /// MPI/MPL packet header (matching envelope handled at higher layer).
  std::int64_t mpi_header_bytes = 16;
  /// Link serialization rate (decimal MB/s), Section 1: "up to 110 MB/s".
  double wire_mb_s = 110.0;
  /// Per-packet gap on the wire/adapter pipeline. Together with packet size
  /// this sets the asymptotic packet rate: (1024/110 + 0.7)us per packet
  /// => 976 B payload / 10.01 us = 97.5 MB/s for LAPI.
  Time wire_gap = nanoseconds(700);
  /// Number of distinct switch routes between any node pair; consecutive
  /// packets round-robin across routes (this is what makes delivery
  /// genuinely out of order on the SP).
  int routes_per_pair = 4;
  /// Propagation latency of route 0.
  Time route_latency = nanoseconds(900);
  /// Additional latency per route index (route r costs route_latency +
  /// r * route_skew), so spraying reorders back-to-back packets.
  Time route_skew = nanoseconds(350);
  /// Adapter-side DMA/processing per packet, each direction.
  Time adapter_tx = nanoseconds(700);
  Time adapter_rx = nanoseconds(700);

  // --- node / OS ---------------------------------------------------------
  /// memcpy bandwidth of a P2SC node (decimal MB/s). Cache-sensitive:
  /// protocol-sized copies (eager buffers, AM chunks) run at the in-cache
  /// rate; bulk copies spill and drop to the out-of-cache rate — of the
  /// same order as the 110 MB/s link, which is why redundant memory copies
  /// are what separate the implementations at scale (Section 5.4: the
  /// biggest GA gains come from 1-D transfers because they "avoid redundant
  /// memory copies").
  double copy_mb_s = 350.0;
  double copy_large_mb_s = 160.0;
  std::int64_t copy_cache_bytes = 64 * 1024;
  /// Cost of taking a hardware interrupt and getting into the dispatcher
  /// ("the cost of interrupts is fairly high", Section 1). Calibrated from
  /// the 60us -> 89us polling->interrupt round-trip delta: ~14.5us each.
  Time interrupt_cost = microseconds(14.5);
  /// AIX overhead of creating the rcvncall handler context (Section 5.2
  /// attributes the old >300us GA get latency to this).
  Time rcvncall_context = microseconds(40.0);

  // --- LAPI software path --------------------------------------------
  /// CPU time in a LAPI call before per-packet work starts (argument
  /// checking, state setup). Put pipeline latency = lapi_call + lapi_pkt_tx.
  Time lapi_call = microseconds(9.0);
  /// Extra origin CPU for Get: builds and ships a request descriptor
  /// (pipeline latency 19us vs 16us for Put).
  Time lapi_get_extra = microseconds(3.0);
  /// Entry cost when a LAPI call is issued back-to-back with the return of
  /// a previous LAPI call (warm caches/library state). This is why the
  /// polling round-trip (60us) is cheaper than two one-way latencies: the
  /// echoing task leaves LAPI_Waitcntr and immediately re-enters the
  /// library.
  Time lapi_call_warm = microseconds(1.0);
  /// Origin CPU to prepare and inject one packet (includes the internal
  /// copy of small messages into the retransmit buffer).
  Time lapi_pkt_tx = microseconds(7.0);
  /// Dispatcher entry: recognizing a new message and demultiplexing
  /// (charged on the first packet of a message).
  Time lapi_dispatch = microseconds(11.0);
  /// Reduced dispatcher entry for a message that arrives while the
  /// dispatcher is already active on earlier traffic — Section 5.3.1:
  /// pipelined messages "are processed by LAPI with reduced overhead
  /// compared to the cost of processing a single message".
  Time lapi_dispatch_pipelined = microseconds(2.5);
  /// Per-message delivery tail: invoking the header handler, copying the
  /// (small) payload, updating the target counter.
  Time lapi_deliver = microseconds(4.2);
  /// Per-packet dispatcher cost for follow-on packets of an already-open
  /// message (no header-handler invocation).
  Time lapi_pkt_rx = microseconds(2.0);
  /// Dispatcher cost of processing a protocol ack at the origin.
  Time lapi_ack = microseconds(8.0);
  /// Pure acknowledgements are delayed (coalescing timer) before they go on
  /// the wire. This keeps acks off the critical one-way path, and is what
  /// separates the one-way latency (34us, target counter) from the origin's
  /// completion-counter round trip — the fixed overhead that puts the LAPI
  /// half-bandwidth point at ~8 KB (Figure 2).
  Time lapi_ack_delay = microseconds(50.0);
  /// After the dispatcher drains its queue it lingers polling the adapter
  /// before re-arming the interrupt. Packets of a pipelined stream arriving
  /// within this window are absorbed without fresh interrupts
  /// (Section 5.3.1); it must exceed the ~10us full-packet wire spacing.
  Time dispatch_linger = microseconds(12.0);
  /// Messages at or below this size are copied into the internal
  /// retransmit buffer so the origin counter can fire immediately
  /// (Section 5.3.1: "LAPI internally copies smaller messages ... sends the
  /// message, and returns immediately"). Larger messages are sent zero-copy
  /// from the pinned user buffer, which stays unavailable until the data
  /// ack returns — this is why MPL's bigger send buffering wins the GA put
  /// race between 1 KB and 20 KB in Figure 3.
  std::int64_t lapi_bcopy_limit = 1024;
  /// Target-side CPU to schedule a completion handler on a service thread.
  Time lapi_cmpl_dispatch = microseconds(3.0);

  // --- registered-memory zero-copy path (rdma_enabled) -------------------
  /// Header of a zero-copy data packet. The adapter DMA engine steers the
  /// payload with a steering tag + offset instead of the full LAPI
  /// target-side parameter block, so the header shrinks to MPI envelope
  /// size and each 1 KiB packet carries 1008 B of payload (vs 976 B on the
  /// store-and-forward path).
  std::int64_t rdma_header_bytes = 16;
  /// Target-side per-packet cost when the adapter lands the payload
  /// directly into the registered region: no dispatcher copy, just the
  /// bookkeeping to retire the descriptor. Replaces lapi_pkt_rx + the
  /// copy_time() charge of the staged path.
  Time rdma_pkt_rx = nanoseconds(300);
  /// Fixed cost of registering (pinning) a memory region with the adapter:
  /// syscall + translation setup. Paid once per region per incarnation on a
  /// registration-cache miss; a hit is free.
  Time rdma_pin_base = microseconds(40.0);
  /// Per-page translation-table entry cost of a registration.
  Time rdma_pin_per_page = nanoseconds(400);
  std::int64_t rdma_page_bytes = 4096;

  // --- MPI / MPL software path ------------------------------------------
  /// CPU time in a send call before injection (argument checking, envelope
  /// construction, protocol selection).
  Time mpi_send = microseconds(14.0);
  /// CPU time to post a receive (descriptor onto the posted queue).
  Time mpi_post = microseconds(2.0);
  /// Receive-side matching + queue management, charged when a message meets
  /// its posted receive (first packet).
  Time mpi_match = microseconds(26.5);
  /// Per-packet receive-side sequencing cost: MPL/MPI guarantee in-order
  /// delivery, so every packet pays a reorder/bookkeeping charge LAPI does
  /// not ("LAPI has no ordering requirements", Section 4).
  Time mpi_pkt_rx = microseconds(0.25);
  /// Origin CPU to prepare and inject one packet.
  Time mpi_pkt_tx = microseconds(6.0);
  /// CPU to emit a small internal control message (CTS, ack).
  Time mpi_ctl = microseconds(10.0);
  /// Rendezvous restart penalty at the sender once the CTS arrives: buffer
  /// re-pinning, credit update and send-queue re-entry. Together with the
  /// RTS/CTS round trip this produces the flattened default-MPI curve above
  /// the 4 KB eager limit and pushes the MPI half-bandwidth point toward the
  /// paper's 23 KB (vs 8 KB for LAPI).
  Time mpi_rndv_restart = microseconds(60.0);
  /// Default eager limit (bytes): above this, rendezvous (RTS/CTS) is used.
  /// MP_EAGER_LIMIT in the paper; default 4 KB, max 64 KB.
  std::int64_t mpi_eager_limit = 4096;

  // --- Global Arrays layer -------------------------------------------------
  /// Origin-side CPU per GA operation: argument checking, locality
  /// resolution, protocol selection, the Fortran-heritage interface layers.
  /// Calibrated from Section 5.4: GA put latency 49.6us = this + the 16us
  /// Put pipeline; GA get 94.2us = this + the LAPI_Get round trip.
  Time ga_op_overhead = microseconds(32.0);
  /// Target-side fixed CPU in a GA active-message handler (descriptor
  /// decode, address computation) on top of the data copy.
  Time ga_deliver = microseconds(1.5);
  /// Extra origin CPU in the MPL backend to assemble the combined
  /// header+data request message that MPL's in-order progress rule forces
  /// (Section 5.4).
  Time ga_mpl_marshal = microseconds(8.0);
  /// Target-side CPU of the old GA's rcvncall request handler beyond the
  /// rcvncall context costs (locate, buffer management, reply setup).
  /// Calibrated from the Section 5.4 GA-MPL get latency of 221us.
  Time ga_mpl_serve = microseconds(35.0);

  // --- derived helpers ----------------------------------------------------
  std::int64_t lapi_payload() const { return packet_bytes - lapi_header_bytes; }
  std::int64_t mpi_payload() const { return packet_bytes - mpi_header_bytes; }
  std::int64_t rdma_payload() const { return packet_bytes - rdma_header_bytes; }

  /// Cost of pinning a `bytes`-long region for adapter DMA.
  Time pin_time(std::int64_t bytes) const {
    const std::int64_t pages =
        (bytes + rdma_page_bytes - 1) / rdma_page_bytes;
    return rdma_pin_base + pages * rdma_pin_per_page;
  }

  /// Wire occupancy of one packet carrying `payload` bytes plus `header`.
  Time wire_time(std::int64_t header, std::int64_t payload) const {
    return transfer_time(header + payload, wire_mb_s) + wire_gap;
  }

  /// Cost of copying `bytes` through the node memory system: in-cache rate
  /// up to copy_cache_bytes, out-of-cache rate beyond (continuous).
  Time copy_time(std::int64_t bytes) const {
    if (bytes <= copy_cache_bytes) return transfer_time(bytes, copy_mb_s);
    return transfer_time(copy_cache_bytes, copy_mb_s) +
           transfer_time(bytes - copy_cache_bytes, copy_large_mb_s);
  }
};

}  // namespace splap
