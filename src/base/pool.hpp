// Fixed-size buffer pool used for active-message receive buffers.
//
// Section 5.3.1 of the paper explains why GA cannot use dynamic allocation in
// the header handler (the handler must not block or return NULL, and under
// contention arrival rate can exceed consumption rate). The pool makes the
// capacity explicit: acquisition either succeeds immediately or reports
// exhaustion so the caller can fall back (GA falls back to its round-trip
// protocol for large requests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/status.hpp"

namespace splap {

class BufferPool {
 public:
  BufferPool(std::size_t buffer_bytes, std::size_t count)
      : buffer_bytes_(buffer_bytes),
        storage_(buffer_bytes * count) {
    free_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      free_.push_back(storage_.data() + i * buffer_bytes);
    }
    total_ = count;
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a buffer of `buffer_bytes()` or nullptr when exhausted.
  std::byte* try_acquire() {
    if (free_.empty()) {
      ++exhaustions_;
      return nullptr;
    }
    std::byte* b = free_.back();
    free_.pop_back();
    if (total_ - free_.size() > high_water_) high_water_ = total_ - free_.size();
    return b;
  }

  void release(std::byte* b) {
    SPLAP_REQUIRE(owns(b), "releasing a buffer this pool does not own");
    SPLAP_REQUIRE(free_.size() < total_, "double release into buffer pool");
    free_.push_back(b);
  }

  bool owns(const std::byte* b) const {
    return b >= storage_.data() && b < storage_.data() + storage_.size() &&
           (b - storage_.data()) % static_cast<std::ptrdiff_t>(buffer_bytes_) == 0;
  }

  std::size_t buffer_bytes() const { return buffer_bytes_; }
  std::size_t capacity() const { return total_; }
  std::size_t in_use() const { return total_ - free_.size(); }
  std::size_t high_water() const { return high_water_; }
  std::int64_t exhaustions() const { return exhaustions_; }

 private:
  std::size_t buffer_bytes_;
  std::vector<std::byte> storage_;
  std::vector<std::byte*> free_;
  std::size_t total_ = 0;
  std::size_t high_water_ = 0;
  std::int64_t exhaustions_ = 0;
};

}  // namespace splap
