// Recycling pools shared by the simulator's hot paths.
//
// BufferPool: fixed-capacity buffers for active-message receive staging.
// Section 5.3.1 of the paper explains why GA cannot use dynamic allocation in
// the header handler (the handler must not block or return NULL, and under
// contention arrival rate can exceed consumption rate). The pool makes the
// capacity explicit: acquisition either succeeds immediately or reports
// exhaustion so the caller can fall back (GA falls back to its round-trip
// protocol for large requests).
//
// SlabBufferPool / ObjectPool: growable free lists for the discrete-event
// engine and fabric hot paths (event nodes, packet payloads, in-flight
// records), where steady state must be allocation-free but peak population
// is workload-dependent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "base/audit.hpp"
#include "base/status.hpp"

namespace splap {

/// Process-wide cache of slabs that are KNOWN to be all-zero, shared across
/// SlabBufferPool lifetimes (the same idea as an OS zero-page pool or an
/// allocator's retained zeroed extents). A pool that dies with every buffer
/// returned still-zero donates its slabs here; the next pool of the same
/// geometry takes them back and can hand out buffers whose zero fill has
/// already happened. Workloads that build a machine per run (benchmark
/// iterations, parameter sweeps) then zero each payload byte exactly once
/// per process instead of once per run.
class ZeroSlabCache {
 public:
  static ZeroSlabCache& instance() {
    static ZeroSlabCache cache;
    return cache;
  }

  /// A cached all-zero slab of exactly `bytes`, or nullptr.
  std::unique_ptr<std::byte[]> take(std::size_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& e : slabs_) {
      if (e.bytes == bytes && e.slab != nullptr) {
        held_bytes_ -= bytes;
        return std::move(e.slab);
      }
    }
    return nullptr;
  }

  /// Donate a slab the caller guarantees is entirely zero. The cache is
  /// bounded; beyond the cap the slab is simply freed.
  void put(std::size_t bytes, std::unique_ptr<std::byte[]> slab) {
    std::lock_guard<std::mutex> lock(mu_);
    if (held_bytes_ + bytes > kMaxHeldBytes) return;  // slab freed here
    held_bytes_ += bytes;
    for (auto& e : slabs_) {
      if (e.slab == nullptr) {
        e = Entry{bytes, std::move(slab)};
        return;
      }
    }
    slabs_.emplace_back(bytes, std::move(slab));
  }

 private:
  static constexpr std::size_t kMaxHeldBytes = 64u << 20;
  struct Entry {
    std::size_t bytes;
    std::unique_ptr<std::byte[]> slab;
  };
  std::mutex mu_;
  std::vector<Entry> slabs_;
  std::size_t held_bytes_ = 0;
};

class BufferPool {
 public:
  BufferPool(std::size_t buffer_bytes, std::size_t count)
      : buffer_bytes_(buffer_bytes),
        storage_(buffer_bytes * count) {
    free_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      free_.push_back(storage_.data() + i * buffer_bytes);
    }
    total_ = count;
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a buffer of `buffer_bytes()` or nullptr when exhausted.
  std::byte* try_acquire() {
    if (free_.empty()) {
      ++exhaustions_;
      return nullptr;
    }
    std::byte* b = free_.back();
    free_.pop_back();
    if (total_ - free_.size() > high_water_) high_water_ = total_ - free_.size();
#ifdef SPLAP_AUDIT
    audit_live_.insert(b, "BufferPool::try_acquire");
#endif
    return b;
  }

  void release(std::byte* b) {
    SPLAP_REQUIRE(owns(b), "releasing a buffer this pool does not own");
    SPLAP_REQUIRE(free_.size() < total_, "double release into buffer pool");
#ifdef SPLAP_AUDIT
    // The SPLAP_REQUIREs above catch foreign pointers and free-list
    // overflow; the shadow set additionally pins double release of one
    // specific buffer while others are still outstanding.
    audit_live_.remove(b, "BufferPool::release");
#endif
    free_.push_back(b);
  }

  bool owns(const std::byte* b) const {
    return b >= storage_.data() && b < storage_.data() + storage_.size() &&
           (b - storage_.data()) % static_cast<std::ptrdiff_t>(buffer_bytes_) == 0;
  }

  std::size_t buffer_bytes() const { return buffer_bytes_; }
  std::size_t capacity() const { return total_; }
  std::size_t in_use() const { return total_ - free_.size(); }
  std::size_t high_water() const { return high_water_; }
  std::int64_t exhaustions() const { return exhaustions_; }

 private:
  std::size_t buffer_bytes_;
  std::vector<std::byte> storage_;
  std::vector<std::byte*> free_;
  std::size_t total_ = 0;
  std::size_t high_water_ = 0;
  std::int64_t exhaustions_ = 0;
#ifdef SPLAP_AUDIT
  audit::LiveSet audit_live_{"BufferPool live-buffer"};
#endif
};

/// Growable recycling pool of fixed-size byte buffers, used for hot-path
/// objects whose peak population is workload-dependent (in-flight packet
/// payloads): unlike BufferPool it never reports exhaustion — it grows by a
/// slab — but in steady state every acquire is a free-list pop and every
/// release a push, with zero allocator traffic. `capacity()` is therefore the
/// observable for "did the workload reach steady state": it stops growing
/// once the in-flight high-water mark has been seen.
class SlabBufferPool {
 public:
  explicit SlabBufferPool(std::size_t buffer_bytes,
                          std::size_t buffers_per_slab = 32)
      : buffer_bytes_(buffer_bytes),
        buffers_per_slab_(buffers_per_slab == 0 ? 1 : buffers_per_slab) {}

  SlabBufferPool(const SlabBufferPool&) = delete;
  SlabBufferPool& operator=(const SlabBufferPool&) = delete;

  ~SlabBufferPool() {
    // If every buffer came home still fully zero, the slabs are provably
    // all-zero end to end — donate them so the next pool of this geometry
    // skips both the allocation and the zeroing.
    if (free_.size() != total_ || slabs_.empty()) return;
    for (const Buffer& b : free_) {
      if (b.zeroed < buffer_bytes_) return;
    }
    const std::size_t slab_bytes = buffer_bytes_ * buffers_per_slab_;
    for (auto& slab : slabs_) {
      ZeroSlabCache::instance().put(slab_bytes, std::move(slab));
    }
  }

  /// A pooled buffer plus its zero guarantee: bytes [0, zeroed) are known to
  /// be zero. Callers that only ever zero-fill a recycled buffer (the packet
  /// path: resize + deliver, no payload writes) get their fill for free on
  /// every reuse — the same idea as an OS handing out pre-zeroed pages.
  struct Buffer {
    std::byte* data;
    std::uint32_t zeroed;
  };

  /// Opt into internal locking: acquire/release become safe to call from the
  /// parallel window executor's worker lanes. Off by default — the serial
  /// engine guarantees exclusive access and pays nothing.
  void set_locked(bool on) { locked_ = on; }

  Buffer acquire() {
    if (locked_) {
      std::lock_guard<std::mutex> lock(mu_);
      return acquire_impl();
    }
    return acquire_impl();
  }

  /// `zeroed` is the caller's guarantee about the returned buffer's prefix;
  /// pass 0 when unsure — correctness never depends on it, only fill cost.
  void release(std::byte* b, std::uint32_t zeroed = 0) {
    SPLAP_REQUIRE(b != nullptr, "releasing a null buffer");
    if (locked_) {
      std::lock_guard<std::mutex> lock(mu_);
      release_impl(b, zeroed);
      return;
    }
    release_impl(b, zeroed);
  }

  std::size_t buffer_bytes() const { return buffer_bytes_; }
  /// Buffers allocated so far (monotone; constant once steady state hit).
  std::size_t capacity() const { return total_; }
  std::size_t in_use() const { return total_ - free_.size(); }
  std::size_t high_water() const { return high_water_; }

 private:
  Buffer acquire_impl() {
    if (free_.empty()) grow();
    Buffer b = free_.back();
    free_.pop_back();
    if (total_ - free_.size() > high_water_) high_water_ = total_ - free_.size();
#ifdef SPLAP_AUDIT
    audit_live_.insert(b.data, "SlabBufferPool::acquire");
#endif
    return b;
  }

  void release_impl(std::byte* b, std::uint32_t zeroed) {
#ifdef SPLAP_AUDIT
    audit_live_.remove(b, "SlabBufferPool::release");
#endif
    free_.push_back(Buffer{b, zeroed});
  }

  void grow() {
    const std::size_t slab_bytes = buffer_bytes_ * buffers_per_slab_;
    std::unique_ptr<std::byte[]> slab =
        ZeroSlabCache::instance().take(slab_bytes);
    if (slab == nullptr) {
      // Value-initialized on purpose: one bulk zeroing here is what lets
      // every buffer start with a full zeroed-prefix guarantee, making the
      // per-packet zero fill in Payload::resize free — and lets the whole
      // slab be donated back to the ZeroSlabCache if it stays clean.
      slab = std::make_unique<std::byte[]>(slab_bytes);
    }
    slabs_.push_back(std::move(slab));
    std::byte* base = slabs_.back().get();
    free_.reserve(free_.size() + buffers_per_slab_);
    for (std::size_t i = buffers_per_slab_; i-- > 0;) {
      free_.push_back(Buffer{base + i * buffer_bytes_,
                             static_cast<std::uint32_t>(buffer_bytes_)});
    }
    total_ += buffers_per_slab_;
  }

  std::size_t buffer_bytes_;
  std::size_t buffers_per_slab_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::vector<Buffer> free_;
  std::size_t total_ = 0;
  std::size_t high_water_ = 0;
  bool locked_ = false;
  std::mutex mu_;
#ifdef SPLAP_AUDIT
  audit::LiveSet audit_live_{"SlabBufferPool live-buffer"};
#endif
};

/// Growable recycling pool of default-constructed T. Objects come back from
/// release() un-destructed: the caller resets whatever state matters before
/// reuse (the discrete-event engine recycles event nodes this way, the fabric
/// its in-flight packet records). Slab storage means pointers stay stable for
/// the pool's lifetime, so recycled objects can be referenced from scheduled
/// events.
template <class T>
class ObjectPool {
 public:
  explicit ObjectPool(std::size_t objects_per_slab = 64)
      : objects_per_slab_(objects_per_slab == 0 ? 1 : objects_per_slab) {}

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// Opt into internal locking for the parallel window executor's worker
  /// lanes. Off by default: serial callers pay one predicted branch.
  void set_locked(bool on) { locked_ = on; }

  T* acquire() {
    if (locked_) {
      std::lock_guard<std::mutex> lock(mu_);
      return acquire_impl();
    }
    return acquire_impl();
  }

  void release(T* p) {
    SPLAP_REQUIRE(p != nullptr, "releasing a null object");
    if (locked_) {
      std::lock_guard<std::mutex> lock(mu_);
      release_impl(p);
      return;
    }
    release_impl(p);
  }

  std::size_t capacity() const { return total_; }
  std::size_t in_use() const { return total_ - free_.size(); }
  std::size_t high_water() const { return high_water_; }

#ifdef SPLAP_AUDIT
  /// Audit builds only: abort if `p` is not currently acquired from this
  /// pool. Owners of recycled records call this before dereferencing one
  /// from a context that may have outlived it (a scheduled event, say).
  void audit_expect_live(const T* p, const char* where) const {
    audit_live_.expect(p, where);
  }
#endif

 private:
  T* acquire_impl() {
    if (free_.empty()) grow();
    T* p = free_.back();
    free_.pop_back();
    if (total_ - free_.size() > high_water_) high_water_ = total_ - free_.size();
#ifdef SPLAP_AUDIT
    audit_live_.insert(p, "ObjectPool::acquire");
#endif
    return p;
  }

  void release_impl(T* p) {
#ifdef SPLAP_AUDIT
    audit_live_.remove(p, "ObjectPool::release");
#endif
    free_.push_back(p);
  }

  void grow() {
    // Default-init, not value-init: T's constructor still runs, but padding
    // and any trailing uninitialized members are not zero-filled first. For
    // an 88-byte event node that halves the memory touched per slab.
    slabs_.push_back(std::make_unique_for_overwrite<T[]>(objects_per_slab_));
    T* base = slabs_.back().get();
    free_.reserve(free_.size() + objects_per_slab_);
    for (std::size_t i = objects_per_slab_; i-- > 0;) free_.push_back(base + i);
    total_ += objects_per_slab_;
  }

  std::size_t objects_per_slab_;
  std::vector<std::unique_ptr<T[]>> slabs_;
  std::vector<T*> free_;
  std::size_t total_ = 0;
  std::size_t high_water_ = 0;
  bool locked_ = false;
  std::mutex mu_;
#ifdef SPLAP_AUDIT
  audit::LiveSet audit_live_{"ObjectPool live-object"};
#endif
};

}  // namespace splap
