// Strided (2-D) memory helpers shared by the GA protocols and the MPL
// baseline: rectangular copies, pack/unpack to contiguous buffers, and the
// DAXPY-style accumulate kernel. All sizes in bytes except where noted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "base/status.hpp"

namespace splap {

/// Description of a rectangular byte region inside a column-major 2-D
/// allocation (GA arrays are column-major, following the HPF/Fortran heritage
/// of the Global Arrays toolkit): `cols` contiguous runs of `row_bytes`
/// separated by `ld_bytes` (leading-dimension stride, >= row_bytes).
struct StridedRegion {
  std::byte* base = nullptr;
  std::int64_t row_bytes = 0;  // contiguous run length
  std::int64_t cols = 0;       // number of runs
  std::int64_t ld_bytes = 0;   // stride between runs

  std::int64_t total_bytes() const { return row_bytes * cols; }
  bool contiguous() const { return cols <= 1 || ld_bytes == row_bytes; }
};

inline void copy_strided_to_contig(const StridedRegion& src, std::byte* dst) {
  SPLAP_REQUIRE(src.ld_bytes >= src.row_bytes, "bad stride");
  const std::byte* s = src.base;
  for (std::int64_t c = 0; c < src.cols; ++c) {
    std::memcpy(dst, s, static_cast<std::size_t>(src.row_bytes));
    dst += src.row_bytes;
    s += src.ld_bytes;
  }
}

inline void copy_contig_to_strided(const std::byte* src,
                                   const StridedRegion& dst) {
  SPLAP_REQUIRE(dst.ld_bytes >= dst.row_bytes, "bad stride");
  std::byte* d = dst.base;
  for (std::int64_t c = 0; c < dst.cols; ++c) {
    std::memcpy(d, src, static_cast<std::size_t>(dst.row_bytes));
    src += dst.row_bytes;
    d += dst.ld_bytes;
  }
}

inline void copy_strided(const StridedRegion& src, const StridedRegion& dst) {
  SPLAP_REQUIRE(src.row_bytes == dst.row_bytes && src.cols == dst.cols,
                "shape mismatch in strided copy");
  const std::byte* s = src.base;
  std::byte* d = dst.base;
  for (std::int64_t c = 0; c < src.cols; ++c) {
    std::memcpy(d, s, static_cast<std::size_t>(src.row_bytes));
    s += src.ld_bytes;
    d += dst.ld_bytes;
  }
}

/// dst += alpha * src over a contiguous run of doubles (GA accumulate).
inline void daxpy_contig(double alpha, const double* src, double* dst,
                         std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

/// dst(region) += alpha * src(packed contiguous doubles).
inline void daxpy_contig_to_strided(double alpha, const std::byte* src,
                                    const StridedRegion& dst) {
  SPLAP_REQUIRE(dst.row_bytes % static_cast<std::int64_t>(sizeof(double)) == 0,
                "accumulate region must hold whole doubles");
  const std::int64_t per_col = dst.row_bytes / static_cast<std::int64_t>(sizeof(double));
  const double* s = reinterpret_cast<const double*>(src);
  std::byte* d = dst.base;
  for (std::int64_t c = 0; c < dst.cols; ++c) {
    daxpy_contig(alpha, s, reinterpret_cast<double*>(d), per_col);
    s += per_col;
    d += dst.ld_bytes;
  }
}

/// dst(region) += alpha * src(region), column by column (both strided).
inline void daxpy_strided(double alpha, const StridedRegion& src,
                          const StridedRegion& dst) {
  SPLAP_REQUIRE(src.row_bytes == dst.row_bytes && src.cols == dst.cols,
                "shape mismatch in strided daxpy");
  SPLAP_REQUIRE(src.row_bytes % static_cast<std::int64_t>(sizeof(double)) == 0,
                "daxpy region must hold whole doubles");
  const std::int64_t per_col =
      src.row_bytes / static_cast<std::int64_t>(sizeof(double));
  const std::byte* s = src.base;
  std::byte* d = dst.base;
  for (std::int64_t c = 0; c < src.cols; ++c) {
    daxpy_contig(alpha, reinterpret_cast<const double*>(s),
                 reinterpret_cast<double*>(d), per_col);
    s += src.ld_bytes;
    d += dst.ld_bytes;
  }
}

}  // namespace splap
