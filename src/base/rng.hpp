// Deterministic pseudo-random number generation (xoshiro256** seeded with
// splitmix64). Every stochastic element of the simulation (drop injection,
// randomized workloads, property tests) draws from an explicitly seeded Rng
// so any run can be reproduced bit-for-bit from its seed.
#pragma once

#include <cstdint>

#include "base/status.hpp"

namespace splap {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    SPLAP_REQUIRE(bound > 0, "next_below bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    SPLAP_REQUIRE(lo <= hi, "next_in requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace splap
