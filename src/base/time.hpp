// Virtual-time representation used across the simulated SP machine.
//
// All simulation timestamps and durations are integer nanoseconds. Integer
// time keeps the discrete-event engine exactly deterministic (no FP drift in
// the event queue ordering); fractional costs produced by bandwidth formulas
// are rounded once, at the point the cost is computed.
#pragma once

#include <cstdint>

namespace splap {

/// A point in virtual time or a duration, in nanoseconds.
using Time = std::int64_t;

/// Sentinel meaning "no deadline / unset".
inline constexpr Time kNoTime = -1;

constexpr Time nanoseconds(std::int64_t v) { return v; }
constexpr Time microseconds(double v) { return static_cast<Time>(v * 1e3); }
constexpr Time milliseconds(double v) { return static_cast<Time>(v * 1e6); }
constexpr Time seconds(double v) { return static_cast<Time>(v * 1e9); }

constexpr double to_us(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_s(Time t) { return static_cast<double>(t) / 1e9; }

/// Time to move `bytes` at `mb_per_s` (decimal MB/s, as in the paper's
/// "110 MB/s" link figure). Rounded to whole nanoseconds.
constexpr Time transfer_time(std::int64_t bytes, double mb_per_s) {
  return static_cast<Time>(static_cast<double>(bytes) * 1e3 / mb_per_s);
}

/// Bandwidth in MB/s achieved moving `bytes` in duration `t`.
constexpr double mb_per_s(std::int64_t bytes, Time t) {
  return t <= 0 ? 0.0 : static_cast<double>(bytes) * 1e3 / static_cast<double>(t);
}

}  // namespace splap
