// Engine scale-out benchmark: events/sec and packets/sec versus node count,
// thread-per-actor driver versus stackless (handler-mode) driver, with the
// identical virtual traffic pattern in both. These are meta-benchmarks of
// the simulator (like bench_engine_perf), answering the ROADMAP item-4
// question: how many simulated SP nodes can one process drive?
//
// Traffic: every node sends `kPacketsPerNode` full packets to its right
// neighbour, one per simulated microsecond. The threaded driver paces with
// Actor::compute (two OS-thread handoffs per packet — the cost this PR's
// stackless actors eliminate); the stackless driver paces with a
// self-rescheduling event chain that transmits under the node's stackless
// identity actor. Virtual timelines are identical; the wall-clock gap is
// pure actor-machinery overhead.
//
// Emits BENCH_scale.json (override with --json_out=PATH), pinned by
// scripts/golden_check.sh: run names, the schema tag, and the 1024-node
// stackless-vs-threaded speedup floor are all checked there.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/machine.hpp"
#include "sim/engine.hpp"

namespace {

using namespace splap;

constexpr int kPacketsPerNode = 50;

struct RunResult {
  std::string name;
  int nodes = 0;
  const char* driver = "";
  int exec_threads = 1;
  std::int64_t packets = 0;
  std::uint64_t events = 0;
  double wall_ms = 0;
  double events_per_second = 0;
  double packets_per_second = 0;
};

void send_one(net::Machine& m, int src, int nodes) {
  net::Packet p = m.fabric().make_packet();
  p.src = src;
  p.dst = (src + 1) % nodes;
  p.client = net::Client::kLapi;
  p.header_bytes = 48;
  p.data.resize(976);
  m.fabric().transmit(std::move(p));
}

struct StacklessDrv {
  sim::Actor* actor = nullptr;
  int id = 0;
  int left = kPacketsPerNode;
};

void stackless_step(net::Machine& m, StacklessDrv* d, int nodes) {
  d->actor->run_inline(
      [&m, d, nodes](sim::Actor&) { send_one(m, d->id, nodes); });
  if (--d->left > 0) {
    m.engine().schedule_at_on(m.engine().now() + microseconds(1), d->id,
                              [&m, d, nodes] { stackless_step(m, d, nodes); });
  }
}

/// One full scenario: construct drivers, run to completion, report rates.
/// The timed region includes driver setup — thread creation is part of what
/// the thread-per-actor model costs at scale.
RunResult run_scenario(int nodes, bool stackless, int exec_threads) {
  RunResult r;
  r.nodes = nodes;
  r.driver = stackless ? "stackless" : "threaded";
  r.exec_threads = exec_threads;
  r.name = std::string(r.driver) +
           (exec_threads > 1 ? "_exec" + std::to_string(exec_threads) : "") +
           "_" + std::to_string(nodes);

  // The engine reads SPLAP_EXEC_THREADS at construction; Machine owns the
  // engine, so the knob goes through the environment for this scenario only.
  if (exec_threads > 1) {
    setenv("SPLAP_EXEC_THREADS", std::to_string(exec_threads).c_str(), 1);
  }
  net::Machine::Config mc;
  mc.tasks = nodes;
  net::Machine m(mc);
  if (exec_threads > 1) unsetenv("SPLAP_EXEC_THREADS");

  std::int64_t delivered = 0;
  for (int i = 0; i < nodes; ++i) {
    m.node(i).adapter().register_client(net::Client::kLapi,
                                        [&](net::Packet&&) { ++delivered; });
  }

  std::vector<StacklessDrv> drvs;
  const auto t0 = std::chrono::steady_clock::now();
  if (stackless) {
    drvs.resize(static_cast<std::size_t>(nodes));
    for (int i = 0; i < nodes; ++i) {
      StacklessDrv* d = &drvs[static_cast<std::size_t>(i)];
      d->id = i;
      d->actor = &m.engine().spawn_stackless(
          i, "drv" + std::to_string(i), nullptr);
      m.engine().schedule_at_on(microseconds(1), i,
                                [&m, d, nodes] { stackless_step(m, d, nodes); });
    }
  } else {
    for (int i = 0; i < nodes; ++i) {
      m.engine().spawn_on(i, "drv" + std::to_string(i),
                          [&m, i, nodes](sim::Actor& self) {
                            for (int k = 0; k < kPacketsPerNode; ++k) {
                              self.compute(microseconds(1));
                              send_one(m, i, nodes);
                            }
                          });
    }
  }
  (void)m.engine().run();
  const auto t1 = std::chrono::steady_clock::now();

  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  r.packets = m.fabric().packets_sent();
  r.events = m.engine().events_executed();
  r.wall_ms = wall_s * 1e3;
  r.events_per_second = static_cast<double>(r.events) / wall_s;
  r.packets_per_second = static_cast<double>(r.packets) / wall_s;
  SPLAP_REQUIRE(delivered == static_cast<std::int64_t>(nodes) * kPacketsPerNode,
                "scale bench lost packets");
  return r;
}

bool write_json(const std::string& path, const std::vector<RunResult>& runs,
                double speedup_1024) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"schema\": \"splap-scale-v1\",\n");
  std::fprintf(f, "  \"binary\": \"bench_scale\",\n");
  std::fprintf(f, "  \"packets_per_node\": %d,\n", kPacketsPerNode);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"nodes\": %d, \"driver\": \"%s\", "
                 "\"exec_threads\": %d, \"packets\": %lld, "
                 "\"events\": %llu, \"wall_ms\": %.3f, "
                 "\"events_per_second\": %.1f, "
                 "\"packets_per_second\": %.1f}%s\n",
                 r.name.c_str(), r.nodes, r.driver, r.exec_threads,
                 static_cast<long long>(r.packets),
                 static_cast<unsigned long long>(r.events), r.wall_ms,
                 r.events_per_second, r.packets_per_second,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_1024\": %.2f\n}\n", speedup_1024);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json_out=", 11) == 0) json_path = argv[i] + 11;
  }

  std::vector<RunResult> runs;
  double threaded_1024 = 0;
  double stackless_1024 = 0;
  for (const int nodes : {64, 256, 1024}) {
    for (const bool stackless : {false, true}) {
      RunResult r = run_scenario(nodes, stackless, /*exec_threads=*/1);
      std::printf("%-20s %5d nodes  %8.1f ms  %12.0f events/s  %12.0f pkts/s\n",
                  r.name.c_str(), r.nodes, r.wall_ms, r.events_per_second,
                  r.packets_per_second);
      if (nodes == 1024) {
        (stackless ? stackless_1024 : threaded_1024) = r.packets_per_second;
      }
      runs.push_back(std::move(r));
    }
  }
  // Functional demonstration of the lookahead-parallel lanes on the largest
  // scenario (on a single hardware thread this adds coordination cost; the
  // run is here so the knob's wall-clock trajectory is tracked on real SMP
  // hosts too).
  {
    RunResult r = run_scenario(1024, /*stackless=*/true, /*exec_threads=*/4);
    std::printf("%-20s %5d nodes  %8.1f ms  %12.0f events/s  %12.0f pkts/s\n",
                r.name.c_str(), r.nodes, r.wall_ms, r.events_per_second,
                r.packets_per_second);
    runs.push_back(std::move(r));
  }

  const double speedup = stackless_1024 / threaded_1024;
  std::printf("1024-node stackless vs threaded packet throughput: %.1fx\n",
              speedup);
  if (!write_json(json_path, runs, speedup)) {
    std::fprintf(stderr, "bench_scale: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}
