// Regenerates Table 2 of the paper: 4-byte message latency for LAPI and
// MPI/MPL in polling and interrupt modes on the simulated SP.
//
//   | Measurement          | LAPI [us] | MPI/MPL [us] |
//   | polling              |    34     |     43       |
//   | polling round-trip   |    60     |     86       |
//   | interrupt round-trip |    89     |    200       |
#include "common.hpp"

int main() {
  using namespace splap::benchx;
  const Table2 t = measure_table2();
  print_header("Table 2: latency measurements (4-byte messages)",
               "Shah et al., IPPS'98, Table 2");
  print_row("LAPI polling (one-way)", t.lapi_polling_us, 34.0, "us");
  print_row("LAPI polling round-trip", t.lapi_polling_rt_us, 60.0, "us");
  print_row("LAPI interrupt round-trip", t.lapi_interrupt_rt_us, 89.0, "us");
  print_row("MPI polling (one-way)", t.mpi_polling_us, 43.0, "us");
  print_row("MPI polling round-trip", t.mpi_polling_rt_us, 86.0, "us");
  print_row("MPL rcvncall interrupt round-trip", t.mpl_rcvncall_rt_us, 200.0,
            "us");
  return 0;
}
