// Ablation A2: completion-handler service threads (the paper's future-work
// item 2: "providing multiple completion handler and multiple message-
// passing threads ... will be important for SMP nodes").
//
// A burst of active messages whose completion handlers do real work: with
// one service thread (the 1998 implementation) the handlers serialize; with
// more threads they overlap.
#include <cstdio>
#include <vector>

#include "lapi/context.hpp"
#include "net/machine.hpp"

namespace {

using namespace splap;

/// Abort loudly on any unexpected LAPI/MPL failure: a benchmark or example
/// that silently swallows an error reports a meaningless number.
inline void ok(Status s) { SPLAP_REQUIRE(s == Status::kOk, "operation failed"); }


double run_us(int threads, int messages, Time handler_work) {
  net::Machine::Config mc;
  mc.tasks = 2;
  net::Machine m(mc);
  lapi::Config cfg;
  cfg.completion_threads = threads;
  std::vector<std::byte> landing(256);
  Time elapsed = 0;
  const Status st = m.run_spmd([&](net::Node& n) {
    lapi::Context ctx(n, cfg);
    const lapi::AmHandlerId h = ctx.register_handler(
        [&](lapi::Context&, const lapi::AmDelivery&) -> lapi::AmReply {
          lapi::AmReply r;
          r.buffer = landing.data();
          r.completion = [handler_work](lapi::Context&, sim::Actor& svc) {
            svc.compute(handler_work);
          };
          return r;
        });
    if (ctx.task_id() == 0) {
      std::vector<std::byte> data(256, std::byte{1});
      lapi::Counter cmpl;
      const Time t0 = ctx.engine().now();
      for (int i = 0; i < messages; ++i) {
        (void)ctx.amsend(1, h, {}, data, nullptr, nullptr, &cmpl);
      }
      ok(ctx.waitcntr(cmpl, messages));
      elapsed = ctx.engine().now() - t0;
    }
    ok(ctx.gfence());
  });
  SPLAP_REQUIRE(st == Status::kOk, "cmplthreads run failed");
  return to_us(elapsed);
}

}  // namespace

int main() {
  std::printf("\n=== Ablation A2: completion-handler service threads ===\n");
  std::printf("16 active messages, completion handler work per message\n\n");
  std::printf("%14s %12s %12s %12s %12s\n", "handler work", "1 thread",
              "2 threads", "4 threads", "8 threads");
  for (const double work_us : {20.0, 100.0, 400.0}) {
    std::printf("%11.0f us", work_us);
    for (const int t : {1, 2, 4, 8}) {
      std::printf(" %9.1f us",
                  run_us(t, 16, microseconds(work_us)));
    }
    std::printf("\n");
  }
  std::printf("\nexpected: with heavier handlers, added service threads cut "
              "the makespan until the\nnetwork/dispatcher becomes the "
              "bottleneck — the SMP motivation of Section 6.\n");
  return 0;
}
