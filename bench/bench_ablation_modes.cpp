// Ablation A3: interrupt vs polling mode (Section 2.1). A stream of puts
// lands on a target that is busy computing and only re-enters the library
// every P microseconds. In interrupt mode progress is immediate (at the
// interrupt cost); in polling mode delivery latency tracks the polling
// period — and with no polling at all, the paper's deadlock warning becomes
// real (exercised in the test suite, not here).
#include <cstdio>
#include <vector>

#include "lapi/context.hpp"
#include "net/machine.hpp"

namespace {

using namespace splap;

/// Abort loudly on any unexpected LAPI/MPL failure: a benchmark or example
/// that silently swallows an error reports a meaningless number.
inline void ok(Status s) { SPLAP_REQUIRE(s == Status::kOk, "operation failed"); }


/// Mean delivery latency of 16 spaced puts against a target that computes
/// in `poll_period` slices between polls (polling mode), or computes
/// uninterrupted (interrupt mode, poll_period = 0).
double run_us(bool interrupt_mode, Time poll_period) {
  net::Machine::Config mc;
  mc.tasks = 2;
  net::Machine m(mc);
  lapi::Config cfg;
  cfg.interrupt_mode = interrupt_mode;
  constexpr int kMsgs = 16;
  std::vector<std::byte> cell(8);
  lapi::Counter tgt;
  std::vector<Time> sent(kMsgs), seen(kMsgs);
  const Status st = m.run_spmd([&](net::Node& n) {
    lapi::Context ctx(n, cfg);
    std::vector<void*> tab(2);
    ctx.address_init(&tgt, tab);
    if (ctx.task_id() == 0) {
      std::byte b[8] = {};
      for (int i = 0; i < kMsgs; ++i) {
        sent[static_cast<std::size_t>(i)] = ctx.engine().now();
        (void)ctx.put(1, std::span<const std::byte>(b, 8), cell.data(),
                      static_cast<lapi::Counter*>(tab[1]), nullptr, nullptr);
        n.task().compute(microseconds(150));  // spaced stream
      }
    } else {
      int got = 0;
      while (got < kMsgs) {
        // "Computation" between library entries.
        n.task().compute(poll_period > 0 ? poll_period : microseconds(5));
        while (ctx.getcntr(tgt) > 0) {
          ok(ctx.waitcntr(tgt, 1));
          seen[static_cast<std::size_t>(got)] = ctx.engine().now();
          ++got;
        }
      }
    }
    ok(ctx.gfence());
  });
  SPLAP_REQUIRE(st == Status::kOk, "modes run failed");
  double total = 0;
  for (int i = 0; i < kMsgs; ++i) {
    total += to_us(seen[static_cast<std::size_t>(i)] -
                   sent[static_cast<std::size_t>(i)]);
  }
  return total / kMsgs;
}

}  // namespace

int main() {
  std::printf("\n=== Ablation A3: interrupt vs polling progress (Section 2.1) ===\n");
  std::printf("mean delivery latency of a spaced 8-byte put stream\n\n");
  std::printf("%-36s %14s\n", "target mode", "mean latency");
  std::printf("%-36s %11.1f us\n", "interrupt mode (computing target)",
              run_us(true, microseconds(200)));
  for (const double p : {50.0, 200.0, 800.0}) {
    char label[64];
    std::snprintf(label, sizeof label, "polling mode, poll every %.0f us", p);
    std::printf("%-36s %11.1f us\n", label, run_us(false, microseconds(p)));
  }
  std::printf("\nexpected: interrupt mode keeps latency near the wire+interrupt "
              "cost regardless of the\ntarget's behaviour; polling latency "
              "grows with the polling period (and an unpolled\ntarget "
              "deadlocks — see LapiModesTest.PollingWithoutPollingDeadlocks).\n");
  return 0;
}
