// Wall-clock performance of the simulator itself (google-benchmark): event
// throughput of the DES engine, actor handoff rate, fabric packet rate, and
// end-to-end simulated-LAPI message rate. These are meta-benchmarks of the
// reproduction infrastructure, not paper results — they bound how large an
// experiment the simulator can run interactively.
#include <benchmark/benchmark.h>

#include <vector>

#include "lapi/context.hpp"
#include "net/machine.hpp"
#include "sim/engine.hpp"

namespace {

using namespace splap;

void BM_EngineEventThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < n; ++i) {
      eng.schedule_at(i, [] {});
    }
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1000)->Arg(10000);

void BM_ActorHandoff(benchmark::State& state) {
  const int switches = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn("worker", [&](sim::Actor& self) {
      for (int i = 0; i < switches; ++i) self.compute(microseconds(1));
    });
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * switches);
}
BENCHMARK(BM_ActorHandoff)->Arg(256);

void BM_FabricPacketRate(benchmark::State& state) {
  const int packets = static_cast<int>(state.range(0));
  for (auto _ : state) {
    net::Machine::Config mc;
    mc.tasks = 2;
    net::Machine m(mc);
    int delivered = 0;
    m.node(1).adapter().register_client(net::Client::kLapi,
                                        [&](net::Packet&&) { ++delivered; });
    m.engine().schedule_at(0, [&] {
      for (int i = 0; i < packets; ++i) {
        net::Packet p;
        p.src = 0;
        p.dst = 1;
        p.client = net::Client::kLapi;
        p.header_bytes = 48;
        p.data.resize(976);
        m.fabric().transmit(std::move(p));
      }
    });
    benchmark::DoNotOptimize(m.engine().run());
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * packets);
}
BENCHMARK(BM_FabricPacketRate)->Arg(2000);

void BM_LapiPutMessageRate(benchmark::State& state) {
  const int msgs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    net::Machine::Config mc;
    mc.tasks = 2;
    net::Machine m(mc);
    std::vector<std::byte> tgt(512);
    (void)m.run_spmd([&](net::Node& n) {
      lapi::Context ctx(n);
      if (ctx.task_id() == 0) {
        std::vector<std::byte> src(512, std::byte{1});
        lapi::Counter cmpl;
        for (int i = 0; i < msgs; ++i) {
          (void)ctx.put(1, src, tgt.data(), nullptr, nullptr, &cmpl);
        }
        ctx.waitcntr(cmpl, msgs);
      }
      ctx.gfence();
    });
  }
  state.SetItemsProcessed(state.iterations() * msgs);
}
BENCHMARK(BM_LapiPutMessageRate)->Arg(500);

}  // namespace

BENCHMARK_MAIN();
