// Wall-clock performance of the simulator itself (google-benchmark): event
// throughput of the DES engine, actor handoff rate, fabric packet rate, and
// end-to-end simulated-LAPI message rate. These are meta-benchmarks of the
// reproduction infrastructure, not paper results — they bound how large an
// experiment the simulator can run interactively.
//
// Besides the console table, the binary writes BENCH_engine.json (override
// with --json_out=PATH) so the perf trajectory of the hot paths is tracked
// across PRs in a machine-readable form.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "lapi/context.hpp"
#include "net/machine.hpp"
#include "sim/engine.hpp"

namespace {

using namespace splap;

/// Abort loudly on any unexpected LAPI/MPL failure: a benchmark or example
/// that silently swallows an error reports a meaningless number.
inline void ok(Status s) { SPLAP_REQUIRE(s == Status::kOk, "operation failed"); }


void BM_EngineEventThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < n; ++i) {
      eng.schedule_at(i, [] {});
    }
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1000)->Arg(10000);

void BM_ActorHandoff(benchmark::State& state) {
  const int switches = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn("worker", [&](sim::Actor& self) {
      for (int i = 0; i < switches; ++i) self.compute(microseconds(1));
    });
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * switches);
}
BENCHMARK(BM_ActorHandoff)->Arg(256);

void BM_FabricPacketRate(benchmark::State& state) {
  const int packets = static_cast<int>(state.range(0));
  for (auto _ : state) {
    net::Machine::Config mc;
    mc.tasks = 2;
    net::Machine m(mc);
    int delivered = 0;
    m.node(1).adapter().register_client(net::Client::kLapi,
                                        [&](net::Packet&&) { ++delivered; });
    m.engine().schedule_at(0, [&] {
      for (int i = 0; i < packets; ++i) {
        net::Packet p = m.fabric().make_packet();
        p.src = 0;
        p.dst = 1;
        p.client = net::Client::kLapi;
        p.header_bytes = 48;
        p.data.resize(976);
        m.fabric().transmit(std::move(p));
      }
    });
    benchmark::DoNotOptimize(m.engine().run());
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * packets);
}
BENCHMARK(BM_FabricPacketRate)->Arg(2000);

void BM_LapiPutMessageRate(benchmark::State& state) {
  const int msgs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    net::Machine::Config mc;
    mc.tasks = 2;
    net::Machine m(mc);
    std::vector<std::byte> tgt(512);
    (void)m.run_spmd([&](net::Node& n) {
      lapi::Context ctx(n);
      if (ctx.task_id() == 0) {
        std::vector<std::byte> src(512, std::byte{1});
        lapi::Counter cmpl;
        for (int i = 0; i < msgs; ++i) {
          (void)ctx.put(1, src, tgt.data(), nullptr, nullptr, &cmpl);
        }
        ok(ctx.waitcntr(cmpl, msgs));
      }
      ok(ctx.gfence());
    });
  }
  state.SetItemsProcessed(state.iterations() * msgs);
}
BENCHMARK(BM_LapiPutMessageRate)->Arg(500);

/// Console output plus a flat JSON export of every run: one row per
/// benchmark with wall time and throughput, ready for trajectory tracking
/// (diff BENCH_engine.json across commits).
class JsonTrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      Row row;
      row.name = r.benchmark_name();
      row.real_time_ns = r.GetAdjustedRealTime();
      row.cpu_time_ns = r.GetAdjustedCPUTime();
      row.iterations = static_cast<long long>(r.iterations);
      const auto it = r.counters.find("items_per_second");
      row.items_per_second = it != r.counters.end() ? it->second.value : 0.0;
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  bool write_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"schema\": \"splap-bench-v1\",\n");
    std::fprintf(f, "  \"binary\": \"bench_engine_perf\",\n");
    std::fprintf(f, "  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"real_time_ns\": %.1f, "
                   "\"cpu_time_ns\": %.1f, \"iterations\": %lld, "
                   "\"items_per_second\": %.1f}%s\n",
                   r.name.c_str(), r.real_time_ns, r.cpu_time_ns,
                   r.iterations, r.items_per_second,
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Row {
    std::string name;
    double real_time_ns = 0;
    double cpu_time_ns = 0;
    long long iterations = 0;
    double items_per_second = 0;
  };
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
#if defined(__GLIBC__)
  // google-benchmark runs benchmarks on a worker thread whose malloc arena
  // trims (madvise) freed slabs back to the OS between iterations; the
  // refaulting then dominates every benchmark that creates an Engine or
  // Machine per iteration. Disable trimming — these benchmarks measure the
  // simulator, not the allocator's OS-return policy.
  mallopt(M_TRIM_THRESHOLD, 1 << 30);
  mallopt(M_MMAP_THRESHOLD, 1 << 30);
#endif
  std::string json_path = "BENCH_engine.json";
  // Peel off our own flag before google-benchmark sees the argv.
  std::vector<char*> args(argv, argv + argc);
  for (auto it = args.begin(); it != args.end();) {
    if (std::strncmp(*it, "--json_out=", 11) == 0) {
      json_path = *it + 11;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  JsonTrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!reporter.write_json(json_path)) {
    std::fprintf(stderr, "bench_engine_perf: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}
