// Regenerates Figure 4: bandwidth of GA get under the LAPI and MPL
// implementations, for 1-D and square 2-D array sections, 64 B .. 2 MB.
//
// Paper shape: "LAPI outperforms MPL for all the cases. Both MPL and LAPI
// versions perform better for 1-D than 2-D requests." The LAPI version uses
// LAPI_Get directly for 1-D (no intermediate copies); MPL avoids one copy
// for 1-D; 2-D requests switch to the LAPI_Get per-column protocol around
// 0.5 MB.
#include <cstdio>
#include <vector>

#include "common.hpp"

int main() {
  using namespace splap;
  using ga::Transport;
  using ga::bench::ga_bandwidth_mb_s;
  using ga::bench::OpKind;
  using ga::bench::Shape;

  std::vector<std::int64_t> sizes;
  for (std::int64_t b = 64; b <= (2 << 20); b *= 4) sizes.push_back(b);
  sizes.push_back(2 << 20);

  std::printf("\n=== Figure 4: GA get bandwidth (MB/s), 4 nodes ===\n");
  std::printf("reproduces: Shah et al., IPPS'98, Figure 4\n");
  std::printf("%10s %12s %12s %12s %12s\n", "bytes", "LAPI-1D", "LAPI-2D",
              "MPL-1D", "MPL-2D");
  for (const auto b : sizes) {
    const double l1 = ga_bandwidth_mb_s(Transport::kLapi, OpKind::kGet,
                                        Shape::k1D, b);
    const double l2 = ga_bandwidth_mb_s(Transport::kLapi, OpKind::kGet,
                                        Shape::k2D, b);
    const double m1 = ga_bandwidth_mb_s(Transport::kMpl, OpKind::kGet,
                                        Shape::k1D, b);
    const double m2 = ga_bandwidth_mb_s(Transport::kMpl, OpKind::kGet,
                                        Shape::k2D, b);
    std::printf("%10lld %12.2f %12.2f %12.2f %12.2f\n",
                static_cast<long long>(b), l1, l2, m1, m2);
  }
  std::printf(
      "\nexpected shape: LAPI above MPL everywhere; 1-D above 2-D for both "
      "implementations.\n");
  return 0;
}
