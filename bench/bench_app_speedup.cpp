// Regenerates the Section 5.4 application claim:
//
//   "The performance improvement over MPL-versions vary from 10 to 50%
//    depending on the problem size, ratio of communication and
//    calculations, and physical properties of the problems. The most
//    performance improvement can be obtained in codes that mostly rely on
//    1-D array communication."
//
// The workload is a synthetic SCF-like kernel (the paper's motivating
// electronic-structure pattern): tasks self-schedule matrix blocks through
// a shared read-and-increment counter, get a patch of the density matrix,
// compute for a configurable time per element, and accumulate the result
// into the Fock matrix. The sweep varies the compute:communication ratio
// and the 1-D vs 2-D access mix; each cell reports the LAPI-vs-MPL
// improvement.
#include <cstdio>
#include <vector>

#include "ga/runtime.hpp"

namespace {

using namespace splap;

struct KernelConfig {
  double work_us_per_elem;  // compute-to-communication knob
  bool one_d;               // 1-D (column) vs 2-D (square block) access mix
};

double run_kernel_us(ga::Transport transport, const KernelConfig& kc) {
  constexpr int kTasks = 4;
  constexpr std::int64_t kN = 192;
  constexpr std::int64_t kBlock = 48;
  const std::int64_t nblk = kN / kBlock;

  net::Machine::Config mc;
  mc.tasks = kTasks;
  net::Machine m(mc);
  Time makespan = 0;
  ga::Config cfg;
  cfg.transport = transport;
  const Status st = m.run_spmd([&](net::Node& n) {
    ga::Runtime rt(n, cfg);
    ga::GlobalArray density = rt.create(kN, kN);
    ga::GlobalArray fock = rt.create(kN, kN);
    rt.sync();
    const Time t0 = rt.engine().now();
    std::vector<double> buf(static_cast<std::size_t>(kN * kBlock));
    // Dynamic load balancing over block pairs (read_inc, as real SCF does).
    for (;;) {
      const std::int64_t task = rt.read_inc(0, 1);
      if (task >= nblk * nblk) break;
      const std::int64_t bi = task % nblk;
      const std::int64_t bj = task / nblk;
      ga::Patch p;
      if (kc.one_d) {
        // Column-band access: contiguous at the owner (the paper's best
        // case for the LAPI implementation).
        p = ga::Patch{0, kN - 1, bj * kBlock + bi, bj * kBlock + bi};
      } else {
        p = ga::Patch{bi * kBlock, (bi + 1) * kBlock - 1, bj * kBlock,
                      (bj + 1) * kBlock - 1};
      }
      density.get(p, buf.data(), p.rows());
      // The "calculation" part: Fock-element work per fetched element.
      n.task().compute(static_cast<Time>(
          kc.work_us_per_elem * 1e3 * static_cast<double>(p.elems())));
      fock.acc(p, buf.data(), p.rows(), 0.5);
    }
    rt.sync();
    makespan = std::max(makespan, rt.engine().now() - t0);
    rt.destroy(fock);
    rt.destroy(density);
  });
  SPLAP_REQUIRE(st == Status::kOk, "kernel run failed");
  return to_us(makespan);
}

}  // namespace

int main() {
  std::printf("\n=== Section 5.4: GA application improvement, LAPI vs MPL ===\n");
  std::printf("reproduces: Shah et al., IPPS'98, Section 5.4 text "
              "(10-50%% improvement)\n");
  std::printf("SCF-like kernel, 4 nodes, 192x192 matrices, dynamic load "
              "balancing via read_inc\n\n");
  std::printf("%-10s %-22s %12s %12s %12s\n", "access", "compute:comm",
              "MPL [ms]", "LAPI [ms]", "improvement");
  const char* kRatioLabels[3] = {"comm-heavy", "balanced", "compute-heavy"};
  for (const bool one_d : {true, false}) {
    // Real SCF does O(N)..O(N^2) flops per fetched element: 1-D column
    // access fetches fewer elements per task unit, so its per-element work
    // factor is correspondingly higher for the same physical problem.
    const double works_1d[3] = {9.0, 14.0, 25.0};
    const double works_2d[3] = {0.01, 0.05, 0.2};
    for (int k = 0; k < 3; ++k) {
      const KernelConfig kc{one_d ? works_1d[k] : works_2d[k], one_d};
      const double mpl = run_kernel_us(splap::ga::Transport::kMpl, kc);
      const double lapi = run_kernel_us(splap::ga::Transport::kLapi, kc);
      std::printf("%-10s %-22s %12.2f %12.2f %10.1f%%\n",
                  one_d ? "1-D" : "2-D", kRatioLabels[k], mpl / 1e3,
                  lapi / 1e3, (mpl / lapi - 1.0) * 100.0);
    }
  }
  std::printf("\nexpected: improvements of roughly 10-50%%, largest for "
              "comm-bound 1-D access.\n");
  return 0;
}
