// Shared micro-measurement functions for the benchmark binaries: the raw
// LAPI / MPI / MPL latency experiments of Table 2 and the pipeline-latency
// numbers of Section 4. (The GA-level and bandwidth measurements live in
// src/ga/bench_harness.hpp, shared with the calibration tests.)
#pragma once

#include <cstddef>
#include <cstdio>
#include <functional>
#include <string>

#include "ga/bench_harness.hpp"
#include "lapi/context.hpp"
#include "mpl/comm.hpp"

namespace splap::benchx {

struct Table2 {
  double lapi_polling_us;
  double lapi_polling_rt_us;
  double lapi_interrupt_rt_us;
  double mpi_polling_us;
  double mpi_polling_rt_us;
  double mpl_rcvncall_rt_us;
};

/// Reproduce every row of Table 2 on the simulated SP.
Table2 measure_table2();

struct PipelineLatency {
  double put_us;  // paper: 16us
  double get_us;  // paper: 19us
};
PipelineLatency measure_pipeline_latency();

/// One Figure 2 curve point (LAPI put+wait, or MPI send+echo at a given
/// MP_EAGER_LIMIT) — thin wrappers around the shared harness.
inline double fig2_lapi(std::int64_t bytes) {
  return ga::bench::raw_lapi_put_mb_s(bytes);
}
inline double fig2_mpi(std::int64_t bytes, std::int64_t eager_limit) {
  return ga::bench::raw_mpi_mb_s(bytes, eager_limit);
}

/// Pretty printing helpers shared by the bench mains.
void print_header(const std::string& title, const std::string& paper_ref);
void print_row(const std::string& label, double measured, double paper,
               const char* unit);

/// Run `point(i)` for every i in [0, points) across a pool of worker
/// threads (threads == 0 picks one per hardware thread, capped at the point
/// count; SPLAP_SWEEP_THREADS=N overrides, N=1 forces serial).
///
/// Every sweep point is an independent deterministic simulation — its own
/// Machine, its own fixed RNG seed — so workers share nothing and the
/// callback writes its result into a caller-owned slot keyed by index. The
/// output is therefore bit-identical to a serial sweep; only wall clock
/// changes. The first exception thrown by a point is rethrown in the caller
/// after all workers have drained.
void parallel_sweep(std::size_t points,
                    const std::function<void(std::size_t)>& point,
                    unsigned threads = 0);

}  // namespace splap::benchx
