#include "common.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace splap::benchx {

namespace {

/// Abort loudly on any unexpected LAPI/MPL failure: a benchmark that
/// silently swallows an error reports a meaningless number.
inline void ok(Status s) { SPLAP_REQUIRE(s == Status::kOk, "operation failed"); }


net::Machine::Config machine2() {
  net::Machine::Config c;
  c.tasks = 2;
  return c;
}

/// LAPI one-way latency: 4-byte put, polling mode, time from the call to
/// the target-counter update observed at the target.
double lapi_one_way_us() {
  net::Machine m(machine2());
  lapi::Config cfg;
  cfg.interrupt_mode = false;
  // 4-byte landing buffer: the put below writes 4 bytes (a single-byte cell
  // here is an out-of-bounds write that can corrupt adjacent locals).
  std::byte cell[4] = {};
  lapi::Counter tgt;
  Time sent = kNoTime, landed = kNoTime;
  const Status st = m.run_spmd([&](net::Node& n) {
    lapi::Context ctx(n, cfg);
    std::vector<void*> tab(2);
    ctx.address_init(&tgt, tab);
    if (ctx.task_id() == 0) {
      ctx.node().task().compute(microseconds(100));
      std::byte b[4] = {};
      sent = ctx.engine().now();
      (void)ctx.put(1, std::span<const std::byte>(b, 4), cell,
                    static_cast<lapi::Counter*>(tab[1]), nullptr, nullptr);
    } else {
      ok(ctx.waitcntr(tgt, 1));
      landed = ctx.engine().now();
    }
    ok(ctx.gfence());
  });
  SPLAP_REQUIRE(st == Status::kOk, "lapi one-way failed");
  return to_us(landed - sent);
}

/// LAPI polling round trip: counter-driven ping-pong, both sides blocked in
/// Waitcntr (which polls the adapter).
double lapi_polling_rt_us(bool interrupt_mode) {
  net::Machine m(machine2());
  lapi::Config cfg;
  cfg.interrupt_mode = interrupt_mode;
  std::byte ping[4] = {}, pong[4] = {};  // 4-byte landing buffers
  lapi::Counter ping_c, pong_c;
  Time rt = 0;
  const Status st = m.run_spmd([&](net::Node& n) {
    lapi::Context ctx(n, cfg);
    std::vector<void*> pt(2), qt(2);
    ctx.address_init(&ping_c, pt);
    ctx.address_init(&pong_c, qt);
    std::byte b[4] = {};
    if (ctx.task_id() == 0) {
      ctx.node().task().compute(microseconds(50));
      const Time t0 = ctx.engine().now();
      (void)ctx.put(1, std::span<const std::byte>(b, 4), ping,
                    static_cast<lapi::Counter*>(pt[1]), nullptr, nullptr);
      ok(ctx.waitcntr(pong_c, 1));
      rt = ctx.engine().now() - t0;
    } else {
      ok(ctx.waitcntr(ping_c, 1));
      (void)ctx.put(0, std::span<const std::byte>(b, 4), pong,
                    static_cast<lapi::Counter*>(qt[0]), nullptr, nullptr);
    }
    ok(ctx.gfence());
  });
  SPLAP_REQUIRE(st == Status::kOk, "lapi rt failed");
  return to_us(rt);
}

/// LAPI interrupt round trip: both sides OUTSIDE the library (the target
/// echoes from its header handler while computing; the origin polls the
/// pong counter from user code), so each delivery pays the interrupt.
double lapi_interrupt_rt_us() {
  net::Machine m(machine2());
  lapi::Counter pong_c;
  Time rt = 0;
  const Status st = m.run_spmd([&](net::Node& n) {
    lapi::Context ctx(n);
    std::vector<void*> tab(2);
    ctx.address_init(&pong_c, tab);
    const lapi::AmHandlerId echo = ctx.register_handler(
        [&, tab](lapi::Context& c, const lapi::AmDelivery& d) -> lapi::AmReply {
          if (c.task_id() == 1) {
            (void)c.amsend(d.origin, 1, {}, {},
                           static_cast<lapi::Counter*>(tab[0]), nullptr,
                           nullptr);
          }
          return {};
        });
    if (ctx.task_id() == 0) {
      ctx.node().task().compute(microseconds(50));
      const Time t0 = ctx.engine().now();
      (void)ctx.amsend(1, echo, {}, {}, nullptr, nullptr, nullptr);
      for (;;) {
        ctx.node().task().compute(nanoseconds(500));
        if (ctx.getcntr(pong_c) > 0) break;
      }
      rt = ctx.engine().now() - t0;
    } else {
      ctx.node().task().compute(milliseconds(1.0));
    }
    ok(ctx.gfence());
  });
  SPLAP_REQUIRE(st == Status::kOk, "lapi interrupt rt failed");
  return to_us(rt);
}

double mpi_one_way_us() {
  net::Machine m(machine2());
  Time sent = kNoTime, recvd = kNoTime;
  const Status st = m.run_spmd([&](net::Node& n) {
    mpl::Comm comm(n);
    if (comm.rank() == 1) {
      std::byte b[4] = {};
      const mpl::Request r = comm.irecv(0, 1, std::span<std::byte>(b, 4));
      comm.barrier();
      comm.wait(r);
      recvd = comm.engine().now();
    } else {
      comm.barrier();
      comm.node().task().compute(microseconds(30));
      std::byte b[4] = {};
      sent = comm.engine().now();
      (void)comm.send(1, 1, std::span<const std::byte>(b, 4));
    }
    comm.barrier();
  });
  SPLAP_REQUIRE(st == Status::kOk, "mpi one-way failed");
  return to_us(recvd - sent);
}

double mpi_rt_us() {
  net::Machine m(machine2());
  Time rt = 0;
  const Status st = m.run_spmd([&](net::Node& n) {
    mpl::Comm comm(n);
    std::byte b[4] = {};
    if (comm.rank() == 0) {
      std::byte in[4] = {};
      const mpl::Request r = comm.irecv(1, 2, std::span<std::byte>(in, 4));
      comm.barrier();
      comm.node().task().compute(microseconds(30));
      const Time t0 = comm.engine().now();
      (void)comm.send(1, 1, std::span<const std::byte>(b, 4));
      comm.wait(r);
      rt = comm.engine().now() - t0;
    } else {
      std::byte in[4] = {};
      const mpl::Request r = comm.irecv(0, 1, std::span<std::byte>(in, 4));
      comm.barrier();
      comm.wait(r);
      (void)comm.send(0, 2, std::span<const std::byte>(b, 4));
    }
    comm.barrier();
  });
  SPLAP_REQUIRE(st == Status::kOk, "mpi rt failed");
  return to_us(rt);
}

double mpl_rcvncall_rt_us() {
  net::Machine m(machine2());
  Time rt = 0;
  bool echoed = false;
  std::byte token{1};
  const Status st = m.run_spmd([&](net::Node& n) {
    mpl::Comm comm(n);
    comm.rcvncall(1, [&](mpl::Comm& c, const mpl::RcvncallDelivery& d) {
      if (c.rank() == 1) {
        (void)c.isend(d.source, 1,
                      std::span<const std::byte>(&token, 1));
      } else {
        echoed = true;
      }
    });
    comm.barrier();
    if (comm.rank() == 0) {
      comm.node().task().compute(microseconds(30));
      const Time t0 = comm.engine().now();
      (void)comm.send(1, 1, std::span<const std::byte>(&token, 1));
      while (!echoed) comm.node().task().compute(microseconds(2));
      rt = comm.engine().now() - t0;
    }
    comm.barrier();
  });
  SPLAP_REQUIRE(st == Status::kOk, "mpl rcvncall rt failed");
  return to_us(rt);
}

}  // namespace

Table2 measure_table2() {
  Table2 t;
  t.lapi_polling_us = lapi_one_way_us();
  t.lapi_polling_rt_us = lapi_polling_rt_us(false);
  t.lapi_interrupt_rt_us = lapi_interrupt_rt_us();
  t.mpi_polling_us = mpi_one_way_us();
  t.mpi_polling_rt_us = mpi_rt_us();
  t.mpl_rcvncall_rt_us = mpl_rcvncall_rt_us();
  return t;
}

PipelineLatency measure_pipeline_latency() {
  PipelineLatency out{};
  net::Machine m(machine2());
  std::byte cell{1};
  const Status st = m.run_spmd([&](net::Node& n) {
    lapi::Context ctx(n);
    if (ctx.task_id() == 0) {
      ctx.node().task().compute(microseconds(50));
      std::byte b{2};
      Time t0 = ctx.engine().now();
      (void)ctx.put(1, std::span<const std::byte>(&b, 1), &cell, nullptr,
                    nullptr, nullptr);
      out.put_us = to_us(ctx.engine().now() - t0);
      ctx.node().task().compute(microseconds(50));
      lapi::Counter org;
      t0 = ctx.engine().now();
      (void)ctx.get(1, 1, &cell, &b, nullptr, &org);
      out.get_us = to_us(ctx.engine().now() - t0);
      ok(ctx.waitcntr(org, 1));
    }
    ok(ctx.gfence());
  });
  SPLAP_REQUIRE(st == Status::kOk, "pipeline latency failed");
  return out;
}

void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("%-44s %12s %12s %8s\n", "measurement", "measured", "paper",
              "ratio");
}

void parallel_sweep(std::size_t points,
                    const std::function<void(std::size_t)>& point,
                    unsigned threads) {
  if (points == 0) return;
  if (threads == 0) {
    if (const char* env = std::getenv("SPLAP_SWEEP_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) threads = static_cast<unsigned>(v);
    }
  }
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (threads > points) threads = static_cast<unsigned>(points);

  if (threads == 1) {
    for (std::size_t i = 0; i < points; ++i) point(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= points) return;
      try {
        point(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void print_row(const std::string& label, double measured, double paper,
               const char* unit) {
  if (paper > 0) {
    std::printf("%-44s %9.1f %s %9.1f %s %7.2fx\n", label.c_str(), measured,
                unit, paper, unit, measured / paper);
  } else {
    std::printf("%-44s %9.1f %s %12s\n", label.c_str(), measured, unit, "-");
  }
}

}  // namespace splap::benchx
