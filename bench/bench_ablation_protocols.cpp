// Ablation A1: the hybrid-protocol design of Section 5.3. For a strided
// 2-D request, compare the three strategies GA chooses among:
//   - pipelined ~900-byte active messages (the default below ~0.5 MB),
//   - direct per-column remote memory copies,
//   - and the thresholds' combined (default hybrid) behaviour,
// demonstrating why "the thresholds used for switching between different
// protocols are selected empirically to maximize the performance".
#include <cstdio>
#include <vector>

#include "ga/bench_harness.hpp"

namespace {

using namespace splap;

double measure(std::int64_t bytes, std::int64_t big_request_bytes,
               bool rdma = false) {
  // A strided 2-D put+get pair with a forced protocol threshold.
  constexpr int kTasks = 2;
  const std::int64_t elems = bytes / 8;
  std::int64_t s = 2;
  while ((s + 1) * (s + 1) <= elems) ++s;
  net::Machine::Config mc;
  mc.tasks = kTasks;
  net::Machine m(mc);
  ga::Config cfg;
  cfg.big_request_bytes = big_request_bytes;
  if (rdma) {
    // Zero-copy transfers: big strided requests ride one registered-memory
    // Putv/Getv instead of the per-column RMC fan-out.
    cfg.lapi.rdma_enabled = true;
    cfg.lapi.rdma_threshold = 4096;
  }
  Time elapsed = 0;
  const int reps = ga::bench::series_length(bytes);
  const Status st = m.run_spmd([&](net::Node& n) {
    ga::Runtime rt(n, cfg);
    ga::GlobalArray a = rt.create(3 * s, 3 * s);
    rt.sync();
    if (rt.me() == 0) {
      const ga::Patch blk = a.block_of(1);
      std::vector<double> buf(static_cast<std::size_t>(s * s), 2.0);
      const Time t0 = rt.engine().now();
      for (int r = 0; r < reps; ++r) {
        const std::int64_t off = r % 2;
        ga::Patch p{blk.lo1 + off, blk.lo1 + off + s - 1, blk.lo2 + off,
                    blk.lo2 + off + s - 1};
        p.hi1 = std::min(p.hi1, blk.hi1);
        p.hi2 = std::min(p.hi2, blk.hi2);
        a.put(p, buf.data(), p.rows());
        a.get(p, buf.data(), p.rows());
      }
      rt.fence();
      elapsed = rt.engine().now() - t0;
    }
    rt.sync();
    rt.destroy(a);
  });
  SPLAP_REQUIRE(st == Status::kOk, "ablation run failed");
  return mb_per_s(2 * s * s * 8 * reps, elapsed);
}

}  // namespace

int main() {
  std::printf("\n=== Ablation A1: hybrid protocol thresholds (Section 5.3) ===\n");
  std::printf("strided 2-D put+get bandwidth (MB/s) under forced protocols\n\n");
  std::printf("%10s %16s %16s %16s %16s\n", "bytes", "AM always",
              "per-column RMC", "hybrid (0.5MB)", "rdma zero-copy");
  for (std::int64_t b : {16384, 65536, 262144, 1048576, 4194304}) {
    const double am = measure(b, std::int64_t{1} << 40);  // never switch
    const double rmc = measure(b, 1);                     // always switch
    const double hybrid = measure(b, 512 * 1024);         // the default
    const double rdma = measure(b, 1, true);  // registered-memory Putv/Getv
    std::printf("%10lld %16.2f %16.2f %16.2f %16.2f\n",
                static_cast<long long>(b), am, rmc, hybrid, rdma);
  }
  std::printf("\nexpected: AM wins for small strided requests (fewer "
              "per-message overheads than per-column\ntransfers of tiny "
              "columns), per-column RMC wins for very large ones (no pack/"
              "unpack copies);\nthe hybrid tracks the better of the two, and "
              "the rdma zero-copy path overtakes the\nper-column RMC at the "
              "top (one registered-memory transfer, no receive-side "
              "copies).\n");
  return 0;
}
