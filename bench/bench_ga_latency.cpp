// Regenerates the Section 5.4 GA single-element latency numbers:
//
//   "The latency measured for transfer of a single element (8 bytes) of a
//    double-precision array is 94.2us in GA get and 49.6us for put in the
//    LAPI implementation. In the MPL implementation, the corresponding
//    numbers are 221us for GA get and 54.6us for put."
#include "common.hpp"

int main() {
  using namespace splap;
  using namespace splap::benchx;
  const auto lapi = ga::bench::ga_latency_us(ga::Transport::kLapi);
  const auto mpl = ga::bench::ga_latency_us(ga::Transport::kMpl);
  print_header("Section 5.4: GA single-element (8 B) latency, 4 nodes",
               "Shah et al., IPPS'98, Section 5.4 text");
  print_row("GA put, LAPI implementation", lapi.put_us, 49.6, "us");
  print_row("GA put, MPL implementation", mpl.put_us, 54.6, "us");
  print_row("GA get, LAPI implementation", lapi.get_us, 94.2, "us");
  print_row("GA get, MPL implementation", mpl.get_us, 221.0, "us");
  return 0;
}
