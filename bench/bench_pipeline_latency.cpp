// Regenerates the Section 4 pipeline-latency numbers: the time for a
// non-blocking LAPI_Put / LAPI_Get call to return control to the user
// program ("the pipeline latency for Put is 16us and for Get is 19us").
#include "common.hpp"

int main() {
  using namespace splap::benchx;
  const PipelineLatency p = measure_pipeline_latency();
  print_header("Section 4: pipeline latency (non-blocking call return)",
               "Shah et al., IPPS'98, Section 4 text");
  print_row("LAPI_Put pipeline latency", p.put_us, 16.0, "us");
  print_row("LAPI_Get pipeline latency", p.get_us, 19.0, "us");
  return 0;
}
