// Regenerates Figure 3: bandwidth of GA put under the LAPI and MPL
// implementations, for 1-D and square 2-D array sections, 64 B .. 2 MB,
// plus the raw LAPI_Put curve for reference.
//
// Paper shape: MPL's larger send buffering makes its put return sooner for
// 1 KB < n < 20 KB; outside that window LAPI wins; GA-LAPI 1-D reaches
// within ~6% of raw LAPI_Put at the top; GA-MPL performs identically for
// 1-D and 2-D (one combined header+data message either way); GA-LAPI 2-D
// switches to the per-column LAPI_Put protocol around 0.5 MB.
#include <cstdio>
#include <vector>

#include "common.hpp"

int main() {
  using namespace splap;
  using ga::Transport;
  using ga::bench::ga_bandwidth_mb_s;
  using ga::bench::OpKind;
  using ga::bench::Shape;

  std::vector<std::int64_t> sizes;
  for (std::int64_t b = 64; b <= (2 << 20); b *= 4) sizes.push_back(b);
  sizes.push_back(2 << 20);

  std::printf("\n=== Figure 3: GA put bandwidth (MB/s), 4 nodes ===\n");
  std::printf("reproduces: Shah et al., IPPS'98, Figure 3\n");
  std::printf("%10s %12s %12s %12s %12s %12s\n", "bytes", "LAPI-1D",
              "LAPI-2D", "MPL-1D", "MPL-2D", "raw LAPI_Put");
  for (const auto b : sizes) {
    const double l1 = ga_bandwidth_mb_s(Transport::kLapi, OpKind::kPut,
                                        Shape::k1D, b);
    const double l2 = ga_bandwidth_mb_s(Transport::kLapi, OpKind::kPut,
                                        Shape::k2D, b);
    const double m1 = ga_bandwidth_mb_s(Transport::kMpl, OpKind::kPut,
                                        Shape::k1D, b);
    const double m2 = ga_bandwidth_mb_s(Transport::kMpl, OpKind::kPut,
                                        Shape::k2D, b);
    const double raw = ga::bench::raw_lapi_put_mb_s(b);
    std::printf("%10lld %12.2f %12.2f %12.2f %12.2f %12.2f\n",
                static_cast<long long>(b), l1, l2, m1, m2, raw);
  }
  std::printf(
      "\nexpected shape: MPL ahead of LAPI for 1KB<n<20KB (send buffering); "
      "LAPI ahead outside;\nLAPI-1D within ~6%% of raw LAPI_Put at 2MB; "
      "MPL-1D ~= MPL-2D; LAPI-2D switches protocol ~0.5MB.\n");
  return 0;
}
