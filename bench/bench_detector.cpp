// Failure-detector benchmark: detection latency and false-positive behaviour
// of the legacy fixed-miss keepalive versus the adaptive accrual detector.
//
// Two scenario families, each run once per detector mode:
//
//   crash       the peer really dies (kill_node) mid-conversation; we report
//               the virtual time from the crash instant to the observer's
//               error handler firing. Both detectors must converge; the
//               interesting number is how fast.
//
//   straggler   the peer's adapter slows down by a multiplier for a 2.2 ms
//               window but never dies. A kill verdict here is by definition
//               a false positive. The sweep over severities (x1 control,
//               x8, x30, x120) traces out each detector's false-positive
//               curve: the fixed-miss rule kills anything slower than its
//               miss budget, while the accrual estimator widens its silence
//               tolerance with observed jitter and only escalates when the
//               peer leaves its own historical envelope.
//
// All numbers are virtual-time deterministic (fixed seeds, no wall clock in
// the measured path), so runs are reproducible byte-for-byte. Emits
// BENCH_detector.json (override with --json_out=PATH); the schema tag and
// series-name set are pinned by scripts/golden_check.sh.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lapi/context.hpp"
#include "net/machine.hpp"
#include "sim/sync.hpp"

namespace {

using namespace splap;

struct RunResult {
  std::string name;
  const char* mode = "";       // "legacy" | "accrual"
  const char* scenario = "";   // "crash" | "straggler"
  int multiplier = 1;          // straggler severity (1 = control)
  double detection_latency_us = -1;  // crash runs only
  std::int64_t false_kills = 0;      // straggler runs: handler calls
  std::int64_t suspected = 0;
  std::int64_t healed = 0;
  std::int64_t probes = 0;
  std::int64_t completed_puts = 0;
};

lapi::Config detector_config(bool legacy) {
  lapi::Config cfg;
  cfg.keepalive_interval = microseconds(25);
  cfg.keepalive_legacy = legacy;
  // A generous retry ladder so the keepalive path, not retransmit
  // exhaustion, is the detector under test — but still bounded: the ladder
  // doubles, so the cumulative ladder is ~2^retries * rto and a false kill
  // of a peer that then never answers must not stretch virtual time (and
  // the 25 us keepalive tick count) into the stratosphere.
  cfg.retransmit_timeout = microseconds(100);
  cfg.max_retries = 12;
  return cfg;
}

/// The peer crashes at t=300us while the observer has a put in flight.
/// Reported latency: crash instant -> error handler.
RunResult run_crash(bool legacy) {
  constexpr Time kCrashAt = microseconds(300);
  RunResult r;
  r.mode = legacy ? "legacy" : "accrual";
  r.scenario = "crash";
  r.name = std::string(r.mode) + "_crash";

  net::Machine::Config mc;
  mc.tasks = 2;
  mc.fabric.seed = 977;
  net::Machine m(mc);
  m.kill_node(1, kCrashAt);

  Time detected = -1;
  std::vector<std::byte> tgt(512);
  (void)m.run_spmd([&](net::Node& n) {
    lapi::Config cfg;
    if (n.id() == 0) {
      cfg = detector_config(legacy);
      cfg.error_handler = [&](lapi::Context& c, int, Status) {
        if (detected < 0) detected = c.engine().now();
      };
    }
    lapi::Context ctx(n, cfg);
    if (n.id() == 0) {
      std::vector<std::byte> src(512, std::byte{0x2B});
      // Warm the estimator with a steady rhythm before the crash.
      for (int i = 0; i < 8; ++i) {
        lapi::Counter cmpl;
        (void)ctx.put(1, src, tgt.data(), nullptr, nullptr, &cmpl);
        (void)ctx.waitcntr(cmpl, 1);
        sim::Actor::current()->compute(microseconds(15));
      }
      // One put straddling the crash keeps the keepalive armed.
      lapi::Counter cmpl;
      (void)ctx.put(1, src, tgt.data(), nullptr, nullptr, &cmpl);
      while (!ctx.peer_failed(1)) {
        sim::Actor::current()->compute(microseconds(10));
      }
      (void)ctx.waitcntr(cmpl, 1);
    } else {
      sim::Actor::current()->compute(milliseconds(20.0));
    }
  });

  r.detection_latency_us =
      detected < 0 ? -1 : static_cast<double>(detected - kCrashAt) / 1000.0;
  r.probes = m.engine().counters().get("lapi.keepalive_probes");
  r.suspected = m.engine().counters().get("lapi.peer_suspected");
  r.healed = m.engine().counters().get("lapi.peer_healed");
  return r;
}

/// The peer's adapter runs `multiplier`x slow for [400us, 2600us) but stays
/// alive; every kill verdict is a false positive.
RunResult run_straggler(bool legacy, int multiplier) {
  constexpr int kPuts = 40;
  RunResult r;
  r.mode = legacy ? "legacy" : "accrual";
  r.scenario = "straggler";
  r.multiplier = multiplier;
  r.name = std::string(r.mode) + "_straggler_x" + std::to_string(multiplier);

  net::Machine::Config mc;
  mc.tasks = 2;
  mc.fabric.seed = 977;
  if (multiplier > 1) {
    net::Straggler slow;
    slow.node = 1;
    slow.multiplier = multiplier;
    slow.from = microseconds(400);
    slow.until = microseconds(2600);
    mc.fabric.fault.stragglers.push_back(slow);
  }
  net::Machine m(mc);

  std::int64_t kills = 0;
  std::int64_t completed = 0;
  std::vector<std::byte> tgt(512);
  (void)m.run_spmd([&](net::Node& n) {
    lapi::Config cfg;
    if (n.id() == 0) {
      cfg = detector_config(legacy);
      cfg.error_handler = [&](lapi::Context&, int, Status) { ++kills; };
    }
    lapi::Context ctx(n, cfg);
    if (n.id() == 0) {
      std::vector<std::byte> src(512, std::byte{0x6C});
      for (int i = 0; i < kPuts; ++i) {
        lapi::Counter cmpl;
        if (ctx.put(1, src, tgt.data(), nullptr, nullptr, &cmpl) != Status::kOk)
          continue;
        if (ctx.waitcntr(cmpl, 1) == Status::kOk) ++completed;
        sim::Actor::current()->compute(microseconds(10));
      }
      sim::Actor::current()->compute(milliseconds(3.0));
    } else {
      // The subject must outlive the observer's whole loop (the straggle
      // window leaves an adapter backlog that stretches the put pace long
      // after it closes); if it terms with a put in flight the observer
      // detects a real death and the false-positive count is polluted.
      sim::Actor::current()->compute(milliseconds(100.0));
    }
  });

  r.false_kills = kills;
  r.completed_puts = completed;
  r.suspected = m.engine().counters().get("lapi.peer_suspected");
  r.healed = m.engine().counters().get("lapi.peer_healed");
  r.probes = m.engine().counters().get("lapi.keepalive_probes");
  return r;
}

bool write_json(const std::string& path, const std::vector<RunResult>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"schema\": \"splap-detector-v1\",\n");
  std::fprintf(f, "  \"binary\": \"bench_detector\",\n");
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"mode\": \"%s\", \"scenario\": \"%s\", "
        "\"multiplier\": %d, \"detection_latency_us\": %.1f, "
        "\"false_kills\": %lld, \"suspected\": %lld, \"healed\": %lld, "
        "\"probes\": %lld, \"completed_puts\": %lld}%s\n",
        r.name.c_str(), r.mode, r.scenario, r.multiplier,
        r.detection_latency_us, static_cast<long long>(r.false_kills),
        static_cast<long long>(r.suspected), static_cast<long long>(r.healed),
        static_cast<long long>(r.probes),
        static_cast<long long>(r.completed_puts),
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_detector.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json_out=", 11) == 0) json_path = argv[i] + 11;
  }

  std::vector<RunResult> runs;
  for (const bool legacy : {true, false}) {
    RunResult r = run_crash(legacy);
    std::printf("%-24s detection latency %8.1f us  (%lld probes)\n",
                r.name.c_str(), r.detection_latency_us,
                static_cast<long long>(r.probes));
    runs.push_back(std::move(r));
  }
  for (const int mult : {1, 8, 30, 120}) {
    for (const bool legacy : {true, false}) {
      RunResult r = run_straggler(legacy, mult);
      std::printf(
          "%-24s false kills %3lld  suspected %3lld  healed %3lld  "
          "completed %2lld/40\n",
          r.name.c_str(), static_cast<long long>(r.false_kills),
          static_cast<long long>(r.suspected),
          static_cast<long long>(r.healed),
          static_cast<long long>(r.completed_puts));
      runs.push_back(std::move(r));
    }
  }

  if (!write_json(json_path, runs)) {
    std::fprintf(stderr, "bench_detector: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}
