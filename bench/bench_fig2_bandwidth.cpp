// Regenerates Figure 2: one-way bandwidth of LAPI (put + completion wait)
// vs MPI (send + completion echo) with the default 4 KB eager limit and
// with MP_EAGER_LIMIT=65536, for message sizes 16 B .. 2 MB.
//
// Paper shape: asymptotes ~97 (LAPI) / ~98 (MPI) MB/s; the LAPI curve rises
// much faster (half-bandwidth point ~8 KB vs ~23 KB); the default MPI curve
// flattens above the 4 KB eager limit (rendezvous round trip); the eager-64K
// setting defers that; at medium sizes LAPI leads; at the top MPI ends
// slightly above LAPI (16- vs 48-byte packet headers).
#include <cstdio>
#include <vector>

#include "common.hpp"

int main() {
  using namespace splap::benchx;
  std::vector<std::int64_t> sizes;
  for (std::int64_t b = 16; b <= (2 << 20); b *= 2) sizes.push_back(b);

  // Every curve point is an independent deterministic simulation, so the
  // sweep fans out across a worker pool; results land in index-keyed slots
  // and the table below is bit-identical to a serial run.
  std::vector<double> lapi_curve(sizes.size()), mpi_curve(sizes.size()),
      mpi64_curve(sizes.size());
  parallel_sweep(sizes.size(), [&](std::size_t i) {
    const std::int64_t b = sizes[i];
    lapi_curve[i] = fig2_lapi(b);
    mpi_curve[i] = fig2_mpi(b, 4096);
    mpi64_curve[i] = fig2_mpi(b, 65536);
  });

  std::printf("\n=== Figure 2: one-way bandwidth (MB/s) ===\n");
  std::printf("reproduces: Shah et al., IPPS'98, Figure 2\n");
  std::printf("%10s %12s %16s %16s\n", "bytes", "LAPI", "MPI(eager=4K)",
              "MPI(eager=64K)");
  double lapi_peak = 0, mpi_peak = 0;
  double lapi_half_point = 0, mpi_half_point = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%10lld %12.2f %16.2f %16.2f\n",
                static_cast<long long>(sizes[i]), lapi_curve[i], mpi_curve[i],
                mpi64_curve[i]);
    lapi_peak = std::max(lapi_peak, lapi_curve[i]);
    mpi_peak = std::max(mpi_peak, mpi64_curve[i]);
  }
  // Interpolate the half-bandwidth points.
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    if (lapi_half_point == 0 && lapi_curve[i] >= lapi_peak / 2) {
      lapi_half_point = static_cast<double>(sizes[i]);
    }
    if (mpi_half_point == 0 && mpi_curve[i] >= mpi_peak / 2) {
      mpi_half_point = static_cast<double>(sizes[i]);
    }
  }
  std::printf("\nderived quantities            measured      paper\n");
  std::printf("LAPI asymptotic bandwidth   %8.1f MB/s   ~97 MB/s\n", lapi_peak);
  std::printf("MPI  asymptotic bandwidth   %8.1f MB/s   ~98 MB/s\n", mpi_peak);
  std::printf("LAPI half-bandwidth point   %8.0f B      ~8 KB\n",
              lapi_half_point);
  std::printf("MPI  half-bandwidth point   %8.0f B      ~23 KB\n",
              mpi_half_point);
  return 0;
}
