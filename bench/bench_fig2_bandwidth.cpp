// Regenerates Figure 2: one-way bandwidth of LAPI (put + completion wait)
// vs MPI (send + completion echo) with the default 4 KB eager limit and
// with MP_EAGER_LIMIT=65536, for message sizes 16 B .. 2 MB.
//
// Paper shape: asymptotes ~97 (LAPI) / ~98 (MPI) MB/s; the LAPI curve rises
// much faster (half-bandwidth point ~8 KB vs ~23 KB); the default MPI curve
// flattens above the 4 KB eager limit (rendezvous round trip); the eager-64K
// setting defers that; at medium sizes LAPI leads; at the top MPI ends
// slightly above LAPI (16- vs 48-byte packet headers).
// With --json_out=PATH it additionally sweeps the three transfer protocols
// (eager forced / rendezvous forced / zero-copy cold & warm cache) over the
// same put+completion-wait series and writes BENCH_rdma.json
// (schema splap-rdma-v1: bandwidth per protocol per size + the crossover
// points). The default invocation's stdout is unchanged.
#include <cstdio>
#include <cstring>
#include <vector>

#include "common.hpp"
#include "ga/bench_harness.hpp"

namespace {

/// One protocol-forced bandwidth curve over `sizes`.
std::vector<double> protocol_curve(
    const std::vector<std::int64_t>& sizes,
    const splap::ga::bench::RawPutOpts& opts) {
  std::vector<double> curve(sizes.size());
  splap::benchx::parallel_sweep(sizes.size(), [&](std::size_t i) {
    curve[i] = splap::ga::bench::raw_lapi_put_mb_s(sizes[i], opts);
  });
  return curve;
}

/// Smallest size at which the challenger's bandwidth strictly exceeds the
/// incumbent's; 0 = never within the sweep.
long long crossover_bytes(const std::vector<std::int64_t>& sizes,
                          const std::vector<double>& incumbent,
                          const std::vector<double>& challenger) {
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (challenger[i] > incumbent[i]) return sizes[i];
  }
  return 0;
}

void emit_rdma_json(const char* path) {
  using splap::ga::bench::RawPutOpts;
  std::vector<std::int64_t> sizes;
  for (std::int64_t b = 1024; b <= (2 << 20); b *= 2) sizes.push_back(b);

  // Eager: bcopy limit above every sweep size. Rendezvous: limit 0, rdma
  // off. Zero-copy: limit 0 and a threshold at the sweep floor, so every
  // point rides the registered-memory path — cold repins each transfer
  // (cache disabled), warm uses the default cache and amortizes the pin
  // over the measurement series.
  RawPutOpts eager;
  eager.bcopy_limit_override = 4 << 20;
  RawPutOpts rendezvous;
  rendezvous.bcopy_limit_override = 0;
  RawPutOpts cold = rendezvous;
  cold.lapi.rdma_enabled = true;
  cold.lapi.rdma_threshold = 1024;
  cold.lapi.reg_cache_entries = 0;
  RawPutOpts warm = cold;
  warm.lapi.reg_cache_entries = 64;

  const std::vector<double> eager_c = protocol_curve(sizes, eager);
  const std::vector<double> rndv_c = protocol_curve(sizes, rendezvous);
  const std::vector<double> cold_c = protocol_curve(sizes, cold);
  const std::vector<double> warm_c = protocol_curve(sizes, warm);

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"splap-rdma-v1\",\n");
  std::fprintf(f, "  \"series\": [\n");
  const struct {
    const char* name;
    const std::vector<double>* curve;
  } series[] = {{"eager", &eager_c},
                {"rendezvous", &rndv_c},
                {"zero_copy_cold", &cold_c},
                {"zero_copy_warm", &warm_c}};
  for (std::size_t s = 0; s < 4; ++s) {
    std::fprintf(f, "    {\"name\": \"%s\", \"points\": [\n", series[s].name);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::fprintf(f, "      {\"bytes\": %lld, \"mb_s\": %.3f}%s\n",
                   static_cast<long long>(sizes[i]), (*series[s].curve)[i],
                   i + 1 < sizes.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", s + 1 < 4 ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"crossover_eager_to_rendezvous_bytes\": %lld,\n",
               crossover_bytes(sizes, eager_c, rndv_c));
  std::fprintf(f, "  \"crossover_rendezvous_to_zero_copy_cold_bytes\": %lld,\n",
               crossover_bytes(sizes, rndv_c, cold_c));
  std::fprintf(f, "  \"crossover_rendezvous_to_zero_copy_warm_bytes\": %lld\n",
               crossover_bytes(sizes, rndv_c, warm_c));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace splap::benchx;
  const char* json_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_out = argv[i] + 11;
    }
  }
  std::vector<std::int64_t> sizes;
  for (std::int64_t b = 16; b <= (2 << 20); b *= 2) sizes.push_back(b);

  // Every curve point is an independent deterministic simulation, so the
  // sweep fans out across a worker pool; results land in index-keyed slots
  // and the table below is bit-identical to a serial run.
  std::vector<double> lapi_curve(sizes.size()), mpi_curve(sizes.size()),
      mpi64_curve(sizes.size());
  parallel_sweep(sizes.size(), [&](std::size_t i) {
    const std::int64_t b = sizes[i];
    lapi_curve[i] = fig2_lapi(b);
    mpi_curve[i] = fig2_mpi(b, 4096);
    mpi64_curve[i] = fig2_mpi(b, 65536);
  });

  std::printf("\n=== Figure 2: one-way bandwidth (MB/s) ===\n");
  std::printf("reproduces: Shah et al., IPPS'98, Figure 2\n");
  std::printf("%10s %12s %16s %16s\n", "bytes", "LAPI", "MPI(eager=4K)",
              "MPI(eager=64K)");
  double lapi_peak = 0, mpi_peak = 0;
  double lapi_half_point = 0, mpi_half_point = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%10lld %12.2f %16.2f %16.2f\n",
                static_cast<long long>(sizes[i]), lapi_curve[i], mpi_curve[i],
                mpi64_curve[i]);
    lapi_peak = std::max(lapi_peak, lapi_curve[i]);
    mpi_peak = std::max(mpi_peak, mpi64_curve[i]);
  }
  // Interpolate the half-bandwidth points.
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    if (lapi_half_point == 0 && lapi_curve[i] >= lapi_peak / 2) {
      lapi_half_point = static_cast<double>(sizes[i]);
    }
    if (mpi_half_point == 0 && mpi_curve[i] >= mpi_peak / 2) {
      mpi_half_point = static_cast<double>(sizes[i]);
    }
  }
  std::printf("\nderived quantities            measured      paper\n");
  std::printf("LAPI asymptotic bandwidth   %8.1f MB/s   ~97 MB/s\n", lapi_peak);
  std::printf("MPI  asymptotic bandwidth   %8.1f MB/s   ~98 MB/s\n", mpi_peak);
  std::printf("LAPI half-bandwidth point   %8.0f B      ~8 KB\n",
              lapi_half_point);
  std::printf("MPI  half-bandwidth point   %8.0f B      ~23 KB\n",
              mpi_half_point);
  if (json_out != nullptr) emit_rdma_json(json_out);
  return 0;
}
