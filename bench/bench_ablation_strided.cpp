// Ablation A4: the paper's Section 6 future-work item 1, implemented and
// measured — "Providing a non-contiguous interface to LAPI_Put and LAPI_Get
// to help applications like GA which require non-contiguous data transfer
// by removing the overhead associated with multiple requests or the copy
// overhead in the AM-based implementations."
//
// Compares GA strided 2-D put/get bandwidth with the 1998 protocols (AM
// chunks / per-column RMC) against the same operations carried by one
// LAPI_Putv / LAPI_Getv message.
#include <cmath>
#include <cstdio>
#include <vector>

#include "ga/bench_harness.hpp"

namespace {

using namespace splap;

double measure(std::int64_t bytes, bool strided_rmc, bool get) {
  const std::int64_t elems = bytes / 8;
  std::int64_t s = 2;
  while ((s + 1) * (s + 1) <= elems) ++s;
  net::Machine::Config mc;
  mc.tasks = 2;
  net::Machine m(mc);
  ga::Config cfg;
  cfg.use_strided_rmc = strided_rmc;
  Time elapsed = 0;
  const int reps = ga::bench::series_length(bytes);
  const Status st = m.run_spmd([&](net::Node& n) {
    ga::Runtime rt(n, cfg);
    ga::GlobalArray a = rt.create(3 * s, 3 * s);
    rt.sync();
    if (rt.me() == 0) {
      const ga::Patch blk = a.block_of(1);
      std::vector<double> buf(static_cast<std::size_t>(s * s), 2.0);
      const Time t0 = rt.engine().now();
      for (int r = 0; r < reps; ++r) {
        const std::int64_t off = r % 2;
        ga::Patch p{blk.lo1 + off, blk.lo1 + off + s - 1, blk.lo2 + off,
                    blk.lo2 + off + s - 1};
        p.hi1 = std::min(p.hi1, blk.hi1);
        p.hi2 = std::min(p.hi2, blk.hi2);
        if (get) {
          a.get(p, buf.data(), p.rows());
        } else {
          a.put(p, buf.data(), p.rows());
        }
      }
      rt.fence();
      elapsed = rt.engine().now() - t0;
    }
    rt.sync();
    rt.destroy(a);
  });
  SPLAP_REQUIRE(st == Status::kOk, "strided ablation failed");
  return mb_per_s(s * s * 8 * reps, elapsed);
}

}  // namespace

int main() {
  std::printf("\n=== Ablation A4: LAPI_Putv/Getv (Section 6, item 1) ===\n");
  std::printf("strided 2-D GA transfer bandwidth (MB/s): 1998 hybrid vs the "
              "non-contiguous interface\n\n");
  std::printf("%10s %14s %14s %14s %14s\n", "bytes", "put hybrid",
              "put Putv", "get hybrid", "get Getv");
  for (std::int64_t b : {16384, 65536, 262144, 1048576}) {
    const double p0 = measure(b, false, false);
    const double p1 = measure(b, true, false);
    const double g0 = measure(b, false, true);
    const double g1 = measure(b, true, true);
    std::printf("%10lld %14.2f %14.2f %14.2f %14.2f\n",
                static_cast<long long>(b), p0, p1, g0, g1);
  }
  std::printf("\nexpected: puts gain heavily (no per-chunk requests, no "
              "handler-side unpack; the gather\nhappens once at the origin); "
              "gets gain modestly — the serving side must still gather\nthe "
              "strided source, and doing it in one piece serializes the "
              "dispatcher where the AM\nprotocol pipelined it. Section 6's "
              "prediction holds for the request/copy overheads it\nnames, "
              "and the measurement adds the serving-side caveat.\n");
  return 0;
}
