file(REMOVE_RECURSE
  "CMakeFiles/splap_ga.dir/bench_harness.cpp.o"
  "CMakeFiles/splap_ga.dir/bench_harness.cpp.o.d"
  "CMakeFiles/splap_ga.dir/lapi_backend.cpp.o"
  "CMakeFiles/splap_ga.dir/lapi_backend.cpp.o.d"
  "CMakeFiles/splap_ga.dir/mpl_backend.cpp.o"
  "CMakeFiles/splap_ga.dir/mpl_backend.cpp.o.d"
  "CMakeFiles/splap_ga.dir/runtime.cpp.o"
  "CMakeFiles/splap_ga.dir/runtime.cpp.o.d"
  "libsplap_ga.a"
  "libsplap_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splap_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
