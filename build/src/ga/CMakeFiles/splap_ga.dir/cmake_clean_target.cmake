file(REMOVE_RECURSE
  "libsplap_ga.a"
)
