# Empty dependencies file for splap_ga.
# This may be replaced when dependencies are built.
