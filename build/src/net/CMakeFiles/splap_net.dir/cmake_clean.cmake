file(REMOVE_RECURSE
  "CMakeFiles/splap_net.dir/fabric.cpp.o"
  "CMakeFiles/splap_net.dir/fabric.cpp.o.d"
  "CMakeFiles/splap_net.dir/machine.cpp.o"
  "CMakeFiles/splap_net.dir/machine.cpp.o.d"
  "libsplap_net.a"
  "libsplap_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splap_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
