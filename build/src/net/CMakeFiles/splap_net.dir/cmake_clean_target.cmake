file(REMOVE_RECURSE
  "libsplap_net.a"
)
