# Empty dependencies file for splap_net.
# This may be replaced when dependencies are built.
