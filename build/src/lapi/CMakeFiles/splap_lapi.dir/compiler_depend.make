# Empty compiler generated dependencies file for splap_lapi.
# This may be replaced when dependencies are built.
