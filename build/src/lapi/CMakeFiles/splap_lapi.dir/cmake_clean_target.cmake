file(REMOVE_RECURSE
  "libsplap_lapi.a"
)
