file(REMOVE_RECURSE
  "CMakeFiles/splap_lapi.dir/context.cpp.o"
  "CMakeFiles/splap_lapi.dir/context.cpp.o.d"
  "libsplap_lapi.a"
  "libsplap_lapi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splap_lapi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
