file(REMOVE_RECURSE
  "CMakeFiles/splap_sim.dir/engine.cpp.o"
  "CMakeFiles/splap_sim.dir/engine.cpp.o.d"
  "libsplap_sim.a"
  "libsplap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
