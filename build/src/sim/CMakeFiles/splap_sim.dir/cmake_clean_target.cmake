file(REMOVE_RECURSE
  "libsplap_sim.a"
)
