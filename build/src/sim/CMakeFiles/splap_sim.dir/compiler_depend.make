# Empty compiler generated dependencies file for splap_sim.
# This may be replaced when dependencies are built.
