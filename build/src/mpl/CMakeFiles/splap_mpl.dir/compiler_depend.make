# Empty compiler generated dependencies file for splap_mpl.
# This may be replaced when dependencies are built.
