file(REMOVE_RECURSE
  "CMakeFiles/splap_mpl.dir/comm.cpp.o"
  "CMakeFiles/splap_mpl.dir/comm.cpp.o.d"
  "libsplap_mpl.a"
  "libsplap_mpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splap_mpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
