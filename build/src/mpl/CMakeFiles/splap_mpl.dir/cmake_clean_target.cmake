file(REMOVE_RECURSE
  "libsplap_mpl.a"
)
