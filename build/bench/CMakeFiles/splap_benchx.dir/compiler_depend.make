# Empty compiler generated dependencies file for splap_benchx.
# This may be replaced when dependencies are built.
