file(REMOVE_RECURSE
  "../lib/libsplap_benchx.a"
)
