file(REMOVE_RECURSE
  "../lib/libsplap_benchx.a"
  "../lib/libsplap_benchx.pdb"
  "CMakeFiles/splap_benchx.dir/common.cpp.o"
  "CMakeFiles/splap_benchx.dir/common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splap_benchx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
