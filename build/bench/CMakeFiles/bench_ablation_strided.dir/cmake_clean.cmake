file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_strided.dir/bench_ablation_strided.cpp.o"
  "CMakeFiles/bench_ablation_strided.dir/bench_ablation_strided.cpp.o.d"
  "bench_ablation_strided"
  "bench_ablation_strided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_strided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
