# Empty compiler generated dependencies file for bench_ablation_strided.
# This may be replaced when dependencies are built.
