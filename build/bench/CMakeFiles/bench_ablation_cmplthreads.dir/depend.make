# Empty dependencies file for bench_ablation_cmplthreads.
# This may be replaced when dependencies are built.
