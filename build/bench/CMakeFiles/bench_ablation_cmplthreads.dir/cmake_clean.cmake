file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cmplthreads.dir/bench_ablation_cmplthreads.cpp.o"
  "CMakeFiles/bench_ablation_cmplthreads.dir/bench_ablation_cmplthreads.cpp.o.d"
  "bench_ablation_cmplthreads"
  "bench_ablation_cmplthreads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cmplthreads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
