file(REMOVE_RECURSE
  "CMakeFiles/bench_ga_latency.dir/bench_ga_latency.cpp.o"
  "CMakeFiles/bench_ga_latency.dir/bench_ga_latency.cpp.o.d"
  "bench_ga_latency"
  "bench_ga_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ga_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
