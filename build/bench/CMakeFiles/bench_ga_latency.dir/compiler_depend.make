# Empty compiler generated dependencies file for bench_ga_latency.
# This may be replaced when dependencies are built.
