file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeline_latency.dir/bench_pipeline_latency.cpp.o"
  "CMakeFiles/bench_pipeline_latency.dir/bench_pipeline_latency.cpp.o.d"
  "bench_pipeline_latency"
  "bench_pipeline_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
