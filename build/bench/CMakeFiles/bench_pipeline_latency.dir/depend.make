# Empty dependencies file for bench_pipeline_latency.
# This may be replaced when dependencies are built.
