# Empty dependencies file for bench_fig4_ga_get.
# This may be replaced when dependencies are built.
