file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ga_get.dir/bench_fig4_ga_get.cpp.o"
  "CMakeFiles/bench_fig4_ga_get.dir/bench_fig4_ga_get.cpp.o.d"
  "bench_fig4_ga_get"
  "bench_fig4_ga_get.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ga_get.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
