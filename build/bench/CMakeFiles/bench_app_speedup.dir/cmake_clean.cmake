file(REMOVE_RECURSE
  "CMakeFiles/bench_app_speedup.dir/bench_app_speedup.cpp.o"
  "CMakeFiles/bench_app_speedup.dir/bench_app_speedup.cpp.o.d"
  "bench_app_speedup"
  "bench_app_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
