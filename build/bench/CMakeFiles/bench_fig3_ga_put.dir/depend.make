# Empty dependencies file for bench_fig3_ga_put.
# This may be replaced when dependencies are built.
