
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_ga_put.cpp" "bench/CMakeFiles/bench_fig3_ga_put.dir/bench_fig3_ga_put.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_ga_put.dir/bench_fig3_ga_put.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/splap_benchx.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/splap_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/lapi/CMakeFiles/splap_lapi.dir/DependInfo.cmake"
  "/root/repo/build/src/mpl/CMakeFiles/splap_mpl.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/splap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/splap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
