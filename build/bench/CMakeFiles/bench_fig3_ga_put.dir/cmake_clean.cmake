file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_ga_put.dir/bench_fig3_ga_put.cpp.o"
  "CMakeFiles/bench_fig3_ga_put.dir/bench_fig3_ga_put.cpp.o.d"
  "bench_fig3_ga_put"
  "bench_fig3_ga_put.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_ga_put.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
