file(REMOVE_RECURSE
  "CMakeFiles/lapi_basic_test.dir/lapi_basic_test.cpp.o"
  "CMakeFiles/lapi_basic_test.dir/lapi_basic_test.cpp.o.d"
  "lapi_basic_test"
  "lapi_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapi_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
