# Empty compiler generated dependencies file for lapi_basic_test.
# This may be replaced when dependencies are built.
