file(REMOVE_RECURSE
  "CMakeFiles/ga_distribution_test.dir/ga_distribution_test.cpp.o"
  "CMakeFiles/ga_distribution_test.dir/ga_distribution_test.cpp.o.d"
  "ga_distribution_test"
  "ga_distribution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
