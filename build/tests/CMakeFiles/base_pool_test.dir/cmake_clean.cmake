file(REMOVE_RECURSE
  "CMakeFiles/base_pool_test.dir/base_pool_test.cpp.o"
  "CMakeFiles/base_pool_test.dir/base_pool_test.cpp.o.d"
  "base_pool_test"
  "base_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
