# Empty dependencies file for base_pool_test.
# This may be replaced when dependencies are built.
