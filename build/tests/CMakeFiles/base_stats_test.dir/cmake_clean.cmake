file(REMOVE_RECURSE
  "CMakeFiles/base_stats_test.dir/base_stats_test.cpp.o"
  "CMakeFiles/base_stats_test.dir/base_stats_test.cpp.o.d"
  "base_stats_test"
  "base_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
