# Empty dependencies file for base_stats_test.
# This may be replaced when dependencies are built.
