file(REMOVE_RECURSE
  "CMakeFiles/ga_basic_test.dir/ga_basic_test.cpp.o"
  "CMakeFiles/ga_basic_test.dir/ga_basic_test.cpp.o.d"
  "ga_basic_test"
  "ga_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
