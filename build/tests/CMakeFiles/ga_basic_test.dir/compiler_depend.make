# Empty compiler generated dependencies file for ga_basic_test.
# This may be replaced when dependencies are built.
