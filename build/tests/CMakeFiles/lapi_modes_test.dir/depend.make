# Empty dependencies file for lapi_modes_test.
# This may be replaced when dependencies are built.
