file(REMOVE_RECURSE
  "CMakeFiles/lapi_modes_test.dir/lapi_modes_test.cpp.o"
  "CMakeFiles/lapi_modes_test.dir/lapi_modes_test.cpp.o.d"
  "lapi_modes_test"
  "lapi_modes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapi_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
