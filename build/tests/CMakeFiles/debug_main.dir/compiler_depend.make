# Empty compiler generated dependencies file for debug_main.
# This may be replaced when dependencies are built.
