file(REMOVE_RECURSE
  "CMakeFiles/debug_main.dir/debug_main.cpp.o"
  "CMakeFiles/debug_main.dir/debug_main.cpp.o.d"
  "debug_main"
  "debug_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
