file(REMOVE_RECURSE
  "CMakeFiles/ga_property_test.dir/ga_property_test.cpp.o"
  "CMakeFiles/ga_property_test.dir/ga_property_test.cpp.o.d"
  "ga_property_test"
  "ga_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
