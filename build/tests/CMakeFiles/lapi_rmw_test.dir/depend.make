# Empty dependencies file for lapi_rmw_test.
# This may be replaced when dependencies are built.
