file(REMOVE_RECURSE
  "CMakeFiles/lapi_rmw_test.dir/lapi_rmw_test.cpp.o"
  "CMakeFiles/lapi_rmw_test.dir/lapi_rmw_test.cpp.o.d"
  "lapi_rmw_test"
  "lapi_rmw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapi_rmw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
