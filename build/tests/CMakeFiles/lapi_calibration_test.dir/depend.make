# Empty dependencies file for lapi_calibration_test.
# This may be replaced when dependencies are built.
