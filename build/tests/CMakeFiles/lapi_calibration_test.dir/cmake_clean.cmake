file(REMOVE_RECURSE
  "CMakeFiles/lapi_calibration_test.dir/lapi_calibration_test.cpp.o"
  "CMakeFiles/lapi_calibration_test.dir/lapi_calibration_test.cpp.o.d"
  "lapi_calibration_test"
  "lapi_calibration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapi_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
