file(REMOVE_RECURSE
  "CMakeFiles/mpl_basic_test.dir/mpl_basic_test.cpp.o"
  "CMakeFiles/mpl_basic_test.dir/mpl_basic_test.cpp.o.d"
  "mpl_basic_test"
  "mpl_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpl_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
