# Empty dependencies file for mpl_basic_test.
# This may be replaced when dependencies are built.
