file(REMOVE_RECURSE
  "CMakeFiles/base_strided_test.dir/base_strided_test.cpp.o"
  "CMakeFiles/base_strided_test.dir/base_strided_test.cpp.o.d"
  "base_strided_test"
  "base_strided_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_strided_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
