# Empty dependencies file for base_strided_test.
# This may be replaced when dependencies are built.
