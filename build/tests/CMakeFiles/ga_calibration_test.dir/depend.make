# Empty dependencies file for ga_calibration_test.
# This may be replaced when dependencies are built.
