file(REMOVE_RECURSE
  "CMakeFiles/ga_calibration_test.dir/ga_calibration_test.cpp.o"
  "CMakeFiles/ga_calibration_test.dir/ga_calibration_test.cpp.o.d"
  "ga_calibration_test"
  "ga_calibration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
