file(REMOVE_RECURSE
  "CMakeFiles/mpl_calibration_test.dir/mpl_calibration_test.cpp.o"
  "CMakeFiles/mpl_calibration_test.dir/mpl_calibration_test.cpp.o.d"
  "mpl_calibration_test"
  "mpl_calibration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpl_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
