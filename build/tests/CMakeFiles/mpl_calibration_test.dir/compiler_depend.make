# Empty compiler generated dependencies file for mpl_calibration_test.
# This may be replaced when dependencies are built.
