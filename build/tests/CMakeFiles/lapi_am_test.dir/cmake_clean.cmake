file(REMOVE_RECURSE
  "CMakeFiles/lapi_am_test.dir/lapi_am_test.cpp.o"
  "CMakeFiles/lapi_am_test.dir/lapi_am_test.cpp.o.d"
  "lapi_am_test"
  "lapi_am_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapi_am_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
