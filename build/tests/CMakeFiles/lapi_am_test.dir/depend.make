# Empty dependencies file for lapi_am_test.
# This may be replaced when dependencies are built.
