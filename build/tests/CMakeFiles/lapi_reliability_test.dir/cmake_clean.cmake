file(REMOVE_RECURSE
  "CMakeFiles/lapi_reliability_test.dir/lapi_reliability_test.cpp.o"
  "CMakeFiles/lapi_reliability_test.dir/lapi_reliability_test.cpp.o.d"
  "lapi_reliability_test"
  "lapi_reliability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapi_reliability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
