# Empty dependencies file for lapi_reliability_test.
# This may be replaced when dependencies are built.
