file(REMOVE_RECURSE
  "CMakeFiles/ga_ops_test.dir/ga_ops_test.cpp.o"
  "CMakeFiles/ga_ops_test.dir/ga_ops_test.cpp.o.d"
  "ga_ops_test"
  "ga_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
