# Empty compiler generated dependencies file for ga_ops_test.
# This may be replaced when dependencies are built.
