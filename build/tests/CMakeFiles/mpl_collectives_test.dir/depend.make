# Empty dependencies file for mpl_collectives_test.
# This may be replaced when dependencies are built.
