file(REMOVE_RECURSE
  "CMakeFiles/mpl_collectives_test.dir/mpl_collectives_test.cpp.o"
  "CMakeFiles/mpl_collectives_test.dir/mpl_collectives_test.cpp.o.d"
  "mpl_collectives_test"
  "mpl_collectives_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpl_collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
