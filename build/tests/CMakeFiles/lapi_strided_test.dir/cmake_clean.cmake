file(REMOVE_RECURSE
  "CMakeFiles/lapi_strided_test.dir/lapi_strided_test.cpp.o"
  "CMakeFiles/lapi_strided_test.dir/lapi_strided_test.cpp.o.d"
  "lapi_strided_test"
  "lapi_strided_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapi_strided_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
