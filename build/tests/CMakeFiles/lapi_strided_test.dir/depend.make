# Empty dependencies file for lapi_strided_test.
# This may be replaced when dependencies are built.
