file(REMOVE_RECURSE
  "CMakeFiles/base_time_test.dir/base_time_test.cpp.o"
  "CMakeFiles/base_time_test.dir/base_time_test.cpp.o.d"
  "base_time_test"
  "base_time_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
