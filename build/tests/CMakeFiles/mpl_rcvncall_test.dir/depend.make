# Empty dependencies file for mpl_rcvncall_test.
# This may be replaced when dependencies are built.
