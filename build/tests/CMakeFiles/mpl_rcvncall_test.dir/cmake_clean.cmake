file(REMOVE_RECURSE
  "CMakeFiles/mpl_rcvncall_test.dir/mpl_rcvncall_test.cpp.o"
  "CMakeFiles/mpl_rcvncall_test.dir/mpl_rcvncall_test.cpp.o.d"
  "mpl_rcvncall_test"
  "mpl_rcvncall_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpl_rcvncall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
