# Empty compiler generated dependencies file for lapi_ordering_test.
# This may be replaced when dependencies are built.
