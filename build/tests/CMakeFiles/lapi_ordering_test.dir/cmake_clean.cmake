file(REMOVE_RECURSE
  "CMakeFiles/lapi_ordering_test.dir/lapi_ordering_test.cpp.o"
  "CMakeFiles/lapi_ordering_test.dir/lapi_ordering_test.cpp.o.d"
  "lapi_ordering_test"
  "lapi_ordering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapi_ordering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
