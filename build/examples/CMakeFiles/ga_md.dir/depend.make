# Empty dependencies file for ga_md.
# This may be replaced when dependencies are built.
