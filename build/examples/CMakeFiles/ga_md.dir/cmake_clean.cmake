file(REMOVE_RECURSE
  "CMakeFiles/ga_md.dir/ga_md.cpp.o"
  "CMakeFiles/ga_md.dir/ga_md.cpp.o.d"
  "ga_md"
  "ga_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
