file(REMOVE_RECURSE
  "CMakeFiles/ga_scf.dir/ga_scf.cpp.o"
  "CMakeFiles/ga_scf.dir/ga_scf.cpp.o.d"
  "ga_scf"
  "ga_scf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_scf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
