# Empty dependencies file for ga_scf.
# This may be replaced when dependencies are built.
