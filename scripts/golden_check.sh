#!/usr/bin/env bash
# Golden-output guard: the refactor-safety net for the deterministic outputs
# the repo's claims rest on. With faults off, these runs are pure virtual
# time — any byte of drift means event ordering changed, which is exactly
# what a transport-stack refactor must not do.
#
#   quickstart   the four-task walkthrough (virtual time + packet count)
#   table2       the paper's Table 2 latency reproduction
#   fig2         the bandwidth sweep of Figure 2 (also exercised with
#                SPLAP_SWEEP_THREADS elsewhere; the output is thread-count
#                invariant)
#   engine perf  BENCH_engine.json carries wall-clock timings that legitimately
#                vary run to run, so the guard pins its schema and benchmark
#                name set, not its bytes
#
# Usage: scripts/golden_check.sh <build-dir>
# Re-baselining (only after an intentional behavior change): re-run the three
# binaries and overwrite tests/golden/*.txt with their output.
set -euo pipefail
BUILD_DIR="${1:?usage: golden_check.sh <build-dir>}"
cd "$(dirname "$0")/.."
GOLD=tests/golden
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "-- quickstart"
"$BUILD_DIR"/examples/quickstart > "$TMP/quickstart.txt"
diff -u "$GOLD/quickstart.txt" "$TMP/quickstart.txt"

echo "-- table2"
"$BUILD_DIR"/bench/bench_table2_latency > "$TMP/table2.txt"
diff -u "$GOLD/table2.txt" "$TMP/table2.txt"

echo "-- fig2"
"$BUILD_DIR"/bench/bench_fig2_bandwidth > "$TMP/fig2.txt"
diff -u "$GOLD/fig2.txt" "$TMP/fig2.txt"

echo "-- engine perf schema"
"$BUILD_DIR"/bench/bench_engine_perf --json_out="$TMP/BENCH_engine.json" \
  > /dev/null
grep -q '"schema": "splap-bench-v1"' "$TMP/BENCH_engine.json"
for name in BM_EngineEventThroughput BM_ActorHandoff BM_FabricPacketRate \
            BM_LapiPutMessageRate; do
  grep -q "\"$name" "$TMP/BENCH_engine.json" \
    || { echo "missing benchmark $name in BENCH_engine.json"; exit 1; }
done

echo "golden outputs identical"
