#!/usr/bin/env bash
# Golden-output guard: the refactor-safety net for the deterministic outputs
# the repo's claims rest on. With faults off, these runs are pure virtual
# time — any byte of drift means event ordering changed, which is exactly
# what a transport-stack refactor must not do.
#
#   quickstart   the four-task walkthrough (virtual time + packet count)
#   table2       the paper's Table 2 latency reproduction
#   fig2         the bandwidth sweep of Figure 2 (also exercised with
#                SPLAP_SWEEP_THREADS elsewhere; the output is thread-count
#                invariant)
#   rdma         BENCH_rdma.json sweeps the three transfer protocols; its
#                bandwidths depend on the rdma cost constants, so the guard
#                pins schema, series-name set, and crossover keys, not bytes
#   detector     BENCH_detector.json sweeps legacy-vs-accrual detection over
#                crash and straggler scenarios; latencies depend on detector
#                tuning, so the guard pins schema and series names, not bytes
#   engine perf  BENCH_engine.json carries wall-clock timings that legitimately
#                vary run to run, so the guard pins its schema and benchmark
#                name set, not its bytes
#   scale        BENCH_scale.json likewise: schema + run-name set pinned, plus
#                the one number that is a hard claim rather than a timing —
#                the 1024-node stackless-vs-threaded speedup floor (>= 10x).
#                The floor is skipped in sanitized/audit builds: instrumentation
#                taxes the inline stackless path far more than the
#                thread-creation-bound baseline, so the ratio only means
#                something on an optimized build.
#
# Usage: scripts/golden_check.sh <build-dir>
# Re-baselining (only after an intentional behavior change): re-run the three
# binaries and overwrite tests/golden/*.txt with their output.
set -euo pipefail
BUILD_DIR="${1:?usage: golden_check.sh <build-dir>}"
cd "$(dirname "$0")/.."
GOLD=tests/golden
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "-- quickstart"
"$BUILD_DIR"/examples/quickstart > "$TMP/quickstart.txt"
diff -u "$GOLD/quickstart.txt" "$TMP/quickstart.txt"

echo "-- table2"
"$BUILD_DIR"/bench/bench_table2_latency > "$TMP/table2.txt"
diff -u "$GOLD/table2.txt" "$TMP/table2.txt"

echo "-- fig2"
"$BUILD_DIR"/bench/bench_fig2_bandwidth > "$TMP/fig2.txt"
diff -u "$GOLD/fig2.txt" "$TMP/fig2.txt"

echo "-- rdma schema"
"$BUILD_DIR"/bench/bench_fig2_bandwidth --json_out="$TMP/BENCH_rdma.json" \
  > /dev/null
grep -q '"schema": "splap-rdma-v1"' "$TMP/BENCH_rdma.json"
for name in eager rendezvous zero_copy_cold zero_copy_warm; do
  grep -q "\"name\": \"$name\"" "$TMP/BENCH_rdma.json" \
    || { echo "missing series $name in BENCH_rdma.json"; exit 1; }
done
for key in crossover_eager_to_rendezvous_bytes \
           crossover_rendezvous_to_zero_copy_cold_bytes \
           crossover_rendezvous_to_zero_copy_warm_bytes; do
  grep -q "\"$key\"" "$TMP/BENCH_rdma.json" \
    || { echo "missing key $key in BENCH_rdma.json"; exit 1; }
done

echo "-- detector schema"
"$BUILD_DIR"/bench/bench_detector --json_out="$TMP/BENCH_detector.json" \
  > /dev/null
grep -q '"schema": "splap-detector-v1"' "$TMP/BENCH_detector.json"
for name in legacy_crash accrual_crash \
            legacy_straggler_x1 accrual_straggler_x1 \
            legacy_straggler_x8 accrual_straggler_x8 \
            legacy_straggler_x30 accrual_straggler_x30 \
            legacy_straggler_x120 accrual_straggler_x120; do
  grep -q "\"name\": \"$name\"" "$TMP/BENCH_detector.json" \
    || { echo "missing series $name in BENCH_detector.json"; exit 1; }
done

echo "-- engine perf schema"
"$BUILD_DIR"/bench/bench_engine_perf --json_out="$TMP/BENCH_engine.json" \
  > /dev/null
grep -q '"schema": "splap-bench-v1"' "$TMP/BENCH_engine.json"
for name in BM_EngineEventThroughput BM_ActorHandoff BM_FabricPacketRate \
            BM_LapiPutMessageRate; do
  grep -q "\"$name" "$TMP/BENCH_engine.json" \
    || { echo "missing benchmark $name in BENCH_engine.json"; exit 1; }
done

echo "-- scale schema"
"$BUILD_DIR"/bench/bench_scale --json_out="$TMP/BENCH_scale.json" > /dev/null
grep -q '"schema": "splap-scale-v1"' "$TMP/BENCH_scale.json"
for name in threaded_64 stackless_64 threaded_256 stackless_256 \
            threaded_1024 stackless_1024 stackless_exec4_1024; do
  grep -q "\"name\": \"$name\"" "$TMP/BENCH_scale.json" \
    || { echo "missing run $name in BENCH_scale.json"; exit 1; }
done
# The PR's headline claim, re-proven on every run: at 1024 nodes the
# stackless driver moves packets at >= 10x the thread-per-actor rate.
# Sanitizer/audit instrumentation slows the inline stackless path far more
# than the thread-creation-bound baseline, so the ratio is only meaningful
# (and only enforced) on an uninstrumented build.
if grep -qE 'SPLAP_SANITIZE:[A-Z]+=(ON|thread)|SPLAP_AUDIT:[A-Z]+=ON' \
    "$BUILD_DIR/CMakeCache.txt" 2>/dev/null; then
  echo "   (instrumented build: schema+names pinned, speedup floor skipped)"
else
  speedup=$(grep -o '"speedup_1024": [0-9.]*' "$TMP/BENCH_scale.json" |
    grep -o '[0-9.]*$')
  awk -v s="$speedup" 'BEGIN { exit !(s >= 10.0) }' \
    || { echo "1024-node stackless speedup ${speedup}x < 10x"; exit 1; }
fi

echo "golden outputs identical"
