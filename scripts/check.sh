#!/usr/bin/env bash
# Full local gate, in escalating order of what each stage can catch:
#
#   optimized  build + full ctest (the tier-1 contract)
#   lint       splap-lint determinism rules over src/ and tests/, plus the
#              rule-by-rule fixture self-tests
#   graph      splap-graph call-graph/include-graph proofs over src/:
#              blocking-reachability (no handler-context path may reach a
#              suspension primitive), include-closure layering, and
#              Status-discard — plus the analyzer's own fixture self-tests
#   tidy       clang-tidy over src/ (skipped with a notice when the host has
#              no clang-tidy; the curated check set lives in .clang-tidy)
#   asan       ASan+UBSan build + full ctest
#   chaos      the fault-injection harness under ASan+UBSan (the code most
#              likely to touch freed records or stale buffers)
#   overload   the flow-control overload harness (bounded-RX incast,
#              partial-table sheds, credit loss, the MPL unexpected cap)
#              under both ASan+UBSan and SPLAP_AUDIT
#   recovery   the crash-stop recovery harness (tests labelled `recovery`:
#              kill/restart scenarios plus the crash chaos cases) run
#              optimized, under ASan+UBSan, and under SPLAP_AUDIT — a
#              crashed node's teardown must leak zero records and credits
#              beyond the forgiven crashed-epoch residue
#   scale      the engine scale-out harness (tests labelled `scale`): the
#              1024-node smoke and the serial-vs-SPLAP_EXEC_THREADS=4
#              determinism comparisons, run optimized, under ASan+UBSan, and
#              under SPLAP_AUDIT with the worker lanes forced on
#   partition  the partition / gray-failure harness (tests labelled
#              `partition`): asymmetric blackholes, split/merge of partition
#              groups, stragglers under legacy-vs-accrual detection, the
#              detector math units and the flap-leak test — run optimized,
#              under ASan+UBSan, and under SPLAP_AUDIT
#   rdma       the zero-copy transfer path (tests labelled `rdma`): protocol
#              selection, registration-cache lifecycle (LRU, epoch bumps),
#              scatter-direct assembly, FakeWire exactly-once under loss and
#              corruption, and the GA putv/getv wiring — run optimized,
#              under ASan+UBSan, and under SPLAP_AUDIT
#   tsan       ThreadSanitizer over the genuinely-concurrent code: the actor
#              park/unpark handoff (sim_engine_test), the parallel sweep
#              driver (bench_fig2_bandwidth with SPLAP_SWEEP_THREADS=4), and
#              the worker-lane determinism tests (scale_test)
#   audit      SPLAP_AUDIT build + full ctest: shadow-state lifecycle and
#              virtual-time race auditing across every suite, chaos included
#
# Stages can be selected by name: `scripts/check.sh lint audit` runs just
# those two; no arguments runs everything.
set -euo pipefail
cd "$(dirname "$0")/.."

STAGES="$*"
want() {
  [ -z "${STAGES}" ] && return 0
  case " ${STAGES} " in
    *" $1 "*) return 0 ;;
    *) return 1 ;;
  esac
}

if want optimized; then
  echo "== optimized build =="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$(nproc)"
  ctest --test-dir build --output-on-failure
fi

if want lint; then
  echo "== determinism lint =="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$(nproc)" --target splap_lint lint_selftest
  ctest --test-dir build -L lint --no-tests=error --output-on-failure
fi

if want graph; then
  echo "== call-graph contract proofs =="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$(nproc)" --target splap_graph graph_selftest
  ctest --test-dir build -R 'graph_selftest|graph_tree' --no-tests=error \
    --output-on-failure
fi

if want tidy; then
  echo "== clang-tidy =="
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B build -S . >/dev/null  # refreshes compile_commands.json
    # Headers are pulled in via the translation units that include them.
    find src -name '*.cpp' -print0 |
      xargs -0 -n 4 clang-tidy -p build --quiet
  else
    echo "SKIP: clang-tidy not installed on this host (config: .clang-tidy)"
  fi
fi

if want asan; then
  echo "== sanitized build (ASan+UBSan) =="
  cmake -B build-asan -S . -DSPLAP_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan --output-on-failure
fi

if want chaos; then
  # An explicit sanitized pass over the chaos label even though the full
  # ctest run above already includes it (this stage keeps failing loudly if
  # the chaos label set ever becomes empty).
  echo "== chaos harness (ASan+UBSan) =="
  cmake -B build-asan -S . -DSPLAP_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan -L chaos --no-tests=error --output-on-failure
fi

if want overload; then
  # Overload scenarios drive the credit/NACK recovery machinery through its
  # worst cases (drops of recovery traffic included), so they run under both
  # the memory sanitizers and the shadow-state auditor: a leaked credit or a
  # send record touched after reclamation fails here first.
  echo "== overload harness (ASan+UBSan) =="
  cmake -B build-asan -S . -DSPLAP_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan -L overload --no-tests=error --output-on-failure
  echo "== overload harness (SPLAP_AUDIT) =="
  cmake -B build-audit -S . -DSPLAP_AUDIT=ON >/dev/null
  cmake --build build-audit -j"$(nproc)"
  ctest --test-dir build-audit -L overload --no-tests=error --output-on-failure
fi

if want recovery; then
  # Crash-stop recovery scenarios tear contexts down mid-flight, the exact
  # window where a stale timer or straggler ack can touch a reclaimed
  # record. The suite runs optimized first (the behavioural contract:
  # bounded detection, epoch rejection, full lease reclamation), then under
  # the memory sanitizers, then under SPLAP_AUDIT whose teardown ledger
  # forgives only the crashed incarnation's own residue.
  echo "== recovery harness (optimized) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$(nproc)"
  ctest --test-dir build -L recovery --no-tests=error --output-on-failure
  echo "== recovery harness (ASan+UBSan) =="
  cmake -B build-asan -S . -DSPLAP_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan -L recovery --no-tests=error --output-on-failure
  echo "== recovery harness (SPLAP_AUDIT) =="
  cmake -B build-audit -S . -DSPLAP_AUDIT=ON >/dev/null
  cmake --build build-audit -j"$(nproc)"
  ctest --test-dir build-audit -L recovery --no-tests=error --output-on-failure
fi

if want scale; then
  # The engine scale-out machinery end to end: the 1024-node smoke and the
  # serial-vs-parallel determinism comparisons run optimized, then under
  # ASan+UBSan, then under the SPLAP_AUDIT race/lifecycle auditor with the
  # worker lanes forced on for every suite that tolerates it (the audit
  # tracker serializes its own bookkeeping, so lane races surface as
  # ordering violations rather than silent corruption).
  echo "== scale harness (optimized) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$(nproc)"
  ctest --test-dir build -L scale --no-tests=error --output-on-failure
  echo "== scale harness (ASan+UBSan) =="
  cmake -B build-asan -S . -DSPLAP_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan -L scale --no-tests=error --output-on-failure
  echo "== scale harness (SPLAP_AUDIT, SPLAP_EXEC_THREADS=4) =="
  cmake -B build-audit -S . -DSPLAP_AUDIT=ON >/dev/null
  cmake --build build-audit -j"$(nproc)"
  ctest --test-dir build-audit -L scale --no-tests=error --output-on-failure
  SPLAP_EXEC_THREADS=4 ./build-audit/tests/scale_test \
    --gtest_filter='*FabricBurst*:*LapiRing*'
fi

if want partition; then
  # Partition windows stress the retry ladder, the quarantine queue and the
  # suspect/heal transitions — the states most likely to leak a credit lease
  # or revive a reclaimed send record. Optimized first (the behavioural
  # contract: heal inside the ladder, no split-brain, straggler survival),
  # then the memory sanitizers, then the SPLAP_AUDIT lifecycle ledger.
  echo "== partition harness (optimized) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$(nproc)"
  ctest --test-dir build -L partition --no-tests=error --output-on-failure
  echo "== partition harness (ASan+UBSan) =="
  cmake -B build-asan -S . -DSPLAP_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan -L partition --no-tests=error --output-on-failure
  echo "== partition harness (SPLAP_AUDIT) =="
  cmake -B build-audit -S . -DSPLAP_AUDIT=ON >/dev/null
  cmake --build build-audit -j"$(nproc)"
  ctest --test-dir build-audit -L partition --no-tests=error --output-on-failure
fi

if want rdma; then
  # The zero-copy path off-by-default means the tier-1 golden suite never
  # exercises it; this stage is where the rdma label earns its keep, in all
  # three instrumentation regimes (a stale registration entry or a double
  # scatter lands in ASan; a zero-copy packet replayed across an epoch bump
  # lands in the audit ledger).
  echo "== rdma harness (optimized) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$(nproc)"
  ctest --test-dir build -L rdma --no-tests=error --output-on-failure
  echo "== rdma harness (ASan+UBSan) =="
  cmake -B build-asan -S . -DSPLAP_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan -L rdma --no-tests=error --output-on-failure
  echo "== rdma harness (SPLAP_AUDIT) =="
  cmake -B build-audit -S . -DSPLAP_AUDIT=ON >/dev/null
  cmake --build build-audit -j"$(nproc)"
  ctest --test-dir build-audit -L rdma --no-tests=error --output-on-failure
fi

if want tsan; then
  echo "== thread-sanitized build (TSan) =="
  cmake -B build-tsan -S . -DSPLAP_SANITIZE=thread -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build build-tsan -j"$(nproc)" --target sim_engine_test bench_fig2_bandwidth scale_test
  ./build-tsan/tests/sim_engine_test
  SPLAP_SWEEP_THREADS=4 ./build-tsan/bench/bench_fig2_bandwidth
  # The lookahead-parallel lanes under TSan: the determinism tests run the
  # same workload serial and with SPLAP_EXEC_THREADS=4, so any unsynchronized
  # cross-lane access in the engine, fabric or LAPI stack reports here.
  ./build-tsan/tests/scale_test --gtest_filter='*FabricBurst*:*LapiRing*'
fi

if want audit; then
  echo "== audit build (SPLAP_AUDIT) =="
  cmake -B build-audit -S . -DSPLAP_AUDIT=ON >/dev/null
  cmake --build build-audit -j"$(nproc)"
  ctest --test-dir build-audit --output-on-failure
fi

echo "All checks passed."
