#!/usr/bin/env bash
# Full local gate: optimized build + tests, then ASan+UBSan build + tests.
# The engine's park/unpark handoff and the pooled event/packet recycling are
# exactly the kind of code that only sanitizers reliably catch regressions
# in, so both configs must pass before a change ships.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== optimized build =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure

echo "== sanitized build (ASan+UBSan) =="
cmake -B build-asan -S . -DSPLAP_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-asan -j"$(nproc)"
ctest --test-dir build-asan --output-on-failure

# The chaos harness exercises the retransmit/duplicate/corruption recovery
# paths — the code most likely to touch freed records or stale buffers — so
# it gets an explicit sanitized pass even though the full ctest run above
# already includes it (this stage keeps failing loudly if the chaos label
# set ever becomes empty).
echo "== chaos harness (ASan+UBSan) =="
ctest --test-dir build-asan -L chaos --no-tests=error --output-on-failure

echo "All checks passed."
