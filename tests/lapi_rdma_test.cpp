// Zero-copy transfer path: the protocol-selection module, the registration
// cache, and their end-to-end behavior on a simulated machine.
//
// Part A: RegistrationCache in isolation — LRU mechanics, capacity-0
//   cold mode, epoch-stamped invalidation, peer-death invalidation.
// Part B: ProtocolSelector classification and decide() charges (eager bcopy,
//   rendezvous org-counter timing, zero-copy pin accounting) plus the shared
//   FragPlan that keeps credit leasing and transmission in agreement.
// Part C: machine-level — the registration cache must survive across a
//   put series (warm > cold > rendezvous bandwidth), die with a peer
//   incarnation (restart_node), and the GA backend must ride the
//   registered-memory Putv/Getv for big strided requests.
// Part D: the gather-direct serve fix — a strided Getv whose runs line up
//   with the packet payload (or form one contiguous block) skips the packed
//   staging copy at the server; misaligned runs still pay it.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "base/cost_model.hpp"
#include "ga/bench_harness.hpp"
#include "ga/runtime.hpp"
#include "lapi/select.hpp"
#include "lapi_test_util.hpp"

namespace splap::lapi {
namespace {

using testing::machine_config;
using testing::run_lapi;

// ===========================================================================
// Part A: RegistrationCache
// ===========================================================================

TEST(RegistrationCacheTest, MissInstallsThenHits) {
  RegistrationCache c(8);
  EXPECT_FALSE(c.pin(1, 0x1000, 4096, 0));
  EXPECT_TRUE(c.pin(1, 0x1000, 4096, 0));
  // A different length is a different region: its own registration.
  EXPECT_FALSE(c.pin(1, 0x1000, 8192, 0));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.stats().hits, 1);
  EXPECT_EQ(c.stats().misses, 2);
}

TEST(RegistrationCacheTest, LruEvictionFollowsRecency) {
  RegistrationCache c(2);
  EXPECT_FALSE(c.pin(1, 0x1000, 4096, 0));  // A
  EXPECT_FALSE(c.pin(1, 0x2000, 4096, 0));  // B
  EXPECT_TRUE(c.pin(1, 0x1000, 4096, 0));   // touch A: B is now LRU
  EXPECT_FALSE(c.pin(1, 0x3000, 4096, 0));  // C evicts B
  EXPECT_FALSE(c.pin(1, 0x2000, 4096, 0));  // B again: miss, evicts A
  EXPECT_FALSE(c.pin(1, 0x1000, 4096, 0));  // and A misses in turn
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.stats().evictions, 3);
  EXPECT_EQ(c.stats().hits, 1);
}

TEST(RegistrationCacheTest, CapacityZeroNeverCaches) {
  RegistrationCache c(0);
  EXPECT_FALSE(c.pin(1, 0x1000, 4096, 0));
  EXPECT_FALSE(c.pin(1, 0x1000, 4096, 0));
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.stats().misses, 2);
  EXPECT_EQ(c.stats().hits, 0);
}

TEST(RegistrationCacheTest, EpochBumpInvalidatesTheEntry) {
  RegistrationCache c(8);
  EXPECT_FALSE(c.pin(1, 0x1000, 4096, /*epoch=*/0));
  // The peer restarted: the old incarnation's registration is dead state.
  EXPECT_FALSE(c.pin(1, 0x1000, 4096, /*epoch=*/1));
  EXPECT_EQ(c.stats().epoch_invalidations, 1);
  // Re-stamped under the new epoch, it serves hits again.
  EXPECT_TRUE(c.pin(1, 0x1000, 4096, /*epoch=*/1));
  // And the old epoch can never resurrect the entry.
  EXPECT_FALSE(c.pin(1, 0x1000, 4096, /*epoch=*/0));
}

TEST(RegistrationCacheTest, PeerInvalidationIsScopedToThatPeer) {
  RegistrationCache c(8);
  EXPECT_FALSE(c.pin(1, 0x1000, 4096, 0));
  EXPECT_FALSE(c.pin(2, 0x1000, 4096, 0));
  c.invalidate_peer(1);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.stats().peer_invalidations, 1);
  EXPECT_FALSE(c.pin(1, 0x1000, 4096, 0));  // gone
  EXPECT_TRUE(c.pin(2, 0x1000, 4096, 0));   // untouched
}

// ===========================================================================
// Part B: ProtocolSelector and FragPlan
// ===========================================================================

struct SelectorFixture {
  CostModel cm;
  Config cfg;
  std::vector<std::byte> tgt = std::vector<std::byte>(1 << 20);
  std::vector<std::byte> src = std::vector<std::byte>(1 << 20);

  SelectorFixture() {
    cfg.rdma_enabled = true;
    cfg.rdma_threshold = 4096;
  }

  WireMeta header(std::int64_t len) {
    WireMeta h;
    h.tgt_addr = tgt.data();
    h.org_addr = src.data();
    h.total_len = len;
    return h;
  }
};

TEST(ProtocolSelectorTest, ClassificationBoundaries) {
  SelectorFixture f;
  ProtocolSelector sel(f.cfg, /*self=*/0);
  WireMeta h = f.header(8192);
  // Small messages bcopy regardless of the rdma knobs.
  EXPECT_EQ(sel.classify(PktKind::kPutHdr, h, 512, 1, f.cm),
            XferProtocol::kEager);
  // The qualified case: an over-threshold Put with a named target region.
  EXPECT_EQ(sel.classify(PktKind::kPutHdr, h, 8192, 1, f.cm),
            XferProtocol::kZeroCopy);
  // Below the threshold: rendezvous.
  EXPECT_EQ(sel.classify(PktKind::kPutHdr, h, 2048, 1, f.cm),
            XferProtocol::kRendezvous);
  // An Amsend's landing buffer does not exist until the header handler
  // runs, so there is nothing to register ahead of time.
  EXPECT_EQ(sel.classify(PktKind::kAmHdr, h, 8192, 1, f.cm),
            XferProtocol::kRendezvous);
  // Loopback never touches the adapter.
  EXPECT_EQ(sel.classify(PktKind::kPutHdr, h, 8192, 0, f.cm),
            XferProtocol::kRendezvous);
  // No target region named.
  WireMeta anon = h;
  anon.tgt_addr = nullptr;
  EXPECT_EQ(sel.classify(PktKind::kPutHdr, anon, 8192, 1, f.cm),
            XferProtocol::kRendezvous);
  // The master switch.
  Config off = f.cfg;
  off.rdma_enabled = false;
  ProtocolSelector plain(off, 0);
  EXPECT_EQ(plain.classify(PktKind::kPutHdr, h, 8192, 1, f.cm),
            XferProtocol::kRendezvous);
}

TEST(ProtocolSelectorTest, EagerDecisionChargesTheBcopy) {
  SelectorFixture f;
  ProtocolSelector sel(f.cfg, 0);
  WireMeta h = f.header(512);
  const XferDecision d = sel.decide(PktKind::kPutHdr, h, 512, 1, 0, f.cm);
  EXPECT_EQ(d.protocol, XferProtocol::kEager);
  EXPECT_EQ(d.call_copy, f.cm.copy_time(512));
  EXPECT_EQ(d.pin_cost, Time{0});
  EXPECT_TRUE(d.org_at_injection);
  EXPECT_FALSE(h.zero_copy);
}

TEST(ProtocolSelectorTest, RendezvousOrgTimingFollowsStridedness) {
  SelectorFixture f;
  f.cfg.rdma_enabled = false;
  ProtocolSelector sel(f.cfg, 0);
  WireMeta h = f.header(8192);
  // Contiguous source: the user buffer stays busy until the data ack.
  EXPECT_FALSE(sel.decide(PktKind::kPutHdr, h, 8192, 1, 0, f.cm)
                   .org_at_injection);
  // A strided source was gathered during the call: free at injection.
  h.strided = true;
  EXPECT_TRUE(sel.decide(PktKind::kPutHdr, h, 8192, 1, 0, f.cm)
                  .org_at_injection);
}

TEST(ProtocolSelectorTest, ZeroCopyPinsColdThenRidesTheCache) {
  SelectorFixture f;
  ProtocolSelector sel(f.cfg, 0);
  WireMeta h = f.header(8192);
  const XferDecision cold = sel.decide(PktKind::kPutHdr, h, 8192, 1, 0, f.cm);
  EXPECT_EQ(cold.protocol, XferProtocol::kZeroCopy);
  EXPECT_TRUE(h.zero_copy);
  EXPECT_FALSE(cold.org_at_injection);
  EXPECT_EQ(cold.call_copy, Time{0});
  // Source and target regions each pay one pin on the cold pass.
  EXPECT_EQ(cold.pin_cost, 2 * f.cm.pin_time(8192));
  WireMeta h2 = f.header(8192);
  const XferDecision warm = sel.decide(PktKind::kPutHdr, h2, 8192, 1, 0, f.cm);
  EXPECT_EQ(warm.pin_cost, Time{0});
  EXPECT_EQ(sel.cache().stats().hits, 2);
}

TEST(ProtocolSelectorTest, StridedLandingRegistersTheSpannedRegion) {
  SelectorFixture f;
  ProtocolSelector sel(f.cfg, 0);
  WireMeta h = f.header(8192);
  h.strided = true;
  h.s_row_bytes = 256;
  h.s_cols = 32;  // 8192 payload bytes...
  h.s_ld = 1024;  // ...spread over a 31*1024 + 256 byte footprint
  const XferDecision d = sel.decide(PktKind::kPutHdr, h, 8192, 1, 0, f.cm);
  EXPECT_EQ(d.protocol, XferProtocol::kZeroCopy);
  const std::int64_t span = 1024 * 31 + 256;
  EXPECT_EQ(d.pin_cost, f.cm.pin_time(8192) + f.cm.pin_time(span));
}

TEST(FragPlanTest, ZeroCopyShrinksOnlyContinuationHeaders) {
  CostModel cm;
  WireMeta h;
  const std::int64_t len = 100000;
  h.total_len = len;
  const FragPlan staged = frag_plan(PktKind::kPutHdr, h, len, cm);
  h.zero_copy = true;
  const FragPlan rdma = frag_plan(PktKind::kPutHdr, h, len, cm);
  // The header packet carries the full parameter block either way (it sets
  // up the target-side steering); only the data fragments slim down.
  EXPECT_EQ(rdma.header_bytes, staged.header_bytes);
  EXPECT_EQ(rdma.chunk0, staged.chunk0);
  EXPECT_EQ(staged.data_header_bytes, cm.lapi_header_bytes);
  EXPECT_EQ(rdma.data_header_bytes, cm.rdma_header_bytes);
  EXPECT_GT(rdma.per, staged.per);
  EXPECT_LT(rdma.packets, staged.packets);
  // Both plans cover the message exactly: the last fragment is non-empty.
  for (const FragPlan& p : {staged, rdma}) {
    EXPECT_GE(p.chunk0 + (p.packets - 1) * p.per, len);
    EXPECT_LT(p.chunk0 + (p.packets - 2) * p.per, len);
  }
}

// ===========================================================================
// Part C: machine level
// ===========================================================================

TEST(RdmaMachineTest, WarmCacheBeatsColdBeatsRendezvous) {
  // The acceptance shape of BENCH_rdma.json, asserted at one large size:
  // zero-copy out-bandwidths rendezvous once pins are amortized, and the
  // registration cache (warm) beats repinning every transfer (cold).
  using ga::bench::RawPutOpts;
  constexpr std::int64_t kBytes = 2 << 20;
  RawPutOpts rendezvous;
  rendezvous.bcopy_limit_override = 0;
  RawPutOpts cold = rendezvous;
  cold.lapi.rdma_enabled = true;
  cold.lapi.rdma_threshold = 1024;
  cold.lapi.reg_cache_entries = 0;
  RawPutOpts warm = cold;
  warm.lapi.reg_cache_entries = 64;
  const double rndv_mb = ga::bench::raw_lapi_put_mb_s(kBytes, rendezvous);
  const double cold_mb = ga::bench::raw_lapi_put_mb_s(kBytes, cold);
  const double warm_mb = ga::bench::raw_lapi_put_mb_s(kBytes, warm);
  EXPECT_GT(cold_mb, rndv_mb);
  EXPECT_GT(warm_mb, cold_mb);
}

TEST(RdmaMachineTest, RegistrationsDieWithThePeerIncarnation) {
  // A put pins both regions (2 misses); a second put rides the cache
  // (2 hits). Then the target crashes and restarts: the origin's verdict
  // invalidates every registration toward the peer, so the put to the new
  // incarnation repins the target region — using the stale registration
  // against the reborn adapter would scatter into an unmapped region.
  constexpr std::int64_t kLen = 5000;
  constexpr std::int64_t kBigLen = 256 * 1024;  // straddles the kill
  net::Machine m(machine_config(2));
  lapi::Config cfg;
  cfg.retransmit_timeout = microseconds(200);
  cfg.max_retries = 4;
  cfg.rdma_enabled = true;
  cfg.rdma_threshold = 2048;
  std::vector<std::byte> tgt(static_cast<std::size_t>(kLen));
  std::vector<std::byte> big_tgt(static_cast<std::size_t>(kBigLen));
  Counter never, second_life;
  Status put_warm_st = Status::kUnknown;
  Status put_dead_st = Status::kUnknown;
  Status put_reborn_st = Status::kUnknown;

  m.kill_node(1, microseconds(400));
  m.restart_node(1, milliseconds(1.0), [&](net::Node& n) {
    Context ctx(n, cfg);
    EXPECT_EQ(ctx.waitcntr(second_life, 1), Status::kOk);
  });

  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    Context ctx(n, cfg);
    if (n.id() == 0) {
      std::vector<std::byte> src(static_cast<std::size_t>(kLen),
                                 std::byte{0x77});
      std::vector<std::byte> big(static_cast<std::size_t>(kBigLen),
                                 std::byte{0x3C});
      Counter cmpl1, cmpl1b, cmpl2, cmpl3;
      // Two small puts complete before the kill: the first pins both
      // regions, the second rides the warm cache.
      ASSERT_EQ(ctx.put(1, src, tgt.data(), nullptr, nullptr, &cmpl1),
                Status::kOk);
      put_warm_st = ctx.waitcntr(cmpl1, 1);
      ASSERT_EQ(ctx.put(1, src, tgt.data(), nullptr, nullptr, &cmpl1b),
                Status::kOk);
      EXPECT_EQ(ctx.waitcntr(cmpl1b, 1), Status::kOk);
      // The big put is mid-flight when the target dies: its ladder
      // exhausts and the crash-stop verdict invalidates the peer's
      // registrations.
      ASSERT_EQ(ctx.put(1, big, big_tgt.data(), nullptr, nullptr, &cmpl2),
                Status::kOk);
      put_dead_st = ctx.waitcntr(cmpl2, 1);
      EXPECT_TRUE(ctx.peer_failed(1));
      ASSERT_EQ(ctx.put(1, src, tgt.data(), &second_life, nullptr, &cmpl3),
                Status::kOk);
      put_reborn_st = ctx.waitcntr(cmpl3, 1);
    } else {
      (void)ctx.waitcntr(never, 1);  // first life: blocked until killed
    }
  }), Status::kOk);

  EXPECT_EQ(put_warm_st, Status::kOk);
  EXPECT_EQ(put_dead_st, Status::kPeerFailed);
  EXPECT_EQ(put_reborn_st, Status::kOk);
  const std::vector<std::byte> want(static_cast<std::size_t>(kLen),
                                    std::byte{0x77});
  EXPECT_EQ(std::memcmp(tgt.data(), want.data(),
                        static_cast<std::size_t>(kLen)),
            0);
  // All four puts rode zero-copy. Put 1: src+tgt pins (2 misses). Put 2:
  // both cached (2 hits). Put 3: fresh regions (2 misses), then the verdict
  // drops both target-side registrations. Put 4 to the reborn peer: the
  // source registration is keyed under self and survives (1 hit); the
  // target region must be repinned against the new incarnation (1 miss).
  EXPECT_EQ(m.engine().counters().get("lapi.zero_copy_sends"), 4);
  EXPECT_EQ(m.engine().counters().get("lapi.reg_cache_misses"), 5);
  EXPECT_EQ(m.engine().counters().get("lapi.reg_cache_hits"), 3);
}

TEST(RdmaMachineTest, GaBigStridedRequestsRideTheRegisteredPath) {
  constexpr std::int64_t kSide = 64;  // 64x64 doubles = 32 KB per request
  net::Machine m(machine_config(2));
  ga::Config cfg;
  cfg.big_request_bytes = 1;  // always prefer the big-request protocols
  cfg.lapi.rdma_enabled = true;
  cfg.lapi.rdma_threshold = 4096;
  std::vector<double> out(static_cast<std::size_t>(kSide * kSide), 0.0);
  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    ga::Runtime rt(n, cfg);
    ga::GlobalArray a = rt.create(3 * kSide, 3 * kSide);
    rt.sync();
    if (rt.me() == 0) {
      const ga::Patch blk = a.block_of(1);
      // Offset by one row inside the owner's block: a strided section.
      ga::Patch p{blk.lo1 + 1, blk.lo1 + kSide, blk.lo2 + 1,
                  blk.lo2 + kSide};
      std::vector<double> buf(static_cast<std::size_t>(kSide * kSide));
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<double>(i % 509);
      }
      a.put(p, buf.data(), kSide);
      rt.fence();
      a.get(p, out.data(), kSide);
    }
    rt.fence();
    rt.sync();
    rt.destroy(a);
  }), Status::kOk);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_DOUBLE_EQ(out[i], static_cast<double>(i % 509)) << "at " << i;
  }
  EXPECT_GT(m.engine().counters().get("ga.lapi.rdma_putv"), 0);
  EXPECT_GT(m.engine().counters().get("ga.lapi.rdma_getv"), 0);
  // The registered path replaced the per-column RMC fan-out entirely.
  EXPECT_EQ(m.engine().counters().get("ga.lapi.rmc_columns"), 0);
}

// ===========================================================================
// Part D: the gather-direct serve fix
// ===========================================================================

StridedRegion region(double* base, std::int64_t rows, std::int64_t cols,
                     std::int64_t ld) {
  StridedRegion r;
  r.base = reinterpret_cast<std::byte*>(base);
  r.row_bytes = rows * 8;
  r.cols = cols;
  r.ld_bytes = ld * 8;
  return r;
}

/// Run one Getv of a rows x cols block (leading dimension ld at the server)
/// and return the served data for verification.
void run_getv(std::int64_t rows, std::int64_t cols, std::int64_t ld,
              net::Machine& m) {
  std::vector<double> remote(static_cast<std::size_t>(ld * cols));
  for (std::size_t i = 0; i < remote.size(); ++i) {
    remote[i] = static_cast<double>(i);
  }
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    if (ctx.task_id() == 0) {
      std::vector<double> local(static_cast<std::size_t>(rows * cols), -1.0);
      Counter org;
      ASSERT_EQ(ctx.getv(1, region(remote.data(), rows, cols, ld),
                         region(local.data(), rows, cols, rows), nullptr,
                         &org),
                Status::kOk);
      EXPECT_EQ(ctx.waitcntr(org, 1), Status::kOk);
      for (std::int64_t j = 0; j < cols; ++j) {
        for (std::int64_t i = 0; i < rows; ++i) {
          ASSERT_DOUBLE_EQ(local[static_cast<std::size_t>(j * rows + i)],
                           static_cast<double>(j * ld + i));
        }
      }
    }
  }), Status::kOk);
}

TEST(GatherDirectTest, PayloadAlignedRunsSkipTheStagingCopy) {
  // The regression case: each gather run is exactly one packet payload, so
  // the scatter/gather engine streams runs from the source region and the
  // packed staging buffer's copy charge disappears — one fewer copy.
  CostModel cm;
  ASSERT_EQ(cm.lapi_payload() % 8, 0);
  const std::int64_t rows = cm.lapi_payload() / 8;
  net::Machine m(machine_config(2));
  run_getv(rows, 4, rows + 37, m);
  EXPECT_EQ(m.engine().counters().get("lapi.gather_direct"), 1);
  EXPECT_EQ(m.engine().counters().get("lapi.gather_staged"), 0);
}

TEST(GatherDirectTest, ContiguousSourceSkipsTheStagingCopy) {
  net::Machine m(machine_config(2));
  run_getv(100, 4, 100, m);  // ld == rows: one contiguous run
  EXPECT_EQ(m.engine().counters().get("lapi.gather_direct"), 1);
  EXPECT_EQ(m.engine().counters().get("lapi.gather_staged"), 0);
}

TEST(GatherDirectTest, MisalignedRunsStillPayTheStagingCopy) {
  net::Machine m(machine_config(2));
  run_getv(100, 4, 128, m);  // 800-byte runs: neither contiguous nor aligned
  EXPECT_EQ(m.engine().counters().get("lapi.gather_direct"), 0);
  EXPECT_EQ(m.engine().counters().get("lapi.gather_staged"), 1);
}

}  // namespace
}  // namespace splap::lapi
