// Partition and gray-failure harness: asymmetric (one-directional) partition
// windows, named group partitions that sever and later merge, stragglers
// whose adapters serve packets N times slower, and the adaptive accrual
// failure detector that must tell all of these apart from a crash.
//
// The properties proved here, each across multiple fabric seeds:
//   - an asymmetric partition that heals inside the retry ladder costs
//     retransmissions, never a death verdict;
//   - a suspected peer's sends are quarantined (credits returned, RTO
//     frozen) and drain completely on heal — no leak, no give-up;
//   - a straggler survives under the accrual detector where the legacy
//     fixed-miss keepalive falsely kills it (the gray-failure regression);
//   - a full partition merge completes with zero split-brain death
//     declarations;
//   - partitions compose with credit backpressure and with a real crash
//     (the genuinely dead peer is still detected — and only it).
//
// Every (scenario, seed) run is bit-deterministic. scripts/check.sh replays
// the suite optimized, under ASan/UBSan and under SPLAP_AUDIT
// (ctest -L partition).
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "lapi/context.hpp"
#include "net/machine.hpp"
#include "sim/sync.hpp"

namespace splap {
namespace {

const std::uint64_t kSeeds[] = {3, 7, 19, 42, 101};

std::string seed_name(const ::testing::TestParamInfo<std::uint64_t>& info) {
  return "seed" + std::to_string(info.param);
}

net::Machine::Config partition_machine(std::uint64_t seed, int tasks) {
  net::Machine::Config cfg;
  cfg.tasks = tasks;
  cfg.fabric.seed = seed * 7 + 1;
  cfg.fabric.fault.seed = seed;
  return cfg;
}

/// Retry ladder sized so every partition window in this file heals long
/// before the ladder can exhaust (give_up is a *direct* death verdict; a
/// partition test that lets it fire is testing the wrong detector).
lapi::Config patient_lapi_config() {
  lapi::Config c;
  c.retransmit_timeout = microseconds(150);
  c.max_retries = 12;
  return c;
}

class PartitionTest : public ::testing::TestWithParam<std::uint64_t> {};

// ---------------------------------------------------------------------------
// Scenario 1: asymmetric partition, no detector. 0->1 is blackholed for a
// window while 1->0 stays up; the put rides its retransmission ladder across
// the heal and completes. Nobody dies.
// ---------------------------------------------------------------------------

TEST_P(PartitionTest, AsymmetricPartitionHeals) {
  constexpr std::int64_t kLen = 32 * 1024;
  net::Machine::Config mc = partition_machine(GetParam(), 2);
  net::PartitionFault cut;
  cut.src = 0;
  cut.dst = 1;
  cut.from = microseconds(10);
  cut.until = microseconds(640);
  mc.fabric.fault.partitions.push_back(cut);
  net::Machine m(mc);

  std::vector<std::byte> tgt(static_cast<std::size_t>(kLen));
  lapi::Counter tgt_cntr;
  Status org_st = Status::kUnknown, cmpl_st = Status::kUnknown;

  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    lapi::Context ctx(n, patient_lapi_config());
    if (n.id() == 0) {
      std::vector<std::byte> src(static_cast<std::size_t>(kLen),
                                 std::byte{0x6C});
      lapi::Counter org, cmpl;
      ASSERT_EQ(ctx.put(1, src, tgt.data(), &tgt_cntr, &org, &cmpl),
                Status::kOk);
      org_st = ctx.waitcntr(org, 1);
      cmpl_st = ctx.waitcntr(cmpl, 1);
      EXPECT_FALSE(ctx.peer_failed(1));
      EXPECT_EQ(ctx.pending_sends(), 0u);
    } else {
      ASSERT_EQ(ctx.waitcntr(tgt_cntr, 1), Status::kOk);
    }
    EXPECT_NE(ctx.gfence(), Status::kPeerFailed);
  }), Status::kOk);

  EXPECT_EQ(org_st, Status::kOk);
  EXPECT_EQ(cmpl_st, Status::kOk);
  for (std::size_t i = 0; i < tgt.size(); ++i) {
    ASSERT_EQ(tgt[i], std::byte{0x6C}) << "corrupted byte at " << i;
  }
  // The window actually ate packets, the ladder actually recovered them,
  // and no layer turned a link fault into a death verdict.
  EXPECT_GT(m.engine().counters().get("fabric.partitioned"), 0);
  EXPECT_GT(m.engine().counters().get("lapi.retransmits"), 0);
  EXPECT_EQ(m.engine().counters().get("lapi.retransmit_giveup"), 0);
  EXPECT_EQ(m.engine().counters().get("lapi.peer_failed"), 0);
}

// ---------------------------------------------------------------------------
// Scenario 2: suspected-peer quarantine drains on heal. The reply direction
// 1->0 is blackholed, so task 0 stops hearing task 1 while 1 still hears 0 —
// the asymmetric case where exactly one side suspects. Task 0's accrual
// detector quarantines its stream instead of burning retry ladders; when the
// window heals, a probe ack triggers heal_peer and everything drains.
// ---------------------------------------------------------------------------

TEST_P(PartitionTest, SuspectQuarantineDrainsOnHeal) {
  constexpr int kPuts = 12;
  constexpr std::int64_t kLen = 512;
  net::Machine::Config mc = partition_machine(GetParam(), 2);
  net::PartitionFault cut;
  cut.src = 1;
  cut.dst = 0;
  cut.from = microseconds(250);
  cut.until = microseconds(1000);
  mc.fabric.fault.partitions.push_back(cut);
  net::Machine m(mc);

  std::array<std::vector<std::byte>, kPuts> tgt;
  std::array<lapi::Counter, kPuts> tgt_cntr;
  for (auto& t : tgt) t.resize(static_cast<std::size_t>(kLen));
  std::array<Status, kPuts> cmpl_st;
  cmpl_st.fill(Status::kUnknown);

  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    lapi::Config cfg = patient_lapi_config();
    cfg.credit_window = 4;
    if (n.id() == 0) {
      cfg.keepalive_interval = microseconds(30);
      cfg.suspect_threshold = 2.0;
      cfg.fail_threshold = 1e6;  // this scenario proves quarantine, not death
    }
    lapi::Context ctx(n, cfg);
    if (n.id() == 0) {
      std::vector<std::byte> src(static_cast<std::size_t>(kLen),
                                 std::byte{0x3D});
      std::array<lapi::Counter, kPuts> cmpl;
      for (int i = 0; i < kPuts; ++i) {
        ASSERT_EQ(ctx.put(1, src, tgt[static_cast<std::size_t>(i)].data(),
                          &tgt_cntr[static_cast<std::size_t>(i)], nullptr,
                          &cmpl[static_cast<std::size_t>(i)]),
                  Status::kOk);
        // Space the stream so the estimator sees a rhythm before the cut.
        sim::Actor::current()->compute(microseconds(20));
      }
      for (int i = 0; i < kPuts; ++i) {
        cmpl_st[static_cast<std::size_t>(i)] =
            ctx.waitcntr(cmpl[static_cast<std::size_t>(i)], 1);
      }
      EXPECT_FALSE(ctx.peer_failed(1));
      EXPECT_FALSE(ctx.peer_suspected(1));  // healed by the time all drained
      EXPECT_EQ(ctx.suspect_queued(), 0u);
      EXPECT_EQ(ctx.pending_sends(), 0u);
      EXPECT_EQ(ctx.credits_available(1), 4);  // every lease returned
    } else {
      for (int i = 0; i < kPuts; ++i) {
        ASSERT_EQ(ctx.waitcntr(tgt_cntr[static_cast<std::size_t>(i)], 1),
                  Status::kOk);
      }
    }
    EXPECT_NE(ctx.gfence(), Status::kPeerFailed);
  }), Status::kOk);

  for (int i = 0; i < kPuts; ++i) {
    EXPECT_EQ(cmpl_st[static_cast<std::size_t>(i)], Status::kOk)
        << "put " << i;
  }
  // Exactly one side suspected (task 1 kept hearing task 0 throughout), it
  // healed, and the quarantine never escalated into any death verdict.
  EXPECT_GT(m.engine().counters().get("lapi.peer_suspected"), 0);
  EXPECT_GT(m.engine().counters().get("lapi.peer_healed"), 0);
  EXPECT_EQ(m.engine().counters().get("lapi.peer_suspected"),
            m.engine().counters().get("lapi.peer_healed"));
  EXPECT_EQ(m.engine().counters().get("lapi.peer_failed"), 0);
  EXPECT_EQ(m.engine().counters().get("lapi.accrual_failed"), 0);
  EXPECT_EQ(m.engine().counters().get("lapi.keepalive_failed"), 0);
  EXPECT_GT(m.engine().counters().get("fabric.partitioned"), 0);
}

// ---------------------------------------------------------------------------
// Scenarios 3+4: the gray-failure regression pair. A straggler window makes
// node 1's adapter serve packets 120x slower — alive, reachable, just slow.
// The legacy fixed-miss keepalive declares it dead (the false positive this
// detector replaces); the accrual detector, judging silence against the
// peer's own observed rhythm, keeps it alive through the same window.
// ---------------------------------------------------------------------------

struct StragglerOutcome {
  int failed_statuses = 0;   // puts that completed with a failure Status
  int handler_calls = 0;     // error-handler deliveries on task 0
  std::int64_t peer_failed = 0;
  std::int64_t keepalive_failed = 0;
  std::int64_t accrual_failed = 0;
  std::int64_t suspected = 0;
  std::int64_t healed = 0;
};

StragglerOutcome run_straggler(std::uint64_t seed, bool legacy) {
  constexpr int kPuts = 40;
  constexpr std::int64_t kLen = 512;
  net::Machine::Config mc = partition_machine(seed, 2);
  net::Straggler slow;
  slow.node = 1;
  slow.multiplier = 120.0;
  slow.from = microseconds(400);
  slow.until = microseconds(2600);
  mc.fabric.fault.stragglers.push_back(slow);
  net::Machine m(mc);

  StragglerOutcome out;
  std::array<std::vector<std::byte>, kPuts> tgt;
  for (auto& t : tgt) t.resize(static_cast<std::size_t>(kLen));

  EXPECT_EQ(m.run_spmd([&](net::Node& n) {
    lapi::Config cfg = patient_lapi_config();
    if (n.id() == 0) {
      cfg.keepalive_interval = microseconds(25);
      cfg.keepalive_legacy = legacy;
      cfg.suspect_threshold = 2.0;
      cfg.fail_threshold = 24.0;
      cfg.error_handler = [&](lapi::Context&, int, Status) {
        ++out.handler_calls;
      };
    }
    lapi::Context ctx(n, cfg);
    if (n.id() == 0) {
      std::vector<std::byte> src(static_cast<std::size_t>(kLen),
                                 std::byte{0x77});
      for (int i = 0; i < kPuts; ++i) {
        lapi::Counter cmpl;
        if (ctx.put(1, src, tgt[static_cast<std::size_t>(i)].data(), nullptr,
                    nullptr, &cmpl) != Status::kOk) {
          ++out.failed_statuses;
          continue;
        }
        if (ctx.waitcntr(cmpl, 1) != Status::kOk) ++out.failed_statuses;
        sim::Actor::current()->compute(microseconds(10));
      }
      // Let any last quarantined/straggling traffic settle before teardown.
      sim::Actor::current()->compute(milliseconds(3.0));
    } else {
      // Passive target: stay alive until the origin's whole loop is done;
      // the dispatcher absorbs the stream in interrupt mode. The straggle
      // window leaves a service backlog in this node's adapter that
      // stretches the origin's pace long after the window closes, so the
      // lifetime is deliberately extravagant — if this task terms with a
      // put still in flight, the origin detects a real death and the test
      // measures the wrong thing. No trailing collective — under the
      // legacy detector the origin may have latched this task dead, and a
      // barrier must not be what breaks the latch.
      sim::Actor::current()->compute(milliseconds(60.0));
    }
  }), Status::kOk);

  out.peer_failed = m.engine().counters().get("lapi.peer_failed");
  out.keepalive_failed = m.engine().counters().get("lapi.keepalive_failed");
  out.accrual_failed = m.engine().counters().get("lapi.accrual_failed");
  out.suspected = m.engine().counters().get("lapi.peer_suspected");
  out.healed = m.engine().counters().get("lapi.peer_healed");
  return out;
}

// The regression that motivated the adaptive detector, preserved behind
// Config::keepalive_legacy: a peer whose degraded window stretches past
// three keepalive intervals is declared dead while its node is demonstrably
// alive and still serving every packet.
TEST_P(PartitionTest, StragglerLegacyKeepaliveFalselyKills) {
  const StragglerOutcome out = run_straggler(GetParam(), /*legacy=*/true);
  EXPECT_GT(out.keepalive_failed, 0) << "fixed-miss verdict never fired";
  EXPECT_GT(out.peer_failed, 0);
  EXPECT_GT(out.handler_calls, 0);
  EXPECT_GT(out.failed_statuses, 0) << "no operation observed the false kill";
}

// The fix: same machine, same straggler, same probe interval — the accrual
// detector suspects (quarantines) the slow peer at most, and every single
// operation still completes. Zero death verdicts of any kind.
TEST_P(PartitionTest, StragglerSurvivesAccrualDetector) {
  const StragglerOutcome out = run_straggler(GetParam(), /*legacy=*/false);
  EXPECT_EQ(out.peer_failed, 0);
  EXPECT_EQ(out.keepalive_failed, 0);
  EXPECT_EQ(out.accrual_failed, 0);
  EXPECT_EQ(out.handler_calls, 0);
  EXPECT_EQ(out.failed_statuses, 0);
  EXPECT_EQ(out.suspected, out.healed);  // every suspicion healed
}

// ---------------------------------------------------------------------------
// Scenarios 3b/4b: the same regression through degraded routes instead of a
// slow adapter. Every switch route stays up but adds latency well past
// 3x keepalive_interval for a window — the exact false-positive from the
// issue: packets flow the whole time, only slower than the fixed miss
// budget tolerates.
// ---------------------------------------------------------------------------

StragglerOutcome run_degraded_routes(std::uint64_t seed, bool legacy) {
  constexpr int kPuts = 30;
  constexpr std::int64_t kLen = 512;
  net::Machine::Config mc = partition_machine(seed, 2);
  for (int r = 0; r < 4; ++r) {
    net::RouteFault slow;
    slow.route = r;
    slow.down = false;  // degraded, not severed: the spray keeps using it
    slow.extra_latency = microseconds(150);  // 6x the 25 us keepalive
    slow.from = microseconds(500);
    slow.until = microseconds(1500);
    mc.fabric.fault.route_faults.push_back(slow);
  }
  net::Machine m(mc);

  StragglerOutcome out;
  std::array<std::vector<std::byte>, kPuts> tgt;
  for (auto& t : tgt) t.resize(static_cast<std::size_t>(kLen));

  EXPECT_EQ(m.run_spmd([&](net::Node& n) {
    lapi::Config cfg = patient_lapi_config();
    if (n.id() == 0) {
      cfg.keepalive_interval = microseconds(25);
      cfg.keepalive_legacy = legacy;
      cfg.suspect_threshold = 2.0;
      cfg.fail_threshold = 24.0;
      cfg.error_handler = [&](lapi::Context&, int, Status) {
        ++out.handler_calls;
      };
    }
    lapi::Context ctx(n, cfg);
    if (n.id() == 0) {
      std::vector<std::byte> src(static_cast<std::size_t>(kLen),
                                 std::byte{0x33});
      for (int i = 0; i < kPuts; ++i) {
        lapi::Counter cmpl;
        if (ctx.put(1, src, tgt[static_cast<std::size_t>(i)].data(), nullptr,
                    nullptr, &cmpl) != Status::kOk) {
          ++out.failed_statuses;
          continue;
        }
        if (ctx.waitcntr(cmpl, 1) != Status::kOk) ++out.failed_statuses;
        sim::Actor::current()->compute(microseconds(10));
      }
      sim::Actor::current()->compute(milliseconds(3.0));
    } else {
      sim::Actor::current()->compute(milliseconds(60.0));
    }
  }), Status::kOk);

  out.peer_failed = m.engine().counters().get("lapi.peer_failed");
  out.keepalive_failed = m.engine().counters().get("lapi.keepalive_failed");
  out.accrual_failed = m.engine().counters().get("lapi.accrual_failed");
  out.suspected = m.engine().counters().get("lapi.peer_suspected");
  out.healed = m.engine().counters().get("lapi.peer_healed");
  return out;
}

TEST_P(PartitionTest, DegradedRoutesLegacyKeepaliveFalselyKills) {
  const StragglerOutcome out = run_degraded_routes(GetParam(), /*legacy=*/true);
  EXPECT_GT(out.keepalive_failed, 0) << "fixed-miss verdict never fired";
  EXPECT_GT(out.peer_failed, 0);
  EXPECT_GT(out.handler_calls, 0);
  EXPECT_GT(out.failed_statuses, 0);
}

TEST_P(PartitionTest, DegradedRoutesSurviveAccrualDetector) {
  const StragglerOutcome out =
      run_degraded_routes(GetParam(), /*legacy=*/false);
  EXPECT_EQ(out.peer_failed, 0);
  EXPECT_EQ(out.keepalive_failed, 0);
  EXPECT_EQ(out.accrual_failed, 0);
  EXPECT_EQ(out.handler_calls, 0);
  EXPECT_EQ(out.failed_statuses, 0);
  EXPECT_EQ(out.suspected, out.healed);
}

// ---------------------------------------------------------------------------
// Scenario 5: partition under credit backpressure. A 2-credit window is
// saturated by a multi-packet put whose data direction is cut mid-flight;
// grants and retransmissions interleave across the heal. Every lease must
// come home.
// ---------------------------------------------------------------------------

TEST_P(PartitionTest, PartitionDuringCreditBackpressure) {
  constexpr std::int64_t kLen = 8 * 1024;
  net::Machine::Config mc = partition_machine(GetParam(), 2);
  net::PartitionFault cut;
  cut.src = 0;
  cut.dst = 1;
  cut.from = microseconds(10);
  cut.until = microseconds(700);
  mc.fabric.fault.partitions.push_back(cut);
  net::Machine m(mc);

  std::vector<std::byte> tgt_a(static_cast<std::size_t>(kLen));
  std::vector<std::byte> tgt_b(static_cast<std::size_t>(kLen));
  lapi::Counter tgt_cntr;
  Status st_a = Status::kUnknown, st_b = Status::kUnknown;

  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    lapi::Config cfg = patient_lapi_config();
    cfg.credit_window = 2;
    lapi::Context ctx(n, cfg);
    if (n.id() == 0) {
      std::vector<std::byte> src(static_cast<std::size_t>(kLen),
                                 std::byte{0x11});
      lapi::Counter ca, cb;
      ASSERT_EQ(ctx.put(1, src, tgt_a.data(), &tgt_cntr, nullptr, &ca),
                Status::kOk);
      ASSERT_EQ(ctx.put(1, src, tgt_b.data(), &tgt_cntr, nullptr, &cb),
                Status::kOk);
      st_a = ctx.waitcntr(ca, 1);
      st_b = ctx.waitcntr(cb, 1);
      EXPECT_EQ(ctx.pending_sends(), 0u);
      EXPECT_EQ(ctx.credits_available(1), 2);  // the full window restored
    } else {
      ASSERT_EQ(ctx.waitcntr(tgt_cntr, 2), Status::kOk);
    }
    EXPECT_NE(ctx.gfence(), Status::kPeerFailed);
  }), Status::kOk);

  EXPECT_EQ(st_a, Status::kOk);
  EXPECT_EQ(st_b, Status::kOk);
  for (std::size_t i = 0; i < tgt_a.size(); ++i) {
    ASSERT_EQ(tgt_a[i], std::byte{0x11});
    ASSERT_EQ(tgt_b[i], std::byte{0x11});
  }
  EXPECT_GT(m.engine().counters().get("fabric.partitioned"), 0);
  EXPECT_EQ(m.engine().counters().get("lapi.peer_failed"), 0);
  EXPECT_EQ(m.engine().counters().get("lapi.retransmit_giveup"), 0);
}

// ---------------------------------------------------------------------------
// Scenario 6: full partition, then merge, with the detector armed on every
// task. The fabric splits {0,1} | {2,3}; both sides suspect (and quarantine)
// their cross-side partners; nobody reaches a death verdict, directly or by
// gossip — the no-split-brain property. After the merge every quarantined
// operation drains and the data is intact.
// ---------------------------------------------------------------------------

TEST_P(PartitionTest, FullPartitionMergeNoSplitBrain) {
  constexpr int kTasks = 4;
  constexpr int kWarmup = 8;            // alternating same/cross-side rounds
  constexpr int kRounds = kWarmup + 2;  // + in-window cross put + post put
  constexpr std::int64_t kLen = 1024;
  net::Machine::Config mc = partition_machine(GetParam(), kTasks);
  net::PartitionGroup split;
  split.name = "plane0";
  split.sides = {{0, 1}, {2, 3}};
  split.from = microseconds(500);
  split.until = microseconds(1500);
  mc.fabric.fault.partition_groups.push_back(split);
  net::Machine m(mc);

  // Round r, writer w lands in cell[r][w] at its partner for that round.
  // Warmup alternates the same-side (me^1) and cross-side (me^2) partner so
  // every estimator has a rhythm; round kWarmup is the cross-side put pinned
  // inside the window; the last round runs after the merge.
  const auto partner = [](int me, int r) {
    if (r < kWarmup) return (r % 2 == 0) ? (me ^ 1) : (me ^ 2);
    return r == kWarmup ? (me ^ 2) : (me ^ 1);
  };
  std::array<std::array<std::vector<std::byte>, kTasks>, kRounds> cell;
  for (auto& r : cell) {
    for (auto& c : r) c.resize(static_cast<std::size_t>(kLen));
  }
  std::array<Status, kTasks> final_fence;
  final_fence.fill(Status::kUnknown);

  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    lapi::Config cfg = patient_lapi_config();
    cfg.keepalive_interval = microseconds(40);
    cfg.suspect_threshold = 2.0;
    cfg.fail_threshold = 64.0;
    lapi::Context ctx(n, cfg);
    const int me = ctx.task_id();
    std::vector<std::byte> src(static_cast<std::size_t>(kLen),
                               static_cast<std::byte>(0x40 + me));
    for (int round = 0; round < kRounds; ++round) {
      if (round == kWarmup) {
        // Pin the cross-side put inside the partition window regardless of
        // how fast the warmup rounds ran on this seed.
        const Time now = ctx.engine().now();
        if (now < microseconds(800)) {
          sim::Actor::current()->compute(microseconds(800) - now);
        }
      }
      lapi::Counter cmpl;
      ASSERT_EQ(
          ctx.put(partner(me, round), src,
                  cell[static_cast<std::size_t>(round)]
                      [static_cast<std::size_t>(me)].data(),
                  nullptr, nullptr, &cmpl),
          Status::kOk);
      ASSERT_EQ(ctx.waitcntr(cmpl, 1), Status::kOk)
          << "task " << me << " round " << round;
      sim::Actor::current()->compute(microseconds(25));
    }
    final_fence[static_cast<std::size_t>(me)] = ctx.gfence();
    for (int t = 0; t < kTasks; ++t) {
      if (t == me) continue;
      EXPECT_FALSE(ctx.peer_failed(t))
          << "task " << me << " split-brained peer " << t;
    }
    // The fence's own pulse records settle (ack back to this origin) just
    // after the fence itself is satisfied; give them a moment to drain
    // before asserting nothing leaked.
    for (int spins = 0; spins < 200 && ctx.pending_sends() != 0; ++spins) {
      sim::Actor::current()->compute(microseconds(50));
    }
    EXPECT_EQ(ctx.pending_sends(), 0u);
    EXPECT_EQ(ctx.suspect_queued(), 0u);
  }), Status::kOk);

  for (int t = 0; t < kTasks; ++t) {
    EXPECT_NE(final_fence[static_cast<std::size_t>(t)], Status::kPeerFailed);
  }
  for (int round = 0; round < kRounds; ++round) {
    for (int me = 0; me < kTasks; ++me) {
      const auto& c = cell[static_cast<std::size_t>(round)]
                          [static_cast<std::size_t>(me)];
      for (std::size_t i = 0; i < c.size(); ++i) {
        ASSERT_EQ(c[i], static_cast<std::byte>(0x40 + me))
            << "round " << round << " writer " << me << " byte " << i;
      }
    }
  }
  // The partition really severed cross-side traffic, both sides suspected
  // and healed, and not one death verdict — direct, accrual or gossip —
  // latched anywhere.
  EXPECT_GT(m.engine().counters().get("fabric.partitioned"), 0);
  EXPECT_GT(m.engine().counters().get("lapi.peer_suspected"), 0);
  EXPECT_EQ(m.engine().counters().get("lapi.peer_suspected"),
            m.engine().counters().get("lapi.peer_healed"));
  EXPECT_EQ(m.engine().counters().get("lapi.peer_failed"), 0);
  EXPECT_EQ(m.engine().counters().get("lapi.accrual_failed"), 0);
  EXPECT_EQ(m.engine().counters().get("lapi.keepalive_failed"), 0);
  EXPECT_EQ(m.engine().counters().get("lapi.retransmit_giveup"), 0);
}

// ---------------------------------------------------------------------------
// Scenario 7: partition plus a real crash. While 0->1 is blackholed, node 3
// genuinely dies. The partitioned pair must ride out its window with zero
// false verdicts, while every survivor latches exactly one death — node 3's,
// through the direct retry-exhaustion evidence and its unconditional gossip.
// ---------------------------------------------------------------------------

TEST_P(PartitionTest, PartitionPlusCrashKillsOnlyTheDeadPeer) {
  constexpr int kTasks = 4;
  constexpr std::int64_t kLen = 4 * 1024;
  net::Machine::Config mc = partition_machine(GetParam(), kTasks);
  net::PartitionFault cut;
  cut.src = 0;
  cut.dst = 1;
  cut.from = 0;  // swallow the put's very first transmission
  cut.until = microseconds(400);
  mc.fabric.fault.partitions.push_back(cut);
  net::Machine m(mc);
  m.kill_node(3, microseconds(150));

  std::array<std::vector<std::byte>, kTasks> tgt;
  for (auto& t : tgt) t.resize(static_cast<std::size_t>(kLen));
  std::array<lapi::Counter, kTasks> tgt_cntr;
  std::array<int, kTasks> handler_calls{};
  std::array<int, kTasks> handler_peer;
  handler_peer.fill(-1);
  std::array<Status, kTasks> put_st;
  put_st.fill(Status::kUnknown);

  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    lapi::Config cfg;
    cfg.retransmit_timeout = microseconds(200);
    cfg.max_retries = 5;  // ladder ~6 ms: far past the 350 us window
    const int me = n.id();
    cfg.error_handler = [&, me](lapi::Context&, int failed_task, Status) {
      ++handler_calls[static_cast<std::size_t>(me)];
      handler_peer[static_cast<std::size_t>(me)] = failed_task;
    };
    lapi::Context ctx(n, cfg);
    const int to = (me + 1) % kTasks;
    std::vector<std::byte> src(static_cast<std::size_t>(kLen),
                               static_cast<std::byte>(0x20 + me));
    if (me == 2) {
      // Hold the put into node 3 until after its crash instant; otherwise
      // (on a fast seed) it completes before the kill and no task ever has
      // a pending record through which to detect the death.
      sim::Actor::current()->compute(microseconds(250));
    }
    lapi::Counter cmpl;
    ASSERT_EQ(ctx.put(to, src, tgt[static_cast<std::size_t>(me)].data(),
                      &tgt_cntr[static_cast<std::size_t>(me)], nullptr,
                      &cmpl),
              Status::kOk);
    put_st[static_cast<std::size_t>(me)] = ctx.waitcntr(cmpl, 1);
    if (me == 3) {
      // The victim parks on a counter nobody bumps and is killed there.
      lapi::Counter never;
      (void)ctx.waitcntr(never, 1);
      return;
    }
    // Survivors stay up until the verdict about node 3 reaches them (task 2
    // first-hand, tasks 0 and 1 by gossip).
    while (!ctx.peer_failed(3)) {
      sim::Actor::current()->compute(microseconds(50));
    }
  }), Status::kOk);

  // The partitioned put (0 -> 1) recovered; the put into the dead node
  // (2 -> 3) failed over with the peer verdict; 3's own pre-crash put
  // (3 -> 0) completed before the kill.
  EXPECT_EQ(put_st[0], Status::kOk);
  EXPECT_EQ(put_st[1], Status::kOk);
  EXPECT_EQ(put_st[2], Status::kPeerFailed);
  EXPECT_EQ(put_st[3], Status::kOk);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(handler_calls[static_cast<std::size_t>(t)], 1)
        << "survivor " << t;
    EXPECT_EQ(handler_peer[static_cast<std::size_t>(t)], 3)
        << "survivor " << t;
  }
  // Exactly the three survivors latched exactly the one real death.
  EXPECT_EQ(m.engine().counters().get("lapi.peer_failed"), 3);
  EXPECT_GT(m.engine().counters().get("fabric.partitioned"), 0);
  EXPECT_GT(m.engine().counters().get("fabric.node_down"), 0);
}

INSTANTIATE_TEST_SUITE_P(Partition, PartitionTest,
                         ::testing::ValuesIn(kSeeds), seed_name);

// ---------------------------------------------------------------------------
// Determinism: the same (scenario, seed) pair must produce identical
// outcomes across two fresh runs — partitions and stragglers are pure
// functions of virtual time and consume no randomness.
// ---------------------------------------------------------------------------

TEST(PartitionDeterminismTest, StragglerRunIsBitDeterministic) {
  const StragglerOutcome a = run_straggler(42, /*legacy=*/false);
  const StragglerOutcome b = run_straggler(42, /*legacy=*/false);
  EXPECT_EQ(a.failed_statuses, b.failed_statuses);
  EXPECT_EQ(a.peer_failed, b.peer_failed);
  EXPECT_EQ(a.suspected, b.suspected);
  EXPECT_EQ(a.healed, b.healed);
  EXPECT_EQ(a.accrual_failed, b.accrual_failed);
}

}  // namespace
}  // namespace splap
