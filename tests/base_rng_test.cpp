#include "base/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace splap {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(RngTest, NextBelowHitsAllResidues) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInInclusiveBounds) {
  Rng r(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng r(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.next_bool(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(RngTest, ReseedReproduces) {
  Rng r(5);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(r.next_u64());
  r.reseed(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(r.next_u64(), first[i]);
}

}  // namespace
}  // namespace splap
