// Global Arrays fundamentals, exercised identically over both transports
// (the paper's LAPI implementation and the previous MPL one): create/destroy,
// put/get round trips on arbitrary patches, locality queries, sync.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "ga_test_util.hpp"

namespace splap::ga {
namespace {

using testing::check_against;
using testing::ga_config;
using testing::machine_config;
using testing::run_ga;

class GaBasicTest : public ::testing::TestWithParam<Transport> {
 protected:
  Config cfg() const { return ga_config(GetParam()); }
};

TEST_P(GaBasicTest, CreateQueryDestroy) {
  net::Machine m(machine_config(4));
  ASSERT_EQ(run_ga(m, cfg(), [](Runtime& rt) {
    GlobalArray a = rt.create(40, 60);
    EXPECT_EQ(a.dim1(), 40);
    EXPECT_EQ(a.dim2(), 60);
    const Patch mine = a.my_block();
    EXPECT_FALSE(mine.empty());
    EXPECT_EQ(a.owner(mine.lo1, mine.lo2), rt.me());
    // Locality: the paper stresses GA exposes the distribution (5.1).
    std::int64_t covered = 0;
    for (int t = 0; t < rt.nprocs(); ++t) covered += a.block_of(t).elems();
    EXPECT_EQ(covered, 40 * 60);
    rt.destroy(a);
    EXPECT_FALSE(a.valid());
  }), Status::kOk);
}

TEST_P(GaBasicTest, PutThenGetRoundTripWholeArray) {
  net::Machine m(machine_config(4));
  const std::int64_t d1 = 32, d2 = 24;
  ASSERT_EQ(run_ga(m, cfg(), [&](Runtime& rt) {
    GlobalArray a = rt.create(d1, d2);
    if (rt.me() == 0) {
      std::vector<double> buf(static_cast<std::size_t>(d1 * d2));
      for (std::int64_t j = 0; j < d2; ++j) {
        for (std::int64_t i = 0; i < d1; ++i) {
          buf[static_cast<std::size_t>(j * d1 + i)] =
              static_cast<double>(i * 1000 + j);
        }
      }
      a.put(Patch{0, d1 - 1, 0, d2 - 1}, buf.data(), d1);
    }
    rt.sync();
    // Every task reads a different patch and validates it.
    const Patch p{rt.me() * 2, d1 - 1 - rt.me(), rt.me(), d2 - 1 - rt.me() * 2};
    std::vector<double> got(static_cast<std::size_t>(p.elems()), -1);
    a.get(p, got.data(), p.rows());
    for (std::int64_t j = 0; j < p.cols(); ++j) {
      for (std::int64_t i = 0; i < p.rows(); ++i) {
        ASSERT_DOUBLE_EQ(got[static_cast<std::size_t>(j * p.rows() + i)],
                         static_cast<double>((p.lo1 + i) * 1000 + (p.lo2 + j)))
            << "task " << rt.me();
      }
    }
    rt.destroy(a);
  }), Status::kOk);
}

TEST_P(GaBasicTest, StridedUserBuffersRespectLeadingDimension) {
  net::Machine m(machine_config(2));
  ASSERT_EQ(run_ga(m, cfg(), [&](Runtime& rt) {
    GlobalArray a = rt.create(20, 20);
    if (rt.me() == 0) {
      // A 4x5 patch stored inside a 9-row local buffer.
      const std::int64_t ld = 9;
      std::vector<double> buf(static_cast<std::size_t>(ld * 5), -7.0);
      for (int j = 0; j < 5; ++j) {
        for (int i = 0; i < 4; ++i) {
          buf[static_cast<std::size_t>(j * ld + i)] = i + 10.0 * j;
        }
      }
      a.put(Patch{10, 13, 12, 16}, buf.data(), ld);
      rt.fence();
      const std::int64_t gld = 11;
      std::vector<double> got(static_cast<std::size_t>(gld * 5), 0.0);
      a.get(Patch{10, 13, 12, 16}, got.data(), gld);
      for (int j = 0; j < 5; ++j) {
        for (int i = 0; i < 4; ++i) {
          EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(j * gld + i)],
                           i + 10.0 * j);
        }
        // Padding rows untouched.
        EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(j * gld + 5)], 0.0);
      }
    }
    rt.destroy(a);
  }), Status::kOk);
}

TEST_P(GaBasicTest, EveryTaskWritesItsOwnBlockViaPut) {
  net::Machine m(machine_config(4));
  check_against(
      m, cfg(), 30, 30,
      [](Runtime& rt, GlobalArray& a) {
        const Patch blk = a.my_block();
        std::vector<double> buf(static_cast<std::size_t>(blk.elems()));
        for (std::int64_t j = 0; j < blk.cols(); ++j) {
          for (std::int64_t i = 0; i < blk.rows(); ++i) {
            buf[static_cast<std::size_t>(j * blk.rows() + i)] =
                100.0 * (blk.lo1 + i) + (blk.lo2 + j);
          }
        }
        a.put(blk, buf.data(), blk.rows());
        (void)rt;
      },
      [](std::int64_t i, std::int64_t j) { return 100.0 * i + j; });
}

TEST_P(GaBasicTest, CrossWritesToRemoteBlocks) {
  // Each task writes the NEXT task's whole block: all transfers remote.
  net::Machine m(machine_config(4));
  check_against(
      m, cfg(), 28, 28,
      [](Runtime& rt, GlobalArray& a) {
        const int peer = (rt.me() + 1) % rt.nprocs();
        const Patch blk = a.block_of(peer);
        std::vector<double> buf(static_cast<std::size_t>(blk.elems()));
        for (std::int64_t j = 0; j < blk.cols(); ++j) {
          for (std::int64_t i = 0; i < blk.rows(); ++i) {
            buf[static_cast<std::size_t>(j * blk.rows() + i)] =
                7.0 * (blk.lo1 + i) - 3.0 * (blk.lo2 + j);
          }
        }
        a.put(blk, buf.data(), blk.rows());
      },
      [](std::int64_t i, std::int64_t j) { return 7.0 * i - 3.0 * j; });
}

TEST_P(GaBasicTest, LargeOneDimensionalTransfers) {
  // Contiguous requests: the direct-RMC path under LAPI (Section 5.4's
  // best case) and single messages under MPL.
  net::Machine m(machine_config(2));
  const std::int64_t d1 = 64 * 1024, d2 = 2;  // tall: column = 256 KB
  ASSERT_EQ(run_ga(m, cfg(), [&](Runtime& rt) {
    GlobalArray a = rt.create(d1, d2);
    if (rt.me() == 0) {
      std::vector<double> col(static_cast<std::size_t>(d1));
      std::iota(col.begin(), col.end(), 0.5);
      a.put(Patch{0, d1 - 1, 1, 1}, col.data(), d1);
      rt.fence();
      std::vector<double> got(static_cast<std::size_t>(d1), 0.0);
      a.get(Patch{0, d1 - 1, 1, 1}, got.data(), d1);
      for (std::int64_t i = 0; i < d1; i += 997) {
        ASSERT_DOUBLE_EQ(got[static_cast<std::size_t>(i)], i + 0.5);
      }
      ASSERT_DOUBLE_EQ(got[static_cast<std::size_t>(d1 - 1)], d1 - 0.5);
    }
    rt.destroy(a);
  }), Status::kOk);
}

TEST_P(GaBasicTest, VeryLargeTwoDimensionalPatchUsesColumnProtocol) {
  // >= 0.5 MB strided requests switch to the per-column protocol
  // (Section 5.4).
  net::Machine m(machine_config(4));
  const std::int64_t d1 = 600, d2 = 600;  // block ~300x300; piece ~0.72 MB
  ASSERT_EQ(run_ga(m, cfg(), [&](Runtime& rt) {
    GlobalArray a = rt.create(d1, d2);
    if (rt.me() == 0) {
      // A 250x300 sub-block of task 2 (2x2 grid): 0.6 MB and genuinely
      // strided (rows 0..249 of a 300-row block), so the per-column switch
      // is forced.
      const Patch p{0, 249, 300, 599};
      std::vector<double> buf(static_cast<std::size_t>(p.elems()));
      for (std::int64_t k = 0; k < p.elems(); ++k) {
        buf[static_cast<std::size_t>(k)] = static_cast<double>(k % 1009);
      }
      a.put(p, buf.data(), p.rows());
      rt.fence();
      std::vector<double> got(static_cast<std::size_t>(p.elems()), -1);
      a.get(p, got.data(), p.rows());
      for (std::int64_t k = 0; k < p.elems(); k += 131) {
        ASSERT_DOUBLE_EQ(got[static_cast<std::size_t>(k)],
                         static_cast<double>(k % 1009));
      }
    }
    rt.destroy(a);
  }), Status::kOk);
  if (GetParam() == Transport::kLapi) {
    EXPECT_GT(m.engine().counters().get("ga.lapi.rmc_columns"), 0);
  }
}

TEST_P(GaBasicTest, FenceMakesPutsVisible) {
  net::Machine m(machine_config(4));
  ASSERT_EQ(run_ga(m, cfg(), [&](Runtime& rt) {
    GlobalArray a = rt.create(16, 16);
    rt.sync();
    if (rt.me() == 0) {
      std::vector<double> ones(256, 1.0);
      a.put(Patch{0, 15, 0, 15}, ones.data(), 16);
      rt.fence();  // data complete at ALL targets
      // Signal completion through a shared counter.
      (void)rt.read_inc(0, 1);
    } else {
      while (rt.read_inc(0, 0) == 0) {
        rt.node().task().compute(microseconds(50));
      }
      double mine = 0;
      const Patch blk = a.my_block();
      a.get(Patch{blk.lo1, blk.lo1, blk.lo2, blk.lo2}, &mine, 1);
      EXPECT_DOUBLE_EQ(mine, 1.0);
    }
    rt.destroy(a);
  }), Status::kOk);
}

TEST_P(GaBasicTest, MultipleArraysCoexist) {
  net::Machine m(machine_config(3));
  ASSERT_EQ(run_ga(m, cfg(), [](Runtime& rt) {
    GlobalArray a = rt.create(10, 10);
    GlobalArray b = rt.create(5, 40);
    if (rt.me() == 0) {
      std::vector<double> va(100, 3.0), vb(200, 4.0);
      a.put(Patch{0, 9, 0, 9}, va.data(), 10);
      b.put(Patch{0, 4, 0, 39}, vb.data(), 5);
      rt.fence();
      double ga = 0, gb = 0;
      a.get(Patch{9, 9, 9, 9}, &ga, 1);
      b.get(Patch{4, 4, 39, 39}, &gb, 1);
      EXPECT_DOUBLE_EQ(ga, 3.0);
      EXPECT_DOUBLE_EQ(gb, 4.0);
    }
    rt.sync();
    rt.destroy(b);
    rt.destroy(a);
  }), Status::kOk);
}

TEST_P(GaBasicTest, BrdcstAndGopSum) {
  net::Machine m(machine_config(4));
  ASSERT_EQ(run_ga(m, cfg(), [](Runtime& rt) {
    std::vector<double> v(8, 0.0);
    if (rt.me() == 2) {
      for (int i = 0; i < 8; ++i) v[static_cast<std::size_t>(i)] = i * 2.0;
    }
    rt.brdcst(v, 2);
    for (int i = 0; i < 8; ++i) {
      EXPECT_DOUBLE_EQ(v[static_cast<std::size_t>(i)], i * 2.0);
    }
    std::vector<double> s(4, static_cast<double>(rt.me() + 1));
    rt.gop_sum(s);
    for (int i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(s[static_cast<std::size_t>(i)], 10.0);  // 1+2+3+4
    }
  }), Status::kOk);
}

INSTANTIATE_TEST_SUITE_P(Transports, GaBasicTest,
                         ::testing::Values(Transport::kLapi, Transport::kMpl),
                         [](const ::testing::TestParamInfo<Transport>& info) {
                           return info.param == Transport::kLapi ? "Lapi"
                                                                 : "Mpl";
                         });

}  // namespace
}  // namespace splap::ga
