#include "base/strided.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "base/rng.hpp"

namespace splap {
namespace {

std::vector<std::byte> iota_bytes(std::int64_t n) {
  std::vector<std::byte> v(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>(i & 0xff);
  return v;
}

TEST(StridedTest, ContiguityDetection) {
  StridedRegion r{nullptr, 16, 4, 16};
  EXPECT_TRUE(r.contiguous());
  r.ld_bytes = 32;
  EXPECT_FALSE(r.contiguous());
  r.cols = 1;
  EXPECT_TRUE(r.contiguous());  // single run is contiguous whatever the ld
  EXPECT_EQ(r.total_bytes(), 16);
}

TEST(StridedTest, PackUnpackRoundTrip) {
  auto src = iota_bytes(1000);
  StridedRegion s{src.data(), 24, 10, 100};  // 10 runs of 24 B, stride 100
  std::vector<std::byte> packed(240);
  copy_strided_to_contig(s, packed.data());
  for (int c = 0; c < 10; ++c) {
    for (int b = 0; b < 24; ++b) {
      EXPECT_EQ(packed[c * 24 + b], src[c * 100 + b]);
    }
  }
  std::vector<std::byte> dst(1000, std::byte{0});
  StridedRegion d{dst.data(), 24, 10, 100};
  copy_contig_to_strided(packed.data(), d);
  for (int c = 0; c < 10; ++c) {
    for (int b = 0; b < 24; ++b) {
      EXPECT_EQ(dst[c * 100 + b], src[c * 100 + b]);
    }
  }
}

TEST(StridedTest, StridedToStridedDifferentLeadingDims) {
  auto src = iota_bytes(600);
  std::vector<std::byte> dst(900, std::byte{0});
  StridedRegion s{src.data(), 30, 5, 120};
  StridedRegion d{dst.data(), 30, 5, 180};
  copy_strided(s, d);
  for (int c = 0; c < 5; ++c) {
    for (int b = 0; b < 30; ++b) {
      EXPECT_EQ(dst[c * 180 + b], src[c * 120 + b]);
    }
  }
}

TEST(StridedTest, DaxpyContig) {
  std::vector<double> x(8), y(8);
  std::iota(x.begin(), x.end(), 1.0);
  std::iota(y.begin(), y.end(), 10.0);
  daxpy_contig(2.0, x.data(), y.data(), 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)], 10.0 + i + 2.0 * (i + 1));
  }
}

TEST(StridedTest, DaxpyIntoStridedRegion) {
  // 3 columns of 4 doubles, leading dimension 6 doubles.
  std::vector<double> dst(18, 1.0);
  std::vector<double> src(12);
  std::iota(src.begin(), src.end(), 0.0);
  StridedRegion d{reinterpret_cast<std::byte*>(dst.data()),
                  4 * static_cast<std::int64_t>(sizeof(double)), 3,
                  6 * static_cast<std::int64_t>(sizeof(double))};
  daxpy_contig_to_strided(0.5, reinterpret_cast<const std::byte*>(src.data()),
                          d);
  for (int c = 0; c < 3; ++c) {
    for (int r = 0; r < 4; ++r) {
      EXPECT_DOUBLE_EQ(dst[static_cast<std::size_t>(c * 6 + r)],
                       1.0 + 0.5 * (c * 4 + r));
    }
    // Padding untouched.
    EXPECT_DOUBLE_EQ(dst[static_cast<std::size_t>(c * 6 + 4)], 1.0);
    EXPECT_DOUBLE_EQ(dst[static_cast<std::size_t>(c * 6 + 5)], 1.0);
  }
}

TEST(StridedTest, RandomizedPackUnpackProperty) {
  Rng rng(123);
  for (int iter = 0; iter < 50; ++iter) {
    const std::int64_t row = rng.next_in(1, 64);
    const std::int64_t cols = rng.next_in(1, 32);
    const std::int64_t ld = row + rng.next_in(0, 32);
    auto src = iota_bytes(ld * cols + 7);
    std::vector<std::byte> packed(static_cast<std::size_t>(row * cols));
    std::vector<std::byte> dst(src.size(), std::byte{0xEE});
    StridedRegion s{src.data(), row, cols, ld};
    StridedRegion d{dst.data(), row, cols, ld};
    copy_strided_to_contig(s, packed.data());
    copy_contig_to_strided(packed.data(), d);
    for (std::int64_t c = 0; c < cols; ++c) {
      for (std::int64_t b = 0; b < row; ++b) {
        ASSERT_EQ(dst[static_cast<std::size_t>(c * ld + b)],
                  src[static_cast<std::size_t>(c * ld + b)]);
      }
    }
  }
}

}  // namespace
}  // namespace splap
