// Calibration lock: the simulated SP must keep reproducing the LAPI rows of
// the paper's Section 4 within tight bands. If a cost-model or protocol
// change drifts these numbers, this test fails before the benchmarks lie.
//
//   Table 2 (LAPI):  polling one-way 34us, polling RT 60us, interrupt RT 89us
//   Section 4 text:  Put pipeline latency 16us, Get pipeline latency 19us
//   Figure 2:        asymptotic ~97 MB/s; half-bandwidth point ~8 KB
#include <gtest/gtest.h>

#include <vector>

#include "lapi_test_util.hpp"

namespace splap::lapi {
namespace {

using testing::machine_config;
using testing::run_lapi;

Config polling_config() {
  Config c;
  c.interrupt_mode = false;
  return c;
}

TEST(LapiCalibrationTest, PollingOneWayLatencyNear34us) {
  net::Machine m(machine_config(2));
  std::byte cell{};
  Counter tgt;
  Time sent_at = kNoTime, landed_at = kNoTime;
  ASSERT_EQ(run_lapi(m, polling_config(), [&](Context& ctx) {
    std::vector<void*> tab(2);
    ctx.address_init(&tgt, tab);
    if (ctx.task_id() == 0) {
      // Cold call: compute first so the warm-entry discount does not apply.
      ctx.node().task().compute(microseconds(100));
      std::byte b{1};
      sent_at = ctx.engine().now();
      ASSERT_EQ(ctx.put(1, testing::as_bytes_of(&b, 1), &cell,
                        static_cast<Counter*>(tab[1]), nullptr, nullptr),
                Status::kOk);
    } else {
      EXPECT_EQ(ctx.waitcntr(tgt, 1), Status::kOk);
      landed_at = ctx.engine().now();
    }
  }), Status::kOk);
  const double us = to_us(landed_at - sent_at);
  EXPECT_GE(us, 30.0);
  EXPECT_LE(us, 38.0);
}

double ping_pong_us(bool interrupts) {
  net::Machine m(machine_config(2));
  Config cfg;
  cfg.interrupt_mode = interrupts;
  std::byte ping_cell{}, pong_cell{};
  Counter ping_cntr, pong_cntr;
  Time rt = 0;
  EXPECT_EQ(run_lapi(m, cfg, [&](Context& ctx) {
    std::vector<void*> ping_tab(2), pong_tab(2);
    ctx.address_init(&ping_cntr, ping_tab);
    ctx.address_init(&pong_cntr, pong_tab);
    std::byte b{7};
    if (ctx.task_id() == 0) {
      ctx.node().task().compute(microseconds(50));  // cold first call
      const Time t0 = ctx.engine().now();
      EXPECT_EQ(ctx.put(1, testing::as_bytes_of(&b, 1), &ping_cell,
                        static_cast<Counter*>(ping_tab[1]), nullptr, nullptr),
                Status::kOk);
      EXPECT_EQ(ctx.waitcntr(pong_cntr, 1), Status::kOk);
      rt = ctx.engine().now() - t0;
    } else {
      EXPECT_EQ(ctx.waitcntr(ping_cntr, 1), Status::kOk);
      EXPECT_EQ(ctx.put(0, testing::as_bytes_of(&b, 1), &pong_cell,
                        static_cast<Counter*>(pong_tab[0]), nullptr, nullptr),
                Status::kOk);
    }
  }), Status::kOk);
  return to_us(rt);
}

TEST(LapiCalibrationTest, PollingRoundTripNear60us) {
  const double us = ping_pong_us(false);
  EXPECT_GE(us, 54.0);
  EXPECT_LE(us, 66.0);
}

/// The interrupt round trip is measured with both sides OUTSIDE the library
/// (a task blocked in Waitcntr polls the adapter and takes no interrupt):
/// the target echoes from its header handler while its main thread
/// computes, and the origin spins in user code polling the pong's target
/// counter — both deliveries therefore pay the interrupt cost.
double interrupt_ping_pong_us() {
  net::Machine m(machine_config(2));
  Counter pong_cntr;
  Time rt = 0;
  EXPECT_EQ(run_lapi(m, [&](Context& ctx) {
    std::vector<void*> tab(2);
    ctx.address_init(&pong_cntr, tab);
    const AmHandlerId echo = ctx.register_handler(
        [&, tab](Context& c, const AmDelivery& d) -> AmReply {
          if (c.task_id() == 1) {
            // Echo back from the handler (target main thread is computing);
            // the pong's target counter fires at the origin on delivery.
            EXPECT_EQ(c.amsend(d.origin, 1, {}, {},
                               static_cast<Counter*>(tab[0]), nullptr,
                               nullptr),
                      Status::kOk);
          }
          return {};
        });
    if (ctx.task_id() == 0) {
      ctx.node().task().compute(microseconds(50));
      const Time t0 = ctx.engine().now();
      EXPECT_EQ(ctx.amsend(1, echo, {}, {}, nullptr, nullptr, nullptr),
                Status::kOk);
      for (;;) {
        ctx.node().task().compute(nanoseconds(500));
        if (ctx.getcntr(pong_cntr) > 0) break;
      }
      rt = ctx.engine().now() - t0;
    } else {
      // Stay out of the library while the ping arrives.
      ctx.node().task().compute(milliseconds(1.0));
    }
  }), Status::kOk);
  return to_us(rt);
}

TEST(LapiCalibrationTest, InterruptRoundTripNear89us) {
  const double us = interrupt_ping_pong_us();
  EXPECT_GE(us, 80.0);
  EXPECT_LE(us, 98.0);
}

TEST(LapiCalibrationTest, PutPipelineLatencyNear16us) {
  net::Machine m(machine_config(2));
  std::byte cell{};
  double us = 0;
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    if (ctx.task_id() == 0) {
      ctx.node().task().compute(microseconds(50));  // cold call
      std::byte b{1};
      const Time t0 = ctx.engine().now();
      ASSERT_EQ(ctx.put(1, testing::as_bytes_of(&b, 1), &cell, nullptr,
                        nullptr, nullptr),
                Status::kOk);
      us = to_us(ctx.engine().now() - t0);
    }
  }), Status::kOk);
  EXPECT_GE(us, 14.0);
  EXPECT_LE(us, 18.0);
}

TEST(LapiCalibrationTest, GetPipelineLatencyNear19us) {
  net::Machine m(machine_config(2));
  std::byte cell{1};
  double us = 0;
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    if (ctx.task_id() == 0) {
      ctx.node().task().compute(microseconds(50));
      std::byte b{};
      Counter org;
      const Time t0 = ctx.engine().now();
      ASSERT_EQ(ctx.get(1, 1, &cell, &b, nullptr, &org), Status::kOk);
      us = to_us(ctx.engine().now() - t0);
      EXPECT_EQ(ctx.waitcntr(org, 1), Status::kOk);
    }
  }), Status::kOk);
  EXPECT_GE(us, 17.0);
  EXPECT_LE(us, 21.0);
}

/// One-way bandwidth measured the paper's way: a put followed by a wait for
/// its origin-side completion (Section 4).
double put_bandwidth_mb_s(std::int64_t len, int reps) {
  net::Machine m(machine_config(2));
  std::vector<std::byte> tgt(static_cast<std::size_t>(len));
  Time elapsed = 0;
  EXPECT_EQ(run_lapi(m, polling_config(), [&](Context& ctx) {
    if (ctx.task_id() == 0) {
      std::vector<std::byte> src(static_cast<std::size_t>(len), std::byte{1});
      Counter cmpl;
      const Time t0 = ctx.engine().now();
      for (int i = 0; i < reps; ++i) {
        EXPECT_EQ(ctx.put(1, src, tgt.data(), nullptr, nullptr, &cmpl),
                  Status::kOk);
        EXPECT_EQ(ctx.waitcntr(cmpl, 1), Status::kOk);
      }
      elapsed = ctx.engine().now() - t0;
    }
  }), Status::kOk);
  return mb_per_s(len * reps, elapsed);
}

TEST(LapiCalibrationTest, AsymptoticBandwidthNear97MBs) {
  const double bw = put_bandwidth_mb_s(2 << 20, 3);
  EXPECT_GE(bw, 93.0);
  EXPECT_LE(bw, 101.0);
}

TEST(LapiCalibrationTest, HalfBandwidthPointNear8K) {
  // Figure 2: "the message size at which the transfer rate is half the
  // asymptotic rate is approximately 8 Kbytes in LAPI".
  const double asym = put_bandwidth_mb_s(2 << 20, 3);
  const double at_8k = put_bandwidth_mb_s(8 << 10, 20);
  const double ratio = at_8k / asym;
  EXPECT_GE(ratio, 0.40);
  EXPECT_LE(ratio, 0.60);
}

TEST(LapiCalibrationTest, MediumMessageBandwidthRisesFast) {
  // By 64 KB LAPI should already run at >80% of its asymptote — the "rises
  // much faster than MPI" claim needs the knee well below 64 KB.
  const double asym = put_bandwidth_mb_s(2 << 20, 3);
  const double at_64k = put_bandwidth_mb_s(64 << 10, 10);
  EXPECT_GE(at_64k / asym, 0.80);
}

}  // namespace
}  // namespace splap::lapi
