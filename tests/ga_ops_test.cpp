// GA one-sided operations under contention: atomic accumulate (the
// Section 5.3.3 machinery), scatter/gather, read-and-increment, and locks —
// on both transports.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ga_test_util.hpp"

namespace splap::ga {
namespace {

using testing::check_against;
using testing::ga_config;
using testing::machine_config;
using testing::run_ga;

class GaOpsTest : public ::testing::TestWithParam<Transport> {
 protected:
  Config cfg() const { return ga_config(GetParam()); }
};

TEST_P(GaOpsTest, AccumulateAddsWithAlpha) {
  net::Machine m(machine_config(2));
  check_against(
      m, cfg(), 12, 12,
      [](Runtime& rt, GlobalArray& a) {
        if (rt.me() == 0) {
          std::vector<double> ones(144, 1.0);
          a.put(Patch{0, 11, 0, 11}, ones.data(), 12);
          rt.fence();
          std::vector<double> twos(144, 2.0);
          a.acc(Patch{0, 11, 0, 11}, twos.data(), 12, 0.5);  // += 0.5*2
          rt.fence();
        }
      },
      [](std::int64_t, std::int64_t) { return 2.0; });
}

TEST_P(GaOpsTest, ConcurrentAccumulatesFromAllTasksAreExact) {
  // The commutative-accumulate contention scenario of Section 5.3.1: every
  // task accumulates into the SAME patch repeatedly; the total must be
  // exact regardless of handler interleaving.
  net::Machine m(machine_config(4));
  constexpr int kRounds = 6;
  check_against(
      m, cfg(), 20, 20,
      [](Runtime& rt, GlobalArray& a) {
        std::vector<double> v(400);
        for (int k = 0; k < 400; ++k) {
          v[static_cast<std::size_t>(k)] = rt.me() + 1.0;
        }
        for (int r = 0; r < kRounds; ++r) {
          a.acc(Patch{0, 19, 0, 19}, v.data(), 20, 1.0);
        }
      },
      [](std::int64_t, std::int64_t) {
        return kRounds * (1.0 + 2.0 + 3.0 + 4.0);
      });
}

TEST_P(GaOpsTest, AccumulateAgainstLocalUpdatesStaysAtomic) {
  // The owner hammers its own block while remote accumulates stream in —
  // the mutex (LAPI) / lockrnc (MPL) must serialize element updates.
  net::Machine m(machine_config(2));
  check_against(
      m, cfg(), 8, 8,
      [](Runtime& rt, GlobalArray& a) {
        std::vector<double> v(64, 1.0);
        for (int r = 0; r < 10; ++r) {
          a.acc(Patch{0, 7, 0, 7}, v.data(), 8, 1.0);
          rt.node().task().compute(microseconds(7));
        }
      },
      [](std::int64_t, std::int64_t) { return 20.0; });
}

TEST_P(GaOpsTest, ScatterPlacesElements) {
  net::Machine m(machine_config(4));
  check_against(
      m, cfg(), 16, 16,
      [](Runtime& rt, GlobalArray& a) {
        if (rt.me() != 1) return;
        // A diagonal spread across every owner.
        std::vector<double> v;
        std::vector<std::int64_t> si, sj;
        for (std::int64_t k = 0; k < 16; ++k) {
          si.push_back(k);
          sj.push_back(k);
          v.push_back(100.0 + static_cast<double>(k));
        }
        a.scatter(v, si, sj);
        rt.fence();
      },
      [](std::int64_t i, std::int64_t j) {
        return i == j ? 100.0 + static_cast<double>(i) : 0.0;
      });
}

TEST_P(GaOpsTest, GatherReadsElements) {
  net::Machine m(machine_config(4));
  ASSERT_EQ(run_ga(m, cfg(), [](Runtime& rt) {
    GlobalArray a = rt.create(16, 16);
    // Owners fill their blocks locally.
    const Patch blk = a.my_block();
    double* local = a.access();
    for (std::int64_t j = 0; j < blk.cols(); ++j) {
      for (std::int64_t i = 0; i < blk.rows(); ++i) {
        local[j * blk.rows() + i] =
            1000.0 * (blk.lo1 + i) + (blk.lo2 + j);
      }
    }
    rt.sync();
    if (rt.me() == 3) {
      // Anti-diagonal touches several owners.
      std::vector<std::int64_t> si, sj;
      for (std::int64_t k = 0; k < 16; ++k) {
        si.push_back(k);
        sj.push_back(15 - k);
      }
      std::vector<double> v(16, -1.0);
      a.gather(v, si, sj);
      for (std::int64_t k = 0; k < 16; ++k) {
        EXPECT_DOUBLE_EQ(v[static_cast<std::size_t>(k)],
                         1000.0 * k + (15 - k));
      }
    }
    rt.sync();
    rt.destroy(a);
  }), Status::kOk);
}

TEST_P(GaOpsTest, LargeScatterGatherRandomized) {
  net::Machine m(machine_config(4));
  constexpr int kElems = 700;  // forces multiple chunks per owner
  ASSERT_EQ(run_ga(m, cfg(), [&](Runtime& rt) {
    GlobalArray a = rt.create(64, 64);
    rt.sync();
    if (rt.me() == 0) {
      Rng rng(4242);
      std::vector<std::int64_t> si, sj;
      std::vector<double> v;
      // Distinct subscripts: overlapping scatter targets are unordered.
      std::vector<int> used(64 * 64, 0);
      while (si.size() < kElems) {
        const auto i = rng.next_in(0, 63);
        const auto j = rng.next_in(0, 63);
        if (used[static_cast<std::size_t>(i * 64 + j)]++) continue;
        si.push_back(i);
        sj.push_back(j);
        v.push_back(static_cast<double>(i * 64 + j));
      }
      a.scatter(v, si, sj);
      rt.fence();
      std::vector<double> got(si.size(), -1.0);
      a.gather(got, si, sj);
      for (std::size_t k = 0; k < si.size(); ++k) {
        ASSERT_DOUBLE_EQ(got[k], v[k]);
      }
    }
    rt.sync();
    rt.destroy(a);
  }), Status::kOk);
}

TEST_P(GaOpsTest, ReadIncCountsExactly) {
  net::Machine m(machine_config(5));
  constexpr int kPer = 20;
  std::vector<std::int64_t> seen;
  ASSERT_EQ(run_ga(m, cfg(), [&](Runtime& rt) {
    for (int k = 0; k < kPer; ++k) {
      seen.push_back(rt.read_inc(3, 1));
    }
  }), Status::kOk);
  ASSERT_EQ(seen.size(), 5u * kPer);
  std::vector<int> hits(5 * kPer, 0);
  for (const auto p : seen) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 5 * kPer);
    ++hits[static_cast<std::size_t>(p)];
  }
  for (const int h : hits) EXPECT_EQ(h, 1);  // a perfect shared counter
}

TEST_P(GaOpsTest, LocksProvideMutualExclusion) {
  net::Machine m(machine_config(4));
  int in_critical = 0;
  bool violated = false;
  int entries = 0;
  ASSERT_EQ(run_ga(m, cfg(), [&](Runtime& rt) {
    for (int r = 0; r < 4; ++r) {
      rt.lock(7);
      if (++in_critical != 1) violated = true;
      rt.node().task().compute(microseconds(40));
      --in_critical;
      ++entries;
      rt.unlock(7);
      rt.node().task().compute(microseconds(11 * (rt.me() + 1)));
    }
  }), Status::kOk);
  EXPECT_FALSE(violated);
  EXPECT_EQ(entries, 16);
}

TEST_P(GaOpsTest, IndependentLocksDoNotInterfere) {
  net::Machine m(machine_config(2));
  ASSERT_EQ(run_ga(m, cfg(), [&](Runtime& rt) {
    // Each task holds its own lock for a long time; no cross-blocking.
    const int my_lock = rt.me();
    const Time t0 = rt.engine().now();
    rt.lock(my_lock);
    rt.node().task().compute(milliseconds(1.0));
    rt.unlock(my_lock);
    // If the locks interfered, one task would have waited ~1ms extra.
    EXPECT_LT(rt.engine().now() - t0, milliseconds(1.8));
  }), Status::kOk);
}

TEST_P(GaOpsTest, AccumulatePoolPathUnderBurst) {
  // A burst of accumulates while the owner hammers the mutex forces the
  // completion-handler (pool) path on the LAPI transport (Section 5.3.1).
  Config c = cfg();
  c.am_buffers = 4;  // tiny pool to stress it
  net::Machine m(machine_config(2));
  check_against(
      m, c, 10, 10,
      [](Runtime& rt, GlobalArray& a) {
        std::vector<double> v(100, 1.0);
        if (rt.me() == 0) {
          for (int r = 0; r < 25; ++r) {
            a.acc(Patch{0, 9, 0, 9}, v.data(), 10, 1.0);
          }
        } else {
          for (int r = 0; r < 25; ++r) {
            a.acc(Patch{0, 9, 0, 9}, v.data(), 10, 1.0);
            rt.node().task().compute(microseconds(3));
          }
        }
      },
      [](std::int64_t, std::int64_t) { return 50.0; });
}

INSTANTIATE_TEST_SUITE_P(Transports, GaOpsTest,
                         ::testing::Values(Transport::kLapi, Transport::kMpl),
                         [](const ::testing::TestParamInfo<Transport>& info) {
                           return info.param == Transport::kLapi ? "Lapi"
                                                                 : "Mpl";
                         });

}  // namespace
}  // namespace splap::ga
