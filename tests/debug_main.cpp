// Scratch diagnostics binary (not a registered test): reproduces whatever
// scenario is under investigation with debug logging enabled.
#include <array>
#include <cstdio>
#include <vector>

#include "base/log.hpp"
#include "lapi/context.hpp"
#include "net/machine.hpp"
#include "sim/sync.hpp"

using namespace splap;

int main() {
  Log::level() = LogLevel::kDebug;
  constexpr int kPuts = 24;
  constexpr std::int64_t kLen = 512;
  net::Machine::Config mc;
  mc.tasks = 2;
  mc.fabric.seed = 301;
  mc.fabric.fault.seed = 43;
  for (const auto& [from, until] :
       {std::pair<Time, Time>{microseconds(250), microseconds(700)},
        std::pair<Time, Time>{microseconds(1100), microseconds(1550)}}) {
    net::PartitionFault cut;
    cut.src = 1;
    cut.dst = 0;
    cut.from = from;
    cut.until = until;
    mc.fabric.fault.partitions.push_back(cut);
  }
  net::Machine m(mc);

  std::array<std::vector<std::byte>, kPuts> tgt;
  for (auto& t : tgt) t.resize(static_cast<std::size_t>(kLen));
  int failed = 0;

  auto st = m.run_spmd([&](net::Node& n) {
    lapi::Config cfg;
    cfg.retransmit_timeout = microseconds(150);
    cfg.max_retries = 12;
    cfg.credit_window = 4;
    if (n.id() == 0) {
      cfg.keepalive_interval = microseconds(30);
      cfg.suspect_threshold = 2.0;
      cfg.fail_threshold = 1e6;
    }
    lapi::Context ctx(n, cfg);
    if (n.id() == 0) {
      std::vector<std::byte> src(static_cast<std::size_t>(kLen),
                                 std::byte{0x5A});
      for (int i = 0; i < kPuts; ++i) {
        lapi::Counter cmpl;
        std::printf("== put %d at %.3fus\n", i, to_us(ctx.engine().now()));
        (void)ctx.put(1, src, tgt[static_cast<std::size_t>(i)].data(), nullptr,
                      nullptr, &cmpl);
        if (ctx.waitcntr(cmpl, 1) != Status::kOk) ++failed;
        sim::Actor::current()->compute(microseconds(20));
      }
      std::printf("== loop done at %.3fus failed=%d pending=%zu\n",
                  to_us(ctx.engine().now()), failed, ctx.pending_sends());
    } else {
      sim::Actor::current()->compute(milliseconds(4.0));
    }
  });
  std::printf("status=%d failed=%d suspected=%lld healed=%lld\n",
              static_cast<int>(st), failed,
              static_cast<long long>(
                  m.engine().counters().get("lapi.peer_suspected")),
              static_cast<long long>(
                  m.engine().counters().get("lapi.peer_healed")));
  return 0;
}
