// Scratch diagnostics binary (not a registered test): reproduces whatever
// scenario is under investigation with debug logging enabled.
#include <cstdio>
#include <vector>

#include "base/log.hpp"
#include "lapi/context.hpp"
#include "net/machine.hpp"

using namespace splap;

int main() {
  net::Machine::Config cfg;
  cfg.tasks = 2;
  net::Machine m(cfg);
  bool flag = false;
  Time sent = kNoTime, landed = kNoTime;
  auto st = m.run_spmd([&](net::Node& n) {
    lapi::Context ctx(n);
    std::vector<void*> tab(2);
    lapi::Counter tgt;
    ctx.address_init(&tgt, tab);
    const auto h = ctx.register_handler(
        [&](lapi::Context&, const lapi::AmDelivery&) -> lapi::AmReply {
          flag = true;
          return {};
        });
    if (n.id() == 0) {
      n.task().compute(microseconds(40));
      sent = ctx.engine().now();
      (void)ctx.amsend(1, h, {}, {}, static_cast<lapi::Counter*>(tab[1]), nullptr,
                 nullptr);
    } else {
      while (!flag) n.task().compute(nanoseconds(500));
      landed = ctx.engine().now();
    }
    (void)ctx.gfence();
  });
  std::printf("status=%d one_way=%.3fus interrupts=%lld\n",
              static_cast<int>(st), to_us(landed - sent),
              static_cast<long long>(m.engine().counters().get("lapi.interrupts")));
  return 0;
}
