// Determinism regression tests for the hot-path overhaul of the DES core.
//
// The engine's contract is bit-reproducibility: event order is (time, then
// insertion seq) no matter which internal list — FIFO tail, imminent box, or
// binary heap — a particular push landed in, and no matter how event
// callables are stored or recycled. These tests pin that contract two ways:
//
//  1. A golden trace captured from the pre-overhaul implementation (plain
//     std::priority_queue of std::function events, heap-allocated packets).
//     Any reordering, timing drift, or RNG-consumption change breaks it.
//  2. A mixed actor/event/fabric workload run twice in one process must
//     produce identical traces, final times, and counters — catching state
//     leaking between runs through pools or caches (the ZeroSlabCache is
//     deliberately process-wide, so this is not a vacuous check).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/machine.hpp"
#include "sim/engine.hpp"

namespace splap {
namespace {

struct Delivery {
  int dst;
  int src;
  std::int64_t size;
  Time t;
  bool operator==(const Delivery&) const = default;
};

/// The exact workload the golden trace below was captured from: 3 nodes,
/// contention jitter and drop faults armed (so the fabric RNG consumption
/// order is part of what is being pinned), 8 rounds of all-pairs traffic
/// with cycling payload sizes, all injected in one burst at t=0.
std::vector<Delivery> run_golden_workload(net::Machine& m) {
  std::vector<Delivery> trace;
  for (int dst = 0; dst < 3; ++dst) {
    m.node(dst).adapter().register_client(
        net::Client::kLapi, [&trace, &m, dst](net::Packet&& p) {
          trace.push_back(Delivery{dst, p.src,
                                   static_cast<std::int64_t>(p.data.size()),
                                   m.engine().now()});
        });
  }
  m.engine().schedule_at(0, [&m] {
    int k = 0;
    for (int round = 0; round < 8; ++round) {
      for (int s = 0; s < 3; ++s) {
        for (int d = 0; d < 3; ++d) {
          if (s == d) continue;
          net::Packet p = m.fabric().make_packet();
          p.src = s;
          p.dst = d;
          p.client = net::Client::kLapi;
          p.header_bytes = 48;
          p.data.resize(static_cast<std::size_t>(64 + 32 * ((k++) % 7)));
          m.fabric().transmit(std::move(p));
        }
      }
    }
  });
  EXPECT_EQ(m.engine().run(), Status::kOk);
  return trace;
}

net::Machine::Config golden_config() {
  net::Machine::Config mc;
  mc.tasks = 3;
  mc.fabric.contention_jitter = 300;
  mc.fabric.drop_rate = 0.05;
  mc.fabric.seed = 0x5eedf00d;
  return mc;
}

TEST(DeterminismTest, GoldenFabricTraceFromSeedImplementation) {
  // Captured from the pre-overhaul engine (std::priority_queue +
  // std::function events, heap-allocated payload vectors). (dst, src,
  // payload bytes, delivery time).
  const std::vector<Delivery> kGolden = {
      {1, 0, 64, 4092},   {0, 1, 128, 4715},  {0, 2, 192, 5433},
      {2, 0, 96, 6459},   {2, 1, 160, 7721},  {1, 2, 224, 8772},
      {0, 1, 96, 10006},  {1, 0, 256, 10276}, {0, 2, 160, 11710},
      {2, 0, 64, 12394},  {2, 1, 128, 13094}, {0, 1, 64, 13514},
      {1, 0, 224, 14673}, {1, 2, 192, 15373}, {2, 1, 96, 15693},
      {0, 2, 128, 16338}, {2, 0, 256, 18263}, {1, 2, 160, 19283},
      {0, 1, 256, 19393}, {0, 2, 96, 21454},  {1, 0, 192, 21494},
      {2, 1, 64, 21734},  {0, 1, 224, 23580}, {1, 2, 128, 24114},
      {0, 2, 64, 24755},  {2, 0, 224, 25065}, {1, 0, 160, 26593},
      {1, 2, 96, 27293},  {2, 1, 256, 27603}, {2, 0, 192, 29812},
      {0, 1, 192, 30661}, {0, 2, 256, 31361}, {1, 0, 128, 32542},
      {1, 2, 64, 33242},  {2, 1, 224, 34271}, {0, 2, 224, 35171},
      {2, 0, 160, 35433}, {0, 1, 160, 35871}, {1, 0, 96, 36387},
      {2, 0, 128, 39063}, {1, 2, 256, 39207}, {2, 1, 192, 39763},
      {1, 0, 64, 41019},  {0, 1, 128, 41570}, {0, 2, 192, 42288},
      {2, 0, 96, 43496},  {2, 1, 160, 44777}, {1, 2, 224, 45888},
  };
  net::Machine m(golden_config());
  const std::vector<Delivery> trace = run_golden_workload(m);
  EXPECT_EQ(m.fabric().packets_sent(), 48);
  EXPECT_EQ(m.fabric().packets_dropped(), 0);
  EXPECT_EQ(m.fabric().bytes_on_wire(), 9888);
  EXPECT_EQ(m.engine().now(), 45888);
  ASSERT_EQ(trace.size(), kGolden.size());
  for (std::size_t i = 0; i < kGolden.size(); ++i) {
    EXPECT_EQ(trace[i], kGolden[i]) << "delivery " << i;
  }
}

/// A workload exercising every ordering-sensitive mechanism at once: actors
/// computing and suspending, events scheduled from events (monotone, into
/// the FIFO tail), imminent deliveries (the one-slot box), and out-of-order
/// pushes (the heap fallback), plus fabric traffic with drops and jitter.
struct RunResult {
  std::vector<Delivery> trace;
  std::vector<std::string> log;
  Time final_time = 0;
  std::int64_t sent = 0;
  std::int64_t dropped = 0;
  std::int64_t on_wire = 0;
  bool operator==(const RunResult&) const = default;
};

RunResult run_mixed_workload() {
  net::Machine::Config mc;
  mc.tasks = 3;
  mc.fabric.contention_jitter = 500;
  mc.fabric.drop_rate = 0.1;
  mc.fabric.seed = 0xfeedbeef;
  net::Machine m(mc);
  RunResult r;
  for (int dst = 0; dst < 3; ++dst) {
    m.node(dst).adapter().register_client(
        net::Client::kLapi, [&r, &m, dst](net::Packet&& p) {
          r.trace.push_back(Delivery{dst, p.src,
                                     static_cast<std::int64_t>(p.data.size()),
                                     m.engine().now()});
        });
  }
  // Out-of-order pushes: a far-future anchor first, then earlier events.
  m.engine().schedule_at(milliseconds(5), [&r, &m] {
    r.log.push_back("anchor@" + std::to_string(m.engine().now()));
  });
  for (int i = 9; i >= 0; --i) {
    m.engine().schedule_at(microseconds(i * 7 + 1), [&r, &m, i] {
      r.log.push_back("ev" + std::to_string(i) + "@" +
                      std::to_string(m.engine().now()));
    });
  }
  (void)m.run_spmd([&](net::Node& n) {
    sim::Actor& self = n.task();
    for (int round = 0; round < 5; ++round) {
      self.compute(microseconds(3 + n.id()));
      for (int d = 0; d < 3; ++d) {
        if (d == n.id()) continue;
        net::Packet p = m.fabric().make_packet();
        p.src = n.id();
        p.dst = d;
        p.client = net::Client::kLapi;
        p.header_bytes = 48;
        p.data.resize(static_cast<std::size_t>(128 + 64 * round));
        m.fabric().transmit(std::move(p));
      }
    }
  });
  r.final_time = m.engine().now();
  r.sent = m.fabric().packets_sent();
  r.dropped = m.fabric().packets_dropped();
  r.on_wire = m.fabric().bytes_on_wire();
  return r;
}

TEST(DeterminismTest, MixedWorkloadRunsBitIdentically) {
  const RunResult a = run_mixed_workload();
  const RunResult b = run_mixed_workload();
  EXPECT_GT(a.trace.size(), 0u);
  EXPECT_EQ(a.log.size(), 11u);
  EXPECT_TRUE(a == b);
  // Third run with pools warm from two machine lifetimes (the ZeroSlabCache
  // now definitely has donated slabs): still identical.
  const RunResult c = run_mixed_workload();
  EXPECT_TRUE(a == c);
}

}  // namespace
}  // namespace splap
