// Deterministic crash-stop recovery harness: nodes are killed (and sometimes
// restarted) at exact virtual times while a live workload is in flight, and
// every scenario must converge without hangs: survivors observe kPeerFailed
// within bounded virtual time, stale packets from a previous incarnation are
// rejected by epoch, leased credits and partial assemblies are reclaimed,
// and the registered error handler fires exactly once per dead peer.
//
// Every scenario runs across multiple fabric seeds (the seeds decorrelate
// the contention-jitter RNG, shifting packet timings against the fixed crash
// instants) and each (scenario, seed) run is bit-deterministic, so failures
// reproduce under their seedN test name. scripts/check.sh replays the whole
// suite under ASan/UBSan and SPLAP_AUDIT (ctest -L recovery).
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "ga/runtime.hpp"
#include "lapi_test_util.hpp"
#include "mpl/comm.hpp"
#include "net/machine.hpp"

namespace splap {
namespace {

const std::uint64_t kSeeds[] = {3, 7, 19, 42, 101};

std::string seed_name(const ::testing::TestParamInfo<std::uint64_t>& info) {
  return "seed" + std::to_string(info.param);
}

net::Machine::Config crash_machine(std::uint64_t seed, int tasks) {
  net::Machine::Config cfg;
  cfg.tasks = tasks;
  cfg.fabric.seed = seed * 7 + 1;
  cfg.fabric.fault.seed = seed;
  return cfg;
}

/// Fast-failing detector settings so a scenario's whole backoff ladder fits
/// in a few virtual milliseconds.
lapi::Config fast_lapi_config() {
  lapi::Config c;
  c.retransmit_timeout = microseconds(200);
  c.max_retries = 4;
  return c;
}

class RecoveryTest : public ::testing::TestWithParam<std::uint64_t> {};

// ---------------------------------------------------------------------------
// Scenario 1: the target dies mid-put. The origin's retry ladder exhausts,
// the crash-stop verdict fails the operation with kPeerFailed, and the
// LAPI_Init-registered error handler runs on the completion pool.
// ---------------------------------------------------------------------------

TEST_P(RecoveryTest, MidPutCrash) {
  constexpr std::int64_t kLen = 64 * 1024;
  net::Machine m(crash_machine(GetParam(), 2));
  m.kill_node(1, microseconds(100));  // mid-stream for a 64 KB transfer

  std::vector<std::byte> tgt(static_cast<std::size_t>(kLen));
  lapi::Counter tgt_cntr;
  Status org_st = Status::kUnknown, cmpl_st = Status::kUnknown;
  int handler_peer = -1, handler_calls = 0;
  Status handler_st = Status::kUnknown;
  Time detected_at = kNoTime;

  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    lapi::Config cfg = fast_lapi_config();
    cfg.error_handler = [&](lapi::Context&, int failed_task, Status st) {
      handler_peer = failed_task;
      handler_st = st;
      ++handler_calls;
    };
    lapi::Context ctx(n, cfg);
    if (n.id() == 0) {
      std::vector<std::byte> src(static_cast<std::size_t>(kLen),
                                 std::byte{0x5A});
      lapi::Counter org, cmpl;
      ASSERT_EQ(ctx.put(1, src, tgt.data(), &tgt_cntr, &org, &cmpl),
                Status::kOk);
      org_st = ctx.waitcntr(org, 1);    // zero-copy: rides the lost data ack
      cmpl_st = ctx.waitcntr(cmpl, 1);
      detected_at = ctx.engine().now();
      EXPECT_TRUE(ctx.peer_failed(1));
      EXPECT_EQ(ctx.pending_sends(), 0u);
      EXPECT_EQ(ctx.outstanding(), 0);
    } else {
      // The victim parks in a wait that can never complete and dies there.
      (void)ctx.waitcntr(tgt_cntr, 1);
    }
  }), Status::kOk);

  EXPECT_EQ(org_st, Status::kPeerFailed);
  EXPECT_EQ(cmpl_st, Status::kPeerFailed);
  EXPECT_EQ(handler_peer, 1);
  EXPECT_EQ(handler_calls, 1);
  EXPECT_EQ(handler_st, Status::kPeerFailed);
  // Detection is bounded by the backoff ladder, not open-ended.
  ASSERT_NE(detected_at, kNoTime);
  EXPECT_LT(detected_at, milliseconds(100.0));
  EXPECT_EQ(m.engine().counters().get("lapi.peer_failed"), 1);
  EXPECT_GT(m.engine().counters().get("lapi.retransmit_giveup"), 0);
  // The fabric actually enforced the crash window on the wire.
  EXPECT_GT(m.engine().counters().get("fabric.node_down"), 0);
}

// ---------------------------------------------------------------------------
// Scenario 2: crash then restart. The survivor's pre-crash retransmissions
// land in the restarted node's new life and are rejected by epoch; a fresh
// operation addressed to the new incarnation then completes normally.
// ---------------------------------------------------------------------------

TEST_P(RecoveryTest, CrashRestartStaleEpoch) {
  constexpr std::int64_t kLen = 64 * 1024;
  net::Machine m(crash_machine(GetParam(), 2));

  std::vector<std::byte> tgt(static_cast<std::size_t>(kLen));
  lapi::Counter first_life, second_life;
  Status put1_st = Status::kUnknown, put2_st = Status::kUnknown;
  bool still_failed = true;
  std::int64_t restarted_epoch = -1;

  lapi::Config cfg = fast_lapi_config();
  m.kill_node(1, microseconds(100));
  m.restart_node(1, milliseconds(1.0), [&](net::Node& n) {
    // The node's second life: a fresh context (epoch 1) that serves until
    // the survivor's retry put lands, absorbing — and rejecting — the old
    // life's stale retransmissions along the way.
    lapi::Context ctx(n, cfg);
    restarted_epoch = ctx.epoch();
    EXPECT_EQ(ctx.waitcntr(second_life, 1), Status::kOk);
  });

  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    lapi::Context ctx(n, cfg);
    if (n.id() == 0) {
      std::vector<std::byte> src(static_cast<std::size_t>(kLen),
                                 std::byte{0x77});
      lapi::Counter cmpl1;
      ASSERT_EQ(ctx.put(1, src, tgt.data(), &first_life, nullptr, &cmpl1),
                Status::kOk);
      put1_st = ctx.waitcntr(cmpl1, 1);  // ladder outlives the restart
      EXPECT_TRUE(ctx.peer_failed(1));
      // Second attempt, now addressed to incarnation 1.
      lapi::Counter cmpl2;
      ASSERT_EQ(ctx.put(1, src, tgt.data(), &second_life, nullptr, &cmpl2),
                Status::kOk);
      put2_st = ctx.waitcntr(cmpl2, 1);
      still_failed = ctx.peer_failed(1);
    } else {
      (void)ctx.waitcntr(first_life, 1);  // first life: dies waiting
    }
  }), Status::kOk);

  EXPECT_EQ(put1_st, Status::kPeerFailed);
  EXPECT_EQ(put2_st, Status::kOk);
  EXPECT_FALSE(still_failed);  // the new life's first ack cleared the latch
  EXPECT_EQ(restarted_epoch, 1);
  EXPECT_EQ(m.incarnation(1), 1);
  EXPECT_EQ(tgt[0], std::byte{0x77});  // the retry landed byte-exact
  // The old life's retransmissions reached the new life and were rejected.
  EXPECT_GT(m.engine().counters().get("lapi.stale_epoch"), 0);
  EXPECT_EQ(m.engine().counters().get("lapi.peer_failed"), 1);
}

// ---------------------------------------------------------------------------
// Scenario 3: keepalive probing races the retransmission ladder. With a
// 50 ms RTO the ladder alone would sit silent for tens of milliseconds; the
// 300 us keepalive declares the dead peer failed within ~4 intervals,
// before the first data retransmission ever fires.
// ---------------------------------------------------------------------------

TEST_P(RecoveryTest, KeepaliveVsRtoRace) {
  constexpr std::int64_t kLen = 128 * 1024;
  net::Machine m(crash_machine(GetParam(), 2));
  m.kill_node(1, microseconds(100));

  std::vector<std::byte> tgt(static_cast<std::size_t>(kLen));
  lapi::Counter tgt_cntr;
  Status cmpl_st = Status::kUnknown;
  Time detected_at = kNoTime;

  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    lapi::Config cfg;
    cfg.retransmit_timeout = milliseconds(50.0);  // ladder out of the race
    cfg.max_retries = 10;
    cfg.keepalive_interval = microseconds(300);
    lapi::Context ctx(n, cfg);
    if (n.id() == 0) {
      std::vector<std::byte> src(static_cast<std::size_t>(kLen),
                                 std::byte{0x2B});
      lapi::Counter cmpl;
      ASSERT_EQ(ctx.put(1, src, tgt.data(), &tgt_cntr, nullptr, &cmpl),
                Status::kOk);
      cmpl_st = ctx.waitcntr(cmpl, 1);
      detected_at = ctx.engine().now();
    } else {
      (void)ctx.waitcntr(tgt_cntr, 1);  // dies waiting
    }
  }), Status::kOk);

  EXPECT_EQ(cmpl_st, Status::kPeerFailed);
  ASSERT_NE(detected_at, kNoTime);
  EXPECT_LT(detected_at, milliseconds(10.0));  // keepalive won the race
  EXPECT_GT(m.engine().counters().get("lapi.keepalive_probes"), 0);
  EXPECT_EQ(m.engine().counters().get("lapi.keepalive_failed"), 1);
  EXPECT_EQ(m.engine().counters().get("lapi.peer_failed"), 1);
  // The 50 ms data ladder never got a turn.
  EXPECT_EQ(m.engine().counters().get("lapi.retransmits"), 0);
}

// ---------------------------------------------------------------------------
// Scenario 4: crash under credit backpressure. One oversize put holds the
// whole 2-credit window while the caller blocks in the user-level credit
// gate for the next one. The peer verdict must return every leased credit
// (unparking the blocked sender), and each subsequent put toward the dead
// peer fails with its own bounded ladder — the latch stays singular.
// (Handler-context sends parked on credit_waitq_ are failed over in bulk;
// that path is covered by the transport-level cascade test.)
// ---------------------------------------------------------------------------

TEST_P(RecoveryTest, CreditBackpressureCrash) {
  constexpr std::int64_t kLen = 5000;
  net::Machine m(crash_machine(GetParam(), 2));
  m.kill_node(1, microseconds(100));

  std::vector<std::byte> tgt(static_cast<std::size_t>(kLen));
  lapi::Counter tgt_cntr;
  std::array<Status, 3> sts;
  sts.fill(Status::kUnknown);
  std::int64_t credits_after = -1;

  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    lapi::Config cfg = fast_lapi_config();
    cfg.credit_window = 2;  // < packets per message: put 2 blocks on credits
    lapi::Context ctx(n, cfg);
    if (n.id() == 0) {
      std::vector<std::byte> src(static_cast<std::size_t>(kLen),
                                 std::byte{0x11});
      std::array<lapi::Counter, 3> cmpl;
      for (auto& c : cmpl) {
        ASSERT_EQ(ctx.put(1, src, tgt.data(), &tgt_cntr, nullptr, &c),
                  Status::kOk);
      }
      for (std::size_t i = 0; i < cmpl.size(); ++i) {
        sts[i] = ctx.waitcntr(cmpl[i], 1);
      }
      credits_after = ctx.credits_available(1);
      EXPECT_EQ(ctx.pending_sends(), 0u);
      EXPECT_EQ(ctx.outstanding(), 0);
    } else {
      (void)ctx.waitcntr(tgt_cntr, 1);  // dies waiting
    }
  }), Status::kOk);

  for (const Status st : sts) EXPECT_EQ(st, Status::kPeerFailed);
  // Full lease reclamation: the window is whole without any grant from the
  // (dead) peer, so a later send toward a restarted life can start at once.
  EXPECT_EQ(credits_after, 2);
  // Put 2 stalled in the credit gate until the failover released put 1's
  // lease; the verdict must not leave the caller parked forever.
  EXPECT_GE(m.engine().counters().get("lapi.credit_stalls"), 1);
  // One latch (and one peer_failed count), but each post-verdict put runs
  // its own bounded ladder — the library keeps probing in case the peer
  // restarts (reconnection rides on retransmission, see the stale-epoch
  // scenario).
  EXPECT_EQ(m.engine().counters().get("lapi.peer_failed"), 1);
  EXPECT_EQ(m.engine().counters().get("lapi.retransmit_giveup"), 3);
  EXPECT_EQ(m.engine().counters().get("lapi.failed_ops"), 3);
}

// ---------------------------------------------------------------------------
// Scenario 5: a GA participant dies mid-workload. Survivors' transfers to
// the dead task fail over, ga_sync terminates degraded instead of hanging,
// and the sticky comm_status() reports kPeerFailed on every survivor.
// ---------------------------------------------------------------------------

TEST_P(RecoveryTest, GaDeadParticipant) {
  constexpr int kTasks = 4;
  constexpr int kDead = 2;
  constexpr std::int64_t kDim = 32;
  net::Machine m(crash_machine(GetParam(), kTasks));
  m.kill_node(kDead, milliseconds(5.0));  // after create, before the acc

  ga::Config gcfg;
  gcfg.lapi = fast_lapi_config();
  std::array<Status, kTasks> comm_status;
  comm_status.fill(Status::kUnknown);
  std::array<Time, kTasks> done_at;
  done_at.fill(kNoTime);

  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    ga::Runtime rt(n, gcfg);
    ga::GlobalArray a = rt.create(kDim, kDim);
    rt.sync();  // everyone holds the array before the crash window opens
    if (rt.me() == kDead) {
      n.task().compute(milliseconds(60.0));  // killed at 5 ms, mid-compute
      ADD_FAILURE() << "the dead task outlived its crash";
      return;
    }
    n.task().compute(milliseconds(6.0));  // start the acc after the crash
    const ga::Patch whole{0, kDim - 1, 0, kDim - 1};
    std::vector<double> mine(static_cast<std::size_t>(kDim * kDim), 1.0);
    a.acc(whole, mine.data(), kDim, 1.0);  // partly targets the dead block
    rt.sync();                        // degraded, but terminates
    comm_status[static_cast<std::size_t>(rt.me())] = rt.comm_status();
    done_at[static_cast<std::size_t>(rt.me())] = rt.engine().now();
  }), Status::kOk);

  for (int t = 0; t < kTasks; ++t) {
    if (t == kDead) continue;
    EXPECT_EQ(comm_status[static_cast<std::size_t>(t)], Status::kPeerFailed)
        << "survivor " << t;
    ASSERT_NE(done_at[static_cast<std::size_t>(t)], kNoTime)
        << "survivor " << t << " never finished";
    EXPECT_LT(done_at[static_cast<std::size_t>(t)], milliseconds(200.0));
  }
  EXPECT_GE(m.engine().counters().get("lapi.peer_failed"), 1);
}

// ---------------------------------------------------------------------------
// Scenario 6: the MPL sibling transport. A rendezvous send to the dead peer
// exhausts its RTS retries; because the fabric confirms the node is down the
// verdict is kPeerFailed (not kResourceExhausted), the blocked send
// unblocks, and a posted receive naming the dead peer fails instead of
// waiting forever.
// ---------------------------------------------------------------------------

TEST_P(RecoveryTest, MplSendToDeadPeer) {
  net::Machine m(crash_machine(GetParam(), 2));
  m.kill_node(1, microseconds(100));

  Status recv_st = Status::kUnknown;
  Status comm_st = Status::kUnknown;
  bool peer_flagged = false;

  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    mpl::Config cfg;
    cfg.retransmit_timeout = microseconds(200);
    cfg.max_retries = 4;
    mpl::Comm comm(n, cfg);
    if (comm.rank() == 0) {
      // Rendezvous-sized: blocks in RTS/CTS, which the crash strands.
      std::vector<std::byte> big(
          static_cast<std::size_t>(comm.eager_limit() + 1), std::byte{0x42});
      EXPECT_EQ(comm.send(1, 5, big), Status::kOk);  // unblocked by failover
      std::vector<std::byte> buf(16);
      recv_st = comm.recv(1, 6, buf);
      comm_st = comm.comm_status();
      peer_flagged = comm.peer_failed(1);
    } else {
      // The victim idles (no matching recv) until the crash takes it.
      n.task().compute(milliseconds(60.0));
      ADD_FAILURE() << "the dead task outlived its crash";
    }
    comm.term();
  }), Status::kOk);

  EXPECT_EQ(recv_st, Status::kPeerFailed);
  EXPECT_EQ(comm_st, Status::kPeerFailed);
  EXPECT_TRUE(peer_flagged);
  EXPECT_EQ(m.engine().counters().get("mpl.peer_failed"), 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryTest, ::testing::ValuesIn(kSeeds),
                         seed_name);

}  // namespace
}  // namespace splap
