#include "base/pool.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace splap {
namespace {

TEST(BufferPoolTest, AcquireReleaseCycle) {
  BufferPool pool(128, 4);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.in_use(), 0u);
  std::byte* b = pool.try_acquire();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.in_use(), 1u);
  pool.release(b);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(BufferPoolTest, ExhaustionReturnsNullAndCounts) {
  BufferPool pool(64, 2);
  std::byte* a = pool.try_acquire();
  std::byte* b = pool.try_acquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.try_acquire(), nullptr);
  EXPECT_EQ(pool.try_acquire(), nullptr);
  EXPECT_EQ(pool.exhaustions(), 2);
  pool.release(a);
  EXPECT_NE(pool.try_acquire(), nullptr);
}

TEST(BufferPoolTest, BuffersAreDistinctAndNonOverlapping) {
  BufferPool pool(32, 8);
  std::vector<std::byte*> bufs;
  for (int i = 0; i < 8; ++i) bufs.push_back(pool.try_acquire());
  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(bufs[static_cast<std::size_t>(i)], nullptr);
    for (int j = i + 1; j < 8; ++j) {
      const auto d = bufs[static_cast<std::size_t>(j)] -
                     bufs[static_cast<std::size_t>(i)];
      EXPECT_GE(d < 0 ? -d : d, 32);
    }
  }
}

TEST(BufferPoolTest, OwnershipQuery) {
  BufferPool pool(16, 2);
  std::byte* b = pool.try_acquire();
  EXPECT_TRUE(pool.owns(b));
  std::byte outside;
  EXPECT_FALSE(pool.owns(&outside));
  EXPECT_FALSE(pool.owns(b + 1));  // interior pointers are not buffer handles
  pool.release(b);
}

TEST(BufferPoolTest, HighWaterTracksPeakUsage) {
  BufferPool pool(16, 4);
  auto* a = pool.try_acquire();
  auto* b = pool.try_acquire();
  auto* c = pool.try_acquire();
  pool.release(b);
  pool.release(a);
  EXPECT_EQ(pool.high_water(), 3u);
  pool.release(c);
  EXPECT_EQ(pool.high_water(), 3u);
}

TEST(SlabBufferPoolTest, SteadyStateStopsGrowing) {
  SlabBufferPool pool(64, 4);
  EXPECT_EQ(pool.capacity(), 0u);
  std::vector<std::byte*> held;
  for (int i = 0; i < 10; ++i) held.push_back(pool.acquire().data);
  const std::size_t peak_capacity = pool.capacity();
  EXPECT_GE(peak_capacity, 10u);
  // Steady state at or below the high-water mark: capacity never moves.
  for (int round = 0; round < 50; ++round) {
    for (std::byte* b : held) pool.release(b);
    held.clear();
    for (int i = 0; i < 10; ++i) held.push_back(pool.acquire().data);
    EXPECT_EQ(pool.capacity(), peak_capacity);
  }
  for (std::byte* b : held) pool.release(b);
}

TEST(SlabBufferPoolTest, FreshBuffersCarryFullZeroGuarantee) {
  SlabBufferPool pool(32, 2);
  const SlabBufferPool::Buffer b = pool.acquire();
  ASSERT_EQ(b.zeroed, 32u);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(b.data[i], std::byte{0}) << "byte " << i;
  }
  pool.release(b.data, b.zeroed);
}

TEST(SlabBufferPoolTest, ReleaseGuaranteeRoundTrips) {
  SlabBufferPool pool(32, 1);
  SlabBufferPool::Buffer b = pool.acquire();
  b.data[20] = std::byte{0xFF};
  pool.release(b.data, 20);  // caller: only [0, 20) still zero
  const SlabBufferPool::Buffer again = pool.acquire();
  EXPECT_EQ(again.data, b.data);
  EXPECT_EQ(again.zeroed, 20u);
  pool.release(again.data, 0);
  EXPECT_EQ(pool.acquire().zeroed, 0u);
  pool.release(b.data, 0);
}

TEST(ZeroSlabCacheTest, CleanPoolDonatesSlabsToSuccessor) {
  // An unusual geometry so this test cannot collide with slabs donated by
  // other tests in this process.
  constexpr std::size_t kBytes = 112;
  constexpr std::size_t kPerSlab = 3;
  std::byte* donated = nullptr;
  {
    SlabBufferPool pool(kBytes, kPerSlab);
    const SlabBufferPool::Buffer b = pool.acquire();
    donated = b.data;
    // Returned fully zero (never written), so the dying pool may donate.
    pool.release(b.data, b.zeroed);
  }
  SlabBufferPool next(kBytes, kPerSlab);
  std::vector<SlabBufferPool::Buffer> all;
  for (std::size_t i = 0; i < kPerSlab; ++i) all.push_back(next.acquire());
  bool saw_donated = false;
  for (const auto& b : all) {
    saw_donated = saw_donated || b.data == donated;
    EXPECT_EQ(b.zeroed, kBytes);
    for (std::size_t i = 0; i < kBytes; ++i) {
      ASSERT_EQ(b.data[i], std::byte{0});
    }
  }
  EXPECT_TRUE(saw_donated);
  for (const auto& b : all) next.release(b.data, b.zeroed);
}

TEST(ZeroSlabCacheTest, DirtyPoolDoesNotDonate) {
  constexpr std::size_t kBytes = 176;  // unique geometry, see above
  std::byte* dirty = nullptr;
  {
    SlabBufferPool pool(kBytes, 1);
    SlabBufferPool::Buffer b = pool.acquire();
    b.data[0] = std::byte{0xAA};
    dirty = b.data;
    pool.release(b.data, 0);
  }
  // The successor may reuse the same address range via the heap, but it must
  // arrive through the value-initialized path: fully zero again.
  SlabBufferPool next(kBytes, 1);
  const SlabBufferPool::Buffer b = next.acquire();
  EXPECT_EQ(b.zeroed, kBytes);
  for (std::size_t i = 0; i < kBytes; ++i) {
    ASSERT_EQ(b.data[i], std::byte{0}) << (b.data == dirty ? "reused" : "new");
  }
  next.release(b.data, b.zeroed);
}

TEST(ObjectPoolTest, RecyclesWithStablePointers) {
  struct Node {
    int tag = 0;
  };
  ObjectPool<Node> pool(4);
  Node* a = pool.acquire();
  a->tag = 7;
  pool.release(a);
  Node* b = pool.acquire();
  EXPECT_EQ(b, a);  // LIFO free list hands the hot object back
  const std::size_t cap = pool.capacity();
  for (int i = 0; i < 100; ++i) {
    Node* p = pool.acquire();
    pool.release(p);
  }
  EXPECT_EQ(pool.capacity(), cap);
  pool.release(b);
}

}  // namespace
}  // namespace splap
