#include "base/pool.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace splap {
namespace {

TEST(BufferPoolTest, AcquireReleaseCycle) {
  BufferPool pool(128, 4);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.in_use(), 0u);
  std::byte* b = pool.try_acquire();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.in_use(), 1u);
  pool.release(b);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(BufferPoolTest, ExhaustionReturnsNullAndCounts) {
  BufferPool pool(64, 2);
  std::byte* a = pool.try_acquire();
  std::byte* b = pool.try_acquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.try_acquire(), nullptr);
  EXPECT_EQ(pool.try_acquire(), nullptr);
  EXPECT_EQ(pool.exhaustions(), 2);
  pool.release(a);
  EXPECT_NE(pool.try_acquire(), nullptr);
}

TEST(BufferPoolTest, BuffersAreDistinctAndNonOverlapping) {
  BufferPool pool(32, 8);
  std::vector<std::byte*> bufs;
  for (int i = 0; i < 8; ++i) bufs.push_back(pool.try_acquire());
  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(bufs[static_cast<std::size_t>(i)], nullptr);
    for (int j = i + 1; j < 8; ++j) {
      const auto d = bufs[static_cast<std::size_t>(j)] -
                     bufs[static_cast<std::size_t>(i)];
      EXPECT_GE(d < 0 ? -d : d, 32);
    }
  }
}

TEST(BufferPoolTest, OwnershipQuery) {
  BufferPool pool(16, 2);
  std::byte* b = pool.try_acquire();
  EXPECT_TRUE(pool.owns(b));
  std::byte outside;
  EXPECT_FALSE(pool.owns(&outside));
  EXPECT_FALSE(pool.owns(b + 1));  // interior pointers are not buffer handles
  pool.release(b);
}

TEST(BufferPoolTest, HighWaterTracksPeakUsage) {
  BufferPool pool(16, 4);
  auto* a = pool.try_acquire();
  auto* b = pool.try_acquire();
  auto* c = pool.try_acquire();
  pool.release(b);
  pool.release(a);
  EXPECT_EQ(pool.high_water(), 3u);
  pool.release(c);
  EXPECT_EQ(pool.high_water(), 3u);
}

}  // namespace
}  // namespace splap
