// MPL rcvncall (interrupt receive-and-call) and lockrnc — the machinery the
// original Global Arrays implementation was built on (Section 5.2).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mpl/comm.hpp"

namespace splap::mpl {
namespace {

net::Machine::Config machine_config(int tasks) {
  net::Machine::Config c;
  c.tasks = tasks;
  return c;
}

std::span<const std::byte> bytes_of(const void* p, std::size_t n) {
  return {static_cast<const std::byte*>(p), n};
}

TEST(MplRcvncallTest, HandlerInvokedWithMessage) {
  net::Machine m(machine_config(2));
  int handler_src = -1;
  std::int64_t handler_len = -1;
  std::byte first{};
  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    Comm comm(n);
    comm.rcvncall(42, [&](Comm&, const RcvncallDelivery& d) {
      handler_src = d.source;
      handler_len = static_cast<std::int64_t>(d.data.size());
      first = d.data[0];
    });
    comm.barrier();
    if (comm.rank() == 0) {
      std::vector<std::byte> data(100, std::byte{0x66});
      ASSERT_EQ(comm.send(1, 42, data), Status::kOk);
    }
    comm.barrier();
    comm.barrier();  // give the interrupt-level handler time to run
  }), Status::kOk);
  EXPECT_EQ(handler_src, 0);
  EXPECT_EQ(handler_len, 100);
  EXPECT_EQ(first, std::byte{0x66});
}

TEST(MplRcvncallTest, HandlerCanReplyLikeOldGaGet) {
  // The old GA get: request message interrupts the target, the handler
  // copies the data into a message buffer and sends it back (Section 5.2).
  net::Machine m(machine_config(2));
  std::vector<double> remote(16);
  for (int i = 0; i < 16; ++i) remote[static_cast<std::size_t>(i)] = i * 1.5;
  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    Comm comm(n);
    comm.rcvncall(7, [&](Comm& c, const RcvncallDelivery& d) {
      // Request carries the element range; reply with the data.
      int lo = 0, cnt = 0;
      std::memcpy(&lo, d.data.data(), 4);
      std::memcpy(&cnt, d.data.data() + 4, 4);
      c.handler_charge(c.cost().copy_time(cnt * 8));
      (void)c.isend(d.source, 8,
                    bytes_of(remote.data() + lo,
                             static_cast<std::size_t>(cnt) * 8));
    });
    comm.barrier();
    if (comm.rank() == 0) {
      const int req[2] = {4, 8};
      ASSERT_EQ(comm.send(1, 7, bytes_of(req, 8)), Status::kOk);
      std::vector<double> got(8);
      ASSERT_EQ(comm.recv(1, 8,
                          std::span<std::byte>(
                              reinterpret_cast<std::byte*>(got.data()), 64)),
                Status::kOk);
      for (int i = 0; i < 8; ++i) {
        EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(i)], (4 + i) * 1.5);
      }
    }
    comm.barrier();
  }), Status::kOk);
}

TEST(MplRcvncallTest, RendezvousSizedRequestsAlsoReachHandler) {
  net::Machine m(machine_config(2));
  std::int64_t got_len = 0;
  std::byte last{};
  const std::int64_t kLen = 60 * 1000;  // above eager limit -> RTS path
  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    Comm comm(n);
    comm.rcvncall(3, [&](Comm&, const RcvncallDelivery& d) {
      got_len = static_cast<std::int64_t>(d.data.size());
      last = d.data[d.data.size() - 1];
    });
    comm.barrier();
    if (comm.rank() == 0) {
      std::vector<std::byte> data(static_cast<std::size_t>(kLen),
                                  std::byte{0x5E});
      ASSERT_EQ(comm.send(1, 3, data), Status::kOk);
    }
    comm.barrier();
    comm.barrier();
  }), Status::kOk);
  EXPECT_EQ(got_len, kLen);
  EXPECT_EQ(last, std::byte{0x5E});
}

TEST(MplRcvncallTest, LockrncDefersHandlers) {
  // lockrnc/unlockrnc: with interrupts disabled, arriving messages must not
  // run their handlers until the unlock (the old GA accumulate atomicity).
  net::Machine m(machine_config(2));
  int ran = 0;
  bool ran_during_lock = false;
  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    Comm comm(n);
    comm.rcvncall(4, [&](Comm&, const RcvncallDelivery&) { ++ran; });
    comm.barrier();
    if (comm.rank() == 0) {
      std::vector<std::byte> data(32, std::byte{1});
      for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(comm.send(1, 4, data), Status::kOk);
      }
      comm.barrier();
    } else {
      comm.lock_interrupts();
      // All three messages arrive while locked.
      comm.node().task().compute(milliseconds(2.0));
      if (ran != 0) ran_during_lock = true;
      comm.unlock_interrupts();
      comm.node().task().compute(milliseconds(1.0));
      EXPECT_EQ(ran, 3);
      comm.barrier();
    }
    comm.barrier();
  }), Status::kOk);
  EXPECT_FALSE(ran_during_lock);
  EXPECT_EQ(ran, 3);
}

TEST(MplRcvncallTest, InterruptAndContextCostsCharged) {
  // The rcvncall path must be expensive: interrupt + AIX handler context
  // (Table 2's 200us MPL round trip depends on it).
  net::Machine m(machine_config(2));
  Time req_sent = kNoTime, reply_received = kNoTime;
  std::byte token{1};
  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    Comm comm(n);
    comm.rcvncall(1, [&](Comm& c, const RcvncallDelivery& d) {
      (void)c.isend(d.source, 2, bytes_of(&token, 1));
    });
    comm.barrier();
    if (comm.rank() == 0) {
      req_sent = comm.engine().now();
      ASSERT_EQ(comm.send(1, 1, bytes_of(&token, 1)), Status::kOk);
      std::byte in{};
      ASSERT_EQ(comm.recv(1, 2, std::span<std::byte>(&in, 1)), Status::kOk);
      reply_received = comm.engine().now();
    }
    comm.barrier();
  }), Status::kOk);
  const double rt_us = to_us(reply_received - req_sent);
  // One interrupt-level delivery leg (~97us) plus a normal reply leg (~43us).
  EXPECT_GE(rt_us, 120.0);
  EXPECT_LE(rt_us, 180.0);
}

}  // namespace
}  // namespace splap::mpl
