// Collectives of the MPL baseline (barrier, bcast, allreduce) across varied
// task counts, including non-powers of two.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mpl/comm.hpp"

namespace splap::mpl {
namespace {

net::Machine::Config machine_config(int tasks) {
  net::Machine::Config c;
  c.tasks = tasks;
  return c;
}

class MplCollectivesTest : public ::testing::TestWithParam<int> {};

TEST_P(MplCollectivesTest, BarrierSynchronizes) {
  const int n = GetParam();
  net::Machine m(machine_config(n));
  std::vector<Time> entered(static_cast<std::size_t>(n));
  std::vector<Time> left(static_cast<std::size_t>(n));
  ASSERT_EQ(m.run_spmd([&](net::Node& node) {
    Comm comm(node);
    node.task().compute(microseconds(37 * (node.id() + 1)));
    entered[static_cast<std::size_t>(node.id())] = comm.engine().now();
    comm.barrier();
    left[static_cast<std::size_t>(node.id())] = comm.engine().now();
    comm.barrier();
  }), Status::kOk);
  const Time last_entry = *std::max_element(entered.begin(), entered.end());
  for (int i = 0; i < n; ++i) {
    EXPECT_GE(left[static_cast<std::size_t>(i)], last_entry);
  }
}

TEST_P(MplCollectivesTest, BcastFromEveryRoot) {
  const int n = GetParam();
  for (int root = 0; root < n; ++root) {
    net::Machine m(machine_config(n));
    std::vector<std::vector<int>> results(
        static_cast<std::size_t>(n), std::vector<int>(4, -1));
    ASSERT_EQ(m.run_spmd([&](net::Node& node) {
      Comm comm(node);
      auto& mine = results[static_cast<std::size_t>(node.id())];
      if (node.id() == root) {
        for (int i = 0; i < 4; ++i) mine[static_cast<std::size_t>(i)] = root * 10 + i;
      }
      comm.bcast(std::span<std::byte>(
                     reinterpret_cast<std::byte*>(mine.data()), 16),
                 root);
      comm.barrier();
    }), Status::kOk);
    for (int t = 0; t < n; ++t) {
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(results[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)],
                  root * 10 + i)
            << "n=" << n << " root=" << root << " task=" << t;
      }
    }
  }
}

TEST_P(MplCollectivesTest, AllreduceSumsAcrossTasks) {
  const int n = GetParam();
  net::Machine m(machine_config(n));
  std::vector<std::vector<double>> data(
      static_cast<std::size_t>(n), std::vector<double>(8));
  ASSERT_EQ(m.run_spmd([&](net::Node& node) {
    Comm comm(node);
    auto& mine = data[static_cast<std::size_t>(node.id())];
    for (int i = 0; i < 8; ++i) {
      mine[static_cast<std::size_t>(i)] = node.id() + i * 0.5;
    }
    comm.allreduce_sum(mine);
    comm.barrier();
  }), Status::kOk);
  const double rank_sum = n * (n - 1) / 2.0;
  for (int t = 0; t < n; ++t) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_DOUBLE_EQ(
          data[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)],
          rank_sum + n * i * 0.5)
          << "n=" << n << " task=" << t << " elem=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TaskCounts, MplCollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace splap::mpl
