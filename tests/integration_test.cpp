// Cross-module integration tests:
//  - LAPI and MPI/MPL coexisting in one application on the same adapter
//    (the paper: "IBM offers the use of both MPI and LAPI in the same
//    application"),
//  - the full GA stack running over a lossy fabric (reliability end to end
//    through every layer),
//  - larger-scale runs (16 tasks) of the collective and atomic machinery.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "ga/runtime.hpp"
#include "lapi/context.hpp"
#include "mpl/comm.hpp"

namespace splap {
namespace {

net::Machine::Config machine_config(int tasks) {
  net::Machine::Config c;
  c.tasks = tasks;
  return c;
}

TEST(IntegrationTest, LapiAndMpiCoexistInOneApplication) {
  // Each task opens BOTH libraries; the halves of the program use whichever
  // paradigm fits (one-sided for the irregular update, send/recv for the
  // regular exchange) and the packets demultiplex by adapter client.
  net::Machine m(machine_config(4));
  std::vector<std::int64_t> lapi_cells(4, 0);
  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    lapi::Context ctx(n);
    mpl::Comm comm(n);
    const int me = n.id();
    // One-sided half: everyone rmw-increments a cell on task 0.
    std::vector<void*> tab(4);
    ctx.address_init(lapi_cells.data(), tab);
    (void)ctx.rmw_sync(lapi::RmwOp::kFetchAndAdd, 0,
                       static_cast<std::int64_t*>(tab[0]), 1);
    // Two-sided half: a ring exchange over MPI.
    const int right = (me + 1) % 4, left = (me + 3) % 4;
    const int out = me * 7;
    int in = -1;
    const mpl::Request r = comm.irecv(
        left, 9, std::span<std::byte>(reinterpret_cast<std::byte*>(&in), 4));
    ASSERT_EQ(comm.send(right, 9,
                        std::span<const std::byte>(
                            reinterpret_cast<const std::byte*>(&out), 4)),
              Status::kOk);
    comm.wait(r);
    EXPECT_EQ(in, left * 7);
    // Quiesce both libraries.
    EXPECT_EQ(ctx.gfence(), Status::kOk);
    comm.barrier();
  }), Status::kOk);
  EXPECT_EQ(lapi_cells[0], 4);
}

TEST(IntegrationTest, InterleavedTrafficKeepsClientsSeparate) {
  // Heavy concurrent traffic on both protocols between the same node pair;
  // each library's bytes must arrive intact (adapter demux under load).
  net::Machine m(machine_config(2));
  const std::int64_t kLen = 30000;
  std::vector<std::byte> lapi_dst(static_cast<std::size_t>(kLen));
  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    lapi::Context ctx(n);
    mpl::Comm comm(n);
    if (n.id() == 0) {
      std::vector<std::byte> a(static_cast<std::size_t>(kLen)),
          b(static_cast<std::size_t>(kLen));
      for (std::int64_t i = 0; i < kLen; ++i) {
        a[static_cast<std::size_t>(i)] = static_cast<std::byte>(i % 251);
        b[static_cast<std::size_t>(i)] = static_cast<std::byte>(i % 127);
      }
      lapi::Counter cmpl;
      ASSERT_EQ(ctx.put(1, a, lapi_dst.data(), nullptr, nullptr, &cmpl),
                Status::kOk);
      ASSERT_EQ(comm.send(1, 3, b), Status::kOk);  // interleaves on the wire
      EXPECT_EQ(ctx.waitcntr(cmpl, 1), Status::kOk);
    } else {
      std::vector<std::byte> got(static_cast<std::size_t>(kLen));
      ASSERT_EQ(comm.recv(0, 3, got), Status::kOk);
      for (std::int64_t i = 0; i < kLen; ++i) {
        ASSERT_EQ(got[static_cast<std::size_t>(i)],
                  static_cast<std::byte>(i % 127));
      }
    }
    EXPECT_EQ(ctx.gfence(), Status::kOk);
    comm.barrier();
  }), Status::kOk);
  for (std::int64_t i = 0; i < kLen; ++i) {
    ASSERT_EQ(lapi_dst[static_cast<std::size_t>(i)],
              static_cast<std::byte>(i % 251));
  }
}

class GaLossyTest : public ::testing::TestWithParam<ga::Transport> {};

TEST_P(GaLossyTest, FullGaStackSurvivesPacketLoss) {
  // Drop injection exercises the reliability layers underneath GA end to
  // end: LAPI retransmission or MPL retransmission, duplicate suppression,
  // and the exactly-once semantics of accumulate.
  auto mc = machine_config(4);
  mc.fabric.drop_rate = 0.05;
  mc.fabric.seed = 97;
  net::Machine m(mc);
  ga::Config cfg;
  cfg.transport = GetParam();
  cfg.lapi.retransmit_timeout = microseconds(400);
  cfg.lapi.max_retries = 20;
  std::vector<double> sums;
  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    ga::Runtime rt(n, cfg);
    ga::GlobalArray a = rt.create(40, 40);
    rt.sync();
    std::vector<double> v(1600, 1.0);
    for (int r = 0; r < 3; ++r) {
      a.acc(ga::Patch{0, 39, 0, 39}, v.data(), 40, 1.0);
    }
    rt.sync();
    if (rt.me() == 0) {
      std::vector<double> all(1600);
      a.get(ga::Patch{0, 39, 0, 39}, all.data(), 40);
      sums.push_back(std::accumulate(all.begin(), all.end(), 0.0));
    }
    rt.sync();
    rt.destroy(a);
  }), Status::kOk);
  ASSERT_EQ(sums.size(), 1u);
  EXPECT_DOUBLE_EQ(sums[0], 4 * 3 * 1600.0);  // exactly once, despite drops
  EXPECT_GT(m.fabric().packets_dropped(), 0);
}

INSTANTIATE_TEST_SUITE_P(Transports, GaLossyTest,
                         ::testing::Values(ga::Transport::kLapi,
                                           ga::Transport::kMpl),
                         [](const ::testing::TestParamInfo<ga::Transport>& i) {
                           return i.param == ga::Transport::kLapi ? "Lapi"
                                                                  : "Mpl";
                         });

TEST(IntegrationTest, SixteenTaskGfenceAndRmwScale) {
  net::Machine m(machine_config(16));
  std::int64_t counter = 0;
  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    lapi::Context ctx(n);
    std::vector<void*> tab(16);
    ctx.address_init(&counter, tab);
    for (int round = 0; round < 3; ++round) {
      (void)ctx.rmw_sync(lapi::RmwOp::kFetchAndAdd, 0,
                         static_cast<std::int64_t*>(tab[0]), 1);
      EXPECT_EQ(ctx.gfence(), Status::kOk);
    }
    EXPECT_EQ(ctx.gfence(), Status::kOk);
  }), Status::kOk);
  EXPECT_EQ(counter, 16 * 3);
}

TEST(IntegrationTest, SixteenTaskGaWorkload) {
  net::Machine m(machine_config(16));
  std::vector<double> readback;
  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    ga::Runtime rt(n);
    ga::GlobalArray a = rt.create(64, 64);
    rt.sync();
    // Everyone writes its own block, accumulates into the neighbour's.
    const ga::Patch blk = a.my_block();
    std::vector<double> v(static_cast<std::size_t>(blk.elems()), 1.0);
    a.put(blk, v.data(), blk.rows());
    rt.sync();
    const ga::Patch nb = a.block_of((rt.me() + 1) % 16);
    std::vector<double> w(static_cast<std::size_t>(nb.elems()), 2.0);
    a.acc(nb, w.data(), nb.rows(), 1.0);
    rt.sync();
    if (rt.me() == 0) {
      std::vector<double> all(64 * 64);
      a.get(ga::Patch{0, 63, 0, 63}, all.data(), 64);
      readback = all;
    }
    rt.sync();
    rt.destroy(a);
  }), Status::kOk);
  ASSERT_EQ(readback.size(), 64u * 64u);
  for (const double x : readback) {
    ASSERT_DOUBLE_EQ(x, 3.0);  // 1.0 put by owner + 2.0 accumulated
  }
}

TEST(IntegrationTest, VirtualTimeIsDeterministicAcrossRuns) {
  auto run_once = [] {
    net::Machine m(machine_config(4));
    (void)m.run_spmd([&](net::Node& n) {
      ga::Runtime rt(n);
      ga::GlobalArray a = rt.create(32, 32);
      rt.sync();
      // The accumulated patch is the whole 32x32 array, so the source
      // buffer must cover all of it, not just this task's block.
      std::vector<double> v(32u * 32u, 1.0);
      a.acc(ga::Patch{0, 31, 0, 31}, v.data(), 32, 1.0);
      rt.sync();
      rt.destroy(a);
    });
    return std::pair<Time, std::int64_t>{m.engine().now(),
                                         m.fabric().packets_sent()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);    // identical virtual end time
  EXPECT_EQ(a.second, b.second);  // identical packet count
}

}  // namespace
}  // namespace splap
