// Interrupt vs polling modes (Section 2.1): interrupt mode makes progress
// with no target-side calls; polling mode makes progress only inside LAPI
// calls — "in the absence of appropriate polling, the performance may
// substantially degrade or may even result in deadlock".
#include <gtest/gtest.h>

#include <vector>

#include "lapi_test_util.hpp"

namespace splap::lapi {
namespace {

using testing::machine_config;
using testing::run_lapi;

Config polling_config() {
  Config c;
  c.interrupt_mode = false;
  return c;
}

TEST(LapiModesTest, InterruptModeProgressesWithoutTargetCalls) {
  net::Machine m(machine_config(2));
  std::vector<std::byte> tgt(64);
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    if (ctx.task_id() == 0) {
      std::vector<std::byte> src(64, std::byte{0xA5});
      Counter cmpl;
      ASSERT_EQ(ctx.put(1, src, tgt.data(), nullptr, nullptr, &cmpl),
                Status::kOk);
      EXPECT_EQ(ctx.waitcntr(cmpl, 1), Status::kOk);
      EXPECT_EQ(tgt[0], std::byte{0xA5});
    } else {
      // Pure computation, never calls into LAPI while the put lands.
      ctx.node().task().compute(milliseconds(2.0));
    }
  }), Status::kOk);
}

TEST(LapiModesTest, PollingModeStallsUntilTargetPolls) {
  net::Machine m(machine_config(2));
  std::vector<std::byte> tgt(64);
  Time cmpl_at = kNoTime;
  const Time kBusy = milliseconds(3.0);
  ASSERT_EQ(run_lapi(m, polling_config(), [&](Context& ctx) {
    if (ctx.task_id() == 0) {
      std::vector<std::byte> src(64, std::byte{1});
      Counter cmpl;
      ASSERT_EQ(ctx.put(1, src, tgt.data(), nullptr, nullptr, &cmpl),
                Status::kOk);
      EXPECT_EQ(ctx.waitcntr(cmpl, 1), Status::kOk);
      cmpl_at = ctx.engine().now();
    } else {
      // Target computes for a long time before its first poll; the put
      // cannot complete earlier.
      ctx.node().task().compute(kBusy);
      Counter dummy;
      ctx.setcntr(dummy, 1);
      EXPECT_EQ(ctx.waitcntr(dummy, 1), Status::kOk);  // entering the library drains the backlog
    }
  }), Status::kOk);
  ASSERT_NE(cmpl_at, kNoTime);
  EXPECT_GE(cmpl_at, kBusy);
  EXPECT_GT(m.engine().counters().get("lapi.backlogged"), 0);
}

TEST(LapiModesTest, PollingWithoutPollingFailsTheOperation) {
  // The paper's warning, reproduced: the target never polls, so the put can
  // never be delivered. The retransmit layer exhausts its retries, the
  // crash-stop detector declares the silent peer dead, and the failure
  // surfaces through the completion counter as kPeerFailed — the origin's
  // wait is released instead of hanging forever.
  net::Machine m(machine_config(2));
  std::vector<std::byte> tgt(64);
  Status wait_st = Status::kOk;
  EXPECT_EQ(m.run_spmd([&](net::Node& n) {
    Config cfg = polling_config();
    cfg.retransmit_timeout = microseconds(200);  // fail fast
    cfg.max_retries = 4;
    Context ctx(n, cfg);
    if (n.id() == 0) {
      std::vector<std::byte> src(64, std::byte{1});
      Counter cmpl;
      ASSERT_EQ(ctx.put(1, src, tgt.data(), nullptr, nullptr, &cmpl),
                Status::kOk);
      wait_st = ctx.waitcntr(cmpl, 1);  // released by retry exhaustion
      EXPECT_EQ(ctx.pending_sends(), 0u);
      EXPECT_EQ(ctx.outstanding(), 0);
    }
    // Target returns immediately without any LAPI call; its context is
    // destroyed and the origin's stragglers are absorbed by the retired
    // adapter slot.
  }), Status::kOk);
  EXPECT_EQ(wait_st, Status::kPeerFailed);
  EXPECT_EQ(tgt[0], std::byte{0});  // the data never landed
  EXPECT_GT(m.engine().counters().get("lapi.retransmit_giveup"), 0);
  EXPECT_GT(m.engine().counters().get("lapi.failed_ops"), 0);
  EXPECT_GT(m.engine().counters().get("lapi.peer_failed"), 0);
}

TEST(LapiModesTest, BlockedWaitsPollEvenInInterruptMode) {
  // A task blocked in Waitcntr polls the adapter: the same ping-pong costs
  // the SAME in both modes, because neither side is off in user code when
  // a packet lands. (The Table 2 interrupt number needs handler-driven
  // echoes — see the calibration test.)
  auto ping_pong = [](bool interrupts) {
    net::Machine m(machine_config(2));
    Config cfg;
    cfg.interrupt_mode = interrupts;
    std::byte ping_cell{}, pong_cell{};
    Counter ping_cntr, pong_cntr;
    Time rt = 0;
    EXPECT_EQ(run_lapi(m, cfg, [&](Context& ctx) {
      std::vector<void*> ping_tab(2), pong_tab(2);
      ctx.address_init(&ping_cntr, ping_tab);
      ctx.address_init(&pong_cntr, pong_tab);
      std::byte b{7};
      if (ctx.task_id() == 0) {
        const Time t0 = ctx.engine().now();
        ASSERT_EQ(ctx.put(1, testing::as_bytes_of(&b, 1), &ping_cell,
                          static_cast<Counter*>(ping_tab[1]), nullptr,
                          nullptr),
                  Status::kOk);
        EXPECT_EQ(ctx.waitcntr(pong_cntr, 1), Status::kOk);
        rt = ctx.engine().now() - t0;
      } else {
        EXPECT_EQ(ctx.waitcntr(ping_cntr, 1), Status::kOk);
        ASSERT_EQ(ctx.put(0, testing::as_bytes_of(&b, 1), &pong_cell,
                          static_cast<Counter*>(pong_tab[0]), nullptr,
                          nullptr),
                  Status::kOk);
      }
    }), Status::kOk);
    return rt;
  };
  const Time polling = ping_pong(false);
  const Time interrupt = ping_pong(true);
  EXPECT_EQ(interrupt, polling);
  // And no interrupts were taken on the blocked-wait path.
}

TEST(LapiModesTest, InterruptChargedOnlyOutsideTheLibrary) {
  // The same one-way put costs one extra interrupt when the target is off
  // computing instead of blocked in Waitcntr.
  auto one_way = [](bool target_computes) {
    net::Machine m(machine_config(2));
    Counter tgt;
    Time landed = kNoTime, sent = kNoTime;
    bool flag = false;
    EXPECT_EQ(run_lapi(m, [&](Context& ctx) {
      std::vector<void*> tab(2);
      ctx.address_init(&tgt, tab);
      const AmHandlerId h = ctx.register_handler(
          [&](Context&, const AmDelivery&) -> AmReply {
            flag = true;
            return {};
          });
      if (ctx.task_id() == 0) {
        ctx.node().task().compute(microseconds(40));
        sent = ctx.engine().now();
        EXPECT_EQ(ctx.amsend(1, h, {}, {},
                             static_cast<Counter*>(tab[1]), nullptr, nullptr),
                  Status::kOk);
      } else if (target_computes) {
        // Poll the counter from user code: arrival pays the interrupt.
        for (;;) {
          ctx.node().task().compute(nanoseconds(500));
          if (ctx.getcntr(tgt) > 0) break;
        }
        landed = ctx.engine().now();
      } else {
        EXPECT_EQ(ctx.waitcntr(tgt, 1), Status::kOk);
        landed = ctx.engine().now();
      }
      (void)flag;
    }), Status::kOk);
    return landed - sent;
  };
  const Time polling_like = one_way(false);
  const Time interrupting = one_way(true);
  const CostModel cm;
  EXPECT_GT(interrupting, polling_like);
  EXPECT_LT(interrupting - polling_like, 2 * cm.interrupt_cost);
}

TEST(LapiModesTest, SenvSwitchesModeAndDrainsBacklog) {
  net::Machine m(machine_config(2));
  std::vector<std::byte> tgt(8);
  ASSERT_EQ(run_lapi(m, polling_config(), [&](Context& ctx) {
    if (ctx.task_id() == 0) {
      std::vector<std::byte> src(8, std::byte{0x77});
      Counter cmpl;
      ASSERT_EQ(ctx.put(1, src, tgt.data(), nullptr, nullptr, &cmpl),
                Status::kOk);
      EXPECT_EQ(ctx.waitcntr(cmpl, 1), Status::kOk);
    } else {
      EXPECT_EQ(ctx.qenv(Query::kInterruptSet), 0);
      // Let packets pile up unpolled, then arm interrupts: the backlog must
      // drain without any further LAPI activity.
      ctx.node().task().compute(milliseconds(1.0));
      ctx.senv(Setting::kInterruptSet, 1);
      EXPECT_EQ(ctx.qenv(Query::kInterruptSet), 1);
      ctx.node().task().compute(milliseconds(1.0));
      EXPECT_EQ(tgt[0], std::byte{0x77});
    }
  }), Status::kOk);
}

TEST(LapiModesTest, BackToBackPacketsAbsorbOneInterrupt) {
  // Section 5.3.1: pipelined messages arriving while the dispatcher is busy
  // do not take fresh interrupts.
  net::Machine m(machine_config(2));
  std::vector<std::byte> tgt(100 * 1000);
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    if (ctx.task_id() == 0) {
      std::vector<std::byte> src(100 * 1000, std::byte{1});
      Counter cmpl;
      ASSERT_EQ(ctx.put(1, src, tgt.data(), nullptr, nullptr, &cmpl),
                Status::kOk);
      EXPECT_EQ(ctx.waitcntr(cmpl, 1), Status::kOk);
    } else {
      ctx.node().task().compute(milliseconds(5.0));
    }
  }), Status::kOk);
  const auto interrupts = m.engine().counters().get("lapi.interrupts");
  const auto packets = m.fabric().packets_sent();
  EXPECT_GT(packets, 100);          // ~103 data packets
  EXPECT_LT(interrupts, packets / 4)  // vastly fewer interrupts than packets
      << "interrupt absorption failed";
}

TEST(LapiModesTest, GetWorksAgainstComputingTargetInInterruptMode) {
  net::Machine m(machine_config(2));
  std::vector<std::int64_t> remote(4, 55);
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    if (ctx.task_id() == 0) {
      std::vector<std::int64_t> local(4, 0);
      Counter org;
      ASSERT_EQ(ctx.get(1, 32,
                        reinterpret_cast<const std::byte*>(remote.data()),
                        reinterpret_cast<std::byte*>(local.data()), nullptr,
                        &org),
                Status::kOk);
      EXPECT_EQ(ctx.waitcntr(org, 1), Status::kOk);
      EXPECT_EQ(local[3], 55);
    } else {
      ctx.node().task().compute(milliseconds(1.0));
    }
  }), Status::kOk);
}

}  // namespace
}  // namespace splap::lapi
