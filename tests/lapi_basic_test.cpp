// Semantics of the basic LAPI operations: init/term, environment queries,
// put/get data movement, the three-counter completion protocol, and
// address exchange.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "lapi_test_util.hpp"

namespace splap::lapi {
namespace {

using testing::exchange_ptrs;
using testing::machine_config;
using testing::run_lapi;

TEST(LapiBasicTest, InitTermLifecycle) {
  net::Machine m(machine_config(2));
  ASSERT_EQ(m.run_spmd([](net::Node& n) {
    Context ctx(n);
    EXPECT_EQ(ctx.task_id(), n.id());
    EXPECT_EQ(ctx.num_tasks(), 2);
    EXPECT_EQ(ctx.gfence(), Status::kOk);
    ctx.term();
    // Calls after term report a bad handle.
    Counter c;
    EXPECT_EQ(ctx.put(0, {}, nullptr, nullptr, &c, nullptr),
              Status::kBadHandle);
  }), Status::kOk);
}

TEST(LapiBasicTest, QenvReportsEnvironment) {
  net::Machine m(machine_config(3));
  ASSERT_EQ(run_lapi(m, [](Context& ctx) {
    EXPECT_EQ(ctx.qenv(Query::kNumTasks), 3);
    EXPECT_EQ(ctx.qenv(Query::kTaskId), ctx.task_id());
    // The ~900-byte AM payload the paper's Section 5.3.1 quotes: packet
    // size minus the 48-byte LAPI header.
    EXPECT_EQ(ctx.qenv(Query::kPktPayload), 1024 - 48);
    EXPECT_EQ(ctx.qenv(Query::kMaxUhdrSz), 976);
    EXPECT_GE(ctx.qenv(Query::kMaxDataSz), std::int64_t{1} << 30);
    EXPECT_EQ(ctx.qenv(Query::kInterruptSet), 1);
    EXPECT_EQ(ctx.qenv(Query::kCmplThreads), 1);
  }), Status::kOk);
}

TEST(LapiBasicTest, PutMovesBytesAndFiresAllThreeCounters) {
  net::Machine m(machine_config(2));
  std::vector<double> tgt_buf(64, 0.0);
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    auto bufs = exchange_ptrs(ctx, tgt_buf.data());  // task1's view unused
    if (ctx.task_id() == 0) {
      std::vector<double> src(64);
      std::iota(src.begin(), src.end(), 1.0);
      Counter org, cmpl;
      Counter* remote_tgt = nullptr;  // counter lives at the target below
      ASSERT_EQ(ctx.put(1, testing::as_bytes_of(src.data(), 64 * sizeof(double)),
                        reinterpret_cast<std::byte*>(tgt_buf.data()),
                        remote_tgt, &org, &cmpl),
                Status::kOk);
      EXPECT_EQ(ctx.waitcntr(org, 1), Status::kOk);  // source reusable
      EXPECT_EQ(ctx.waitcntr(cmpl, 1), Status::kOk);  // confirmed complete at the target
      (void)bufs;
    }
  }), Status::kOk);
  for (int i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(tgt_buf[static_cast<std::size_t>(i)], i + 1.0);
  }
}

TEST(LapiBasicTest, PutTargetCounterObservedByTarget) {
  net::Machine m(machine_config(2));
  std::vector<std::byte> tgt_buf(128);
  Counter tgt_cntr;  // lives at task 1 conceptually; exchanged via table
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    auto cntrs = exchange_ptrs(ctx, &tgt_cntr);
    if (ctx.task_id() == 0) {
      std::vector<std::byte> src(128, std::byte{0x5A});
      Counter org;
      ASSERT_EQ(ctx.put(1, src, tgt_buf.data(), cntrs[1], &org, nullptr),
                Status::kOk);
      EXPECT_EQ(ctx.waitcntr(org, 1), Status::kOk);
    } else {
      // The unilateral arrival indication at the target (Section 2.3).
      EXPECT_EQ(ctx.waitcntr(tgt_cntr, 1), Status::kOk);
      EXPECT_EQ(tgt_buf[0], std::byte{0x5A});
      EXPECT_EQ(tgt_buf[127], std::byte{0x5A});
    }
  }), Status::kOk);
}

TEST(LapiBasicTest, GetPullsRemoteData) {
  net::Machine m(machine_config(2));
  std::vector<std::int64_t> remote(32);
  std::iota(remote.begin(), remote.end(), 100);
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    if (ctx.task_id() == 0) {
      std::vector<std::int64_t> local(32, 0);
      Counter org;
      ASSERT_EQ(ctx.get(1, 32 * static_cast<std::int64_t>(sizeof(std::int64_t)),
                        reinterpret_cast<const std::byte*>(remote.data()),
                        reinterpret_cast<std::byte*>(local.data()), nullptr,
                        &org),
                Status::kOk);
      EXPECT_EQ(ctx.waitcntr(org, 1), Status::kOk);
      for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(local[static_cast<std::size_t>(i)], 100 + i);
      }
    }
  }), Status::kOk);
}

TEST(LapiBasicTest, GetTargetCounterFiresAtTarget) {
  net::Machine m(machine_config(2));
  std::vector<std::byte> remote(16, std::byte{7});
  Counter tgt;
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    auto cntrs = exchange_ptrs(ctx, &tgt);
    if (ctx.task_id() == 0) {
      std::vector<std::byte> local(16);
      Counter org;
      ASSERT_EQ(ctx.get(1, 16, remote.data(), local.data(), cntrs[1], &org),
                Status::kOk);
      EXPECT_EQ(ctx.waitcntr(org, 1), Status::kOk);
    } else {
      // "Data copied out of the target buffer" indication (Section 2.3).
      EXPECT_EQ(ctx.waitcntr(tgt, 1), Status::kOk);
    }
  }), Status::kOk);
}

TEST(LapiBasicTest, LargeTransfersSpanManyPackets) {
  net::Machine m(machine_config(2));
  const std::int64_t kLen = 200 * 1000 + 13;  // forces >200 packets, odd tail
  std::vector<std::byte> tgt_buf(static_cast<std::size_t>(kLen));
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    if (ctx.task_id() == 0) {
      std::vector<std::byte> src(static_cast<std::size_t>(kLen));
      for (std::int64_t i = 0; i < kLen; ++i) {
        src[static_cast<std::size_t>(i)] = static_cast<std::byte>(i * 31 % 251);
      }
      Counter cmpl;
      ASSERT_EQ(ctx.put(1, src, tgt_buf.data(), nullptr, nullptr, &cmpl),
                Status::kOk);
      EXPECT_EQ(ctx.waitcntr(cmpl, 1), Status::kOk);
    }
  }), Status::kOk);
  for (std::int64_t i = 0; i < kLen; ++i) {
    ASSERT_EQ(tgt_buf[static_cast<std::size_t>(i)],
              static_cast<std::byte>(i * 31 % 251))
        << "at offset " << i;
  }
  EXPECT_GT(m.fabric().packets_sent(), 200);
}

TEST(LapiBasicTest, ZeroLengthPutStillSignalsCounters) {
  net::Machine m(machine_config(2));
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    if (ctx.task_id() == 0) {
      Counter org, cmpl;
      ASSERT_EQ(ctx.put(1, {}, nullptr, nullptr, &org, &cmpl), Status::kOk);
      EXPECT_EQ(ctx.waitcntr(org, 1), Status::kOk);
      EXPECT_EQ(ctx.waitcntr(cmpl, 1), Status::kOk);
    }
  }), Status::kOk);
}

TEST(LapiBasicTest, SharedCounterGroupsManyOperations) {
  net::Machine m(machine_config(4));
  std::vector<std::vector<std::byte>> bufs(4, std::vector<std::byte>(64));
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    if (ctx.task_id() == 0) {
      std::vector<std::byte> src(64, std::byte{0xCC});
      Counter group;  // one counter across several messages (Section 2.3)
      for (int t = 1; t < 4; ++t) {
        ASSERT_EQ(ctx.put(t, src, bufs[static_cast<std::size_t>(t)].data(),
                          nullptr, nullptr, &group),
                  Status::kOk);
      }
      EXPECT_EQ(ctx.waitcntr(group, 3), Status::kOk);  // wait for the whole group
    }
  }), Status::kOk);
  for (int t = 1; t < 4; ++t) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(t)][63], std::byte{0xCC});
  }
}

TEST(LapiBasicTest, WaitcntrAutoDecrements) {
  net::Machine m(machine_config(1));
  ASSERT_EQ(run_lapi(m, [](Context& ctx) {
    Counter c;
    ctx.setcntr(c, 5);
    EXPECT_EQ(ctx.waitcntr(c, 3), Status::kOk);
    EXPECT_EQ(ctx.getcntr(c), 2);  // decremented by the waited value
    EXPECT_EQ(ctx.waitcntr(c, 2), Status::kOk);
    EXPECT_EQ(ctx.getcntr(c), 0);
  }), Status::kOk);
}

TEST(LapiBasicTest, PutToSelfLoopsBack) {
  net::Machine m(machine_config(1));
  std::vector<std::byte> buf(32);
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    std::vector<std::byte> src(32, std::byte{9});
    Counter cmpl;
    ASSERT_EQ(ctx.put(0, src, buf.data(), nullptr, nullptr, &cmpl),
              Status::kOk);
    EXPECT_EQ(ctx.waitcntr(cmpl, 1), Status::kOk);
    EXPECT_EQ(buf[31], std::byte{9});
  }), Status::kOk);
}

TEST(LapiBasicTest, BadParametersRejected) {
  net::Machine m(machine_config(2));
  ASSERT_EQ(run_lapi(m, [](Context& ctx) {
    Counter c;
    std::byte buf[8];
    // Target out of range.
    EXPECT_EQ(ctx.put(7, testing::as_bytes_of(buf, 8), buf, nullptr, &c, nullptr),
              Status::kBadParameter);
    EXPECT_EQ(ctx.get(-1, 8, buf, buf, nullptr, &c), Status::kBadParameter);
    // Null addresses with nonzero length.
    EXPECT_EQ(ctx.get(1, 8, nullptr, buf, nullptr, &c), Status::kBadParameter);
    EXPECT_EQ(ctx.put(1, testing::as_bytes_of(buf, 8), nullptr, nullptr, &c,
                      nullptr),
              Status::kBadParameter);
    // Negative get length.
    EXPECT_EQ(ctx.get(1, -4, buf, buf, nullptr, &c), Status::kBadParameter);
    // Unregistered AM handler.
    EXPECT_EQ(ctx.amsend(1, 42, {}, {}, nullptr, nullptr, nullptr),
              Status::kBadParameter);
  }), Status::kOk);
}

TEST(LapiBasicTest, AddressInitExchangesAllTasks) {
  net::Machine m(machine_config(4));
  std::vector<int> markers(4);
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    markers[static_cast<std::size_t>(ctx.task_id())] = ctx.task_id() * 11;
    auto table =
        exchange_ptrs(ctx, &markers[static_cast<std::size_t>(ctx.task_id())]);
    for (int t = 0; t < 4; ++t) {
      EXPECT_EQ(*table[static_cast<std::size_t>(t)], t * 11);
    }
  }), Status::kOk);
}

TEST(LapiBasicTest, MultipleAddressInitRoundsKeepGenerationsSeparate) {
  net::Machine m(machine_config(3));
  std::vector<int> a(3), b(3);
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    const auto me = static_cast<std::size_t>(ctx.task_id());
    auto ta = exchange_ptrs(ctx, &a[me]);
    auto tb = exchange_ptrs(ctx, &b[me]);
    EXPECT_EQ(ta[me], &a[me]);
    EXPECT_EQ(tb[me], &b[me]);
    EXPECT_NE(static_cast<void*>(ta[0]), static_cast<void*>(tb[0]));
  }), Status::kOk);
}

TEST(LapiBasicTest, NonBlockingCallsPipelineBeforeAnyWait) {
  net::Machine m(machine_config(2));
  constexpr int kOps = 16;
  std::vector<std::byte> tgt(static_cast<std::size_t>(kOps) * 64);
  ASSERT_EQ(run_lapi(m, [&](Context& ctx) {
    if (ctx.task_id() == 0) {
      std::vector<std::byte> src(64, std::byte{1});
      Counter cmpl;
      // Issue a burst of concurrent operations ("unordered pipelining",
      // Section 2.1) and only then wait for the group.
      for (int i = 0; i < kOps; ++i) {
        ASSERT_EQ(ctx.put(1, src, tgt.data() + i * 64, nullptr, nullptr,
                          &cmpl),
                  Status::kOk);
      }
      EXPECT_EQ(ctx.waitcntr(cmpl, kOps), Status::kOk);
    }
  }), Status::kOk);
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(tgt[static_cast<std::size_t>(i) * 64], std::byte{1});
  }
}

}  // namespace
}  // namespace splap::lapi
