// Calibration lock for the MPI/MPL columns of the paper's Section 4:
//
//   Table 2: MPI polling one-way 43us, polling RT 86us,
//            MPL rcvncall interrupt RT 200us.
//   Figure 2: MPI asymptote ~98 MB/s (slightly above LAPI's 97); default
//             eager limit 4 KB flattens the curve above 4 KB; the
//             MP_EAGER_LIMIT=64K setting defers that; half-bandwidth point
//             ~23 KB (~3x LAPI's 8 KB); at medium sizes LAPI leads.
#include <gtest/gtest.h>

#include <vector>

#include "lapi_test_util.hpp"
#include "mpl/comm.hpp"

namespace splap {
namespace {

net::Machine::Config machine_config(int tasks) {
  net::Machine::Config c;
  c.tasks = tasks;
  return c;
}

std::span<const std::byte> bytes_of(const void* p, std::size_t n) {
  return {static_cast<const std::byte*>(p), n};
}

TEST(MplCalibrationTest, OneWayLatencyNear43us) {
  net::Machine m(machine_config(2));
  Time sent = kNoTime, recvd = kNoTime;
  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    mpl::Comm comm(n);
    if (comm.rank() == 1) {
      std::byte b{};
      const mpl::Request r = comm.irecv(0, 1, std::span<std::byte>(&b, 1));
      comm.barrier();
      comm.wait(r);
      recvd = comm.engine().now();
    } else {
      comm.barrier();
      comm.node().task().compute(microseconds(30));
      std::byte b{1};
      sent = comm.engine().now();
      ASSERT_EQ(comm.send(1, 1, bytes_of(&b, 1)), Status::kOk);
    }
    comm.barrier();
  }), Status::kOk);
  const double us = to_us(recvd - sent);
  EXPECT_GE(us, 38.0);
  EXPECT_LE(us, 48.0);
}

TEST(MplCalibrationTest, PollingRoundTripNear86us) {
  net::Machine m(machine_config(2));
  Time rt = 0;
  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    mpl::Comm comm(n);
    std::byte b{1};
    if (comm.rank() == 0) {
      std::byte in{};
      const mpl::Request r = comm.irecv(1, 2, std::span<std::byte>(&in, 1));
      comm.barrier();
      comm.node().task().compute(microseconds(30));
      const Time t0 = comm.engine().now();
      ASSERT_EQ(comm.send(1, 1, bytes_of(&b, 1)), Status::kOk);
      comm.wait(r);
      rt = comm.engine().now() - t0;
    } else {
      std::byte in{};
      const mpl::Request r = comm.irecv(0, 1, std::span<std::byte>(&in, 1));
      comm.barrier();
      comm.wait(r);
      ASSERT_EQ(comm.send(0, 2, bytes_of(&b, 1)), Status::kOk);
    }
    comm.barrier();
  }), Status::kOk);
  const double us = to_us(rt);
  EXPECT_GE(us, 78.0);
  EXPECT_LE(us, 95.0);
}

TEST(MplCalibrationTest, RcvncallInterruptRoundTripNear200us) {
  // The paper: "the round-trip interrupt measurement was done using MPL
  // rcvncall mechanism with target task sending back message to the origin
  // from the interrupt handler" — both legs at interrupt level.
  net::Machine m(machine_config(2));
  Time rt = 0;
  bool echoed = false;
  std::byte token{1};
  ASSERT_EQ(m.run_spmd([&](net::Node& n) {
    mpl::Comm comm(n);
    comm.rcvncall(1, [&](mpl::Comm& c, const mpl::RcvncallDelivery& d) {
      if (c.rank() == 1) {
        (void)c.isend(d.source, 1, bytes_of(&token, 1));
      } else {
        echoed = true;  // the echo arrived via our own interrupt handler
      }
    });
    comm.barrier();
    if (comm.rank() == 0) {
      comm.node().task().compute(microseconds(30));
      const Time t0 = comm.engine().now();
      ASSERT_EQ(comm.send(1, 1, bytes_of(&token, 1)), Status::kOk);
      while (!echoed) comm.node().task().compute(microseconds(2));
      rt = comm.engine().now() - t0;
    }
    comm.barrier();
  }), Status::kOk);
  const double us = to_us(rt);
  EXPECT_GE(us, 180.0);
  EXPECT_LE(us, 220.0);
}

double mpi_bandwidth_mb_s(std::int64_t len, int reps, std::int64_t eager_limit) {
  net::Machine m(machine_config(2));
  mpl::Config cfg;
  cfg.eager_limit = eager_limit;
  Time elapsed = 0;
  EXPECT_EQ(m.run_spmd([&](net::Node& n) {
    mpl::Comm comm(n, cfg);
    std::vector<std::byte> buf(static_cast<std::size_t>(len), std::byte{1});
    std::byte token{};
    comm.barrier();
    if (comm.rank() == 0) {
      const Time t0 = comm.engine().now();
      for (int i = 0; i < reps; ++i) {
        EXPECT_EQ(comm.send(1, 1, buf), Status::kOk);
        // Completion echo, as in a standard one-way bandwidth harness.
        EXPECT_EQ(comm.recv(1, 2, std::span<std::byte>(&token, 1)),
                  Status::kOk);
      }
      elapsed = comm.engine().now() - t0;
    } else {
      for (int i = 0; i < reps; ++i) {
        EXPECT_EQ(comm.recv(0, 1, buf), Status::kOk);
        EXPECT_EQ(comm.send(0, 2, bytes_of(&token, 1)), Status::kOk);
      }
    }
    comm.barrier();
  }), Status::kOk);
  return mb_per_s(len * reps, elapsed);
}

double lapi_bandwidth_mb_s(std::int64_t len, int reps) {
  net::Machine m(machine_config(2));
  lapi::Config cfg;
  cfg.interrupt_mode = false;
  std::vector<std::byte> tgt(static_cast<std::size_t>(len));
  Time elapsed = 0;
  EXPECT_EQ(lapi::testing::run_lapi(m, cfg, [&](lapi::Context& ctx) {
    if (ctx.task_id() == 0) {
      std::vector<std::byte> src(static_cast<std::size_t>(len), std::byte{1});
      lapi::Counter cmpl;
      const Time t0 = ctx.engine().now();
      for (int i = 0; i < reps; ++i) {
        EXPECT_EQ(ctx.put(1, src, tgt.data(), nullptr, nullptr, &cmpl),
                  Status::kOk);
        EXPECT_EQ(ctx.waitcntr(cmpl, 1), Status::kOk);
      }
      elapsed = ctx.engine().now() - t0;
    }
  }), Status::kOk);
  return mb_per_s(len * reps, elapsed);
}

TEST(MplCalibrationTest, AsymptoticBandwidthNear98MBs) {
  const double bw = mpi_bandwidth_mb_s(2 << 20, 3, 4096);
  EXPECT_GE(bw, 94.0);
  EXPECT_LE(bw, 102.0);
}

TEST(MplCalibrationTest, PeakMpiSlightlyAboveLapi) {
  // "The peak bandwidth in MPI is slightly greater than in LAPI because the
  // LAPI packet header size (48 bytes) is larger than the MPI packet header
  // size (16 bytes)."
  const double mpi = mpi_bandwidth_mb_s(2 << 20, 3, 4096);
  const double lapi = lapi_bandwidth_mb_s(2 << 20, 3);
  EXPECT_GT(mpi, lapi);
  EXPECT_LT(mpi - lapi, 6.0);  // "slightly"
}

TEST(MplCalibrationTest, LapiLeadsForMediumMessages) {
  // "For medium sized messages (256 - 64K bytes) ... bandwidth in LAPI is
  // considerably greater than in MPI" (default MPI settings). The lead is
  // modest in the eager range (below 4 KB) and large in the rendezvous
  // range, exactly the Figure 2 shape.
  // At 1 KB both libraries pay a buffering copy and the curves nearly
  // touch; from 2 KB on LAPI's leaner per-message path pulls ahead.
  {
    const double mpi = mpi_bandwidth_mb_s(1024, 10, 4096);
    const double lapi = lapi_bandwidth_mb_s(1024, 10);
    EXPECT_GT(lapi, mpi * 0.9) << "at 1024 bytes";
  }
  for (std::int64_t len : {2048, 4096}) {
    const double mpi = mpi_bandwidth_mb_s(len, 10, 4096);
    const double lapi = lapi_bandwidth_mb_s(len, 10);
    EXPECT_GT(lapi, mpi) << "at " << len << " bytes";
  }
  for (std::int64_t len : {8192, 16384, 32768}) {
    const double mpi = mpi_bandwidth_mb_s(len, 10, 4096);
    const double lapi = lapi_bandwidth_mb_s(len, 10);
    EXPECT_GT(lapi, mpi * 1.2) << "at " << len << " bytes";
  }
  {
    const double mpi = mpi_bandwidth_mb_s(65536, 10, 4096);
    const double lapi = lapi_bandwidth_mb_s(65536, 10);
    EXPECT_GT(lapi, mpi * 1.08) << "at 65536 bytes";
  }
}

TEST(MplCalibrationTest, DefaultEagerLimitFlattensCurveAbove4K) {
  // Figure 2: the default MPI curve flattens right above the 4 KB eager
  // limit (the extra rendezvous round trip); with MP_EAGER_LIMIT=64K the
  // curve keeps rising through that range.
  const double at_4k_default = mpi_bandwidth_mb_s(4096, 20, 4096);
  const double at_8k_default = mpi_bandwidth_mb_s(8192, 20, 4096);
  const double at_4k_eager64 = mpi_bandwidth_mb_s(4096, 20, 65536);
  const double at_8k_eager64 = mpi_bandwidth_mb_s(8192, 20, 65536);
  const double slope_default = at_8k_default / at_4k_default;
  const double slope_eager64 = at_8k_eager64 / at_4k_eager64;
  EXPECT_GT(slope_eager64, slope_default * 1.15)
      << "default=" << slope_default << " eager64=" << slope_eager64;
  EXPECT_GT(at_8k_eager64, at_8k_default * 1.2);  // eager64 is simply faster
}

TEST(MplCalibrationTest, HalfBandwidthPointNear23K) {
  const double asym = mpi_bandwidth_mb_s(2 << 20, 3, 4096);
  const double at_23k = mpi_bandwidth_mb_s(23 << 10, 10, 4096);
  const double ratio = at_23k / asym;
  EXPECT_GE(ratio, 0.38);
  EXPECT_LE(ratio, 0.62);
}

TEST(MplCalibrationTest, LapiHalfBandwidthWellBelowMpi) {
  // The LAPI curve "rises much faster": its half-rate point (~8K) is about
  // a third of MPI's (~23K).
  const double lapi_asym = lapi_bandwidth_mb_s(2 << 20, 3);
  const double mpi_asym = mpi_bandwidth_mb_s(2 << 20, 3, 4096);
  const double lapi_8k = lapi_bandwidth_mb_s(8 << 10, 20);
  const double mpi_8k = mpi_bandwidth_mb_s(8 << 10, 20, 4096);
  // At 8K LAPI is near half rate while MPI is far below half rate.
  EXPECT_GE(lapi_8k / lapi_asym, 0.40);
  EXPECT_LE(mpi_8k / mpi_asym, 0.35);
}

}  // namespace
}  // namespace splap
