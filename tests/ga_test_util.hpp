// Shared scaffolding for Global Arrays tests: SPMD runner + reference
// helpers, parameterized over the transport (LAPI vs MPL).
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "ga/runtime.hpp"
#include "net/machine.hpp"

namespace splap::ga::testing {

inline net::Machine::Config machine_config(int tasks) {
  net::Machine::Config c;
  c.tasks = tasks;
  return c;
}

inline Config ga_config(Transport t) {
  Config c;
  c.transport = t;
  return c;
}

/// Run `body` as one GA task per node; sync before teardown.
inline Status run_ga(net::Machine& m, Config cfg,
                     const std::function<void(Runtime&)>& body) {
  return m.run_spmd([&](net::Node& n) {
    Runtime rt(n, cfg);
    body(rt);
    rt.sync();
  });
}

/// Column-major reference matrix for validating array contents.
class RefMatrix {
 public:
  RefMatrix(std::int64_t d1, std::int64_t d2)
      : d1_(d1), data_(static_cast<std::size_t>(d1 * d2), 0.0) {}

  double& at(std::int64_t i, std::int64_t j) {
    return data_[static_cast<std::size_t>(j * d1_ + i)];
  }
  double at(std::int64_t i, std::int64_t j) const {
    return data_[static_cast<std::size_t>(j * d1_ + i)];
  }

 private:
  std::int64_t d1_;
  std::vector<double> data_;
};

/// Read the full array via per-owner local access after a sync (no
/// communication; used for final-state validation from the test thread).
inline void check_against(net::Machine& m, Config cfg, std::int64_t d1,
                          std::int64_t d2,
                          const std::function<void(Runtime&, GlobalArray&)>& body,
                          const std::function<double(std::int64_t, std::int64_t)>&
                              expected) {
  std::vector<std::vector<double>> blocks(
      static_cast<std::size_t>(m.tasks()));
  std::vector<Patch> block_patches(static_cast<std::size_t>(m.tasks()));
  ASSERT_EQ(run_ga(m, cfg, [&](Runtime& rt) {
    GlobalArray a = rt.create(d1, d2);
    body(rt, a);
    rt.sync();
    const Patch blk = a.my_block();
    block_patches[static_cast<std::size_t>(rt.me())] = blk;
    auto& mine = blocks[static_cast<std::size_t>(rt.me())];
    mine.assign(a.access(), a.access() + blk.elems());
    rt.destroy(a);
  }), Status::kOk);
  for (int t = 0; t < m.tasks(); ++t) {
    const Patch blk = block_patches[static_cast<std::size_t>(t)];
    const auto& mine = blocks[static_cast<std::size_t>(t)];
    for (std::int64_t j = blk.lo2; j <= blk.hi2; ++j) {
      for (std::int64_t i = blk.lo1; i <= blk.hi1; ++i) {
        const double got = mine[static_cast<std::size_t>(
            (j - blk.lo2) * blk.rows() + (i - blk.lo1))];
        ASSERT_DOUBLE_EQ(got, expected(i, j))
            << "task " << t << " element (" << i << "," << j << ")";
      }
    }
  }
}

}  // namespace splap::ga::testing
