// Exercises the SPLAP_AUDIT shadow-state auditor (base/audit.hpp and the
// hooks in the pools, the engine and the fabric). Every detector is proven
// in both directions: the corrupting operation aborts with a "splap-audit"
// diagnostic, and the corresponding correct pattern runs silently.
//
// The centrepiece is the tail-block regression fixture: the engine's
// two-list queue once recycled its dead-prefix blocks a second time on a
// full drain, aliasing two active tail blocks onto one allocation. The
// fixed code keeps a test-only switch (audit builds only) that re-enables
// the old recycle loop, and the spare-block shadow set must catch it at the
// recycling call — not at the downstream trace corruption.
#include <gtest/gtest.h>

#include "base/audit.hpp"
#include "base/pool.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"

#ifndef SPLAP_AUDIT

namespace {
TEST(Audit, RequiresAuditBuild) {
  GTEST_SKIP() << "rebuild with -DSPLAP_AUDIT=ON to exercise the auditor";
}
}  // namespace

#else

namespace splap {
namespace {

using sim::Actor;
using sim::Engine;

class AuditDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Child processes re-execute the binary: safe with live actor threads.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

// ---------------------------------------------------------------------------
// Pool lifecycle pairing
// ---------------------------------------------------------------------------

TEST_F(AuditDeathTest, ObjectPoolDoubleReleaseAborts) {
  ObjectPool<int> pool(8);
  int* p = pool.acquire();
  pool.release(p);
  EXPECT_DEATH(pool.release(p), "splap-audit");
}

TEST_F(AuditDeathTest, ObjectPoolForeignReleaseAborts) {
  ObjectPool<int> pool(8);
  int foreign = 0;
  EXPECT_DEATH(pool.release(&foreign), "splap-audit");
}

TEST_F(AuditDeathTest, ObjectPoolUseAfterReleaseAborts) {
  ObjectPool<int> pool(8);
  int* p = pool.acquire();
  pool.audit_expect_live(p, "test");  // live: fine
  pool.release(p);
  EXPECT_DEATH(pool.audit_expect_live(p, "test"), "splap-audit");
}

TEST_F(AuditDeathTest, SlabBufferPoolDoubleReleaseAborts) {
  SlabBufferPool pool(64, 4);
  const SlabBufferPool::Buffer b = pool.acquire();
  pool.release(b.data, b.zeroed);
  EXPECT_DEATH(pool.release(b.data, 0), "splap-audit");
}

TEST_F(AuditDeathTest, BufferPoolDoubleReleaseOfOneBufferAborts) {
  // Two buffers out, one released twice: the free-list size stays legal, so
  // only the shadow set sees the duplicate.
  BufferPool pool(64, 4);
  std::byte* a = pool.try_acquire();
  std::byte* b = pool.try_acquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  pool.release(a);
  EXPECT_DEATH(pool.release(a), "splap-audit");
}

TEST(AuditPools, BalancedAcquireReleaseIsSilent) {
  ObjectPool<int> pool(8);
  std::vector<int*> out;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) out.push_back(pool.acquire());
    for (int* p : out) pool.release(p);
    out.clear();
  }
  EXPECT_EQ(pool.in_use(), 0u);
}

// ---------------------------------------------------------------------------
// Tail-block double-recycle (the PR 1 regression)
// ---------------------------------------------------------------------------

// Drives the exact shape that corrupted traces before the fix: a wave big
// enough to cross one 2048-slot block boundary (the crossing hands the
// drained block to the spare list), then a full drain. The legacy recycle
// loop starts at block 0 and hands the already-spare block over a second
// time; the shadow set must abort right there.
void run_full_drain_wave(bool legacy_recycle) {
  Engine e;
  e.audit_set_legacy_full_drain(legacy_recycle);
  for (int i = 0; i < 2100; ++i) {
    e.schedule_at(static_cast<Time>(i), [] {});
  }
  (void)e.run();
  // Second wave: with aliased blocks this is where corruption would land.
  for (int i = 0; i < 5000; ++i) {
    e.schedule_at(e.now() + static_cast<Time>(i), [] {});
  }
  (void)e.run();
}

TEST_F(AuditDeathTest, LegacyFullDrainDoubleRecycleIsCaught) {
  run_full_drain_wave(/*legacy_recycle=*/false);  // fixed code: silent
  EXPECT_DEATH(run_full_drain_wave(/*legacy_recycle=*/true), "splap-audit");
}

// ---------------------------------------------------------------------------
// Virtual-time race detector
// ---------------------------------------------------------------------------

TEST_F(AuditDeathTest, UnorderedSameTimeTouchesAreARace) {
  auto scenario = [] {
    Engine e;
    int obj = 0;
    // Two independent events at the same virtual time: their order is pure
    // queue tie-breaking, so touching the same object from both is fragile.
    e.schedule_at(5, [&] { e.audit_object_touch(&obj, "event A"); });
    e.schedule_at(5, [&] { e.audit_object_touch(&obj, "event B"); });
    (void)e.run();
  };
  EXPECT_DEATH(scenario(), "splap-audit");
}

TEST(AuditRace, CausallyOrderedSameTimeTouchesAreFine) {
  Engine e;
  int obj = 0;
  // The child is scheduled BY the first toucher: happens-before pins the
  // order no matter how ties break.
  e.schedule_at(5, [&] {
    e.audit_object_touch(&obj, "parent");
    e.schedule_at(5, [&] { e.audit_object_touch(&obj, "child"); });
  });
  EXPECT_EQ(e.run(), Status::kOk);
}

TEST(AuditRace, DifferentTimesAreNeverARace) {
  Engine e;
  int obj = 0;
  e.schedule_at(5, [&] { e.audit_object_touch(&obj, "early"); });
  e.schedule_at(6, [&] { e.audit_object_touch(&obj, "late"); });
  EXPECT_EQ(e.run(), Status::kOk);
}

TEST(AuditRace, SameActorSlicesAreProgramOrdered) {
  // Two slices of ONE actor at the same virtual time are ordered by the
  // actor's own program order even when the wakeup that separates them came
  // from an unrelated event.
  Engine e;
  int obj = 0;
  bool ready = false;
  Actor& a = e.spawn("toucher", [&](Actor& self) {
    e.audit_object_touch(&obj, "slice 1");
    self.wait([&] { return ready; }, "audit test wait");
    e.audit_object_touch(&obj, "slice 2");
  });
  e.schedule_at(0, [&] {
    ready = true;
    e.wake(a);
  });
  EXPECT_EQ(e.run(), Status::kOk);
}

TEST(AuditRace, RecycledAddressDoesNotChainGenerations) {
  // end()+begin() must sever the touch history: a fresh object living at a
  // reused address is not racing with its predecessor.
  Engine e;
  int obj = 0;
  e.schedule_at(5, [&] {
    e.audit_object_touch(&obj, "old generation");
    e.audit_object_end(&obj);
  });
  e.schedule_at(5, [&] {
    e.audit_object_begin(&obj);
    e.audit_object_touch(&obj, "new generation");
  });
  EXPECT_EQ(e.run(), Status::kOk);
}

// ---------------------------------------------------------------------------
// Fabric in-flight record ledger
// ---------------------------------------------------------------------------

TEST(AuditFabric, DrainedRunLeavesNoRecordOutstanding) {
  sim::Engine e;
  {
    net::Fabric f(e, 2, net::FabricConfig{});
    int delivered = 0;
    f.set_deliver(0, [&](net::Packet&&) { ++delivered; });
    f.set_deliver(1, [&](net::Packet&&) { ++delivered; });
    for (int i = 0; i < 64; ++i) {
      net::Packet p = f.make_packet();
      p.src = i % 2;
      p.dst = 1 - p.src;
      p.header_bytes = 48;
      p.data.resize(256);
      f.transmit(std::move(p));
    }
    EXPECT_EQ(e.run(), Status::kOk);
    EXPECT_EQ(delivered, 64);
  }  // ~Fabric checks the ledger here: queue drained, so zero live records
}

TEST(AuditFabric, MidflightTeardownIsNotReportedAsALeak) {
  sim::Engine e;
  {
    net::Fabric f(e, 2, net::FabricConfig{});
    f.set_deliver(1, [](net::Packet&&) {});
    net::Packet p = f.make_packet();
    p.src = 0;
    p.dst = 1;
    p.header_bytes = 48;
    f.transmit(std::move(p));
    // Never run: the record is legitimately mid-flight (its arrival event is
    // still queued), so the teardown check must stay quiet.
  }
}

}  // namespace
}  // namespace splap

#endif  // SPLAP_AUDIT
